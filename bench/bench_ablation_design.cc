// E9 — design-choice ablations called out in DESIGN.md:
//   (1) Why V-optimal boundaries? SSE of the optimal histogram vs the
//       equi-width / MaxDiff / greedy-merge heuristics across datasets.
//   (2) How does the interval-list size scale with delta (the paper's
//       O((1/delta) log n) bound)?
//   (3) What does the amortized prefix-sum rebase cost per append?
//
// Flags: --size=N --buckets=B

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/core/fixed_window.h"
#include "src/core/heuristics.h"
#include "src/core/vopt_dp.h"
#include "src/data/generators.h"
#include "src/stream/sliding_window.h"
#include "src/util/timer.h"
#include "src/wavelet/sliding_wavelet.h"
#include "src/wavelet/synopsis.h"

namespace streamhist::bench {
namespace {

// Keeps the optimizer from eliding synopsis work in the maintenance loops.
volatile int64_t benchmark_sink = 0;

void HeuristicAblation(int64_t n, int64_t buckets) {
  Banner("Ablation 1: V-optimal vs heuristic boundaries (SSE, lower is "
         "better)");
  TablePrinter table({"dataset", "optimal", "greedy-merge", "maxdiff",
                      "equi-width", "stream-merge"});
  for (DatasetKind kind :
       {DatasetKind::kUtilization, DatasetKind::kRandomWalk,
        DatasetKind::kPiecewiseConstant, DatasetKind::kZipf,
        DatasetKind::kSineMix}) {
    const std::vector<double> data = GenerateDataset(kind, n, /*seed=*/7);
    StreamingMergeHistogram stream_merge(buckets);
    for (double v : data) stream_merge.Append(v);
    table.AddRow(
        {DatasetKindName(kind), Fmt(OptimalSse(data, buckets), 5),
         Fmt(BuildGreedyMergeHistogram(data, buckets).SseAgainst(data), 5),
         Fmt(BuildMaxDiffHistogram(data, buckets).SseAgainst(data), 5),
         Fmt(BuildEquiWidthHistogram(data, buckets).SseAgainst(data), 5),
         Fmt(stream_merge.Extract().SseAgainst(data), 5)});
  }
  table.Print();
}

void IntervalScaling(int64_t n, int64_t buckets) {
  Banner("Ablation 2: interval-list size vs delta (bound: O((1/delta) log n) "
         "per level)");
  const std::vector<double> data =
      GenerateDataset(DatasetKind::kUtilization, 2 * n, /*seed=*/13);
  TablePrinter table({"eps", "delta", "total intervals", "intervals/level",
                      "HERROR evals/rebuild"});
  for (double epsilon : {4.0, 2.0, 1.0, 0.5, 0.25, 0.125}) {
    FixedWindowOptions options;
    options.window_size = n;
    options.num_buckets = buckets;
    options.epsilon = epsilon;
    options.rebuild_on_append = false;
    FixedWindowHistogram fw = FixedWindowHistogram::Create(options).value();
    for (double v : data) fw.Append(v);
    fw.ApproxError();  // force one rebuild
    table.AddRow({Fmt(epsilon, 4), Fmt(fw.delta(), 4),
                  FmtInt(fw.last_total_intervals()),
                  Fmt(static_cast<double>(fw.last_total_intervals()) /
                          static_cast<double>(buckets - 1),
                      4),
                  FmtInt(fw.last_herror_evals())});
  }
  table.Print();
}

void RebaseCost(int64_t n) {
  Banner("Ablation 3: sliding-window append cost incl. amortized rebase");
  TablePrinter table({"window n", "appends", "ns/append", "rebases"});
  for (int64_t window : {n / 4, n, 4 * n}) {
    SlidingWindow w(window);
    const int64_t appends = 50 * window;
    Timer timer;
    for (int64_t i = 0; i < appends; ++i) {
      w.Append(static_cast<double>(i % 1000));
    }
    const double ns =
        timer.ElapsedSeconds() * 1e9 / static_cast<double>(appends);
    table.AddRow({FmtInt(window), FmtInt(appends), Fmt(ns, 4),
                  FmtInt(w.rebase_count())});
  }
  table.Print();
}

void WaveletMaintenance(int64_t buckets) {
  Banner("Ablation 4: wavelet maintenance — recompute per arrival (the "
         "paper's baseline) vs incremental O(log n) updates [MVW00-style]");
  TablePrinter table({"window n", "rebuild us/arrival",
                      "incr us/arrival (query each)",
                      "incr us/arrival (query 1/32)", "best speedup"});
  for (int64_t window : {256, 1024, 4096}) {
    const std::vector<double> stream = GenerateDataset(
        DatasetKind::kUtilization, 2 * window + 2000, /*seed=*/5);
    // Recompute-from-scratch baseline.
    SlidingWindow buffer(window);
    for (int64_t i = 0; i < window; ++i) {
      buffer.Append(stream[static_cast<size_t>(i)]);
    }
    const int64_t arrivals = 500;
    Timer rebuild_timer;
    for (int64_t i = 0; i < arrivals; ++i) {
      buffer.Append(stream[static_cast<size_t>(window + i)]);
      const WaveletSynopsis s =
          WaveletSynopsis::Build(buffer.ToVector(), buckets);
      benchmark_sink += s.num_coefficients();
    }
    const double rebuild_us =
        rebuild_timer.ElapsedSeconds() * 1e6 / static_cast<double>(arrivals);

    // Incrementally maintained coefficient tree; top-B selection only when
    // queried (here: once per arrival, the worst case for the incremental
    // scheme).
    SlidingWavelet incremental = SlidingWavelet::Create(window).value();
    for (int64_t i = 0; i < window; ++i) {
      incremental.Append(stream[static_cast<size_t>(i)]);
    }
    Timer incr_timer;
    for (int64_t i = 0; i < arrivals; ++i) {
      incremental.Append(stream[static_cast<size_t>(window + i)]);
      benchmark_sink +=
          static_cast<int64_t>(incremental.ApproxRangeSum(0, window, buckets));
    }
    const double incr_us =
        incr_timer.ElapsedSeconds() * 1e6 / static_cast<double>(arrivals);

    // Query-sparse regime: the O(n) top-B selection amortizes over 32
    // arrivals, leaving only the O(log n) coefficient updates.
    Timer sparse_timer;
    for (int64_t i = 0; i < arrivals; ++i) {
      incremental.Append(stream[static_cast<size_t>(window + 500 + i)]);
      if (i % 32 == 0) {
        benchmark_sink += static_cast<int64_t>(
            incremental.ApproxRangeSum(0, window, buckets));
      }
    }
    const double sparse_us =
        sparse_timer.ElapsedSeconds() * 1e6 / static_cast<double>(arrivals);

    table.AddRow({FmtInt(window), Fmt(rebuild_us, 4), Fmt(incr_us, 4),
                  Fmt(sparse_us, 4),
                  Fmt(sparse_us > 0 ? rebuild_us / sparse_us : 0.0, 3)});
  }
  table.Print();
}

int Main(int argc, char** argv) {
  const int64_t n = FlagInt(argc, argv, "size", 4096);
  const int64_t buckets = FlagInt(argc, argv, "buckets", 16);

  std::printf("Experiment E9: design-choice ablations\n");
  HeuristicAblation(n, buckets);
  IntervalScaling(std::min<int64_t>(n, 1024), buckets);
  RebaseCost(1024);
  WaveletMaintenance(buckets);
  std::printf("\nShape check: optimal SSE <= every heuristic on every "
              "dataset; interval count grows ~1/delta; append cost is flat "
              "O(1) amortized across window sizes; incremental wavelet "
              "maintenance beats per-arrival recomputation, increasingly so "
              "for larger windows.\n");
  return 0;
}

}  // namespace
}  // namespace streamhist::bench

int main(int argc, char** argv) { return streamhist::bench::Main(argc, argv); }
