// E8 — the paper's headline tradeoff claim (sections 1, 6): "the proposed
// algorithms trade accuracy for speed and allow for a graceful tradeoff
// between the two". Sweep eps for a fixed (window, B) and report maintenance
// cost, SSE vs the optimal B-histogram, and range-sum query error.
//
// Flags: --window=N --buckets=B --points=P --queries=Q

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/core/fixed_window.h"
#include "src/core/vopt_dp.h"
#include "src/data/generators.h"
#include "src/query/estimator.h"
#include "src/query/metrics.h"
#include "src/query/workload.h"
#include "src/util/random.h"
#include "src/util/timer.h"

namespace streamhist::bench {
namespace {

int Main(int argc, char** argv) {
  const int64_t window = FlagInt(argc, argv, "window", 512);
  const int64_t buckets = FlagInt(argc, argv, "buckets", 32);
  const int64_t measured_points = FlagInt(argc, argv, "points", 200);
  const int64_t num_queries = FlagInt(argc, argv, "queries", 300);

  std::printf("Experiment E8 (ablation): accuracy/speed tradeoff in eps\n");
  std::printf("window n=%s, B=%s, %s measured arrivals\n",
              FmtInt(window).c_str(), FmtInt(buckets).c_str(),
              FmtInt(measured_points).c_str());

  const std::vector<double> stream = GenerateDataset(
      DatasetKind::kUtilization, window + measured_points, /*seed=*/88);

  TablePrinter table({"eps", "us/point", "intervals", "SSE/OPT (final)",
                      "range-sum MAE", "guarantee 1+eps"});

  for (double epsilon : {2.0, 1.0, 0.5, 0.2, 0.1, 0.05, 0.02}) {
    FixedWindowOptions options;
    options.window_size = window;
    options.num_buckets = buckets;
    options.epsilon = epsilon;
    options.rebuild_on_append = false;  // cheap warm-up; rebuild explicitly
    FixedWindowHistogram fw = FixedWindowHistogram::Create(options).value();

    size_t i = 0;
    for (; i < static_cast<size_t>(window); ++i) fw.Append(stream[i]);
    Timer timer;
    for (; i < stream.size(); ++i) {
      fw.Append(stream[i]);
      fw.ApproxError();  // forces the incremental rebuild
    }
    const double micros =
        timer.ElapsedSeconds() * 1e6 / static_cast<double>(measured_points);

    const std::vector<double> snapshot = fw.window().ToVector();
    const double opt = OptimalSse(snapshot, buckets);
    const double ratio = opt > 0 ? fw.ApproxError() / opt : 1.0;

    ExactEstimator exact(snapshot);
    const Histogram& h = fw.Extract();
    HistogramEstimator hist(&h);
    Random rng(9);
    const auto queries = GenerateUniformRangeQueries(window, num_queries, rng);
    const double mae =
        EvaluateRangeSums(exact, hist, queries).mean_absolute_error;

    table.AddRow({Fmt(epsilon, 3), Fmt(micros, 5),
                  FmtInt(fw.last_total_intervals()), Fmt(ratio, 5),
                  Fmt(mae, 5), Fmt(1.0 + epsilon, 3)});
  }
  table.Print();
  std::printf("\nShape check vs paper: per-point cost rises as eps shrinks "
              "while SSE/OPT stays within its 1+eps guarantee and query error "
              "falls — the graceful tradeoff.\n");
  return 0;
}

}  // namespace
}  // namespace streamhist::bench

int main(int argc, char** argv) { return streamhist::bench::Main(argc, argv); }
