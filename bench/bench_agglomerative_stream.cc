// E5 — paper section 5.2, first additional experiment: agglomerative stream
// histograms (algorithm AgglomerativeHistogram) vs a wavelet synopsis over
// the full prefix, in both accuracy and construction time.
//
// The paper reports that the agglomerative histograms are "superior both in
// accuracy as well as construction time" to the wavelet approach (which must
// be recomputed from scratch to reflect the full prefix). We stream a
// utilization trace, checkpoint at several prefix lengths, and compare
// range-sum MAE at equal space budget plus cumulative construction time.
//
// Flags: --points=N --buckets=B --epsilon=E --queries=Q

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/core/agglomerative.h"
#include "src/data/generators.h"
#include "src/query/estimator.h"
#include "src/query/metrics.h"
#include "src/query/workload.h"
#include "src/util/random.h"
#include "src/util/timer.h"
#include "src/wavelet/synopsis.h"

namespace streamhist::bench {
namespace {

int Main(int argc, char** argv) {
  const int64_t points = FlagInt(argc, argv, "points", 100000);
  const int64_t buckets = FlagInt(argc, argv, "buckets", 32);
  const double epsilon = FlagDouble(argc, argv, "epsilon", 0.1);
  const int64_t num_queries = FlagInt(argc, argv, "queries", 300);

  std::printf("Experiment E5 (paper 5.2): agglomerative stream histograms vs "
              "wavelets\n");
  std::printf("B=%s, eps=%g, stream of %s utilization points\n",
              FmtInt(buckets).c_str(), epsilon, FmtInt(points).c_str());

  const std::vector<double> stream =
      GenerateDataset(DatasetKind::kUtilization, points, /*seed=*/5);

  ApproxHistogramOptions options;
  options.num_buckets = buckets;
  options.epsilon = epsilon;
  AgglomerativeHistogram agg = AgglomerativeHistogram::Create(options).value();

  TablePrinter table({"prefix N", "hist MAE", "wavelet MAE", "hist/wavelet",
                      "hist build s (cumulative)", "wavelet build s (this N)",
                      "stored entries"});

  Random rng(7);
  double agg_seconds = 0.0;
  size_t pos = 0;
  for (int64_t checkpoint :
       {points / 16, points / 8, points / 4, points / 2, points}) {
    Timer append_timer;
    for (; pos < static_cast<size_t>(checkpoint); ++pos) {
      agg.Append(stream[pos]);
    }
    agg_seconds += append_timer.ElapsedSeconds();

    const std::vector<double> prefix(stream.begin(),
                                     stream.begin() + static_cast<ptrdiff_t>(pos));
    Timer extract_timer;
    const Histogram h = agg.Extract();
    agg_seconds += extract_timer.ElapsedSeconds();

    Timer wavelet_timer;
    const WaveletSynopsis w = WaveletSynopsis::Build(prefix, buckets);
    const double wavelet_seconds = wavelet_timer.ElapsedSeconds();

    ExactEstimator exact(prefix);
    HistogramEstimator hist_est(&h);
    WaveletEstimator wave_est(&w);
    const auto queries =
        GenerateUniformRangeQueries(checkpoint, num_queries, rng);
    const double hist_mae =
        EvaluateRangeSums(exact, hist_est, queries).mean_absolute_error;
    const double wave_mae =
        EvaluateRangeSums(exact, wave_est, queries).mean_absolute_error;

    table.AddRow({FmtInt(checkpoint), Fmt(hist_mae, 5), Fmt(wave_mae, 5),
                  Fmt(wave_mae > 0 ? hist_mae / wave_mae : 0.0, 3),
                  Fmt(agg_seconds, 4), Fmt(wavelet_seconds, 4),
                  FmtInt(agg.total_stored_entries())});
  }
  table.Print();
  std::printf("\nShape check vs paper: histogram MAE below wavelet MAE; "
              "one-pass incremental build vs full recomputation per prefix; "
              "stored entries grow far sublinearly in N (bound "
              "O((B^2/eps) log N)).\n");
  return 0;
}

}  // namespace
}  // namespace streamhist::bench

int main(int argc, char** argv) { return streamhist::bench::Main(argc, argv); }
