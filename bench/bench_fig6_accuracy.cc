// E1/E2 — Figure 6 (a), (b): accuracy of approximate range-sum queries over
// a data stream, Fixed-window histograms vs recompute-from-scratch wavelet
// synopses, as a function of the subsequence (window) length, for B in
// {50, 100} and eps in {0.1, 0.01}.
//
// The paper streams 1M points of AT&T utilization data and reports the
// average error of random range-sum queries (uniform start and span). We
// stream a synthetic utilization trace (DESIGN.md section 4) and report the
// mean absolute error at periodic checkpoints. Expected shape: histogram
// error well below wavelet error at equal space budget; error shrinking as B
// grows and as eps shrinks.
//
// Flags: --points=N --window-list (fixed), --queries=Q --checkpoints=C

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/core/fixed_window.h"
#include "src/data/generators.h"
#include "src/query/estimator.h"
#include "src/query/metrics.h"
#include "src/query/workload.h"
#include "src/util/random.h"
#include "src/wavelet/synopsis.h"

namespace streamhist::bench {
namespace {

struct Config {
  int64_t window;
  int64_t buckets;
  double epsilon;
};

struct Row {
  Config config;
  double exact_mean_answer = 0.0;
  double hist_mae = 0.0;
  double wavelet_mae = 0.0;
};

Row RunConfig(const std::vector<double>& stream, const Config& config,
              int64_t num_queries, int64_t checkpoints) {
  FixedWindowOptions options;
  options.window_size = config.window;
  options.num_buckets = config.buckets;
  options.epsilon = config.epsilon;
  options.rebuild_on_append = false;  // accuracy run: rebuild at checkpoints
  FixedWindowHistogram fw = FixedWindowHistogram::Create(options).value();

  Random rng(17);
  const int64_t stride =
      std::max<int64_t>(1, static_cast<int64_t>(stream.size()) / checkpoints);

  Row row;
  row.config = config;
  long double exact_total = 0.0L, hist_total = 0.0L, wavelet_total = 0.0L;
  int64_t samples = 0;
  for (size_t i = 0; i < stream.size(); ++i) {
    fw.Append(stream[i]);
    if (!fw.window().full() ||
        static_cast<int64_t>(i) % stride != stride - 1) {
      continue;
    }
    const std::vector<double> window = fw.window().ToVector();
    ExactEstimator exact(window);
    const Histogram& h = fw.Extract();
    HistogramEstimator hist(&h);
    const WaveletSynopsis w = WaveletSynopsis::Build(window, config.buckets);
    WaveletEstimator wavelet(&w);

    const auto queries =
        GenerateUniformRangeQueries(config.window, num_queries, rng);
    double answer_sum = 0.0;
    for (const RangeQuery& q : queries) answer_sum += exact.RangeSum(q.lo, q.hi);
    exact_total += answer_sum / static_cast<double>(queries.size());
    hist_total += EvaluateRangeSums(exact, hist, queries).mean_absolute_error;
    wavelet_total +=
        EvaluateRangeSums(exact, wavelet, queries).mean_absolute_error;
    ++samples;
  }
  if (samples > 0) {
    row.exact_mean_answer = static_cast<double>(exact_total / samples);
    row.hist_mae = static_cast<double>(hist_total / samples);
    row.wavelet_mae = static_cast<double>(wavelet_total / samples);
  }
  return row;
}

int Main(int argc, char** argv) {
  const int64_t points = FlagInt(argc, argv, "points", 60000);
  const int64_t num_queries = FlagInt(argc, argv, "queries", 200);
  const int64_t checkpoints = FlagInt(argc, argv, "checkpoints", 8);

  std::printf("Experiment E1/E2 (paper Figure 6 a,b): range-sum accuracy on a "
              "data stream\n");
  std::printf("stream: synthetic utilization trace, %s points (paper: 1M real "
              "AT&T points)\n",
              FmtInt(points).c_str());

  const std::vector<double> stream =
      GenerateDataset(DatasetKind::kUtilization, points, /*seed=*/2002);

  for (double epsilon : {0.1, 0.01}) {
    Banner(epsilon == 0.1 ? "Figure 6(a): eps = 0.1"
                          : "Figure 6(b): eps = 0.01");
    TablePrinter table({"window n", "B", "mean exact answer", "histogram MAE",
                        "wavelet MAE", "hist/wavelet"});
    for (int64_t window : {256, 512, 1024, 2048}) {
      for (int64_t buckets : {50, 100}) {
        const Row row = RunConfig(stream, Config{window, buckets, epsilon},
                                  num_queries, checkpoints);
        table.AddRow({FmtInt(window), FmtInt(buckets),
                      Fmt(row.exact_mean_answer, 6), Fmt(row.hist_mae, 5),
                      Fmt(row.wavelet_mae, 5),
                      Fmt(row.wavelet_mae > 0 ? row.hist_mae / row.wavelet_mae
                                              : 0.0,
                          3)});
      }
    }
    table.Print();
  }
  std::printf("\nShape check vs paper: histogram MAE < wavelet MAE at every "
              "(n, B); accuracy improves with B and smaller eps.\n");
  return 0;
}

}  // namespace
}  // namespace streamhist::bench

int main(int argc, char** argv) { return streamhist::bench::Main(argc, argv); }
