// E3/E4 — Figure 6 (c), (d): elapsed time to *incrementally maintain* a
// fixed-window histogram per arrival (rebuild_on_append = true, the paper's
// accounting) as a function of the window length, for B in {50, 100} and
// eps in {0.1, 0.01}.
//
// The paper maintains over a 1M-point stream and reports total elapsed
// seconds (17.5 - 18.7s on 2002 hardware). We maintain over a shorter
// stream (per-arrival cost is what the figure shapes express) and report
// both the total elapsed time and the per-point cost. Expected shape: time
// grows with B and with smaller eps; dependence on n is mild (poly-log).
//
// Flags: --points=N (arrivals measured after warm-up), --warmup=W

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/core/fixed_window.h"
#include "src/data/generators.h"
#include "src/util/timer.h"

namespace streamhist::bench {
namespace {

struct Result {
  double seconds = 0.0;
  double micros_per_point = 0.0;
  int64_t intervals = 0;
  int64_t evals = 0;
};

Result RunConfig(const std::vector<double>& stream, int64_t window,
                 int64_t buckets, double epsilon, int64_t measured_points) {
  FixedWindowOptions options;
  options.window_size = window;
  options.num_buckets = buckets;
  options.epsilon = epsilon;
  // Lazy mode + an explicit rebuild per measured arrival: the same
  // per-arrival work as the paper's eager maintenance, but the (unmeasured)
  // window-filling warm-up stays cheap.
  options.rebuild_on_append = false;
  FixedWindowHistogram fw = FixedWindowHistogram::Create(options).value();

  // Warm-up: fill the window (not measured).
  int64_t i = 0;
  for (; i < window && i < static_cast<int64_t>(stream.size()); ++i) {
    fw.Append(stream[static_cast<size_t>(i)]);
  }

  Timer timer;
  int64_t measured = 0;
  for (; measured < measured_points && i < static_cast<int64_t>(stream.size());
       ++i, ++measured) {
    fw.Append(stream[static_cast<size_t>(i)]);
    fw.ApproxError();  // forces the incremental rebuild
  }
  Result result;
  result.seconds = timer.ElapsedSeconds();
  result.micros_per_point =
      measured > 0 ? result.seconds * 1e6 / static_cast<double>(measured) : 0;
  result.intervals = fw.last_total_intervals();
  result.evals = fw.last_herror_evals();
  return result;
}

int Main(int argc, char** argv) {
  // Per-arrival maintenance at the paper's (B, eps) is Theta(B^2/eps * n)
  // once the interval lists saturate (see EXPERIMENTS.md); 20 arrivals per
  // configuration gives stable per-point numbers within a CI-friendly
  // runtime. Raise --points for longer runs.
  const int64_t measured_points = FlagInt(argc, argv, "points", 20);
  const int64_t max_window = FlagInt(argc, argv, "max-window", 1024);

  std::printf("Experiment E3/E4 (paper Figure 6 c,d): incremental "
              "maintenance cost of fixed-window histograms\n");
  std::printf("measuring %s arrivals per configuration after window warm-up "
              "(paper: full 1M-point stream)\n",
              FmtInt(measured_points).c_str());

  const std::vector<double> stream = GenerateDataset(
      DatasetKind::kUtilization, measured_points + 4096, /*seed=*/2002);

  for (double epsilon : {0.1, 0.01}) {
    Banner(epsilon == 0.1 ? "Figure 6(c): eps = 0.1"
                          : "Figure 6(d): eps = 0.01");
    TablePrinter table({"window n", "B", "elapsed s", "us/point",
                        "intervals", "HERROR evals/rebuild"});
    for (int64_t window : {256, 512, 1024, 2048}) {
      if (window > max_window) continue;
      for (int64_t buckets : {50, 100}) {
        const Result r =
            RunConfig(stream, window, buckets, epsilon, measured_points);
        table.AddRow({FmtInt(window), FmtInt(buckets), Fmt(r.seconds, 4),
                      Fmt(r.micros_per_point, 4), FmtInt(r.intervals),
                      FmtInt(r.evals)});
      }
    }
    table.Print();
  }
  std::printf("\nShape check vs paper: time grows with B and with smaller "
              "eps (Figure 6 c,d). Note on n: the paper's poly-log n bound "
              "assumes interval lists of size O((1/delta) log n) << n; at "
              "these window sizes the lists saturate near n on smooth data, "
              "so per-point cost still grows with n. See EXPERIMENTS.md.\n");
  return 0;
}

}  // namespace
}  // namespace streamhist::bench

int main(int argc, char** argv) { return streamhist::bench::Main(argc, argv); }
