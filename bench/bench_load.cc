// BENCH_PR6: closed-loop load harness for the TCP front-end (src/server,
// DESIGN.md §11). Starts an in-process TcpServer on an ephemeral loopback
// port and drives it with real sockets:
//
//   1. Latency vs offered load — N closed-loop clients (N swept over the
//      level list) cycling the text estimation verbs; reports throughput
//      and p50/p99/p999 reply latency per level.
//   2. Write path — a bounded number of text APPENDs and binary
//      batch-APPEND frames, reported separately so the frame's
//      per-value amortization is visible. Bounded, because every append
//      ends in the engine republishing a snapshot: an open-ended append
//      loop would measure the engine, not the front-end.
//   3. Degradation under deadline pressure — BUILD statements with a sweep
//      of WITHIN budgets over a window large enough that the exact DP
//      cannot always finish; reports the ladder-rung distribution
//      (exact/approx/snapshot) parsed from the replies.
//
// `bench_load --pr6_json=BENCH_PR6.json` writes the artifact;
// `--pr6_smoke=1` shrinks durations and applies the CI gate (>= 1k
// statements/s against localhost at the top load level, zero protocol
// errors). See EXPERIMENTS.md for the schema.
//
// BENCH_PR7 (same binary, `--pr7_json=BENCH_PR7.json [--pr7_smoke=1]`):
// durable-ingest cost across WAL policies (DESIGN.md §12). Four appender
// threads drive one engine, one stream each, and every append is timed from
// call to ack — under policy "always" the ack waits for the group-commit
// fsync, so the latency distribution IS the durability price. Measured
// against a no-WAL baseline and the four policies (always, bytes, interval,
// none); the smoke gate requires the best deferred policy to clear 10x the
// per-append-fsync "always" throughput, which is what the group-commit /
// deferred-durability machinery exists to buy.
//
// BENCH_PR8 (same binary, `--pr8_json=BENCH_PR8.json [--pr8_smoke=1]`):
// the write-path overhaul (DESIGN.md §13). Four appenders and two live
// snapshot readers share one engine; publication modes per-append /
// per-batch / coalesced-5ms are compared on values/s, ack latency, and
// reader throughput. The smoke gate requires the best batched mode to
// clear 10x the per-append mode (or a 100k values/s absolute floor) AND
// readers to keep >= 0.9x of their per-append read rate.
//
// BENCH_PR9 (same binary, `--pr9_json=BENCH_PR9.json [--pr9_smoke=1]`):
// replication read scale-out (DESIGN.md §14). Two phases over identical
// workloads — a paced writer APPENDing to the primary while closed-loop
// read clients cycle the estimation verbs — differing only in where the
// readers point: all at the primary, or split between the primary and one
// live replica that follows it over WAL shipping. The smoke gate requires
// the replica phase to deliver >= 1.8x the primary-only aggregate read
// throughput, evaluated only on hosts with >= 4 hardware threads (on a
// 1-core host the two servers, the replica apply loop, and every client
// share one CPU — the ratio would measure the scheduler, not scale-out).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/data/generators.h"
#include "src/engine/query_engine.h"
#include "src/server/replication.h"
#include "src/server/tcp_server.h"
#include "src/server/wire.h"

namespace streamhist {
namespace {

using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// A minimal blocking protocol client (the bench-side twin of the test
// helper): send one request, read one "OK <k>" / "ERR ..." reply.

class LoadClient {
 public:
  explicit LoadClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return;
    timeval tv{};
    tv.tv_sec = 10;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~LoadClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  LoadClient(const LoadClient&) = delete;
  LoadClient& operator=(const LoadClient&) = delete;

  bool connected() const { return fd_ >= 0; }

  bool Send(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads one reply. Returns: 1 = OK, 0 = typed ERR, -1 = protocol
  /// breakdown (EOF, timeout, or an unparseable head). The first payload
  /// line of an OK reply lands in `*first_line` when requested.
  int ReadReply(std::string* first_line = nullptr) {
    std::string head;
    if (!ReadLine(&head)) return -1;
    if (head.rfind("OK ", 0) == 0) {
      const long k = std::strtol(head.c_str() + 3, nullptr, 10);
      std::string line;
      for (long i = 0; i < k; ++i) {
        if (!ReadLine(&line)) return -1;
        if (i == 0 && first_line != nullptr) *first_line = line;
      }
      return 1;
    }
    return head.rfind("ERR ", 0) == 0 ? 0 : -1;
  }

 private:
  bool ReadLine(std::string* line) {
    for (;;) {
      const size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        line->assign(buffer_, 0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  int fd_ = -1;
  std::string buffer_;
};

double PercentileUs(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const size_t index = std::min(
      sorted_us.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_us.size())));
  return sorted_us[index];
}

// ---------------------------------------------------------------------------
// Section 1: latency vs offered load.

struct LoadLevel {
  int clients = 0;
  int64_t requests = 0;
  int64_t typed_errors = 0;     // ERR replies (none expected here)
  int64_t protocol_errors = 0;  // unparseable replies / dead connections
  double seconds = 0.0;
  double throughput = 0.0;  // requests / second
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
};

/// One closed-loop reader: request -> reply -> next, cycling the estimation
/// verbs. `index` desynchronizes the cycles across clients. Reads answer
/// from the published snapshot, so this measures the front-end itself; the
/// write path (whose cost is the engine's snapshot republish, not the
/// server) is measured separately with a bounded request count.
void ClientLoop(uint16_t port, int index, const std::atomic<bool>& stop,
                std::vector<double>* latencies, int64_t* typed_errors,
                int64_t* protocol_errors) {
  LoadClient client(port);
  if (!client.connected()) {
    ++*protocol_errors;
    return;
  }
  const std::string text[] = {
      "COUNT s\n",
      "SUM s 0 256\n",
      "POINT s 17\n",
      "AVG s 0 128\n",
  };
  latencies->reserve(1 << 16);
  for (int64_t i = index; !stop.load(std::memory_order_relaxed); ++i) {
    const std::string& request = text[static_cast<size_t>(i % 4)];
    const auto start = Clock::now();
    if (!client.Send(request)) {
      ++*protocol_errors;
      return;
    }
    const int verdict = client.ReadReply();
    if (verdict < 0) {
      ++*protocol_errors;
      return;
    }
    if (verdict == 0) ++*typed_errors;
    latencies->push_back(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count() /
        1e3);
  }
}

LoadLevel MeasureLevel(uint16_t port, int clients, int duration_ms) {
  std::atomic<bool> stop{false};
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(clients));
  std::vector<int64_t> typed(static_cast<size_t>(clients), 0);
  std::vector<int64_t> protocol(static_cast<size_t>(clients), 0);
  std::vector<std::thread> threads;
  const auto start = Clock::now();
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back(ClientLoop, port, i, std::cref(stop),
                         &latencies[static_cast<size_t>(i)],
                         &typed[static_cast<size_t>(i)],
                         &protocol[static_cast<size_t>(i)]);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();
  const double seconds =
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count() /
      1e9;

  LoadLevel level;
  level.clients = clients;
  level.seconds = seconds;
  std::vector<double> merged;
  for (int i = 0; i < clients; ++i) {
    const auto& lat = latencies[static_cast<size_t>(i)];
    merged.insert(merged.end(), lat.begin(), lat.end());
    level.typed_errors += typed[static_cast<size_t>(i)];
    level.protocol_errors += protocol[static_cast<size_t>(i)];
  }
  level.requests = static_cast<int64_t>(merged.size());
  level.throughput = seconds > 0.0 ? merged.size() / seconds : 0.0;
  std::sort(merged.begin(), merged.end());
  level.p50_us = PercentileUs(merged, 0.50);
  level.p99_us = PercentileUs(merged, 0.99);
  level.p999_us = PercentileUs(merged, 0.999);
  return level;
}

// ---------------------------------------------------------------------------
// Section 2: the write path, bounded. The request count is fixed (not
// duration-driven) and sized so the target window never fills: appends into
// a full sliding window pay the engine's per-append eviction cost, which is
// an engine property, not a front-end one.

struct AppendStats {
  int64_t requests = 0;
  int64_t values = 0;
  int64_t typed_errors = 0;
  int64_t protocol_errors = 0;
  double seconds = 0.0;
  double values_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

AppendStats MeasureAppends(uint16_t port, bool batch, int requests,
                           int values_per_batch) {
  AppendStats stats;
  LoadClient client(port);
  if (!client.connected()) {
    stats.protocol_errors = requests;
    return stats;
  }
  std::string request;
  if (batch) {
    std::vector<double> values(static_cast<size_t>(values_per_batch));
    for (int i = 0; i < values_per_batch; ++i) {
      values[static_cast<size_t>(i)] = 0.25 * i;
    }
    request = net::EncodeBatchAppend("w", values);
  }
  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(requests));
  const auto begin = Clock::now();
  for (int i = 0; i < requests; ++i) {
    if (!batch) {
      request = "APPEND w ";
      request += std::to_string(0.5 + i);
      request += '\n';
    }
    const auto start = Clock::now();
    if (!client.Send(request)) {
      ++stats.protocol_errors;
      break;
    }
    const int verdict = client.ReadReply();
    if (verdict < 0) {
      ++stats.protocol_errors;
      break;
    }
    if (verdict == 0) ++stats.typed_errors;
    latencies.push_back(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count() /
        1e3);
    ++stats.requests;
    stats.values += batch ? values_per_batch : 1;
  }
  stats.seconds =
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           begin)
          .count() /
      1e9;
  stats.values_per_sec =
      stats.seconds > 0.0 ? static_cast<double>(stats.values) / stats.seconds
                          : 0.0;
  std::sort(latencies.begin(), latencies.end());
  stats.p50_us = PercentileUs(latencies, 0.50);
  stats.p99_us = PercentileUs(latencies, 0.99);
  return stats;
}

// ---------------------------------------------------------------------------
// Section 3: degradation-ladder rung distribution under deadline pressure.

struct RungCounts {
  int64_t within_ms = 0;
  int64_t builds = 0;
  int64_t exact = 0;
  int64_t approx = 0;
  int64_t snapshot = 0;
  int64_t degraded = 0;
  int64_t errors = 0;
};

RungCounts MeasureRungs(uint16_t port, int64_t within_ms, int builds) {
  RungCounts counts;
  counts.within_ms = within_ms;
  LoadClient client(port);
  if (!client.connected()) {
    counts.errors = builds;
    return counts;
  }
  const std::string request =
      "BUILD big WITHIN " + std::to_string(within_ms) + "\n";
  for (int i = 0; i < builds; ++i) {
    std::string reply;
    if (!client.Send(request) || client.ReadReply(&reply) != 1) {
      ++counts.errors;
      continue;
    }
    ++counts.builds;
    if (reply.rfind("built exact", 0) == 0) {
      ++counts.exact;
    } else if (reply.rfind("built approx", 0) == 0) {
      ++counts.approx;
    } else if (reply.rfind("built snapshot", 0) == 0) {
      ++counts.snapshot;
    }
    if (reply.find("degraded:") != std::string::npos) ++counts.degraded;
  }
  return counts;
}

// ---------------------------------------------------------------------------
// BENCH_PR7: durable ingest across WAL policies.

struct Pr7Result {
  std::string label;       // "baseline" or the policy spec
  bool wal = false;
  int64_t appends = 0;
  double seconds = 0.0;
  double appends_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  wal::StatsSnapshot stats;  // zeroed for the baseline
};

// Raw WAL-layer append cost: N threads sharing one log, a ~48-byte payload
// per record (the size of a small APPEND record). This isolates the policy
// itself — under "always" every Append carries a group-commit fsync wait,
// under the deferred policies it is a buffered write — and is the layer
// the 10x smoke gate runs against: no engine costs dilute the comparison.
Result<Pr7Result> MeasurePr7WalLayer(const std::string& label, int threads,
                                     int per_thread) {
  Pr7Result result;
  result.label = label;
  result.wal = true;

  char dir_template[] = "/tmp/streamhist_pr7_XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) {
    return Status::IOError("mkdtemp failed for the PR7 wal dir");
  }
  const std::string dir(dir_template);
  STREAMHIST_ASSIGN_OR_RETURN(wal::Options options,
                              wal::ParsePolicySpec(label));
  STREAMHIST_ASSIGN_OR_RETURN(std::unique_ptr<wal::Wal> log,
                              wal::Wal::Open(dir, options, nullptr));
  const std::string payload(48, 'x');

  std::vector<std::vector<double>> latencies(static_cast<size_t>(threads));
  std::atomic<int64_t> failures{0};
  std::vector<std::thread> workers;
  const auto begin = Clock::now();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto& lat = latencies[static_cast<size_t>(t)];
      lat.reserve(static_cast<size_t>(per_thread));
      for (int i = 0; i < per_thread; ++i) {
        const auto start = Clock::now();
        if (!log->Append(payload).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        lat.push_back(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - start)
                .count() /
            1e3);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  result.seconds =
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           begin)
          .count() /
      1e9;
  result.stats = log->stats();
  log.reset();
  std::filesystem::remove_all(dir);
  if (failures.load() != 0) {
    return Status::Internal(label + ": " + std::to_string(failures.load()) +
                            " wal append(s) failed");
  }

  std::vector<double> merged;
  for (auto& lat : latencies) {
    merged.insert(merged.end(), lat.begin(), lat.end());
  }
  result.appends = static_cast<int64_t>(merged.size());
  result.appends_per_sec =
      result.seconds > 0.0
          ? static_cast<double>(result.appends) / result.seconds
          : 0.0;
  std::sort(merged.begin(), merged.end());
  result.p50_us = PercentileUs(merged, 0.50);
  result.p99_us = PercentileUs(merged, 0.99);
  return result;
}

Result<Pr7Result> MeasurePr7Policy(const std::string& label, bool with_wal,
                                   int threads, int per_thread) {
  Pr7Result result;
  result.label = label;
  result.wal = with_wal;

  char dir_template[] = "/tmp/streamhist_pr7_XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) {
    return Status::IOError("mkdtemp failed for the PR7 wal dir");
  }
  const std::string dir(dir_template);

  QueryEngine engine;
  if (with_wal) {
    STREAMHIST_ASSIGN_OR_RETURN(wal::Options options,
                                wal::ParsePolicySpec(label));
    QueryEngine::WalConfig config;
    config.options = options;
    // No background checkpointer: this measures the append path alone.
    config.checkpoint_interval_ms = 0;
    STREAMHIST_RETURN_NOT_OK(engine.OpenWal(dir + "/wal", config).status());
  }
  // Small window: the engine republishes a snapshot on every append, and
  // that cost scales with the window. Keeping it tiny keeps the durability
  // policy — not histogram maintenance — as the dominant term, which is
  // the comparison this bench exists for.
  StreamConfig stream;
  stream.window_size = 64;
  stream.num_buckets = 8;
  stream.epsilon = 0.1;
  for (int t = 0; t < threads; ++t) {
    STREAMHIST_RETURN_NOT_OK(
        engine.CreateStream("w" + std::to_string(t), stream));
  }

  std::vector<std::vector<double>> latencies(static_cast<size_t>(threads));
  std::atomic<int64_t> failures{0};
  std::vector<std::thread> workers;
  const auto begin = Clock::now();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const std::string name = "w" + std::to_string(t);
      auto& lat = latencies[static_cast<size_t>(t)];
      lat.reserve(static_cast<size_t>(per_thread));
      for (int i = 0; i < per_thread; ++i) {
        const auto start = Clock::now();
        if (!engine.Append(name, 0.5 * i).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        lat.push_back(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - start)
                .count() /
            1e3);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  result.seconds =
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           begin)
          .count() /
      1e9;
  if (with_wal) {
    result.stats = engine.WalStats();
    STREAMHIST_RETURN_NOT_OK(engine.CloseWal());
  }
  std::filesystem::remove_all(dir);
  if (failures.load() != 0) {
    return Status::Internal(label + ": " + std::to_string(failures.load()) +
                            " append(s) failed");
  }

  std::vector<double> merged;
  for (auto& lat : latencies) {
    merged.insert(merged.end(), lat.begin(), lat.end());
  }
  result.appends = static_cast<int64_t>(merged.size());
  result.appends_per_sec =
      result.seconds > 0.0
          ? static_cast<double>(result.appends) / result.seconds
          : 0.0;
  std::sort(merged.begin(), merged.end());
  result.p50_us = PercentileUs(merged, 0.50);
  result.p99_us = PercentileUs(merged, 0.99);
  return result;
}

// ---------------------------------------------------------------------------
// BENCH_PR8: the write-path overhaul (DESIGN.md §13). One engine, four
// appender threads (one stream each), and two live reader threads that hold
// StreamHandles and continuously acquire snapshots and answer a range query
// from them. Three publication modes over the same workload:
//
//   per-append  — Append() one value at a time, bound 0: every ack
//                 republishes a snapshot. This is the PR7 engine-ingest
//                 shape and the speedup denominator.
//   per-batch   — AppendBatch() of kPr8Batch values, bound 0: one
//                 republish amortized over the whole batch.
//   coalesced   — same batches under a 5 ms staleness bound: republish
//                 drops off the ack path entirely; the flusher closes
//                 the visibility gap.
//
// After each mode every stream is FLUSHed and the visible point counts are
// reconciled against the acked appends (exit 2 on mismatch: readers were
// live, so a torn or lost publish would surface here).

struct Pr8Result {
  std::string label;
  int64_t batch = 1;
  int64_t staleness_ms = 0;
  int64_t values = 0;
  double seconds = 0.0;
  double values_per_sec = 0.0;
  double ack_p50_us = 0.0;
  double ack_p99_us = 0.0;
  int64_t reads = 0;
  double reads_per_sec = 0.0;
  int64_t publishes = 0;
  int64_t publish_skipped = 0;
  int64_t max_staleness_us = 0;
};

Result<Pr8Result> MeasurePr8Mode(const std::string& label, int writers,
                                 int readers, int64_t per_writer,
                                 int64_t batch, int64_t staleness_ms) {
  Pr8Result result;
  result.label = label;
  result.batch = batch;
  result.staleness_ms = staleness_ms;

  QueryEngine engine;
  StreamConfig stream;
  stream.window_size = 64;
  stream.num_buckets = 8;
  stream.epsilon = 0.1;
  stream.publish_staleness_ms = staleness_ms;
  std::vector<StreamHandle> handles;
  for (int t = 0; t < writers; ++t) {
    const std::string name = "w" + std::to_string(t);
    STREAMHIST_RETURN_NOT_OK(engine.CreateStream(name, stream));
    STREAMHIST_ASSIGN_OR_RETURN(StreamHandle handle, engine.Stream(name));
    handles.push_back(std::move(handle));
  }

  // Live readers: closed-loop query clients that acquire a snapshot and
  // answer a range query from it, pacing each sweep like a real client
  // would (think dashboards, not spin loops — an unpaced reader on the
  // single-core CI host would measure the scheduler, not the engine). They
  // run for the whole measured interval so every mode pays the same read
  // pressure on the publication path.
  constexpr auto kReaderPace = std::chrono::microseconds(500);
  std::atomic<bool> stop{false};
  std::atomic<int64_t> reads{0};
  std::atomic<int64_t> read_errors{0};
  std::vector<std::thread> reader_threads;
  for (int r = 0; r < readers; ++r) {
    reader_threads.emplace_back([&] {
      uint64_t last_version = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        for (const StreamHandle& handle : handles) {
          const std::shared_ptr<const QuerySnapshot> snap = handle.snapshot();
          if (snap->total_points > 0 &&
              snap->histogram().RangeSum(0, snap->window_size) < 0.0) {
            read_errors.fetch_add(1, std::memory_order_relaxed);
          }
          last_version = std::max(last_version, snap->version);
          reads.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(kReaderPace);
      }
      (void)last_version;
    });
  }

  std::vector<std::vector<double>> latencies(static_cast<size_t>(writers));
  std::atomic<int64_t> failures{0};
  std::vector<std::thread> workers;
  const auto begin = Clock::now();
  for (int t = 0; t < writers; ++t) {
    workers.emplace_back([&, t] {
      const std::string name = "w" + std::to_string(t);
      auto& lat = latencies[static_cast<size_t>(t)];
      std::vector<double> buffer(static_cast<size_t>(batch));
      for (int64_t i = 0; i < per_writer; i += batch) {
        const int64_t n = std::min(batch, per_writer - i);
        for (int64_t j = 0; j < n; ++j) {
          buffer[static_cast<size_t>(j)] = 0.5 * static_cast<double>(i + j);
        }
        const auto start = Clock::now();
        const Status appended =
            batch == 1 ? engine.Append(name, buffer[0])
                       : engine.AppendBatch(
                             name, std::span<const double>(buffer.data(),
                                                           static_cast<size_t>(
                                                               n)));
        if (!appended.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        lat.push_back(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - start)
                .count() /
            1e3);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  result.seconds =
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           begin)
          .count() /
      1e9;
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : reader_threads) reader.join();
  if (failures.load() != 0) {
    return Status::Internal(label + ": " + std::to_string(failures.load()) +
                            " append(s) failed");
  }
  if (read_errors.load() != 0) {
    return Status::Internal(label + ": " +
                            std::to_string(read_errors.load()) +
                            " torn snapshot read(s)");
  }

  // Identity: after an explicit flush, every acked value is visible.
  STREAMHIST_RETURN_NOT_OK(engine.Execute("FLUSH").status());
  for (const StreamHandle& handle : handles) {
    const int64_t visible = handle.snapshot()->total_points;
    if (visible != per_writer) {
      return Status::Internal(label + ": stream shows " +
                              std::to_string(visible) + " of " +
                              std::to_string(per_writer) +
                              " acked appends after FLUSH");
    }
    const PublishCounters counters =
        handle.stream().publish_stats().Read();
    result.publishes += counters.publishes;
    result.publish_skipped += counters.skipped;
    result.max_staleness_us =
        std::max(result.max_staleness_us, counters.max_staleness_us);
  }

  result.values = per_writer * writers;
  result.values_per_sec =
      result.seconds > 0.0
          ? static_cast<double>(result.values) / result.seconds
          : 0.0;
  result.reads = reads.load();
  result.reads_per_sec =
      result.seconds > 0.0 ? static_cast<double>(result.reads) /
                                 result.seconds
                           : 0.0;
  std::vector<double> merged;
  for (auto& lat : latencies) {
    merged.insert(merged.end(), lat.begin(), lat.end());
  }
  std::sort(merged.begin(), merged.end());
  result.ack_p50_us = PercentileUs(merged, 0.50);
  result.ack_p99_us = PercentileUs(merged, 0.99);
  return result;
}

int RunBenchPr8(int argc, char** argv) {
  using bench::FlagInt;
  using bench::FlagStr;
  std::string out_path = FlagStr(argc, argv, "pr8_json", "");
  const bool smoke = FlagInt(argc, argv, "pr8_smoke", 0) != 0;
  if (out_path.empty()) out_path = "BENCH_PR8_smoke.json";
  const int writers = static_cast<int>(FlagInt(argc, argv, "pr8_threads", 4));
  const int readers = static_cast<int>(FlagInt(argc, argv, "pr8_readers", 2));
  const int64_t values = FlagInt(argc, argv, "pr8_values",
                                 smoke ? 40'000 : 200'000);
  // The per-append denominator republishes on every ack, so it runs a
  // slice of the workload — throughput is a rate; the slice just bounds
  // wall time.
  const int64_t baseline_values = std::max<int64_t>(1'000, values / 20);
  const double speedup_gate = 10.0;
  const double absolute_floor = 100'000.0;  // values/s, ISSUE acceptance
  const double reader_gate = 0.9;

  bench::Banner("BENCH_PR8: write-path overhaul (writers=" +
                std::to_string(writers) + ", live readers=" +
                std::to_string(readers) + ")");

  struct ModeSpec {
    const char* label;
    int64_t per_writer;
    int64_t batch;
    int64_t staleness_ms;
  };
  const ModeSpec modes[] = {
      {"per-append", baseline_values, 1, 0},
      {"per-batch", values, 64, 0},
      {"coalesced-5ms", values, 64, 5},
  };

  std::vector<Pr8Result> results;
  bench::TablePrinter table({"mode", "values", "values/s", "ack p50 us",
                             "ack p99 us", "reads/s", "publishes",
                             "skipped", "max stale us"});
  for (const ModeSpec& mode : modes) {
    Result<Pr8Result> measured =
        MeasurePr8Mode(mode.label, writers, readers, mode.per_writer,
                       mode.batch, mode.staleness_ms);
    if (!measured.ok()) {
      std::fprintf(stderr, "bench_load: %s\n",
                   measured.status().ToString().c_str());
      return measured.status().code() == StatusCode::kInternal ? 2 : 1;
    }
    results.push_back(std::move(measured).value());
    const Pr8Result& r = results.back();
    table.AddRow({r.label, bench::FmtInt(r.values),
                  bench::FmtInt(static_cast<int64_t>(r.values_per_sec)),
                  bench::Fmt(r.ack_p50_us), bench::Fmt(r.ack_p99_us),
                  bench::FmtInt(static_cast<int64_t>(r.reads_per_sec)),
                  bench::FmtInt(r.publishes), bench::FmtInt(r.publish_skipped),
                  bench::FmtInt(r.max_staleness_us)});
  }
  table.Print();

  const Pr8Result& baseline = results[0];
  const Pr8Result* best = &results[1];
  for (const Pr8Result& r : results) {
    if (r.batch > 1 && r.values_per_sec > best->values_per_sec) best = &r;
  }
  const double ratio = baseline.values_per_sec > 0.0
                           ? best->values_per_sec / baseline.values_per_sec
                           : 0.0;
  const bool ingest_ok =
      best->values_per_sec >= absolute_floor || ratio >= speedup_gate;
  // Reader no-regression: batching the write path must not starve readers.
  const double reader_ratio =
      baseline.reads_per_sec > 0.0
          ? best->reads_per_sec / baseline.reads_per_sec
          : 0.0;
  const bool reader_ok = reader_ratio >= reader_gate;
  std::printf("  ingest: %s at %s values/s (%.1fx over per-append)%s\n",
              best->label.c_str(),
              bench::FmtInt(static_cast<int64_t>(best->values_per_sec))
                  .c_str(),
              ratio,
              smoke ? (ingest_ok ? " (gate >=10x or >=100k/s: ok)"
                                 : " (gate >=10x or >=100k/s: FAIL)")
                    : "");
  std::printf("  readers: %.2fx of per-append read rate%s\n", reader_ratio,
              smoke ? (reader_ok ? " (gate >= 0.9x: ok)"
                                 : " (gate >= 0.9x: FAIL)")
                    : "");
  std::fflush(stdout);

  bench::JsonWriter json;
  json.BeginObject()
      .Key("bench").Value(std::string("BENCH_PR8"))
      .Key("schema_version").Value(int64_t{1})
      .Key("smoke").Value(smoke)
      .Key("writer_threads").Value(static_cast<int64_t>(writers))
      .Key("reader_threads").Value(static_cast<int64_t>(readers))
      .Key("hardware_threads")
      .Value(static_cast<int64_t>(std::thread::hardware_concurrency()))
      .Key("modes").BeginArray();
  for (const Pr8Result& r : results) {
    json.BeginObject()
        .Key("mode").Value(r.label)
        .Key("batch").Value(r.batch)
        .Key("publish_staleness_ms").Value(r.staleness_ms)
        .Key("values").Value(r.values)
        .Key("seconds").Value(r.seconds)
        .Key("values_per_sec").Value(r.values_per_sec)
        .Key("ack_p50_us").Value(r.ack_p50_us)
        .Key("ack_p99_us").Value(r.ack_p99_us)
        .Key("reads").Value(r.reads)
        .Key("reads_per_sec").Value(r.reads_per_sec)
        .Key("publishes").Value(r.publishes)
        .Key("publish_skipped").Value(r.publish_skipped)
        .Key("max_staleness_us").Value(r.max_staleness_us)
        .EndObject();
  }
  json.EndArray()
      .Key("gates").BeginObject()
      .Key("ingest_speedup").BeginObject()
      .Key("speedup_limit").Value(speedup_gate)
      .Key("absolute_floor_values_per_sec").Value(absolute_floor)
      .Key("baseline_values_per_sec").Value(baseline.values_per_sec)
      .Key("best_mode").Value(best->label)
      .Key("best_values_per_sec").Value(best->values_per_sec)
      .Key("ratio").Value(ratio)
      .Key("evaluated").Value(smoke)
      .Key("ok").Value(ingest_ok)
      .EndObject()
      .Key("reader_no_regression").BeginObject()
      .Key("limit").Value(reader_gate)
      .Key("baseline_reads_per_sec").Value(baseline.reads_per_sec)
      .Key("best_mode_reads_per_sec").Value(best->reads_per_sec)
      .Key("ratio").Value(reader_ratio)
      .Key("evaluated").Value(smoke)
      .Key("ok").Value(reader_ok)
      .EndObject().EndObject().EndObject();

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << json.str() << '\n';
  std::printf("  wrote %s\n", out_path.c_str());

  if (smoke && (!ingest_ok || !reader_ok)) {
    std::fprintf(stderr,
                 "bench_load: PR8 gate failed (ingest %.1fx/%s values/s, "
                 "readers %.2fx)\n",
                 ratio,
                 bench::FmtInt(static_cast<int64_t>(best->values_per_sec))
                     .c_str(),
                 reader_ratio);
    return 3;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// BENCH_PR9: replication read scale-out. One primary (WAL + ReplicationHub
// behind its TcpServer) takes a paced write load; R closed-loop read
// clients cycle the estimation verbs. Phase 1 points every reader at the
// primary; phase 2 starts a live replica (ReplicaClient applying shipped
// WAL into a second read-only engine behind its own TcpServer) and splits
// the same readers across both. Identity checks: zero typed/protocol
// errors on either server, and after the timed region the replica must
// catch up to the primary's durable LSN — every acked write arrived.

struct Pr9Phase {
  std::string label;
  bool with_replica = false;
  double seconds = 0.0;
  int64_t reads = 0;  // aggregate across all read clients
  double reads_per_sec = 0.0;
  int64_t primary_reads = 0;
  int64_t replica_reads = 0;
  int64_t writes = 0;  // acked appends during the timed region
  double writes_per_sec = 0.0;
  double read_p50_us = 0.0;
  double read_p99_us = 0.0;
  int64_t typed_errors = 0;
  int64_t protocol_errors = 0;
  // Replica-phase telemetry (zeroed in the primary-only phase).
  net::HubStatsSnapshot hub;
  int64_t replica_applied_lsn = 0;
  int64_t primary_durable_lsn = 0;
  int64_t replica_reconnects = 0;
};

Result<Pr9Phase> MeasurePr9Phase(const std::string& label, bool with_replica,
                                 int readers, int server_threads,
                                 int duration_ms, int64_t write_pace_us) {
  Pr9Phase phase;
  phase.label = label;
  phase.with_replica = with_replica;

  char dir_template[] = "/tmp/streamhist_pr9_XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) {
    return Status::IOError("mkdtemp failed for the PR9 wal dir");
  }
  const std::string dir(dir_template);

  // Primary: WAL first, stream + seed after — creation and seed appends are
  // WAL records, which is exactly how they reach the replica. The window is
  // sized so the paced writer never fills it (a full window adds per-append
  // eviction cost, an engine property this bench is not about), and the
  // seed is deep enough for every verb ClientLoop cycles.
  QueryEngine engine;
  QueryEngine::WalConfig wal_config;
  STREAMHIST_RETURN_NOT_OK(engine.OpenWal(dir + "/primary", wal_config)
                               .status());
  StreamConfig stream;
  stream.window_size = 8192;
  stream.num_buckets = 16;
  stream.epsilon = 0.1;
  STREAMHIST_RETURN_NOT_OK(engine.CreateStream("s", stream));
  STREAMHIST_RETURN_NOT_OK(engine.AppendBatch(
      "s", GenerateDataset(DatasetKind::kUtilization, 4096, /*seed=*/23)));

  net::HubOptions hub_options;
  hub_options.heartbeat_ms = 50;
  net::ReplicationHub hub(engine, hub_options);
  net::ServerOptions primary_options;
  primary_options.threads = server_threads;
  primary_options.replication_hub = &hub;
  STREAMHIST_ASSIGN_OR_RETURN(std::unique_ptr<net::TcpServer> primary,
                              net::TcpServer::Start(engine, primary_options));

  // Replica (phase 2 only): its own WAL (local durability), a subscription
  // into the primary, and a plain TcpServer over the read-only engine.
  QueryEngine replica_engine;
  std::unique_ptr<net::ReplicaClient> replica;
  std::unique_ptr<net::TcpServer> replica_server;
  if (with_replica) {
    STREAMHIST_RETURN_NOT_OK(
        replica_engine.OpenWal(dir + "/replica", wal_config).status());
    net::ReplicaOptions replica_options;
    replica_options.primary_port = primary->port();
    STREAMHIST_ASSIGN_OR_RETURN(
        replica, net::ReplicaClient::Start(replica_engine, replica_options));
    net::ServerOptions replica_server_options;
    replica_server_options.threads = server_threads;
    STREAMHIST_ASSIGN_OR_RETURN(
        replica_server,
        net::TcpServer::Start(replica_engine, replica_server_options));
  }

  // Wait until the replica holds the whole seed before the clocks start —
  // the measured region compares steady-state read service, not bootstrap.
  const auto CaughtUp = [&] {
    return replica_engine.replica_status().applied_lsn >=
           engine.WalDurableLsn();
  };
  if (with_replica) {
    const auto deadline = Clock::now() + std::chrono::seconds(30);
    while (!CaughtUp()) {
      if (Clock::now() >= deadline) {
        return Status::Internal(label + ": replica never caught up to lsn " +
                                std::to_string(engine.WalDurableLsn()));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  // Matched write load: one paced writer against the primary in both
  // phases. Paced (not closed-loop) so both phases carry the same offered
  // write rate regardless of how read traffic shifts ack latency.
  std::atomic<bool> stop{false};
  std::atomic<int64_t> writes{0};
  std::atomic<int64_t> write_errors{0};
  std::thread writer([&, port = primary->port()] {
    LoadClient client(port);
    if (!client.connected()) {
      write_errors.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    for (int64_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
      const std::string request =
          "APPEND s " + std::to_string(0.5 + 0.001 * static_cast<double>(i)) +
          "\n";
      if (!client.Send(request) || client.ReadReply() != 1) {
        write_errors.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      writes.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(write_pace_us));
    }
  });

  // Readers: the PR6 closed-loop estimation clients. With a replica, split
  // them evenly — odd indices go to the replica — so aggregate capacity is
  // what is measured, at the same total client count.
  std::vector<std::vector<double>> latencies(static_cast<size_t>(readers));
  std::vector<int64_t> typed(static_cast<size_t>(readers), 0);
  std::vector<int64_t> protocol(static_cast<size_t>(readers), 0);
  std::vector<bool> on_replica(static_cast<size_t>(readers), false);
  std::vector<std::thread> threads;
  const auto begin = Clock::now();
  for (int i = 0; i < readers; ++i) {
    const bool to_replica = with_replica && (i % 2 == 1);
    on_replica[static_cast<size_t>(i)] = to_replica;
    const uint16_t port =
        to_replica ? replica_server->port() : primary->port();
    threads.emplace_back(ClientLoop, port, i, std::cref(stop),
                         &latencies[static_cast<size_t>(i)],
                         &typed[static_cast<size_t>(i)],
                         &protocol[static_cast<size_t>(i)]);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& thread : threads) thread.join();
  writer.join();
  phase.seconds =
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           begin)
          .count() /
      1e9;

  // Identity: the replica must drain to the primary's durable LSN once
  // writes stop — an acked write that never arrives is a correctness bug,
  // not a perf result.
  if (with_replica) {
    const auto deadline = Clock::now() + std::chrono::seconds(30);
    while (!CaughtUp()) {
      if (Clock::now() >= deadline) {
        return Status::Internal(
            label + ": replica stalled at lsn " +
            std::to_string(replica_engine.replica_status().applied_lsn) +
            " of " + std::to_string(engine.WalDurableLsn()));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    const QueryEngine::ReplicaStatus status = replica_engine.replica_status();
    phase.hub = hub.stats();
    phase.replica_applied_lsn = status.applied_lsn;
    phase.replica_reconnects = status.reconnects;
    phase.primary_durable_lsn = engine.WalDurableLsn();
  }

  std::vector<double> merged;
  for (int i = 0; i < readers; ++i) {
    const auto& lat = latencies[static_cast<size_t>(i)];
    const int64_t count = static_cast<int64_t>(lat.size());
    (on_replica[static_cast<size_t>(i)] ? phase.replica_reads
                                        : phase.primary_reads) += count;
    merged.insert(merged.end(), lat.begin(), lat.end());
    phase.typed_errors += typed[static_cast<size_t>(i)];
    phase.protocol_errors += protocol[static_cast<size_t>(i)];
  }
  phase.reads = phase.primary_reads + phase.replica_reads;
  phase.reads_per_sec =
      phase.seconds > 0.0 ? static_cast<double>(phase.reads) / phase.seconds
                          : 0.0;
  phase.writes = writes.load();
  phase.writes_per_sec =
      phase.seconds > 0.0 ? static_cast<double>(phase.writes) / phase.seconds
                          : 0.0;
  phase.protocol_errors += write_errors.load();
  std::sort(merged.begin(), merged.end());
  phase.read_p50_us = PercentileUs(merged, 0.50);
  phase.read_p99_us = PercentileUs(merged, 0.99);

  // Teardown in dependency order: the replica client stops before the
  // engine it applies into, servers before the hub, the hub before the
  // primary engine.
  if (replica_server) replica_server->Shutdown();
  if (replica) replica->Stop();
  replica.reset();
  primary->Shutdown();
  hub.Stop();
  if (with_replica) {
    STREAMHIST_RETURN_NOT_OK(replica_engine.CloseWal());
  }
  STREAMHIST_RETURN_NOT_OK(engine.CloseWal());
  std::filesystem::remove_all(dir);
  return phase;
}

int RunBenchPr9(int argc, char** argv) {
  using bench::FlagInt;
  using bench::FlagStr;
  std::string out_path = FlagStr(argc, argv, "pr9_json", "");
  const bool smoke = FlagInt(argc, argv, "pr9_smoke", 0) != 0;
  if (out_path.empty()) out_path = "BENCH_PR9_smoke.json";
  const int readers = static_cast<int>(FlagInt(argc, argv, "pr9_readers", 4));
  const int server_threads =
      static_cast<int>(FlagInt(argc, argv, "pr9_threads", 2));
  const int duration_ms = static_cast<int>(
      FlagInt(argc, argv, "pr9_duration_ms", smoke ? 300 : 1000));
  const int64_t write_pace_us = FlagInt(argc, argv, "pr9_write_pace_us", 1000);
  const double scale_gate = 1.8;
  const int64_t hardware =
      static_cast<int64_t>(std::thread::hardware_concurrency());
  // The scale-out gate only means something when the primary server, the
  // replica server, the apply loop, and the clients can actually run in
  // parallel (BENCH_PR5 set this precedent for its scaling gate).
  const bool gate_evaluated = smoke && hardware >= 4;

  bench::Banner("BENCH_PR9: replication read scale-out (readers=" +
                std::to_string(readers) + ", server threads=" +
                std::to_string(server_threads) + ")");

  std::vector<Pr9Phase> phases;
  bench::TablePrinter table({"phase", "reads/s", "primary", "replica",
                             "writes/s", "p50 us", "p99 us", "shipped"});
  const struct {
    const char* label;
    bool with_replica;
  } specs[] = {{"primary-only", false}, {"primary+replica", true}};
  for (const auto& spec : specs) {
    Result<Pr9Phase> measured =
        MeasurePr9Phase(spec.label, spec.with_replica, readers, server_threads,
                        duration_ms, write_pace_us);
    if (!measured.ok()) {
      std::fprintf(stderr, "bench_load: %s\n",
                   measured.status().ToString().c_str());
      return measured.status().code() == StatusCode::kInternal ? 2 : 1;
    }
    phases.push_back(std::move(measured).value());
    const Pr9Phase& p = phases.back();
    table.AddRow({p.label,
                  bench::FmtInt(static_cast<int64_t>(p.reads_per_sec)),
                  bench::FmtInt(p.primary_reads),
                  bench::FmtInt(p.replica_reads),
                  bench::FmtInt(static_cast<int64_t>(p.writes_per_sec)),
                  bench::Fmt(p.read_p50_us), bench::Fmt(p.read_p99_us),
                  bench::FmtInt(p.hub.records)});
  }
  table.Print();

  const Pr9Phase& solo = phases[0];
  const Pr9Phase& scaled = phases[1];
  const double ratio = solo.reads_per_sec > 0.0
                           ? scaled.reads_per_sec / solo.reads_per_sec
                           : 0.0;
  const bool scale_ok = !gate_evaluated || ratio >= scale_gate;
  int64_t errors = 0;
  for (const Pr9Phase& p : phases) {
    errors += p.typed_errors + p.protocol_errors;
  }
  const bool errors_ok = errors == 0;
  std::printf("  aggregate reads: %.2fx with one replica attached%s\n", ratio,
              gate_evaluated
                  ? (scale_ok ? " (gate >= 1.8x: ok)"
                              : " (gate >= 1.8x: FAIL)")
                  : " (gate not evaluated: < 4 hardware threads)");
  std::printf("  replica applied lsn %lld of %lld, %lld records shipped\n",
              static_cast<long long>(scaled.replica_applied_lsn),
              static_cast<long long>(scaled.primary_durable_lsn),
              static_cast<long long>(scaled.hub.records));
  std::fflush(stdout);

  bench::JsonWriter json;
  json.BeginObject()
      .Key("bench").Value(std::string("BENCH_PR9"))
      .Key("schema_version").Value(int64_t{1})
      .Key("smoke").Value(smoke)
      .Key("readers").Value(static_cast<int64_t>(readers))
      .Key("server_threads").Value(static_cast<int64_t>(server_threads))
      .Key("duration_ms").Value(static_cast<int64_t>(duration_ms))
      .Key("write_pace_us").Value(write_pace_us)
      .Key("hardware_threads").Value(hardware)
      .Key("phases").BeginArray();
  for (const Pr9Phase& p : phases) {
    json.BeginObject()
        .Key("phase").Value(p.label)
        .Key("with_replica").Value(p.with_replica)
        .Key("seconds").Value(p.seconds)
        .Key("reads").Value(p.reads)
        .Key("reads_per_sec").Value(p.reads_per_sec)
        .Key("primary_reads").Value(p.primary_reads)
        .Key("replica_reads").Value(p.replica_reads)
        .Key("writes").Value(p.writes)
        .Key("writes_per_sec").Value(p.writes_per_sec)
        .Key("read_p50_us").Value(p.read_p50_us)
        .Key("read_p99_us").Value(p.read_p99_us)
        .Key("typed_errors").Value(p.typed_errors)
        .Key("protocol_errors").Value(p.protocol_errors)
        .EndObject();
  }
  json.EndArray()
      .Key("replication").BeginObject()
      .Key("batches").Value(scaled.hub.batches)
      .Key("records").Value(scaled.hub.records)
      .Key("heartbeats").Value(scaled.hub.heartbeats)
      .Key("bootstraps").Value(scaled.hub.bootstraps)
      .Key("replica_applied_lsn").Value(scaled.replica_applied_lsn)
      .Key("primary_durable_lsn").Value(scaled.primary_durable_lsn)
      .Key("replica_reconnects").Value(scaled.replica_reconnects)
      .EndObject()
      .Key("gates").BeginObject()
      .Key("read_scaleout").BeginObject()
      .Key("limit").Value(scale_gate)
      .Key("primary_only_reads_per_sec").Value(solo.reads_per_sec)
      .Key("with_replica_reads_per_sec").Value(scaled.reads_per_sec)
      .Key("ratio").Value(ratio)
      .Key("evaluated").Value(gate_evaluated)
      .Key("ok").Value(scale_ok)
      .EndObject()
      .Key("errors").BeginObject()
      .Key("count").Value(errors)
      .Key("ok").Value(errors_ok)
      .EndObject()
      .EndObject().EndObject();

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << json.str() << '\n';
  std::printf("  wrote %s\n", out_path.c_str());

  if (!errors_ok) {
    std::fprintf(stderr, "bench_load: %lld read/write error(s) observed\n",
                 static_cast<long long>(errors));
    return 2;
  }
  if (!scale_ok) {
    std::fprintf(stderr,
                 "bench_load: PR9 read scale-out %.2fx is below the %.1fx "
                 "smoke gate\n",
                 ratio, scale_gate);
    return 3;
  }
  return 0;
}

int RunBenchPr7(int argc, char** argv) {
  using bench::FlagInt;
  using bench::FlagStr;
  const std::string out_path = FlagStr(argc, argv, "pr7_json", "");
  const bool smoke = FlagInt(argc, argv, "pr7_smoke", 0) != 0;
  const int threads = static_cast<int>(FlagInt(argc, argv, "pr7_threads", 4));
  const int per_thread = static_cast<int>(
      FlagInt(argc, argv, "pr7_appends", smoke ? 1500 : 8000));
  const double speedup_gate = 10.0;

  bench::Banner("BENCH_PR7: durable ingest across WAL policies (threads=" +
                std::to_string(threads) + ")");

  const char* policies[] = {"always", "bytes:65536", "interval:5", "none"};

  // Layer 1: the WAL itself. This is where the policy comparison is pure —
  // and where the smoke gate runs: deferring the fsync off the append path
  // must be worth at least 10x over paying it inside every ack.
  std::vector<Pr7Result> wal_layer;
  bench::TablePrinter wal_table({"wal policy", "appends", "appends/s",
                                 "p50 us", "p99 us", "fsyncs",
                                 "appends/fsync"});
  for (const char* label : policies) {
    Result<Pr7Result> measured =
        MeasurePr7WalLayer(label, threads, per_thread);
    if (!measured.ok()) {
      std::fprintf(stderr, "bench_load: %s\n",
                   measured.status().ToString().c_str());
      return 1;
    }
    wal_layer.push_back(std::move(measured).value());
    const Pr7Result& r = wal_layer.back();
    wal_table.AddRow(
        {r.label, std::to_string(r.appends),
         bench::FmtInt(static_cast<int64_t>(r.appends_per_sec)),
         bench::Fmt(r.p50_us), bench::Fmt(r.p99_us),
         std::to_string(r.stats.fsyncs),
         r.stats.fsyncs > 0
             ? bench::Fmt(static_cast<double>(r.stats.records) /
                          static_cast<double>(r.stats.fsyncs))
             : "-"});
  }
  wal_table.Print();

  double always_per_sec = 0.0;
  double best_deferred = 0.0;
  std::string best_label;
  for (const Pr7Result& r : wal_layer) {
    if (r.label == "always") always_per_sec = r.appends_per_sec;
    if (r.label != "always" && r.appends_per_sec > best_deferred) {
      best_deferred = r.appends_per_sec;
      best_label = r.label;
    }
  }
  const double ratio =
      always_per_sec > 0.0 ? best_deferred / always_per_sec : 0.0;
  const bool speedup_ok = !smoke || ratio >= speedup_gate;
  std::printf("  group-commit speedup: %s at %.1fx over always%s\n",
              best_label.c_str(), ratio,
              smoke ? (speedup_ok ? " (gate >= 10x: ok)"
                                  : " (gate >= 10x: FAIL)")
                    : "");
  std::fflush(stdout);

  // Layer 2: end-to-end engine ingest — what a client's ack actually costs
  // with histogram maintenance, snapshot republish, and the WAL all on the
  // path. Reported, not gated: on small hosts the engine work itself
  // bounds throughput and would mask the policy spread.
  std::vector<Pr7Result> engine_layer;
  bench::TablePrinter engine_table({"engine ingest", "appends", "appends/s",
                                    "ack p50 us", "ack p99 us"});
  for (int i = -1; i < static_cast<int>(std::size(policies)); ++i) {
    const std::string label = i < 0 ? "baseline" : policies[i];
    Result<Pr7Result> measured = MeasurePr7Policy(
        label, /*with_wal=*/i >= 0, threads,
        std::max(1, per_thread / 4));  // engine appends are ~10x dearer
    if (!measured.ok()) {
      std::fprintf(stderr, "bench_load: %s\n",
                   measured.status().ToString().c_str());
      return 1;
    }
    engine_layer.push_back(std::move(measured).value());
    const Pr7Result& r = engine_layer.back();
    engine_table.AddRow(
        {r.label, std::to_string(r.appends),
         bench::FmtInt(static_cast<int64_t>(r.appends_per_sec)),
         bench::Fmt(r.p50_us), bench::Fmt(r.p99_us)});
  }
  engine_table.Print();
  std::fflush(stdout);

  bench::JsonWriter json;
  json.BeginObject()
      .Key("bench").Value(std::string("BENCH_PR7"))
      .Key("schema_version").Value(int64_t{1})
      .Key("smoke").Value(smoke)
      .Key("appender_threads").Value(static_cast<int64_t>(threads))
      .Key("appends_per_thread").Value(static_cast<int64_t>(per_thread))
      .Key("hardware_threads")
      .Value(static_cast<int64_t>(std::thread::hardware_concurrency()));
  const std::pair<const char*, const std::vector<Pr7Result>*> layers[] = {
      {"wal_layer", &wal_layer}, {"engine_ingest", &engine_layer}};
  for (const auto& [layer_name, layer] : layers) {
    json.Key(std::string(layer_name)).BeginArray();
    for (const Pr7Result& r : *layer) {
      json.BeginObject()
          .Key("policy").Value(r.label)
          .Key("wal").Value(r.wal)
          .Key("appends").Value(r.appends)
          .Key("seconds").Value(r.seconds)
          .Key("appends_per_sec").Value(r.appends_per_sec)
          .Key("ack_p50_us").Value(r.p50_us)
          .Key("ack_p99_us").Value(r.p99_us)
          .Key("wal_records").Value(r.stats.records)
          .Key("wal_bytes").Value(r.stats.bytes)
          .Key("wal_fsyncs").Value(r.stats.fsyncs)
          .Key("wal_sync_waits").Value(r.stats.sync_waits)
          .Key("wal_segments_created").Value(r.stats.segments_created)
          .EndObject();
    }
    json.EndArray();
  }
  json.Key("gates").BeginObject()
      .Key("group_commit_speedup").BeginObject()
      .Key("limit").Value(speedup_gate)
      .Key("always_appends_per_sec").Value(always_per_sec)
      .Key("best_deferred_policy").Value(best_label)
      .Key("best_deferred_appends_per_sec").Value(best_deferred)
      .Key("ratio").Value(ratio)
      .Key("evaluated").Value(smoke)
      .Key("ok").Value(speedup_ok)
      .EndObject().EndObject().EndObject();

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << json.str() << '\n';
  std::printf("  wrote %s\n", out_path.c_str());

  if (!speedup_ok) {
    std::fprintf(stderr,
                 "bench_load: deferred-policy speedup %.1fx is below the "
                 "%.0fx smoke gate\n",
                 ratio, speedup_gate);
    return 3;
  }
  return 0;
}

}  // namespace

int RunBenchPr6(int argc, char** argv) {
  using bench::FlagInt;
  using bench::FlagStr;
  const std::string out_path = FlagStr(argc, argv, "pr6_json", "");
  const bool smoke = FlagInt(argc, argv, "pr6_smoke", 0) != 0;
  const int server_threads =
      static_cast<int>(FlagInt(argc, argv, "pr6_threads", 2));
  const int duration_ms =
      static_cast<int>(FlagInt(argc, argv, "pr6_duration_ms",
                               smoke ? 200 : 1000));
  const std::vector<int> levels =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
  const int builds_per_budget = smoke ? 5 : 20;
  const double throughput_gate = 1000.0;  // statements/s at the top level

  bench::Banner("BENCH_PR6: TCP front-end load (threads=" +
                std::to_string(server_threads) + ")");

  // One engine behind the server. "s" serves the read workload of
  // section 1 (reads answer from the published snapshot, so its window
  // just has to hold the seeded points); "w" takes section 2's appends and
  // is sized so they never fill it (a full sliding window adds per-append
  // eviction cost); "big" has a window large enough that the exact
  // V-optimal DP overruns millisecond budgets for section 3.
  QueryEngine engine;
  StreamConfig config;
  config.window_size = 8192;
  config.num_buckets = 16;
  config.epsilon = 0.1;
  if (!engine.CreateStream("s", config).ok()) return 1;
  StreamConfig write;
  write.window_size = 8192;
  write.num_buckets = 16;
  write.epsilon = 0.1;
  if (!engine.CreateStream("w", write).ok()) return 1;
  StreamConfig big;
  big.window_size = smoke ? 1024 : 2048;
  big.num_buckets = 32;
  big.epsilon = 0.1;
  if (!engine.CreateStream("big", big).ok()) return 1;
  if (!engine
           .AppendBatch("s", GenerateDataset(DatasetKind::kUtilization, 4096,
                                             /*seed=*/17))
           .ok()) {
    return 1;
  }
  if (!engine
           .AppendBatch("w", GenerateDataset(DatasetKind::kUtilization, 1024,
                                             /*seed=*/19))
           .ok()) {
    return 1;
  }
  if (!engine
           .AppendBatch("big",
                        GenerateDataset(DatasetKind::kRandomWalk,
                                        big.window_size,
                                        /*seed=*/18))
           .ok()) {
    return 1;
  }

  net::ServerOptions options;
  options.threads = server_threads;
  auto server = net::TcpServer::Start(engine, options);
  if (!server.ok()) {
    std::fprintf(stderr, "bench_load: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  const uint16_t port = server.value()->port();
  std::printf("  serving on 127.0.0.1:%u\n", port);
  std::fflush(stdout);

  // Section 1: closed-loop latency vs offered load.
  std::vector<LoadLevel> measured;
  bench::TablePrinter table(
      {"clients", "stmts/s", "p50 us", "p99 us", "p99.9 us", "errors"});
  for (const int clients : levels) {
    measured.push_back(MeasureLevel(port, clients, duration_ms));
    const LoadLevel& level = measured.back();
    table.AddRow({std::to_string(level.clients),
                  bench::FmtInt(static_cast<int64_t>(level.throughput)),
                  bench::Fmt(level.p50_us), bench::Fmt(level.p99_us),
                  bench::Fmt(level.p999_us),
                  std::to_string(level.typed_errors + level.protocol_errors)});
  }
  table.Print();

  // Section 2: bounded write path, text singles vs binary frames.
  const int single_appends = smoke ? 32 : 64;
  const int batch_appends = smoke ? 16 : 32;
  const int values_per_batch = 32;
  const AppendStats singles =
      MeasureAppends(port, /*batch=*/false, single_appends, 0);
  const AppendStats batches =
      MeasureAppends(port, /*batch=*/true, batch_appends, values_per_batch);
  bench::TablePrinter writes(
      {"append path", "requests", "values", "values/s", "p50 us", "p99 us"});
  writes.AddRow({"text single", std::to_string(singles.requests),
                 std::to_string(singles.values),
                 bench::FmtInt(static_cast<int64_t>(singles.values_per_sec)),
                 bench::Fmt(singles.p50_us), bench::Fmt(singles.p99_us)});
  writes.AddRow({"binary batch", std::to_string(batches.requests),
                 std::to_string(batches.values),
                 bench::FmtInt(static_cast<int64_t>(batches.values_per_sec)),
                 bench::Fmt(batches.p50_us), bench::Fmt(batches.p99_us)});
  writes.Print();

  // Section 3: BUILD rung distribution across WITHIN budgets. Tight budgets
  // push builds down the ladder; generous ones let the exact DP finish.
  const std::vector<int64_t> budgets =
      smoke ? std::vector<int64_t>{1, 50}
            : std::vector<int64_t>{1, 10, 100, 2000};
  std::vector<RungCounts> rungs;
  bench::TablePrinter ladder(
      {"WITHIN ms", "builds", "exact", "approx", "snapshot", "degraded"});
  for (const int64_t within : budgets) {
    rungs.push_back(MeasureRungs(port, within, builds_per_budget));
    const RungCounts& counts = rungs.back();
    ladder.AddRow({std::to_string(counts.within_ms),
                   std::to_string(counts.builds), std::to_string(counts.exact),
                   std::to_string(counts.approx),
                   std::to_string(counts.snapshot),
                   std::to_string(counts.degraded)});
  }
  ladder.Print();

  server.value()->Shutdown();
  const net::ServerStatsSnapshot stats = server.value()->stats();
  std::printf("  %s\n", server.value()->SummaryLine().c_str());
  std::fflush(stdout);

  int64_t protocol_errors = 0;
  int64_t build_errors = 0;
  for (const LoadLevel& level : measured) {
    protocol_errors += level.protocol_errors;
  }
  protocol_errors += singles.protocol_errors + batches.protocol_errors;
  for (const RungCounts& counts : rungs) build_errors += counts.errors;
  const double top_throughput = measured.back().throughput;
  const bool throughput_ok = !smoke || top_throughput >= throughput_gate;
  const bool errors_ok = protocol_errors == 0 && build_errors == 0 &&
                         stats.protocol_errors == 0;

  bench::JsonWriter json;
  json.BeginObject()
      .Key("bench").Value(std::string("BENCH_PR6"))
      .Key("schema_version").Value(int64_t{1})
      .Key("smoke").Value(smoke)
      .Key("server_threads").Value(static_cast<int64_t>(server_threads))
      .Key("duration_ms").Value(static_cast<int64_t>(duration_ms))
      .Key("hardware_threads")
      .Value(static_cast<int64_t>(std::thread::hardware_concurrency()))
      .Key("latency_vs_load").BeginArray();
  for (const LoadLevel& level : measured) {
    json.BeginObject()
        .Key("clients").Value(static_cast<int64_t>(level.clients))
        .Key("requests").Value(level.requests)
        .Key("seconds").Value(level.seconds)
        .Key("throughput_per_sec").Value(level.throughput)
        .Key("p50_us").Value(level.p50_us)
        .Key("p99_us").Value(level.p99_us)
        .Key("p999_us").Value(level.p999_us)
        .Key("typed_errors").Value(level.typed_errors)
        .Key("protocol_errors").Value(level.protocol_errors)
        .EndObject();
  }
  json.EndArray().Key("append_path").BeginObject();
  const std::pair<const char*, const AppendStats*> flavors[] = {
      {"text_single", &singles}, {"binary_batch32", &batches}};
  for (const auto& [name, stats_ptr] : flavors) {
    json.Key(std::string(name)).BeginObject()
        .Key("requests").Value(stats_ptr->requests)
        .Key("values").Value(stats_ptr->values)
        .Key("seconds").Value(stats_ptr->seconds)
        .Key("values_per_sec").Value(stats_ptr->values_per_sec)
        .Key("p50_us").Value(stats_ptr->p50_us)
        .Key("p99_us").Value(stats_ptr->p99_us)
        .Key("typed_errors").Value(stats_ptr->typed_errors)
        .Key("protocol_errors").Value(stats_ptr->protocol_errors)
        .EndObject();
  }
  json.EndObject().Key("degradation").BeginArray();
  for (const RungCounts& counts : rungs) {
    json.BeginObject()
        .Key("within_ms").Value(counts.within_ms)
        .Key("builds").Value(counts.builds)
        .Key("exact").Value(counts.exact)
        .Key("approx").Value(counts.approx)
        .Key("snapshot").Value(counts.snapshot)
        .Key("degraded").Value(counts.degraded)
        .Key("errors").Value(counts.errors)
        .EndObject();
  }
  json.EndArray()
      .Key("server_stats").BeginObject()
      .Key("statements").Value(stats.statements)
      .Key("batch_frames").Value(stats.batch_frames)
      .Key("batch_values").Value(stats.batch_values)
      .Key("accepted").Value(stats.accepted)
      .Key("protocol_errors").Value(stats.protocol_errors)
      .Key("bytes_in").Value(stats.bytes_in)
      .Key("bytes_out").Value(stats.bytes_out)
      .EndObject()
      .Key("gates").BeginObject()
      .Key("throughput").BeginObject()
      .Key("limit_per_sec").Value(throughput_gate)
      .Key("top_level_per_sec").Value(top_throughput)
      .Key("evaluated").Value(smoke)
      .Key("ok").Value(throughput_ok)
      .EndObject()
      .Key("protocol_errors").BeginObject()
      .Key("count").Value(protocol_errors + build_errors)
      .Key("ok").Value(errors_ok)
      .EndObject()
      .EndObject().EndObject();

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << json.str() << '\n';
  std::printf("  wrote %s\n", out_path.c_str());

  if (!errors_ok) {
    std::fprintf(stderr, "bench_load: %lld protocol error(s) observed\n",
                 static_cast<long long>(protocol_errors + build_errors +
                                        stats.protocol_errors));
    return 2;
  }
  if (!throughput_ok) {
    std::fprintf(stderr,
                 "bench_load: top-level throughput %.0f/s is below the "
                 "%.0f/s smoke gate\n",
                 top_throughput, throughput_gate);
    return 3;
  }
  return 0;
}

}  // namespace streamhist

int main(int argc, char** argv) {
  const bool pr6 =
      !streamhist::bench::FlagStr(argc, argv, "pr6_json", "").empty();
  const bool pr7 =
      !streamhist::bench::FlagStr(argc, argv, "pr7_json", "").empty();
  const bool pr8 =
      !streamhist::bench::FlagStr(argc, argv, "pr8_json", "").empty() ||
      streamhist::bench::FlagInt(argc, argv, "pr8_smoke", 0) != 0;
  const bool pr9 =
      !streamhist::bench::FlagStr(argc, argv, "pr9_json", "").empty() ||
      streamhist::bench::FlagInt(argc, argv, "pr9_smoke", 0) != 0;
  if (!pr6 && !pr7 && !pr8 && !pr9) {
    std::fprintf(stderr,
                 "usage: bench_load --pr6_json=BENCH_PR6.json "
                 "[--pr6_smoke=1] [--pr6_threads=N] [--pr6_duration_ms=M]\n"
                 "       bench_load --pr7_json=BENCH_PR7.json "
                 "[--pr7_smoke=1] [--pr7_threads=N] [--pr7_appends=M]\n"
                 "       bench_load --pr8_json=BENCH_PR8.json "
                 "[--pr8_smoke=1] [--pr8_threads=N] [--pr8_readers=R] "
                 "[--pr8_values=M]\n"
                 "       bench_load --pr9_json=BENCH_PR9.json "
                 "[--pr9_smoke=1] [--pr9_readers=R] [--pr9_threads=N] "
                 "[--pr9_duration_ms=M]\n");
    return 1;
  }
  if (pr6) {
    const int status = streamhist::RunBenchPr6(argc, argv);
    if (status != 0 || (!pr7 && !pr8 && !pr9)) return status;
  }
  if (pr7) {
    const int status = streamhist::RunBenchPr7(argc, argv);
    if (status != 0 || (!pr8 && !pr9)) return status;
  }
  if (pr8) {
    const int status = streamhist::RunBenchPr8(argc, argv);
    if (status != 0 || !pr9) return status;
  }
  return streamhist::RunBenchPr9(argc, argv);
}
