// E10 — google-benchmark micro-benchmarks: per-operation costs of every
// builder and of the supporting data structures.

#include <vector>

#include <benchmark/benchmark.h>

#include "src/core/agglomerative.h"
#include "src/core/fixed_window.h"
#include "src/core/heuristics.h"
#include "src/core/vopt_dp.h"
#include "src/data/generators.h"
#include "src/quantile/gk_summary.h"
#include "src/engine/query_engine.h"
#include "src/sketch/fm_sketch.h"
#include "src/sketch/l1_sketch.h"
#include "src/stream/sliding_window.h"
#include "src/timeseries/paa.h"
#include "src/timeseries/rtree.h"
#include "src/util/random.h"
#include "src/wavelet/sliding_wavelet.h"
#include "src/wavelet/synopsis.h"

namespace streamhist {
namespace {

const std::vector<double>& SharedStream() {
  static const std::vector<double>* stream = new std::vector<double>(
      GenerateDataset(DatasetKind::kUtilization, 1 << 18, /*seed=*/1));
  return *stream;
}

void BM_SlidingWindowAppend(benchmark::State& state) {
  const auto& stream = SharedStream();
  SlidingWindow w(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    w.Append(stream[i++ & (stream.size() - 1)]);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SlidingWindowAppend)->Arg(256)->Arg(4096)->Arg(65536);

void BM_FixedWindowAppend(benchmark::State& state) {
  const auto& stream = SharedStream();
  FixedWindowOptions options;
  options.window_size = state.range(0);
  options.num_buckets = state.range(1);
  options.epsilon = 0.5;
  options.rebuild_on_append = true;
  FixedWindowHistogram fw = FixedWindowHistogram::Create(options).value();
  size_t i = 0;
  for (; i < static_cast<size_t>(options.window_size); ++i) {
    fw.Append(stream[i]);
  }
  for (auto _ : state) {
    fw.Append(stream[i++ & (stream.size() - 1)]);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FixedWindowAppend)
    ->Args({256, 8})
    ->Args({1024, 8})
    ->Args({1024, 32})
    ->Args({4096, 8});

void BM_AgglomerativeAppend(benchmark::State& state) {
  const auto& stream = SharedStream();
  ApproxHistogramOptions options;
  options.num_buckets = state.range(0);
  options.epsilon = 0.1;
  AgglomerativeHistogram agg = AgglomerativeHistogram::Create(options).value();
  size_t i = 0;
  for (auto _ : state) {
    agg.Append(stream[i++ & (stream.size() - 1)]);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AgglomerativeAppend)->Arg(8)->Arg(32)->Arg(128);

void BM_StreamingMergeAppend(benchmark::State& state) {
  const auto& stream = SharedStream();
  StreamingMergeHistogram merge(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    merge.Append(stream[i++ & (stream.size() - 1)]);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_StreamingMergeAppend)->Arg(8)->Arg(32)->Arg(128);

void BM_GKSummaryInsert(benchmark::State& state) {
  const auto& stream = SharedStream();
  GKSummary gk = GKSummary::Create(1.0 / static_cast<double>(state.range(0)))
                     .value();
  size_t i = 0;
  for (auto _ : state) {
    gk.Insert(stream[i++ & (stream.size() - 1)]);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_GKSummaryInsert)->Arg(100)->Arg(1000);

void BM_WaveletRebuild(benchmark::State& state) {
  const auto& stream = SharedStream();
  const int64_t n = state.range(0);
  const std::vector<double> window(stream.begin(),
                                   stream.begin() + static_cast<ptrdiff_t>(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(WaveletSynopsis::Build(window, 32));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_WaveletRebuild)->Arg(256)->Arg(1024)->Arg(4096);

void BM_VOptimalDp(benchmark::State& state) {
  const auto& stream = SharedStream();
  const int64_t n = state.range(0);
  const std::vector<double> data(stream.begin(),
                                 stream.begin() + static_cast<ptrdiff_t>(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildVOptimalHistogram(data, 16));
  }
}
BENCHMARK(BM_VOptimalDp)->Arg(256)->Arg(1024)->Arg(4096);

void BM_QueryEngineAppend(benchmark::State& state) {
  const auto& stream = SharedStream();
  QueryEngine engine;
  StreamConfig config;
  config.window_size = state.range(0);
  config.num_buckets = 16;
  (void)engine.CreateStream("s", config);
  ManagedStream* s = engine.GetStream("s").value();
  size_t i = 0;
  for (auto _ : state) {
    s->Append(stream[i++ & (stream.size() - 1)]);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_QueryEngineAppend)->Arg(1024)->Arg(8192);

void BM_QueryEngineExecute(benchmark::State& state) {
  const auto& stream = SharedStream();
  QueryEngine engine;
  StreamConfig config;
  config.window_size = 1024;
  config.num_buckets = 16;
  (void)engine.CreateStream("s", config);
  ManagedStream* s = engine.GetStream("s").value();
  for (size_t i = 0; i < 4096; ++i) s->Append(stream[i]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Execute("SUM s LAST 100"));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_QueryEngineExecute);

void BM_SlidingWaveletAppend(benchmark::State& state) {
  const auto& stream = SharedStream();
  SlidingWavelet w = SlidingWavelet::Create(state.range(0)).value();
  size_t i = 0;
  for (auto _ : state) {
    w.Append(stream[i++ & (stream.size() - 1)]);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SlidingWaveletAppend)->Arg(256)->Arg(4096)->Arg(65536);

void BM_FMSketchAdd(benchmark::State& state) {
  FMSketch sketch = FMSketch::Create(state.range(0)).value();
  uint64_t key = 0;
  for (auto _ : state) {
    sketch.Add(key++);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FMSketchAdd)->Arg(64)->Arg(1024);

void BM_L1SketchUpdate(benchmark::State& state) {
  L1Sketch sketch = L1Sketch::Create(state.range(0)).value();
  int64_t i = 0;
  for (auto _ : state) {
    sketch.Update(i++, 1.0);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_L1SketchUpdate)->Arg(32)->Arg(256);

void BM_PaaFeatures(benchmark::State& state) {
  const auto& stream = SharedStream();
  const std::vector<double> series(stream.begin(), stream.begin() + 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PaaFeatures(series, state.range(0)));
  }
}
BENCHMARK(BM_PaaFeatures)->Arg(8)->Arg(64);

void BM_RTreeBallQuery(benchmark::State& state) {
  Random rng(1);
  std::vector<std::vector<double>> points;
  for (int64_t i = 0; i < state.range(0); ++i) {
    std::vector<double> p;
    for (int d = 0; d < 8; ++d) p.push_back(rng.UniformDouble(0, 100));
    points.push_back(std::move(p));
  }
  RTree tree(points);
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.BallQuery(points[q++ % points.size()], 20.0));
  }
}
BENCHMARK(BM_RTreeBallQuery)->Arg(1000)->Arg(10000);

void BM_HistogramRangeSum(benchmark::State& state) {
  const auto& stream = SharedStream();
  const std::vector<double> data(stream.begin(), stream.begin() + 4096);
  const Histogram h = BuildEquiWidthHistogram(data, state.range(0));
  int64_t lo = 0;
  for (auto _ : state) {
    lo = (lo + 97) % 2048;
    benchmark::DoNotOptimize(h.RangeSum(lo, lo + 2048));
  }
}
BENCHMARK(BM_HistogramRangeSum)->Arg(16)->Arg(256);

}  // namespace
}  // namespace streamhist

BENCHMARK_MAIN();
