// E10 — google-benchmark micro-benchmarks: per-operation costs of every
// builder and of the supporting data structures.
//
// PR1 mode: `bench_micro --pr1_json=BENCH_PR1.json` skips google-benchmark
// and instead times serial-vs-threaded construction (V-optimal DP layers and
// engine batch construction across streams), writing a machine-readable JSON
// artifact so later PRs have a perf trajectory. See EXPERIMENTS.md for the
// schema and flags (--pr1_threads, --pr1_streams, --pr1_smoke, --pr1_dp_full).
//
// PR3 mode: `bench_micro --pr3_json=BENCH_PR3.json` times the exact O(n^2 B)
// V-optimal DP against the (1+delta)-approximate interval-cover DP across an
// (n, B, delta) grid and records realized approximation ratios against the
// certified (1+delta)^(B-1) bound. Flags: --pr3_threads, --pr3_smoke. See
// EXPERIMENTS.md for the schema and the exact-DP feasibility policy.
//
// PR4 mode: `bench_micro --pr4_json=BENCH_PR4.json` measures the resource
// governor: BUILD latency percentiles through the degradation ladder vs the
// raw kernels (the no-deadline overhead gate), and the rung distribution
// when deadlines of {1, 5, 50} ms are imposed. Flags: --pr4_threads,
// --pr4_smoke. See EXPERIMENTS.md for the schema.
//
// PR5 mode: `bench_micro --pr5_json=BENCH_PR5.json` measures the concurrent
// engine core: Execute read throughput at 1/2/4/8 reader threads against a
// concurrent APPEND writer (the snapshot-isolation scaling story), plus the
// single-threaded Execute overhead vs a bench-local replica of the PR4 hot
// path (plain std::map registry, direct synopsis query). Gates: 4-reader
// speedup >= 2x (evaluated only when the host has >= 4 hardware threads)
// and single-thread overhead < 3%. Flags: --pr5_smoke. See EXPERIMENTS.md.

#include <algorithm>
#include <atomic>
#include <bit>
#include <cctype>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "src/core/agglomerative.h"
#include "src/core/approx_dp.h"
#include "src/core/error_bounds.h"
#include "src/core/fixed_window.h"
#include "src/core/heuristics.h"
#include "src/core/vopt_dp.h"
#include "src/data/generators.h"
#include "src/engine/managed_stream.h"
#include "src/engine/query_engine.h"
#include "src/quantile/gk_summary.h"
#include "src/util/deadline.h"
#include "src/sketch/fm_sketch.h"
#include "src/sketch/l1_sketch.h"
#include "src/stream/sliding_window.h"
#include "src/timeseries/paa.h"
#include "src/timeseries/rtree.h"
#include "src/util/random.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"
#include "src/wavelet/sliding_wavelet.h"
#include "src/wavelet/synopsis.h"

namespace streamhist {
namespace {

const std::vector<double>& SharedStream() {
  static const std::vector<double>* stream = new std::vector<double>(
      GenerateDataset(DatasetKind::kUtilization, 1 << 18, /*seed=*/1));
  return *stream;
}

void BM_SlidingWindowAppend(benchmark::State& state) {
  const auto& stream = SharedStream();
  SlidingWindow w(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    w.Append(stream[i++ & (stream.size() - 1)]);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SlidingWindowAppend)->Arg(256)->Arg(4096)->Arg(65536);

void BM_FixedWindowAppend(benchmark::State& state) {
  const auto& stream = SharedStream();
  FixedWindowOptions options;
  options.window_size = state.range(0);
  options.num_buckets = state.range(1);
  options.epsilon = 0.5;
  options.rebuild_on_append = true;
  FixedWindowHistogram fw = FixedWindowHistogram::Create(options).value();
  size_t i = 0;
  for (; i < static_cast<size_t>(options.window_size); ++i) {
    fw.Append(stream[i]);
  }
  for (auto _ : state) {
    fw.Append(stream[i++ & (stream.size() - 1)]);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FixedWindowAppend)
    ->Args({256, 8})
    ->Args({1024, 8})
    ->Args({1024, 32})
    ->Args({4096, 8});

void BM_AgglomerativeAppend(benchmark::State& state) {
  const auto& stream = SharedStream();
  ApproxHistogramOptions options;
  options.num_buckets = state.range(0);
  options.epsilon = 0.1;
  AgglomerativeHistogram agg = AgglomerativeHistogram::Create(options).value();
  size_t i = 0;
  for (auto _ : state) {
    agg.Append(stream[i++ & (stream.size() - 1)]);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AgglomerativeAppend)->Arg(8)->Arg(32)->Arg(128);

void BM_StreamingMergeAppend(benchmark::State& state) {
  const auto& stream = SharedStream();
  StreamingMergeHistogram merge(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    merge.Append(stream[i++ & (stream.size() - 1)]);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_StreamingMergeAppend)->Arg(8)->Arg(32)->Arg(128);

void BM_GKSummaryInsert(benchmark::State& state) {
  const auto& stream = SharedStream();
  GKSummary gk = GKSummary::Create(1.0 / static_cast<double>(state.range(0)))
                     .value();
  size_t i = 0;
  for (auto _ : state) {
    gk.Insert(stream[i++ & (stream.size() - 1)]);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_GKSummaryInsert)->Arg(100)->Arg(1000);

void BM_WaveletRebuild(benchmark::State& state) {
  const auto& stream = SharedStream();
  const int64_t n = state.range(0);
  const std::vector<double> window(stream.begin(),
                                   stream.begin() + static_cast<ptrdiff_t>(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(WaveletSynopsis::Build(window, 32));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_WaveletRebuild)->Arg(256)->Arg(1024)->Arg(4096);

void BM_VOptimalDp(benchmark::State& state) {
  const auto& stream = SharedStream();
  const int64_t n = state.range(0);
  const std::vector<double> data(stream.begin(),
                                 stream.begin() + static_cast<ptrdiff_t>(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildVOptimalHistogram(data, 16));
  }
}
BENCHMARK(BM_VOptimalDp)->Arg(256)->Arg(1024)->Arg(4096);

void BM_VOptimalDpThreads(benchmark::State& state) {
  const auto& stream = SharedStream();
  const int64_t n = state.range(0);
  const std::vector<double> data(stream.begin(),
                                 stream.begin() + static_cast<ptrdiff_t>(n));
  SetThreadCount(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildVOptimalHistogram(data, 32));
  }
  SetThreadCount(DefaultThreadCount());
}
BENCHMARK(BM_VOptimalDpThreads)
    ->Args({4096, 1})
    ->Args({4096, 2})
    ->Args({4096, 4});

void BM_QueryEngineAppend(benchmark::State& state) {
  const auto& stream = SharedStream();
  QueryEngine engine;
  StreamConfig config;
  config.window_size = state.range(0);
  config.num_buckets = 16;
  (void)engine.CreateStream("s", config);
  const StreamHandle s = engine.Stream("s").value();
  size_t i = 0;
  for (auto _ : state) {
    s.stream().Append(stream[i++ & (stream.size() - 1)]);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_QueryEngineAppend)->Arg(1024)->Arg(8192);

void BM_QueryEngineExecute(benchmark::State& state) {
  const auto& stream = SharedStream();
  QueryEngine engine;
  StreamConfig config;
  config.window_size = 1024;
  config.num_buckets = 16;
  (void)engine.CreateStream("s", config);
  // Feed through the engine so the query snapshot is published.
  (void)engine.AppendBatch("s", std::span<const double>(stream.data(), 4096));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Execute("SUM s LAST 100"));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_QueryEngineExecute);

void BM_SlidingWaveletAppend(benchmark::State& state) {
  const auto& stream = SharedStream();
  SlidingWavelet w = SlidingWavelet::Create(state.range(0)).value();
  size_t i = 0;
  for (auto _ : state) {
    w.Append(stream[i++ & (stream.size() - 1)]);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SlidingWaveletAppend)->Arg(256)->Arg(4096)->Arg(65536);

void BM_FMSketchAdd(benchmark::State& state) {
  FMSketch sketch = FMSketch::Create(state.range(0)).value();
  uint64_t key = 0;
  for (auto _ : state) {
    sketch.Add(key++);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FMSketchAdd)->Arg(64)->Arg(1024);

void BM_L1SketchUpdate(benchmark::State& state) {
  L1Sketch sketch = L1Sketch::Create(state.range(0)).value();
  int64_t i = 0;
  for (auto _ : state) {
    sketch.Update(i++, 1.0);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_L1SketchUpdate)->Arg(32)->Arg(256);

void BM_PaaFeatures(benchmark::State& state) {
  const auto& stream = SharedStream();
  const std::vector<double> series(stream.begin(), stream.begin() + 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PaaFeatures(series, state.range(0)));
  }
}
BENCHMARK(BM_PaaFeatures)->Arg(8)->Arg(64);

void BM_RTreeBallQuery(benchmark::State& state) {
  Random rng(1);
  std::vector<std::vector<double>> points;
  for (int64_t i = 0; i < state.range(0); ++i) {
    std::vector<double> p;
    for (int d = 0; d < 8; ++d) p.push_back(rng.UniformDouble(0, 100));
    points.push_back(std::move(p));
  }
  RTree tree(points);
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.BallQuery(points[q++ % points.size()], 20.0));
  }
}
BENCHMARK(BM_RTreeBallQuery)->Arg(1000)->Arg(10000);

void BM_HistogramRangeSum(benchmark::State& state) {
  const auto& stream = SharedStream();
  const std::vector<double> data(stream.begin(), stream.begin() + 4096);
  const Histogram h = BuildEquiWidthHistogram(data, state.range(0));
  int64_t lo = 0;
  for (auto _ : state) {
    lo = (lo + 97) % 2048;
    benchmark::DoNotOptimize(h.RangeSum(lo, lo + 2048));
  }
}
BENCHMARK(BM_HistogramRangeSum)->Arg(16)->Arg(256);

// --- PR1: serial vs threaded construction, machine-readable artifact ---

struct Pr1Row {
  int64_t n = 0;
  int64_t num_buckets = 0;
  int64_t streams = 0;  // 0 for single-structure (DP) rows
  double serial_seconds = 0.0;
  double threaded_seconds = 0.0;
  bool identical = false;  // threaded output bit-identical to serial
};

// Times one exact-DP build; fingerprints the result for the determinism
// cross-check (exact error value + every bucket boundary/value).
double TimeVOptDp(const std::vector<double>& data, int64_t num_buckets,
                  std::string* fingerprint) {
  Timer timer;
  const OptimalHistogramResult result =
      BuildVOptimalHistogram(data, num_buckets);
  const double elapsed = timer.ElapsedSeconds();
  std::ostringstream os;
  os.precision(17);
  os << result.error;
  for (const Bucket& b : result.histogram.buckets()) {
    os << '|' << b.begin << ',' << b.end << ',' << b.value;
  }
  *fingerprint = os.str();
  return elapsed;
}

// Times engine batch construction: `streams` independent streams each fed an
// n-point batch, then every synopsis refreshed. Parallelism comes from
// AppendBatches/RefreshAll fanning per-stream jobs onto the pool.
double TimeBatchConstruction(const std::vector<std::vector<double>>& data,
                             int64_t num_buckets, std::string* fingerprint) {
  QueryEngine engine;
  StreamConfig config;
  config.window_size = 1024;
  config.num_buckets = num_buckets;
  config.epsilon = 0.1;
  std::vector<StreamBatch> batches;
  for (size_t s = 0; s < data.size(); ++s) {
    const std::string name = "s" + std::to_string(s);
    if (!engine.CreateStream(name, config).ok()) std::abort();
    batches.push_back(StreamBatch{name, data[s]});
  }
  Timer timer;
  if (!engine.AppendBatches(batches).ok()) std::abort();
  engine.RefreshAll();
  const double elapsed = timer.ElapsedSeconds();
  std::ostringstream os;
  for (const StreamBatch& batch : batches) {
    os << engine.Execute("DESCRIBE " + batch.name).value() << '\n'
       << engine.Execute("SHOW " + batch.name).value() << '\n';
  }
  *fingerprint = os.str();
  return elapsed;
}

}  // namespace

int RunBenchPr1(int argc, char** argv) {
  using bench::FlagInt;
  using bench::FlagStr;
  const std::string out_path = FlagStr(argc, argv, "pr1_json", "");
  const int threads = static_cast<int>(
      FlagInt(argc, argv, "pr1_threads", DefaultThreadCount()));
  if (threads < 1) {
    std::fprintf(stderr, "bench_micro: --pr1_threads must be >= 1 (got %d)\n",
                 threads);
    return 1;
  }
  const int64_t num_streams = FlagInt(argc, argv, "pr1_streams", 8);
  if (num_streams < 1) {
    std::fprintf(stderr,
                 "bench_micro: --pr1_streams must be >= 1 (got %lld)\n",
                 static_cast<long long>(num_streams));
    return 1;
  }
  const bool smoke = FlagInt(argc, argv, "pr1_smoke", 0) != 0;
  const bool dp_full = FlagInt(argc, argv, "pr1_dp_full", 0) != 0;
  const std::vector<int64_t> bucket_grid{32, 128};

  // The engine batch grid is the headline (n = points per stream). The exact
  // DP is O(n^2 B), so its default grid is capped; --pr1_dp_full=1 runs the
  // full batch grid through the DP as well (minutes to hours of work).
  std::vector<int64_t> batch_grid{16384, 65536, 262144};
  std::vector<int64_t> dp_grid{4096, 8192};
  if (dp_full) dp_grid = batch_grid;
  if (smoke) {
    batch_grid = {2048, 4096};
    dp_grid = {512, 1024};
  }

  bench::Banner("BENCH_PR1: serial vs threaded construction (threads=" +
                std::to_string(threads) + ")");
  std::vector<Pr1Row> dp_rows;
  for (const int64_t n : dp_grid) {
    const std::vector<double> data =
        GenerateDataset(DatasetKind::kUtilization, n, /*seed=*/7);
    for (const int64_t num_buckets : bucket_grid) {
      Pr1Row row;
      row.n = n;
      row.num_buckets = num_buckets;
      std::string serial_fp;
      std::string threaded_fp;
      SetThreadCount(1);
      row.serial_seconds = TimeVOptDp(data, num_buckets, &serial_fp);
      SetThreadCount(threads);
      row.threaded_seconds = TimeVOptDp(data, num_buckets, &threaded_fp);
      row.identical = serial_fp == threaded_fp;
      dp_rows.push_back(row);
      std::printf("  vopt_dp n=%lld B=%lld serial=%.3fs threaded=%.3fs %s\n",
                  static_cast<long long>(n),
                  static_cast<long long>(num_buckets), row.serial_seconds,
                  row.threaded_seconds,
                  row.identical ? "bit-identical" : "MISMATCH");
    }
  }

  std::vector<Pr1Row> batch_rows;
  for (const int64_t n : batch_grid) {
    std::vector<std::vector<double>> data;
    for (int64_t s = 0; s < num_streams; ++s) {
      data.push_back(GenerateDataset(DatasetKind::kUtilization, n,
                                     /*seed=*/100 + static_cast<uint64_t>(s)));
    }
    for (const int64_t num_buckets : bucket_grid) {
      Pr1Row row;
      row.n = n;
      row.num_buckets = num_buckets;
      row.streams = num_streams;
      std::string serial_fp;
      std::string threaded_fp;
      SetThreadCount(1);
      row.serial_seconds = TimeBatchConstruction(data, num_buckets, &serial_fp);
      SetThreadCount(threads);
      row.threaded_seconds =
          TimeBatchConstruction(data, num_buckets, &threaded_fp);
      row.identical = serial_fp == threaded_fp;
      batch_rows.push_back(row);
      std::printf(
          "  batch n=%lld B=%lld streams=%lld serial=%.3fs threaded=%.3fs "
          "%s\n",
          static_cast<long long>(n), static_cast<long long>(num_buckets),
          static_cast<long long>(num_streams), row.serial_seconds,
          row.threaded_seconds, row.identical ? "bit-identical" : "MISMATCH");
    }
  }
  SetThreadCount(DefaultThreadCount());

  bench::JsonWriter json;
  json.BeginObject()
      .Key("bench").Value(std::string("BENCH_PR1"))
      .Key("schema_version").Value(int64_t{1})
      .Key("serial_threads").Value(int64_t{1})
      .Key("threaded_threads").Value(static_cast<int64_t>(threads))
      .Key("hardware_threads").Value(static_cast<int64_t>(DefaultThreadCount()))
      .Key("smoke").Value(smoke)
      .Key("dp_full").Value(dp_full);
  const auto emit_rows = [&json](const std::string& key,
                                 const std::vector<Pr1Row>& rows) {
    json.Key(key).BeginArray();
    for (const Pr1Row& row : rows) {
      json.BeginObject()
          .Key("n").Value(row.n)
          .Key("B").Value(row.num_buckets);
      if (row.streams > 0) json.Key("streams").Value(row.streams);
      json.Key("serial_seconds").Value(row.serial_seconds)
          .Key("threaded_seconds").Value(row.threaded_seconds)
          .Key("speedup")
          .Value(row.threaded_seconds > 0.0
                     ? row.serial_seconds / row.threaded_seconds
                     : 0.0)
          .Key("identical").Value(row.identical)
          .EndObject();
    }
    json.EndArray();
  };
  emit_rows("vopt_dp", dp_rows);
  emit_rows("batch_construction", batch_rows);
  json.EndObject();

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << json.str() << '\n';
  std::printf("  wrote %s\n", out_path.c_str());

  bool all_identical = true;
  for (const Pr1Row& row : dp_rows) all_identical &= row.identical;
  for (const Pr1Row& row : batch_rows) all_identical &= row.identical;
  return all_identical ? 0 : 2;
}

// --- PR3: exact vs (1+delta)-approximate V-optimal DP ---

namespace {

struct Pr3Row {
  int64_t n = 0;
  int64_t num_buckets = 0;
  double delta = 0.0;
  double approx_seconds = 0.0;
  double approx_sse = 0.0;
  double dp_error = 0.0;
  double bound_factor = 1.0;
  int64_t cost_evals = 0;
  int64_t max_cover_size = 0;
  // The exact DP is only timed where O(n^2 B) is feasible on one machine;
  // rows with exact_measured == false omit the exact/ratio fields.
  bool exact_measured = false;
  double exact_seconds = 0.0;
  double exact_sse = 0.0;
  double speedup = 0.0;        // exact_seconds / approx_seconds
  double realized_ratio = 0.0; // approx_sse / exact_sse (1.0 when exact == 0)
  bool within_bound = true;
};

// Certified-bound check with the same float slack the property tests use:
// two independently-accumulated long-double sums compared through doubles.
bool RatioWithinBound(double approx_sse, double exact_sse, double bound) {
  return approx_sse <= bound * exact_sse * (1.0 + 1e-9) + 1e-6;
}

}  // namespace

int RunBenchPr3(int argc, char** argv) {
  using bench::FlagInt;
  using bench::FlagStr;
  const std::string out_path = FlagStr(argc, argv, "pr3_json", "");
  const int threads = static_cast<int>(
      FlagInt(argc, argv, "pr3_threads", DefaultThreadCount()));
  if (threads < 1) {
    std::fprintf(stderr, "bench_micro: --pr3_threads must be >= 1 (got %d)\n",
                 threads);
    return 1;
  }
  const bool smoke = FlagInt(argc, argv, "pr3_smoke", 0) != 0;

  // Full grid per EXPERIMENTS.md. The exact DP at n=1e5 B=64 already takes
  // tens of minutes serial; n=1e6 (and n=1e5 B=256) exact runs are days of
  // work, so the feasibility policy below skips them and those rows carry
  // only approximate-side numbers.
  std::vector<int64_t> n_grid{10000, 100000, 1000000};
  std::vector<int64_t> bucket_grid{16, 64, 256};
  std::vector<double> delta_grid{0.5, 0.1, 0.01};
  if (smoke) {
    // CI perf-smoke grid: small enough that the exact DP is measured on
    // every row, and it includes the (n=5e4, B=64, delta=0.1) gate cell.
    n_grid = {20000, 50000};
    bucket_grid = {16, 64};
    delta_grid = {0.5, 0.1};
  }
  const auto exact_feasible = [&](int64_t n, int64_t num_buckets) {
    if (smoke) return true;
    return n <= 10000 || (n <= 100000 && num_buckets <= 64);
  };

  bench::Banner("BENCH_PR3: exact vs (1+delta)-approximate V-optimal DP "
                "(threads=" + std::to_string(threads) + ")");
  SetThreadCount(threads);
  std::vector<Pr3Row> rows;
  bool all_within_bound = true;
  bool gate_speedup_ok = true;  // smoke gate: approx faster at 5e4/64/0.1
  for (const int64_t n : n_grid) {
    const std::vector<double> data =
        GenerateDataset(DatasetKind::kUtilization, n, /*seed=*/7);
    for (const int64_t num_buckets : bucket_grid) {
      // Exact DP once per (n, B); it does not depend on delta.
      const bool run_exact = exact_feasible(n, num_buckets);
      double exact_seconds = 0.0;
      double exact_sse = 0.0;
      if (run_exact) {
        Timer timer;
        exact_sse = OptimalSse(data, num_buckets);
        exact_seconds = timer.ElapsedSeconds();
        std::printf("  exact  n=%lld B=%lld sse=%.6g %.3fs\n",
                    static_cast<long long>(n),
                    static_cast<long long>(num_buckets), exact_sse,
                    exact_seconds);
        std::fflush(stdout);
      }
      for (const double delta : delta_grid) {
        Pr3Row row;
        row.n = n;
        row.num_buckets = num_buckets;
        row.delta = delta;
        Timer timer;
        const ApproxHistogramResult approx =
            BuildApproxVOptimalHistogram(data, num_buckets, delta);
        row.approx_seconds = timer.ElapsedSeconds();
        row.approx_sse = approx.sse;
        row.dp_error = approx.dp_error;
        row.bound_factor = approx.bound_factor;
        row.cost_evals = approx.cost_evals;
        row.max_cover_size = approx.max_cover_size;
        row.exact_measured = run_exact;
        if (run_exact) {
          row.exact_seconds = exact_seconds;
          row.exact_sse = exact_sse;
          row.speedup =
              row.approx_seconds > 0.0 ? exact_seconds / row.approx_seconds
                                       : 0.0;
          row.realized_ratio =
              exact_sse > 0.0 ? approx.sse / exact_sse : 1.0;
          row.within_bound =
              RatioWithinBound(approx.sse, exact_sse, row.bound_factor);
          if (smoke && n == 50000 && num_buckets == 64 && delta == 0.1 &&
              row.speedup <= 1.0) {
            gate_speedup_ok = false;
          }
        } else {
          // No exact reference: the internal DP objective still certifies
          // realized_sse <= dp_error <= bound * OPT.
          row.within_bound = approx.sse <= row.dp_error * (1.0 + 1e-9) + 1e-9;
        }
        all_within_bound &= row.within_bound;
        rows.push_back(row);
        if (run_exact) {
          std::printf("  approx n=%lld B=%lld delta=%.3g %.3fs speedup=%.1fx "
                      "ratio=%.6f bound=%.3g %s\n",
                      static_cast<long long>(n),
                      static_cast<long long>(num_buckets), delta,
                      row.approx_seconds, row.speedup, row.realized_ratio,
                      row.bound_factor,
                      row.within_bound ? "ok" : "BOUND VIOLATED");
        } else {
          std::printf("  approx n=%lld B=%lld delta=%.3g %.3fs sse=%.6g "
                      "(exact skipped) %s\n",
                      static_cast<long long>(n),
                      static_cast<long long>(num_buckets), delta,
                      row.approx_seconds, row.approx_sse,
                      row.within_bound ? "ok" : "DP INCONSISTENT");
        }
        std::fflush(stdout);
      }
    }
  }
  SetThreadCount(DefaultThreadCount());

  bench::JsonWriter json;
  json.BeginObject()
      .Key("bench").Value(std::string("BENCH_PR3"))
      .Key("schema_version").Value(int64_t{1})
      .Key("threads").Value(static_cast<int64_t>(threads))
      .Key("hardware_threads").Value(static_cast<int64_t>(DefaultThreadCount()))
      .Key("smoke").Value(smoke)
      .Key("dataset").Value(std::string("utilization"))
      .Key("exact_policy")
      .Value(std::string(
          smoke ? "smoke grid: exact DP measured on every row"
                : "exact DP measured only at n<=1e4 (all B) and n=1e5 "
                  "(B<=64); larger cells are infeasible at O(n^2 B)"))
      .Key("rows").BeginArray();
  for (const Pr3Row& row : rows) {
    json.BeginObject()
        .Key("n").Value(row.n)
        .Key("B").Value(row.num_buckets)
        .Key("delta").Value(row.delta)
        .Key("approx_seconds").Value(row.approx_seconds)
        .Key("approx_sse").Value(row.approx_sse)
        .Key("dp_error").Value(row.dp_error)
        .Key("bound_factor").Value(row.bound_factor)
        .Key("cost_evals").Value(row.cost_evals)
        .Key("max_cover_size").Value(row.max_cover_size)
        .Key("exact_measured").Value(row.exact_measured);
    if (row.exact_measured) {
      json.Key("exact_seconds").Value(row.exact_seconds)
          .Key("exact_sse").Value(row.exact_sse)
          .Key("speedup").Value(row.speedup)
          .Key("realized_ratio").Value(row.realized_ratio);
    }
    json.Key("within_bound").Value(row.within_bound).EndObject();
  }
  json.EndArray().EndObject();

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << json.str() << '\n';
  std::printf("  wrote %s\n", out_path.c_str());

  if (!all_within_bound) return 2;
  if (!gate_speedup_ok) {
    std::fprintf(stderr,
                 "bench_micro: approx DP not faster than exact at the "
                 "n=50000 B=64 delta=0.1 smoke gate\n");
    return 3;
  }
  return 0;
}

// --- PR4: degradation-ladder latency, rung distribution, governor overhead ---

namespace {

double PercentileMs(std::vector<double> ms, double p) {
  if (ms.empty()) return 0.0;
  std::sort(ms.begin(), ms.end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(ms.size() - 1) + 0.5);
  return ms[std::min(idx, ms.size() - 1)];
}

struct Pr4Cell {
  WindowBuildMode mode = WindowBuildMode::kExact;
  int64_t n = 0;
  int64_t num_buckets = 0;
  double delta = 0.0;  // kApprox only
};

std::string RungLabel(const WindowBuildReport& report) {
  if (report.rung == BuildRung::kApprox) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "approx(%g)", report.delta);
    return buf;
  }
  return BuildRungName(report.rung);
}

}  // namespace

int RunBenchPr4(int argc, char** argv) {
  using bench::FlagInt;
  using bench::FlagStr;
  const std::string out_path = FlagStr(argc, argv, "pr4_json", "");
  const int threads = static_cast<int>(
      FlagInt(argc, argv, "pr4_threads", DefaultThreadCount()));
  if (threads < 1) {
    std::fprintf(stderr, "bench_micro: --pr4_threads must be >= 1 (got %d)\n",
                 threads);
    return 1;
  }
  const bool smoke = FlagInt(argc, argv, "pr4_smoke", 0) != 0;

  // Exact cells keep n where O(n^2 B) is interactive; approx cells stretch n
  // to sizes only the pruned DP reaches. The largest exact cell doubles as
  // the overhead gate: ladder-vs-direct on the no-deadline path. Debug/ASan
  // CI runs the smoke grid with a looser gate (sanitizer timing is noisy).
  std::vector<Pr4Cell> cells;
  if (smoke) {
    cells = {{WindowBuildMode::kExact, 512, 8, 0.0},
             {WindowBuildMode::kExact, 1024, 8, 0.0},
             {WindowBuildMode::kApprox, 4096, 16, 0.1}};
  } else {
    cells = {{WindowBuildMode::kExact, 2048, 8, 0.0},
             {WindowBuildMode::kExact, 2048, 32, 0.0},
             {WindowBuildMode::kExact, 8192, 8, 0.0},
             {WindowBuildMode::kExact, 8192, 32, 0.0},
             {WindowBuildMode::kApprox, 16384, 32, 0.1},
             {WindowBuildMode::kApprox, 65536, 32, 0.1}};
  }
  const int reps = smoke ? 5 : 9;
  const int deadline_reps = smoke ? 4 : 12;
  const std::vector<int64_t> within_grid{1, 5, 50};
  const double overhead_limit = smoke ? 0.15 : 0.02;

  bench::Banner("BENCH_PR4: degradation ladder + governor (threads=" +
                std::to_string(threads) + ")");
  SetThreadCount(threads);

  bench::JsonWriter json;
  json.BeginObject()
      .Key("bench").Value(std::string("BENCH_PR4"))
      .Key("schema_version").Value(int64_t{1})
      .Key("threads").Value(static_cast<int64_t>(threads))
      .Key("hardware_threads").Value(static_cast<int64_t>(DefaultThreadCount()))
      .Key("smoke").Value(smoke)
      .Key("reps").Value(static_cast<int64_t>(reps))
      .Key("deadline_reps").Value(static_cast<int64_t>(deadline_reps))
      .Key("overhead_limit").Value(overhead_limit)
      .Key("dataset").Value(std::string("utilization"))
      .Key("cells").BeginArray();

  bool all_identical = true;
  bool all_certified = true;
  double gate_overhead = 0.0;  // overhead of the last exact cell (largest)
  for (const Pr4Cell& cell : cells) {
    const bool exact = cell.mode == WindowBuildMode::kExact;
    const std::vector<double> data = GenerateDataset(
        DatasetKind::kUtilization, cell.n, /*seed=*/7);
    StreamConfig config;
    config.window_size = cell.n;
    config.num_buckets = cell.num_buckets;
    config.epsilon = 0.1;
    config.build_mode = cell.mode;
    if (!exact) config.build_delta = cell.delta;
    ManagedStream stream = ManagedStream::Create(config).value();
    stream.AppendBatch(data);

    // Interleave direct-kernel and ladder builds so clock drift hits both
    // sides equally; compare results bit-for-bit (no deadline => rung 0 must
    // be byte-identical to calling the kernel directly).
    std::vector<double> direct_ms, ladder_ms;
    bool identical = true;
    for (int rep = 0; rep < reps; ++rep) {
      Timer direct_timer;
      uint64_t direct_bits = 0;
      if (exact) {
        const OptimalHistogramResult r =
            BuildVOptimalHistogram(data, cell.num_buckets);
        direct_bits = std::bit_cast<uint64_t>(r.error);
      } else {
        const ApproxHistogramResult r =
            BuildApproxVOptimalHistogram(data, cell.num_buckets, cell.delta);
        direct_bits = std::bit_cast<uint64_t>(r.sse);
      }
      direct_ms.push_back(direct_timer.ElapsedSeconds() * 1e3);

      Timer ladder_timer;
      const WindowBuildReport report = stream.BuildWindowHistogram();
      ladder_ms.push_back(ladder_timer.ElapsedSeconds() * 1e3);
      identical &= !report.degradation.degraded &&
                   std::bit_cast<uint64_t>(report.sse) == direct_bits;
    }
    const double direct_p50 = PercentileMs(direct_ms, 0.5);
    const double ladder_p50 = PercentileMs(ladder_ms, 0.5);
    const double overhead =
        direct_p50 > 0.0 ? ladder_p50 / direct_p50 - 1.0 : 0.0;
    if (exact) gate_overhead = overhead;
    all_identical &= identical;
    std::printf("  %s n=%lld B=%lld direct_p50=%.3fms ladder_p50=%.3fms "
                "overhead=%+.2f%% %s\n",
                exact ? "exact " : "approx", static_cast<long long>(cell.n),
                static_cast<long long>(cell.num_buckets), direct_p50,
                ladder_p50, overhead * 100.0,
                identical ? "bit-identical" : "MISMATCH");
    std::fflush(stdout);

    json.BeginObject()
        .Key("mode").Value(std::string(exact ? "exact" : "approx"));
    if (!exact) json.Key("delta").Value(cell.delta);
    json.Key("n").Value(cell.n)
        .Key("B").Value(cell.num_buckets)
        .Key("direct_p50_ms").Value(direct_p50)
        .Key("direct_p99_ms").Value(PercentileMs(direct_ms, 0.99))
        .Key("ladder_p50_ms").Value(ladder_p50)
        .Key("ladder_p99_ms").Value(PercentileMs(ladder_ms, 0.99))
        .Key("overhead_ratio").Value(overhead)
        .Key("identical").Value(identical)
        .Key("deadlines").BeginArray();

    // Rung distribution under real wall-clock deadlines. Every build must
    // terminate with a histogram and a certified bound no matter which rung
    // the deadline leaves standing.
    for (const int64_t within : within_grid) {
      std::vector<std::pair<std::string, int64_t>> rungs;
      std::vector<double> build_ms;
      int64_t degraded = 0;
      for (int rep = 0; rep < deadline_reps; ++rep) {
        Timer timer;
        const WindowBuildReport report =
            stream.BuildWindowHistogram(Deadline::AfterMillis(within));
        build_ms.push_back(timer.ElapsedSeconds() * 1e3);
        degraded += report.degradation.degraded ? 1 : 0;
        all_certified &= report.bound_factor >= 1.0 &&
                         !report.degradation.attempts.empty() &&
                         report.degradation.attempts.back().completed &&
                         (report.points == 0 ||
                          !report.histogram.buckets().empty());
        const std::string label = RungLabel(report);
        bool found = false;
        for (auto& [name, count] : rungs) {
          if (name == label) { count++; found = true; break; }
        }
        if (!found) rungs.emplace_back(label, 1);
      }
      json.BeginObject()
          .Key("within_ms").Value(within)
          .Key("build_p50_ms").Value(PercentileMs(build_ms, 0.5))
          .Key("build_p99_ms").Value(PercentileMs(build_ms, 0.99))
          .Key("degraded_builds").Value(degraded)
          .Key("rungs").BeginObject();
      std::printf("    within=%lldms p50=%.3fms rungs:",
                  static_cast<long long>(within),
                  PercentileMs(build_ms, 0.5));
      for (const auto& [name, count] : rungs) {
        json.Key(name).Value(count);
        std::printf(" %s=%lld", name.c_str(),
                    static_cast<long long>(count));
      }
      std::printf("\n");
      std::fflush(stdout);
      json.EndObject().EndObject();
    }
    json.EndArray().EndObject();
  }
  SetThreadCount(DefaultThreadCount());

  const bool gate_ok = gate_overhead <= overhead_limit;
  json.EndArray()
      .Key("gate").BeginObject()
      .Key("cell").Value(std::string("largest exact cell"))
      .Key("overhead_ratio").Value(gate_overhead)
      .Key("limit").Value(overhead_limit)
      .Key("ok").Value(gate_ok)
      .EndObject().EndObject();

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << json.str() << '\n';
  std::printf("  wrote %s\n", out_path.c_str());

  if (!all_identical || !all_certified) {
    std::fprintf(stderr, "bench_micro: %s\n",
                 !all_identical
                     ? "no-deadline ladder output diverged from direct kernel"
                     : "a degraded build lacked a certified result");
    return 2;
  }
  if (!gate_ok) {
    std::fprintf(stderr,
                 "bench_micro: ladder overhead %.2f%% exceeds the %.0f%% "
                 "no-deadline gate\n",
                 gate_overhead * 100.0, overhead_limit * 100.0);
    return 4;
  }
  return 0;
}

// --- PR5: concurrent read throughput + single-thread Execute overhead ---

namespace {

/// The PR4-era engine hot path, reproduced locally as the overhead
/// baseline: a plain std::map registry and a direct window-synopsis query,
/// with the same tokenizer and answer formatting the real engine uses. What
/// the baseline does NOT have is exactly what PR5 added to the path —
/// sharded registry lookup, handle ref-counting, snapshot acquisition, and
/// per-verb stats — so engine/baseline is the cost of the concurrent core.
class Pr4BaselineEngine {
 public:
  void Create(const std::string& name, ManagedStream stream) {
    streams_.emplace(name, std::move(stream));
  }

  /// Executes `SUM <stream> <lo> <hi>` exactly as PR4's Execute did:
  /// istringstream tokenizer, uppercased verb, std::map lookup, from_chars
  /// range parse with bounds validation, lazy window-synopsis query,
  /// precision-12 ostringstream formatting.
  std::string ExecuteSum(const std::string& statement) {
    std::vector<std::string> tokens;
    {
      std::istringstream in(statement);
      std::string token;
      while (in >> token) tokens.push_back(token);
    }
    std::string verb = tokens[0];
    std::transform(verb.begin(), verb.end(), verb.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    if (verb != "SUM" || tokens.size() != 4) return {};
    const auto it = streams_.find(tokens[1]);
    if (it == streams_.end()) return {};
    int64_t lo = 0, hi = 0;
    std::from_chars(tokens[2].data(), tokens[2].data() + tokens[2].size(), lo);
    std::from_chars(tokens[3].data(), tokens[3].data() + tokens[3].size(), hi);
    if (!(0 <= lo && lo <= hi && hi <= it->second.config().window_size)) {
      return {};
    }
    const double sum = it->second.window_histogram().RangeSum(lo, hi);
    std::ostringstream os;
    os.precision(12);
    os << sum;
    return os.str();
  }

 private:
  std::map<std::string, ManagedStream> streams_;
};

struct Pr5Throughput {
  int readers = 0;
  double reads_per_sec = 0.0;
  double writer_appends_per_sec = 0.0;
};

/// `readers` threads executing SUM statements against one shared engine for
/// `duration_ms`, with one writer thread feeding APPENDs the whole time.
Pr5Throughput MeasureReadThroughput(QueryEngine& engine, int readers,
                                    int duration_ms) {
  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};
  std::atomic<int64_t> reads{0};
  std::atomic<int64_t> appends{0};

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(readers) + 1);
  threads.emplace_back([&engine, &start, &stop, &appends] {  // writer
    while (!start.load(std::memory_order_acquire)) {}
    int64_t local = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      if (engine.Execute("APPEND s 3.25").ok()) ++local;
    }
    appends.fetch_add(local, std::memory_order_relaxed);
  });
  for (int t = 0; t < readers; ++t) {
    threads.emplace_back([&engine, &start, &stop, &reads] {
      while (!start.load(std::memory_order_acquire)) {}
      int64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (engine.Execute("SUM s 0 512").ok()) ++local;
      }
      reads.fetch_add(local, std::memory_order_relaxed);
    });
  }

  Timer timer;
  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();
  const double seconds = timer.ElapsedSeconds();

  Pr5Throughput result;
  result.readers = readers;
  result.reads_per_sec = static_cast<double>(reads.load()) / seconds;
  result.writer_appends_per_sec =
      static_cast<double>(appends.load()) / seconds;
  return result;
}

}  // namespace

int RunBenchPr5(int argc, char** argv) {
  using bench::FlagInt;
  using bench::FlagStr;
  const std::string out_path = FlagStr(argc, argv, "pr5_json", "");
  const bool smoke = FlagInt(argc, argv, "pr5_smoke", 0) != 0;
  const int hardware_threads =
      static_cast<int>(std::thread::hardware_concurrency());

  const int duration_ms = smoke ? 150 : 500;
  const int overhead_reps = smoke ? 7 : 15;
  const int statements_per_rep = smoke ? 200 : 1000;
  // Sanitizer/Debug smoke timing is noisy; the committed artifact uses the
  // tight limits.
  const double overhead_limit = smoke ? 0.25 : 0.03;
  const double scaling_limit = 2.0;

  bench::Banner("BENCH_PR5: concurrent engine core (hardware_threads=" +
                std::to_string(hardware_threads) + ")");

  constexpr int64_t kWindow = 1024;
  const std::vector<double> data =
      GenerateDataset(DatasetKind::kUtilization, 4096, /*seed=*/13);
  StreamConfig config;
  config.window_size = kWindow;
  config.num_buckets = 16;
  config.epsilon = 0.1;

  // Read throughput at 1/2/4/8 readers with one concurrent writer.
  QueryEngine engine;
  if (!engine.CreateStream("s", config).ok()) return 1;
  if (!engine.AppendBatch("s", data).ok()) return 1;
  std::vector<Pr5Throughput> scaling;
  for (const int readers : {1, 2, 4, 8}) {
    scaling.push_back(MeasureReadThroughput(engine, readers, duration_ms));
    const Pr5Throughput& row = scaling.back();
    std::printf("  readers=%d reads/s=%.0f (x%.2f vs 1) writer appends/s=%.0f\n",
                row.readers, row.reads_per_sec,
                row.reads_per_sec / scaling.front().reads_per_sec,
                row.writer_appends_per_sec);
    std::fflush(stdout);
  }
  const double speedup_4 = scaling[2].reads_per_sec / scaling[0].reads_per_sec;

  // Single-thread Execute overhead vs the PR4-equivalent baseline,
  // interleaved so clock drift hits both sides equally.
  QueryEngine fresh;
  if (!fresh.CreateStream("s", config).ok()) return 1;
  if (!fresh.AppendBatch("s", data).ok()) return 1;
  Pr4BaselineEngine baseline;
  {
    ManagedStream stream = ManagedStream::Create(config).value();
    stream.AppendBatch(data);
    stream.Refresh();
    baseline.Create("s", std::move(stream));
  }
  const std::string statement = "SUM s 0 512";
  // Answers must agree bit-for-bit or the comparison is meaningless.
  if (fresh.Execute(statement).value() != baseline.ExecuteSum(statement)) {
    std::fprintf(stderr, "bench_micro: engine and baseline answers differ\n");
    return 1;
  }
  std::vector<double> baseline_us, engine_us;
  for (int rep = 0; rep < overhead_reps; ++rep) {
    Timer baseline_timer;
    for (int i = 0; i < statements_per_rep; ++i) {
      benchmark::DoNotOptimize(baseline.ExecuteSum(statement));
    }
    baseline_us.push_back(baseline_timer.ElapsedSeconds() * 1e6 /
                          statements_per_rep);
    Timer engine_timer;
    for (int i = 0; i < statements_per_rep; ++i) {
      benchmark::DoNotOptimize(fresh.Execute(statement));
    }
    engine_us.push_back(engine_timer.ElapsedSeconds() * 1e6 /
                        statements_per_rep);
  }
  const double baseline_p50 = PercentileMs(baseline_us, 0.5);
  const double engine_p50 = PercentileMs(engine_us, 0.5);
  const double overhead =
      baseline_p50 > 0.0 ? engine_p50 / baseline_p50 - 1.0 : 0.0;
  std::printf("  single-thread: baseline_p50=%.3fus engine_p50=%.3fus "
              "overhead=%+.2f%%\n",
              baseline_p50, engine_p50, overhead * 100.0);
  std::fflush(stdout);

  // Gate A evaluates only where 4 readers can actually run in parallel; a
  // 1-core runner records its scaling rows but skips the verdict honestly.
  const bool scaling_evaluated = hardware_threads >= 4;
  const bool scaling_ok = !scaling_evaluated || speedup_4 >= scaling_limit;
  const bool overhead_ok = overhead <= overhead_limit;

  bench::JsonWriter json;
  json.BeginObject()
      .Key("bench").Value(std::string("BENCH_PR5"))
      .Key("schema_version").Value(int64_t{1})
      .Key("hardware_threads").Value(static_cast<int64_t>(hardware_threads))
      .Key("smoke").Value(smoke)
      .Key("duration_ms").Value(static_cast<int64_t>(duration_ms))
      .Key("window").Value(kWindow)
      .Key("buckets").Value(config.num_buckets)
      .Key("statement").Value(statement)
      .Key("read_throughput").BeginArray();
  for (const Pr5Throughput& row : scaling) {
    json.BeginObject()
        .Key("readers").Value(static_cast<int64_t>(row.readers))
        .Key("reads_per_sec").Value(row.reads_per_sec)
        .Key("speedup_vs_1")
        .Value(row.reads_per_sec / scaling.front().reads_per_sec)
        .Key("writer_appends_per_sec").Value(row.writer_appends_per_sec)
        .EndObject();
  }
  json.EndArray()
      .Key("single_thread").BeginObject()
      .Key("reps").Value(static_cast<int64_t>(overhead_reps))
      .Key("statements_per_rep")
      .Value(static_cast<int64_t>(statements_per_rep))
      .Key("baseline_p50_us").Value(baseline_p50)
      .Key("engine_p50_us").Value(engine_p50)
      .Key("overhead_ratio").Value(overhead)
      .EndObject()
      .Key("gates").BeginObject()
      .Key("scaling").BeginObject()
      .Key("limit").Value(scaling_limit)
      .Key("speedup_4").Value(speedup_4)
      .Key("evaluated").Value(scaling_evaluated)
      .Key("ok").Value(scaling_ok)
      .EndObject()
      .Key("overhead").BeginObject()
      .Key("limit").Value(overhead_limit)
      .Key("overhead_ratio").Value(overhead)
      .Key("ok").Value(overhead_ok)
      .EndObject()
      .EndObject().EndObject();

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << json.str() << '\n';
  std::printf("  wrote %s\n", out_path.c_str());

  if (!scaling_ok) {
    std::fprintf(stderr,
                 "bench_micro: 4-reader speedup %.2fx below the %.1fx gate\n",
                 speedup_4, scaling_limit);
    return 2;
  }
  if (!overhead_ok) {
    std::fprintf(stderr,
                 "bench_micro: single-thread overhead %.2f%% exceeds the "
                 "%.0f%% gate\n",
                 overhead * 100.0, overhead_limit * 100.0);
    return 3;
  }
  return 0;
}

}  // namespace streamhist

int main(int argc, char** argv) {
  if (!streamhist::bench::FlagStr(argc, argv, "pr1_json", "").empty()) {
    return streamhist::RunBenchPr1(argc, argv);
  }
  if (!streamhist::bench::FlagStr(argc, argv, "pr3_json", "").empty()) {
    return streamhist::RunBenchPr3(argc, argv);
  }
  if (!streamhist::bench::FlagStr(argc, argv, "pr4_json", "").empty()) {
    return streamhist::RunBenchPr4(argc, argv);
  }
  if (!streamhist::bench::FlagStr(argc, argv, "pr5_json", "").empty()) {
    return streamhist::RunBenchPr5(argc, argv);
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
