// E11 — extension experiment: value-domain selectivity estimation, the
// classic database application of histograms the paper's introduction cites
// ([IP95], [PI97]). Compares range-count (selectivity) estimation error
// across histogram families on skewed value distributions, including the
// one-pass streaming equi-depth built from the GK quantile summary.
//
// Expected shape: every histogram family beats matched-space sampling, and
// the best family is data-dependent (equi-depth on heavy-tailed values,
// V-optimal on multimodal ones — the [IP95] taxonomy); the streaming
// equi-depth tracks its offline counterpart within the GK rank slack.
//
// Flags: --points=N --buckets=B --queries=Q

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/data/generators.h"
#include "src/quantile/gk_summary.h"
#include "src/quantile/reservoir.h"
#include "src/selectivity/value_histogram.h"
#include "src/util/random.h"

namespace streamhist::bench {
namespace {

struct Workload {
  std::vector<std::pair<double, double>> ranges;
};

Workload MakeWorkload(double lo, double hi, int64_t count, Random& rng) {
  Workload w;
  for (int64_t q = 0; q < count; ++q) {
    const double a = rng.UniformDouble(lo, hi);
    const double span = rng.UniformDouble(0.0, (hi - lo) / 8.0);
    w.ranges.emplace_back(a, a + span);
  }
  return w;
}

double MeanAbsCountError(const ValueHistogram& h,
                         const FrequencyDistribution& truth,
                         const Workload& workload) {
  double total = 0.0;
  for (const auto& [lo, hi] : workload.ranges) {
    total += std::fabs(h.EstimateCountInRange(lo, hi) -
                       static_cast<double>(truth.CountInRange(lo, hi)));
  }
  return total / static_cast<double>(workload.ranges.size());
}

int Main(int argc, char** argv) {
  const int64_t points = FlagInt(argc, argv, "points", 100000);
  const int64_t buckets = FlagInt(argc, argv, "buckets", 20);
  const int64_t num_queries = FlagInt(argc, argv, "queries", 500);

  std::printf("Experiment E11 (extension): value-domain selectivity "
              "estimation across histogram families\n");
  std::printf("%s points, B=%s buckets, %s range-count queries\n",
              FmtInt(points).c_str(), FmtInt(buckets).c_str(),
              FmtInt(num_queries).c_str());

  struct Dataset {
    const char* name;
    std::vector<double> data;
  };
  const Dataset datasets[] = {
      {"zipf s=1.1", GenerateZipfValues(points, 10000, 1.1, 1)},
      {"zipf s=0.7", GenerateZipfValues(points, 10000, 0.7, 2)},
      {"utilization values",
       GenerateDataset(DatasetKind::kUtilization, points, 3)},
  };

  for (const Dataset& d : datasets) {
    Banner(d.name);
    FrequencyDistribution truth(d.data);
    Random rng(7);
    const Workload workload =
        MakeWorkload(truth.min(), truth.max(), num_queries, rng);

    // One-pass summaries for the streaming variants.
    GKSummary gk = GKSummary::Create(0.005).value();
    ReservoirSample reservoir = ReservoirSample::Create(buckets * 2, 9).value();
    for (double v : d.data) {
      gk.Insert(v);
      reservoir.Append(v);
    }

    TablePrinter table({"estimator", "mean |count error|",
                        "vs equi-width"});
    const ValueHistogram equi_width =
        BuildEquiWidthValueHistogram(d.data, buckets);
    const double ew_err = MeanAbsCountError(equi_width, truth, workload);
    auto add = [&](const char* name, double err) {
      table.AddRow({name, Fmt(err, 5), Fmt(ew_err > 0 ? err / ew_err : 0, 4)});
    };
    add("equi-width (offline)", ew_err);
    add("equi-depth (offline)",
        MeanAbsCountError(BuildEquiDepthValueHistogram(d.data, buckets), truth,
                          workload));
    add("equi-depth (streaming, GK)",
        MeanAbsCountError(BuildStreamingEquiDepthHistogram(gk, buckets), truth,
                          workload));
    add("V-optimal on frequencies (offline)",
        MeanAbsCountError(
            BuildVOptimalValueHistogram(d.data, buckets, /*domain_bins=*/2000),
            truth, workload));
    // Sampling baseline at matched space (2B sampled values).
    double sample_err = 0.0;
    for (const auto& [lo, hi] : workload.ranges) {
      sample_err += std::fabs(reservoir.EstimateCountInRange(lo, hi) -
                              static_cast<double>(truth.CountInRange(lo, hi)));
    }
    add("reservoir sample (streaming)",
        sample_err / static_cast<double>(workload.ranges.size()));
    table.Print();
  }

  std::printf("\nShape check: every histogram family beats matched-space "
              "sampling; the best family is data-dependent (equi-depth "
              "excels on heavy-tailed value distributions, V-optimal on "
              "multimodal ones, equi-width only on near-uniform ones); the "
              "one-pass GK equi-depth tracks its offline counterpart within "
              "a small factor set by the rank slack.\n");
  return 0;
}

}  // namespace
}  // namespace streamhist::bench

int main(int argc, char** argv) { return streamhist::bench::Main(argc, argv); }
