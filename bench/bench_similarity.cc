// E7 — paper section 5.2, third additional experiment: time-series
// similarity search with histogram representations vs APCA [KCMP01], for
// both whole matching and subsequence matching.
//
// The paper reports that histogram approximations from Agglomerative- and
// FixedWindow-Histogram reduce the number of *false positives* during
// filter-and-refine similarity indexing relative to APCA, "while remaining
// competitive in terms of the time required to approximate the time series".
// Both representation families are piecewise-constant with exact segment
// means, so both use the identical lower-bounding distance and admit no
// false dismissals; quality therefore shows up purely as fewer wasted exact
// distance computations.
//
// Flags: --series=M --length=L --segments=B --queries=Q

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/data/generators.h"
#include "src/timeseries/distance.h"
#include "src/timeseries/indexed_search.h"
#include "src/timeseries/similarity.h"
#include "src/util/random.h"
#include "src/util/timer.h"

namespace streamhist::bench {
namespace {

struct ReprResult {
  double build_seconds = 0.0;
  int64_t candidates = 0;
  int64_t false_positives = 0;
  int64_t answers = 0;
};

ReprResult Evaluate(const std::vector<std::vector<double>>& collection,
                    const std::vector<std::vector<double>>& queries,
                    int64_t segments, const ReprBuilder& builder,
                    double radius) {
  ReprResult result;
  Timer build_timer;
  SimilarityIndex index(collection, segments, builder);
  result.build_seconds = build_timer.ElapsedSeconds();
  for (const auto& q : queries) {
    SearchStats stats;
    index.RangeSearch(q, radius, &stats);
    result.candidates += stats.candidates;
    result.false_positives += stats.false_positives;
    result.answers += stats.answers;
  }
  return result;
}

void RunScenario(const char* title,
                 const std::vector<std::vector<double>>& collection,
                 const std::vector<std::vector<double>>& queries,
                 int64_t segments) {
  Banner(title);
  // Calibrate the radius so ~10% of the collection matches a typical query.
  std::vector<double> dists;
  for (const auto& s : collection) dists.push_back(Euclidean(queries[0], s));
  std::sort(dists.begin(), dists.end());
  const double radius = dists[dists.size() / 10];

  TablePrinter table({"representation", "build s", "candidates",
                      "false positives", "answers", "FP per query"});
  struct Entry {
    const char* name;
    ReprBuilder builder;
  };
  const Entry entries[] = {
      {"APCA (Keogh et al.)", MakeApcaBuilder()},
      {"V-optimal histogram", MakeVOptimalBuilder()},
      {"Agglomerative (eps=0.1)", MakeAgglomerativeBuilder(0.1)},
      {"FixedWindow (eps=0.1)", MakeFixedWindowBuilder(0.1)},
  };
  for (const Entry& e : entries) {
    const ReprResult r =
        Evaluate(collection, queries, segments, e.builder, radius);
    table.AddRow({e.name, Fmt(r.build_seconds, 4), FmtInt(r.candidates),
                  FmtInt(r.false_positives), FmtInt(r.answers),
                  Fmt(static_cast<double>(r.false_positives) /
                          static_cast<double>(queries.size()),
                      4)});
  }
  table.Print();
}

int Main(int argc, char** argv) {
  const int64_t num_series = FlagInt(argc, argv, "series", 200);
  const int64_t length = FlagInt(argc, argv, "length", 256);
  const int64_t segments = FlagInt(argc, argv, "segments", 8);
  const int64_t num_queries = FlagInt(argc, argv, "queries", 20);

  std::printf("Experiment E7 (paper 5.2): similarity-search false positives, "
              "histograms vs APCA\n");
  std::printf("%s series of length %s, %s segments per representation, %s "
              "queries\n",
              FmtInt(num_series).c_str(), FmtInt(length).c_str(),
              FmtInt(segments).c_str(), FmtInt(num_queries).c_str());

  // Whole matching over *structured operational* series (level shifts and
  // flat runs — the paper's AT&T regime). The comparison is data-sensitive:
  // adaptive histogram boundaries pay off exactly when series carry this
  // kind of structure; on globally-smooth series (sinusoid mixes) APCA's
  // wavelet-guided segmentation can win instead (see EXPERIMENTS.md).
  std::vector<std::vector<double>> collection;
  std::vector<std::vector<double>> query_pool;
  for (int64_t s = 0; s < num_series; ++s) {
    collection.push_back(GeneratePiecewiseConstant(
        length, /*num_segments=*/12, /*level_range=*/60000.0,
        /*noise_stddev=*/500.0, 1000 + static_cast<uint64_t>(s)));
  }
  for (int64_t q = 0; q < num_queries; ++q) {
    query_pool.push_back(GeneratePiecewiseConstant(
        length, 12, 60000.0, 500.0, 5000 + static_cast<uint64_t>(q)));
  }
  RunScenario("Whole-series matching", collection, query_pool, segments);

  // Subsequence matching: sliding windows over one long stream.
  const std::vector<double> long_series = GenerateDataset(
      DatasetKind::kUtilization, num_series * length / 4, /*seed=*/303);
  const auto windows = ExtractSubsequences(long_series, length, length / 4);
  std::vector<std::vector<double>> sub_queries(
      query_pool.begin(),
      query_pool.begin() + std::min<size_t>(query_pool.size(), 5));
  // Use perturbed windows as queries so matches exist.
  Random rng(404);
  sub_queries.clear();
  for (int64_t q = 0; q < num_queries; ++q) {
    std::vector<double> base =
        windows[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(windows.size()) - 1))];
    for (double& v : base) v += rng.Gaussian(0.0, 50.0);
    sub_queries.push_back(std::move(base));
  }
  RunScenario("Subsequence matching (sliding windows)", windows, sub_queries,
              segments);

  // Incremental subsequence pipeline: one fixed-window pass snapshotting a
  // representation per stride vs independently rebuilding a representation
  // for every extracted window.
  {
    Banner("Subsequence representation build: streaming snapshots vs "
           "per-window rebuild");
    TablePrinter table({"stride", "per-window V-optimal s",
                        "streaming fixed-window s", "speedup", "#windows"});
    for (int64_t stride : {length / 4, length / 16}) {
      const auto stride_windows =
          ExtractSubsequences(long_series, length, stride);
      Timer per_window_timer;
      const ReprBuilder vopt = MakeVOptimalBuilder();
      for (const auto& w : stride_windows) {
        const PiecewiseConstant repr = vopt(w, segments);
        if (repr.num_segments() == 0) std::abort();  // keep the work alive
      }
      const double per_window_s = per_window_timer.ElapsedSeconds();

      Timer streaming_timer;
      const auto reprs = BuildSubsequenceRepresentationsStreaming(
          long_series, length, stride, segments, 0.1);
      const double streaming_s = streaming_timer.ElapsedSeconds();

      table.AddRow({FmtInt(stride), Fmt(per_window_s, 4), Fmt(streaming_s, 4),
                    Fmt(streaming_s > 0 ? per_window_s / streaming_s : 0, 4),
                    FmtInt(static_cast<int64_t>(reprs.size()))});
    }
    table.Print();
  }

  // R-tree-indexed GEMINI pipeline ([YF00]-style): same no-false-dismissal
  // guarantee, but the filter also prunes *index node accesses* instead of
  // scanning every representation.
  {
    Banner("R-tree-indexed filter (PAA features) vs linear-scan filter");
    std::vector<double> dists;
    for (const auto& s : collection) dists.push_back(Euclidean(query_pool[0], s));
    std::sort(dists.begin(), dists.end());
    const double radius = dists[static_cast<size_t>(num_series / 10)] + 1e-6;

    IndexedSimilaritySearch indexed(collection, segments);
    SimilarityIndex linear(collection, segments, MakeVOptimalBuilder());
    TablePrinter table({"pipeline", "candidates", "false positives",
                        "answers", "node accesses"});
    int64_t idx_cand = 0, idx_fp = 0, idx_ans = 0, idx_nodes = 0;
    int64_t lin_cand = 0, lin_fp = 0, lin_ans = 0;
    for (const auto& q : query_pool) {
      SearchStats stats;
      RTree::SearchStats tstats;
      indexed.RangeSearch(q, radius, &stats, &tstats);
      idx_cand += stats.candidates;
      idx_fp += stats.false_positives;
      idx_ans += stats.answers;
      idx_nodes += tstats.nodes_visited;
      linear.RangeSearch(q, radius, &stats);
      lin_cand += stats.candidates;
      lin_fp += stats.false_positives;
      lin_ans += stats.answers;
    }
    table.AddRow({"R-tree + PAA filter", FmtInt(idx_cand), FmtInt(idx_fp),
                  FmtInt(idx_ans), FmtInt(idx_nodes)});
    table.AddRow({"linear scan + V-optimal LB", FmtInt(lin_cand),
                  FmtInt(lin_fp), FmtInt(lin_ans),
                  FmtInt(num_series * static_cast<int64_t>(query_pool.size()))});
    table.Print();
  }

  std::printf("\nShape check vs paper: histogram-based representations admit "
              "fewer false positives than APCA at the same segment budget; "
              "approximate one-pass builders stay time-competitive.\n");
  return 0;
}

}  // namespace
}  // namespace streamhist::bench

int main(int argc, char** argv) { return streamhist::bench::Main(argc, argv); }
