// E6 — paper section 5.2, second additional experiment: one-pass
// AgglomerativeHistogram vs the optimal histogram DP of Jagadish et al. for
// approximate query answering in a data warehouse.
//
// The paper reports histograms "comparable in accuracy" with "profound"
// construction-time savings that grow with dataset size. We build both over
// stored datasets of increasing size and compare range-sum MAE, SSE ratio
// and build time.
//
// Flags: --buckets=B --epsilon=E --queries=Q --max-size=N

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/core/agglomerative.h"
#include "src/core/vopt_dp.h"
#include "src/data/generators.h"
#include "src/query/estimator.h"
#include "src/query/metrics.h"
#include "src/query/workload.h"
#include "src/util/random.h"
#include "src/util/timer.h"

namespace streamhist::bench {
namespace {

int Main(int argc, char** argv) {
  const int64_t buckets = FlagInt(argc, argv, "buckets", 32);
  const double epsilon = FlagDouble(argc, argv, "epsilon", 0.1);
  const int64_t num_queries = FlagInt(argc, argv, "queries", 300);
  const int64_t max_size = FlagInt(argc, argv, "max-size", 16000);

  std::printf("Experiment E6 (paper 5.2): one-pass agglomerative vs optimal "
              "DP in a warehouse setting\n");
  std::printf("B=%s, eps=%g\n", FmtInt(buckets).c_str(), epsilon);

  TablePrinter table({"dataset n", "opt build s", "agg build s", "speedup",
                      "opt MAE", "agg MAE", "agg SSE / opt SSE"});

  for (int64_t n = max_size / 8; n <= max_size; n *= 2) {
    const std::vector<double> data =
        GenerateDataset(DatasetKind::kUtilization, n, /*seed=*/n);

    Timer opt_timer;
    const OptimalHistogramResult opt = BuildVOptimalHistogram(data, buckets);
    const double opt_seconds = opt_timer.ElapsedSeconds();

    ApproxHistogramOptions options;
    options.num_buckets = buckets;
    options.epsilon = epsilon;
    AgglomerativeHistogram agg =
        AgglomerativeHistogram::Create(options).value();
    Timer agg_timer;
    for (double v : data) agg.Append(v);
    const Histogram approx = agg.Extract();
    const double agg_seconds = agg_timer.ElapsedSeconds();

    ExactEstimator exact(data);
    HistogramEstimator opt_est(&opt.histogram);
    HistogramEstimator agg_est(&approx);
    Random rng(11);
    const auto queries = GenerateUniformRangeQueries(n, num_queries, rng);
    const double opt_mae =
        EvaluateRangeSums(exact, opt_est, queries).mean_absolute_error;
    const double agg_mae =
        EvaluateRangeSums(exact, agg_est, queries).mean_absolute_error;
    const double sse_ratio =
        opt.error > 0 ? approx.SseAgainst(data) / opt.error : 1.0;

    table.AddRow({FmtInt(n), Fmt(opt_seconds, 4), Fmt(agg_seconds, 4),
                  Fmt(agg_seconds > 0 ? opt_seconds / agg_seconds : 0.0, 4),
                  Fmt(opt_mae, 5), Fmt(agg_mae, 5), Fmt(sse_ratio, 5)});
  }
  table.Print();
  std::printf("\nShape check vs paper: SSE ratio <= 1+eps = %g at every size; "
              "speedup grows with dataset size (DP is O(n^2 B), one pass is "
              "~O(n)).\n",
              1.0 + epsilon);
  return 0;
}

}  // namespace
}  // namespace streamhist::bench

int main(int argc, char** argv) { return streamhist::bench::Main(argc, argv); }
