#include "bench/common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>

namespace streamhist::bench {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("  ");
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::printf("%-*s  ", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::vector<std::string> sep;
  sep.reserve(widths.size());
  for (size_t c = 0; c < widths.size(); ++c) {
    sep.push_back(std::string(widths[c], '-'));
  }
  print_row(sep);
  for (const auto& row : rows_) print_row(row);
}

std::string Fmt(double v, int digits) {
  std::ostringstream os;
  os.precision(digits);
  os << v;
  return os.str();
}

std::string FmtInt(int64_t v) {
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (v < 0) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

namespace {

const char* FindFlag(int argc, char** argv, const std::string& key) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return nullptr;
}

}  // namespace

int64_t FlagInt(int argc, char** argv, const std::string& key,
                int64_t fallback) {
  const char* v = FindFlag(argc, argv, key);
  return v != nullptr ? std::atoll(v) : fallback;
}

double FlagDouble(int argc, char** argv, const std::string& key,
                  double fallback) {
  const char* v = FindFlag(argc, argv, key);
  return v != nullptr ? std::atof(v) : fallback;
}

std::string FlagStr(int argc, char** argv, const std::string& key,
                    const std::string& fallback) {
  const char* v = FindFlag(argc, argv, key);
  return v != nullptr ? std::string(v) : fallback;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  has_elements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_.push_back('}');
  has_elements_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  has_elements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_.push_back(']');
  has_elements_.pop_back();
  return *this;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

JsonWriter& JsonWriter::Key(const std::string& key) {
  BeforeValue();
  out_.push_back('"');
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(const std::string& v) {
  BeforeValue();
  out_.push_back('"');
  out_ += JsonEscape(v);
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  BeforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

std::string JsonWriter::str() const { return out_; }

void JsonWriter::BeforeValue() {
  if (pending_key_) {  // the value completing a "key": pair
    pending_key_ = false;
    return;
  }
  if (!has_elements_.empty()) {
    if (has_elements_.back()) out_.push_back(',');
    has_elements_.back() = true;
  }
}

}  // namespace streamhist::bench
