#ifndef STREAMHIST_BENCH_COMMON_H_
#define STREAMHIST_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

namespace streamhist::bench {

/// Simple aligned-column table printer for paper-style result tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; cells are preformatted strings.
  void AddRow(std::vector<std::string> cells);

  /// Prints the table (headers, separator, rows) to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant digits.
std::string Fmt(double v, int digits = 4);

/// Formats an integer with thousands separators.
std::string FmtInt(int64_t v);

/// Prints a section banner for one experiment.
void Banner(const std::string& title);

/// Parses "--key=value" style flags; returns value or fallback.
int64_t FlagInt(int argc, char** argv, const std::string& key,
                int64_t fallback);
double FlagDouble(int argc, char** argv, const std::string& key,
                  double fallback);

}  // namespace streamhist::bench

#endif  // STREAMHIST_BENCH_COMMON_H_
