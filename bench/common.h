#ifndef STREAMHIST_BENCH_COMMON_H_
#define STREAMHIST_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

namespace streamhist::bench {

/// Simple aligned-column table printer for paper-style result tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; cells are preformatted strings.
  void AddRow(std::vector<std::string> cells);

  /// Prints the table (headers, separator, rows) to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant digits.
std::string Fmt(double v, int digits = 4);

/// Formats an integer with thousands separators.
std::string FmtInt(int64_t v);

/// Prints a section banner for one experiment.
void Banner(const std::string& title);

/// Parses "--key=value" style flags; returns value or fallback.
int64_t FlagInt(int argc, char** argv, const std::string& key,
                int64_t fallback);
double FlagDouble(int argc, char** argv, const std::string& key,
                  double fallback);
std::string FlagStr(int argc, char** argv, const std::string& key,
                    const std::string& fallback);

/// Minimal append-only JSON emitter for machine-readable bench artifacts
/// (BENCH_*.json). Usage mirrors the document structure:
///
///   JsonWriter w;
///   w.BeginObject().Key("n").Value(int64_t{16384}).Key("rows").BeginArray();
///   ... w.EndArray().EndObject();
///   write w.str() to disk.
///
/// Numbers are emitted with enough digits to round-trip; strings are escaped.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(const std::string& key);
  JsonWriter& Value(double v);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(const std::string& v);
  JsonWriter& Value(bool v);

  /// The document so far; valid JSON once every Begin* has been closed.
  std::string str() const;

 private:
  void BeforeValue();

  std::string out_;
  // One entry per open container: true once the container has at least one
  // element (so the next element is comma-separated).
  std::vector<bool> has_elements_;
  bool pending_key_ = false;
};

}  // namespace streamhist::bench

#endif  // STREAMHIST_BENCH_COMMON_H_
