file(REMOVE_RECURSE
  "../bench/bench_ablation_tradeoff"
  "../bench/bench_ablation_tradeoff.pdb"
  "CMakeFiles/bench_ablation_tradeoff.dir/bench_ablation_tradeoff.cc.o"
  "CMakeFiles/bench_ablation_tradeoff.dir/bench_ablation_tradeoff.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
