# Empty dependencies file for bench_ablation_tradeoff.
# This may be replaced when dependencies are built.
