file(REMOVE_RECURSE
  "../bench/bench_agglomerative_stream"
  "../bench/bench_agglomerative_stream.pdb"
  "CMakeFiles/bench_agglomerative_stream.dir/bench_agglomerative_stream.cc.o"
  "CMakeFiles/bench_agglomerative_stream.dir/bench_agglomerative_stream.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_agglomerative_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
