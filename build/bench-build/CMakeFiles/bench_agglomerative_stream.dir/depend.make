# Empty dependencies file for bench_agglomerative_stream.
# This may be replaced when dependencies are built.
