file(REMOVE_RECURSE
  "../bench/bench_fig6_accuracy"
  "../bench/bench_fig6_accuracy.pdb"
  "CMakeFiles/bench_fig6_accuracy.dir/bench_fig6_accuracy.cc.o"
  "CMakeFiles/bench_fig6_accuracy.dir/bench_fig6_accuracy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
