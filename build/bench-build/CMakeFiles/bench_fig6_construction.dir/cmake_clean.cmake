file(REMOVE_RECURSE
  "../bench/bench_fig6_construction"
  "../bench/bench_fig6_construction.pdb"
  "CMakeFiles/bench_fig6_construction.dir/bench_fig6_construction.cc.o"
  "CMakeFiles/bench_fig6_construction.dir/bench_fig6_construction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
