file(REMOVE_RECURSE
  "../bench/bench_selectivity"
  "../bench/bench_selectivity.pdb"
  "CMakeFiles/bench_selectivity.dir/bench_selectivity.cc.o"
  "CMakeFiles/bench_selectivity.dir/bench_selectivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
