file(REMOVE_RECURSE
  "../bench/bench_similarity"
  "../bench/bench_similarity.pdb"
  "CMakeFiles/bench_similarity.dir/bench_similarity.cc.o"
  "CMakeFiles/bench_similarity.dir/bench_similarity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
