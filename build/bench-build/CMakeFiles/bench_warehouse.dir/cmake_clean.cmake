file(REMOVE_RECURSE
  "../bench/bench_warehouse"
  "../bench/bench_warehouse.pdb"
  "CMakeFiles/bench_warehouse.dir/bench_warehouse.cc.o"
  "CMakeFiles/bench_warehouse.dir/bench_warehouse.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
