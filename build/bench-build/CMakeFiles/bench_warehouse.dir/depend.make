# Empty dependencies file for bench_warehouse.
# This may be replaced when dependencies are built.
