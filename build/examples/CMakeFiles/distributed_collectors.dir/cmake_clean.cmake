file(REMOVE_RECURSE
  "CMakeFiles/distributed_collectors.dir/distributed_collectors.cpp.o"
  "CMakeFiles/distributed_collectors.dir/distributed_collectors.cpp.o.d"
  "distributed_collectors"
  "distributed_collectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_collectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
