# Empty dependencies file for distributed_collectors.
# This may be replaced when dependencies are built.
