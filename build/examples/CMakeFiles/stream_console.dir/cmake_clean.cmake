file(REMOVE_RECURSE
  "CMakeFiles/stream_console.dir/stream_console.cpp.o"
  "CMakeFiles/stream_console.dir/stream_console.cpp.o.d"
  "stream_console"
  "stream_console.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_console.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
