# Empty dependencies file for stream_console.
# This may be replaced when dependencies are built.
