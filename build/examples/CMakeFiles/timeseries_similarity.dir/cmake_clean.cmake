file(REMOVE_RECURSE
  "CMakeFiles/timeseries_similarity.dir/timeseries_similarity.cpp.o"
  "CMakeFiles/timeseries_similarity.dir/timeseries_similarity.cpp.o.d"
  "timeseries_similarity"
  "timeseries_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeseries_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
