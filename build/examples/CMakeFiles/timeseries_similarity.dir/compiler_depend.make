# Empty compiler generated dependencies file for timeseries_similarity.
# This may be replaced when dependencies are built.
