file(REMOVE_RECURSE
  "CMakeFiles/warehouse_approx.dir/warehouse_approx.cpp.o"
  "CMakeFiles/warehouse_approx.dir/warehouse_approx.cpp.o.d"
  "warehouse_approx"
  "warehouse_approx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
