# Empty dependencies file for warehouse_approx.
# This may be replaced when dependencies are built.
