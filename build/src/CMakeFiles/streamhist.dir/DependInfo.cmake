
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/agglomerative.cc" "src/CMakeFiles/streamhist.dir/core/agglomerative.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/core/agglomerative.cc.o.d"
  "/root/repo/src/core/bucket_cost.cc" "src/CMakeFiles/streamhist.dir/core/bucket_cost.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/core/bucket_cost.cc.o.d"
  "/root/repo/src/core/error_bounds.cc" "src/CMakeFiles/streamhist.dir/core/error_bounds.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/core/error_bounds.cc.o.d"
  "/root/repo/src/core/fixed_window.cc" "src/CMakeFiles/streamhist.dir/core/fixed_window.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/core/fixed_window.cc.o.d"
  "/root/repo/src/core/heuristics.cc" "src/CMakeFiles/streamhist.dir/core/heuristics.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/core/heuristics.cc.o.d"
  "/root/repo/src/core/histogram.cc" "src/CMakeFiles/streamhist.dir/core/histogram.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/core/histogram.cc.o.d"
  "/root/repo/src/core/histogram_io.cc" "src/CMakeFiles/streamhist.dir/core/histogram_io.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/core/histogram_io.cc.o.d"
  "/root/repo/src/core/time_window.cc" "src/CMakeFiles/streamhist.dir/core/time_window.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/core/time_window.cc.o.d"
  "/root/repo/src/core/vopt_dp.cc" "src/CMakeFiles/streamhist.dir/core/vopt_dp.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/core/vopt_dp.cc.o.d"
  "/root/repo/src/data/generators.cc" "src/CMakeFiles/streamhist.dir/data/generators.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/data/generators.cc.o.d"
  "/root/repo/src/data/io.cc" "src/CMakeFiles/streamhist.dir/data/io.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/data/io.cc.o.d"
  "/root/repo/src/engine/managed_stream.cc" "src/CMakeFiles/streamhist.dir/engine/managed_stream.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/engine/managed_stream.cc.o.d"
  "/root/repo/src/engine/query_engine.cc" "src/CMakeFiles/streamhist.dir/engine/query_engine.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/engine/query_engine.cc.o.d"
  "/root/repo/src/quantile/gk_summary.cc" "src/CMakeFiles/streamhist.dir/quantile/gk_summary.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/quantile/gk_summary.cc.o.d"
  "/root/repo/src/quantile/reservoir.cc" "src/CMakeFiles/streamhist.dir/quantile/reservoir.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/quantile/reservoir.cc.o.d"
  "/root/repo/src/query/estimator.cc" "src/CMakeFiles/streamhist.dir/query/estimator.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/query/estimator.cc.o.d"
  "/root/repo/src/query/metrics.cc" "src/CMakeFiles/streamhist.dir/query/metrics.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/query/metrics.cc.o.d"
  "/root/repo/src/query/workload.cc" "src/CMakeFiles/streamhist.dir/query/workload.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/query/workload.cc.o.d"
  "/root/repo/src/selectivity/value_histogram.cc" "src/CMakeFiles/streamhist.dir/selectivity/value_histogram.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/selectivity/value_histogram.cc.o.d"
  "/root/repo/src/sketch/fm_sketch.cc" "src/CMakeFiles/streamhist.dir/sketch/fm_sketch.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/sketch/fm_sketch.cc.o.d"
  "/root/repo/src/sketch/l1_sketch.cc" "src/CMakeFiles/streamhist.dir/sketch/l1_sketch.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/sketch/l1_sketch.cc.o.d"
  "/root/repo/src/stream/prefix_sums.cc" "src/CMakeFiles/streamhist.dir/stream/prefix_sums.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/stream/prefix_sums.cc.o.d"
  "/root/repo/src/stream/sliding_window.cc" "src/CMakeFiles/streamhist.dir/stream/sliding_window.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/stream/sliding_window.cc.o.d"
  "/root/repo/src/stream/sources.cc" "src/CMakeFiles/streamhist.dir/stream/sources.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/stream/sources.cc.o.d"
  "/root/repo/src/timeseries/apca.cc" "src/CMakeFiles/streamhist.dir/timeseries/apca.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/timeseries/apca.cc.o.d"
  "/root/repo/src/timeseries/distance.cc" "src/CMakeFiles/streamhist.dir/timeseries/distance.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/timeseries/distance.cc.o.d"
  "/root/repo/src/timeseries/indexed_search.cc" "src/CMakeFiles/streamhist.dir/timeseries/indexed_search.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/timeseries/indexed_search.cc.o.d"
  "/root/repo/src/timeseries/paa.cc" "src/CMakeFiles/streamhist.dir/timeseries/paa.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/timeseries/paa.cc.o.d"
  "/root/repo/src/timeseries/piecewise.cc" "src/CMakeFiles/streamhist.dir/timeseries/piecewise.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/timeseries/piecewise.cc.o.d"
  "/root/repo/src/timeseries/rtree.cc" "src/CMakeFiles/streamhist.dir/timeseries/rtree.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/timeseries/rtree.cc.o.d"
  "/root/repo/src/timeseries/similarity.cc" "src/CMakeFiles/streamhist.dir/timeseries/similarity.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/timeseries/similarity.cc.o.d"
  "/root/repo/src/tools/cli.cc" "src/CMakeFiles/streamhist.dir/tools/cli.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/tools/cli.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/streamhist.dir/util/random.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/streamhist.dir/util/status.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/util/status.cc.o.d"
  "/root/repo/src/util/timer.cc" "src/CMakeFiles/streamhist.dir/util/timer.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/util/timer.cc.o.d"
  "/root/repo/src/wavelet/haar.cc" "src/CMakeFiles/streamhist.dir/wavelet/haar.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/wavelet/haar.cc.o.d"
  "/root/repo/src/wavelet/sliding_wavelet.cc" "src/CMakeFiles/streamhist.dir/wavelet/sliding_wavelet.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/wavelet/sliding_wavelet.cc.o.d"
  "/root/repo/src/wavelet/synopsis.cc" "src/CMakeFiles/streamhist.dir/wavelet/synopsis.cc.o" "gcc" "src/CMakeFiles/streamhist.dir/wavelet/synopsis.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
