file(REMOVE_RECURSE
  "libstreamhist.a"
)
