# Empty compiler generated dependencies file for streamhist.
# This may be replaced when dependencies are built.
