file(REMOVE_RECURSE
  "CMakeFiles/agglomerative_test.dir/agglomerative_test.cc.o"
  "CMakeFiles/agglomerative_test.dir/agglomerative_test.cc.o.d"
  "agglomerative_test"
  "agglomerative_test.pdb"
  "agglomerative_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agglomerative_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
