# Empty compiler generated dependencies file for agglomerative_test.
# This may be replaced when dependencies are built.
