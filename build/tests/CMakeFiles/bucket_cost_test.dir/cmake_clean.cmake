file(REMOVE_RECURSE
  "CMakeFiles/bucket_cost_test.dir/bucket_cost_test.cc.o"
  "CMakeFiles/bucket_cost_test.dir/bucket_cost_test.cc.o.d"
  "bucket_cost_test"
  "bucket_cost_test.pdb"
  "bucket_cost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bucket_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
