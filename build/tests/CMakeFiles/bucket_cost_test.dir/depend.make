# Empty dependencies file for bucket_cost_test.
# This may be replaced when dependencies are built.
