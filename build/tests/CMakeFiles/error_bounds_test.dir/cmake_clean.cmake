file(REMOVE_RECURSE
  "CMakeFiles/error_bounds_test.dir/error_bounds_test.cc.o"
  "CMakeFiles/error_bounds_test.dir/error_bounds_test.cc.o.d"
  "error_bounds_test"
  "error_bounds_test.pdb"
  "error_bounds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
