# Empty dependencies file for error_bounds_test.
# This may be replaced when dependencies are built.
