file(REMOVE_RECURSE
  "CMakeFiles/fixed_window_test.dir/fixed_window_test.cc.o"
  "CMakeFiles/fixed_window_test.dir/fixed_window_test.cc.o.d"
  "fixed_window_test"
  "fixed_window_test.pdb"
  "fixed_window_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixed_window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
