# Empty dependencies file for fixed_window_test.
# This may be replaced when dependencies are built.
