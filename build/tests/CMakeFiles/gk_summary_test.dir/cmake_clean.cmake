file(REMOVE_RECURSE
  "CMakeFiles/gk_summary_test.dir/gk_summary_test.cc.o"
  "CMakeFiles/gk_summary_test.dir/gk_summary_test.cc.o.d"
  "gk_summary_test"
  "gk_summary_test.pdb"
  "gk_summary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gk_summary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
