# Empty dependencies file for gk_summary_test.
# This may be replaced when dependencies are built.
