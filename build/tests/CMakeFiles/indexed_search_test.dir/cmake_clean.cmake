file(REMOVE_RECURSE
  "CMakeFiles/indexed_search_test.dir/indexed_search_test.cc.o"
  "CMakeFiles/indexed_search_test.dir/indexed_search_test.cc.o.d"
  "indexed_search_test"
  "indexed_search_test.pdb"
  "indexed_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indexed_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
