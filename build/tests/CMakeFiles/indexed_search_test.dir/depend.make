# Empty dependencies file for indexed_search_test.
# This may be replaced when dependencies are built.
