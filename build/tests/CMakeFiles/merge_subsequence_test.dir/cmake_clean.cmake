file(REMOVE_RECURSE
  "CMakeFiles/merge_subsequence_test.dir/merge_subsequence_test.cc.o"
  "CMakeFiles/merge_subsequence_test.dir/merge_subsequence_test.cc.o.d"
  "merge_subsequence_test"
  "merge_subsequence_test.pdb"
  "merge_subsequence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_subsequence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
