# Empty compiler generated dependencies file for merge_subsequence_test.
# This may be replaced when dependencies are built.
