file(REMOVE_RECURSE
  "CMakeFiles/paper_fidelity_test.dir/paper_fidelity_test.cc.o"
  "CMakeFiles/paper_fidelity_test.dir/paper_fidelity_test.cc.o.d"
  "paper_fidelity_test"
  "paper_fidelity_test.pdb"
  "paper_fidelity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_fidelity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
