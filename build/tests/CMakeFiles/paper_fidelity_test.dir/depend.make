# Empty dependencies file for paper_fidelity_test.
# This may be replaced when dependencies are built.
