file(REMOVE_RECURSE
  "CMakeFiles/prefix_sums_test.dir/prefix_sums_test.cc.o"
  "CMakeFiles/prefix_sums_test.dir/prefix_sums_test.cc.o.d"
  "prefix_sums_test"
  "prefix_sums_test.pdb"
  "prefix_sums_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefix_sums_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
