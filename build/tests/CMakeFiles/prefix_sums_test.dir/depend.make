# Empty dependencies file for prefix_sums_test.
# This may be replaced when dependencies are built.
