file(REMOVE_RECURSE
  "CMakeFiles/selectivity_test.dir/selectivity_test.cc.o"
  "CMakeFiles/selectivity_test.dir/selectivity_test.cc.o.d"
  "selectivity_test"
  "selectivity_test.pdb"
  "selectivity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selectivity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
