# Empty compiler generated dependencies file for selectivity_test.
# This may be replaced when dependencies are built.
