file(REMOVE_RECURSE
  "CMakeFiles/sliding_wavelet_test.dir/sliding_wavelet_test.cc.o"
  "CMakeFiles/sliding_wavelet_test.dir/sliding_wavelet_test.cc.o.d"
  "sliding_wavelet_test"
  "sliding_wavelet_test.pdb"
  "sliding_wavelet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sliding_wavelet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
