# Empty dependencies file for sliding_wavelet_test.
# This may be replaced when dependencies are built.
