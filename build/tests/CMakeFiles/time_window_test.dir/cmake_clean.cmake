file(REMOVE_RECURSE
  "CMakeFiles/time_window_test.dir/time_window_test.cc.o"
  "CMakeFiles/time_window_test.dir/time_window_test.cc.o.d"
  "time_window_test"
  "time_window_test.pdb"
  "time_window_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
