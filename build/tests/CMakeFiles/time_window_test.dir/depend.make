# Empty dependencies file for time_window_test.
# This may be replaced when dependencies are built.
