file(REMOVE_RECURSE
  "CMakeFiles/vopt_dp_test.dir/vopt_dp_test.cc.o"
  "CMakeFiles/vopt_dp_test.dir/vopt_dp_test.cc.o.d"
  "vopt_dp_test"
  "vopt_dp_test.pdb"
  "vopt_dp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vopt_dp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
