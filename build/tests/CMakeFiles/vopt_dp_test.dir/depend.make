# Empty dependencies file for vopt_dp_test.
# This may be replaced when dependencies are built.
