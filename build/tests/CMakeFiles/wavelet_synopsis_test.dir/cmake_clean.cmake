file(REMOVE_RECURSE
  "CMakeFiles/wavelet_synopsis_test.dir/wavelet_synopsis_test.cc.o"
  "CMakeFiles/wavelet_synopsis_test.dir/wavelet_synopsis_test.cc.o.d"
  "wavelet_synopsis_test"
  "wavelet_synopsis_test.pdb"
  "wavelet_synopsis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavelet_synopsis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
