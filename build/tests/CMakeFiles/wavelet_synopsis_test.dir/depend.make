# Empty dependencies file for wavelet_synopsis_test.
# This may be replaced when dependencies are built.
