file(REMOVE_RECURSE
  "CMakeFiles/streamhist_tool.dir/streamhist_tool.cpp.o"
  "CMakeFiles/streamhist_tool.dir/streamhist_tool.cpp.o.d"
  "streamhist_tool"
  "streamhist_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamhist_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
