# Empty compiler generated dependencies file for streamhist_tool.
# This may be replaced when dependencies are built.
