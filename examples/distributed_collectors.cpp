// Distributed collection: two collectors each stream one shard of a long
// measurement window (e.g. two halves of a day, or two chained links) and
// ship only their serialized histograms to a coordinator, which fuses them
// into a single B-bucket sketch with MergeAdjacentHistograms. Query accuracy
// at the coordinator is compared against a histogram built directly over all
// the data it never saw.
//
//   ./build/examples/distributed_collectors

#include <cstdio>
#include <vector>

#include "src/core/agglomerative.h"
#include "src/core/heuristics.h"
#include "src/core/histogram_io.h"
#include "src/core/vopt_dp.h"
#include "src/data/generators.h"
#include "src/query/estimator.h"
#include "src/query/metrics.h"
#include "src/query/workload.h"
#include "src/util/random.h"

namespace {

streamhist::Histogram CollectShard(const std::vector<double>& shard,
                                   int64_t buckets) {
  using namespace streamhist;
  ApproxHistogramOptions options;
  options.num_buckets = buckets;
  options.epsilon = 0.1;
  AgglomerativeHistogram collector =
      AgglomerativeHistogram::Create(options).value();
  for (double v : shard) collector.Append(v);
  return collector.Extract();
}

}  // namespace

int main() {
  using namespace streamhist;

  constexpr int64_t kPointsPerShard = 5000;
  constexpr int64_t kBuckets = 24;

  // Each collector sees its own shard of the measurement timeline.
  const std::vector<double> shard_a =
      GenerateDataset(DatasetKind::kUtilization, kPointsPerShard, 1);
  const std::vector<double> shard_b =
      GenerateDataset(DatasetKind::kUtilization, kPointsPerShard, 2);

  const Histogram hist_a = CollectShard(shard_a, kBuckets);
  const Histogram hist_b = CollectShard(shard_b, kBuckets);

  // The shards travel as bytes; the raw points never leave the collectors.
  const std::string wire_a = SerializeHistogram(hist_a);
  const std::string wire_b = SerializeHistogram(hist_b);
  std::printf("collector A shipped %zu bytes for %lld points (%.0fx "
              "compression)\n",
              wire_a.size(), static_cast<long long>(kPointsPerShard),
              static_cast<double>(kPointsPerShard) * 8 /
                  static_cast<double>(wire_a.size()));
  std::printf("collector B shipped %zu bytes for %lld points\n\n",
              wire_b.size(), static_cast<long long>(kPointsPerShard));

  // Coordinator: deserialize and fuse.
  const Histogram remote_a = DeserializeHistogram(wire_a).value();
  const Histogram remote_b = DeserializeHistogram(wire_b).value();
  const Histogram fused = MergeAdjacentHistograms(remote_a, remote_b, kBuckets);
  std::printf("coordinator fused %lld + %lld buckets into %lld over [0, %lld)\n",
              static_cast<long long>(remote_a.num_buckets()),
              static_cast<long long>(remote_b.num_buckets()),
              static_cast<long long>(fused.num_buckets()),
              static_cast<long long>(fused.domain_size()));

  // Reference: a histogram built with full access to both shards.
  std::vector<double> all = shard_a;
  all.insert(all.end(), shard_b.begin(), shard_b.end());
  const Histogram direct = BuildVOptimalHistogram(all, kBuckets).histogram;

  ExactEstimator exact(all);
  HistogramEstimator fused_est(&fused, "fused");
  HistogramEstimator direct_est(&direct, "direct");
  Random rng(7);
  const auto queries =
      GenerateUniformRangeQueries(static_cast<int64_t>(all.size()), 500, rng);
  const double fused_mae =
      EvaluateRangeSums(exact, fused_est, queries).mean_absolute_error;
  const double direct_mae =
      EvaluateRangeSums(exact, direct_est, queries).mean_absolute_error;
  double mean_answer = 0.0;
  for (const RangeQuery& q : queries) mean_answer += exact.RangeSum(q.lo, q.hi);
  mean_answer /= static_cast<double>(queries.size());

  std::printf("\nrange-sum accuracy over 500 random queries (mean answer "
              "%.3g):\n", mean_answer);
  std::printf("  fused remote sketches : MAE %.1f (%.3f%% of mean answer)\n",
              fused_mae, 100 * fused_mae / mean_answer);
  std::printf("  direct full-data build: MAE %.1f (%.3f%% of mean answer)\n",
              direct_mae, 100 * direct_mae / mean_answer);
  std::printf("\nThe coordinator never saw a raw point, yet its fused sketch "
              "answers within the same accuracy class as the full-data "
              "histogram.\n");
  return 0;
}
