// Network monitoring scenario from the paper's introduction: a router
// produces a stream of per-interval byte counts; an operator asks for
// aggregate bytes over recent time windows ("the aggregate number of bytes
// over network interfaces for time windows of interest"). The stream never
// ends and cannot be stored, so the operator's console answers from a
// fixed-window histogram that is maintained incrementally.
//
// This example simulates three interfaces, maintains one sketch per
// interface, and then replays a small "operator session" of window queries,
// reporting approximate answers, exact answers and the relative error.
//
//   ./build/examples/network_monitoring

#include <cstdio>
#include <vector>

#include "src/core/fixed_window.h"
#include "src/data/generators.h"
#include "src/query/estimator.h"
#include "src/query/workload.h"
#include "src/util/random.h"

namespace {

struct Interface {
  const char* name;
  streamhist::UtilizationOptions traffic;
  uint64_t seed;
};

}  // namespace

int main() {
  using namespace streamhist;

  constexpr int64_t kWindow = 1024;  // last 1024 measurement intervals
  constexpr int64_t kBuckets = 24;

  Interface interfaces[] = {
      {"eth0 (backbone)", {}, 1},
      {"eth1 (bursty customer)", {}, 2},
      {"eth2 (quiet)", {}, 3},
  };
  interfaces[1].traffic.burst_probability = 0.01;
  interfaces[1].traffic.burst_magnitude = 30000.0;
  interfaces[2].traffic.base_level = 2000.0;
  interfaces[2].traffic.diurnal_amplitude = 500.0;
  interfaces[2].traffic.noise_stddev = 100.0;

  std::printf("monitoring %zu interfaces, window = last %lld intervals, "
              "B = %lld buckets per interface\n\n",
              std::size(interfaces), static_cast<long long>(kWindow),
              static_cast<long long>(kBuckets));

  for (const Interface& iface : interfaces) {
    FixedWindowOptions options;
    options.window_size = kWindow;
    options.num_buckets = kBuckets;
    options.epsilon = 0.1;
    options.rebuild_on_append = false;
    FixedWindowHistogram sketch =
        FixedWindowHistogram::Create(options).value();

    // Replay the day's traffic.
    const std::vector<double> traffic =
        GenerateUtilizationSeries(20000, iface.traffic, iface.seed);
    for (double bytes : traffic) sketch.Append(bytes);

    // Operator session: a few ad-hoc "bytes over the last X intervals"
    // queries plus random interior ranges.
    const std::vector<double> window = sketch.window().ToVector();
    ExactEstimator exact(window);
    std::printf("%s\n", iface.name);
    Random rng(iface.seed * 97);
    std::vector<RangeQuery> session{{kWindow - 60, kWindow},
                                    {kWindow - 300, kWindow},
                                    {0, kWindow}};
    const auto random_queries = GenerateUniformRangeQueries(kWindow, 3, rng);
    session.insert(session.end(), random_queries.begin(),
                   random_queries.end());
    for (const RangeQuery& q : session) {
      const double approx = sketch.RangeSum(q.lo, q.hi);
      const double truth = exact.RangeSum(q.lo, q.hi);
      const double rel =
          truth != 0.0 ? 100.0 * (approx - truth) / truth : 0.0;
      std::printf("  bytes[%4lld, %4lld): approx %12.0f | exact %12.0f | "
                  "err %+6.2f%%\n",
                  static_cast<long long>(q.lo), static_cast<long long>(q.hi),
                  approx, truth, rel);
    }
    std::printf("  sketch: %lld buckets for %lld points (%.1fx compression), "
                "SSE within 10%% of optimal\n\n",
                static_cast<long long>(sketch.Extract().num_buckets()),
                static_cast<long long>(kWindow),
                static_cast<double>(kWindow) /
                    static_cast<double>(sketch.Extract().num_buckets()));
  }
  return 0;
}
