// Quickstart: maintain a (1+eps)-approximate V-optimal histogram over a
// sliding window of a data stream and answer range-sum queries from it.
//
//   cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "src/core/fixed_window.h"
#include "src/data/generators.h"
#include "src/query/estimator.h"

int main() {
  using namespace streamhist;

  // 1. Configure: window of the latest 512 points, 16 buckets, SSE within a
  //    factor (1 + 0.1) of the best possible 16-bucket histogram.
  FixedWindowOptions options;
  options.window_size = 512;
  options.num_buckets = 16;
  options.epsilon = 0.1;
  options.rebuild_on_append = false;  // rebuild lazily, on query

  auto created = FixedWindowHistogram::Create(options);
  if (!created.ok()) {
    std::fprintf(stderr, "bad options: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  FixedWindowHistogram histogram = std::move(created).value();

  // 2. Stream data through it (here: a synthetic router-utilization trace).
  const std::vector<double> stream =
      GenerateDataset(DatasetKind::kUtilization, 10000, /*seed=*/42);
  for (double point : stream) histogram.Append(point);

  // 3. Query the approximation and compare with the exact window.
  std::printf("histogram of the last %lld points (%lld buckets):\n",
              static_cast<long long>(histogram.window().size()),
              static_cast<long long>(histogram.Extract().num_buckets()));
  std::printf("  %s\n", histogram.Extract().ToString().c_str());
  std::printf("approximation SSE: %.1f (within %.0f%% of optimal by "
              "construction)\n",
              histogram.ApproxError(), options.epsilon * 100);

  const auto exact_window = histogram.window().ToVector();
  ExactEstimator exact(exact_window);
  for (const auto& [lo, hi] : {std::pair<int64_t, int64_t>{0, 512},
                               {100, 200}, {500, 512}}) {
    std::printf("sum[%lld, %lld): approx %.0f | exact %.0f\n",
                static_cast<long long>(lo), static_cast<long long>(hi),
                histogram.RangeSum(lo, hi), exact.RangeSum(lo, hi));
  }
  return 0;
}
