// An operator console over live streams: registers per-interface streams
// with the QueryEngine, replays a day of traffic, then runs a scripted
// operator session through the textual query language (pass queries on
// stdin to run your own, one per line).
//
//   ./build/examples/stream_console
//   echo "SUM eth0 LAST 60" | ./build/examples/stream_console -
//
// Everything answered here comes from constant-size synopses: the
// (1+eps)-approximate window histogram, the lifetime agglomerative
// histogram, a GK quantile summary and an FM distinct sketch. The raw
// stream is never stored beyond the sliding window.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "src/data/generators.h"
#include "src/engine/query_engine.h"

namespace {

void RunStatement(streamhist::QueryEngine& engine, const std::string& stmt) {
  const auto result = engine.Execute(stmt);
  if (result.ok()) {
    std::printf("streamhist> %-28s => %s\n", stmt.c_str(),
                result.value().c_str());
  } else {
    std::printf("streamhist> %-28s !! %s\n", stmt.c_str(),
                result.status().ToString().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace streamhist;

  QueryEngine engine;
  StreamConfig config;
  config.window_size = 1024;
  config.num_buckets = 16;
  config.epsilon = 0.1;

  for (const char* name : {"eth0", "eth1"}) {
    if (Status s = engine.CreateStream(name, config); !s.ok()) {
      std::fprintf(stderr, "create %s: %s\n", name, s.ToString().c_str());
      return 1;
    }
  }

  // Replay a day of traffic into both interfaces.
  UtilizationOptions bursty;
  bursty.burst_probability = 0.01;
  bursty.burst_magnitude = 30000.0;
  (void)engine.AppendBatch(
      "eth0", GenerateUtilizationSeries(20000, UtilizationOptions{}, 1));
  (void)engine.AppendBatch("eth1", GenerateUtilizationSeries(20000, bursty, 2));

  if (argc > 1 && std::strcmp(argv[1], "-") == 0) {
    // Interactive / piped mode: one statement per line on stdin.
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!line.empty()) RunStatement(engine, line);
    }
    return 0;
  }

  // Scripted operator session.
  const char* session[] = {
      "LIST",
      "COUNT eth0",
      "DESCRIBE eth0",
      "SUM eth0 LAST 60",
      "SUMBOUND eth0 LAST 60",
      "SUM eth0 LAST 600",
      "AVG eth0 0 1024",
      "POINT eth0 1023",
      "QUANTILE eth0 0.5",
      "QUANTILE eth0 0.99",
      "DISTINCT eth0",
      "ERROR eth0",
      "SUM eth1 LAST 60",
      "QUANTILE eth1 0.99",
      "SHOW eth1",
      "SUM eth1 900 2000",   // out of range: reported, not fatal
      "QUANTILE eth2 0.5",   // unknown stream: reported, not fatal
  };
  for (const char* stmt : session) RunStatement(engine, stmt);
  return 0;
}
