// Time-series similarity search (paper section 5.2, third experiment):
// reduce each series in a collection to a B-segment piecewise-constant
// representation, then answer "find series similar to Q" with a GEMINI
// filter-and-refine loop. Histogram representations admit fewer false
// positives than APCA at the same budget.
//
//   ./build/examples/timeseries_similarity

#include <cstdio>
#include <vector>

#include "src/data/generators.h"
#include "src/timeseries/distance.h"
#include "src/timeseries/similarity.h"

int main() {
  using namespace streamhist;

  constexpr int64_t kSeries = 150;
  constexpr int64_t kLength = 256;
  constexpr int64_t kSegments = 8;

  std::printf("collection: %lld series of length %lld; representations use "
              "%lld segments each\n\n",
              static_cast<long long>(kSeries), static_cast<long long>(kLength),
              static_cast<long long>(kSegments));

  const auto collection =
      GenerateSeriesCollection(kSeries, kLength, /*closeness=*/0.7, 7);
  const auto query = GenerateSeriesCollection(1, kLength, 0.7, 8)[0];

  struct Candidate {
    const char* name;
    ReprBuilder builder;
  };
  const Candidate candidates[] = {
      {"APCA (Keogh et al., SIGMOD'01)", MakeApcaBuilder()},
      {"Agglomerative histogram (one pass, eps=0.1)",
       MakeAgglomerativeBuilder(0.1)},
      {"V-optimal histogram (offline optimum)", MakeVOptimalBuilder()},
  };

  // Radius at which ~8% of the collection matches.
  std::vector<double> dists;
  for (const auto& s : collection) dists.push_back(Euclidean(query, s));
  std::vector<double> sorted = dists;
  std::nth_element(sorted.begin(), sorted.begin() + kSeries / 12,
                   sorted.end());
  const double radius = sorted[kSeries / 12];

  for (const Candidate& c : candidates) {
    SimilarityIndex index(collection, kSegments, c.builder);
    SearchStats stats;
    const auto matches = index.RangeSearch(query, radius, &stats);
    std::printf("%s\n", c.name);
    std::printf("  range search (r=%.0f): %lld matches, %lld candidates "
                "passed the filter, %lld false positives\n",
                radius, static_cast<long long>(stats.answers),
                static_cast<long long>(stats.candidates),
                static_cast<long long>(stats.false_positives));

    const auto knn = index.KnnSearch(query, 5, &stats);
    std::printf("  5-NN: refined %lld of %lld series; nearest ids:",
                static_cast<long long>(stats.candidates),
                static_cast<long long>(index.num_series()));
    for (const Match& m : knn) {
      std::printf(" %lld(d=%.0f)", static_cast<long long>(m.series_id),
                  m.distance);
    }
    std::printf("\n\n");
  }

  std::printf("All three representations return the *same* answers (no false "
              "dismissals, guaranteed by the lower-bounding distance); they "
              "differ only in wasted exact-distance computations.\n");
  return 0;
}
