// Approximate query answering in a data warehouse (paper section 5.2,
// second experiment): build a histogram of a large stored measure column in
// ONE pass with AgglomerativeHistogram, then serve aggregation queries from
// the tiny histogram instead of scanning the data. Accuracy is comparable
// to the optimal (quadratic-time) histogram at a fraction of the build cost.
//
// Also demonstrates the GK quantile-summary substrate: an equi-depth
// value-domain summary built in the same single pass.
//
//   ./build/examples/warehouse_approx

#include <cmath>
#include <cstdio>
#include <vector>

#include "src/core/agglomerative.h"
#include "src/core/vopt_dp.h"
#include "src/data/generators.h"
#include "src/quantile/gk_summary.h"
#include "src/query/estimator.h"
#include "src/query/metrics.h"
#include "src/query/workload.h"
#include "src/util/random.h"
#include "src/util/timer.h"

int main() {
  using namespace streamhist;

  constexpr int64_t kRows = 8000;
  constexpr int64_t kBuckets = 32;

  std::printf("warehouse fact column: %lld rows; histogram budget B = %lld\n\n",
              static_cast<long long>(kRows), static_cast<long long>(kBuckets));
  const std::vector<double> column =
      GenerateDataset(DatasetKind::kUtilization, kRows, /*seed=*/99);

  // --- One-pass approximate build (also feeding the quantile summary). ---
  ApproxHistogramOptions options;
  options.num_buckets = kBuckets;
  options.epsilon = 0.1;
  AgglomerativeHistogram builder =
      AgglomerativeHistogram::Create(options).value();
  GKSummary quantiles = GKSummary::Create(0.01).value();

  Timer one_pass_timer;
  for (double v : column) {
    builder.Append(v);
    quantiles.Insert(v);
  }
  const Histogram approx = builder.Extract();
  const double one_pass_seconds = one_pass_timer.ElapsedSeconds();

  // --- The optimal histogram, for comparison (O(n^2 B)). ---
  Timer optimal_timer;
  const OptimalHistogramResult optimal =
      BuildVOptimalHistogram(column, kBuckets);
  const double optimal_seconds = optimal_timer.ElapsedSeconds();

  std::printf("build time: one-pass %.3fs vs optimal DP %.3fs (%.0fx)\n",
              one_pass_seconds, optimal_seconds,
              optimal_seconds / one_pass_seconds);
  std::printf("SSE: one-pass %.4g vs optimal %.4g (ratio %.4f, guarantee "
              "<= %.2f)\n\n",
              approx.SseAgainst(column), optimal.error,
              approx.SseAgainst(column) / optimal.error,
              1.0 + options.epsilon);

  // --- Serve an aggregation workload from both histograms. ---
  ExactEstimator exact(column);
  HistogramEstimator approx_est(&approx, "one-pass");
  HistogramEstimator optimal_est(&optimal.histogram, "optimal");
  Random rng(5);
  const auto queries = GenerateUniformRangeQueries(kRows, 1000, rng);
  const AccuracyReport approx_report =
      EvaluateRangeSums(exact, approx_est, queries);
  const AccuracyReport optimal_report =
      EvaluateRangeSums(exact, optimal_est, queries);
  // Normalize the absolute error by the typical query answer (many answers
  // are near zero, which makes per-query relative error meaningless here).
  double mean_answer = 0.0;
  for (const RangeQuery& q : queries) {
    mean_answer += std::fabs(exact.RangeSum(q.lo, q.hi));
  }
  mean_answer /= static_cast<double>(queries.size());
  std::printf("range-SUM queries (1000 random): mean abs error / mean "
              "|answer|\n");
  std::printf("  one-pass histogram: %.4f%%\n",
              100 * approx_report.mean_absolute_error / mean_answer);
  std::printf("  optimal histogram:  %.4f%%\n\n",
              100 * optimal_report.mean_absolute_error / mean_answer);

  // --- Value-domain statistics from the same pass. ---
  std::printf("column quantiles from the one-pass GK summary "
              "(eps = 1%%, %lld tuples kept for %lld rows):\n",
              static_cast<long long>(quantiles.num_tuples()),
              static_cast<long long>(kRows));
  for (double phi : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    std::printf("  p%-4.0f = %.0f\n", phi * 100, quantiles.Quantile(phi));
  }
  return 0;
}
