#!/usr/bin/env bash
# Crash-recovery smoke test: repeatedly SIGKILL streamhist_tool while it is
# checkpointing in a tight loop, then assert that whatever checkpoint file
# survived on disk loads back completely. Because SaveCheckpoint writes to a
# temp file and renames, a kill at ANY instant must leave either no
# checkpoint or a complete one — a partial load here is a crash-safety bug.
#
# usage: crash_recovery_smoke.sh <path-to-streamhist_tool> [iterations]
set -u

TOOL="${1:?usage: crash_recovery_smoke.sh <path-to-streamhist_tool> [iterations]}"
ITERATIONS="${2:-20}"

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
CKPT="$WORK/engine.ckpt"

# Writer session: build two streams, then append + checkpoint in a loop so a
# random kill lands mid-save with high probability.
{
  echo "CREATE eth0 64 8"
  echo "CREATE eth1 128 16"
  for i in $(seq 1 300); do
    echo "APPEND eth0 $i $((i + 1)) $((i + 2)) $((i * 3 % 97))"
    echo "APPEND eth1 $((i * 7 % 101)) $((i * 13 % 89))"
    echo "SAVE $CKPT"
  done
} > "$WORK/writer.shq"

# Reader session: a complete checkpoint must load both streams and answer.
{
  echo "LOAD $CKPT"
  echo "COUNT eth0"
  echo "COUNT eth1"
} > "$WORK/reader.shq"

failures=0
loads=0
for iter in $(seq 1 "$ITERATIONS"); do
  "$TOOL" console --script "$WORK/writer.shq" > /dev/null 2>&1 &
  pid=$!
  # Kill after a random sub-second delay so deaths sample the whole
  # write/fsync/rename window across iterations.
  sleep "0.0$((RANDOM % 10))$((RANDOM % 10))"
  kill -9 "$pid" 2>/dev/null
  wait "$pid" 2>/dev/null

  if [ ! -f "$CKPT" ]; then
    continue  # killed before the first save completed: a legal outcome
  fi
  loads=$((loads + 1))
  out=$("$TOOL" console --script "$WORK/reader.shq" 2>&1)
  status=$?
  if [ "$status" -ne 0 ] || ! echo "$out" | grep -q "loaded 2 stream(s)"; then
    echo "FAIL iteration $iter: checkpoint did not reload cleanly (exit $status)"
    echo "$out"
    failures=$((failures + 1))
  fi
  rm -f "$CKPT" "$CKPT.tmp"
done

echo "crash_recovery_smoke: $ITERATIONS kills, $loads checkpoints verified, $failures failures"
if [ "$failures" -ne 0 ]; then
  exit 1
fi
if [ "$loads" -eq 0 ]; then
  echo "WARNING: no iteration survived to a first checkpoint; nothing verified"
fi

# ---------------------------------------------------------------------------
# Phase 2: transient-fault retry. With fileio.fsync.transient:2 armed through
# the environment, the first SAVE's fsync fails twice and must self-heal on
# the third attempt (bounded retry with backoff) — no kill involved.
{
  echo "CREATE eth0 64 8"
  echo "CREATE eth1 128 16"
  echo "APPEND eth0 1 2 3"
  echo "APPEND eth1 4 5"
  echo "SAVE $CKPT"
} > "$WORK/retry.shq"
rm -f "$CKPT" "$CKPT.tmp"
out=$(STREAMHIST_FAULTS="fileio.fsync.transient:2" \
        "$TOOL" console --script "$WORK/retry.shq" 2>&1)
if [ $? -ne 0 ] || ! echo "$out" | grep -q "after 3 attempts"; then
  echo "FAIL: transient fsync faults did not self-heal via retry"
  echo "$out"
  exit 1
fi
out=$("$TOOL" console --script "$WORK/reader.shq" 2>&1)
if [ $? -ne 0 ] || ! echo "$out" | grep -q "loaded 2 stream(s)"; then
  echo "FAIL: checkpoint written through the retry path did not reload"
  echo "$out"
  exit 1
fi
rm -f "$CKPT" "$CKPT.tmp"
echo "crash_recovery_smoke: transient-retry save self-healed and reloaded"

# Phase 3: SIGKILL while transient faults hold the saver inside its
# retry/backoff loop. The temp-file-then-rename discipline applies to every
# attempt, so any checkpoint that survives must still load completely.
retry_iters=$(( (ITERATIONS + 4) / 5 ))
failures=0
loads=0
for iter in $(seq 1 "$retry_iters"); do
  STREAMHIST_FAULTS="fileio.fsync.transient:2" \
    "$TOOL" console --script "$WORK/writer.shq" > /dev/null 2>&1 &
  pid=$!
  sleep "0.0$((RANDOM % 10))$((RANDOM % 10))"
  kill -9 "$pid" 2>/dev/null
  wait "$pid" 2>/dev/null

  if [ ! -f "$CKPT" ]; then
    continue
  fi
  loads=$((loads + 1))
  out=$("$TOOL" console --script "$WORK/reader.shq" 2>&1)
  status=$?
  if [ "$status" -ne 0 ] || ! echo "$out" | grep -q "loaded 2 stream(s)"; then
    echo "FAIL retry-phase iteration $iter: checkpoint did not reload cleanly (exit $status)"
    echo "$out"
    failures=$((failures + 1))
  fi
  rm -f "$CKPT" "$CKPT.tmp"
done
echo "crash_recovery_smoke: $retry_iters kills mid-retry, $loads checkpoints verified, $failures failures"
if [ "$failures" -ne 0 ]; then
  exit 1
fi
exit 0
