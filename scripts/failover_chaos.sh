#!/usr/bin/env bash
# Replication failover chaos harness (DESIGN.md §14): run a primary and a
# live read replica under semi-synchronous WAL shipping, SIGKILL the primary
# mid-burst, and prove three things every cycle:
#
#   1. zero acked-write loss — every append the client saw an OK for under
#      --repl-sync-ms semi-sync is present on the replica after PROMOTE,
#   2. reads survive the outage — the replica answers estimation verbs
#      while the primary is dead, before and after promotion, and
#   3. the lineage chains — the promoted node becomes the next cycle's
#      primary and feeds a brand-new replica (exercising subscribe-from-LSN
#      and, once checkpoints truncate, the Bootstrap handoff).
#
# The client keeps acked/sent counters in a state file across cycles and
# asserts acked <= COUNT <= sent at every verification point (see
# failover_chaos_client.py for why semi-sync upgrades this to zero acked
# loss at promote time).
#
# usage: failover_chaos.sh <path-to-streamhist_tool> [cycles]
set -u

TOOL="${1:?usage: failover_chaos.sh <path-to-streamhist_tool> [cycles]}"
CYCLES="${2:-5}"
CLIENT="$(dirname "$0")/failover_chaos_client.py"
WORK=$(mktemp -d)
PRIMARY=""
REPLICA=""
trap 'kill -9 "$PRIMARY" "$REPLICA" 2>/dev/null; rm -rf "$WORK"' EXIT
STATE="$WORK/state.json"
GEN=0

fail() {
  echo "FAIL: $1"
  for f in "$WORK"/node-*.log; do
    [ -f "$f" ] || continue
    echo "--- $f"
    tail -30 "$f"
  done
  exit 1
}

# Starts one node on an ephemeral port with its own WAL dir. With a third
# argument it starts as a replica of that primary port. Sets NODE_PID and
# NODE_PORT (parsed from the machine-readable "LISTENING <port>" line).
start_node() {
  local wal="$1" log="$2" primary_port="${3:-}"
  local extra=()
  if [ -n "$primary_port" ]; then
    extra=(--replica-of "127.0.0.1:$primary_port" --replica-max-lag-ms 30000)
  fi
  "$TOOL" serve --listen 0 --threads 2 --wal-dir "$wal" \
    --wal-policy always --repl-sync-ms 5000 "${extra[@]}" > "$log" 2>&1 &
  NODE_PID=$!
  NODE_PORT=""
  for _ in $(seq 1 100); do
    NODE_PORT=$(awk '/^LISTENING /{print $2; exit}' "$log")
    [ -n "$NODE_PORT" ] && return 0
    kill -0 "$NODE_PID" 2>/dev/null || break
    sleep 0.1
  done
  fail "node ($log) never announced LISTENING"
}

# Generation 0: the first primary.
start_node "$WORK/wal-0" "$WORK/node-0.log"
PRIMARY=$NODE_PID
PRIMARY_PORT=$NODE_PORT

for CYCLE in $(seq 1 "$CYCLES"); do
  GEN=$((GEN + 1))
  start_node "$WORK/wal-$GEN" "$WORK/node-$GEN.log" "$PRIMARY_PORT"
  REPLICA=$NODE_PID
  REPLICA_PORT=$NODE_PORT

  # The burst client proves the pipeline live end to end (probe append
  # visible on the replica) before we arm the kill timer — a kill that
  # lands before the replica ever subscribed would be testing nothing.
  python3 "$CLIENT" burst "$PRIMARY_PORT" "$REPLICA_PORT" "$STATE" 200000 \
    > "$WORK/client.log" 2>&1 &
  CLIENT_PID=$!
  for _ in $(seq 1 200); do
    grep -q 'pipeline live' "$WORK/client.log" && break
    kill -0 "$CLIENT_PID" 2>/dev/null || break
    sleep 0.1
  done
  grep -q 'pipeline live' "$WORK/client.log" || {
    cat "$WORK/client.log"
    fail "cycle $CYCLE: replication pipeline never went live"
  }

  # Let the kill land at a random point in the burst so every cycle tears
  # the shipping stream somewhere new.
  sleep "$(awk -v r="$RANDOM" 'BEGIN { printf "%.2f", 0.05 + (r % 100) / 400 }')"
  kill -9 "$PRIMARY" 2>/dev/null
  wait "$PRIMARY" 2>/dev/null
  wait "$CLIENT_PID"
  CLIENT_STATUS=$?
  cat "$WORK/client.log"
  [ "$CLIENT_STATUS" -eq 0 ] || fail "cycle $CYCLE: burst client invariant violated"

  # Primary is gone: the replica must still serve reads, then PROMOTE and
  # prove zero acked-write loss.
  python3 "$CLIENT" promote "$REPLICA_PORT" "$STATE" \
    || fail "cycle $CYCLE: failover verification failed"

  # The promoted node is the next cycle's primary.
  PRIMARY=$REPLICA
  PRIMARY_PORT=$REPLICA_PORT
  REPLICA=""
done

# Clean SIGTERM shutdown of the last survivor; its summary must show WAL
# totals like any durable server.
kill -TERM "$PRIMARY" 2>/dev/null
wait "$PRIMARY"
SURVIVOR_STATUS=$?
[ "$SURVIVOR_STATUS" -eq 0 ] || fail "survivor exited $SURVIVOR_STATUS on SIGTERM"
grep -q '^wal: records=' "$WORK/node-$GEN.log" \
  || fail "no WAL totals in the survivor's shutdown summary"

echo "failover_chaos: $CYCLES SIGKILL+PROMOTE cycles, zero acked-write loss"
exit 0
