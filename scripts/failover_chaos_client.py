#!/usr/bin/env python3
"""Failover client for the replication chaos harness (DESIGN.md §14).

scripts/failover_chaos.sh runs a primary + replica pair under semi-sync
replication (--repl-sync-ms), SIGKILLs the primary mid-burst, promotes the
replica, and chains the promoted node in as the next cycle's primary. This
client is both halves of the check, selected by the first argument:

  burst <primary_port> <replica_port> <statefile> <max_appends>
      Verifies the recovered count on the primary, proves the replication
      pipeline is live end to end (an appended probe value becomes visible
      on the replica), prints "pipeline live" for the harness's kill timer,
      then appends until the primary is killed out from under it.

  promote <replica_port> <statefile>
      Runs with the primary already dead. Asserts the replica still answers
      estimation verbs (the outage read), issues PROMOTE, and asserts zero
      acked-write loss: every append the burst phase saw an OK for must be
      in the promoted node's count.

The state file carries sent/acked counters across cycles exactly like
wal_chaos_client.py: `sent` increments before the append reaches the
kernel, `acked` only after its OK is read, and the invariant everywhere is
acked <= COUNT <= sent. Under semi-sync an OK additionally means the record
was durable on the replica (or the sync budget lapsed, which the harness's
generous budget makes effectively impossible on loopback), which is what
upgrades the promote-time check from "bounded loss" to "zero acked loss".

A connection reset mid-burst is the expected outcome (the harness killed
the primary) and exits 0; only an invariant violation or a protocol error
exits 1.
"""

import json
import os
import socket
import sys
import time

STREAM = "failover0"


def load_state(path):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except FileNotFoundError:
        return {"sent": 0, "acked": 0, "cycles": 0}


def save_state(path, state):
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(state, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class Connection:
    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=30)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.buffer = b""

    def read_line(self):
        while b"\n" not in self.buffer:
            chunk = self.sock.recv(4096)
            if not chunk:
                return None
            self.buffer += chunk
        line, self.buffer = self.buffer.split(b"\n", 1)
        return line.decode()

    def read_reply(self):
        """(ok, lines) for OK replies, (False, [err line]) for ERR, None on EOF."""
        head = self.read_line()
        if head is None:
            return None
        if head.startswith("OK "):
            lines = []
            for _ in range(int(head.split()[1])):
                line = self.read_line()
                if line is None:
                    return None
                lines.append(line)
            return True, lines
        if head.startswith("ERR "):
            return False, [head]
        raise AssertionError(f"unparseable reply head: {head!r}")

    def ask(self, statement):
        self.sock.sendall((statement + "\n").encode())
        return self.read_reply()


def count_stream(conn):
    reply = conn.ask(f"COUNT {STREAM}")
    if reply is None or not reply[0]:
        return None, reply
    return int(reply[1][0]), reply


def burst(primary_port, replica_port, state_path, max_appends):
    state = load_state(state_path)
    state["cycles"] += 1

    primary = Connection(primary_port)

    # Ensure the stream exists: OK on the first-ever cycle, ALREADY_EXISTS on
    # every chained generation (evidence the CREATE record replicated).
    reply = primary.ask(f"CREATE {STREAM} 1000000 8")
    if reply is None:
        print("failover_chaos_client: primary closed during CREATE")
        return 1
    if not reply[0] and "EXISTS" not in reply[1][0].upper():
        print(f"failover_chaos_client: unexpected CREATE error: {reply[1][0]}")
        return 1

    count, reply = count_stream(primary)
    if count is None:
        print(f"failover_chaos_client: primary COUNT failed: {reply}")
        return 1
    if not state["acked"] <= count <= state["sent"]:
        print(
            f"failover_chaos_client: DURABILITY VIOLATION cycle "
            f"{state['cycles']}: acked={state['acked']} count={count} "
            f"sent={state['sent']}"
        )
        return 1
    save_state(state_path, state)

    # Prove the pipeline live end to end before the harness arms its kill
    # timer: one probe append on the primary must become visible on the
    # replica. Until this passes, a kill could land before the replica ever
    # subscribed, and semi-sync would (correctly) have degraded to async.
    state["sent"] += 1
    reply = primary.ask(f"APPEND {STREAM} {state['sent']}")
    if reply is None or not reply[0]:
        print(f"failover_chaos_client: probe append failed: {reply}")
        return 1
    state["acked"] += 1
    save_state(state_path, state)

    replica = Connection(replica_port)
    deadline = time.monotonic() + 15
    while True:
        rcount, reply = count_stream(replica)
        if rcount is not None and rcount >= state["acked"]:
            break
        if time.monotonic() > deadline:
            print(
                f"failover_chaos_client: replica never caught up "
                f"(want >= {state['acked']}, last reply {reply})"
            )
            return 1
        time.sleep(0.05)
    replica.sock.close()
    print(
        f"failover_chaos_client: cycle {state['cycles']} pipeline live: "
        f"replica count {rcount} >= acked {state['acked']}",
        flush=True,
    )

    # Append until the harness kills the primary (or max_appends, whichever
    # first). This process outlives the server, so in-memory counters are
    # safe; the state file is rewritten on every exit path.
    try:
        for _ in range(max_appends):
            value = state["sent"] + 1
            state["sent"] += 1
            primary.sock.sendall(f"APPEND {STREAM} {value}\n".encode())
            reply = primary.read_reply()
            if reply is None:
                break  # primary killed: everything un-acked stays un-acked
            if not reply[0]:
                print(f"failover_chaos_client: append refused: {reply[1][0]}")
                return 1
            state["acked"] += 1
    except (ConnectionResetError, BrokenPipeError, socket.timeout):
        pass  # the SIGKILL arrived mid-send or mid-recv; expected
    finally:
        save_state(state_path, state)

    print(
        f"failover_chaos_client: cycle {state['cycles']} burst done: "
        f"acked={state['acked']} sent={state['sent']}"
    )
    return 0


def promote(replica_port, state_path):
    state = load_state(state_path)
    replica = Connection(replica_port)

    # The outage read: the primary is already dead, and the whole point of a
    # read replica is that estimation verbs keep answering anyway.
    count, reply = count_stream(replica)
    if count is None:
        print(f"failover_chaos_client: outage read failed: {reply}")
        return 1
    print(
        f"failover_chaos_client: outage read served: count={count} "
        f"(acked={state['acked']})"
    )

    reply = replica.ask("PROMOTE")
    if reply is None or not reply[0]:
        print(f"failover_chaos_client: PROMOTE failed: {reply}")
        return 1
    print(f"failover_chaos_client: {reply[1][0]}")

    count, reply = count_stream(replica)
    if count is None:
        print(f"failover_chaos_client: post-promote COUNT failed: {reply}")
        return 1
    if not state["acked"] <= count <= state["sent"]:
        print(
            f"failover_chaos_client: ACKED-WRITE LOSS at promote: "
            f"acked={state['acked']} count={count} sent={state['sent']}"
        )
        return 1

    # The promoted node must accept writes again — and they count like any
    # other acked write for the next cycle's verification.
    state["sent"] += 1
    reply = replica.ask(f"APPEND {STREAM} {state['sent']}")
    if reply is None or not reply[0]:
        print(f"failover_chaos_client: post-promote append failed: {reply}")
        return 1
    state["acked"] += 1
    save_state(state_path, state)
    print(
        f"failover_chaos_client: promoted node verified: "
        f"acked={state['acked']} <= count={count + 1} <= sent={state['sent']}"
    )
    return 0


def main():
    mode = sys.argv[1]
    if mode == "burst":
        return burst(
            int(sys.argv[2]), int(sys.argv[3]), sys.argv[4], int(sys.argv[5])
        )
    if mode == "promote":
        return promote(int(sys.argv[2]), sys.argv[3])
    print(f"failover_chaos_client: unknown mode {mode!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
