#!/usr/bin/env bash
# Live-server smoke for the TCP front-end: start `streamhist_tool serve
# --listen 0` (ephemeral port), drive it with the independent Python protocol
# client (text + binary frames, one malformed frame, one oversized line),
# then SIGTERM and assert a clean shutdown — exit 0, the summary line
# printed, and exactly the two deliberate protocol errors counted.
#
# usage: tcp_smoke.sh <path-to-streamhist_tool>
set -u

TOOL="${1:?usage: tcp_smoke.sh <path-to-streamhist_tool>}"
CLIENT="$(dirname "$0")/tcp_smoke_client.py"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
LOG="$WORK/serve.log"

# Start on an ephemeral port and wait for the machine-readable "LISTENING
# <port>" announcement. A transient startup failure (e.g. the kernel's
# ephemeral range momentarily exhausted on a busy CI box) gets ONE retry on
# a fresh port.
SERVER=""
PORT=""
for ATTEMPT in 1 2; do
  "$TOOL" serve --listen 0 --threads 2 > "$LOG" 2>&1 &
  SERVER=$!
  PORT=""
  for _ in $(seq 1 100); do
    PORT=$(awk '/^LISTENING /{print $2; exit}' "$LOG")
    [ -n "$PORT" ] && break
    kill -0 "$SERVER" 2>/dev/null || break
    sleep 0.1
  done
  [ -n "$PORT" ] && break
  kill -9 "$SERVER" 2>/dev/null
  wait "$SERVER" 2>/dev/null
  if [ "$ATTEMPT" -eq 1 ]; then
    echo "server failed to start; retrying once"
    continue
  fi
  echo "FAIL: server never announced its port (twice)"
  cat "$LOG"
  exit 1
done
echo "server listening on port $PORT (pid $SERVER)"

python3 "$CLIENT" "$PORT"
CLIENT_STATUS=$?

kill -TERM "$SERVER" 2>/dev/null
wait "$SERVER"
SERVER_STATUS=$?
cat "$LOG"

if [ "$CLIENT_STATUS" -ne 0 ]; then
  echo "FAIL: protocol client reported failures (exit $CLIENT_STATUS)"
  exit 1
fi
if [ "$SERVER_STATUS" -ne 0 ]; then
  echo "FAIL: server did not shut down cleanly on SIGTERM (exit $SERVER_STATUS)"
  exit 1
fi
if ! grep -q '^serve: ' "$LOG"; then
  echo "FAIL: no shutdown summary line in server output"
  exit 1
fi
# The client provokes exactly two protocol errors (corrupt frame + oversized
# line); the counters must agree and nothing else may have gone wrong.
if ! grep -q '2 protocol errors' "$LOG"; then
  echo "FAIL: summary does not count exactly the 2 deliberate protocol errors"
  exit 1
fi
echo "tcp_smoke: clean shutdown, counters as expected"
exit 0
