#!/usr/bin/env python3
"""Localhost smoke client for `streamhist_tool serve --listen` (DESIGN.md §11).

An independent reimplementation of the wire protocol — text statements plus
the CRC32C length-prefixed binary batch-APPEND frame — so the smoke test
cross-checks the server against the spec, not against the C++ codec that the
server itself links. Exercises, against a live server:

  1. text statement round-trips and pipelining,
  2. a binary batch-APPEND frame mixed into a text pipeline,
  3. one malformed frame (corrupt CRC): typed ERR PROTOCOL, then close,
  4. one oversized text line: typed ERR PROTOCOL, connection survives.

Exits 0 iff every expectation holds. usage: tcp_smoke_client.py <port>
"""

import socket
import struct
import sys

MAGIC = 0x484253F5  # first byte on the wire is 0xF5, which no text line starts with
VERSION = 1

_CRC_TABLE = []
for _i in range(256):
    _crc = _i
    for _ in range(8):
        _crc = (_crc >> 1) ^ 0x82F63B78 if _crc & 1 else _crc >> 1
    _CRC_TABLE.append(_crc)


def crc32c(data: bytes) -> int:
    crc = 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ _CRC_TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


def batch_frame(name: str, values, corrupt_crc: bool = False) -> bytes:
    encoded = name.encode()
    payload = struct.pack("<Q", len(encoded)) + encoded
    payload += struct.pack("<Q", len(values))
    for value in values:
        payload += struct.pack("<d", value)
    header = struct.pack("<IIQ", MAGIC, VERSION, len(payload))
    crc = crc32c(header + payload)
    if corrupt_crc:
        crc ^= 0xDEADBEEF
    return header + payload + struct.pack("<I", crc)


class Client:
    def __init__(self, port: int):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=10)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.buffer = b""

    def send(self, data: bytes):
        self.sock.sendall(data)

    def read_line(self):
        while b"\n" not in self.buffer:
            chunk = self.sock.recv(4096)
            if not chunk:
                return None  # EOF
            self.buffer += chunk
        line, self.buffer = self.buffer.split(b"\n", 1)
        return line.decode()

    def read_reply(self):
        """Returns (ok: bool, lines: [str]) or None on EOF."""
        head = self.read_line()
        if head is None:
            return None
        if head.startswith("OK "):
            count = int(head.split()[1])
            return True, [self.read_line() for _ in range(count)]
        if head.startswith("ERR "):
            return False, [head]
        raise AssertionError(f"unparseable reply head: {head!r}")

    def at_eof(self) -> bool:
        if self.buffer:
            return False
        try:
            return self.sock.recv(4096) == b""
        except socket.timeout:
            return False


FAILURES = []


def expect(condition: bool, what: str):
    tag = "ok" if condition else "FAIL"
    print(f"  [{tag}] {what}")
    if not condition:
        FAILURES.append(what)


def main() -> int:
    port = int(sys.argv[1])

    # 1. Text round-trips, one reply per statement, in order.
    c = Client(port)
    c.send(b"CREATE eth0 64 8\nAPPEND eth0 1 2 3\nCOUNT eth0\n")
    ok, _ = c.read_reply()
    expect(ok, "CREATE answered OK")
    ok, _ = c.read_reply()
    expect(ok, "APPEND answered OK")
    ok, lines = c.read_reply()
    expect(ok and lines == ["3"], f"COUNT eth0 == 3 (got {lines})")

    # 2. A binary batch frame pipelined between text statements on the same
    # connection; replies must come back in request order.
    values = [0.5 * i for i in range(32)]
    c.send(b"COUNT eth0\n" + batch_frame("eth0", values) + b"COUNT eth0\n")
    ok, lines = c.read_reply()
    expect(ok and lines == ["3"], "pre-frame COUNT == 3")
    ok, lines = c.read_reply()
    expect(ok and lines and "appended 32" in lines[0],
           f"frame acked with appended 32 (got {lines})")
    ok, lines = c.read_reply()
    expect(ok and lines == ["35"], f"post-frame COUNT == 35 (got {lines})")

    # 3. Corrupt-CRC frame: one typed ERR PROTOCOL, then the server closes
    # (framing is lost, so resync is impossible by design).
    bad = Client(port)
    bad.send(batch_frame("eth0", [1.0, 2.0], corrupt_crc=True))
    reply = bad.read_reply()
    expect(reply is not None and not reply[0] and
           reply[1][0].startswith("ERR PROTOCOL"),
           f"corrupt frame drew ERR PROTOCOL (got {reply})")
    expect(bad.at_eof(), "server closed after the corrupt frame")

    # 4. Oversized text line (over the 64 KiB default): one typed ERR, and
    # the connection stays usable for the next statement.
    c.send(b"COUNT " + b"x" * (80 * 1024) + b"\n")
    reply = c.read_reply()
    expect(reply is not None and not reply[0] and
           reply[1][0].startswith("ERR PROTOCOL"),
           f"oversized line drew ERR PROTOCOL (got {reply})")
    c.send(b"COUNT eth0\n")
    ok, lines = c.read_reply()
    expect(ok and lines == ["35"],
           f"connection survived the oversized line (got {lines})")

    if FAILURES:
        print(f"tcp_smoke_client: {len(FAILURES)} failure(s)")
        return 1
    print("tcp_smoke_client: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
