#!/usr/bin/env bash
# WAL crash-recovery chaos harness (DESIGN.md §12): SIGKILL the server
# mid-ingest, over and over, and prove two things every single cycle:
#
#   1. acked-implies-durable — every append the client saw an OK for is
#      present after recovery (policy "always"), and
#   2. recovery never fails — a torn tail from the kill is repaired, the
#      server reaches "listening on" again, no cycle is ever unrecoverable.
#
# The client keeps acked/sent counters in a state file across cycles and
# asserts acked <= COUNT <= sent after each restart (see
# wal_chaos_client.py for why the right-hand slack is legal).
#
# usage: wal_chaos.sh <path-to-streamhist_tool> [cycles]
set -u

TOOL="${1:?usage: wal_chaos.sh <path-to-streamhist_tool> [cycles]}"
CYCLES="${2:-25}"
CLIENT="$(dirname "$0")/wal_chaos_client.py"
WORK=$(mktemp -d)
trap 'kill -9 "$SERVER" 2>/dev/null; rm -rf "$WORK"' EXIT
WAL_DIR="$WORK/wal"
STATE="$WORK/state.json"
LOG="$WORK/serve.log"
SERVER=""

fail() {
  echo "FAIL: $1"
  [ -f "$LOG" ] && cat "$LOG"
  exit 1
}

# Starts the server on an ephemeral port and waits for the machine-readable
# "LISTENING <port>" announcement. Retries ONCE, and only when the failure
# smells like a transient bind problem — a crash during WAL recovery must
# never be retried away. Sets SERVER and PORT. Honors STALENESS_MS (see the
# cycle loop).
start_server() {
  local attempt
  for attempt in 1 2; do
    STREAMHIST_PUBLISH_STALENESS_MS="${STALENESS_MS:-0}" \
      "$TOOL" serve --listen 0 --threads 2 --wal-dir "$WAL_DIR" \
      --wal-policy always --wal-checkpoint-ms 50 > "$LOG" 2>&1 &
    SERVER=$!
    PORT=""
    for _ in $(seq 1 100); do
      PORT=$(awk '/^LISTENING /{print $2; exit}' "$LOG")
      [ -n "$PORT" ] && return 0
      kill -0 "$SERVER" 2>/dev/null || break
      sleep 0.1
    done
    [ -n "$PORT" ] && return 0
    kill -9 "$SERVER" 2>/dev/null
    wait "$SERVER" 2>/dev/null
    if [ "$attempt" -eq 1 ] && grep -qiE 'bind|address.*in use' "$LOG"; then
      echo "bind failure; retrying once on a fresh ephemeral port"
      continue
    fi
    fail "server did not reach 'listening on' (recovery failure?)"
  done
}

for CYCLE in $(seq 1 "$CYCLES"); do
  # Alternate cycles run under a 50 ms publication-staleness bound
  # (DESIGN.md §13): appends are acked and WAL-logged but their snapshot
  # publication is coalesced, so the SIGKILL reliably lands while acked
  # values are durable-but-not-yet-reader-visible. Recovery must replay
  # them all the same — acked-implies-durable is a WAL property and cannot
  # depend on whether a snapshot happened to be published before the crash.
  STALENESS_MS=$(( (CYCLE % 2) * 50 ))
  start_server
  grep -q '^wal: policy=always' "$LOG" \
    || fail "cycle $CYCLE: no WAL recovery line before listening"

  # Client verifies the recovered state, then appends until we kill it out
  # from under them. Wait for the verification line first — killing before
  # the durability check runs would waste the cycle — then let the kill
  # land at a random point in the burst so every cycle tears the log
  # somewhere new.
  python3 "$CLIENT" "$PORT" "$STATE" 100000 > "$WORK/client.log" 2>&1 &
  CLIENT_PID=$!
  for _ in $(seq 1 100); do
    grep -q 'recovered ok' "$WORK/client.log" && break
    kill -0 "$CLIENT_PID" 2>/dev/null || break
    sleep 0.1
  done
  grep -q 'recovered ok' "$WORK/client.log" || {
    cat "$WORK/client.log"
    fail "cycle $CYCLE: client never completed its recovery check"
  }
  sleep "$(awk -v r="$RANDOM" 'BEGIN { printf "%.2f", 0.05 + (r % 100) / 400 }')"
  kill -9 "$SERVER" 2>/dev/null
  wait "$SERVER" 2>/dev/null
  wait "$CLIENT_PID"
  CLIENT_STATUS=$?
  cat "$WORK/client.log"
  [ "$CLIENT_STATUS" -eq 0 ] || fail "cycle $CYCLE: client invariant violated"
done

# One last recovery with no kill: verify-only client, then a clean SIGTERM
# shutdown whose summary must report the WAL totals.
start_server
python3 "$CLIENT" "$PORT" "$STATE" 0 || fail "final verification failed"
kill -TERM "$SERVER" 2>/dev/null
wait "$SERVER"
SERVER_STATUS=$?
[ "$SERVER_STATUS" -eq 0 ] || fail "clean shutdown exited $SERVER_STATUS"
grep -q '^wal: records=' "$LOG" || fail "no WAL totals in shutdown summary"

echo "wal_chaos: $CYCLES SIGKILL cycles, zero acked-value loss, zero failed recoveries"
exit 0
