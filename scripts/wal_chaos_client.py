#!/usr/bin/env python3
"""Crash-recovery client for the WAL chaos harness (DESIGN.md §12).

Each cycle of scripts/wal_chaos.sh starts `streamhist_tool serve --wal-dir
... --wal-policy always`, runs this client, and SIGKILLs the server mid-burst.
The client keeps a JSON state file across cycles with two counters:

  sent   — appends handed to the kernel (incremented BEFORE sending)
  acked  — appends whose OK reply was read (incremented after the ack)

and on every (re)connect asserts the durability contract against the
recovered server:

  acked <= COUNT(stream) <= sent

The left inequality is acked-implies-durable: a value acked under policy
"always" must survive any later SIGKILL. The right allows ghost records —
a record fsynced (or page-cached and later flushed) whose ack never reached
the client is durable-but-unacked, which the one-way invariant permits.

A connection reset mid-burst is the expected outcome (the harness killed
the server) and exits 0; only an invariant violation or a protocol error
exits 1. usage: wal_chaos_client.py <port> <statefile> <max_appends>
"""

import json
import os
import socket
import sys

STREAM = "chaos0"


def load_state(path):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except FileNotFoundError:
        return {"sent": 0, "acked": 0, "cycles": 0}


def save_state(path, state):
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(state, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class Connection:
    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=30)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.buffer = b""

    def read_line(self):
        while b"\n" not in self.buffer:
            chunk = self.sock.recv(4096)
            if not chunk:
                return None
            self.buffer += chunk
        line, self.buffer = self.buffer.split(b"\n", 1)
        return line.decode()

    def read_reply(self):
        """(ok, lines) for OK replies, (False, [err line]) for ERR, None on EOF."""
        head = self.read_line()
        if head is None:
            return None
        if head.startswith("OK "):
            lines = []
            for _ in range(int(head.split()[1])):
                line = self.read_line()
                if line is None:
                    return None
                lines.append(line)
            return True, lines
        if head.startswith("ERR "):
            return False, [head]
        raise AssertionError(f"unparseable reply head: {head!r}")


def main():
    port = int(sys.argv[1])
    state_path = sys.argv[2]
    max_appends = int(sys.argv[3])
    state = load_state(state_path)
    state["cycles"] += 1

    conn = Connection(port)

    # Ensure the stream exists: OK on the first-ever cycle, a typed
    # ALREADY_EXISTS after any recovery (which is itself evidence the
    # CREATE record survived).
    conn.sock.sendall(f"CREATE {STREAM} 4096 8\n".encode())
    reply = conn.read_reply()
    if reply is None:
        print("wal_chaos_client: server closed during CREATE")
        return 1
    if not reply[0] and "EXISTS" not in reply[1][0].upper():
        print(f"wal_chaos_client: unexpected CREATE error: {reply[1][0]}")
        return 1

    # The durability check against the recovered state.
    conn.sock.sendall(f"COUNT {STREAM}\n".encode())
    reply = conn.read_reply()
    if reply is None or not reply[0]:
        print(f"wal_chaos_client: COUNT failed: {reply}")
        return 1
    count = int(reply[1][0])
    if not state["acked"] <= count <= state["sent"]:
        print(
            f"wal_chaos_client: DURABILITY VIOLATION cycle {state['cycles']}: "
            f"acked={state['acked']} count={count} sent={state['sent']}"
        )
        return 1
    print(
        f"wal_chaos_client: cycle {state['cycles']} recovered ok: "
        f"acked={state['acked']} <= count={count} <= sent={state['sent']}"
    )
    save_state(state_path, state)

    # Append until the harness kills the server (or max_appends, whichever
    # first). `sent` counts before the write reaches the kernel; `acked`
    # only after the OK is read. The state file is rewritten on exit — this
    # process outlives the server, so in-memory counters are safe.
    try:
        for _ in range(max_appends):
            value = state["sent"] + 1
            state["sent"] += 1
            conn.sock.sendall(f"APPEND {STREAM} {value}\n".encode())
            reply = conn.read_reply()
            if reply is None:
                break  # server killed: everything un-acked stays un-acked
            if not reply[0]:
                print(f"wal_chaos_client: append refused: {reply[1][0]}")
                return 1
            state["acked"] += 1
    except (ConnectionResetError, BrokenPipeError, socket.timeout):
        pass  # the SIGKILL arrived mid-send or mid-recv; expected
    finally:
        save_state(state_path, state)

    print(
        f"wal_chaos_client: cycle {state['cycles']} burst done: "
        f"acked={state['acked']} sent={state['sent']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
