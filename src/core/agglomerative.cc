#include "src/core/agglomerative.h"

#include <algorithm>
#include <limits>

#include "src/util/logging.h"
#include "src/util/thread_pool.h"

namespace streamhist {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Result<AgglomerativeHistogram> AgglomerativeHistogram::Create(
    const ApproxHistogramOptions& options) {
  if (options.num_buckets < 1) {
    return Status::InvalidArgument("num_buckets must be >= 1");
  }
  if (!(options.epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon must be > 0");
  }
  return AgglomerativeHistogram(options.num_buckets, options.epsilon);
}

AgglomerativeHistogram::AgglomerativeHistogram(int64_t num_buckets,
                                               double epsilon)
    : num_buckets_(num_buckets),
      epsilon_(epsilon),
      delta_(epsilon / (2.0 * static_cast<double>(num_buckets))) {
  const size_t levels =
      num_buckets_ > 1 ? static_cast<size_t>(num_buckets_ - 1) : 0;
  queues_.resize(levels);
  open_start_herror_.assign(levels, 0.0);
  has_open_.assign(levels, false);
  herr_cur_.assign(static_cast<size_t>(num_buckets_) + 1, 0.0);
  herr_prev_.assign(static_cast<size_t>(num_buckets_) + 1, 0.0);
}

double AgglomerativeHistogram::SpanError(int64_t from_p, long double from_sum,
                                         long double from_sqsum, int64_t to_p,
                                         long double to_sum,
                                         long double to_sqsum) {
  const int64_t w = to_p - from_p;
  STREAMHIST_DCHECK(w >= 0);
  if (w <= 1) return 0.0;
  const long double s = to_sum - from_sum;
  const long double q = to_sqsum - from_sqsum;
  const long double err = q - s * s / static_cast<long double>(w);
  return err > 0.0L ? static_cast<double>(err) : 0.0;
}

void AgglomerativeHistogram::Append(double value) {
  prev_sum_ = total_sum_;
  prev_sqsum_ = total_sqsum_;
  total_sum_ += value;
  total_sqsum_ += static_cast<long double>(value) * value;
  ++count_;
  const int64_t n = count_;

  std::swap(herr_prev_, herr_cur_);

  // HERROR[n][1] = SQERROR(0, n).
  herr_cur_[1] = SpanError(0, 0.0L, 0.0L, n, total_sum_, total_sqsum_);

  // HERROR[n][k] minimized over snapshotted endpoints of queue k-1 plus the
  // implicit candidate p = n-1 (the open interval's right end, whose prefix
  // sums are the pre-append totals and whose HERROR is last step's value).
  for (int64_t k = 2; k <= num_buckets_; ++k) {
    if (n <= k) {
      herr_cur_[static_cast<size_t>(k)] = 0.0;
      continue;
    }
    double best = herr_prev_[static_cast<size_t>(k - 1)] +
                  SpanError(n - 1, prev_sum_, prev_sqsum_, n, total_sum_,
                            total_sqsum_);
    // Scan the queue from the most recent endpoint backwards: the last
    // bucket [e.p, n) only widens, so its SpanError is non-decreasing as we
    // go back, and once it alone reaches the best total no earlier entry can
    // improve — an exact prune that keeps the scan near the balance point.
    const auto& queue = queues_[static_cast<size_t>(k - 2)];
    for (auto it = queue.rbegin(); it != queue.rend(); ++it) {
      const double span =
          SpanError(it->p, it->sum, it->sqsum, n, total_sum_, total_sqsum_);
      if (span >= best) break;
      best = std::min(best, it->herror + span);
    }
    herr_cur_[static_cast<size_t>(k)] = best;
  }

  // Interval maintenance for levels 1..B-1 (figure 3, lines 7-10): when the
  // level's HERROR leaves the (1+delta) band of the open interval's start,
  // close the interval at p = n-1 (snapshotting the pre-append sums and last
  // step's HERROR) and open a new one at n.
  for (int64_t k = 1; k < num_buckets_; ++k) {
    const size_t ki = static_cast<size_t>(k - 1);
    const double h = herr_cur_[static_cast<size_t>(k)];
    if (!has_open_[ki]) {
      has_open_[ki] = true;
      open_start_herror_[ki] = h;
    } else if (h > (1.0 + delta_) * open_start_herror_[ki]) {
      queues_[ki].push_back(Entry{n - 1, prev_sum_, prev_sqsum_,
                                  herr_prev_[static_cast<size_t>(k)]});
      open_start_herror_[ki] = h;
    }
  }
}

double AgglomerativeHistogram::ApproxError() const {
  if (count_ == 0) return 0.0;
  return herr_cur_[static_cast<size_t>(num_buckets_)];
}

int64_t AgglomerativeHistogram::total_stored_entries() const {
  int64_t total = 0;
  for (const auto& q : queues_) total += static_cast<int64_t>(q.size());
  return total;
}

Histogram AgglomerativeHistogram::Extract() const {
  if (count_ == 0) return Histogram();
  const int64_t n = count_;
  if (num_buckets_ == 1) {
    return Histogram::FromBucketsUnchecked(
        {Bucket{0, n, static_cast<double>(total_sum_ /
                                          static_cast<long double>(n))}});
  }

  // Sparse DP over snapshotted endpoints. cands[k] (k in [0, B-1]) are the
  // admissible positions for the boundary after bucket k; cands[0] is the
  // origin. Every level also gets the open endpoint p = n-1 so recent
  // arrivals can end a bucket.
  struct Cand {
    int64_t p;
    long double sum;
    long double sqsum;
    double f;       // best error of covering [0, p) with k buckets
    int32_t back;   // index into cands[k-1]
  };
  std::vector<std::vector<Cand>> cands(static_cast<size_t>(num_buckets_));
  cands[0].push_back(Cand{0, 0.0L, 0.0L, 0.0, -1});
  for (int64_t k = 1; k < num_buckets_; ++k) {
    auto& lvl = cands[static_cast<size_t>(k)];
    // The origin doubles as "bucket k unused".
    lvl.push_back(Cand{0, 0.0L, 0.0L, 0.0, 0});
    for (const Entry& e : queues_[static_cast<size_t>(k - 1)]) {
      lvl.push_back(Cand{e.p, e.sum, e.sqsum, kInf, -1});
    }
    if (n - 1 > 0 && (lvl.back().p < n - 1)) {
      lvl.push_back(Cand{n - 1, prev_sum_, prev_sqsum_, kInf, -1});
    }
  }

  // Levels stay sequential (level k reads level k-1's finished f values);
  // within a level each candidate minimizes over the previous level
  // independently and writes only its own slot, so the merge sweep is
  // data-parallel and bit-identical to the serial order.
  for (int64_t k = 1; k < num_buckets_; ++k) {
    auto& lvl = cands[static_cast<size_t>(k)];
    const auto& prev = cands[static_cast<size_t>(k - 1)];
    // skip the origin sentinel at ci == 0
    ParallelFor(1, static_cast<int64_t>(lvl.size()), /*grain=*/64,
                [&](int64_t ci_begin, int64_t ci_end) {
      for (int64_t ci = ci_begin; ci < ci_end; ++ci) {
        Cand& c = lvl[static_cast<size_t>(ci)];
        for (size_t di = 0; di < prev.size(); ++di) {
          const Cand& d = prev[di];
          // d.p == c.p is allowed: a zero-width (unused) bucket, needed when
          // the optimum uses fewer than B buckets (e.g. tiny prefixes).
          if (d.p > c.p) break;  // candidates are sorted by p
          if (d.f == kInf) continue;
          const double candidate =
              d.f + SpanError(d.p, d.sum, d.sqsum, c.p, c.sum, c.sqsum);
          if (candidate < c.f) {
            c.f = candidate;
            c.back = static_cast<int32_t>(di);
          }
        }
      }
    });
  }

  // Final bucket ends at n with the total sums.
  const auto& last = cands[static_cast<size_t>(num_buckets_ - 1)];
  double best = kInf;
  int32_t best_d = -1;
  for (size_t di = 0; di < last.size(); ++di) {
    const Cand& d = last[di];
    if (d.p >= n || d.f == kInf) continue;
    const double candidate =
        d.f + SpanError(d.p, d.sum, d.sqsum, n, total_sum_, total_sqsum_);
    if (candidate < best) {
      best = candidate;
      best_d = static_cast<int32_t>(di);
    }
  }
  STREAMHIST_CHECK_GE(best_d, 0);

  // Backtrack boundary snapshots from level B-1 down to the origin.
  struct Snapshot {
    int64_t p;
    long double sum;
  };
  std::vector<Snapshot> bounds;
  bounds.push_back(Snapshot{n, total_sum_});
  int32_t di = best_d;
  for (int64_t k = num_buckets_ - 1; k >= 1; --k) {
    const Cand& d = cands[static_cast<size_t>(k)][static_cast<size_t>(di)];
    if (d.p == 0) break;
    bounds.push_back(Snapshot{d.p, d.sum});
    di = d.back;
  }
  bounds.push_back(Snapshot{0, 0.0L});
  std::reverse(bounds.begin(), bounds.end());

  std::vector<Bucket> buckets;
  buckets.reserve(bounds.size() - 1);
  for (size_t t = 0; t + 1 < bounds.size(); ++t) {
    const int64_t begin = bounds[t].p;
    const int64_t end = bounds[t + 1].p;
    if (begin == end) continue;
    const double mean = static_cast<double>(
        (bounds[t + 1].sum - bounds[t].sum) / static_cast<long double>(end - begin));
    buckets.push_back(Bucket{begin, end, mean});
  }
  return Histogram::FromBucketsUnchecked(std::move(buckets));
}

}  // namespace streamhist
