#include "src/core/agglomerative.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "src/util/framing.h"
#include "src/util/logging.h"
#include "src/util/thread_pool.h"

namespace streamhist {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Result<AgglomerativeHistogram> AgglomerativeHistogram::Create(
    const ApproxHistogramOptions& options) {
  if (options.num_buckets < 1) {
    return Status::InvalidArgument("num_buckets must be >= 1");
  }
  if (!(options.epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon must be > 0");
  }
  return AgglomerativeHistogram(options.num_buckets, options.epsilon);
}

AgglomerativeHistogram::AgglomerativeHistogram(int64_t num_buckets,
                                               double epsilon)
    : num_buckets_(num_buckets),
      epsilon_(epsilon),
      delta_(epsilon / (2.0 * static_cast<double>(num_buckets))) {
  const size_t levels =
      num_buckets_ > 1 ? static_cast<size_t>(num_buckets_ - 1) : 0;
  queues_.resize(levels);
  scan_.resize(levels);
  open_start_herror_.assign(levels, 0.0);
  has_open_.assign(levels, false);
  herr_cur_.assign(static_cast<size_t>(num_buckets_) + 1, 0.0);
  herr_prev_.assign(static_cast<size_t>(num_buckets_) + 1, 0.0);
}

double AgglomerativeHistogram::SpanError(int64_t from_p, long double from_sum,
                                         long double from_sqsum, int64_t to_p,
                                         long double to_sum,
                                         long double to_sqsum) {
  const int64_t w = to_p - from_p;
  STREAMHIST_DCHECK(w >= 0);
  if (w <= 1) return 0.0;
  const long double s = to_sum - from_sum;
  const long double q = to_sqsum - from_sqsum;
  const long double err = q - s * s / static_cast<long double>(w);
  return err > 0.0L ? static_cast<double>(err) : 0.0;
}

void AgglomerativeHistogram::Append(double value) {
  prev_sum_ = total_sum_;
  prev_sqsum_ = total_sqsum_;
  total_sum_ += value;
  total_sqsum_ += static_cast<long double>(value) * value;
  ++count_;
  const int64_t n = count_;

  std::swap(herr_prev_, herr_cur_);

  // HERROR[n][1] = SQERROR(0, n).
  herr_cur_[1] = SpanError(0, 0.0L, 0.0L, n, total_sum_, total_sqsum_);

  // HERROR[n][k] minimized over snapshotted endpoints of queue k-1 plus the
  // implicit candidate p = n-1 (the open interval's right end, whose prefix
  // sums are the pre-append totals and whose HERROR is last step's value).
  for (int64_t k = 2; k <= num_buckets_; ++k) {
    if (n <= k) {
      herr_cur_[static_cast<size_t>(k)] = 0.0;
      continue;
    }
    double best = herr_prev_[static_cast<size_t>(k - 1)] +
                  SpanError(n - 1, prev_sum_, prev_sqsum_, n, total_sum_,
                            total_sqsum_);
    // Scan the queue from the most recent endpoint backwards: the last
    // bucket [e.p, n) only widens, so its SpanError is non-decreasing as we
    // go back, and once it alone reaches the best total no earlier entry can
    // improve — a prune that keeps the scan near the balance point. This is
    // the ingest hot loop (thousands of endpoints per append at large n), so
    // it runs over the dense double ScanCache in fixed-size blocks: spans
    // for a whole block are computed branch-free, then reduced. Evaluating
    // a few candidates past the sequential break point cannot change the
    // minimum (their span alone already reaches best), so blocking only
    // trades a handful of extra evaluations for a vectorizable body.
    const ScanCache& cache = scan_[static_cast<size_t>(k - 2)];
    const double dn = static_cast<double>(n);
    const double dsum = static_cast<double>(total_sum_);
    const double dsq = static_cast<double>(total_sqsum_);
    constexpr size_t kBlock = 64;
    double spans[kBlock];
    size_t endi = cache.p.size();
    while (endi > 0) {
      const size_t begini = endi >= kBlock ? endi - kBlock : 0;
      const size_t m = endi - begini;
      for (size_t i = 0; i < m; ++i) {
        const double w = dn - cache.p[begini + i];
        const double sdiff = dsum - cache.sum[begini + i];
        const double qdiff = dsq - cache.sqsum[begini + i];
        const double span = qdiff - sdiff * sdiff / w;
        spans[i] = span > 0.0 ? span : 0.0;
      }
      for (size_t i = 0; i < m; ++i) {
        const double cand = cache.herror[begini + i] + spans[i];
        if (cand < best) best = cand;
      }
      // spans[0] is the widest bucket in the block; anything older is wider
      // still, so its span alone already reaches best: stop.
      if (spans[0] >= best) break;
      endi = begini;
    }
    herr_cur_[static_cast<size_t>(k)] = best;
  }

  // Interval maintenance for levels 1..B-1 (figure 3, lines 7-10): when the
  // level's HERROR leaves the (1+delta) band of the open interval's start,
  // close the interval at p = n-1 (snapshotting the pre-append sums and last
  // step's HERROR) and open a new one at n.
  for (int64_t k = 1; k < num_buckets_; ++k) {
    const size_t ki = static_cast<size_t>(k - 1);
    const double h = herr_cur_[static_cast<size_t>(k)];
    if (!has_open_[ki]) {
      has_open_[ki] = true;
      open_start_herror_[ki] = h;
    } else if (h > (1.0 + delta_) * open_start_herror_[ki]) {
      queues_[ki].push_back(Entry{n - 1, prev_sum_, prev_sqsum_,
                                  herr_prev_[static_cast<size_t>(k)]});
      scan_[ki].Push(queues_[ki].back());
      open_start_herror_[ki] = h;
    }
  }
}

double AgglomerativeHistogram::ApproxError() const {
  if (count_ == 0) return 0.0;
  return herr_cur_[static_cast<size_t>(num_buckets_)];
}

int64_t AgglomerativeHistogram::total_stored_entries() const {
  int64_t total = 0;
  for (const auto& q : queues_) total += static_cast<int64_t>(q.size());
  return total;
}

int64_t AgglomerativeHistogram::MemoryBytes() const {
  size_t bytes = herr_cur_.capacity() * sizeof(double) +
                 herr_prev_.capacity() * sizeof(double) +
                 open_start_herror_.capacity() * sizeof(double) +
                 queues_.capacity() * sizeof(std::vector<Entry>);
  for (const auto& q : queues_) bytes += q.capacity() * sizeof(Entry);
  for (const auto& c : scan_) {
    bytes += (c.p.capacity() + c.sum.capacity() + c.sqsum.capacity() +
              c.herror.capacity()) *
             sizeof(double);
  }
  return static_cast<int64_t>(bytes);
}

Histogram AgglomerativeHistogram::Extract() const {
  // Null context: ExtractImpl cannot cancel, the Result always holds a value.
  return ExtractImpl(nullptr).value();
}

Result<Histogram> AgglomerativeHistogram::ExtractCancellable(
    const ExecContext& ctx) const {
  return ExtractImpl(&ctx);
}

Result<Histogram> AgglomerativeHistogram::ExtractImpl(
    const ExecContext* ctx) const {
  const auto stop_requested = [ctx] {
    return ctx != nullptr && ctx->ShouldStop();
  };
  if (count_ == 0) return Histogram();
  const int64_t n = count_;
  if (num_buckets_ == 1) {
    return Histogram::FromBucketsUnchecked(
        {Bucket{0, n, static_cast<double>(total_sum_ /
                                          static_cast<long double>(n))}});
  }

  // Sparse DP over snapshotted endpoints. cands[k] (k in [0, B-1]) are the
  // admissible positions for the boundary after bucket k; cands[0] is the
  // origin. Every level also gets the open endpoint p = n-1 so recent
  // arrivals can end a bucket.
  struct Cand {
    int64_t p;
    long double sum;
    long double sqsum;
    double f;       // best error of covering [0, p) with k buckets
    int32_t back;   // index into cands[k-1]
  };
  std::vector<std::vector<Cand>> cands(static_cast<size_t>(num_buckets_));
  cands[0].push_back(Cand{0, 0.0L, 0.0L, 0.0, -1});
  for (int64_t k = 1; k < num_buckets_; ++k) {
    auto& lvl = cands[static_cast<size_t>(k)];
    // The origin doubles as "bucket k unused".
    lvl.push_back(Cand{0, 0.0L, 0.0L, 0.0, 0});
    for (const Entry& e : queues_[static_cast<size_t>(k - 1)]) {
      lvl.push_back(Cand{e.p, e.sum, e.sqsum, kInf, -1});
    }
    if (n - 1 > 0 && (lvl.back().p < n - 1)) {
      lvl.push_back(Cand{n - 1, prev_sum_, prev_sqsum_, kInf, -1});
    }
  }

  // Levels stay sequential (level k reads level k-1's finished f values);
  // within a level each candidate minimizes over the previous level
  // independently and writes only its own slot, so the merge sweep is
  // data-parallel and bit-identical to the serial order.
  for (int64_t k = 1; k < num_buckets_; ++k) {
    auto& lvl = cands[static_cast<size_t>(k)];
    const auto& prev = cands[static_cast<size_t>(k - 1)];
    // skip the origin sentinel at ci == 0
    ParallelFor(1, static_cast<int64_t>(lvl.size()), /*grain=*/64,
                [&](int64_t ci_begin, int64_t ci_end) {
      if (stop_requested()) return;
      for (int64_t ci = ci_begin; ci < ci_end; ++ci) {
        Cand& c = lvl[static_cast<size_t>(ci)];
        for (size_t di = 0; di < prev.size(); ++di) {
          const Cand& d = prev[di];
          // d.p == c.p is allowed: a zero-width (unused) bucket, needed when
          // the optimum uses fewer than B buckets (e.g. tiny prefixes).
          if (d.p > c.p) break;  // candidates are sorted by p
          if (d.f == kInf) continue;
          const double candidate =
              d.f + SpanError(d.p, d.sum, d.sqsum, c.p, c.sum, c.sqsum);
          if (candidate < c.f) {
            c.f = candidate;
            c.back = static_cast<int32_t>(di);
          }
        }
      }
    });
    if (stop_requested()) {
      return Status::Cancelled("agglomerative extraction cancelled at level " +
                               std::to_string(k));
    }
  }

  // Final bucket ends at n with the total sums.
  const auto& last = cands[static_cast<size_t>(num_buckets_ - 1)];
  double best = kInf;
  int32_t best_d = -1;
  for (size_t di = 0; di < last.size(); ++di) {
    const Cand& d = last[di];
    if (d.p >= n || d.f == kInf) continue;
    const double candidate =
        d.f + SpanError(d.p, d.sum, d.sqsum, n, total_sum_, total_sqsum_);
    if (candidate < best) {
      best = candidate;
      best_d = static_cast<int32_t>(di);
    }
  }
  STREAMHIST_CHECK_GE(best_d, 0);

  // Backtrack boundary snapshots from level B-1 down to the origin.
  struct Snapshot {
    int64_t p;
    long double sum;
  };
  std::vector<Snapshot> bounds;
  bounds.push_back(Snapshot{n, total_sum_});
  int32_t di = best_d;
  for (int64_t k = num_buckets_ - 1; k >= 1; --k) {
    const Cand& d = cands[static_cast<size_t>(k)][static_cast<size_t>(di)];
    if (d.p == 0) break;
    bounds.push_back(Snapshot{d.p, d.sum});
    di = d.back;
  }
  bounds.push_back(Snapshot{0, 0.0L});
  std::reverse(bounds.begin(), bounds.end());

  std::vector<Bucket> buckets;
  buckets.reserve(bounds.size() - 1);
  for (size_t t = 0; t + 1 < bounds.size(); ++t) {
    const int64_t begin = bounds[t].p;
    const int64_t end = bounds[t + 1].p;
    if (begin == end) continue;
    const double mean = static_cast<double>(
        (bounds[t + 1].sum - bounds[t].sum) / static_cast<long double>(end - begin));
    buckets.push_back(Bucket{begin, end, mean});
  }
  return Histogram::FromBucketsUnchecked(std::move(buckets));
}

namespace {
constexpr uint32_t kAgglomerativeMagic = 0x53484147;  // "SHAG"
constexpr uint32_t kAgglomerativeVersion = 1;
// Entry payload: p i64 + sum/sqsum long-double pairs + herror f64.
constexpr size_t kBytesPerEntry = 8 + 16 + 16 + 8;

bool FiniteLd(long double v) { return std::isfinite(static_cast<double>(v)); }
}  // namespace

std::string AgglomerativeHistogram::Serialize() const {
  ByteWriter payload;
  payload.PutI64(num_buckets_);
  payload.PutF64(epsilon_);
  payload.PutI64(count_);
  payload.PutLongDouble(total_sum_);
  payload.PutLongDouble(total_sqsum_);
  payload.PutLongDouble(prev_sum_);
  payload.PutLongDouble(prev_sqsum_);
  for (double h : herr_cur_) payload.PutF64(h);
  for (double h : herr_prev_) payload.PutF64(h);
  for (size_t ki = 0; ki < queues_.size(); ++ki) {
    payload.PutF64(open_start_herror_[ki]);
    payload.PutBool(has_open_[ki]);
    payload.PutU64(queues_[ki].size());
    for (const Entry& e : queues_[ki]) {
      payload.PutI64(e.p);
      payload.PutLongDouble(e.sum);
      payload.PutLongDouble(e.sqsum);
      payload.PutF64(e.herror);
    }
  }
  return WrapFrame(kAgglomerativeMagic, kAgglomerativeVersion,
                   payload.bytes());
}

Result<AgglomerativeHistogram> AgglomerativeHistogram::Deserialize(
    std::string_view bytes) {
  STREAMHIST_ASSIGN_OR_RETURN(
      FrameView frame,
      UnwrapFrame(bytes, kAgglomerativeMagic, "agglomerative histogram"));
  if (frame.version != kAgglomerativeVersion) {
    return Status::InvalidArgument("unsupported agglomerative version");
  }
  ByteReader reader(frame.payload);
  ApproxHistogramOptions options;
  int64_t count = 0;
  long double total_sum = 0.0L, total_sqsum = 0.0L, prev_sum = 0.0L,
              prev_sqsum = 0.0L;
  if (!reader.ReadI64(&options.num_buckets) ||
      !reader.ReadF64(&options.epsilon) || !reader.ReadI64(&count) ||
      !reader.ReadLongDouble(&total_sum) ||
      !reader.ReadLongDouble(&total_sqsum) ||
      !reader.ReadLongDouble(&prev_sum) ||
      !reader.ReadLongDouble(&prev_sqsum)) {
    return Status::InvalidArgument("truncated agglomerative header");
  }
  if (!std::isfinite(options.epsilon)) {
    return Status::InvalidArgument("agglomerative epsilon is not finite");
  }
  // Beyond any plausible bucket budget; also bounds the herr vector reads.
  if (options.num_buckets > (int64_t{1} << 20)) {
    return Status::InvalidArgument("agglomerative bucket budget too large");
  }
  STREAMHIST_ASSIGN_OR_RETURN(AgglomerativeHistogram hist, Create(options));
  if (count < 0 || !FiniteLd(total_sum) || !FiniteLd(total_sqsum) ||
      !FiniteLd(prev_sum) || !FiniteLd(prev_sqsum)) {
    return Status::InvalidArgument("agglomerative totals violate invariants");
  }
  hist.count_ = count;
  hist.total_sum_ = total_sum;
  hist.total_sqsum_ = total_sqsum;
  hist.prev_sum_ = prev_sum;
  hist.prev_sqsum_ = prev_sqsum;
  for (std::vector<double>* herr : {&hist.herr_cur_, &hist.herr_prev_}) {
    for (double& h : *herr) {
      if (!reader.ReadF64(&h) || !std::isfinite(h)) {
        return Status::InvalidArgument("malformed agglomerative error table");
      }
    }
  }
  for (size_t ki = 0; ki < hist.queues_.size(); ++ki) {
    uint64_t entries = 0;
    bool has_open = false;
    if (!reader.ReadF64(&hist.open_start_herror_[ki]) ||
        !reader.ReadBool(&has_open) || !reader.ReadU64(&entries)) {
      return Status::InvalidArgument("truncated agglomerative level");
    }
    hist.has_open_[ki] = has_open;
    if (entries > reader.remaining() / kBytesPerEntry) {
      return Status::InvalidArgument(
          "agglomerative entry count exceeds payload");
    }
    auto& queue = hist.queues_[ki];
    queue.reserve(entries);
    int64_t last_p = 0;
    for (uint64_t j = 0; j < entries; ++j) {
      Entry e{};
      if (!reader.ReadI64(&e.p) || !reader.ReadLongDouble(&e.sum) ||
          !reader.ReadLongDouble(&e.sqsum) || !reader.ReadF64(&e.herror)) {
        return Status::InvalidArgument("truncated agglomerative entries");
      }
      if (e.p <= last_p || e.p >= count || !FiniteLd(e.sum) ||
          !FiniteLd(e.sqsum) || !std::isfinite(e.herror)) {
        return Status::InvalidArgument(
            "agglomerative entries violate invariants");
      }
      last_p = e.p;
      queue.push_back(e);
      hist.scan_[ki].Push(e);
    }
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after agglomerative state");
  }
  return hist;
}

}  // namespace streamhist
