#ifndef STREAMHIST_CORE_AGGLOMERATIVE_H_
#define STREAMHIST_CORE_AGGLOMERATIVE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/histogram.h"
#include "src/util/deadline.h"
#include "src/util/result.h"

namespace streamhist {

/// Options shared by the (1+eps)-approximate streaming builders.
struct ApproxHistogramOptions {
  /// Target number of buckets B (>= 1).
  int64_t num_buckets = 8;
  /// Overall approximation slack: extracted histograms have SSE within a
  /// (1+epsilon) factor of the optimal B-bucket histogram. Must be > 0.
  /// Internally the per-level slack is delta = epsilon / (2B), per the paper.
  double epsilon = 0.1;
};

/// One-pass (1+eps)-approximate V-optimal histogram over an *agglomerative*
/// stream (all points since time 0) — algorithm AgglomerativeHistogram of
/// the paper (section 4.3, figure 3; originally [GKS01]).
///
/// For each level k < B the algorithm covers the seen prefix lengths with
/// intervals (a, b] such that HERROR[b, k] <= (1+delta) HERROR[a, k]; the
/// dynamic-programming minimization for each new point is restricted to the
/// interval *endpoints*, of which there are only O((1/delta) log n). Prefix
/// sums are snapshotted only when an interval closes, so total space is
/// O((B^2/eps) log n) and total time O((n B^2/eps) log n).
///
/// Append() maintains the structure; Extract() runs a sparse DP over the
/// snapshotted endpoints and returns a histogram whose SSE is within
/// (1+eps) of optimal. ApproxError() returns the streamed HERROR[N, B]
/// estimate without extracting.
class AgglomerativeHistogram {
 public:
  /// Validates options; epsilon must be > 0 and num_buckets >= 1.
  static Result<AgglomerativeHistogram> Create(
      const ApproxHistogramOptions& options);

  /// Appends one stream point (amortized O((B^2/eps) log n)).
  void Append(double value);

  /// Convenience for batched arrivals (paper footnote 2).
  void AppendBatch(std::span<const double> values) {
    for (double v : values) Append(v);
  }

  /// Number of points seen (N).
  int64_t size() const { return count_; }

  /// Streamed approximation of HERROR[N, B] (0 when N <= B).
  double ApproxError() const;

  /// Extracts a histogram over [0, N) with at most B buckets by a sparse DP
  /// over the snapshotted interval endpoints.
  Histogram Extract() const;

  /// Cancellable variant: consults `ctx` (util/deadline.h) at grain
  /// boundaries of the sparse-DP merge sweep and between levels; a stop
  /// request abandons the extraction with Status::Cancelled. With a context
  /// that never fires the result is bit-identical to Extract().
  Result<Histogram> ExtractCancellable(const ExecContext& ctx) const;

  /// Total snapshotted endpoints across all queues (space diagnostic).
  int64_t total_stored_entries() const;

  /// Approximate heap footprint in bytes (for the memory governor).
  int64_t MemoryBytes() const;

  /// The per-level slack delta = epsilon / (2B).
  double delta() const { return delta_; }

  /// Serializes the complete streaming state — interval-endpoint snapshots,
  /// open-interval thresholds, running totals — as a framed, CRC-protected
  /// blob. A round-trip restores a bit-identical builder: Extract() and all
  /// future Append()s behave exactly as on the original.
  std::string Serialize() const;

  /// Inverse of Serialize; validates structure and invariants and never
  /// aborts on hostile bytes.
  static Result<AgglomerativeHistogram> Deserialize(std::string_view bytes);

  int64_t num_buckets() const { return num_buckets_; }
  double epsilon() const { return epsilon_; }

 private:
  AgglomerativeHistogram(int64_t num_buckets, double epsilon);

  /// A snapshotted closed-interval endpoint: prefix length p with its prefix
  /// sums and the (approximate) HERROR[p, k] at close time.
  struct Entry {
    int64_t p;
    long double sum;
    long double sqsum;
    double herror;
  };

  // SSE of the bucket spanning prefix snapshots (from -> to].
  static double SpanError(int64_t from_p, long double from_sum,
                          long double from_sqsum, int64_t to_p,
                          long double to_sum, long double to_sqsum);

  // Shared sparse-DP extraction; ctx may be null (never cancels).
  Result<Histogram> ExtractImpl(const ExecContext* ctx) const;

  int64_t num_buckets_;
  double epsilon_;
  double delta_;

  // queues_[k-1] holds level-k snapshots, k in [1, B-1], in increasing p.
  std::vector<std::vector<Entry>> queues_;
  // Derived, never serialized: the entry fields of each queue rounded to
  // double and laid out struct-of-arrays. The per-append DP scan touches
  // thousands of endpoints; reading four dense double arrays instead of
  // 48-byte Entry records (with x87 long-double loads) keeps that scan a
  // tight, vectorizable loop. Rebuilt from queues_ on Deserialize.
  struct ScanCache {
    std::vector<double> p, sum, sqsum, herror;
    void Push(const Entry& e) {
      p.push_back(static_cast<double>(e.p));
      sum.push_back(static_cast<double>(e.sum));
      sqsum.push_back(static_cast<double>(e.sqsum));
      herror.push_back(e.herror);
    }
  };
  std::vector<ScanCache> scan_;
  // Per level k in [1, B-1]: HERROR at the start of the currently open
  // interval (the trigger threshold).
  std::vector<double> open_start_herror_;
  std::vector<bool> has_open_;

  // HERROR[N][k] and HERROR[N-1][k] for k in [1, B] (index 0 unused).
  std::vector<double> herr_cur_;
  std::vector<double> herr_prev_;

  int64_t count_ = 0;
  long double total_sum_ = 0.0L;
  long double total_sqsum_ = 0.0L;
  long double prev_sum_ = 0.0L;   // totals before the latest point
  long double prev_sqsum_ = 0.0L;
};

}  // namespace streamhist

#endif  // STREAMHIST_CORE_AGGLOMERATIVE_H_
