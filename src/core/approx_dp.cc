#include "src/core/approx_dp.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "src/core/error_bounds.h"
#include "src/core/vopt_kernel.h"
#include "src/stream/prefix_sums.h"
#include "src/util/logging.h"
#include "src/util/thread_pool.h"

namespace streamhist {

namespace {

using vopt_internal::kDpGrain;

// Right-endpoints of the maximal (1+delta)-growth intervals covering the
// non-decreasing `prev` over [lo, hi]: starting at a = lo, each interval
// extends to the furthest c with prev[c] <= (1+delta) * prev[a] (binary
// search — this is where monotonicity pays), then the next interval starts
// at c+1. Ascending, all within [lo, hi], and always containing hi (the last
// interval ends there). For values spanning [m, M] the cover has
// O(delta^-1 * log(M/m)) intervals, the paper's O(delta^-1 log n) under
// polynomially bounded input.
std::vector<int32_t> GeometricCover(const double* prev, int64_t lo, int64_t hi,
                                    double delta) {
  std::vector<int32_t> endpoints;
  const double growth = 1.0 + delta;
  int64_t a = lo;
  while (a <= hi) {
    const double limit = growth * prev[a];
    int64_t left = a;
    int64_t right = hi;
    while (left < right) {  // max c in [a, hi] with prev[c] <= limit
      const int64_t mid = left + (right - left + 1) / 2;
      if (prev[mid] <= limit) {
        left = mid;
      } else {
        right = mid - 1;
      }
    }
    endpoints.push_back(static_cast<int32_t>(left));
    a = left + 1;
  }
  return endpoints;
}

using vopt_internal::StopRequested;

template <typename CostT>
Result<ApproxHistogramResult> BuildApproxImpl(const CostT& cost,
                                              int64_t num_buckets,
                                              double delta,
                                              const ExecContext* ctx = nullptr) {
  STREAMHIST_CHECK_GT(num_buckets, 0);
  STREAMHIST_CHECK(std::isfinite(delta) && delta >= 0.0);
  const int64_t n = cost.size();
  if (n == 0) return ApproxHistogramResult{};
  const int64_t b_max = std::min(num_buckets, n);

  // Same layer/backtrack layout as the exact kernel (vopt_kernel.h).
  std::vector<double> herror_prev(static_cast<size_t>(n) + 1);
  std::vector<double> herror(static_cast<size_t>(n) + 1);
  std::vector<std::vector<int32_t>> back(
      static_cast<size_t>(b_max) + 1,
      std::vector<int32_t>(static_cast<size_t>(n) + 1, 0));

  vopt_internal::FillFirstLayer(cost, n, herror_prev.data(), back[1].data(),
                                ctx);
  if (StopRequested(ctx)) {
    return Status::Cancelled("approx DP cancelled in layer 1");
  }
  int64_t cost_evals = n;
  int64_t max_cover = 0;
  // HERROR[., 1] is mathematically non-decreasing (cost of a widening prefix
  // bucket); the clamp only irons out float rounding so the binary-searched
  // cover below stays sound.
  for (int64_t j = 1; j <= n; ++j) {
    herror_prev[j] = std::max(herror_prev[j], herror_prev[j - 1]);
  }

  for (int64_t k = 2; k <= b_max; ++k) {
    const std::vector<int32_t> cover =
        GeometricCover(herror_prev.data(), k - 1, n - 1, delta);
    max_cover = std::max(max_cover, static_cast<int64_t>(cover.size()));

    herror[0] = 0.0;
    const double* prev = herror_prev.data();
    double* cur = herror.data();
    int32_t* back_k = back[static_cast<size_t>(k)].data();
    const int32_t* ep = cover.data();
    const int64_t ep_n = static_cast<int64_t>(cover.size());
    ParallelFor(1, n + 1, kDpGrain, [&](int64_t j_begin, int64_t j_end) {
      if (StopRequested(ctx)) return;
      for (int64_t j = j_begin; j < j_end; ++j) {
        if (j <= k) {  // exact: j singleton buckets
          cur[j] = 0.0;
          back_k[j] = static_cast<int32_t>(j - 1);
          continue;
        }
        // Candidate i = j-1 first: a width-1 last bucket costs 0 by the
        // BucketCost contract, no evaluation needed. It also completes the
        // cover argument — an i whose interval reaches past j-2 is
        // dominated by j-1 (prev[j-1] <= (1+delta) * prev[i] within one
        // interval of the monotone curve).
        double best = prev[j - 1];
        int64_t best_i = j - 1;
        // Interval endpoints <= j-2, scanned descending: ties keep the
        // largest i (and j-1 beats an equal-valued endpoint), the
        // deterministic analogue of the exact kernel's descending scan.
        int64_t t =
            std::upper_bound(ep, ep + ep_n, static_cast<int32_t>(j - 2)) - ep;
        for (--t; t >= 0; --t) {
          const int64_t i = ep[t];
          const double candidate = prev[i] + cost.Cost(i, j);
          if (candidate < best) {
            best = candidate;
            best_i = i;
          }
        }
        cur[j] = best;
        back_k[j] = static_cast<int32_t>(best_i);
      }
    });
    if (StopRequested(ctx)) {
      return Status::Cancelled("approx DP cancelled in layer " +
                               std::to_string(k));
    }

    // Deterministic account of the pruned work (Cost calls this layer).
    {
      int64_t t = 0;
      for (int64_t j = k + 1; j <= n; ++j) {
        while (t < ep_n && ep[t] <= j - 2) ++t;
        cost_evals += t;
      }
    }

    // Monotone clamp. The raw approximate layer is only quasi-monotone
    // (adjacent values can dip within the (1+delta) slack), which would
    // break the next layer's binary-searched cover. Raising each value to
    // the running max (a) restores exact monotonicity, (b) keeps
    // AHERROR >= HERROR — values only go up — and (c) preserves
    // AHERROR[j, k] <= (1+delta)^(k-1) * HERROR[j, k]: the clamp replaces a
    // value with AHERROR[j', k] for some j' < j, and the exact curve is
    // itself non-decreasing, so the inductive bound transfers from j'.
    for (int64_t j = 1; j <= n; ++j) {
      cur[j] = std::max(cur[j], cur[j - 1]);
    }
    std::swap(herror, herror_prev);
  }

  const double dp_error = herror_prev[static_cast<size_t>(n)];
  const std::vector<int64_t> boundaries =
      vopt_internal::BacktrackBoundaries(back, n, b_max);

  // Realized SSE of the backtracked histogram. It never exceeds dp_error:
  // backpointers were recorded pre-clamp, and the clamp only raises DP
  // values above the true cost of the partition they describe.
  long double realized = 0.0L;
  for (size_t t = 0; t + 1 < boundaries.size(); ++t) {
    realized += cost.Cost(boundaries[t], boundaries[t + 1]);
  }

  ApproxHistogramResult result;
  result.histogram = Histogram::FromBucketsUnchecked(
      vopt_internal::BucketsFromBoundaries(cost, boundaries));
  result.sse = static_cast<double>(realized);
  result.dp_error = dp_error;
  result.bound_factor = ApproxDpBoundFactor(b_max, delta);
  result.cost_evals = cost_evals;
  result.max_cover_size = max_cover;
  return result;
}

}  // namespace

ApproxHistogramResult BuildApproxHistogram(const BucketCost& cost,
                                           int64_t num_buckets, double delta) {
  // Null context: the impl cannot cancel, so the Result always holds a value.
  if (const auto* sse = dynamic_cast<const SseBucketCost*>(&cost)) {
    return BuildApproxImpl(vopt_internal::SseFlatCost(sse->sums()),
                           num_buckets, delta)
        .value();
  }
  return BuildApproxImpl(cost, num_buckets, delta).value();
}

ApproxHistogramResult BuildApproxVOptimalHistogram(std::span<const double> data,
                                                   int64_t num_buckets,
                                                   double delta) {
  const PrefixSums sums(data);
  return BuildApproxImpl(vopt_internal::SseFlatCost(sums), num_buckets, delta)
      .value();
}

Result<ApproxHistogramResult> BuildApproxVOptimalHistogramCancellable(
    std::span<const double> data, int64_t num_buckets, double delta,
    const ExecContext& ctx) {
  const PrefixSums sums(data);
  return BuildApproxImpl(vopt_internal::SseFlatCost(sums), num_buckets, delta,
                         &ctx);
}

}  // namespace streamhist
