#ifndef STREAMHIST_CORE_APPROX_DP_H_
#define STREAMHIST_CORE_APPROX_DP_H_

#include <cstdint>
#include <span>

#include "src/core/bucket_cost.h"
#include "src/core/histogram.h"
#include "src/util/deadline.h"
#include "src/util/result.h"

namespace streamhist {

/// Result of the (1+delta)-approximate histogram DP.
struct ApproxHistogramResult {
  Histogram histogram;

  /// Realized SSE (total bucket cost) of `histogram` — recomputed from the
  /// cost function over the backtracked boundaries, not the DP value.
  double sse = 0.0;

  /// The DP's internal objective AHERROR[n, B]; sse <= dp_error always.
  double dp_error = 0.0;

  /// The certified factor: sse <= bound_factor * OPT, where OPT is the exact
  /// optimum with the same bucket budget. Equals (1+delta)^(B'-1) with B' the
  /// effective number of layers min(num_buckets, n)
  /// (error_bounds.h, ApproxDpBoundFactor).
  double bound_factor = 1.0;

  /// Inner-loop cost evaluations performed (deterministic; diagnostic for
  /// the O(n * delta^-1 * log n) vs O(n^2) per-layer claim).
  int64_t cost_evals = 0;

  /// Largest per-layer interval-cover size encountered (diagnostic).
  int64_t max_cover_size = 0;
};

/// The paper's approximate offline DP (section 3): per layer k, the exact
/// recurrence
///
///   HERROR[j, k] = min_{i} HERROR[i, k-1] + SQERROR(i, j)
///
/// is relaxed by covering the non-decreasing HERROR[., k-1] curve with
/// geometric intervals — maximal runs over which the value grows by at most
/// a (1+delta) factor, found by binary search — and evaluating candidates
/// only at interval right-endpoints (plus i = j-1). Each layer loses at most
/// (1+delta), compounding to the certified (1+delta)^(B-1) bound reported in
/// the result. Runtime per layer is O(n * (cover size + log n)) with cover
/// size O(delta^-1 log(n * value-range)) instead of the exact DP's O(n^2).
///
/// delta == 0 degenerates the cover to one endpoint per distinct value run;
/// the result then matches the exact DP value (and its boundaries, up to
/// cost ties). Requires num_buckets > 0 and finite delta >= 0, plus the
/// interval-domination property Cost(i', j) <= Cost(i, j) for i' >= i —
/// i.e. shrinking a bucket never raises its cost, true of every point-wise
/// additive (or max-based) cost in bucket_cost.h (the paper's footnote 3
/// class).
///
/// Deterministic and thread-count-invariant like the exact DP: the j-sweep
/// of each layer is data-parallel with fixed chunking, the interval cover is
/// built serially from the finished previous layer, and `cost.Cost` must
/// tolerate concurrent const calls (all BucketCost implementations do).
ApproxHistogramResult BuildApproxHistogram(const BucketCost& cost,
                                           int64_t num_buckets, double delta);

/// Convenience wrapper: approximate SSE (V-optimal) histogram of `data`,
/// routed through the devirtualized prefix-sum inner loop.
ApproxHistogramResult BuildApproxVOptimalHistogram(std::span<const double> data,
                                                   int64_t num_buckets,
                                                   double delta);

/// Cancellable variant: consults `ctx` (util/deadline.h) at grain boundaries
/// and between layers; an expired deadline or explicit Cancel() abandons the
/// build with Status::Cancelled. With a context that never fires, the result
/// is bit-identical to BuildApproxVOptimalHistogram for every thread count —
/// the degradation ladder's approx rungs run through here.
Result<ApproxHistogramResult> BuildApproxVOptimalHistogramCancellable(
    std::span<const double> data, int64_t num_buckets, double delta,
    const ExecContext& ctx);

}  // namespace streamhist

#endif  // STREAMHIST_CORE_APPROX_DP_H_
