#include "src/core/bucket_cost.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "src/util/logging.h"

namespace streamhist {

SseBucketCost::SseBucketCost(std::span<const double> data) : sums_(data) {}

double SseBucketCost::Cost(int64_t i, int64_t j) const {
  return sums_.SqError(i, j);
}

double SseBucketCost::Representative(int64_t i, int64_t j) const {
  return sums_.Mean(i, j);
}

SaeBucketCost::SaeBucketCost(std::span<const double> data)
    : data_(data.begin(), data.end()) {}

double SaeBucketCost::Cost(int64_t i, int64_t j) const {
  STREAMHIST_DCHECK(0 <= i && i <= j && j <= size());
  if (j - i <= 1) return 0.0;
  // The absolute-deviation sum is the same for every value between the lower
  // and upper median, so the upper median alone suffices here (even though
  // Representative() reports the pair midpoint for even widths): one
  // nth_element selects it in O(w) expected time and a single pass over the
  // scratch copy accumulates the sum. thread_local scratch because the DP
  // sweeps call Cost concurrently from ParallelFor workers.
  thread_local std::vector<double> scratch;
  scratch.assign(data_.begin() + static_cast<ptrdiff_t>(i),
                 data_.begin() + static_cast<ptrdiff_t>(j));
  const size_t mid = scratch.size() / 2;
  std::nth_element(scratch.begin(), scratch.begin() + static_cast<ptrdiff_t>(mid),
                   scratch.end());
  const double median = scratch[mid];
  long double total = 0.0L;
  for (const double v : scratch) total += std::fabs(v - median);
  return static_cast<double>(total);
}

double SaeBucketCost::Representative(int64_t i, int64_t j) const {
  STREAMHIST_DCHECK(i < j);
  std::vector<double> copy(data_.begin() + static_cast<ptrdiff_t>(i),
                           data_.begin() + static_cast<ptrdiff_t>(j));
  const size_t mid = copy.size() / 2;
  std::nth_element(copy.begin(), copy.begin() + static_cast<ptrdiff_t>(mid),
                   copy.end());
  double median = copy[mid];
  if (copy.size() % 2 == 0) {
    // Lower median's pair: the max of the first half.
    const double lower =
        *std::max_element(copy.begin(), copy.begin() + static_cast<ptrdiff_t>(mid));
    median = (median + lower) / 2.0;
  }
  return median;
}

MaxAbsBucketCost::MaxAbsBucketCost(std::span<const double> data)
    : n_(static_cast<int64_t>(data.size())) {
  const int levels =
      n_ > 0 ? std::bit_width(static_cast<uint64_t>(n_)) : 1;
  min_table_.resize(static_cast<size_t>(levels));
  max_table_.resize(static_cast<size_t>(levels));
  min_table_[0].assign(data.begin(), data.end());
  max_table_[0].assign(data.begin(), data.end());
  for (int l = 1; l < levels; ++l) {
    const int64_t half = int64_t{1} << (l - 1);
    const int64_t count = n_ - (int64_t{1} << l) + 1;
    if (count <= 0) break;
    min_table_[static_cast<size_t>(l)].resize(static_cast<size_t>(count));
    max_table_[static_cast<size_t>(l)].resize(static_cast<size_t>(count));
    for (int64_t i = 0; i < count; ++i) {
      min_table_[static_cast<size_t>(l)][static_cast<size_t>(i)] =
          std::min(min_table_[static_cast<size_t>(l - 1)][static_cast<size_t>(i)],
                   min_table_[static_cast<size_t>(l - 1)]
                             [static_cast<size_t>(i + half)]);
      max_table_[static_cast<size_t>(l)][static_cast<size_t>(i)] =
          std::max(max_table_[static_cast<size_t>(l - 1)][static_cast<size_t>(i)],
                   max_table_[static_cast<size_t>(l - 1)]
                             [static_cast<size_t>(i + half)]);
    }
  }
}

double MaxAbsBucketCost::RangeMin(int64_t i, int64_t j) const {
  const int l = std::bit_width(static_cast<uint64_t>(j - i)) - 1;
  const int64_t span = int64_t{1} << l;
  return std::min(min_table_[static_cast<size_t>(l)][static_cast<size_t>(i)],
                  min_table_[static_cast<size_t>(l)]
                            [static_cast<size_t>(j - span)]);
}

double MaxAbsBucketCost::RangeMax(int64_t i, int64_t j) const {
  const int l = std::bit_width(static_cast<uint64_t>(j - i)) - 1;
  const int64_t span = int64_t{1} << l;
  return std::max(max_table_[static_cast<size_t>(l)][static_cast<size_t>(i)],
                  max_table_[static_cast<size_t>(l)]
                            [static_cast<size_t>(j - span)]);
}

double MaxAbsBucketCost::Cost(int64_t i, int64_t j) const {
  STREAMHIST_DCHECK(0 <= i && i <= j && j <= n_);
  if (j - i <= 1) return 0.0;
  return (RangeMax(i, j) - RangeMin(i, j)) / 2.0;
}

double MaxAbsBucketCost::Representative(int64_t i, int64_t j) const {
  STREAMHIST_DCHECK(i < j);
  return (RangeMax(i, j) + RangeMin(i, j)) / 2.0;
}

}  // namespace streamhist
