#ifndef STREAMHIST_CORE_BUCKET_COST_H_
#define STREAMHIST_CORE_BUCKET_COST_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/stream/prefix_sums.h"

namespace streamhist {

/// Cost of representing one bucket of a sequence by a single value, plus the
/// optimal representative. The paper's results hold for any point-wise
/// additive error function (footnote 3); the DP in vopt_dp.h is generic over
/// this interface, while the streaming algorithms specialize to SSE.
class BucketCost {
 public:
  virtual ~BucketCost() = default;

  /// Cost of the bucket covering indices [i, j) under the optimal
  /// representative. Must be 0 for buckets of width <= 1.
  virtual double Cost(int64_t i, int64_t j) const = 0;

  /// The representative value minimizing the bucket cost.
  virtual double Representative(int64_t i, int64_t j) const = 0;

  /// Number of indexable values.
  virtual int64_t size() const = 0;
};

/// Sum of squared deviations from the bucket mean — the paper's SQERROR
/// (equation 2). O(1) per query after O(n) prefix-sum setup.
class SseBucketCost : public BucketCost {
 public:
  explicit SseBucketCost(std::span<const double> data);

  double Cost(int64_t i, int64_t j) const override;
  double Representative(int64_t i, int64_t j) const override;
  int64_t size() const override { return sums_.size(); }

  /// The underlying prefix sums — lets the DPs (vopt_dp.cc, approx_dp.cc)
  /// route this cost to their devirtualized SseFlatCost inner loop.
  const PrefixSums& sums() const { return sums_; }

 private:
  PrefixSums sums_;
};

/// Sum of absolute deviations from the bucket median. O(j-i) expected per
/// query (std::nth_element selection into a thread-local scratch copy plus
/// one accumulation pass); intended for the exact DP at modest n, not for
/// streaming. Safe for concurrent const calls from the parallel DP sweeps.
class SaeBucketCost : public BucketCost {
 public:
  explicit SaeBucketCost(std::span<const double> data);

  double Cost(int64_t i, int64_t j) const override;
  double Representative(int64_t i, int64_t j) const override;
  int64_t size() const override { return static_cast<int64_t>(data_.size()); }

 private:
  std::vector<double> data_;
};

/// Maximum absolute deviation from the bucket midrange ((min+max)/2).
/// O(1) per query via sparse-table range-min/max over O(n log n) setup.
class MaxAbsBucketCost : public BucketCost {
 public:
  explicit MaxAbsBucketCost(std::span<const double> data);

  double Cost(int64_t i, int64_t j) const override;
  double Representative(int64_t i, int64_t j) const override;
  int64_t size() const override { return n_; }

 private:
  double RangeMin(int64_t i, int64_t j) const;
  double RangeMax(int64_t i, int64_t j) const;

  int64_t n_;
  // min_table_[l][i] = min of data[i .. i+2^l); likewise max_table_.
  std::vector<std::vector<double>> min_table_;
  std::vector<std::vector<double>> max_table_;
};

}  // namespace streamhist

#endif  // STREAMHIST_CORE_BUCKET_COST_H_
