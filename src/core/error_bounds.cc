#include "src/core/error_bounds.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace streamhist {

std::vector<double> PerBucketSse(const Histogram& histogram,
                                 std::span<const double> data) {
  STREAMHIST_CHECK_EQ(static_cast<int64_t>(data.size()),
                      histogram.domain_size());
  std::vector<double> sse;
  sse.reserve(static_cast<size_t>(histogram.num_buckets()));
  for (const Bucket& b : histogram.buckets()) {
    long double total = 0.0L;
    for (int64_t i = b.begin; i < b.end; ++i) {
      const long double d = data[static_cast<size_t>(i)] - b.value;
      total += d * d;
    }
    sse.push_back(static_cast<double>(total));
  }
  return sse;
}

BoundedValue RangeSumWithBound(const Histogram& histogram,
                               std::span<const double> bucket_sse, int64_t lo,
                               int64_t hi) {
  STREAMHIST_CHECK_EQ(static_cast<int64_t>(bucket_sse.size()),
                      histogram.num_buckets());
  STREAMHIST_CHECK(0 <= lo && lo <= hi && hi <= histogram.domain_size());
  BoundedValue result;
  result.estimate = histogram.RangeSum(lo, hi);

  const auto& buckets = histogram.buckets();
  for (size_t k = 0; k < buckets.size(); ++k) {
    const Bucket& b = buckets[k];
    const int64_t overlap_lo = std::max(lo, b.begin);
    const int64_t overlap_hi = std::min(hi, b.end);
    const int64_t overlap = overlap_hi - overlap_lo;
    if (overlap <= 0) continue;
    if (overlap == b.width()) continue;  // full bucket: mean error cancels
    // Cauchy-Schwarz over the partial overlap: |sum (v - mean)| <=
    // sqrt(overlap) * sqrt(sum (v - mean)^2) <= sqrt(overlap * SSE_b).
    result.error_bound +=
        std::sqrt(static_cast<double>(overlap) * bucket_sse[k]);
  }
  return result;
}

BoundedValue RangeAverageWithBound(const Histogram& histogram,
                                   std::span<const double> bucket_sse,
                                   int64_t lo, int64_t hi) {
  STREAMHIST_CHECK_LT(lo, hi);
  BoundedValue sum = RangeSumWithBound(histogram, bucket_sse, lo, hi);
  const double width = static_cast<double>(hi - lo);
  return BoundedValue{sum.estimate / width, sum.error_bound / width};
}

BoundedValue PointEstimateWithBound(const Histogram& histogram,
                                    std::span<const double> bucket_sse,
                                    int64_t i) {
  STREAMHIST_CHECK_EQ(static_cast<int64_t>(bucket_sse.size()),
                      histogram.num_buckets());
  STREAMHIST_CHECK(0 <= i && i < histogram.domain_size());
  const auto& buckets = histogram.buckets();
  for (size_t k = 0; k < buckets.size(); ++k) {
    if (i < buckets[k].end) {
      return BoundedValue{buckets[k].value, std::sqrt(bucket_sse[k])};
    }
  }
  return BoundedValue{};  // unreachable: buckets cover the domain
}

double ApproxDpBoundFactor(int64_t num_buckets, double delta) {
  STREAMHIST_CHECK_GE(num_buckets, 1);
  STREAMHIST_CHECK(delta >= 0.0);
  return std::pow(1.0 + delta, static_cast<double>(num_buckets - 1));
}

}  // namespace streamhist
