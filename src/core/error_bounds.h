#ifndef STREAMHIST_CORE_ERROR_BOUNDS_H_
#define STREAMHIST_CORE_ERROR_BOUNDS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/histogram.h"

namespace streamhist {

/// An estimate with a certified deterministic error bar:
/// |estimate - truth| <= error_bound.
struct BoundedValue {
  double estimate = 0.0;
  double error_bound = 0.0;
};

/// Per-bucket SSEs of `histogram` against the underlying `data` — the inputs
/// to certified range-sum bounds. The V-optimal objective E_X(H_B) is
/// exactly the sum of these.
std::vector<double> PerBucketSse(const Histogram& histogram,
                                 std::span<const double> data);

/// Certified approximate range sum over [lo, hi): because every bucket value
/// is the exact bucket mean, buckets *fully inside* the query contribute
/// zero error; each partially-overlapped boundary bucket b contributes at
/// most sqrt(overlap_width * SSE_b) by Cauchy-Schwarz. The returned bound is
/// therefore the sum of at most two such terms — typically far tighter than
/// anything derived from the total SSE.
///
/// `bucket_sse[k]` must be the SSE of bucket k (PerBucketSse, or the
/// streaming builders' exact window statistics). Requires the histogram's
/// values to be exact bucket means (true for every builder in this library
/// under the SSE metric).
BoundedValue RangeSumWithBound(const Histogram& histogram,
                               std::span<const double> bucket_sse, int64_t lo,
                               int64_t hi);

/// Certified range average: RangeSumWithBound scaled by the range width.
/// Requires lo < hi.
BoundedValue RangeAverageWithBound(const Histogram& histogram,
                                   std::span<const double> bucket_sse,
                                   int64_t lo, int64_t hi);

/// Certified point estimate: |v_i - bucket_mean| <= sqrt(SSE_bucket).
BoundedValue PointEstimateWithBound(const Histogram& histogram,
                                    std::span<const double> bucket_sse,
                                    int64_t i);

/// Compounded slack of the interval-pruned approximate DP (approx_dp.h):
/// each of the B-1 composed layers loses at most a (1+delta) factor against
/// the exact recurrence (layer 1 is exact), so the realized SSE is certified
/// to satisfy sse <= ApproxDpBoundFactor(B, delta) * OPT = (1+delta)^(B-1)
/// * OPT. Requires num_buckets >= 1 and delta >= 0; may overflow to +inf for
/// extreme (B, delta), which is still a valid (vacuous) bound.
double ApproxDpBoundFactor(int64_t num_buckets, double delta);

}  // namespace streamhist

#endif  // STREAMHIST_CORE_ERROR_BOUNDS_H_
