#include "src/core/fixed_window.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/framing.h"
#include "src/util/logging.h"

namespace streamhist {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Result<FixedWindowHistogram> FixedWindowHistogram::Create(
    const FixedWindowOptions& options) {
  if (options.window_size < 1) {
    return Status::InvalidArgument("window_size must be >= 1");
  }
  if (options.num_buckets < 1) {
    return Status::InvalidArgument("num_buckets must be >= 1");
  }
  if (!(options.epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon must be > 0");
  }
  return FixedWindowHistogram(options);
}

FixedWindowHistogram::FixedWindowHistogram(const FixedWindowOptions& options)
    : options_(options),
      delta_(options.epsilon / (2.0 * static_cast<double>(options.num_buckets))),
      window_(options.window_size) {
  const size_t levels = options_.num_buckets > 1
                            ? static_cast<size_t>(options_.num_buckets - 1)
                            : 0;
  queues_.resize(levels);
  const size_t memo_slots =
      static_cast<size_t>(options_.num_buckets + 1) *
      static_cast<size_t>(options_.window_size + 1);
  memo_.resize(memo_slots);
  memo_epoch_.assign(memo_slots, 0);
}

void FixedWindowHistogram::Append(double value) {
  window_.Append(value);
  dirty_ = true;
  cached_histogram_.reset();
  if (options_.rebuild_on_append) Rebuild();
}

double FixedWindowHistogram::BucketCostOf(int64_t i, int64_t j) const {
  if (options_.metric == WindowErrorMetric::kSse) {
    return window_.SqError(i, j);
  }
  return maxabs_cost_->Cost(i, j);
}

double FixedWindowHistogram::RepresentativeOf(int64_t i, int64_t j) const {
  if (options_.metric == WindowErrorMetric::kSse) {
    return window_.Mean(i, j);
  }
  return maxabs_cost_->Representative(i, j);
}

void FixedWindowHistogram::AppendBatch(std::span<const double> values) {
  if (values.empty()) return;
  for (double v : values) window_.Append(v);
  dirty_ = true;
  cached_histogram_.reset();
  if (options_.rebuild_on_append) Rebuild();
}

void FixedWindowHistogram::EvictOldest() {
  window_.EvictOldest();
  dirty_ = true;
  cached_histogram_.reset();
  if (options_.rebuild_on_append) Rebuild();
}

FixedWindowHistogram::Eval FixedWindowHistogram::EvalHerror(int64_t p,
                                                            int64_t k) {
  STREAMHIST_DCHECK(k >= 1);
  STREAMHIST_DCHECK(0 <= p && p <= window_.size());
  const size_t key = static_cast<size_t>(k * (options_.window_size + 1) + p);
  if (memo_epoch_[key] == epoch_) return memo_[key];
  ++last_herror_evals_;

  Eval result;
  if (p <= k) {
    // Enough buckets for singletons: exact, last bucket is [p-1, p).
    result = Eval{0.0, p > 0 ? p - 1 : 0};
  } else if (k == 1) {
    result = Eval{BucketCostOf(0, p), 0};
  } else {
    // Start from the candidate p-1, which covers splits inside the endpoint
    // interval containing p-1 (its HERROR is within (1+delta) of any such
    // split's, by the interval invariant).
    const Eval inner = EvalHerror(p - 1, k - 1);
    double best = inner.herror + BucketCostOf(p - 1, p);
    int64_t best_boundary = p - 1;
    // Then minimize over the level-(k-1) interval endpoints below p,
    // scanning from the most recent endpoint backwards: the last bucket
    // [e.p, p) only widens going back, so its SQERROR is non-decreasing, and
    // once it alone reaches the best total no earlier entry can improve —
    // an exact prune that keeps the scan near the balance point.
    const auto& queue = queues_[static_cast<size_t>(k - 2)];
    auto first_ge = std::lower_bound(
        queue.begin(), queue.end(), p,
        [](const QueueEntry& e, int64_t value) { return e.p < value; });
    for (auto it = std::make_reverse_iterator(first_ge); it != queue.rend();
         ++it) {
      const double span = BucketCostOf(it->p, p);
      if (span >= best) break;
      const double candidate = it->herror + span;
      if (candidate < best) {
        best = candidate;
        best_boundary = it->p;
      }
    }
    result = Eval{best, best_boundary};
  }
  memo_[key] = result;
  memo_epoch_[key] = epoch_;
  return result;
}

void FixedWindowHistogram::CreateList(int64_t a, int64_t b, int64_t k) {
  auto& queue = queues_[static_cast<size_t>(k - 1)];
  while (a <= b) {
    if (a == b) {
      queue.push_back(QueueEntry{a, EvalHerror(a, k).herror});
      return;
    }
    const double t = EvalHerror(a, k).herror;
    const double threshold = (1.0 + delta_) * t;
    // Largest c in [a, b] with HERROR[c, k] <= threshold (HERROR is
    // non-decreasing in the prefix length, so this is a binary search; c >= a
    // always since HERROR[a, k] == t <= threshold).
    int64_t lo = a;
    int64_t hi = b;
    while (lo < hi) {
      const int64_t mid = lo + (hi - lo + 1) / 2;
      if (EvalHerror(mid, k).herror <= threshold) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    queue.push_back(QueueEntry{lo, EvalHerror(lo, k).herror});
    a = lo + 1;
  }
}

void FixedWindowHistogram::Rebuild() {
  if (++epoch_ == 0) {  // wrapped: every stale stamp must be invalidated
    std::fill(memo_epoch_.begin(), memo_epoch_.end(), 0u);
    epoch_ = 1;
  }
  for (auto& q : queues_) q.clear();
  last_herror_evals_ = 0;
  dirty_ = false;

  const int64_t m = window_.size();
  if (m == 0) {
    final_herror_ = 0.0;
    final_boundary_ = 0;
    return;
  }
  if (options_.metric == WindowErrorMetric::kMaxAbs) {
    // O(n log n) sparse min/max tables over the current window, giving O(1)
    // bucket costs during the rebuild.
    maxabs_cost_.emplace(window_.ToVector());
  }
  for (int64_t k = 1; k < options_.num_buckets; ++k) {
    CreateList(1, m, k);
  }
  const Eval final = EvalHerror(m, options_.num_buckets);
  final_herror_ = final.herror;
  final_boundary_ = final.boundary;
}

double FixedWindowHistogram::ApproxError() {
  if (dirty_) Rebuild();
  return final_herror_;
}

Histogram FixedWindowHistogram::ExtractFromState() {
  const int64_t m = window_.size();
  if (m == 0) return Histogram();

  std::vector<int64_t> boundaries;
  boundaries.push_back(m);
  int64_t boundary = final_boundary_;
  int64_t k = options_.num_buckets;
  while (true) {
    boundaries.push_back(boundary);
    if (boundary == 0) break;
    --k;
    STREAMHIST_CHECK_GE(k, 1);
    boundary = EvalHerror(boundary, k).boundary;
  }
  std::reverse(boundaries.begin(), boundaries.end());
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                   boundaries.end());

  std::vector<Bucket> buckets;
  buckets.reserve(boundaries.size() - 1);
  for (size_t t = 0; t + 1 < boundaries.size(); ++t) {
    const int64_t begin = boundaries[t];
    const int64_t end = boundaries[t + 1];
    buckets.push_back(Bucket{begin, end, RepresentativeOf(begin, end)});
  }
  return Histogram::FromBucketsUnchecked(std::move(buckets));
}

const Histogram& FixedWindowHistogram::Extract() {
  if (dirty_) Rebuild();
  if (!cached_histogram_.has_value()) {
    cached_histogram_ = ExtractFromState();
  }
  return *cached_histogram_;
}

double FixedWindowHistogram::RangeSum(int64_t lo, int64_t hi) {
  return Extract().RangeSum(lo, hi);
}

std::vector<double> FixedWindowHistogram::BucketErrors() {
  STREAMHIST_CHECK(options_.metric == WindowErrorMetric::kSse)
      << "certified bounds need mean representatives";
  const Histogram& h = Extract();
  std::vector<double> errors;
  errors.reserve(static_cast<size_t>(h.num_buckets()));
  for (const Bucket& b : h.buckets()) {
    errors.push_back(window_.SqError(b.begin, b.end));
  }
  return errors;
}

int64_t FixedWindowHistogram::last_total_intervals() const {
  int64_t total = 0;
  for (const auto& q : queues_) total += static_cast<int64_t>(q.size());
  return total;
}

int64_t FixedWindowHistogram::MemoryBytes() const {
  size_t bytes = window_.MemoryBytes();
  bytes += memo_.capacity() * sizeof(Eval);
  bytes += memo_epoch_.capacity() * sizeof(uint32_t);
  bytes += queues_.capacity() * sizeof(std::vector<QueueEntry>);
  for (const auto& q : queues_) bytes += q.capacity() * sizeof(QueueEntry);
  if (cached_histogram_.has_value()) {
    bytes += static_cast<size_t>(cached_histogram_->num_buckets()) *
             sizeof(Bucket);
  }
  return static_cast<int64_t>(bytes);
}

namespace {
constexpr uint32_t kFixedWindowMagic = 0x53484657;  // "SHFW"
constexpr uint32_t kFixedWindowVersion = 1;
}  // namespace

std::string FixedWindowHistogram::Serialize() const {
  ByteWriter payload;
  payload.PutI64(options_.window_size);
  payload.PutI64(options_.num_buckets);
  payload.PutF64(options_.epsilon);
  payload.PutBool(options_.rebuild_on_append);
  payload.PutU32(static_cast<uint32_t>(options_.metric));
  payload.PutLengthPrefixed(window_.Serialize());
  return WrapFrame(kFixedWindowMagic, kFixedWindowVersion, payload.bytes());
}

Result<FixedWindowHistogram> FixedWindowHistogram::Deserialize(
    std::string_view bytes) {
  STREAMHIST_ASSIGN_OR_RETURN(
      FrameView frame,
      UnwrapFrame(bytes, kFixedWindowMagic, "fixed-window histogram"));
  if (frame.version != kFixedWindowVersion) {
    return Status::InvalidArgument("unsupported fixed-window version");
  }
  ByteReader reader(frame.payload);
  FixedWindowOptions options;
  uint32_t metric = 0;
  std::string_view window_bytes;
  if (!reader.ReadI64(&options.window_size) ||
      !reader.ReadI64(&options.num_buckets) ||
      !reader.ReadF64(&options.epsilon) ||
      !reader.ReadBool(&options.rebuild_on_append) ||
      !reader.ReadU32(&metric) ||
      !reader.ReadLengthPrefixed(&window_bytes) || !reader.AtEnd()) {
    return Status::InvalidArgument("malformed fixed-window payload");
  }
  if (metric > static_cast<uint32_t>(WindowErrorMetric::kMaxAbs)) {
    return Status::InvalidArgument("unknown fixed-window error metric");
  }
  options.metric = static_cast<WindowErrorMetric>(metric);
  if (!std::isfinite(options.epsilon)) {
    return Status::InvalidArgument("fixed-window epsilon is not finite");
  }
  STREAMHIST_ASSIGN_OR_RETURN(FixedWindowHistogram fw, Create(options));
  STREAMHIST_ASSIGN_OR_RETURN(SlidingWindow window,
                              SlidingWindow::Deserialize(window_bytes));
  if (window.capacity() != options.window_size) {
    return Status::InvalidArgument(
        "window capacity disagrees with fixed-window options");
  }
  fw.window_ = std::move(window);
  fw.dirty_ = true;  // interval lists rebuild lazily from the window
  return fw;
}

FixedWindowHistogram FixedWindowHistogram::FromContents(
    const FixedWindowOptions& options, std::span<const double> contents) {
  FixedWindowOptions lazy_options = options;
  lazy_options.rebuild_on_append = false;  // one rebuild, on first demand
  FixedWindowHistogram fw(lazy_options);
  fw.AppendBatch(contents);
  return fw;
}

}  // namespace streamhist
