#ifndef STREAMHIST_CORE_FIXED_WINDOW_H_
#define STREAMHIST_CORE_FIXED_WINDOW_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/bucket_cost.h"
#include "src/core/histogram.h"
#include "src/stream/sliding_window.h"
#include "src/util/result.h"

namespace streamhist {

/// Bucket-cost family for the fixed-window algorithm. The paper's analysis
/// (footnote 3) holds for any point-wise additive error whose bucket cost is
/// monotone under widening; both families below qualify. The agglomerative
/// algorithm supports only kSse, whose bucket costs are computable from the
/// prefix-sum snapshots it retains; the fixed window buffers its points, so
/// any O(1)-evaluable cost works.
enum class WindowErrorMetric {
  /// Sum of squared deviations from the bucket mean (the paper's SQERROR,
  /// V-optimal histograms). O(1) bucket costs from sliding prefix sums.
  kSse,
  /// Maximum absolute deviation from the bucket midrange, summed over
  /// buckets (L-infinity flavored). O(1) bucket costs from sparse min/max
  /// tables rebuilt per rebuild.
  kMaxAbs,
};

/// Options for FixedWindowHistogram.
struct FixedWindowOptions {
  /// Sliding-window length n (>= 1): histograms cover the latest n points.
  int64_t window_size = 1024;
  /// Target number of buckets B (>= 1).
  int64_t num_buckets = 8;
  /// Approximation slack: total error within (1+epsilon) of the optimal
  /// B-bucket histogram of the window. Must be > 0. delta = epsilon / (2B).
  double epsilon = 0.1;
  /// When true (the paper's accounting), the interval structure is rebuilt
  /// on every Append; when false it is rebuilt lazily on the next query.
  bool rebuild_on_append = true;
  /// Bucket-cost family (see WindowErrorMetric).
  WindowErrorMetric metric = WindowErrorMetric::kSse;
};

/// The paper's primary contribution (section 4.5, figure 5): incremental
/// maintenance of a (1+eps)-approximate V-optimal histogram over a sliding
/// window of the stream.
///
/// Unlike the agglomerative algorithm — whose interval lists are anchored at
/// the stream start and are invalidated by the eviction of old points
/// (section 4.4, the "shifted function" problem) — this algorithm rebuilds
/// the per-level interval lists *on demand* after each arrival with the
/// recursive binary-search procedure CreateList, evaluating HERROR at only
/// O((1/delta) log^2 n) positions per level instead of all n. Per-arrival
/// cost is O((B^3/eps^2) log^3 n); space is O(n) for the window plus
/// O((B^2/eps) log n) for the interval lists.
class FixedWindowHistogram {
 public:
  /// Validates options (window_size >= 1, num_buckets >= 1, epsilon > 0).
  static Result<FixedWindowHistogram> Create(const FixedWindowOptions& options);

  /// Appends a point, evicting the oldest when the window is full. Rebuilds
  /// the interval structure unless options.rebuild_on_append is false.
  void Append(double value);

  /// Batched arrivals (paper footnote 2): appends every point but rebuilds
  /// the interval structure at most once, after the batch.
  void AppendBatch(std::span<const double> values);

  /// Evicts the oldest window point without appending — the primitive that
  /// lets time-based windows (core/time_window.h) shrink below capacity.
  /// Requires a non-empty window.
  void EvictOldest();

  /// The underlying sliding window (exact values, for ground-truth queries).
  const SlidingWindow& window() const { return window_; }

  /// Approximate HERROR[m, B] of the current window (rebuilds if stale).
  double ApproxError();

  /// Extracts the (1+eps)-approximate B-bucket histogram of the current
  /// window. Cached until the next Append.
  const Histogram& Extract();

  /// Estimated sum of the window values over [lo, hi) using the extracted
  /// histogram (window-relative indices).
  double RangeSum(int64_t lo, int64_t hi);

  /// Exact per-bucket SSEs of the extracted histogram against the current
  /// window, O(B) from the sliding prefix sums — feed these to
  /// RangeSumWithBound (core/error_bounds.h) for certified query error
  /// bars. Requires the SSE metric (mean representatives).
  std::vector<double> BucketErrors();

  /// True when the interval structure is current AND the extracted histogram
  /// is materialized — i.e. ApproxError()/Extract() are pure lookups right
  /// now. The publish path uses this to adopt an already-built histogram
  /// into an eager snapshot section instead of freezing the window contents
  /// for lazy materialization.
  bool HasCurrentHistogram() const {
    return !dirty_ && cached_histogram_.has_value();
  }

  /// Serializes options plus the complete sliding-window state as a framed,
  /// CRC-protected blob. The interval lists and memo table are *not*
  /// serialized: they are a deterministic function of the window contents
  /// and are rebuilt lazily on the first query after Deserialize, so a
  /// round-trip reproduces identical query answers at a fraction of the
  /// checkpoint size.
  std::string Serialize() const;

  /// Inverse of Serialize; validates structure and never aborts on hostile
  /// bytes.
  static Result<FixedWindowHistogram> Deserialize(std::string_view bytes);

  /// A window histogram whose contents are exactly `contents` (oldest
  /// first, at most options.window_size points) — the materializer behind
  /// lazily-built snapshot sections, which freeze the live window's
  /// contents at publish time and rebuild from them on first demand. The
  /// interval lists and memo are a deterministic function of the contents
  /// (the Serialize contract), so the extracted histogram matches what the
  /// live window would have produced. `options` must already be valid (they
  /// come from a live instance).
  static FixedWindowHistogram FromContents(const FixedWindowOptions& options,
                                           std::span<const double> contents);

  /// --- diagnostics for tests and benchmarks ---
  /// Number of HERROR evaluations during the most recent rebuild.
  int64_t last_herror_evals() const { return last_herror_evals_; }
  /// Total interval-list entries across all levels after the last rebuild.
  int64_t last_total_intervals() const;
  double delta() const { return delta_; }
  const FixedWindowOptions& options() const { return options_; }

  /// Approximate heap footprint in bytes — the window buffers plus the
  /// interval lists and memo table (for the memory governor).
  int64_t MemoryBytes() const;

 private:
  explicit FixedWindowHistogram(const FixedWindowOptions& options);

  struct Eval {
    double herror;
    int64_t boundary;  // start of the last bucket in the minimizing split
  };
  struct QueueEntry {
    int64_t p;  // prefix length (interval endpoint b_l)
    double herror;
  };

  /// Bucket cost of window positions [i, j) under the configured metric.
  double BucketCostOf(int64_t i, int64_t j) const;
  /// Optimal representative of [i, j) under the configured metric.
  double RepresentativeOf(int64_t i, int64_t j) const;

  /// Memoized HERROR[p, k] over the current window, minimized over the
  /// level-(k-1) interval endpoints plus the recursive candidate (p-1, k-1)
  /// that covers positions inside the endpoint's own interval.
  Eval EvalHerror(int64_t p, int64_t k);

  /// Builds the level-k interval list over prefix lengths [a, b] (paper's
  /// CreateList, iterative form).
  void CreateList(int64_t a, int64_t b, int64_t k);

  /// Rebuilds all interval lists and the final minimization for the current
  /// window contents.
  void Rebuild();

  /// Backtracks bucket boundaries through the memo table.
  Histogram ExtractFromState();

  FixedWindowOptions options_;
  double delta_;
  SlidingWindow window_;
  // Sparse min/max tables over the current window contents; only populated
  // (during Rebuild) when metric == kMaxAbs.
  std::optional<MaxAbsBucketCost> maxabs_cost_;

  // queues_[k-1]: level-k interval endpoints, increasing p, k in [1, B-1].
  std::vector<std::vector<QueueEntry>> queues_;
  // Flat memo table over (k, p), invalidated wholesale by bumping the epoch
  // instead of clearing ((B+1) * (n+1) slots).
  std::vector<Eval> memo_;
  std::vector<uint32_t> memo_epoch_;
  uint32_t epoch_ = 0;
  double final_herror_ = 0.0;
  int64_t final_boundary_ = 0;
  bool dirty_ = true;
  std::optional<Histogram> cached_histogram_;
  int64_t last_herror_evals_ = 0;
};

}  // namespace streamhist

#endif  // STREAMHIST_CORE_FIXED_WINDOW_H_
