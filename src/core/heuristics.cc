#include "src/core/heuristics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "src/stream/prefix_sums.h"
#include "src/util/logging.h"

namespace streamhist {

Histogram BuildEquiWidthHistogram(std::span<const double> data,
                                  int64_t num_buckets) {
  const int64_t n = static_cast<int64_t>(data.size());
  STREAMHIST_CHECK_GT(num_buckets, 0);
  if (n == 0) return Histogram();
  const int64_t b = std::min(num_buckets, n);
  std::vector<int64_t> boundaries;
  boundaries.reserve(static_cast<size_t>(b) + 1);
  for (int64_t k = 0; k <= b; ++k) {
    boundaries.push_back(k * n / b);
  }
  return HistogramFromBoundaries(data, boundaries);
}

Histogram BuildMaxDiffHistogram(std::span<const double> data,
                                int64_t num_buckets) {
  const int64_t n = static_cast<int64_t>(data.size());
  STREAMHIST_CHECK_GT(num_buckets, 0);
  if (n == 0) return Histogram();
  const int64_t b = std::min(num_buckets, n);

  // Rank interior positions by the adjacent difference ending there.
  std::vector<std::pair<double, int64_t>> diffs;
  diffs.reserve(static_cast<size_t>(n - 1));
  for (int64_t i = 0; i + 1 < n; ++i) {
    diffs.emplace_back(std::fabs(data[static_cast<size_t>(i + 1)] -
                                 data[static_cast<size_t>(i)]),
                       i + 1);
  }
  std::sort(diffs.begin(), diffs.end(), [](const auto& x, const auto& y) {
    return x.first > y.first || (x.first == y.first && x.second < y.second);
  });

  std::vector<int64_t> boundaries{0, n};
  for (int64_t k = 0; k < b - 1 && k < static_cast<int64_t>(diffs.size());
       ++k) {
    boundaries.push_back(diffs[static_cast<size_t>(k)].second);
  }
  std::sort(boundaries.begin(), boundaries.end());
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                   boundaries.end());
  return HistogramFromBoundaries(data, boundaries);
}

Histogram BuildGreedyMergeHistogram(std::span<const double> data,
                                    int64_t num_buckets) {
  const int64_t n = static_cast<int64_t>(data.size());
  STREAMHIST_CHECK_GT(num_buckets, 0);
  if (n == 0) return Histogram();
  const int64_t b = std::min(num_buckets, n);

  PrefixSums sums(data);
  // Doubly-linked segment list over boundaries; start from singletons.
  struct Segment {
    int64_t begin;
    int64_t end;
    int64_t prev;
    int64_t next;
    bool alive;
  };
  std::vector<Segment> segs(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    segs[static_cast<size_t>(i)] =
        Segment{i, i + 1, i - 1, i + 1 < n ? i + 1 : -1, true};
  }

  auto merge_penalty = [&](int64_t a, int64_t bidx) {
    const Segment& s1 = segs[static_cast<size_t>(a)];
    const Segment& s2 = segs[static_cast<size_t>(bidx)];
    return sums.SqError(s1.begin, s2.end) - sums.SqError(s1.begin, s1.end) -
           sums.SqError(s2.begin, s2.end);
  };

  // Priority queue of (penalty, left segment id, stamp); stale entries are
  // skipped via a per-segment version stamp.
  struct Entry {
    double penalty;
    int64_t left;
    int64_t stamp;
  };
  auto cmp = [](const Entry& x, const Entry& y) {
    return x.penalty > y.penalty;
  };
  std::vector<Entry> heap;
  std::vector<int64_t> stamp(static_cast<size_t>(n), 0);
  auto push = [&](int64_t left) {
    const Segment& s = segs[static_cast<size_t>(left)];
    if (!s.alive || s.next < 0) return;
    heap.push_back(Entry{merge_penalty(left, s.next), left,
                         stamp[static_cast<size_t>(left)]});
    std::push_heap(heap.begin(), heap.end(), cmp);
  };
  for (int64_t i = 0; i + 1 < n; ++i) push(i);

  int64_t alive = n;
  while (alive > b && !heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), cmp);
    const Entry e = heap.back();
    heap.pop_back();
    Segment& left = segs[static_cast<size_t>(e.left)];
    if (!left.alive || e.stamp != stamp[static_cast<size_t>(e.left)] ||
        left.next < 0) {
      continue;
    }
    Segment& right = segs[static_cast<size_t>(left.next)];
    // Merge right into left.
    left.end = right.end;
    right.alive = false;
    left.next = right.next;
    if (right.next >= 0) segs[static_cast<size_t>(right.next)].prev = e.left;
    ++stamp[static_cast<size_t>(e.left)];
    --alive;
    push(e.left);
    if (left.prev >= 0) {
      ++stamp[static_cast<size_t>(left.prev)];
      push(left.prev);
    }
  }

  std::vector<int64_t> boundaries{0};
  for (int64_t i = 0; i >= 0;) {
    const Segment& s = segs[static_cast<size_t>(i)];
    boundaries.push_back(s.end);
    i = s.next;
  }
  return HistogramFromBoundaries(data, boundaries);
}

Histogram MergeAdjacentHistograms(const Histogram& left,
                                  const Histogram& right,
                                  int64_t num_buckets) {
  STREAMHIST_CHECK_GT(num_buckets, 0);
  struct Piece {
    int64_t begin;
    int64_t end;
    double mean;
  };
  std::vector<Piece> pieces;
  pieces.reserve(static_cast<size_t>(left.num_buckets() + right.num_buckets()));
  for (const Bucket& b : left.buckets()) {
    pieces.push_back(Piece{b.begin, b.end, b.value});
  }
  const int64_t shift = left.domain_size();
  for (const Bucket& b : right.buckets()) {
    pieces.push_back(Piece{b.begin + shift, b.end + shift, b.value});
  }
  if (pieces.empty()) return Histogram();

  // Fusing adjacent pieces raises the SSE by exactly
  // w1 w2 / (w1 + w2) * (mean1 - mean2)^2, independent of the unknown
  // within-bucket residuals.
  auto fuse_penalty = [](const Piece& a, const Piece& b) {
    const double w1 = static_cast<double>(a.end - a.begin);
    const double w2 = static_cast<double>(b.end - b.begin);
    const double d = a.mean - b.mean;
    return w1 * w2 / (w1 + w2) * d * d;
  };
  while (static_cast<int64_t>(pieces.size()) > num_buckets) {
    double best = std::numeric_limits<double>::infinity();
    size_t best_i = 0;
    for (size_t i = 0; i + 1 < pieces.size(); ++i) {
      const double p = fuse_penalty(pieces[i], pieces[i + 1]);
      if (p < best) {
        best = p;
        best_i = i;
      }
    }
    Piece& a = pieces[best_i];
    const Piece& b = pieces[best_i + 1];
    const double w1 = static_cast<double>(a.end - a.begin);
    const double w2 = static_cast<double>(b.end - b.begin);
    a.mean = (w1 * a.mean + w2 * b.mean) / (w1 + w2);
    a.end = b.end;
    pieces.erase(pieces.begin() + static_cast<ptrdiff_t>(best_i) + 1);
  }

  std::vector<Bucket> buckets;
  buckets.reserve(pieces.size());
  for (const Piece& p : pieces) {
    buckets.push_back(Bucket{p.begin, p.end, p.mean});
  }
  return Histogram::FromBucketsUnchecked(std::move(buckets));
}

StreamingMergeHistogram::StreamingMergeHistogram(int64_t num_buckets)
    : num_buckets_(num_buckets) {
  STREAMHIST_CHECK_GT(num_buckets, 0);
  summaries_.reserve(static_cast<size_t>(2 * num_buckets + 1));
}

double StreamingMergeHistogram::SummarySse(const Summary& s) {
  const int64_t w = s.end - s.begin;
  if (w <= 1) return 0.0;
  const long double err = s.sqsum - s.sum * s.sum / static_cast<long double>(w);
  return err > 0.0L ? static_cast<double>(err) : 0.0;
}

StreamingMergeHistogram::Summary StreamingMergeHistogram::Merge(
    const Summary& a, const Summary& b) {
  STREAMHIST_DCHECK(a.end == b.begin);
  return Summary{a.begin, b.end, a.sum + b.sum, a.sqsum + b.sqsum};
}

double StreamingMergeHistogram::MergePenalty(const Summary& a,
                                             const Summary& b) {
  return SummarySse(Merge(a, b)) - SummarySse(a) - SummarySse(b);
}

void StreamingMergeHistogram::MergeCheapestPair(
    std::vector<Summary>& summaries) {
  STREAMHIST_CHECK_GE(summaries.size(), 2u);
  double best = std::numeric_limits<double>::infinity();
  size_t best_i = 0;
  for (size_t i = 0; i + 1 < summaries.size(); ++i) {
    const double p = MergePenalty(summaries[i], summaries[i + 1]);
    if (p < best) {
      best = p;
      best_i = i;
    }
  }
  summaries[best_i] = Merge(summaries[best_i], summaries[best_i + 1]);
  summaries.erase(summaries.begin() + static_cast<ptrdiff_t>(best_i) + 1);
}

void StreamingMergeHistogram::Append(double value) {
  summaries_.push_back(Summary{total_count_, total_count_ + 1, value,
                               static_cast<long double>(value) * value});
  ++total_count_;
  if (static_cast<int64_t>(summaries_.size()) > 2 * num_buckets_) {
    MergeCheapestPair(summaries_);
  }
}

Histogram StreamingMergeHistogram::Extract() const {
  if (summaries_.empty()) return Histogram();
  std::vector<Summary> working = summaries_;
  while (static_cast<int64_t>(working.size()) > num_buckets_) {
    MergeCheapestPair(working);
  }
  std::vector<Bucket> buckets;
  buckets.reserve(working.size());
  for (const Summary& s : working) {
    buckets.push_back(Bucket{
        s.begin, s.end,
        static_cast<double>(s.sum / static_cast<long double>(s.end - s.begin))});
  }
  return Histogram::FromBucketsUnchecked(std::move(buckets));
}

}  // namespace streamhist
