#ifndef STREAMHIST_CORE_HEURISTICS_H_
#define STREAMHIST_CORE_HEURISTICS_H_

#include <cstdint>
#include <span>

#include "src/core/histogram.h"

namespace streamhist {

/// Cheap serial-histogram heuristics used as ablation baselines against the
/// paper's (1+eps)-approximate algorithms. All partition the *index* domain,
/// matching the paper's sequence-approximation setting.

/// Equal-length buckets (the last bucket absorbs the remainder).
Histogram BuildEquiWidthHistogram(std::span<const double> data,
                                  int64_t num_buckets);

/// MaxDiff [Poosala et al.]: boundaries at the B-1 largest adjacent
/// differences |v[i+1] - v[i]|.
Histogram BuildMaxDiffHistogram(std::span<const double> data,
                                int64_t num_buckets);

/// Offline greedy bottom-up pairwise merge: start from singletons and
/// repeatedly merge the adjacent pair whose merge increases SSE the least
/// (priority-queue implementation, O(n log n)).
Histogram BuildGreedyMergeHistogram(std::span<const double> data,
                                    int64_t num_buckets);

/// Merges two histograms over *adjacent* index ranges (the `right` histogram
/// is shifted to start where `left` ends) into a single histogram with at
/// most `num_buckets` buckets, greedily fusing the adjacent pair with the
/// smallest SSE increase. Because bucket means and widths determine the
/// cross-bucket SSE increase exactly (the within-bucket residuals are
/// unknown but unchanged by merging), the greedy objective is evaluated
/// exactly without the underlying data — this is how per-shard window
/// sketches from distributed collectors combine into one.
Histogram MergeAdjacentHistograms(const Histogram& left,
                                  const Histogram& right,
                                  int64_t num_buckets);

/// Streaming greedy-merge histogram in the style of Ben-Haim & Tom-Tov /
/// t-digest, adapted to the index domain: maintains at most `2 * num_buckets`
/// summary buckets online; when full, merges the adjacent pair with minimal
/// SSE increase. One pass, O(log B) amortized per point, *no* approximation
/// guarantee — the foil that motivates the paper's provable algorithms.
class StreamingMergeHistogram {
 public:
  /// `num_buckets` is the target B of extracted histograms; 2B summary
  /// buckets are kept internally.
  explicit StreamingMergeHistogram(int64_t num_buckets);

  /// Appends one stream point.
  void Append(double value);

  /// Number of points seen.
  int64_t size() const { return total_count_; }

  /// Extracts a histogram with at most B buckets over [0, size()): the 2B
  /// summary buckets are greedily merged down to B.
  Histogram Extract() const;

 private:
  struct Summary {
    int64_t begin;
    int64_t end;
    long double sum;
    long double sqsum;
  };

  // SSE increase of merging summaries a and b (their union's SSE minus the
  // parts' SSEs).
  static double MergePenalty(const Summary& a, const Summary& b);
  static double SummarySse(const Summary& s);
  static Summary Merge(const Summary& a, const Summary& b);

  // Merges the cheapest adjacent pair in `summaries` (linear scan; the
  // vector is at most 2B long).
  static void MergeCheapestPair(std::vector<Summary>& summaries);

  int64_t num_buckets_;
  int64_t total_count_ = 0;
  std::vector<Summary> summaries_;
};

}  // namespace streamhist

#endif  // STREAMHIST_CORE_HEURISTICS_H_
