#include "src/core/histogram.h"

#include <algorithm>
#include <sstream>

#include "src/stream/prefix_sums.h"
#include "src/util/logging.h"

namespace streamhist {

namespace {

Status CheckBuckets(const std::vector<Bucket>& buckets) {
  int64_t expected_begin = 0;
  for (size_t k = 0; k < buckets.size(); ++k) {
    const Bucket& b = buckets[k];
    if (b.begin != expected_begin) {
      std::ostringstream msg;
      msg << "bucket " << k << " begins at " << b.begin << ", expected "
          << expected_begin;
      return Status::InvalidArgument(msg.str());
    }
    if (b.end <= b.begin) {
      std::ostringstream msg;
      msg << "bucket " << k << " is empty or inverted: [" << b.begin << ","
          << b.end << ")";
      return Status::InvalidArgument(msg.str());
    }
    expected_begin = b.end;
  }
  return Status::OK();
}

}  // namespace

Histogram::Histogram(std::vector<Bucket> buckets)
    : buckets_(std::move(buckets)) {
  cum_.resize(buckets_.size() + 1);
  cum_[0] = 0.0L;
  for (size_t k = 0; k < buckets_.size(); ++k) {
    cum_[k + 1] = cum_[k] + static_cast<long double>(buckets_[k].value) *
                                static_cast<long double>(buckets_[k].width());
  }
}

Result<Histogram> Histogram::Make(std::vector<Bucket> buckets) {
  STREAMHIST_RETURN_NOT_OK(CheckBuckets(buckets));
  return Histogram(std::move(buckets));
}

Histogram Histogram::FromBucketsUnchecked(std::vector<Bucket> buckets) {
  STREAMHIST_DCHECK(CheckBuckets(buckets).ok());
  return Histogram(std::move(buckets));
}

size_t Histogram::BucketIndexFor(int64_t i) const {
  STREAMHIST_DCHECK(0 <= i && i < domain_size());
  // First bucket with end > i.
  auto it = std::upper_bound(
      buckets_.begin(), buckets_.end(), i,
      [](int64_t lhs, const Bucket& b) { return lhs < b.end; });
  return static_cast<size_t>(it - buckets_.begin());
}

double Histogram::Estimate(int64_t i) const {
  return buckets_[BucketIndexFor(i)].value;
}

double Histogram::PrefixSumTo(int64_t i) const {
  STREAMHIST_DCHECK(0 <= i && i <= domain_size());
  if (i == 0) return 0.0;
  const size_t k = BucketIndexFor(i - 1);
  const Bucket& b = buckets_[k];
  return static_cast<double>(cum_[k]) +
         b.value * static_cast<double>(i - b.begin);
}

double Histogram::RangeSum(int64_t lo, int64_t hi) const {
  STREAMHIST_DCHECK(0 <= lo && lo <= hi && hi <= domain_size());
  return PrefixSumTo(hi) - PrefixSumTo(lo);
}

double Histogram::RangeAverage(int64_t lo, int64_t hi) const {
  STREAMHIST_DCHECK(lo < hi);
  return RangeSum(lo, hi) / static_cast<double>(hi - lo);
}

double Histogram::SseAgainst(std::span<const double> data) const {
  STREAMHIST_CHECK_EQ(static_cast<int64_t>(data.size()), domain_size());
  long double total = 0.0L;
  for (const Bucket& b : buckets_) {
    for (int64_t i = b.begin; i < b.end; ++i) {
      const long double d = data[static_cast<size_t>(i)] - b.value;
      total += d * d;
    }
  }
  return static_cast<double>(total);
}

std::vector<double> Histogram::Reconstruct() const {
  std::vector<double> out(static_cast<size_t>(domain_size()));
  for (const Bucket& b : buckets_) {
    for (int64_t i = b.begin; i < b.end; ++i) {
      out[static_cast<size_t>(i)] = b.value;
    }
  }
  return out;
}

Status Histogram::Validate() const { return CheckBuckets(buckets_); }

std::string Histogram::ToString() const {
  std::ostringstream os;
  for (size_t k = 0; k < buckets_.size(); ++k) {
    if (k > 0) os << ' ';
    os << '[' << buckets_[k].begin << ',' << buckets_[k].end
       << ")=" << buckets_[k].value;
  }
  return os.str();
}

Histogram HistogramFromBoundaries(std::span<const double> data,
                                  const std::vector<int64_t>& boundaries) {
  STREAMHIST_CHECK_GE(boundaries.size(), 2u);
  STREAMHIST_CHECK_EQ(boundaries.front(), 0);
  STREAMHIST_CHECK_EQ(boundaries.back(), static_cast<int64_t>(data.size()));
  PrefixSums sums(data);
  std::vector<Bucket> buckets;
  buckets.reserve(boundaries.size() - 1);
  for (size_t k = 0; k + 1 < boundaries.size(); ++k) {
    const int64_t begin = boundaries[k];
    const int64_t end = boundaries[k + 1];
    STREAMHIST_CHECK_LT(begin, end);
    buckets.push_back(Bucket{begin, end, sums.Mean(begin, end)});
  }
  return Histogram::FromBucketsUnchecked(std::move(buckets));
}

}  // namespace streamhist
