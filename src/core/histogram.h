#ifndef STREAMHIST_CORE_HISTOGRAM_H_
#define STREAMHIST_CORE_HISTOGRAM_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/util/result.h"
#include "src/util/status.h"

namespace streamhist {

/// One histogram bucket: the contiguous index range [begin, end) is
/// approximated by the single representative `value` (the bucket mean for
/// V-optimal/SSE histograms).
struct Bucket {
  int64_t begin = 0;
  int64_t end = 0;
  double value = 0.0;

  int64_t width() const { return end - begin; }

  friend bool operator==(const Bucket& a, const Bucket& b) {
    return a.begin == b.begin && a.end == b.end && a.value == b.value;
  }
};

/// A serial (index-partitioning) histogram: a piecewise-constant
/// approximation of a sequence v[0..n) by B contiguous buckets, exactly the
/// representation the paper constructs. Supports O(log B) point estimates
/// and O(log B) range aggregates via bucket-level prefix sums.
class Histogram {
 public:
  /// An empty histogram over the empty domain.
  Histogram() = default;

  /// Validated construction: buckets must be non-empty, contiguous
  /// ([0,e1),[e1,e2),...) and in increasing order.
  static Result<Histogram> Make(std::vector<Bucket> buckets);

  /// Unchecked construction for internal builders that guarantee the
  /// invariants; CHECK-fails on violation in debug builds.
  static Histogram FromBucketsUnchecked(std::vector<Bucket> buckets);

  /// Number of buckets B.
  int64_t num_buckets() const { return static_cast<int64_t>(buckets_.size()); }

  /// Domain size n (the `end` of the last bucket; 0 when empty).
  int64_t domain_size() const {
    return buckets_.empty() ? 0 : buckets_.back().end;
  }

  const std::vector<Bucket>& buckets() const { return buckets_; }

  /// Estimated value of point i. Requires 0 <= i < domain_size().
  double Estimate(int64_t i) const;

  /// Estimated sum of v[lo..hi) (half-open). Requires
  /// 0 <= lo <= hi <= domain_size().
  double RangeSum(int64_t lo, int64_t hi) const;

  /// Estimated average of v[lo..hi); requires lo < hi.
  double RangeAverage(int64_t lo, int64_t hi) const;

  /// Sum squared error of this histogram against `data`, the paper's
  /// E_X(H_B). data.size() must equal domain_size().
  double SseAgainst(std::span<const double> data) const;

  /// Reconstructs the full approximate sequence (length domain_size()).
  std::vector<double> Reconstruct() const;

  /// Checks the structural invariants; OK for default-constructed empties.
  Status Validate() const;

  /// Human-readable rendering, e.g. "[0,3)=4.5 [3,8)=1.0".
  std::string ToString() const;

  friend bool operator==(const Histogram& a, const Histogram& b) {
    return a.buckets_ == b.buckets_;
  }

 private:
  explicit Histogram(std::vector<Bucket> buckets);

  // Index of the bucket containing point i.
  size_t BucketIndexFor(int64_t i) const;
  // Sum of the approximation over [0, i).
  double PrefixSumTo(int64_t i) const;

  std::vector<Bucket> buckets_;
  // cum_[k] = sum over buckets [0..k) of value * width.
  std::vector<long double> cum_;
};

/// Builds the bucket means for a fixed set of boundaries over `data`:
/// boundaries = {0 = p0 < p1 < ... < pB = n} produces buckets
/// [p0,p1),...,[p_{B-1},pB) each valued at its data mean.
Histogram HistogramFromBoundaries(std::span<const double> data,
                                  const std::vector<int64_t>& boundaries);

}  // namespace streamhist

#endif  // STREAMHIST_CORE_HISTOGRAM_H_
