#include "src/core/histogram_io.h"

#include <cmath>
#include <cstdint>

#include "src/util/framing.h"

namespace streamhist {

namespace {

constexpr uint32_t kMagic = 0x53484947;  // "SHIG"
// v1 was an unchecksummed ad-hoc layout; v2 is the shared framed format
// (magic + version + length + payload + CRC32C, util/framing.h).
constexpr uint32_t kVersion = 2;
constexpr size_t kBytesPerBucket = 24;  // begin u64 + end u64 + value f64

}  // namespace

std::string SerializeHistogram(const Histogram& histogram) {
  ByteWriter payload;
  payload.PutU64(static_cast<uint64_t>(histogram.num_buckets()));
  for (const Bucket& b : histogram.buckets()) {
    payload.PutI64(b.begin);
    payload.PutI64(b.end);
    payload.PutF64(b.value);
  }
  return WrapFrame(kMagic, kVersion, payload.bytes());
}

Result<Histogram> DeserializeHistogram(const std::string& bytes) {
  STREAMHIST_ASSIGN_OR_RETURN(FrameView frame,
                              UnwrapFrame(bytes, kMagic, "histogram"));
  if (frame.version != kVersion) {
    return Status::InvalidArgument("unsupported histogram version");
  }
  ByteReader reader(frame.payload);
  uint64_t count = 0;
  if (!reader.ReadU64(&count)) {
    return Status::InvalidArgument("truncated histogram header");
  }
  // Guard the allocation against a corrupted count.
  if (count > reader.remaining() / kBytesPerBucket) {
    return Status::InvalidArgument("histogram bucket count exceeds payload");
  }
  std::vector<Bucket> buckets;
  buckets.reserve(count);
  for (uint64_t k = 0; k < count; ++k) {
    int64_t begin = 0, end = 0;
    double value = 0.0;
    if (!reader.ReadI64(&begin) || !reader.ReadI64(&end) ||
        !reader.ReadF64(&value)) {
      return Status::InvalidArgument("truncated histogram buckets");
    }
    if (!std::isfinite(value)) {
      return Status::InvalidArgument("histogram bucket value is not finite");
    }
    buckets.push_back(Bucket{begin, end, value});
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after histogram");
  }
  return Histogram::Make(std::move(buckets));
}

}  // namespace streamhist
