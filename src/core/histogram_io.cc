#include "src/core/histogram_io.h"

#include <cstdint>
#include <cstring>

namespace streamhist {

namespace {

constexpr uint32_t kMagic = 0x53484947;  // "SHIG"
constexpr uint32_t kVersion = 1;

void PutU32(std::string& out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

void PutU64(std::string& out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

void PutF64(std::string& out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  bool ReadU32(uint32_t* v) { return Read(v, 4); }
  bool ReadU64(uint64_t* v) { return Read(v, 8); }
  bool ReadF64(double* v) { return Read(v, 8); }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  bool Read(void* out, size_t n) {
    if (pos_ + n > bytes_.size()) return false;
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  const std::string& bytes_;
  size_t pos_ = 0;
};

}  // namespace

std::string SerializeHistogram(const Histogram& histogram) {
  std::string out;
  out.reserve(16 + static_cast<size_t>(histogram.num_buckets()) * 24);
  PutU32(out, kMagic);
  PutU32(out, kVersion);
  PutU64(out, static_cast<uint64_t>(histogram.num_buckets()));
  for (const Bucket& b : histogram.buckets()) {
    PutU64(out, static_cast<uint64_t>(b.begin));
    PutU64(out, static_cast<uint64_t>(b.end));
    PutF64(out, b.value);
  }
  return out;
}

Result<Histogram> DeserializeHistogram(const std::string& bytes) {
  Reader reader(bytes);
  uint32_t magic = 0, version = 0;
  uint64_t count = 0;
  if (!reader.ReadU32(&magic) || magic != kMagic) {
    return Status::InvalidArgument("bad histogram magic");
  }
  if (!reader.ReadU32(&version) || version != kVersion) {
    return Status::InvalidArgument("unsupported histogram version");
  }
  if (!reader.ReadU64(&count)) {
    return Status::InvalidArgument("truncated histogram header");
  }
  // Guard the allocation against a corrupted count: each bucket occupies
  // exactly 24 payload bytes.
  if (count > (bytes.size() - 16) / 24) {
    return Status::InvalidArgument("histogram bucket count exceeds payload");
  }
  std::vector<Bucket> buckets;
  buckets.reserve(count);
  for (uint64_t k = 0; k < count; ++k) {
    uint64_t begin = 0, end = 0;
    double value = 0.0;
    if (!reader.ReadU64(&begin) || !reader.ReadU64(&end) ||
        !reader.ReadF64(&value)) {
      return Status::InvalidArgument("truncated histogram buckets");
    }
    buckets.push_back(Bucket{static_cast<int64_t>(begin),
                             static_cast<int64_t>(end), value});
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after histogram");
  }
  return Histogram::Make(std::move(buckets));
}

}  // namespace streamhist
