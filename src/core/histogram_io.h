#ifndef STREAMHIST_CORE_HISTOGRAM_IO_H_
#define STREAMHIST_CORE_HISTOGRAM_IO_H_

#include <string>

#include "src/core/histogram.h"
#include "src/util/result.h"

namespace streamhist {

/// Compact binary serialization of a histogram in the shared framed format
/// (util/framing.h: magic + version + length + bucket triples + CRC32C), so
/// sketches can be shipped off-box — e.g. a router exporting its window
/// histogram to a collector, the deployment the paper's introduction
/// motivates — and survive storage corruption detectably.
std::string SerializeHistogram(const Histogram& histogram);

/// Inverse of SerializeHistogram; validates structure and returns
/// InvalidArgument on malformed or truncated input.
Result<Histogram> DeserializeHistogram(const std::string& bytes);

}  // namespace streamhist

#endif  // STREAMHIST_CORE_HISTOGRAM_IO_H_
