#include "src/core/time_window.h"

#include <algorithm>

#include "src/util/logging.h"

namespace streamhist {

Result<TimeWindowHistogram> TimeWindowHistogram::Create(
    const TimeWindowOptions& options) {
  if (!(options.horizon > 0.0)) {
    return Status::InvalidArgument("horizon must be > 0");
  }
  if (options.max_points < 1) {
    return Status::InvalidArgument("max_points must be >= 1");
  }
  FixedWindowOptions window_options;
  window_options.window_size = options.max_points;
  window_options.num_buckets = options.num_buckets;
  window_options.epsilon = options.epsilon;
  window_options.rebuild_on_append = false;
  STREAMHIST_ASSIGN_OR_RETURN(FixedWindowHistogram window,
                              FixedWindowHistogram::Create(window_options));
  return TimeWindowHistogram(options, std::move(window));
}

TimeWindowHistogram::TimeWindowHistogram(const TimeWindowOptions& options,
                                         FixedWindowHistogram window)
    : options_(options), window_(std::move(window)) {}

void TimeWindowHistogram::EvictExpired(double now) {
  const double cutoff = now - options_.horizon;
  while (!timestamps_.empty() && timestamps_.front() <= cutoff) {
    timestamps_.pop_front();
    window_.EvictOldest();
  }
}

Status TimeWindowHistogram::Append(double timestamp, double value) {
  if (timestamp < last_timestamp_) {
    return Status::InvalidArgument("timestamps must be non-decreasing");
  }
  last_timestamp_ = timestamp;
  EvictExpired(timestamp);
  // The capacity cap: FixedWindowHistogram auto-evicts the oldest point when
  // full; mirror that in the timestamp deque.
  if (static_cast<int64_t>(timestamps_.size()) >= options_.max_points) {
    timestamps_.pop_front();
  }
  timestamps_.push_back(timestamp);
  window_.Append(value);
  return Status::OK();
}

void TimeWindowHistogram::AdvanceTo(double now) {
  last_timestamp_ = std::max(last_timestamp_, now);
  EvictExpired(now);
}

double TimeWindowHistogram::RangeSumByTime(double t_lo, double t_hi) {
  if (timestamps_.empty() || !(t_lo < t_hi)) return 0.0;
  // First retained index with timestamp >= t_lo / >= t_hi.
  const auto lo_it =
      std::lower_bound(timestamps_.begin(), timestamps_.end(), t_lo);
  const auto hi_it =
      std::lower_bound(timestamps_.begin(), timestamps_.end(), t_hi);
  const int64_t lo = lo_it - timestamps_.begin();
  const int64_t hi = hi_it - timestamps_.begin();
  if (lo >= hi) return 0.0;
  return window_.Extract().RangeSum(lo, hi);
}

}  // namespace streamhist
