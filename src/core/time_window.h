#ifndef STREAMHIST_CORE_TIME_WINDOW_H_
#define STREAMHIST_CORE_TIME_WINDOW_H_

#include <cstdint>
#include <deque>
#include <limits>

#include "src/core/fixed_window.h"
#include "src/util/result.h"

namespace streamhist {

/// Options for TimeWindowHistogram.
struct TimeWindowOptions {
  /// Points with timestamp <= now - horizon are evicted. Must be > 0.
  double horizon = 60.0;
  /// Hard cap on buffered points (memory guarantee); the oldest points are
  /// dropped early if arrivals outpace the horizon. Must be >= 1.
  int64_t max_points = 4096;
  /// Histogram bucket budget B.
  int64_t num_buckets = 8;
  /// Approximation slack (see FixedWindowOptions).
  double epsilon = 0.1;
};

/// Time-based sliding windows — the paper's operator queries are phrased
/// over "time windows of interest" (e.g. the last T seconds), while its
/// algorithm is count-based. This adapter keeps exactly the points whose
/// timestamps fall inside a trailing horizon (with a hard count cap) and
/// maintains the same (1+eps)-approximate histogram over them, using the
/// fixed-window machinery plus an eviction primitive.
///
/// Timestamps must be non-decreasing (stream order).
class TimeWindowHistogram {
 public:
  static Result<TimeWindowHistogram> Create(const TimeWindowOptions& options);

  /// Appends a point observed at `timestamp` and evicts everything older
  /// than timestamp - horizon. Returns InvalidArgument if the timestamp
  /// regresses.
  Status Append(double timestamp, double value);

  /// Advances the clock without new data, evicting expired points.
  void AdvanceTo(double now);

  /// Points currently inside the window.
  int64_t size() const { return static_cast<int64_t>(timestamps_.size()); }

  /// Timestamp of the oldest retained point; requires size() > 0.
  double oldest_timestamp() const { return timestamps_.front(); }

  /// (1+eps)-approximate histogram over the points currently in the window
  /// (index 0 = oldest).
  const Histogram& Extract() { return window_.Extract(); }

  /// Approximate SSE bound of the current histogram.
  double ApproxError() { return window_.ApproxError(); }

  /// Estimated sum of values observed in the time interval [t_lo, t_hi),
  /// clipped to the retained window.
  double RangeSumByTime(double t_lo, double t_hi);

  const TimeWindowOptions& options() const { return options_; }

 private:
  TimeWindowHistogram(const TimeWindowOptions& options,
                      FixedWindowHistogram window);

  void EvictExpired(double now);

  TimeWindowOptions options_;
  FixedWindowHistogram window_;
  std::deque<double> timestamps_;  // parallel to the window contents
  double last_timestamp_ = -std::numeric_limits<double>::infinity();
};

}  // namespace streamhist

#endif  // STREAMHIST_CORE_TIME_WINDOW_H_
