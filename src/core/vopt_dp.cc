#include "src/core/vopt_dp.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "src/util/logging.h"
#include "src/util/thread_pool.h"

namespace streamhist {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Minimum j-endpoints per ParallelFor chunk: below this the O(j) inner scans
// are too cheap to amortize a task dispatch.
constexpr int64_t kDpGrain = 256;

}  // namespace

OptimalHistogramResult BuildOptimalHistogram(const BucketCost& cost,
                                             int64_t num_buckets) {
  const int64_t n = cost.size();
  STREAMHIST_CHECK_GT(num_buckets, 0);
  if (n == 0) return OptimalHistogramResult{Histogram(), 0.0};
  const int64_t b_max = std::min(num_buckets, n);

  // herror[j] for the current k; herror_prev[j] for k-1. j in [0, n] is the
  // prefix length.
  std::vector<double> herror_prev(static_cast<size_t>(n) + 1);
  std::vector<double> herror(static_cast<size_t>(n) + 1);
  // back[k][j]: start index of the last bucket of the optimal k-histogram of
  // the length-j prefix.
  std::vector<std::vector<int32_t>> back(
      static_cast<size_t>(b_max) + 1,
      std::vector<int32_t>(static_cast<size_t>(n) + 1, 0));

  herror_prev[0] = 0.0;
  for (int64_t j = 1; j <= n; ++j) {
    herror_prev[static_cast<size_t>(j)] = cost.Cost(0, j);
    back[1][static_cast<size_t>(j)] = 0;
  }

  // Layers k stay sequential (layer k reads layer k-1); within a layer every
  // j-endpoint is independent and writes disjoint herror/back slots, so the
  // sweep is data-parallel and bit-identical to the serial order.
  for (int64_t k = 2; k <= b_max; ++k) {
    herror[0] = 0.0;
    std::vector<int32_t>& back_k = back[static_cast<size_t>(k)];
    ParallelFor(1, n + 1, kDpGrain, [&](int64_t j_begin, int64_t j_end) {
      for (int64_t j = j_begin; j < j_end; ++j) {
        // With k buckets a length-j prefix is exact when j <= k.
        double best = kInf;
        int32_t best_i = static_cast<int32_t>(j - 1);
        // The last bucket is [i, j) for some i in [k-1, j-1]; i == j-1 is a
        // singleton bucket. (Using fewer than k buckets is dominated: i
        // ranges down to k-1 where every bucket is a singleton.)
        for (int64_t i = j - 1; i >= k - 1; --i) {
          const double candidate =
              herror_prev[static_cast<size_t>(i)] + cost.Cost(i, j);
          if (candidate < best) {
            best = candidate;
            best_i = static_cast<int32_t>(i);
          }
        }
        if (j < k) {  // fewer points than buckets: exact with j singletons
          best = 0.0;
          best_i = static_cast<int32_t>(j - 1);
        }
        herror[static_cast<size_t>(j)] = best;
        back_k[static_cast<size_t>(j)] = best_i;
      }
    });
    std::swap(herror, herror_prev);
  }

  // Backtrack the boundaries from (n, b_max).
  std::vector<int64_t> boundaries;
  boundaries.push_back(n);
  int64_t j = n;
  for (int64_t k = b_max; k >= 1 && j > 0; --k) {
    const int64_t i = back[static_cast<size_t>(k)][static_cast<size_t>(j)];
    boundaries.push_back(i);
    j = i;
  }
  STREAMHIST_CHECK_EQ(j, 0);
  std::reverse(boundaries.begin(), boundaries.end());
  // Collapse duplicate boundaries (possible when j < k paths emit 0-width).
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                   boundaries.end());

  std::vector<Bucket> buckets;
  buckets.reserve(boundaries.size() - 1);
  for (size_t t = 0; t + 1 < boundaries.size(); ++t) {
    buckets.push_back(Bucket{boundaries[t], boundaries[t + 1],
                             cost.Representative(boundaries[t],
                                                 boundaries[t + 1])});
  }
  OptimalHistogramResult result{Histogram::FromBucketsUnchecked(std::move(buckets)),
                                herror_prev[static_cast<size_t>(n)]};
  return result;
}

OptimalHistogramResult BuildVOptimalHistogram(std::span<const double> data,
                                              int64_t num_buckets) {
  SseBucketCost cost(data);
  return BuildOptimalHistogram(cost, num_buckets);
}

double OptimalSse(std::span<const double> data, int64_t num_buckets) {
  const int64_t n = static_cast<int64_t>(data.size());
  STREAMHIST_CHECK_GT(num_buckets, 0);
  if (n == 0) return 0.0;
  SseBucketCost cost(data);
  const int64_t b_max = std::min(num_buckets, n);

  std::vector<double> herror_prev(static_cast<size_t>(n) + 1);
  std::vector<double> herror(static_cast<size_t>(n) + 1);
  herror_prev[0] = 0.0;
  for (int64_t j = 1; j <= n; ++j) {
    herror_prev[static_cast<size_t>(j)] = cost.Cost(0, j);
  }
  for (int64_t k = 2; k <= b_max; ++k) {
    herror[0] = 0.0;
    ParallelFor(1, n + 1, kDpGrain, [&](int64_t j_begin, int64_t j_end) {
      for (int64_t j = j_begin; j < j_end; ++j) {
        if (j <= k) {
          herror[static_cast<size_t>(j)] = 0.0;
          continue;
        }
        double best = kInf;
        for (int64_t i = j - 1; i >= k - 1; --i) {
          const double candidate =
              herror_prev[static_cast<size_t>(i)] + cost.Cost(i, j);
          best = std::min(best, candidate);
        }
        herror[static_cast<size_t>(j)] = best;
      }
    });
    std::swap(herror, herror_prev);
  }
  return herror_prev[static_cast<size_t>(n)];
}

}  // namespace streamhist
