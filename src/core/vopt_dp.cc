#include "src/core/vopt_dp.h"

#include <span>

#include "src/core/vopt_kernel.h"
#include "src/stream/prefix_sums.h"

namespace streamhist {

// A virtual cost still goes through the templated kernel — instantiated with
// the abstract base, it compiles to the historical per-candidate virtual
// dispatch — but the ubiquitous SSE cost is routed to the devirtualized
// SseFlatCost instantiation, whose inner loop is flat prefix-sum arithmetic.
// Both instantiations are bit-identical (same scan order, same expressions;
// enforced by tests/parallel_determinism_test.cc).

OptimalHistogramResult BuildOptimalHistogram(const BucketCost& cost,
                                             int64_t num_buckets) {
  // Null context: the impl cannot cancel, so the Result always holds a value.
  if (const auto* sse = dynamic_cast<const SseBucketCost*>(&cost)) {
    return vopt_internal::BuildOptimalHistogramImpl(
               vopt_internal::SseFlatCost(sse->sums()), num_buckets)
        .value();
  }
  return vopt_internal::BuildOptimalHistogramImpl(cost, num_buckets).value();
}

OptimalHistogramResult BuildVOptimalHistogram(std::span<const double> data,
                                              int64_t num_buckets) {
  const PrefixSums sums(data);
  return vopt_internal::BuildOptimalHistogramImpl(
             vopt_internal::SseFlatCost(sums), num_buckets)
      .value();
}

double OptimalSse(std::span<const double> data, int64_t num_buckets) {
  const PrefixSums sums(data);
  return vopt_internal::OptimalSseImpl(vopt_internal::SseFlatCost(sums),
                                       num_buckets)
      .value();
}

Result<OptimalHistogramResult> BuildVOptimalHistogramCancellable(
    std::span<const double> data, int64_t num_buckets,
    const ExecContext& ctx) {
  const PrefixSums sums(data);
  return vopt_internal::BuildOptimalHistogramImpl(
      vopt_internal::SseFlatCost(sums), num_buckets, &ctx);
}

}  // namespace streamhist
