#ifndef STREAMHIST_CORE_VOPT_DP_H_
#define STREAMHIST_CORE_VOPT_DP_H_

#include <cstdint>
#include <span>

#include "src/core/bucket_cost.h"
#include "src/core/histogram.h"
#include "src/util/deadline.h"
#include "src/util/result.h"

namespace streamhist {

/// Result of the optimal dynamic program: the histogram itself plus its
/// total error (the paper's HERROR[n, B]).
struct OptimalHistogramResult {
  Histogram histogram;
  double error = 0.0;
};

/// The optimal histogram DP of Jagadish et al. [JKM+98] (paper section 4.1):
///
///   HERROR[j, k] = min_{i < j} HERROR[i, k-1] + SQERROR(i, j)
///
/// generic over the bucket-cost function. O(n^2 B) cost evaluations,
/// O(n B) space for the backtracking table. At most `num_buckets` buckets
/// are used; fewer are returned when the sequence has fewer points.
///
/// Each bucket layer's j-endpoint sweep runs data-parallel on the global
/// thread pool (util/thread_pool.h, STREAMHIST_THREADS) and is bit-identical
/// to the serial order; `cost.Cost` must therefore tolerate concurrent const
/// calls (all BucketCost implementations in bucket_cost.h do).
OptimalHistogramResult BuildOptimalHistogram(const BucketCost& cost,
                                             int64_t num_buckets);

/// Convenience wrapper: optimal SSE (V-optimal) histogram of `data` with at
/// most `num_buckets` buckets.
OptimalHistogramResult BuildVOptimalHistogram(std::span<const double> data,
                                              int64_t num_buckets);

/// Only the optimal SSE value, O(n) space (no backtracking table kept).
double OptimalSse(std::span<const double> data, int64_t num_buckets);

/// Cancellable variant of BuildVOptimalHistogram: the DP consults `ctx`
/// (util/deadline.h) at grain boundaries and between layers; an expired
/// deadline or explicit Cancel() abandons the build with Status::Cancelled.
/// With a context that never fires, the result is bit-identical to
/// BuildVOptimalHistogram for every thread count — the degradation ladder's
/// exact rung runs through here.
Result<OptimalHistogramResult> BuildVOptimalHistogramCancellable(
    std::span<const double> data, int64_t num_buckets, const ExecContext& ctx);

}  // namespace streamhist

#endif  // STREAMHIST_CORE_VOPT_DP_H_
