#ifndef STREAMHIST_CORE_VOPT_KERNEL_H_
#define STREAMHIST_CORE_VOPT_KERNEL_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/core/histogram.h"
#include "src/core/vopt_dp.h"
#include "src/stream/prefix_sums.h"
#include "src/util/deadline.h"
#include "src/util/logging.h"
#include "src/util/result.h"
#include "src/util/thread_pool.h"

/// Shared layer-sweep kernel for the offline histogram DPs (exact in
/// vopt_dp.cc, (1+delta)-approximate in approx_dp.cc).
///
/// The kernel is templated on the cost type so that a *concrete* cost —
/// SseFlatCost below, a non-virtual wrapper over PrefixSums — compiles to
/// flat prefix-array arithmetic with no per-candidate virtual dispatch: the
/// inner loop of `ExactDpLayer` becomes loads of `herror_prev[i]` /
/// `sum_[i]` / `sqsum_[i]`, an FMA-able polynomial, and a compare. The same
/// template instantiated with `const BucketCost&` reproduces the historical
/// virtual-dispatch path bit-for-bit (tests/parallel_determinism_test.cc
/// compares the two instantiations), so generic cost functions keep working
/// through the identical code shape.
namespace streamhist::vopt_internal {

/// Minimum j-endpoints per ParallelFor chunk: below this the O(j) inner
/// scans are too cheap to amortize a task dispatch.
inline constexpr int64_t kDpGrain = 256;

/// Candidate block for the inner i-scan. Each block touches a contiguous
/// ~3*kDpBlock*16-byte run of herror_prev plus the cost's prefix arrays
/// (L1/L2-resident), and gives the compiler a bounded trip count to
/// unroll/vectorize. Purely a traversal-order grouping: the scan visits the
/// same indices in the same descending order as the historical flat loop.
inline constexpr int64_t kDpBlock = 2048;

/// Non-virtual SSE bucket cost over borrowed prefix sums. Same arithmetic as
/// SseBucketCost (bucket_cost.h) — SqError/Mean are inline in
/// prefix_sums.h — but devirtualized so the DP inner loop can inline it.
class SseFlatCost {
 public:
  explicit SseFlatCost(const PrefixSums& sums) : sums_(&sums) {}

  double Cost(int64_t i, int64_t j) const { return sums_->SqError(i, j); }
  double Representative(int64_t i, int64_t j) const {
    return sums_->Mean(i, j);
  }
  int64_t size() const { return sums_->size(); }

 private:
  const PrefixSums* sums_;
};

/// Cooperative-cancellation probe for DP sweeps, checked once per ParallelFor
/// chunk (one relaxed load when no deadline is armed — see util/deadline.h).
/// A stopped chunk skips its work; the values it would have written are never
/// read, because the caller abandons the whole build once the layer returns.
/// With ctx == nullptr (or a never-firing context) every chunk computes the
/// identical values in the identical order — the no-deadline path stays
/// bit-identical to the pre-cancellation kernel.
inline bool StopRequested(const ExecContext* ctx) {
  return ctx != nullptr && ctx->ShouldStop();
}

/// Fills layer 1: herror[j] = cost of the single bucket [0, j).
template <typename CostT>
void FillFirstLayer(const CostT& cost, int64_t n, double* herror,
                    int32_t* back_1, const ExecContext* ctx = nullptr) {
  herror[0] = 0.0;
  ParallelFor(1, n + 1, kDpGrain, [&](int64_t j_begin, int64_t j_end) {
    if (StopRequested(ctx)) return;
    for (int64_t j = j_begin; j < j_end; ++j) {
      herror[j] = cost.Cost(0, j);
      if (back_1 != nullptr) back_1[j] = 0;
    }
  });
}

/// One exact DP layer k >= 2 over prefix endpoints j in [1, n]:
///
///   herror[j] = min_{i in [k-1, j-1]} herror_prev[i] + cost.Cost(i, j)
///
/// Semantics are pinned to the historical serial loop: candidates are
/// scanned with descending i and strict `<`, so ties keep the largest i.
/// For j <= k a length-j prefix is exact with j singleton buckets; the
/// general scan would find exactly that (i = j-1, herror_prev[j-1] == 0,
/// width-1 bucket costs 0), so the fast path is value- and
/// backpointer-identical to running it.
///
/// The j-sweep runs data-parallel (deterministic fixed chunking); each j
/// writes disjoint herror/back slots, so results are bit-identical for every
/// thread count.
template <typename CostT, bool kKeepBack>
void ExactDpLayer(const CostT& cost, int64_t k, int64_t n,
                  const double* herror_prev, double* herror, int32_t* back_k,
                  const ExecContext* ctx = nullptr) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  ParallelFor(1, n + 1, kDpGrain, [&](int64_t j_begin, int64_t j_end) {
    if (StopRequested(ctx)) return;
    for (int64_t j = j_begin; j < j_end; ++j) {
      if (j <= k) {
        herror[j] = 0.0;
        if constexpr (kKeepBack) back_k[j] = static_cast<int32_t>(j - 1);
        continue;
      }
      double best = kInf;
      int64_t best_i = j - 1;
      for (int64_t hi = j; hi > k - 1; hi -= kDpBlock) {
        const int64_t lo = std::max<int64_t>(k - 1, hi - kDpBlock);
        for (int64_t i = hi - 1; i >= lo; --i) {
          const double candidate = herror_prev[i] + cost.Cost(i, j);
          if (candidate < best) {
            best = candidate;
            best_i = i;
          }
        }
      }
      herror[j] = best;
      if constexpr (kKeepBack) back_k[j] = static_cast<int32_t>(best_i);
    }
  });
}

/// Walks the back tables from (n, b_max) to the boundary list
/// {0 = b_0 < b_1 < ... = n}, collapsing the zero-width buckets that j < k
/// paths emit.
inline std::vector<int64_t> BacktrackBoundaries(
    const std::vector<std::vector<int32_t>>& back, int64_t n, int64_t b_max) {
  std::vector<int64_t> boundaries;
  boundaries.push_back(n);
  int64_t j = n;
  for (int64_t k = b_max; k >= 1 && j > 0; --k) {
    const int64_t i = back[static_cast<size_t>(k)][static_cast<size_t>(j)];
    boundaries.push_back(i);
    j = i;
  }
  STREAMHIST_CHECK_EQ(j, 0);
  std::reverse(boundaries.begin(), boundaries.end());
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                   boundaries.end());
  return boundaries;
}

/// Materializes buckets for consecutive boundary pairs with the cost's
/// optimal representative.
template <typename CostT>
std::vector<Bucket> BucketsFromBoundaries(
    const CostT& cost, const std::vector<int64_t>& boundaries) {
  std::vector<Bucket> buckets;
  buckets.reserve(boundaries.size() - 1);
  for (size_t t = 0; t + 1 < boundaries.size(); ++t) {
    buckets.push_back(Bucket{
        boundaries[t], boundaries[t + 1],
        cost.Representative(boundaries[t], boundaries[t + 1])});
  }
  return buckets;
}

/// The full exact DP (histogram + error), generic over the concrete cost
/// type. This is the single implementation behind BuildOptimalHistogram,
/// BuildVOptimalHistogram and OptimalSse (vopt_dp.cc). A non-null ctx is
/// consulted at grain boundaries and between layers; a stop request abandons
/// the build and returns Status::Cancelled (partial tables are discarded).
template <typename CostT>
Result<OptimalHistogramResult> BuildOptimalHistogramImpl(
    const CostT& cost, int64_t num_buckets, const ExecContext* ctx = nullptr) {
  const int64_t n = cost.size();
  STREAMHIST_CHECK_GT(num_buckets, 0);
  if (n == 0) return OptimalHistogramResult{Histogram(), 0.0};
  const int64_t b_max = std::min(num_buckets, n);

  // herror[j] for the current k; herror_prev[j] for k-1. j in [0, n] is the
  // prefix length. back[k][j]: start index of the last bucket of the optimal
  // k-histogram of the length-j prefix.
  std::vector<double> herror_prev(static_cast<size_t>(n) + 1);
  std::vector<double> herror(static_cast<size_t>(n) + 1);
  std::vector<std::vector<int32_t>> back(
      static_cast<size_t>(b_max) + 1,
      std::vector<int32_t>(static_cast<size_t>(n) + 1, 0));

  FillFirstLayer(cost, n, herror_prev.data(), back[1].data(), ctx);
  if (StopRequested(ctx)) {
    return Status::Cancelled("exact DP cancelled in layer 1");
  }

  // Layers stay sequential (layer k reads layer k-1).
  for (int64_t k = 2; k <= b_max; ++k) {
    herror[0] = 0.0;
    ExactDpLayer<CostT, /*kKeepBack=*/true>(
        cost, k, n, herror_prev.data(), herror.data(),
        back[static_cast<size_t>(k)].data(), ctx);
    if (StopRequested(ctx)) {
      return Status::Cancelled("exact DP cancelled in layer " +
                               std::to_string(k));
    }
    std::swap(herror, herror_prev);
  }

  const std::vector<int64_t> boundaries = BacktrackBoundaries(back, n, b_max);
  return OptimalHistogramResult{
      Histogram::FromBucketsUnchecked(BucketsFromBoundaries(cost, boundaries)),
      herror_prev[static_cast<size_t>(n)]};
}

/// Value-only variant: O(n) space, no backtracking tables.
template <typename CostT>
Result<double> OptimalSseImpl(const CostT& cost, int64_t num_buckets,
                              const ExecContext* ctx = nullptr) {
  const int64_t n = cost.size();
  STREAMHIST_CHECK_GT(num_buckets, 0);
  if (n == 0) return 0.0;
  const int64_t b_max = std::min(num_buckets, n);

  std::vector<double> herror_prev(static_cast<size_t>(n) + 1);
  std::vector<double> herror(static_cast<size_t>(n) + 1);
  FillFirstLayer(cost, n, herror_prev.data(), /*back_1=*/nullptr, ctx);
  if (StopRequested(ctx)) {
    return Status::Cancelled("exact DP cancelled in layer 1");
  }
  for (int64_t k = 2; k <= b_max; ++k) {
    herror[0] = 0.0;
    ExactDpLayer<CostT, /*kKeepBack=*/false>(cost, k, n, herror_prev.data(),
                                             herror.data(), /*back_k=*/nullptr,
                                             ctx);
    if (StopRequested(ctx)) {
      return Status::Cancelled("exact DP cancelled in layer " +
                               std::to_string(k));
    }
    std::swap(herror, herror_prev);
  }
  return herror_prev[static_cast<size_t>(n)];
}

/// Scratch footprint of one exact/approx DP build over n points with at most
/// `num_buckets` buckets: the two rolling HERROR rows plus the full
/// backtracking table (the dominant term), the working copy of the window
/// contents, and the prefix-sum arrays. The degradation ladder asks the
/// memory governor to admit this much before running a DP rung.
inline int64_t DpScratchBytes(int64_t n, int64_t num_buckets) {
  const int64_t b_max = std::min(num_buckets, n);
  const int64_t herror_rows = 2 * (n + 1) * 8;
  const int64_t back_table = (b_max + 1) * (n + 1) * 4;
  const int64_t contents_and_sums = n * 8 + 3 * (n + 1) * 16;
  return herror_rows + back_table + contents_and_sums;
}

}  // namespace streamhist::vopt_internal

#endif  // STREAMHIST_CORE_VOPT_KERNEL_H_
