#include "src/data/generators.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace streamhist {

namespace {

double ClampQuantize(double v, double max_value, bool quantize) {
  v = std::clamp(v, 0.0, max_value);
  return quantize ? std::round(v) : v;
}

}  // namespace

std::vector<double> GenerateUtilizationSeries(int64_t n,
                                              const UtilizationOptions& options,
                                              uint64_t seed) {
  STREAMHIST_CHECK_GE(n, 0);
  Random rng(seed);
  std::vector<double> out;
  out.reserve(static_cast<size_t>(n));

  double ar_state = 0.0;
  double burst = 0.0;
  double level = options.base_level;
  const double two_pi = 2.0 * M_PI;

  for (int64_t t = 0; t < n; ++t) {
    ar_state = options.ar_coefficient * ar_state +
               rng.Gaussian(0.0, options.noise_stddev);
    if (rng.Bernoulli(options.burst_probability)) {
      burst += options.burst_magnitude * (0.5 + rng.UniformDouble());
    }
    burst *= options.burst_decay;
    if (rng.Bernoulli(options.shift_probability)) {
      level += rng.Gaussian(0.0, options.shift_stddev);
      level = std::clamp(level, 0.0, options.max_value);
    }
    const double diurnal =
        options.diurnal_amplitude *
        std::sin(two_pi * static_cast<double>(t % options.diurnal_period) /
                 static_cast<double>(options.diurnal_period));
    const double v = level + diurnal + ar_state + burst;
    out.push_back(ClampQuantize(v, options.max_value, options.quantize));
  }
  return out;
}

std::vector<double> GenerateRandomWalk(int64_t n, double step_stddev,
                                       double max_value, uint64_t seed) {
  STREAMHIST_CHECK_GE(n, 0);
  STREAMHIST_CHECK_GT(max_value, 0.0);
  Random rng(seed);
  std::vector<double> out;
  out.reserve(static_cast<size_t>(n));
  double x = max_value / 2.0;
  for (int64_t t = 0; t < n; ++t) {
    x += rng.Gaussian(0.0, step_stddev);
    // Reflect at the boundaries to stay in range without clipping artifacts.
    if (x < 0.0) x = -x;
    if (x > max_value) x = 2.0 * max_value - x;
    x = std::clamp(x, 0.0, max_value);
    out.push_back(std::round(x));
  }
  return out;
}

std::vector<double> GeneratePiecewiseConstant(int64_t n, int64_t num_segments,
                                              double level_range,
                                              double noise_stddev,
                                              uint64_t seed) {
  STREAMHIST_CHECK_GE(n, 0);
  STREAMHIST_CHECK_GT(num_segments, 0);
  Random rng(seed);

  // Choose num_segments-1 distinct interior boundaries.
  std::vector<int64_t> boundaries;
  boundaries.push_back(0);
  if (n > 1) {
    std::vector<int64_t> interior;
    for (int64_t k = 1; k < num_segments && k < n; ++k) {
      interior.push_back(rng.UniformInt(1, n - 1));
    }
    std::sort(interior.begin(), interior.end());
    interior.erase(std::unique(interior.begin(), interior.end()),
                   interior.end());
    boundaries.insert(boundaries.end(), interior.begin(), interior.end());
  }
  boundaries.push_back(n);

  std::vector<double> out(static_cast<size_t>(n));
  for (size_t seg = 0; seg + 1 < boundaries.size(); ++seg) {
    const double lvl = rng.UniformDouble(0.0, level_range);
    for (int64_t t = boundaries[seg]; t < boundaries[seg + 1]; ++t) {
      out[static_cast<size_t>(t)] = lvl + rng.Gaussian(0.0, noise_stddev);
    }
  }
  return out;
}

std::vector<double> GenerateZipfValues(int64_t n, int64_t domain, double skew,
                                       uint64_t seed) {
  STREAMHIST_CHECK_GE(n, 0);
  Random rng(seed);
  std::vector<double> out;
  out.reserve(static_cast<size_t>(n));
  for (int64_t t = 0; t < n; ++t) {
    out.push_back(static_cast<double>(rng.Zipf(domain, skew)));
  }
  return out;
}

std::vector<double> GenerateSineMix(int64_t n, double max_value,
                                    uint64_t seed) {
  STREAMHIST_CHECK_GE(n, 0);
  Random rng(seed);
  // Three random sinusoids spanning slow to fast periods.
  struct Component {
    double amplitude;
    double period;
    double phase;
  };
  Component comps[3];
  for (int c = 0; c < 3; ++c) {
    comps[c].amplitude = max_value / 8.0 * (0.5 + rng.UniformDouble());
    comps[c].period = std::pow(10.0, 1.5 + rng.UniformDouble() * 2.0);
    comps[c].phase = rng.UniformDouble(0.0, 2.0 * M_PI);
  }
  std::vector<double> out;
  out.reserve(static_cast<size_t>(n));
  for (int64_t t = 0; t < n; ++t) {
    double v = max_value / 2.0;
    for (const Component& c : comps) {
      v += c.amplitude *
           std::sin(2.0 * M_PI * static_cast<double>(t) / c.period + c.phase);
    }
    v += rng.Gaussian(0.0, max_value / 100.0);
    out.push_back(ClampQuantize(v, max_value, /*quantize=*/true));
  }
  return out;
}

DatasetKind ParseDatasetKind(const std::string& name) {
  if (name == "walk") return DatasetKind::kRandomWalk;
  if (name == "piecewise") return DatasetKind::kPiecewiseConstant;
  if (name == "zipf") return DatasetKind::kZipf;
  if (name == "sines") return DatasetKind::kSineMix;
  return DatasetKind::kUtilization;
}

const char* DatasetKindName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kUtilization:
      return "utilization";
    case DatasetKind::kRandomWalk:
      return "walk";
    case DatasetKind::kPiecewiseConstant:
      return "piecewise";
    case DatasetKind::kZipf:
      return "zipf";
    case DatasetKind::kSineMix:
      return "sines";
  }
  return "unknown";
}

std::vector<double> GenerateDataset(DatasetKind kind, int64_t n,
                                    uint64_t seed) {
  switch (kind) {
    case DatasetKind::kUtilization:
      return GenerateUtilizationSeries(n, UtilizationOptions{}, seed);
    case DatasetKind::kRandomWalk:
      return GenerateRandomWalk(n, /*step_stddev=*/200.0,
                                /*max_value=*/65536.0, seed);
    case DatasetKind::kPiecewiseConstant:
      return GeneratePiecewiseConstant(n, /*num_segments=*/std::max<int64_t>(
                                              8, n / 256),
                                       /*level_range=*/65536.0,
                                       /*noise_stddev=*/256.0, seed);
    case DatasetKind::kZipf:
      return GenerateZipfValues(n, /*domain=*/65536, /*skew=*/1.1, seed);
    case DatasetKind::kSineMix:
      return GenerateSineMix(n, /*max_value=*/65536.0, seed);
  }
  return {};
}

std::vector<std::vector<double>> GenerateSeriesCollection(
    int64_t num_series, int64_t length, double closeness, uint64_t seed) {
  STREAMHIST_CHECK_GT(num_series, 0);
  STREAMHIST_CHECK_GT(length, 0);
  STREAMHIST_CHECK(closeness > 0.0 && closeness <= 1.0);
  Random rng(seed);

  // A shared base shape; each series is base + scaled perturbation.
  std::vector<double> base =
      GenerateSineMix(length, /*max_value=*/65536.0, seed ^ 0xabcdef);
  const double perturb_scale = (1.0 - closeness) * 8000.0 + 200.0;

  std::vector<std::vector<double>> collection;
  collection.reserve(static_cast<size_t>(num_series));
  for (int64_t s = 0; s < num_series; ++s) {
    std::vector<double> series(static_cast<size_t>(length));
    double drift = 0.0;
    const double offset = rng.Gaussian(0.0, perturb_scale);
    for (int64_t t = 0; t < length; ++t) {
      drift = 0.98 * drift + rng.Gaussian(0.0, perturb_scale / 20.0);
      series[static_cast<size_t>(t)] =
          base[static_cast<size_t>(t)] + offset + drift;
    }
    collection.push_back(std::move(series));
  }
  return collection;
}

}  // namespace streamhist
