#ifndef STREAMHIST_DATA_GENERATORS_H_
#define STREAMHIST_DATA_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/random.h"

namespace streamhist {

/// Synthetic stand-ins for the paper's proprietary AT&T operational time
/// series (service-utilization extracts, ~1M points of bounded integers).
/// See DESIGN.md section 4 for the substitution rationale: the algorithms'
/// relative behavior depends on bounded integer values and on
/// locally-smooth-with-shifts structure, both of which these generators
/// reproduce.

/// Parameters for GenerateUtilizationSeries. Defaults produce a plausible
/// router-utilization trace: diurnal periodicity, autocorrelated noise,
/// occasional traffic bursts and persistent level shifts, quantized to a
/// bounded non-negative integer range.
struct UtilizationOptions {
  double max_value = 1 << 16;     ///< values are clamped to [0, max_value]
  double base_level = 20000.0;    ///< mean utilization
  double diurnal_amplitude = 8000.0;
  int64_t diurnal_period = 1440;  ///< points per "day"
  double ar_coefficient = 0.95;   ///< AR(1) persistence of the noise term
  double noise_stddev = 800.0;    ///< innovation std-dev of the AR(1) term
  double burst_probability = 0.002;  ///< per-point chance a burst starts
  double burst_magnitude = 15000.0;  ///< initial burst height (exp. decays)
  double burst_decay = 0.9;          ///< per-point multiplicative decay
  double shift_probability = 0.0005;  ///< per-point chance of a level shift
  double shift_stddev = 5000.0;       ///< magnitude of level shifts
  bool quantize = true;               ///< round to integers (paper model)
};

/// Generates `n` points of a synthetic utilization trace.
std::vector<double> GenerateUtilizationSeries(int64_t n,
                                              const UtilizationOptions& options,
                                              uint64_t seed);

/// Bounded random walk quantized to integers in [0, max_value]; reflects at
/// the boundaries.
std::vector<double> GenerateRandomWalk(int64_t n, double step_stddev,
                                       double max_value, uint64_t seed);

/// Piecewise-constant signal with `num_segments` random levels plus Gaussian
/// noise — the regime where a B-bucket V-optimal histogram with
/// B >= num_segments can be near-exact. Useful as algorithmic ground truth.
std::vector<double> GeneratePiecewiseConstant(int64_t n, int64_t num_segments,
                                              double level_range,
                                              double noise_stddev,
                                              uint64_t seed);

/// I.i.d. values drawn Zipf-distributed over an integer domain [1, domain]
/// with skew `s` — a heavy-tailed stress case with no temporal locality.
std::vector<double> GenerateZipfValues(int64_t n, int64_t domain, double skew,
                                       uint64_t seed);

/// Sum of sinusoids plus noise, quantized; a smooth stress case where wavelet
/// synopses are competitive.
std::vector<double> GenerateSineMix(int64_t n, double max_value, uint64_t seed);

/// Named dataset kinds for harnesses and examples.
enum class DatasetKind {
  kUtilization,
  kRandomWalk,
  kPiecewiseConstant,
  kZipf,
  kSineMix,
};

/// Parses a dataset name ("utilization", "walk", "piecewise", "zipf",
/// "sines"); returns kUtilization for unknown names.
DatasetKind ParseDatasetKind(const std::string& name);

/// Stable display name for a dataset kind.
const char* DatasetKindName(DatasetKind kind);

/// Generates a named dataset with that kind's default parameters.
std::vector<double> GenerateDataset(DatasetKind kind, int64_t n, uint64_t seed);

/// A collection of same-length series sharing a common base shape with
/// per-series warping and noise — the substitution for the paper's
/// time-series collections in the similarity experiments. `closeness`
/// in (0, 1]: larger means series are more similar to each other.
std::vector<std::vector<double>> GenerateSeriesCollection(
    int64_t num_series, int64_t length, double closeness, uint64_t seed);

}  // namespace streamhist

#endif  // STREAMHIST_DATA_GENERATORS_H_
