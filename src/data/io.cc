#include "src/data/io.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace streamhist {

Status WriteSeriesCsv(const std::string& path,
                      const std::vector<double>& values) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  for (double v : values) out << v << '\n';
  out.flush();
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<double>> ReadSeriesCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  std::vector<double> values;
  std::string line;
  int64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    // Take the first comma-separated field.
    const size_t comma = line.find(',');
    const std::string field =
        comma == std::string::npos ? line : line.substr(0, comma);
    char* end = nullptr;
    const double v = std::strtod(field.c_str(), &end);
    if (end == field.c_str()) {
      std::ostringstream msg;
      msg << path << ":" << lineno << ": not a number: '" << field << "'";
      return Status::InvalidArgument(msg.str());
    }
    // strtod happily parses "nan" and "inf"; a single such value would
    // poison every prefix sum downstream, so reject it at the boundary.
    if (!std::isfinite(v)) {
      std::ostringstream msg;
      msg << path << ":" << lineno << ": non-finite value: '" << field << "'";
      return Status::InvalidArgument(msg.str());
    }
    values.push_back(v);
  }
  return values;
}

}  // namespace streamhist
