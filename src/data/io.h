#ifndef STREAMHIST_DATA_IO_H_
#define STREAMHIST_DATA_IO_H_

#include <string>
#include <vector>

#include "src/util/result.h"
#include "src/util/status.h"

namespace streamhist {

/// Writes one value per line to `path`. Overwrites an existing file.
Status WriteSeriesCsv(const std::string& path, const std::vector<double>& values);

/// Reads a one-value-per-line (or first-column-of-CSV) series from `path`.
/// Blank lines and lines starting with '#' are skipped.
Result<std::vector<double>> ReadSeriesCsv(const std::string& path);

}  // namespace streamhist

#endif  // STREAMHIST_DATA_IO_H_
