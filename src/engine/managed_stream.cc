#include "src/engine/managed_stream.h"

#include <cmath>
#include <sstream>
#include <utility>
#include <vector>

#include "src/core/approx_dp.h"
#include "src/core/vopt_dp.h"
#include "src/util/framing.h"

namespace streamhist {

Result<ManagedStream> ManagedStream::Create(const StreamConfig& config) {
  if (!std::isfinite(config.build_delta) || config.build_delta < 0.0) {
    return Status::InvalidArgument("build_delta must be finite and >= 0");
  }
  FixedWindowOptions window_options;
  window_options.window_size = config.window_size;
  window_options.num_buckets = config.num_buckets;
  window_options.epsilon = config.epsilon;
  window_options.rebuild_on_append = false;  // queries trigger rebuilds
  STREAMHIST_ASSIGN_OR_RETURN(FixedWindowHistogram window,
                              FixedWindowHistogram::Create(window_options));

  ManagedStream stream(config, std::move(window));
  if (config.keep_lifetime_histogram) {
    ApproxHistogramOptions lifetime_options;
    lifetime_options.num_buckets = config.num_buckets;
    lifetime_options.epsilon = config.epsilon;
    STREAMHIST_ASSIGN_OR_RETURN(AgglomerativeHistogram lifetime,
                                AgglomerativeHistogram::Create(lifetime_options));
    stream.lifetime_ =
        std::make_unique<AgglomerativeHistogram>(std::move(lifetime));
  }
  if (config.keep_quantiles) {
    STREAMHIST_ASSIGN_OR_RETURN(GKSummary summary,
                                GKSummary::Create(config.quantile_epsilon));
    stream.quantiles_ = std::make_unique<GKSummary>(std::move(summary));
  }
  if (config.keep_distinct) {
    STREAMHIST_ASSIGN_OR_RETURN(FMSketch sketch, FMSketch::Create(256));
    stream.distinct_ = std::make_unique<FMSketch>(std::move(sketch));
  }
  return stream;
}

ManagedStream::ManagedStream(const StreamConfig& config,
                             FixedWindowHistogram window)
    : config_(config),
      window_(std::make_unique<FixedWindowHistogram>(std::move(window))) {}

void ManagedStream::Append(double value) {
  if (!std::isfinite(value)) {
    ++dropped_nonfinite_;
    return;
  }
  window_->Append(value);
  if (lifetime_ != nullptr) lifetime_->Append(value);
  if (quantiles_ != nullptr) quantiles_->Insert(value);
  if (distinct_ != nullptr) distinct_->AddValue(value);
}

void ManagedStream::AppendBatch(std::span<const double> values) {
  for (double v : values) Append(v);
}

void ManagedStream::Refresh() {
  window_->ApproxError();   // rebuilds the interval structure when stale
  (void)window_->Extract();  // materializes (and caches) the histogram
}

int64_t ManagedStream::total_points() const {
  return window_->window().total_appended();
}

Status ManagedStream::SetBuildMode(WindowBuildMode mode, double delta) {
  if (mode == WindowBuildMode::kApprox &&
      (!std::isfinite(delta) || delta < 0.0)) {
    return Status::InvalidArgument("build delta must be finite and >= 0");
  }
  config_.build_mode = mode;
  if (mode == WindowBuildMode::kApprox) config_.build_delta = delta;
  return Status::OK();
}

WindowBuildReport ManagedStream::BuildWindowHistogram() const {
  const std::vector<double> contents = window_->window().ToVector();
  WindowBuildReport report;
  report.mode = config_.build_mode;
  report.points = static_cast<int64_t>(contents.size());
  if (config_.build_mode == WindowBuildMode::kApprox) {
    report.delta = config_.build_delta;
    ApproxHistogramResult approx = BuildApproxVOptimalHistogram(
        contents, config_.num_buckets, config_.build_delta);
    report.histogram = std::move(approx.histogram);
    report.sse = approx.sse;
    report.bound_factor = approx.bound_factor;
  } else {
    OptimalHistogramResult exact =
        BuildVOptimalHistogram(contents, config_.num_buckets);
    report.histogram = std::move(exact.histogram);
    report.sse = exact.error;
    report.bound_factor = 1.0;
  }
  return report;
}

std::string ManagedStream::Describe() {
  std::ostringstream os;
  os << total_points() << " points seen; window " << window_->window().size()
     << "/" << config_.window_size << ", B=" << config_.num_buckets
     << ", eps=" << config_.epsilon
     << ", window error=" << window_->ApproxError();
  if (config_.build_mode == WindowBuildMode::kApprox) {
    os << "; build=approx(delta=" << config_.build_delta << ")";
  } else {
    os << "; build=exact";
  }
  if (lifetime_ != nullptr) {
    os << "; lifetime error=" << lifetime_->ApproxError();
  }
  if (quantiles_ != nullptr && quantiles_->size() > 0) {
    os << "; p50=" << quantiles_->Quantile(0.5);
  }
  if (distinct_ != nullptr) {
    os << "; ~" << static_cast<int64_t>(distinct_->EstimateDistinct())
       << " distinct values";
  }
  os << "; " << dropped_nonfinite_ << " non-finite dropped";
  return os.str();
}

namespace {
constexpr uint32_t kStreamMagic = 0x53484D53;  // "SHMS"
// v1: config through keep_distinct + dropped + synopsis blobs.
// v2: adds build_mode (bool: approx?) + build_delta after keep_distinct.
constexpr uint32_t kStreamVersion = 2;
}  // namespace

std::string ManagedStream::Snapshot() const {
  ByteWriter payload;
  payload.PutI64(config_.window_size);
  payload.PutI64(config_.num_buckets);
  payload.PutF64(config_.epsilon);
  payload.PutBool(config_.keep_lifetime_histogram);
  payload.PutBool(config_.keep_quantiles);
  payload.PutF64(config_.quantile_epsilon);
  payload.PutBool(config_.keep_distinct);
  payload.PutBool(config_.build_mode == WindowBuildMode::kApprox);
  payload.PutF64(config_.build_delta);
  payload.PutI64(dropped_nonfinite_);
  payload.PutLengthPrefixed(window_->Serialize());
  if (lifetime_ != nullptr) payload.PutLengthPrefixed(lifetime_->Serialize());
  if (quantiles_ != nullptr) {
    payload.PutLengthPrefixed(quantiles_->Serialize());
  }
  if (distinct_ != nullptr) payload.PutLengthPrefixed(distinct_->Serialize());
  return WrapFrame(kStreamMagic, kStreamVersion, payload.bytes());
}

Result<ManagedStream> ManagedStream::Restore(std::string_view bytes) {
  STREAMHIST_ASSIGN_OR_RETURN(FrameView frame,
                              UnwrapFrame(bytes, kStreamMagic, "stream"));
  // v1 snapshots (pre-BUILD-mode) stay loadable per the EXPERIMENTS.md
  // version policy; they get the config defaults for the new fields.
  if (frame.version != 1 && frame.version != kStreamVersion) {
    return Status::InvalidArgument("unsupported stream snapshot version");
  }
  ByteReader reader(frame.payload);
  StreamConfig config;
  int64_t dropped = 0;
  std::string_view window_bytes;
  if (!reader.ReadI64(&config.window_size) ||
      !reader.ReadI64(&config.num_buckets) ||
      !reader.ReadF64(&config.epsilon) ||
      !reader.ReadBool(&config.keep_lifetime_histogram) ||
      !reader.ReadBool(&config.keep_quantiles) ||
      !reader.ReadF64(&config.quantile_epsilon) ||
      !reader.ReadBool(&config.keep_distinct)) {
    return Status::InvalidArgument("truncated stream snapshot");
  }
  if (frame.version >= 2) {
    bool approx = false;
    if (!reader.ReadBool(&approx) || !reader.ReadF64(&config.build_delta)) {
      return Status::InvalidArgument("truncated stream snapshot");
    }
    config.build_mode =
        approx ? WindowBuildMode::kApprox : WindowBuildMode::kExact;
  }
  if (!reader.ReadI64(&dropped) ||
      !reader.ReadLengthPrefixed(&window_bytes)) {
    return Status::InvalidArgument("truncated stream snapshot");
  }
  if (dropped < 0) {
    return Status::InvalidArgument("stream drop counter violates invariants");
  }
  // Create() re-validates the config through every synopsis factory; the
  // freshly built synopses are then replaced by the deserialized ones.
  STREAMHIST_ASSIGN_OR_RETURN(ManagedStream stream, Create(config));
  stream.dropped_nonfinite_ = dropped;

  STREAMHIST_ASSIGN_OR_RETURN(FixedWindowHistogram window,
                              FixedWindowHistogram::Deserialize(window_bytes));
  if (window.options().window_size != config.window_size ||
      window.options().num_buckets != config.num_buckets) {
    return Status::InvalidArgument(
        "window synopsis disagrees with stream config");
  }
  *stream.window_ = std::move(window);

  if (config.keep_lifetime_histogram) {
    std::string_view sub;
    if (!reader.ReadLengthPrefixed(&sub)) {
      return Status::InvalidArgument("truncated lifetime histogram snapshot");
    }
    STREAMHIST_ASSIGN_OR_RETURN(AgglomerativeHistogram lifetime,
                                AgglomerativeHistogram::Deserialize(sub));
    *stream.lifetime_ = std::move(lifetime);
  }
  if (config.keep_quantiles) {
    std::string_view sub;
    if (!reader.ReadLengthPrefixed(&sub)) {
      return Status::InvalidArgument("truncated quantile snapshot");
    }
    STREAMHIST_ASSIGN_OR_RETURN(GKSummary quantiles,
                                GKSummary::Deserialize(sub));
    *stream.quantiles_ = std::move(quantiles);
  }
  if (config.keep_distinct) {
    std::string_view sub;
    if (!reader.ReadLengthPrefixed(&sub)) {
      return Status::InvalidArgument("truncated distinct-sketch snapshot");
    }
    STREAMHIST_ASSIGN_OR_RETURN(FMSketch distinct, FMSketch::Deserialize(sub));
    *stream.distinct_ = std::move(distinct);
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after stream snapshot");
  }
  return stream;
}

}  // namespace streamhist
