#include "src/engine/managed_stream.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <utility>
#include <vector>

#include "src/core/approx_dp.h"
#include "src/core/vopt_dp.h"
#include "src/core/vopt_kernel.h"
#include "src/util/framing.h"
#include "src/util/governor.h"
#include "src/util/logging.h"

namespace streamhist {

int64_t DefaultPublishStalenessMillis() {
  static const int64_t cached = [] {
    const char* env = std::getenv("STREAMHIST_PUBLISH_STALENESS_MS");
    if (env == nullptr) return int64_t{0};
    char* end = nullptr;
    const long long parsed = std::strtoll(env, &end, 10);
    if (end == env || *end != '\0' || parsed < 0) return int64_t{0};
    return static_cast<int64_t>(parsed);
  }();
  return cached;
}

WindowSection::WindowSection(Histogram histogram,
                             std::vector<double> bucket_errors,
                             double approx_error)
    : histogram_(std::move(histogram)),
      bucket_errors_(std::move(bucket_errors)),
      approx_error_(approx_error) {
  ready_.store(true, std::memory_order_release);
}

WindowSection::WindowSection(const FixedWindowOptions& options,
                             std::vector<double> contents)
    : options_(options), frozen_(std::move(contents)) {}

void WindowSection::Materialize() const {
  if (ready_.load(std::memory_order_acquire)) return;
  const std::lock_guard<std::mutex> lock(mu_);
  if (ready_.load(std::memory_order_relaxed)) return;
  FixedWindowHistogram fw =
      FixedWindowHistogram::FromContents(options_, frozen_);
  approx_error_ = fw.ApproxError();
  histogram_ = fw.Extract();
  bucket_errors_ = fw.BucketErrors();
  frozen_.clear();
  frozen_.shrink_to_fit();
  ready_.store(true, std::memory_order_release);
}

const Histogram& WindowSection::histogram() const {
  Materialize();
  return histogram_;
}

const std::vector<double>& WindowSection::bucket_errors() const {
  Materialize();
  return bucket_errors_;
}

double WindowSection::approx_error() const {
  Materialize();
  return approx_error_;
}

const std::string& QuerySnapshot::describe() const {
  if (!describe_ready_.load(std::memory_order_acquire)) {
    const std::lock_guard<std::mutex> lock(describe_mu_);
    if (!describe_ready_.load(std::memory_order_relaxed)) {
      // Byte-identical to the pre-PR8 eager DESCRIBE line, composed from
      // the frozen seed instead of the live synopses.
      std::ostringstream os;
      os << total_points << " points seen; window " << window_size << "/"
         << describe_seed.window_capacity << ", B=" << describe_seed.num_buckets
         << ", eps=" << describe_seed.epsilon
         << ", window error=" << approx_error();
      if (describe_seed.build_approx) {
        os << "; build=approx(delta=" << describe_seed.build_delta << ")";
      } else {
        os << "; build=exact";
      }
      if (describe_seed.has_lifetime) {
        os << "; lifetime error=" << describe_seed.lifetime_error;
      }
      if (quantiles != nullptr && quantiles->size() > 0) {
        os << "; p50=" << quantiles->Quantile(0.5);
      }
      if (has_distinct) {
        os << "; ~" << static_cast<int64_t>(distinct_estimate)
           << " distinct values";
      }
      os << "; " << dropped_nonfinite << " non-finite dropped";
      if (describe_seed.wal_lsn > 0) {
        os << "; wal lsn=" << describe_seed.wal_lsn;
      }
      if (describe_seed.degraded_builds > 0) {
        os << "; degraded builds=" << describe_seed.degraded_builds;
        if (!describe_seed.last_degradation.empty()) {
          os << "; last build: " << describe_seed.last_degradation;
        }
      }
      describe_ = os.str();
      describe_ready_.store(true, std::memory_order_release);
    }
  }
  return describe_;
}

// Mutated only under the stream's writer mutex (PublishStats inside is
// additionally safe to read from any thread).
struct ManagedStream::PublishState {
  PublishStats stats;
  // Change tracking since the last publish: which sections must be rebuilt
  // versus shared with the previous snapshot (copy-on-write).
  bool window_changed = true;
  bool quantiles_changed = true;
  int64_t fm_mutations_at_publish = -1;
  double cached_distinct = 0.0;
  std::shared_ptr<const WindowSection> last_window;
  std::shared_ptr<const GKSummary> last_quantiles;
  // Coalescing: set when a committed batch is not yet published.
  bool dirty = false;
  std::chrono::steady_clock::time_point dirty_since{};
};

const char* BuildRungName(BuildRung rung) {
  switch (rung) {
    case BuildRung::kExact:
      return "exact";
    case BuildRung::kApprox:
      return "approx";
    case BuildRung::kSnapshot:
      return "snapshot";
  }
  return "unknown";
}

std::string DegradationReport::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < attempts.size(); ++i) {
    if (i > 0) os << " -> ";
    const Attempt& a = attempts[i];
    os << BuildRungName(a.rung);
    if (a.rung == BuildRung::kApprox) {
      os << "(delta=" << a.delta << ")";
    } else if (a.rung == BuildRung::kSnapshot) {
      os << "(eps=" << a.delta << ")";
    }
    if (!a.completed) os << "[" << a.reason << "]";
  }
  return os.str();
}

Result<ManagedStream> ManagedStream::Create(const StreamConfig& config) {
  if (!std::isfinite(config.build_delta) || config.build_delta < 0.0) {
    return Status::InvalidArgument("build_delta must be finite and >= 0");
  }
  FixedWindowOptions window_options;
  window_options.window_size = config.window_size;
  window_options.num_buckets = config.num_buckets;
  window_options.epsilon = config.epsilon;
  window_options.rebuild_on_append = false;  // queries trigger rebuilds
  STREAMHIST_ASSIGN_OR_RETURN(FixedWindowHistogram window,
                              FixedWindowHistogram::Create(window_options));

  ManagedStream stream(config, std::move(window));
  if (stream.config_.publish_staleness_ms < 0) {
    stream.config_.publish_staleness_ms = DefaultPublishStalenessMillis();
  }
  if (config.keep_lifetime_histogram) {
    ApproxHistogramOptions lifetime_options;
    lifetime_options.num_buckets = config.num_buckets;
    lifetime_options.epsilon = config.epsilon;
    STREAMHIST_ASSIGN_OR_RETURN(AgglomerativeHistogram lifetime,
                                AgglomerativeHistogram::Create(lifetime_options));
    stream.lifetime_ =
        std::make_unique<AgglomerativeHistogram>(std::move(lifetime));
  }
  if (config.keep_quantiles) {
    STREAMHIST_ASSIGN_OR_RETURN(GKSummary summary,
                                GKSummary::Create(config.quantile_epsilon));
    stream.quantiles_ = std::make_unique<GKSummary>(std::move(summary));
  }
  if (config.keep_distinct) {
    STREAMHIST_ASSIGN_OR_RETURN(FMSketch sketch, FMSketch::Create(256));
    stream.distinct_ = std::make_unique<FMSketch>(std::move(sketch));
  }
  stream.ReconcileGovernorCharge();
  stream.PublishSnapshot();
  return stream;
}

ManagedStream::ManagedStream(const StreamConfig& config,
                             FixedWindowHistogram window)
    : config_(config),
      window_(std::make_unique<FixedWindowHistogram>(std::move(window))),
      snapshot_cell_(std::make_shared<SnapshotCell<QuerySnapshot>>()),
      stats_(std::make_unique<QueryStats>()),
      publish_(std::make_unique<PublishState>()) {}

ManagedStream::ManagedStream(ManagedStream&& other) noexcept
    : config_(other.config_),
      dropped_nonfinite_(other.dropped_nonfinite_),
      degraded_builds_(other.degraded_builds_),
      wal_lsn_(other.wal_lsn_),
      charged_bytes_(std::exchange(other.charged_bytes_, 0)),
      publish_version_(other.publish_version_),
      last_degradation_(std::move(other.last_degradation_)),
      window_(std::move(other.window_)),
      lifetime_(std::move(other.lifetime_)),
      quantiles_(std::move(other.quantiles_)),
      distinct_(std::move(other.distinct_)),
      snapshot_cell_(std::move(other.snapshot_cell_)),
      stats_(std::move(other.stats_)),
      publish_(std::move(other.publish_)) {}

ManagedStream& ManagedStream::operator=(ManagedStream&& other) noexcept {
  if (this == &other) return *this;
  ReleaseGovernorCharge();
  config_ = other.config_;
  dropped_nonfinite_ = other.dropped_nonfinite_;
  degraded_builds_ = other.degraded_builds_;
  wal_lsn_ = other.wal_lsn_;
  charged_bytes_ = std::exchange(other.charged_bytes_, 0);
  publish_version_ = other.publish_version_;
  last_degradation_ = std::move(other.last_degradation_);
  window_ = std::move(other.window_);
  lifetime_ = std::move(other.lifetime_);
  quantiles_ = std::move(other.quantiles_);
  distinct_ = std::move(other.distinct_);
  snapshot_cell_ = std::move(other.snapshot_cell_);
  stats_ = std::move(other.stats_);
  publish_ = std::move(other.publish_);
  return *this;
}

ManagedStream::~ManagedStream() { ReleaseGovernorCharge(); }

void ManagedStream::AppendValue(double value) {
  if (!std::isfinite(value)) {
    ++dropped_nonfinite_;
    return;
  }
  window_->Append(value);
  publish_->window_changed = true;
  if (lifetime_ != nullptr) lifetime_->Append(value);
  if (quantiles_ != nullptr) {
    quantiles_->Insert(value);
    publish_->quantiles_changed = true;
  }
  if (distinct_ != nullptr) distinct_->AddValue(value);
}

void ManagedStream::Append(double value) {
  AppendValue(value);
  ReconcileGovernorCharge();
}

void ManagedStream::AppendBatch(std::span<const double> values) {
  for (double v : values) AppendValue(v);
  ReconcileGovernorCharge();
}

int64_t ManagedStream::CommitAppendBatch(std::span<const double> values) {
  const int64_t dropped_before = dropped_nonfinite_;
  for (double v : values) AppendValue(v);
  ReconcileGovernorCharge();
  PublishState& ps = *publish_;
  const auto now = std::chrono::steady_clock::now();
  if (!ps.dirty) {
    ps.dirty = true;
    ps.dirty_since = now;
  }
  const int64_t bound_ms = publish_staleness_ms();
  if (bound_ms <= 0 ||
      now - ps.dirty_since >= std::chrono::milliseconds(bound_ms)) {
    PublishSnapshot();
  } else {
    ps.stats.RecordSkipped();
  }
  return dropped_nonfinite_ - dropped_before;
}

bool ManagedStream::FlushIfDirty() {
  if (!publish_->dirty) return false;
  PublishSnapshot();
  return true;
}

bool ManagedStream::PublishPending() const { return publish_->dirty; }

PublishStats& ManagedStream::publish_stats() { return publish_->stats; }
const PublishStats& ManagedStream::publish_stats() const {
  return publish_->stats;
}

void ManagedStream::Refresh() {
  window_->ApproxError();   // rebuilds the interval structure when stale
  (void)window_->Extract();  // materializes (and caches) the histogram
  ReconcileGovernorCharge();
}

int64_t ManagedStream::total_points() const {
  return window_->window().total_appended();
}

int64_t ManagedStream::MemoryBytes() const {
  int64_t bytes = static_cast<int64_t>(sizeof(ManagedStream));
  if (window_ != nullptr) bytes += window_->MemoryBytes();
  if (lifetime_ != nullptr) bytes += lifetime_->MemoryBytes();
  if (quantiles_ != nullptr) bytes += quantiles_->MemoryBytes();
  if (distinct_ != nullptr) bytes += distinct_->MemoryBytes();
  return bytes;
}

int64_t ManagedStream::EstimateFootprintBytes(const StreamConfig& config) {
  const int64_t n = std::max<int64_t>(config.window_size, 1);
  const int64_t b = std::max<int64_t>(config.num_buckets, 1);
  // Sliding window: the value ring plus two long-double cumulative arrays.
  int64_t bytes = n * 8 + 2 * (n + 1) * 16;
  // Fixed-window memo table and epoch stamps: (B+1) * (n+1) slots.
  bytes += (b + 1) * (n + 1) * (16 + 4);
  // Interval lists, GK summary, FM sketch, lifetime queues: these are the
  // logarithmic-size synopses; a flat allowance covers their steady state.
  bytes += 64 * 1024;
  return bytes;
}

void ManagedStream::ReconcileGovernorCharge() {
  const int64_t now = MemoryBytes();
  governor::AdjustCharge(now - charged_bytes_);
  charged_bytes_ = now;
}

void ManagedStream::ReleaseGovernorCharge() {
  if (charged_bytes_ != 0) {
    governor::Release(charged_bytes_);
    charged_bytes_ = 0;
  }
}

Status ManagedStream::SetBuildMode(WindowBuildMode mode, double delta) {
  if (mode == WindowBuildMode::kApprox &&
      (!std::isfinite(delta) || delta < 0.0)) {
    return Status::InvalidArgument("build delta must be finite and >= 0");
  }
  config_.build_mode = mode;
  if (mode == WindowBuildMode::kApprox) config_.build_delta = delta;
  return Status::OK();
}

namespace {

// Scratch footprint of the approximate DP: the prefix-sum arrays plus the
// contents copy dominate; the sparse endpoint queues are O((B^2/delta) log n)
// and negligible next to them.
int64_t ApproxDpScratchBytes(int64_t n) {
  return 3 * (n + 1) * static_cast<int64_t>(sizeof(long double)) + n * 8;
}

double ElapsedMillis(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

WindowBuildReport ManagedStream::BuildWindowHistogram(
    const Deadline& deadline) {
  const std::vector<double> contents = window_->window().ToVector();
  const int64_t n = static_cast<int64_t>(contents.size());

  WindowBuildReport report;
  report.mode = config_.build_mode;
  report.points = n;

  // Rung plan: the configured mode's rung first, then the approximate DP at
  // escalating standard slacks (only those strictly looser than the
  // configured one), then the maintained snapshot, which cannot fail.
  struct PlannedRung {
    BuildRung rung;
    double delta;
  };
  std::vector<PlannedRung> plan;
  if (config_.build_mode == WindowBuildMode::kExact) {
    plan.push_back({BuildRung::kExact, 0.0});
  } else {
    plan.push_back({BuildRung::kApprox, config_.build_delta});
  }
  for (double d : {0.01, 0.1, 0.5}) {
    if (config_.build_mode == WindowBuildMode::kApprox &&
        d <= config_.build_delta) {
      continue;
    }
    plan.push_back({BuildRung::kApprox, d});
  }
  plan.push_back({BuildRung::kSnapshot, config_.epsilon});

  bool completed = false;
  for (const PlannedRung& rung : plan) {
    DegradationReport::Attempt attempt;
    attempt.rung = rung.rung;
    attempt.delta = rung.delta;
    const auto start = std::chrono::steady_clock::now();
    auto finish = [&](bool ok, std::string reason) {
      attempt.elapsed_ms = ElapsedMillis(start);
      attempt.completed = ok;
      attempt.reason = std::move(reason);
      report.degradation.attempts.push_back(std::move(attempt));
    };

    if (rung.rung == BuildRung::kSnapshot) {
      // The continuously-maintained window histogram: no scratch tables, no
      // rebuild from raw points, no deadline consultation — this rung always
      // terminates, which is what makes the ladder total. Its (1+epsilon)
      // certificate is the fixed-window maintenance guarantee.
      report.histogram = window_->Extract();
      double sse = 0.0;
      for (double e : window_->BucketErrors()) sse += e;
      report.sse = sse;
      report.bound_factor = 1.0 + config_.epsilon;
      report.rung = rung.rung;
      report.delta = rung.delta;
      finish(true, "");
      completed = true;
      break;
    }

    const int64_t scratch = rung.rung == BuildRung::kExact
                                ? vopt_internal::DpScratchBytes(
                                      n, config_.num_buckets)
                                : ApproxDpScratchBytes(n);
    governor::ScopedCharge charge(scratch);
    if (!charge.ok()) {
      finish(false, "memory governor refused " + std::to_string(scratch) +
                        " bytes of DP scratch");
      continue;
    }
    ExecContext ctx(deadline);
    if (ctx.ShouldStop()) {
      finish(false, "deadline expired before start");
      continue;
    }
    if (rung.rung == BuildRung::kExact) {
      Result<OptimalHistogramResult> exact = BuildVOptimalHistogramCancellable(
          contents, config_.num_buckets, ctx);
      if (!exact.ok()) {
        finish(false, exact.status().message());
        continue;
      }
      OptimalHistogramResult r = std::move(exact).value();
      report.histogram = std::move(r.histogram);
      report.sse = r.error;
      report.bound_factor = 1.0;
    } else {
      Result<ApproxHistogramResult> approx =
          BuildApproxVOptimalHistogramCancellable(contents, config_.num_buckets,
                                                  rung.delta, ctx);
      if (!approx.ok()) {
        finish(false, approx.status().message());
        continue;
      }
      ApproxHistogramResult r = std::move(approx).value();
      report.histogram = std::move(r.histogram);
      report.sse = r.sse;
      report.bound_factor = r.bound_factor;
    }
    report.rung = rung.rung;
    report.delta = rung.delta;
    finish(true, "");
    completed = true;
    break;
  }
  STREAMHIST_CHECK(completed) << "degradation ladder fell through";

  report.degradation.degraded = report.degradation.attempts.size() > 1;
  if (report.degradation.degraded) ++degraded_builds_;
  last_degradation_ = report.degradation;
  return report;
}

std::string ManagedStream::Describe() {
  std::ostringstream os;
  os << total_points() << " points seen; window " << window_->window().size()
     << "/" << config_.window_size << ", B=" << config_.num_buckets
     << ", eps=" << config_.epsilon
     << ", window error=" << window_->ApproxError();
  if (config_.build_mode == WindowBuildMode::kApprox) {
    os << "; build=approx(delta=" << config_.build_delta << ")";
  } else {
    os << "; build=exact";
  }
  if (lifetime_ != nullptr) {
    os << "; lifetime error=" << lifetime_->ApproxError();
  }
  if (quantiles_ != nullptr && quantiles_->size() > 0) {
    os << "; p50=" << quantiles_->Quantile(0.5);
  }
  if (distinct_ != nullptr) {
    os << "; ~" << static_cast<int64_t>(distinct_->EstimateDistinct())
       << " distinct values";
  }
  os << "; " << dropped_nonfinite_ << " non-finite dropped";
  if (wal_lsn_ > 0) os << "; wal lsn=" << wal_lsn_;
  if (degraded_builds_ > 0) {
    os << "; degraded builds=" << degraded_builds_;
    if (last_degradation_.degraded) {
      os << "; last build: " << last_degradation_.ToString();
    }
  }
  return os.str();
}

void ManagedStream::PublishSnapshot() {
  const auto start = std::chrono::steady_clock::now();
  PublishState& ps = *publish_;
  auto snap = std::make_shared<QuerySnapshot>();
  snap->version = ++publish_version_;
  snap->total_points = total_points();
  snap->window_size = window_->window().size();
  snap->dropped_nonfinite = dropped_nonfinite_;

  if (!ps.window_changed && ps.last_window != nullptr) {
    snap->window = ps.last_window;  // unchanged since last publish: share
  } else if (window_->HasCurrentHistogram()) {
    // Refresh/BUILD already paid for the rebuild — adopt it eagerly.
    snap->window = std::make_shared<const WindowSection>(
        window_->Extract(), window_->BucketErrors(), window_->ApproxError());
  } else {
    // Freeze the contents; the first histogram accessor materializes. This
    // is what keeps the publish path O(window) instead of O(rebuild).
    snap->window = std::make_shared<const WindowSection>(
        window_->options(), window_->window().ToVector());
  }
  ps.last_window = snap->window;
  ps.window_changed = false;

  if (quantiles_ != nullptr) {
    if (!ps.quantiles_changed && ps.last_quantiles != nullptr) {
      snap->quantiles = ps.last_quantiles;
    } else {
      snap->quantiles = std::make_shared<const GKSummary>(*quantiles_);
    }
    ps.last_quantiles = snap->quantiles;
    ps.quantiles_changed = false;
  }

  if (distinct_ != nullptr) {
    snap->has_distinct = true;
    const int64_t mutations = distinct_->mutations();
    if (mutations != ps.fm_mutations_at_publish) {
      ps.cached_distinct = distinct_->EstimateDistinct();
      ps.fm_mutations_at_publish = mutations;
    }
    snap->distinct_estimate = ps.cached_distinct;
  }

  QuerySnapshot::DescribeSeed& seed = snap->describe_seed;
  seed.window_capacity = config_.window_size;
  seed.num_buckets = config_.num_buckets;
  seed.epsilon = config_.epsilon;
  seed.build_approx = config_.build_mode == WindowBuildMode::kApprox;
  seed.build_delta = config_.build_delta;
  if (lifetime_ != nullptr) {
    seed.has_lifetime = true;
    seed.lifetime_error = lifetime_->ApproxError();  // O(1): maintained bound
  }
  seed.wal_lsn = wal_lsn_;
  seed.degraded_builds = degraded_builds_;
  if (degraded_builds_ > 0 && last_degradation_.degraded) {
    seed.last_degradation = last_degradation_.ToString();
  }

  int64_t staleness_us = 0;
  if (ps.dirty) {
    staleness_us = std::chrono::duration_cast<std::chrono::microseconds>(
                       start - ps.dirty_since)
                       .count();
    ps.dirty = false;
  }

  snapshot_cell_->Publish(std::move(snap));
  ReconcileGovernorCharge();
  const auto end = std::chrono::steady_clock::now();
  ps.stats.RecordPublish(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count(),
      staleness_us);
}

std::shared_ptr<const QuerySnapshot> ManagedStream::AcquireSnapshot() const {
  return snapshot_cell_->Acquire();
}

namespace {
constexpr uint32_t kStreamMagic = 0x53484D53;  // "SHMS"
// v1: config through keep_distinct + dropped + synopsis blobs.
// v2: adds build_mode (bool: approx?) + build_delta after keep_distinct.
// v3: adds degraded_builds after dropped_nonfinite.
// v4: appends a length-prefixed per-verb stats block (stream_stats.h) after
//     the synopsis blobs — strictly at the tail, so every v1-v3 field keeps
//     its byte offset.
// v5: appends the stream's applied WAL LSN (i64) after the stats block —
//     again strictly at the tail. v1-v4 snapshots restore with LSN 0,
//     which makes recovery replay the whole retained log against them
//     (idempotent-safe: see query_engine.cc replay filtering).
// v6: appends a length-prefixed publication-stats block (PublishStats,
//     stream_stats.h) after the WAL LSN — strictly at the tail. v1-v5
//     snapshots restore with zeroed publication telemetry.
constexpr uint32_t kStreamVersion = 6;
}  // namespace

std::string ManagedStream::Snapshot(int64_t wal_lsn_floor) const {
  ByteWriter payload;
  payload.PutI64(config_.window_size);
  payload.PutI64(config_.num_buckets);
  payload.PutF64(config_.epsilon);
  payload.PutBool(config_.keep_lifetime_histogram);
  payload.PutBool(config_.keep_quantiles);
  payload.PutF64(config_.quantile_epsilon);
  payload.PutBool(config_.keep_distinct);
  payload.PutBool(config_.build_mode == WindowBuildMode::kApprox);
  payload.PutF64(config_.build_delta);
  payload.PutI64(dropped_nonfinite_);
  payload.PutI64(degraded_builds_);
  payload.PutLengthPrefixed(window_->Serialize());
  if (lifetime_ != nullptr) payload.PutLengthPrefixed(lifetime_->Serialize());
  if (quantiles_ != nullptr) {
    payload.PutLengthPrefixed(quantiles_->Serialize());
  }
  if (distinct_ != nullptr) payload.PutLengthPrefixed(distinct_->Serialize());
  payload.PutLengthPrefixed(stats_->Serialize());
  payload.PutI64(std::max(wal_lsn_, wal_lsn_floor));
  payload.PutLengthPrefixed(publish_->stats.Serialize());
  return WrapFrame(kStreamMagic, kStreamVersion, payload.bytes());
}

Result<ManagedStream> ManagedStream::Restore(std::string_view bytes) {
  STREAMHIST_ASSIGN_OR_RETURN(FrameView frame,
                              UnwrapFrame(bytes, kStreamMagic, "stream"));
  // Older snapshots stay loadable per the EXPERIMENTS.md version policy;
  // fields they predate get zero / config defaults.
  if (frame.version < 1 || frame.version > kStreamVersion) {
    return Status::InvalidArgument("unsupported stream snapshot version");
  }
  ByteReader reader(frame.payload);
  StreamConfig config;
  int64_t dropped = 0;
  int64_t degraded_builds = 0;
  std::string_view window_bytes;
  if (!reader.ReadI64(&config.window_size) ||
      !reader.ReadI64(&config.num_buckets) ||
      !reader.ReadF64(&config.epsilon) ||
      !reader.ReadBool(&config.keep_lifetime_histogram) ||
      !reader.ReadBool(&config.keep_quantiles) ||
      !reader.ReadF64(&config.quantile_epsilon) ||
      !reader.ReadBool(&config.keep_distinct)) {
    return Status::InvalidArgument("truncated stream snapshot");
  }
  if (frame.version >= 2) {
    bool approx = false;
    if (!reader.ReadBool(&approx) || !reader.ReadF64(&config.build_delta)) {
      return Status::InvalidArgument("truncated stream snapshot");
    }
    config.build_mode =
        approx ? WindowBuildMode::kApprox : WindowBuildMode::kExact;
  }
  if (!reader.ReadI64(&dropped)) {
    return Status::InvalidArgument("truncated stream snapshot");
  }
  if (frame.version >= 3 && !reader.ReadI64(&degraded_builds)) {
    return Status::InvalidArgument("truncated stream snapshot");
  }
  if (!reader.ReadLengthPrefixed(&window_bytes)) {
    return Status::InvalidArgument("truncated stream snapshot");
  }
  if (dropped < 0 || degraded_builds < 0) {
    return Status::InvalidArgument("stream counters violate invariants");
  }
  // Create() re-validates the config through every synopsis factory; the
  // freshly built synopses are then replaced by the deserialized ones.
  STREAMHIST_ASSIGN_OR_RETURN(ManagedStream stream, Create(config));
  stream.dropped_nonfinite_ = dropped;
  stream.degraded_builds_ = degraded_builds;

  STREAMHIST_ASSIGN_OR_RETURN(FixedWindowHistogram window,
                              FixedWindowHistogram::Deserialize(window_bytes));
  if (window.options().window_size != config.window_size ||
      window.options().num_buckets != config.num_buckets) {
    return Status::InvalidArgument(
        "window synopsis disagrees with stream config");
  }
  *stream.window_ = std::move(window);

  if (config.keep_lifetime_histogram) {
    std::string_view sub;
    if (!reader.ReadLengthPrefixed(&sub)) {
      return Status::InvalidArgument("truncated lifetime histogram snapshot");
    }
    STREAMHIST_ASSIGN_OR_RETURN(AgglomerativeHistogram lifetime,
                                AgglomerativeHistogram::Deserialize(sub));
    *stream.lifetime_ = std::move(lifetime);
  }
  if (config.keep_quantiles) {
    std::string_view sub;
    if (!reader.ReadLengthPrefixed(&sub)) {
      return Status::InvalidArgument("truncated quantile snapshot");
    }
    STREAMHIST_ASSIGN_OR_RETURN(GKSummary quantiles,
                                GKSummary::Deserialize(sub));
    *stream.quantiles_ = std::move(quantiles);
  }
  if (config.keep_distinct) {
    std::string_view sub;
    if (!reader.ReadLengthPrefixed(&sub)) {
      return Status::InvalidArgument("truncated distinct-sketch snapshot");
    }
    STREAMHIST_ASSIGN_OR_RETURN(FMSketch distinct, FMSketch::Deserialize(sub));
    *stream.distinct_ = std::move(distinct);
  }
  if (frame.version >= 4) {
    std::string_view sub;
    if (!reader.ReadLengthPrefixed(&sub)) {
      return Status::InvalidArgument("truncated stats snapshot");
    }
    if (Status s = stream.stats_->Deserialize(sub); !s.ok()) return s;
  }
  if (frame.version >= 5) {
    int64_t wal_lsn = 0;
    if (!reader.ReadI64(&wal_lsn)) {
      return Status::InvalidArgument("truncated stream snapshot");
    }
    if (wal_lsn < 0) {
      return Status::InvalidArgument("stream counters violate invariants");
    }
    stream.wal_lsn_ = wal_lsn;
  }
  if (frame.version >= 6) {
    std::string_view sub;
    if (!reader.ReadLengthPrefixed(&sub)) {
      return Status::InvalidArgument("truncated publish-stats snapshot");
    }
    if (Status s = stream.publish_->stats.Deserialize(sub); !s.ok()) return s;
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after stream snapshot");
  }
  stream.ReconcileGovernorCharge();
  // The synopses just changed under the snapshot Create() published (and
  // Create's publish cleared the change flags) — re-mark every section
  // changed and republish so readers see the restored state, not the empty
  // one.
  stream.publish_->window_changed = true;
  stream.publish_->quantiles_changed = true;
  stream.publish_->fm_mutations_at_publish = -1;
  stream.PublishSnapshot();
  return stream;
}

}  // namespace streamhist
