#include "src/engine/managed_stream.h"

#include <sstream>
#include <utility>

namespace streamhist {

Result<ManagedStream> ManagedStream::Create(const StreamConfig& config) {
  FixedWindowOptions window_options;
  window_options.window_size = config.window_size;
  window_options.num_buckets = config.num_buckets;
  window_options.epsilon = config.epsilon;
  window_options.rebuild_on_append = false;  // queries trigger rebuilds
  STREAMHIST_ASSIGN_OR_RETURN(FixedWindowHistogram window,
                              FixedWindowHistogram::Create(window_options));

  ManagedStream stream(config, std::move(window));
  if (config.keep_lifetime_histogram) {
    ApproxHistogramOptions lifetime_options;
    lifetime_options.num_buckets = config.num_buckets;
    lifetime_options.epsilon = config.epsilon;
    STREAMHIST_ASSIGN_OR_RETURN(AgglomerativeHistogram lifetime,
                                AgglomerativeHistogram::Create(lifetime_options));
    stream.lifetime_ =
        std::make_unique<AgglomerativeHistogram>(std::move(lifetime));
  }
  if (config.keep_quantiles) {
    STREAMHIST_ASSIGN_OR_RETURN(GKSummary summary,
                                GKSummary::Create(config.quantile_epsilon));
    stream.quantiles_ = std::make_unique<GKSummary>(std::move(summary));
  }
  if (config.keep_distinct) {
    STREAMHIST_ASSIGN_OR_RETURN(FMSketch sketch, FMSketch::Create(256));
    stream.distinct_ = std::make_unique<FMSketch>(std::move(sketch));
  }
  return stream;
}

ManagedStream::ManagedStream(const StreamConfig& config,
                             FixedWindowHistogram window)
    : config_(config),
      window_(std::make_unique<FixedWindowHistogram>(std::move(window))) {}

void ManagedStream::Append(double value) {
  window_->Append(value);
  if (lifetime_ != nullptr) lifetime_->Append(value);
  if (quantiles_ != nullptr) quantiles_->Insert(value);
  if (distinct_ != nullptr) distinct_->AddValue(value);
}

void ManagedStream::AppendBatch(std::span<const double> values) {
  for (double v : values) Append(v);
}

void ManagedStream::Refresh() {
  window_->ApproxError();   // rebuilds the interval structure when stale
  (void)window_->Extract();  // materializes (and caches) the histogram
}

int64_t ManagedStream::total_points() const {
  return window_->window().total_appended();
}

std::string ManagedStream::Describe() {
  std::ostringstream os;
  os << total_points() << " points seen; window " << window_->window().size()
     << "/" << config_.window_size << ", B=" << config_.num_buckets
     << ", eps=" << config_.epsilon
     << ", window error=" << window_->ApproxError();
  if (lifetime_ != nullptr) {
    os << "; lifetime error=" << lifetime_->ApproxError();
  }
  if (quantiles_ != nullptr && quantiles_->size() > 0) {
    os << "; p50=" << quantiles_->Quantile(0.5);
  }
  if (distinct_ != nullptr) {
    os << "; ~" << static_cast<int64_t>(distinct_->EstimateDistinct())
       << " distinct values";
  }
  return os.str();
}

}  // namespace streamhist
