#ifndef STREAMHIST_ENGINE_MANAGED_STREAM_H_
#define STREAMHIST_ENGINE_MANAGED_STREAM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/agglomerative.h"
#include "src/core/fixed_window.h"
#include "src/core/histogram.h"
#include "src/engine/stream_stats.h"
#include "src/quantile/gk_summary.h"
#include "src/sketch/fm_sketch.h"
#include "src/util/deadline.h"
#include "src/util/result.h"
#include "src/util/snapshot.h"

namespace streamhist {

/// How offline window construction (BUILD queries) runs for a stream: the
/// exact O(n^2 B) V-optimal DP, or the paper's (1+delta)-approximate
/// interval-pruned DP (core/approx_dp.h).
enum class WindowBuildMode : uint8_t { kExact = 0, kApprox = 1 };

/// One rung of the degradation ladder BuildWindowHistogram descends when a
/// deadline expires or the memory governor refuses DP scratch: the exact DP,
/// the approximate DP (with escalating delta), and finally the continuously
/// maintained fixed-window snapshot, which needs no scratch and no rebuild
/// and therefore always terminates.
enum class BuildRung : uint8_t { kExact = 0, kApprox = 1, kSnapshot = 2 };

/// Stable lowercase name ("exact", "approx", "snapshot").
const char* BuildRungName(BuildRung rung);

/// Which synopses a managed stream maintains; the fixed-window histogram is
/// always on (it is the primary query surface).
struct StreamConfig {
  /// Sliding-window length for the fixed-window histogram.
  int64_t window_size = 1024;
  /// Bucket budget for both histograms.
  int64_t num_buckets = 16;
  /// Approximation slack for both histograms.
  double epsilon = 0.1;
  /// Maintain a whole-stream AgglomerativeHistogram as well.
  bool keep_lifetime_histogram = true;
  /// Maintain a GK quantile summary of the value distribution.
  bool keep_quantiles = true;
  /// Rank slack of the quantile summary.
  double quantile_epsilon = 0.01;
  /// Maintain an FM distinct-values sketch.
  bool keep_distinct = true;
  /// Construction mode for BUILD queries over the window contents.
  WindowBuildMode build_mode = WindowBuildMode::kExact;
  /// Per-layer slack of the approximate offline DP when build_mode is
  /// kApprox: the realized SSE is certified <= (1+build_delta)^(B-1) * OPT.
  /// Must be finite and >= 0.
  double build_delta = 0.1;
  /// Snapshot-publication staleness bound in milliseconds (DESIGN.md §13):
  /// 0 publishes on every committed batch (strictest, the effective
  /// default); > 0 lets CommitAppendBatch coalesce publications, with the
  /// engine's flusher guaranteeing no acked value stays reader-invisible
  /// longer than the bound; < 0 defers to the process-wide default from
  /// STREAMHIST_PUBLISH_STALENESS_MS (itself 0 when unset). Operational
  /// knob, in-memory only: never serialized and never WAL-logged, so it can
  /// be tuned per process without a format change.
  int64_t publish_staleness_ms = -1;
};

/// The process default for StreamConfig::publish_staleness_ms — the value of
/// STREAMHIST_PUBLISH_STALENESS_MS, parsed once, 0 when unset or malformed.
int64_t DefaultPublishStalenessMillis();

/// How one BUILD descended (or did not descend) the degradation ladder: one
/// attempt per rung tried, in order, each with its wall-clock share and —
/// when it did not complete — the reason it was abandoned. The final attempt
/// always completed; the ladder's last rung cannot fail.
struct DegradationReport {
  struct Attempt {
    BuildRung rung = BuildRung::kExact;
    /// Approx slack for kApprox; snapshot epsilon for kSnapshot; 0 for exact.
    double delta = 0.0;
    double elapsed_ms = 0.0;
    bool completed = false;
    std::string reason;  // empty when completed
  };
  std::vector<Attempt> attempts;
  /// True when the first planned rung was not the one that completed.
  bool degraded = false;

  /// "exact[deadline expired] -> approx(delta=0.01)" style one-liner.
  std::string ToString() const;
};

/// Result of one offline BUILD over a stream's current window contents.
struct WindowBuildReport {
  WindowBuildMode mode = WindowBuildMode::kExact;
  /// The rung that produced `histogram` (matches `mode` unless degraded).
  BuildRung rung = BuildRung::kExact;
  double delta = 0.0;  // slack of the producing rung (see DegradationReport)
  int64_t points = 0;  // window length at build time
  Histogram histogram;
  double sse = 0.0;           // realized SSE of `histogram`
  double bound_factor = 1.0;  // certified sse <= bound_factor * OPT
  DegradationReport degradation;
};

/// The window-histogram section of a QuerySnapshot: the extracted (1+eps)-
/// approximate histogram, its per-bucket SSEs, and the certified HERROR
/// bound. The section is immutable to callers and shared across snapshots
/// whose window contents did not change (copy-on-write publication).
///
/// Materialization is lazy: the publish path freezes an O(n) copy of the
/// window contents instead of paying the O((B^3/eps^2) log^3 n) interval
/// rebuild per publish, and the first accessor call rebuilds from the
/// frozen copy — so SUM/COUNT/DISTINCT traffic that never touches the
/// histogram never pays for it, and a held snapshot stays answerable from
/// its own frozen contents no matter how far the live window has advanced.
/// When the live window is already materialized (Refresh/BUILD), the
/// section adopts the built histogram eagerly and the frozen copy is
/// skipped. Thread-safe: first-demand materialization is double-checked
/// under an internal mutex; every later read is lock-free.
class WindowSection {
 public:
  /// Eager: adopts an already-materialized histogram.
  WindowSection(Histogram histogram, std::vector<double> bucket_errors,
                double approx_error);

  /// Lazy: freezes `contents` (oldest first); the first accessor call
  /// materializes via FixedWindowHistogram::FromContents.
  WindowSection(const FixedWindowOptions& options,
                std::vector<double> contents);

  /// The extracted histogram; answers SUM/AVG/POINT/SHOW.
  const Histogram& histogram() const;

  /// Exact per-bucket SSEs (the *BOUND verbs' error bars).
  const std::vector<double>& bucket_errors() const;

  /// The window histogram's SSE bound (the ERROR verb's answer).
  double approx_error() const;

 private:
  void Materialize() const;

  FixedWindowOptions options_;
  mutable std::vector<double> frozen_;  // released after materialization
  mutable std::mutex mu_;
  mutable std::atomic<bool> ready_{false};
  mutable Histogram histogram_;
  mutable std::vector<double> bucket_errors_;
  mutable double approx_error_ = 0.0;
};

/// Immutable, atomically-published view of one stream's queryable state —
/// what every estimation verb reads instead of the live (mutating) synopses.
/// A writer publishes a fresh QuerySnapshot through the stream's
/// SnapshotCell; a reader that acquired a version keeps answering from it
/// coherently no matter how many republishes (or a DROP) happen meanwhile.
///
/// The snapshot is sectioned (DESIGN.md §13): cheap counters are plain
/// fields delta-maintained by the writer; the window histogram, the GK
/// summary, and the DESCRIBE line live behind independently ref-counted or
/// lazily-materialized sections, so a republish copy-on-writes only what
/// actually changed and expensive state is computed only on first demand.
/// Lazy accessors are thread-safe and, once materialized, lock-free.
struct QuerySnapshot {
  /// Publish sequence number (1 for the snapshot Create publishes).
  uint64_t version = 0;
  int64_t total_points = 0;
  /// Live points in the window (= capacity once the window has filled).
  int64_t window_size = 0;
  int64_t dropped_nonfinite = 0;
  /// Window-histogram section; never null once published. Shared with the
  /// previous snapshot when no append touched the window in between.
  std::shared_ptr<const WindowSection> window;
  /// GK quantile summary at publish time; null when disabled. Shared with
  /// the previous snapshot when no insert happened in between.
  std::shared_ptr<const GKSummary> quantiles;
  /// FM distinct estimate; recomputed at publish only when the sketch's
  /// bitmaps actually changed. Meaningless when !has_distinct.
  bool has_distinct = false;
  double distinct_estimate = 0.0;

  /// Everything the lazy DESCRIBE line needs beyond the fields above,
  /// frozen at publish time.
  struct DescribeSeed {
    int64_t window_capacity = 0;
    int64_t num_buckets = 0;
    double epsilon = 0.0;
    bool build_approx = false;
    double build_delta = 0.0;
    bool has_lifetime = false;
    double lifetime_error = 0.0;
    int64_t wal_lsn = 0;
    int64_t degraded_builds = 0;
    std::string last_degradation;  // empty when no degraded build yet
  };
  DescribeSeed describe_seed;

  /// Compatibility read surface over the sections.
  double approx_error() const { return window->approx_error(); }
  const Histogram& histogram() const { return window->histogram(); }
  const std::vector<double>& bucket_errors() const {
    return window->bucket_errors();
  }

  /// The DESCRIBE line, composed (and cached) on first demand — string
  /// formatting left the publish hot path with PR8.
  const std::string& describe() const;

 private:
  mutable std::mutex describe_mu_;
  mutable std::atomic<bool> describe_ready_{false};
  mutable std::string describe_;
};

/// One named data stream with its continuously-maintained synopses — the
/// paper's deployment picture (section 1): a network element's measurement
/// stream that must stay queryable without being stored.
///
/// Every stream keeps its synopsis footprint charged with the process-wide
/// memory governor (util/governor.h); the charge follows the synopses as
/// they grow and is released on destruction.
class ManagedStream {
 public:
  /// Validates the config (delegates to the synopsis factories).
  static Result<ManagedStream> Create(const StreamConfig& config);

  ManagedStream(ManagedStream&& other) noexcept;
  ManagedStream& operator=(ManagedStream&& other) noexcept;
  ~ManagedStream();

  /// Feeds one point to every maintained synopsis. Non-finite values
  /// (NaN/Inf) are quarantined — counted in dropped_nonfinite() and fed to
  /// nothing — because a single NaN would irreversibly poison every
  /// prefix-sum and SSE downstream.
  void Append(double value);

  /// Feeds a batch (synopses rebuild lazily, so batches are cheap). Does
  /// NOT publish — callers that need reader visibility use
  /// CommitAppendBatch (policy-driven) or PublishSnapshot (unconditional).
  void AppendBatch(std::span<const double> values);

  /// The engine's append core: feeds the batch, then runs the publication
  /// policy — staleness bound 0 publishes immediately (per-batch, the
  /// default); a positive bound coalesces, publishing only once the oldest
  /// unpublished append has aged past the bound (the engine's flusher
  /// closes the gap when the writer goes quiet). Caller holds the stream's
  /// writer mutex. Returns the number of values quarantined as non-finite.
  int64_t CommitAppendBatch(std::span<const double> values);

  /// Publishes a fresh snapshot iff committed appends are still
  /// unpublished; returns whether a publish ran. The flusher thread, the
  /// FLUSH verb, and SAVE all land here. Caller holds the writer mutex.
  bool FlushIfDirty();

  /// True when committed appends are not yet reader-visible.
  bool PublishPending() const;

  /// Effective staleness bound in milliseconds (config, with < 0 resolved
  /// against DefaultPublishStalenessMillis() at Create).
  int64_t publish_staleness_ms() const {
    return config_.publish_staleness_ms;
  }

  /// Tunes the bound at runtime (values < 0 clamp to 0: strict per-batch).
  void set_publish_staleness_ms(int64_t ms) {
    config_.publish_staleness_ms = ms < 0 ? 0 : ms;
  }

  /// Publication telemetry: publishes, coalesced skips, max staleness,
  /// publish latency histogram (thread-safe; SHMS v6 checkpoint tail).
  PublishStats& publish_stats();
  const PublishStats& publish_stats() const;

  /// Forces the lazily-maintained window histogram current: rebuilds the
  /// interval structure and materializes the extracted histogram, so
  /// subsequent queries are lookup-only. Touches only this stream's state —
  /// safe to run concurrently across *different* streams, which is what
  /// QueryEngine::RefreshAll exploits.
  void Refresh();

  /// Total points seen over the stream's lifetime.
  int64_t total_points() const;

  const StreamConfig& config() const { return config_; }

  /// The sliding-window histogram (always present).
  FixedWindowHistogram& window_histogram() { return *window_; }

  /// Lifetime histogram; null when disabled.
  AgglomerativeHistogram* lifetime_histogram() { return lifetime_.get(); }

  /// Value-quantile summary; null when disabled.
  const GKSummary* quantiles() const { return quantiles_.get(); }

  /// Distinct-values sketch; null when disabled.
  const FMSketch* distinct() const { return distinct_.get(); }

  /// Points rejected by Append because they were NaN or infinite.
  int64_t dropped_nonfinite() const { return dropped_nonfinite_; }

  /// BUILDs (over the stream's lifetime, surviving checkpoints) that had to
  /// descend below their first planned ladder rung.
  int64_t degraded_builds() const { return degraded_builds_; }

  /// Highest WAL LSN applied to this stream's synopses (0 when the stream
  /// never ran under a WAL). The engine's log-before-apply ordering keeps
  /// the setter under the stream's writer mutex; recovery replays only
  /// records above it. Carried in the SHMS v5 snapshot tail.
  int64_t wal_lsn() const { return wal_lsn_; }
  void set_wal_lsn(int64_t lsn) { wal_lsn_ = lsn; }

  /// Approximate bytes held by this stream's synopses (what the stream has
  /// charged with the memory governor).
  int64_t MemoryBytes() const;

  /// Steady-state footprint estimate for a stream with this config — the
  /// admission check CREATE runs against the memory budget before any
  /// allocation happens.
  static int64_t EstimateFootprintBytes(const StreamConfig& config);

  /// Changes the offline construction mode for subsequent BUILD queries
  /// (serialized into snapshots). `delta` is ignored under kExact; under
  /// kApprox it must be finite and >= 0.
  Status SetBuildMode(WindowBuildMode mode, double delta);

  /// Offline V-optimal construction over the current window contents,
  /// bounded in time and memory by the degradation ladder:
  ///
  ///   exact DP  ->  approx DP (delta escalating 0.01 -> 0.1 -> 0.5)
  ///             ->  maintained fixed-window snapshot
  ///
  /// starting at the configured mode's rung. A rung is skipped when the
  /// deadline has expired (cancelling it mid-sweep at the next grain
  /// boundary) or the memory governor refuses its scratch tables; the
  /// snapshot rung needs neither and always completes, so the call always
  /// terminates with a histogram plus a certified error bound — exact: 1x
  /// OPT, approx: (1+delta)^(B-1) x OPT, snapshot: (1+epsilon) x OPT — and a
  /// truthful DegradationReport. With no deadline and an unconstrained
  /// governor the first rung runs to completion and its result is
  /// bit-identical to the pre-ladder builds across thread counts.
  WindowBuildReport BuildWindowHistogram(
      const Deadline& deadline = Deadline::Infinite());

  /// One-line status ("n=1024 window, 16 buckets, 120000 points seen, ...").
  std::string Describe();

  /// Publishes a fresh QuerySnapshot of everything queryable,
  /// unconditionally. Sections whose backing synopsis did not change since
  /// the last publish are shared (copy-on-write), the window section is
  /// frozen for lazy materialization unless already built, the distinct
  /// estimate is recomputed only when the FM bitmaps changed, and DESCRIBE
  /// is composed on first demand — nothing here rebuilds the window. Runs
  /// under the stream's writer mutex; between publishes, readers keep
  /// answering from the previous version. Also reconciles the governor
  /// charge.
  void PublishSnapshot();

  /// The latest published QuerySnapshot — never null (Create and Restore
  /// both publish an initial version). Lock-free; callable from any thread.
  std::shared_ptr<const QuerySnapshot> AcquireSnapshot() const;

  /// Per-verb execution counters for this stream (thread-safe to record
  /// into; carried through SHMS v4 checkpoints).
  QueryStats& stats() { return *stats_; }
  const QueryStats& stats() const { return *stats_; }

  /// Serializes the config plus every maintained synopsis as one framed,
  /// CRC-protected blob — the unit of engine checkpoints. A restored stream
  /// answers every query identically and ingests future points identically.
  /// `wal_lsn_floor` raises the serialized WAL LSN (the engine's checkpoint
  /// protocol stores max(wal_lsn(), global WAL high-water) — see
  /// query_engine.cc); pass 0 for a plain snapshot.
  std::string Snapshot(int64_t wal_lsn_floor = 0) const;

  /// Inverse of Snapshot; validates structure and never aborts on hostile
  /// bytes.
  static Result<ManagedStream> Restore(std::string_view bytes);

 private:
  ManagedStream(const StreamConfig& config, FixedWindowHistogram window);

  // Append without the governor reconcile (batched by AppendBatch).
  void AppendValue(double value);
  // Brings the governor charge in line with MemoryBytes().
  void ReconcileGovernorCharge();
  void ReleaseGovernorCharge();

  StreamConfig config_;
  int64_t dropped_nonfinite_ = 0;
  int64_t degraded_builds_ = 0;
  int64_t wal_lsn_ = 0;
  int64_t charged_bytes_ = 0;  // currently charged with the governor
  uint64_t publish_version_ = 0;
  DegradationReport last_degradation_;
  // unique_ptr keeps the type movable despite the large synopsis states.
  std::unique_ptr<FixedWindowHistogram> window_;
  std::unique_ptr<AgglomerativeHistogram> lifetime_;
  std::unique_ptr<GKSummary> quantiles_;
  std::unique_ptr<FMSketch> distinct_;
  // shared_ptr (not unique_ptr): readers may still hold the cell's address
  // via a StreamHandle while the owning registry entry is being destroyed,
  // and the indirection keeps the cell's address stable across moves.
  std::shared_ptr<SnapshotCell<QuerySnapshot>> snapshot_cell_;
  // Atomics inside; the indirection keeps the stream movable.
  std::unique_ptr<QueryStats> stats_;
  // Change tracking, COW section caches, coalescing state, and publish
  // telemetry — mutated only under the stream's writer mutex. Behind
  // unique_ptr (the telemetry's atomics) to keep the stream movable.
  struct PublishState;
  std::unique_ptr<PublishState> publish_;
};

}  // namespace streamhist

#endif  // STREAMHIST_ENGINE_MANAGED_STREAM_H_
