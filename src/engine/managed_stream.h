#ifndef STREAMHIST_ENGINE_MANAGED_STREAM_H_
#define STREAMHIST_ENGINE_MANAGED_STREAM_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "src/core/agglomerative.h"
#include "src/core/fixed_window.h"
#include "src/core/histogram.h"
#include "src/quantile/gk_summary.h"
#include "src/sketch/fm_sketch.h"
#include "src/util/result.h"

namespace streamhist {

/// How offline window construction (BUILD queries) runs for a stream: the
/// exact O(n^2 B) V-optimal DP, or the paper's (1+delta)-approximate
/// interval-pruned DP (core/approx_dp.h).
enum class WindowBuildMode : uint8_t { kExact = 0, kApprox = 1 };

/// Which synopses a managed stream maintains; the fixed-window histogram is
/// always on (it is the primary query surface).
struct StreamConfig {
  /// Sliding-window length for the fixed-window histogram.
  int64_t window_size = 1024;
  /// Bucket budget for both histograms.
  int64_t num_buckets = 16;
  /// Approximation slack for both histograms.
  double epsilon = 0.1;
  /// Maintain a whole-stream AgglomerativeHistogram as well.
  bool keep_lifetime_histogram = true;
  /// Maintain a GK quantile summary of the value distribution.
  bool keep_quantiles = true;
  /// Rank slack of the quantile summary.
  double quantile_epsilon = 0.01;
  /// Maintain an FM distinct-values sketch.
  bool keep_distinct = true;
  /// Construction mode for BUILD queries over the window contents.
  WindowBuildMode build_mode = WindowBuildMode::kExact;
  /// Per-layer slack of the approximate offline DP when build_mode is
  /// kApprox: the realized SSE is certified <= (1+build_delta)^(B-1) * OPT.
  /// Must be finite and >= 0.
  double build_delta = 0.1;
};

/// Result of one offline BUILD over a stream's current window contents.
struct WindowBuildReport {
  WindowBuildMode mode = WindowBuildMode::kExact;
  double delta = 0.0;  // the slack used (meaningful under kApprox)
  int64_t points = 0;  // window length at build time
  Histogram histogram;
  double sse = 0.0;           // realized SSE of `histogram`
  double bound_factor = 1.0;  // certified sse <= bound_factor * OPT
};

/// One named data stream with its continuously-maintained synopses — the
/// paper's deployment picture (section 1): a network element's measurement
/// stream that must stay queryable without being stored.
class ManagedStream {
 public:
  /// Validates the config (delegates to the synopsis factories).
  static Result<ManagedStream> Create(const StreamConfig& config);

  /// Feeds one point to every maintained synopsis. Non-finite values
  /// (NaN/Inf) are quarantined — counted in dropped_nonfinite() and fed to
  /// nothing — because a single NaN would irreversibly poison every
  /// prefix-sum and SSE downstream.
  void Append(double value);

  /// Feeds a batch (synopses rebuild lazily, so batches are cheap).
  void AppendBatch(std::span<const double> values);

  /// Forces the lazily-maintained window histogram current: rebuilds the
  /// interval structure and materializes the extracted histogram, so
  /// subsequent queries are lookup-only. Touches only this stream's state —
  /// safe to run concurrently across *different* streams, which is what
  /// QueryEngine::RefreshAll exploits.
  void Refresh();

  /// Total points seen over the stream's lifetime.
  int64_t total_points() const;

  const StreamConfig& config() const { return config_; }

  /// The sliding-window histogram (always present).
  FixedWindowHistogram& window_histogram() { return *window_; }

  /// Lifetime histogram; null when disabled.
  AgglomerativeHistogram* lifetime_histogram() { return lifetime_.get(); }

  /// Value-quantile summary; null when disabled.
  const GKSummary* quantiles() const { return quantiles_.get(); }

  /// Distinct-values sketch; null when disabled.
  const FMSketch* distinct() const { return distinct_.get(); }

  /// Points rejected by Append because they were NaN or infinite.
  int64_t dropped_nonfinite() const { return dropped_nonfinite_; }

  /// Changes the offline construction mode for subsequent BUILD queries
  /// (serialized into snapshots). `delta` is ignored under kExact; under
  /// kApprox it must be finite and >= 0.
  Status SetBuildMode(WindowBuildMode mode, double delta);

  /// Offline V-optimal construction over the current window contents using
  /// the configured mode: the exact DP (core/vopt_dp.h) or the
  /// (1+delta)-approximate interval-pruned DP (core/approx_dp.h). Unlike the
  /// continuously-maintained window histogram, this touches every window
  /// point — it is the "rebuild from scratch" comparison surface of the
  /// paper's evaluation, made queryable.
  WindowBuildReport BuildWindowHistogram() const;

  /// One-line status ("n=1024 window, 16 buckets, 120000 points seen, ...").
  std::string Describe();

  /// Serializes the config plus every maintained synopsis as one framed,
  /// CRC-protected blob — the unit of engine checkpoints. A restored stream
  /// answers every query identically and ingests future points identically.
  std::string Snapshot() const;

  /// Inverse of Snapshot; validates structure and never aborts on hostile
  /// bytes.
  static Result<ManagedStream> Restore(std::string_view bytes);

 private:
  ManagedStream(const StreamConfig& config, FixedWindowHistogram window);

  StreamConfig config_;
  int64_t dropped_nonfinite_ = 0;
  // unique_ptr keeps the type movable despite the large synopsis states.
  std::unique_ptr<FixedWindowHistogram> window_;
  std::unique_ptr<AgglomerativeHistogram> lifetime_;
  std::unique_ptr<GKSummary> quantiles_;
  std::unique_ptr<FMSketch> distinct_;
};

}  // namespace streamhist

#endif  // STREAMHIST_ENGINE_MANAGED_STREAM_H_
