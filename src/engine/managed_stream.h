#ifndef STREAMHIST_ENGINE_MANAGED_STREAM_H_
#define STREAMHIST_ENGINE_MANAGED_STREAM_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/agglomerative.h"
#include "src/core/fixed_window.h"
#include "src/core/histogram.h"
#include "src/engine/stream_stats.h"
#include "src/quantile/gk_summary.h"
#include "src/sketch/fm_sketch.h"
#include "src/util/deadline.h"
#include "src/util/result.h"
#include "src/util/snapshot.h"

namespace streamhist {

/// How offline window construction (BUILD queries) runs for a stream: the
/// exact O(n^2 B) V-optimal DP, or the paper's (1+delta)-approximate
/// interval-pruned DP (core/approx_dp.h).
enum class WindowBuildMode : uint8_t { kExact = 0, kApprox = 1 };

/// One rung of the degradation ladder BuildWindowHistogram descends when a
/// deadline expires or the memory governor refuses DP scratch: the exact DP,
/// the approximate DP (with escalating delta), and finally the continuously
/// maintained fixed-window snapshot, which needs no scratch and no rebuild
/// and therefore always terminates.
enum class BuildRung : uint8_t { kExact = 0, kApprox = 1, kSnapshot = 2 };

/// Stable lowercase name ("exact", "approx", "snapshot").
const char* BuildRungName(BuildRung rung);

/// Which synopses a managed stream maintains; the fixed-window histogram is
/// always on (it is the primary query surface).
struct StreamConfig {
  /// Sliding-window length for the fixed-window histogram.
  int64_t window_size = 1024;
  /// Bucket budget for both histograms.
  int64_t num_buckets = 16;
  /// Approximation slack for both histograms.
  double epsilon = 0.1;
  /// Maintain a whole-stream AgglomerativeHistogram as well.
  bool keep_lifetime_histogram = true;
  /// Maintain a GK quantile summary of the value distribution.
  bool keep_quantiles = true;
  /// Rank slack of the quantile summary.
  double quantile_epsilon = 0.01;
  /// Maintain an FM distinct-values sketch.
  bool keep_distinct = true;
  /// Construction mode for BUILD queries over the window contents.
  WindowBuildMode build_mode = WindowBuildMode::kExact;
  /// Per-layer slack of the approximate offline DP when build_mode is
  /// kApprox: the realized SSE is certified <= (1+build_delta)^(B-1) * OPT.
  /// Must be finite and >= 0.
  double build_delta = 0.1;
};

/// How one BUILD descended (or did not descend) the degradation ladder: one
/// attempt per rung tried, in order, each with its wall-clock share and —
/// when it did not complete — the reason it was abandoned. The final attempt
/// always completed; the ladder's last rung cannot fail.
struct DegradationReport {
  struct Attempt {
    BuildRung rung = BuildRung::kExact;
    /// Approx slack for kApprox; snapshot epsilon for kSnapshot; 0 for exact.
    double delta = 0.0;
    double elapsed_ms = 0.0;
    bool completed = false;
    std::string reason;  // empty when completed
  };
  std::vector<Attempt> attempts;
  /// True when the first planned rung was not the one that completed.
  bool degraded = false;

  /// "exact[deadline expired] -> approx(delta=0.01)" style one-liner.
  std::string ToString() const;
};

/// Result of one offline BUILD over a stream's current window contents.
struct WindowBuildReport {
  WindowBuildMode mode = WindowBuildMode::kExact;
  /// The rung that produced `histogram` (matches `mode` unless degraded).
  BuildRung rung = BuildRung::kExact;
  double delta = 0.0;  // slack of the producing rung (see DegradationReport)
  int64_t points = 0;  // window length at build time
  Histogram histogram;
  double sse = 0.0;           // realized SSE of `histogram`
  double bound_factor = 1.0;  // certified sse <= bound_factor * OPT
  DegradationReport degradation;
};

/// Immutable, atomically-published view of one stream's queryable state —
/// what every estimation verb reads instead of the live (mutating) synopses.
/// A writer builds a fresh QuerySnapshot after each mutation and publishes
/// it through the stream's SnapshotCell; a reader that acquired a version
/// keeps answering from it coherently no matter how many republishes (or a
/// DROP) happen meanwhile. All fields are plain values or pointers to
/// const, precomputed at publish time, so reads are lock-free lookups.
struct QuerySnapshot {
  /// Publish sequence number (1 for the snapshot Create publishes).
  uint64_t version = 0;
  int64_t total_points = 0;
  /// Live points in the window (= capacity once the window has filled).
  int64_t window_size = 0;
  int64_t dropped_nonfinite = 0;
  /// The window histogram's SSE bound (the ERROR verb's answer).
  double approx_error = 0.0;
  /// The extracted (1+eps)-approximate window histogram; answers
  /// SUM/AVG/POINT and, with `bucket_errors`, the *BOUND verbs.
  Histogram histogram;
  std::vector<double> bucket_errors;
  /// Copy of the GK quantile summary at publish time; null when disabled.
  std::shared_ptr<const GKSummary> quantiles;
  /// FM distinct estimate, precomputed; meaningless when !has_distinct.
  bool has_distinct = false;
  double distinct_estimate = 0.0;
  /// The DESCRIBE line at publish time.
  std::string describe;
};

/// One named data stream with its continuously-maintained synopses — the
/// paper's deployment picture (section 1): a network element's measurement
/// stream that must stay queryable without being stored.
///
/// Every stream keeps its synopsis footprint charged with the process-wide
/// memory governor (util/governor.h); the charge follows the synopses as
/// they grow and is released on destruction.
class ManagedStream {
 public:
  /// Validates the config (delegates to the synopsis factories).
  static Result<ManagedStream> Create(const StreamConfig& config);

  ManagedStream(ManagedStream&& other) noexcept;
  ManagedStream& operator=(ManagedStream&& other) noexcept;
  ~ManagedStream();

  /// Feeds one point to every maintained synopsis. Non-finite values
  /// (NaN/Inf) are quarantined — counted in dropped_nonfinite() and fed to
  /// nothing — because a single NaN would irreversibly poison every
  /// prefix-sum and SSE downstream.
  void Append(double value);

  /// Feeds a batch (synopses rebuild lazily, so batches are cheap).
  void AppendBatch(std::span<const double> values);

  /// Forces the lazily-maintained window histogram current: rebuilds the
  /// interval structure and materializes the extracted histogram, so
  /// subsequent queries are lookup-only. Touches only this stream's state —
  /// safe to run concurrently across *different* streams, which is what
  /// QueryEngine::RefreshAll exploits.
  void Refresh();

  /// Total points seen over the stream's lifetime.
  int64_t total_points() const;

  const StreamConfig& config() const { return config_; }

  /// The sliding-window histogram (always present).
  FixedWindowHistogram& window_histogram() { return *window_; }

  /// Lifetime histogram; null when disabled.
  AgglomerativeHistogram* lifetime_histogram() { return lifetime_.get(); }

  /// Value-quantile summary; null when disabled.
  const GKSummary* quantiles() const { return quantiles_.get(); }

  /// Distinct-values sketch; null when disabled.
  const FMSketch* distinct() const { return distinct_.get(); }

  /// Points rejected by Append because they were NaN or infinite.
  int64_t dropped_nonfinite() const { return dropped_nonfinite_; }

  /// BUILDs (over the stream's lifetime, surviving checkpoints) that had to
  /// descend below their first planned ladder rung.
  int64_t degraded_builds() const { return degraded_builds_; }

  /// Highest WAL LSN applied to this stream's synopses (0 when the stream
  /// never ran under a WAL). The engine's log-before-apply ordering keeps
  /// the setter under the stream's writer mutex; recovery replays only
  /// records above it. Carried in the SHMS v5 snapshot tail.
  int64_t wal_lsn() const { return wal_lsn_; }
  void set_wal_lsn(int64_t lsn) { wal_lsn_ = lsn; }

  /// Approximate bytes held by this stream's synopses (what the stream has
  /// charged with the memory governor).
  int64_t MemoryBytes() const;

  /// Steady-state footprint estimate for a stream with this config — the
  /// admission check CREATE runs against the memory budget before any
  /// allocation happens.
  static int64_t EstimateFootprintBytes(const StreamConfig& config);

  /// Changes the offline construction mode for subsequent BUILD queries
  /// (serialized into snapshots). `delta` is ignored under kExact; under
  /// kApprox it must be finite and >= 0.
  Status SetBuildMode(WindowBuildMode mode, double delta);

  /// Offline V-optimal construction over the current window contents,
  /// bounded in time and memory by the degradation ladder:
  ///
  ///   exact DP  ->  approx DP (delta escalating 0.01 -> 0.1 -> 0.5)
  ///             ->  maintained fixed-window snapshot
  ///
  /// starting at the configured mode's rung. A rung is skipped when the
  /// deadline has expired (cancelling it mid-sweep at the next grain
  /// boundary) or the memory governor refuses its scratch tables; the
  /// snapshot rung needs neither and always completes, so the call always
  /// terminates with a histogram plus a certified error bound — exact: 1x
  /// OPT, approx: (1+delta)^(B-1) x OPT, snapshot: (1+epsilon) x OPT — and a
  /// truthful DegradationReport. With no deadline and an unconstrained
  /// governor the first rung runs to completion and its result is
  /// bit-identical to the pre-ladder builds across thread counts.
  WindowBuildReport BuildWindowHistogram(
      const Deadline& deadline = Deadline::Infinite());

  /// One-line status ("n=1024 window, 16 buckets, 120000 points seen, ...").
  std::string Describe();

  /// Rebuilds the lazily-maintained window state and publishes a fresh
  /// QuerySnapshot of everything queryable. The concurrent engine calls this
  /// (under the stream's writer mutex) after every mutating verb; between
  /// publishes, readers keep answering from the previous version. Also
  /// reconciles the governor charge (the rebuild can grow the synopses).
  void PublishSnapshot();

  /// The latest published QuerySnapshot — never null (Create and Restore
  /// both publish an initial version). Lock-free; callable from any thread.
  std::shared_ptr<const QuerySnapshot> AcquireSnapshot() const;

  /// Per-verb execution counters for this stream (thread-safe to record
  /// into; carried through SHMS v4 checkpoints).
  QueryStats& stats() { return *stats_; }
  const QueryStats& stats() const { return *stats_; }

  /// Serializes the config plus every maintained synopsis as one framed,
  /// CRC-protected blob — the unit of engine checkpoints. A restored stream
  /// answers every query identically and ingests future points identically.
  /// `wal_lsn_floor` raises the serialized WAL LSN (the engine's checkpoint
  /// protocol stores max(wal_lsn(), global WAL high-water) — see
  /// query_engine.cc); pass 0 for a plain snapshot.
  std::string Snapshot(int64_t wal_lsn_floor = 0) const;

  /// Inverse of Snapshot; validates structure and never aborts on hostile
  /// bytes.
  static Result<ManagedStream> Restore(std::string_view bytes);

 private:
  ManagedStream(const StreamConfig& config, FixedWindowHistogram window);

  // Append without the governor reconcile (batched by AppendBatch).
  void AppendValue(double value);
  // Brings the governor charge in line with MemoryBytes().
  void ReconcileGovernorCharge();
  void ReleaseGovernorCharge();

  StreamConfig config_;
  int64_t dropped_nonfinite_ = 0;
  int64_t degraded_builds_ = 0;
  int64_t wal_lsn_ = 0;
  int64_t charged_bytes_ = 0;  // currently charged with the governor
  uint64_t publish_version_ = 0;
  DegradationReport last_degradation_;
  // unique_ptr keeps the type movable despite the large synopsis states.
  std::unique_ptr<FixedWindowHistogram> window_;
  std::unique_ptr<AgglomerativeHistogram> lifetime_;
  std::unique_ptr<GKSummary> quantiles_;
  std::unique_ptr<FMSketch> distinct_;
  // shared_ptr (not unique_ptr): readers may still hold the cell's address
  // via a StreamHandle while the owning registry entry is being destroyed,
  // and the indirection keeps the cell's address stable across moves.
  std::shared_ptr<SnapshotCell<QuerySnapshot>> snapshot_cell_;
  // Atomics inside; the indirection keeps the stream movable.
  std::unique_ptr<QueryStats> stats_;
};

}  // namespace streamhist

#endif  // STREAMHIST_ENGINE_MANAGED_STREAM_H_
