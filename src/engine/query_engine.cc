#include "src/engine/query_engine.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cctype>
#include <charconv>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "src/core/error_bounds.h"
#include "src/engine/wal_records.h"
#include "src/util/backoff.h"
#include "src/util/deadline.h"
#include "src/util/fileio.h"
#include "src/util/framing.h"
#include "src/util/governor.h"
#include "src/util/thread_pool.h"

namespace streamhist {

namespace {

std::vector<std::string> Tokenize(const std::string& statement) {
  // Manual whitespace split, byte-for-byte equivalent to `istringstream >>`
  // but several times cheaper — this is the hottest line of Execute, and a
  // stringstream here costs more than the registry lookup, snapshot
  // acquisition, and stats recording of the concurrent core combined.
  std::vector<std::string> tokens;
  tokens.reserve(4);
  const size_t n = statement.size();
  size_t i = 0;
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(statement[i]))) {
      ++i;
    }
    const size_t start = i;
    while (i < n && !std::isspace(static_cast<unsigned char>(statement[i]))) {
      ++i;
    }
    if (i > start) tokens.emplace_back(statement, start, i - start);
  }
  return tokens;
}

std::string ToUpper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

Result<int64_t> ParseInt(const std::string& token) {
  int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return Status::InvalidArgument("expected an integer, got '" + token + "'");
  }
  return value;
}

Result<double> ParseDouble(const std::string& token) {
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size() || token.empty()) {
    return Status::InvalidArgument("expected a number, got '" + token + "'");
  }
  return value;
}

std::string FormatNumber(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

/// Resolves a [lo, hi) window range from "lo hi" or "LAST k" argument forms.
Result<std::pair<int64_t, int64_t>> ParseRange(
    const std::vector<std::string>& tokens, size_t first_arg,
    int64_t window_size) {
  if (tokens.size() == first_arg + 2 &&
      ToUpper(tokens[first_arg]) == "LAST") {
    STREAMHIST_ASSIGN_OR_RETURN(int64_t k, ParseInt(tokens[first_arg + 1]));
    if (k < 1) return Status::InvalidArgument("LAST k requires k >= 1");
    k = std::min(k, window_size);
    return std::make_pair(window_size - k, window_size);
  }
  if (tokens.size() == first_arg + 2) {
    STREAMHIST_ASSIGN_OR_RETURN(int64_t lo, ParseInt(tokens[first_arg]));
    STREAMHIST_ASSIGN_OR_RETURN(int64_t hi, ParseInt(tokens[first_arg + 1]));
    if (!(0 <= lo && lo <= hi && hi <= window_size)) {
      std::ostringstream msg;
      msg << "range [" << lo << "," << hi << ") outside window of size "
          << window_size;
      return Status::OutOfRange(msg.str());
    }
    return std::make_pair(lo, hi);
  }
  return Status::InvalidArgument("expected '<lo> <hi>' or 'LAST <k>'");
}

// Checkpoint container: one SHCP header frame carrying the stream count,
// then one SHST frame per stream (length-prefixed name + snapshot blob).
// Each frame carries its own CRC32C, so corruption is localized to one
// section and the remaining streams still load.
//
// v2 appends the engine's global WAL LSN floor to the header payload — the
// highest log position the image is guaranteed to reflect, and therefore
// the safe truncation horizon. v1 files still load (floor 0).
constexpr uint32_t kCheckpointMagic = 0x53484350;  // "SHCP"
constexpr uint32_t kCheckpointVersion = 1;
constexpr uint32_t kCheckpointVersionWal = 2;
constexpr uint32_t kSectionMagic = 0x53485354;  // "SHST"
constexpr uint32_t kSectionVersion = 1;

// The smallest possible whole frame (16-byte header + CRC trailer). ReadFrame
// advances at least this far only when it consumed a complete frame — the
// signal that resynchronizing on the next section is possible.
constexpr size_t kMinFrameSize = 20;

}  // namespace

// Everything the durable-ingest mode owns: the log itself, the recovery
// report, and the background checkpointer.
struct QueryEngine::WalState {
  std::unique_ptr<wal::Wal> log;
  std::string dir;
  int64_t checkpoint_interval_ms = 0;
  WalRecoveryReport recovery;

  // CREATE/DROP hold this shared around [append the log record, mutate the
  // registry]; a checkpoint holds it exclusive around [read the LSN floor,
  // enumerate handles]. That makes "every create/drop logged at or below
  // the floor is reflected in the enumerated handle set" an invariant — the
  // half of the truncation-safety proof the per-stream writer locks cannot
  // give. Appends don't take it: their log write and apply are already
  // atomic with respect to that stream's serialization via LockWriter().
  std::shared_mutex registry_mu;

  // Serializes WalCheckpointNow against itself (verb vs background thread),
  // so two checkpoints never interleave their write + truncate pairs.
  std::mutex checkpoint_mu;

  std::mutex mu;  // guards stop
  std::condition_variable cv;
  bool stop = false;
  std::thread checkpointer;
  std::atomic<int64_t> checkpoints{0};

  std::string CheckpointPath() const { return dir + "/checkpoint.shcp"; }

  ~WalState() {
    // CloseWal joins on the normal path; this is the backstop so the thread
    // never outlives the state it reads.
    if (checkpointer.joinable()) {
      {
        const std::lock_guard<std::mutex> lk(mu);
        stop = true;
      }
      cv.notify_all();
      checkpointer.join();
    }
  }
};

// The background publisher behind positive staleness bounds (DESIGN.md §13):
// wakes at half the tightest bound any stream was created with and publishes
// every stream with committed-but-unpublished appends. That caps reader
// staleness at the tick (≤ bound/2) even when the writer goes quiet — the
// writer-side policy alone only publishes on the *next* commit.
//
// The thread captures the registry pointer, not the engine: the registry's
// heap address is stable across engine moves. Declared last among the
// engine's members so its joining destructor runs before the registry dies.
struct QueryEngine::FlusherState {
  StreamRegistry* registry = nullptr;
  std::atomic<int64_t> tick_ms{1};

  std::mutex mu;  // guards stop
  std::condition_variable cv;
  bool stop = false;
  std::thread thread;

  ~FlusherState() {
    if (thread.joinable()) {
      {
        const std::lock_guard<std::mutex> lk(mu);
        stop = true;
      }
      cv.notify_all();
      thread.join();
    }
  }
};

// Replication flags and replica-side status (DESIGN.md §14). Allocated
// unconditionally so the hot-path gates (read_only, has_barrier) are plain
// relaxed atomic loads with no null check; the mutex guards the cold fields.
struct QueryEngine::ReplState {
  std::atomic<bool> read_only{false};
  std::atomic<bool> has_barrier{false};
  std::atomic<int64_t> max_lag_ms{0};
  mutable std::mutex mu;  // guards everything below
  ReplicaStatus status;
  ReplicationBarrier barrier;
  std::function<Result<std::string>()> promote;
};

namespace {
int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

void QueryEngine::EnsureFlusher(int64_t bound_ms) {
  if (bound_ms <= 0) return;
  const int64_t tick = std::max<int64_t>(1, bound_ms / 2);
  const std::lock_guard<std::mutex> lock(*flusher_mu_);
  if (flusher_ != nullptr) {
    // A stream with a tighter bound appeared: shrink the cadence. (Relaxed
    // is fine — the thread re-reads the tick every wakeup.)
    int64_t cur = flusher_->tick_ms.load(std::memory_order_relaxed);
    while (tick < cur && !flusher_->tick_ms.compare_exchange_weak(
                             cur, tick, std::memory_order_relaxed)) {
    }
    return;
  }
  flusher_ = std::make_unique<FlusherState>();
  flusher_->registry = registry_.get();
  flusher_->tick_ms.store(tick, std::memory_order_relaxed);
  FlusherState* st = flusher_.get();
  st->thread = std::thread([st] {
    std::unique_lock<std::mutex> lk(st->mu);
    while (!st->stop) {
      st->cv.wait_for(
          lk,
          std::chrono::milliseconds(
              st->tick_ms.load(std::memory_order_relaxed)),
          [&] { return st->stop; });
      if (st->stop) break;
      lk.unlock();
      // The dirty flag lives under the writer mutex, so the check and the
      // publish ride one short critical section per stream. Uncontended
      // locks at millisecond cadence cost the writers nothing measurable.
      for (const StreamHandle& handle : st->registry->Handles()) {
        const auto wlock = handle.LockWriter();
        (void)handle.stream().FlushIfDirty();
      }
      lk.lock();
    }
  });
}

namespace {
// The WAL checkpointer thread captures the engine's `this` (and its
// WalState pointer); moving an engine with an open WAL would leave that
// thread running against a dead shell. The header documents the rule —
// enforce it here rather than trusting the comment.
void AbortIfWalOpen(const void* wal_state) {
  if (wal_state == nullptr) return;
  std::fprintf(stderr,
               "fatal: QueryEngine moved while its WAL is open; "
               "call CloseWal() first\n");
  std::abort();
}
}  // namespace

QueryEngine::QueryEngine() : repl_(std::make_unique<ReplState>()) {}
QueryEngine::~QueryEngine() { (void)CloseWal(); }
QueryEngine::QueryEngine(QueryEngine&& other) noexcept {
  AbortIfWalOpen(other.wal_.get());
  registry_ = std::move(other.registry_);
  engine_stats_ = std::move(other.engine_stats_);
  wal_ = std::move(other.wal_);
  repl_ = std::move(other.repl_);
  flusher_mu_ = std::move(other.flusher_mu_);
  flusher_ = std::move(other.flusher_);
}
QueryEngine& QueryEngine::operator=(QueryEngine&& other) noexcept {
  if (this == &other) return *this;
  AbortIfWalOpen(wal_.get());
  AbortIfWalOpen(other.wal_.get());
  // Join our flusher before the registry it walks is replaced — the
  // defaulted member-order assignment would free the registry first.
  flusher_.reset();
  registry_ = std::move(other.registry_);
  engine_stats_ = std::move(other.engine_stats_);
  wal_ = std::move(other.wal_);
  repl_ = std::move(other.repl_);
  flusher_mu_ = std::move(other.flusher_mu_);
  flusher_ = std::move(other.flusher_);
  return *this;
}

Status QueryEngine::CreateStream(const std::string& name,
                                 const StreamConfig& config) {
  if (repl_->read_only.load(std::memory_order_relaxed)) {
    return Status::ReadOnly(
        "this node is a read replica; CREATE must go to the primary");
  }
  if (name.empty()) return Status::InvalidArgument("stream name is empty");
  if (registry_->Get(name).ok()) {
    return Status::InvalidArgument("stream '" + name + "' already exists");
  }
  // Admission control: refuse up front when the stream's steady-state
  // footprint would bust the memory budget, before anything is allocated.
  // The probe charge is released immediately — the stream itself keeps its
  // *actual* footprint charged as it grows (ManagedStream's reconcile).
  const int64_t estimate = ManagedStream::EstimateFootprintBytes(config);
  if (!governor::TryCharge(estimate)) {
    return Status::ResourceExhausted(
        "memory budget refused stream '" + name + "': estimated " +
        std::to_string(estimate) + " bytes, used " +
        std::to_string(governor::Used()) + ", budget " +
        governor::FormatBytes(governor::Budget()));
  }
  governor::Release(estimate);
  STREAMHIST_ASSIGN_OR_RETURN(ManagedStream stream,
                              ManagedStream::Create(config));
  // Create() resolved the < 0 sentinel against the process default; arm the
  // background flusher when the stream runs with a coalescing bound.
  const int64_t staleness_ms = stream.publish_staleness_ms();
  if (wal_ == nullptr) {
    // Two racing CREATEs of one name both pass the pre-check above; Insert's
    // internal check-and-emplace decides the winner, and the loser's stream
    // destructs (releasing its governor charge) without ever being visible.
    const Status inserted = registry_->Insert(name, std::move(stream));
    if (inserted.ok()) EnsureFlusher(staleness_ms);
    return inserted;
  }
  // Log before insert, both under the checkpoint barrier. A racing dup
  // CREATE may log a second record; replay skips a CREATE whose stream
  // already exists, so the loser's record is inert.
  const std::shared_lock<std::shared_mutex> barrier(wal_->registry_mu);
  STREAMHIST_ASSIGN_OR_RETURN(
      const int64_t lsn,
      wal_->log->Append(walrec::EncodeCreate(name, config)));
  stream.set_wal_lsn(lsn);
  const Status inserted = registry_->Insert(name, std::move(stream));
  if (inserted.ok()) {
    EnsureFlusher(staleness_ms);
    STREAMHIST_RETURN_NOT_OK(RunReplicationBarrier(lsn));
  }
  return inserted;
}

Status QueryEngine::CreateStreamUnlogged(const std::string& name,
                                         const StreamConfig& config,
                                         int64_t wal_lsn) {
  if (name.empty()) return Status::InvalidArgument("stream name is empty");
  if (registry_->Get(name).ok()) {
    return Status::InvalidArgument("stream '" + name + "' already exists");
  }
  // Same admission probe as the logged path: a budget shrunk since the
  // record was written refuses the stream here (dropped by the caller).
  const int64_t estimate = ManagedStream::EstimateFootprintBytes(config);
  if (!governor::TryCharge(estimate)) {
    return Status::ResourceExhausted(
        "memory budget refused stream '" + name + "': estimated " +
        std::to_string(estimate) + " bytes, used " +
        std::to_string(governor::Used()) + ", budget " +
        governor::FormatBytes(governor::Budget()));
  }
  governor::Release(estimate);
  STREAMHIST_ASSIGN_OR_RETURN(ManagedStream stream,
                              ManagedStream::Create(config));
  const int64_t staleness_ms = stream.publish_staleness_ms();
  stream.set_wal_lsn(wal_lsn);
  const Status inserted = registry_->Insert(name, std::move(stream));
  if (inserted.ok()) EnsureFlusher(staleness_ms);
  return inserted;
}

Status QueryEngine::DropStream(const std::string& name) {
  if (repl_->read_only.load(std::memory_order_relaxed)) {
    return Status::ReadOnly(
        "this node is a read replica; DROP must go to the primary");
  }
  if (wal_ == nullptr) return registry_->Erase(name);
  const std::shared_lock<std::shared_mutex> barrier(wal_->registry_mu);
  // Pre-check so dropping a missing stream is not logged. A drop that races
  // in between merely leaves a redundant DROP record (replay no-ops on an
  // absent stream); the reverse — erasing without having logged — is what
  // the order here rules out.
  const Result<StreamHandle> existing = registry_->Get(name);
  if (!existing.ok()) return existing.status();
  STREAMHIST_ASSIGN_OR_RETURN(const int64_t lsn,
                              wal_->log->Append(walrec::EncodeDrop(name)));
  const Status erased = registry_->Erase(name);
  if (erased.ok()) STREAMHIST_RETURN_NOT_OK(RunReplicationBarrier(lsn));
  return erased;
}

Status QueryEngine::LogAppend(const StreamHandle& handle,
                              std::span<const double> values) {
  if (wal_ == nullptr) return Status::OK();
  STREAMHIST_ASSIGN_OR_RETURN(
      const int64_t lsn,
      wal_->log->Append(walrec::EncodeAppend(handle.name(), values)));
  handle.stream().set_wal_lsn(lsn);
  return RunReplicationBarrier(lsn);
}

Result<int64_t> QueryEngine::AppendLocked(const StreamHandle& handle,
                                          std::span<const double> values) {
  if (repl_->read_only.load(std::memory_order_relaxed)) {
    return Status::ReadOnly(
        "this node is a read replica; APPEND must go to the primary");
  }
  const auto lock = handle.LockWriter();
  // Log before apply: an unloggable append is a typed error and the values
  // never enter the stream — the ack implies durability.
  STREAMHIST_RETURN_NOT_OK(LogAppend(handle, values));
  return handle.stream().CommitAppendBatch(values);
}

Status QueryEngine::Append(const std::string& name, double value) {
  const double values[] = {value};
  return AppendBatch(name, values);
}

Status QueryEngine::AppendBatch(const std::string& name,
                                std::span<const double> values) {
  STREAMHIST_ASSIGN_OR_RETURN(StreamHandle handle, Stream(name));
  return AppendLocked(handle, values).status();
}

Status QueryEngine::AppendBatches(std::span<const StreamBatch> batches) {
  // Resolve and validate everything up front so the parallel phase cannot
  // fail and no points are appended on error.
  std::vector<StreamHandle> targets;
  targets.reserve(batches.size());
  std::set<std::string> seen;
  for (const StreamBatch& batch : batches) {
    if (!seen.insert(batch.name).second) {
      return Status::InvalidArgument("duplicate batch for stream '" +
                                     batch.name + "'");
    }
    STREAMHIST_ASSIGN_OR_RETURN(StreamHandle handle, Stream(batch.name));
    targets.push_back(std::move(handle));
  }
  // With a WAL, a batch whose log write fails is not applied — the others
  // stand on their own (each stream's log+apply is atomic under its writer
  // lock), and the first failure is reported.
  std::vector<Status> results(batches.size(), Status::OK());
  ParallelFor(0, static_cast<int64_t>(batches.size()), /*grain=*/1,
              [&](int64_t begin, int64_t end) {
                for (int64_t i = begin; i < end; ++i) {
                  const size_t idx = static_cast<size_t>(i);
                  const Result<int64_t> appended =
                      AppendLocked(targets[idx], batches[idx].values);
                  if (!appended.ok()) results[idx] = appended.status();
                }
              });
  for (const Status& status : results) {
    if (!status.ok()) return status;
  }
  return Status::OK();
}

void QueryEngine::RefreshAll() {
  const std::vector<StreamHandle> targets = registry_->Handles();
  ParallelFor(0, static_cast<int64_t>(targets.size()), /*grain=*/1,
              [&](int64_t begin, int64_t end) {
                for (int64_t i = begin; i < end; ++i) {
                  const StreamHandle& handle = targets[static_cast<size_t>(i)];
                  const auto lock = handle.LockWriter();
                  handle.stream().Refresh();
                  handle.stream().PublishSnapshot();
                }
              });
}

Result<StreamHandle> QueryEngine::Stream(const std::string& name) const {
  return registry_->Get(name);
}

std::vector<std::string> QueryEngine::ListStreams() const {
  return registry_->List();
}

std::string QueryEngine::CheckpointReport::ToString() const {
  std::ostringstream os;
  os << "loaded " << loaded.size() << " stream(s)";
  for (size_t i = 0; i < loaded.size(); ++i) {
    os << (i == 0 ? ": " : " ") << loaded[i];
  }
  if (!dropped.empty()) {
    os << "; dropped " << dropped.size() << ":";
    for (const DroppedStream& d : dropped) {
      os << " " << d.name << " [" << d.reason.ToString() << "]";
    }
  }
  return os.str();
}

namespace {
// Test seam for the save-retry backoff; null means real sleep.
void (*g_backoff_sleeper)(int64_t) = nullptr;
}  // namespace

void QueryEngine::SetBackoffSleeperForTest(void (*sleeper)(int64_t millis)) {
  g_backoff_sleeper = sleeper;
}

Status QueryEngine::SaveCheckpoint(const std::string& path,
                                   SaveReport* report) const {
  return SaveCheckpointInternal(path, report, nullptr);
}

Status QueryEngine::BuildCheckpointImage(std::string* image,
                                         int64_t* wal_floor) const {
  // With a WAL, the LSN floor and the handle enumeration must be one atomic
  // observation: holding registry_mu exclusive means every CREATE/DROP
  // whose record sits at or below the floor has finished its registry
  // mutation and is reflected below. Records above the floor survive
  // truncation and replay instead. Appends need no barrier — an append at
  // LSN <= floor either applied before this stream's serialization (its
  // writer lock orders them) or the stream's own LSN tail exceeds the
  // floor, and Snapshot()'s max(own, floor) covers both.
  int64_t floor = 0;
  std::vector<StreamHandle> handles;
  if (wal_ != nullptr) {
    const std::unique_lock<std::shared_mutex> barrier(wal_->registry_mu);
    floor = wal_->log->next_lsn() - 1;
    handles = registry_->Handles();
  } else {
    handles = registry_->Handles();
  }
  if (wal_floor != nullptr) *wal_floor = floor;
  ByteWriter header;
  header.PutU64(handles.size());
  header.PutU64(static_cast<uint64_t>(floor));
  std::string file = WrapFrame(kCheckpointMagic, kCheckpointVersionWal,
                               header.bytes());
  for (const StreamHandle& handle : handles) {
    // The writer mutex keeps a concurrent APPEND/BUILD from mutating the
    // synopses mid-serialization; each stream is frozen one at a time.
    const auto lock = handle.LockWriter();
    // A checkpoint is also a publication deadline: coalesced appends become
    // reader-visible no later than the state that is about to be durable.
    (void)handle.stream().FlushIfDirty();
    ByteWriter section;
    section.PutLengthPrefixed(handle.name());
    section.PutLengthPrefixed(handle.stream().Snapshot(floor));
    file += WrapFrame(kSectionMagic, kSectionVersion, section.bytes());
  }
  *image = std::move(file);
  return Status::OK();
}

Status QueryEngine::SaveCheckpointInternal(const std::string& path,
                                           SaveReport* report,
                                           int64_t* wal_floor_out) const {
  std::string file;
  STREAMHIST_RETURN_NOT_OK(BuildCheckpointImage(&file, wal_floor_out));
  // The image is immutable from here, so a retry rewrites identical bytes —
  // safe against transient I/O failures (AtomicWriteFile's temp-file
  // discipline means a failed attempt leaves no partial state behind).
  // Default BackoffOptions reproduce the historical 1ms, 2ms schedule.
  Backoff backoff{BackoffOptions{}};
  if (g_backoff_sleeper != nullptr) backoff.set_sleeper(g_backoff_sleeper);
  Status last = Status::OK();
  for (int attempt = 1; attempt <= kSaveAttempts; ++attempt) {
    if (report != nullptr) report->attempts = attempt;
    last = AtomicWriteFile(path, file);
    if (last.ok()) return last;
    if (last.code() != StatusCode::kIOError) return last;  // not transient
    if (attempt < kSaveAttempts) backoff.SleepNext();
  }
  return last;
}

Result<QueryEngine::CheckpointReport> QueryEngine::LoadCheckpoint(
    const std::string& path) {
  if (wal_ == nullptr) return LoadCheckpointFrom(path, nullptr);
  CheckpointReport report;
  {
    // Keep CREATE/DROP out while the registry holds streams whose LSN tails
    // came from a foreign checkpoint and mean nothing against this log.
    const std::unique_lock<std::shared_mutex> barrier(wal_->registry_mu);
    Result<CheckpointReport> loaded = LoadCheckpointFrom(path, nullptr);
    if (!loaded.ok()) return loaded.status();
    report = std::move(*loaded);
    for (const StreamHandle& handle : registry_->Handles()) {
      const auto lock = handle.LockWriter();
      handle.stream().set_wal_lsn(0);
    }
  }
  // Re-anchor durability on the loaded state: checkpoint it into the WAL
  // directory and truncate, so a crash right after LOAD does not replay a
  // stale log over what was just loaded.
  const Status durable = WalCheckpointNow(nullptr);
  if (!durable.ok()) {
    return Status::IOError(
        "checkpoint loaded, but re-anchoring the wal failed: " +
        durable.ToString());
  }
  return report;
}

Result<QueryEngine::CheckpointReport> QueryEngine::LoadCheckpointFrom(
    const std::string& path, int64_t* header_lsn) {
  STREAMHIST_ASSIGN_OR_RETURN(std::string file, ReadFileToString(path));
  return LoadCheckpointFromBytes(file, header_lsn);
}

Result<QueryEngine::CheckpointReport> QueryEngine::LoadCheckpointFromBytes(
    std::string_view file, int64_t* header_lsn) {
  ByteReader reader(file);
  STREAMHIST_ASSIGN_OR_RETURN(
      FrameView header, ReadFrame(reader, kCheckpointMagic, "checkpoint"));
  if (header.version != kCheckpointVersion &&
      header.version != kCheckpointVersionWal) {
    return Status::InvalidArgument("unsupported checkpoint version");
  }
  ByteReader header_reader(header.payload);
  uint64_t declared = 0;
  uint64_t global_lsn = 0;
  if (!header_reader.ReadU64(&declared) ||
      (header.version >= kCheckpointVersionWal &&
       !header_reader.ReadU64(&global_lsn)) ||
      !header_reader.AtEnd()) {
    return Status::InvalidArgument("malformed checkpoint header payload");
  }
  if (header_lsn != nullptr) *header_lsn = static_cast<int64_t>(global_lsn);

  // Everything below is partial recovery: the engine is only touched once
  // parsing is complete, and a bad section costs that one stream.
  CheckpointReport report;
  std::map<std::string, ManagedStream> restored;
  auto drop = [&report](std::string name, Status reason) {
    report.dropped.push_back({std::move(name), std::move(reason)});
  };
  bool structural_loss = false;
  for (uint64_t i = 0; i < declared; ++i) {
    std::string label = "section " + std::to_string(i);
    if (reader.AtEnd()) {
      drop(std::move(label),
           Status::InvalidArgument("checkpoint truncated before this section"));
      continue;
    }
    const size_t before = reader.position();
    Result<FrameView> section = ReadFrame(reader, kSectionMagic, "section");
    if (!section.ok()) {
      drop(std::move(label), section.status());
      // A whole frame was consumed (CRC mismatch): the next section starts
      // right here, so keep going. Anything shorter is structural damage —
      // the next frame boundary is unknowable, so the tail is lost.
      if (reader.position() - before >= kMinFrameSize) continue;
      structural_loss = true;
      for (uint64_t j = i + 1; j < declared; ++j) {
        drop("section " + std::to_string(j),
             Status::InvalidArgument("unreachable after structural damage"));
      }
      break;
    }
    if (section->version != kSectionVersion) {
      drop(std::move(label),
           Status::InvalidArgument("unsupported section version"));
      continue;
    }
    ByteReader section_reader(section->payload);
    std::string_view name_bytes, snapshot_bytes;
    if (!section_reader.ReadLengthPrefixed(&name_bytes) ||
        !section_reader.ReadLengthPrefixed(&snapshot_bytes) ||
        !section_reader.AtEnd()) {
      drop(std::move(label),
           Status::InvalidArgument("malformed stream section payload"));
      continue;
    }
    std::string name(name_bytes);
    if (name.empty()) {
      drop(std::move(label), Status::InvalidArgument("empty stream name"));
      continue;
    }
    Result<ManagedStream> stream = ManagedStream::Restore(snapshot_bytes);
    if (!stream.ok()) {
      drop(std::move(name), stream.status());
      continue;
    }
    if (!restored.emplace(name, std::move(*stream)).second) {
      drop(std::move(name),
           Status::InvalidArgument("duplicate stream name in checkpoint"));
      continue;
    }
    report.loaded.push_back(std::move(name));
  }
  if (!structural_loss && !reader.AtEnd()) {
    drop("(container)",
         Status::InvalidArgument("trailing bytes after final section"));
  }
  registry_->ReplaceAll(std::move(restored));
  // Restored streams re-resolved their staleness bounds through Create();
  // re-arm the flusher for any that came back with a coalescing bound.
  for (const StreamHandle& handle : registry_->Handles()) {
    EnsureFlusher(handle.stream().publish_staleness_ms());
  }
  return report;
}

std::string QueryEngine::WalRecoveryReport::ToString() const {
  std::ostringstream os;
  os << open.ToString() << "; checkpoint: " << checkpoint_summary
     << "; replayed " << records_applied << " record(s), skipped "
     << records_skipped << ", dropped " << records_dropped;
  return os.str();
}

Status QueryEngine::ApplyWalRecord(
    int64_t lsn, std::string_view payload, WalApplyCounters* counters,
    std::map<std::string, StreamHandle>* appended) {
  Result<walrec::Record> record = walrec::Decode(payload);
  if (!record.ok()) {
    ++counters->dropped;
    return Status::OK();
  }
  switch (record->type) {
    case walrec::RecordType::kCreate: {
      // A stream that already exists — from the checkpoint or an earlier
      // replayed CREATE — means this record is a dup-create loser or
      // already reflected; either way it is settled.
      if (registry_->Get(record->name).ok()) {
        ++counters->skipped;
        break;
      }
      // The unlogged form: this record IS the log entry — going through
      // CreateStream would append a second one at a fresh LSN on a replica.
      // It also re-runs governor admission, so a budget shrunk since the
      // record was written refuses the stream here, reported as dropped.
      const Status created =
          CreateStreamUnlogged(record->name, record->config, lsn);
      if (!created.ok()) {
        ++counters->dropped;
        break;
      }
      ++counters->applied;
      break;
    }
    case walrec::RecordType::kAppend: {
      Result<StreamHandle> handle = registry_->Get(record->name);
      if (!handle.ok()) {
        // The stream is dropped later in the log (or its CREATE was
        // itself dropped); this append has no surviving target.
        ++counters->skipped;
        break;
      }
      const auto lock = handle->LockWriter();
      if (handle->stream().wal_lsn() >= lsn) {
        ++counters->skipped;
        break;
      }
      handle->stream().AppendBatch(record->values);
      handle->stream().set_wal_lsn(lsn);
      appended->insert_or_assign(record->name, *handle);
      ++counters->applied;
      break;
    }
    case walrec::RecordType::kDrop: {
      Result<StreamHandle> handle = registry_->Get(record->name);
      if (!handle.ok()) {
        ++counters->skipped;
        break;
      }
      bool superseded = false;
      {
        const auto lock = handle->LockWriter();
        // A tail at or above this LSN means the checkpoint reflects a
        // later re-create of the same name; the drop already happened.
        superseded = handle->stream().wal_lsn() >= lsn;
      }
      if (superseded) {
        ++counters->skipped;
        break;
      }
      (void)registry_->Erase(record->name);
      ++counters->applied;
      break;
    }
  }
  return Status::OK();
}

Result<QueryEngine::WalRecoveryReport> QueryEngine::OpenWal(
    const std::string& dir, const WalConfig& config) {
  if (wal_ != nullptr) {
    return Status::FailedPrecondition("a write-ahead log is already open");
  }
  auto state = std::make_unique<WalState>();
  state->dir = dir;
  state->checkpoint_interval_ms = config.checkpoint_interval_ms;
  WalRecoveryReport recovery;
  STREAMHIST_ASSIGN_OR_RETURN(
      state->log, wal::Wal::Open(dir, config.options, &recovery.open));

  // Seed the registry from the newest checkpoint, when one exists. An
  // unusable checkpoint is NOT fatal — recovery degrades to a cold replay
  // of whatever the log retains. AtomicWriteFile keeps half-written images
  // off disk, so "unusable" means post-write rot, and the loss (if any) is
  // bounded by what was truncated below the bad checkpoint.
  const std::string checkpoint_path = state->CheckpointPath();
  int64_t checkpoint_floor = 0;
  if (::access(checkpoint_path.c_str(), F_OK) == 0) {
    int64_t header_lsn = 0;
    Result<CheckpointReport> loaded =
        LoadCheckpointFrom(checkpoint_path, &header_lsn);
    if (loaded.ok()) {
      recovery.checkpoint_loaded = true;
      recovery.checkpoint_summary = loaded->ToString();
      checkpoint_floor = header_lsn;
    } else {
      recovery.checkpoint_summary =
          "unusable (" + loaded.status().ToString() + ")";
    }
  } else {
    recovery.checkpoint_summary = "none";
  }

  // Replay the retained records above the checkpoint's LSN floor. The floor
  // is load-bearing for creates and drops: a CREATE at or below it may name
  // a stream the checkpoint legitimately does not contain (dropped, or
  // superseded by LOAD's re-anchor), and the per-stream tails cannot veto a
  // record for a stream that does not exist. Segment granularity means
  // truncation alone never guarantees the active segment is floor-free.
  // Above the floor, per-stream LSN tails (SHMS v5) filter out what the
  // checkpoint already reflects; v1-v4 snapshots restored with tail 0
  // simply replay every retained record — idempotence via the filter, not
  // via the records themselves. Failures count as dropped, never abort
  // recovery: a half-usable log still beats an empty engine.
  std::map<std::string, StreamHandle> appended;
  WalApplyCounters counters;
  const wal::Wal::RecordFn apply = [&](int64_t lsn,
                                       std::string_view payload) -> Status {
    return ApplyWalRecord(lsn, payload, &counters, &appended);
  };
  STREAMHIST_RETURN_NOT_OK(
      state->log->Replay(checkpoint_floor + 1, apply, nullptr));
  // A log retaining nothing at or above the checkpoint floor (segments
  // wiped while the checkpoint survived — disk swap, operator cleanup)
  // must not hand out LSNs the checkpoint already covers: the per-stream
  // tails would veto those records on the NEXT recovery and acked writes
  // would silently vanish. Re-anchor the log just past the floor.
  if (state->log->next_lsn() <= checkpoint_floor) {
    STREAMHIST_RETURN_NOT_OK(state->log->AlignNextLsn(checkpoint_floor + 1));
  }
  recovery.records_applied = counters.applied;
  recovery.records_skipped = counters.skipped;
  recovery.records_dropped = counters.dropped;
  for (auto& [name, handle] : appended) {
    const auto lock = handle.LockWriter();
    handle.stream().PublishSnapshot();
  }

  state->recovery = recovery;
  wal_ = std::move(state);
  if (wal_->checkpoint_interval_ms > 0) {
    // The thread captures the WalState pointer directly (stable under the
    // documented no-move-while-open rule) so shutdown via ~WalState is safe.
    wal_->checkpointer = std::thread([this, st = wal_.get()] {
      std::unique_lock<std::mutex> lk(st->mu);
      while (!st->stop) {
        st->cv.wait_for(lk,
                        std::chrono::milliseconds(st->checkpoint_interval_ms),
                        [&] { return st->stop; });
        if (st->stop) break;
        lk.unlock();
        // A failed checkpoint (e.g. disk full) is retried on the next tick;
        // the log keeps growing but loses nothing.
        (void)WalCheckpointNow(nullptr);
        lk.lock();
      }
    });
  }
  return recovery;
}

Status QueryEngine::CloseWal(wal::StatsSnapshot* final_stats) {
  if (wal_ == nullptr) return Status::OK();
  if (wal_->checkpointer.joinable()) {
    {
      const std::lock_guard<std::mutex> lk(wal_->mu);
      wal_->stop = true;
    }
    wal_->cv.notify_all();
    wal_->checkpointer.join();
  }
  const Status flushed = wal_->log->Flush();
  if (final_stats != nullptr) *final_stats = wal_->log->stats();
  wal_.reset();
  return flushed;
}

int64_t QueryEngine::WalDurableLsn() const {
  return wal_ == nullptr ? 0 : wal_->log->durable_lsn();
}

wal::StatsSnapshot QueryEngine::WalStats() const {
  return wal_ == nullptr ? wal::StatsSnapshot{} : wal_->log->stats();
}

QueryEngine::WalRecoveryReport QueryEngine::LastWalRecovery() const {
  return wal_ == nullptr ? WalRecoveryReport{} : wal_->recovery;
}

Status QueryEngine::WalCheckpointNow(std::string* summary) {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("no write-ahead log is open");
  }
  const std::lock_guard<std::mutex> serialize(wal_->checkpoint_mu);
  SaveReport save_report;
  int64_t floor = 0;
  STREAMHIST_RETURN_NOT_OK(
      SaveCheckpointInternal(wal_->CheckpointPath(), &save_report, &floor));
  STREAMHIST_RETURN_NOT_OK(wal_->log->TruncateBefore(floor + 1));
  wal_->checkpoints.fetch_add(1, std::memory_order_relaxed);
  if (summary != nullptr) {
    std::ostringstream os;
    os << "checkpointed " << registry_->size() << " stream(s) to "
       << wal_->CheckpointPath() << "; wal truncated below lsn "
       << (floor + 1);
    *summary = os.str();
  }
  return Status::OK();
}

Status QueryEngine::WalReadTail(wal::TailCursor* cursor, int64_t max_bytes,
                                wal::TailBatch* out) const {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("no write-ahead log is open");
  }
  return wal_->log->ReadTail(cursor, max_bytes, out);
}

bool QueryEngine::WalWaitDurable(int64_t lsn, int64_t timeout_ms) const {
  if (wal_ == nullptr) return false;
  return wal_->log->WaitDurable(lsn, timeout_ms);
}

void QueryEngine::SetReadOnly(bool read_only) {
  repl_->read_only.store(read_only, std::memory_order_relaxed);
}

bool QueryEngine::read_only() const {
  return repl_->read_only.load(std::memory_order_relaxed);
}

void QueryEngine::SetReplicationBarrier(ReplicationBarrier barrier) {
  const std::lock_guard<std::mutex> lock(repl_->mu);
  repl_->barrier = std::move(barrier);
  repl_->has_barrier.store(static_cast<bool>(repl_->barrier),
                           std::memory_order_relaxed);
}

Status QueryEngine::RunReplicationBarrier(int64_t lsn) {
  if (!repl_->has_barrier.load(std::memory_order_relaxed)) {
    return Status::OK();
  }
  ReplicationBarrier barrier;
  {
    const std::lock_guard<std::mutex> lock(repl_->mu);
    barrier = repl_->barrier;
  }
  if (!barrier) return Status::OK();
  // Called with no engine locks that the shipping side needs: CREATE/DROP
  // hold registry_mu shared (the feeder never takes it) and APPEND holds one
  // stream's writer lock, so a semi-sync wait here cannot deadlock shipping.
  return barrier(lsn);
}

void QueryEngine::SetReplicaMaxLagMs(int64_t ms) {
  repl_->max_lag_ms.store(ms, std::memory_order_relaxed);
}

void QueryEngine::SetPromoteHandler(
    std::function<Result<std::string>()> handler) {
  const std::lock_guard<std::mutex> lock(repl_->mu);
  repl_->promote = std::move(handler);
}

void QueryEngine::UpdateReplicaStatus(const ReplicaStatus& status) {
  const std::lock_guard<std::mutex> lock(repl_->mu);
  repl_->status = status;
}

QueryEngine::ReplicaStatus QueryEngine::replica_status() const {
  const std::lock_guard<std::mutex> lock(repl_->mu);
  return repl_->status;
}

Status QueryEngine::CheckReplicaLag() const {
  if (!repl_->read_only.load(std::memory_order_relaxed)) return Status::OK();
  const int64_t bound = repl_->max_lag_ms.load(std::memory_order_relaxed);
  if (bound <= 0) return Status::OK();
  int64_t last_contact_ms = 0;
  {
    const std::lock_guard<std::mutex> lock(repl_->mu);
    last_contact_ms = repl_->status.last_contact_ms;
  }
  // Before the first primary frame there is no lag measurement; recovered
  // local state is served as-is rather than shedding on an unknown.
  if (last_contact_ms == 0) return Status::OK();
  const int64_t lag_ms = SteadyNowMs() - last_contact_ms;
  if (lag_ms <= bound) return Status::OK();
  return Status::Overloaded(
      "replica lag " + std::to_string(lag_ms) + "ms exceeds the " +
      std::to_string(bound) + "ms bound; query the primary or retry later");
}

Status QueryEngine::ApplyReplicatedBatch(
    std::span<const std::pair<int64_t, std::string>> records,
    ReplicatedBatchReport* report) {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "replica apply requires an open write-ahead log (--wal-dir)");
  }
  // Durability first: land every record in the local log at its primary LSN
  // and fsync once, THEN apply. A crash after the fsync replays this batch
  // from the local log on restart; a crash before it resumes shipping from
  // the durable LSN. Records below next_lsn are re-deliveries from a
  // reconnect overlap — already in the local log, so only re-applied (the
  // per-stream LSN veto settles those).
  for (const auto& [lsn, payload] : records) {
    if (lsn >= wal_->log->next_lsn()) {
      STREAMHIST_RETURN_NOT_OK(wal_->log->AppendAt(lsn, payload));
    }
  }
  STREAMHIST_RETURN_NOT_OK(wal_->log->Flush());
  WalApplyCounters counters;
  std::map<std::string, StreamHandle> appended;
  for (const auto& [lsn, payload] : records) {
    STREAMHIST_RETURN_NOT_OK(
        ApplyWalRecord(lsn, payload, &counters, &appended));
  }
  for (auto& [name, handle] : appended) {
    const auto lock = handle.LockWriter();
    handle.stream().PublishSnapshot();
  }
  if (report != nullptr) {
    report->applied = counters.applied;
    report->skipped = counters.skipped;
    report->dropped = counters.dropped;
  }
  return Status::OK();
}

Status QueryEngine::BootstrapFromImage(std::string_view image,
                                       int64_t wal_floor) {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "bootstrap requires an open write-ahead log (--wal-dir)");
  }
  // Persist the image as our own checkpoint BEFORE touching the registry: a
  // crash anywhere past this write recovers from the image (whose header
  // floor keeps stale retained records vetoed), so a half-applied bootstrap
  // is unreachable.
  STREAMHIST_RETURN_NOT_OK(AtomicWriteFile(wal_->CheckpointPath(), image));
  int64_t header_lsn = 0;
  {
    // Unlike LOAD, the per-stream LSN tails are KEPT: primary and replica
    // share one LSN space, and the tails are exactly what vetoes records
    // the image already reflects when shipping resumes.
    const std::unique_lock<std::shared_mutex> barrier(wal_->registry_mu);
    Result<CheckpointReport> loaded =
        LoadCheckpointFromBytes(image, &header_lsn);
    if (!loaded.ok()) return loaded.status();
  }
  const int64_t floor = std::max(wal_floor, header_lsn);
  // Local segments predate the image; fast-forward the log to floor + 1 and
  // drop them so replication resumes contiguously at primary LSNs.
  STREAMHIST_RETURN_NOT_OK(wal_->log->AlignNextLsn(floor + 1));
  return wal_->log->TruncateBefore(floor + 1);
}

Result<std::string> QueryEngine::Execute(const std::string& statement) {
  const std::vector<std::string> tokens = Tokenize(statement);
  if (tokens.empty()) return Status::InvalidArgument("empty statement");
  const std::string verb = ToUpper(tokens[0]);
  QueryVerb verb_id = QueryVerb::kNumVerbs;
  const bool known = ParseQueryVerb(verb, &verb_id);
  const auto start = std::chrono::steady_clock::now();
  StreamHandle touched;
  Result<std::string> result = ExecuteParsed(tokens, verb, nullptr, &touched);
  if (known) {
    const int64_t nanos =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    (touched ? touched.stats() : *engine_stats_)
        .Record(verb_id, result.ok(), nanos);
  }
  return result;
}

Result<std::string> QueryEngine::Execute(const std::string& statement,
                                         ExecContext& ctx) {
  // Session cancellation / deadline is a statement-boundary check: a verb
  // that already started runs to completion (BUILD aside, which inherits
  // the session deadline into its degradation ladder).
  if (ctx.ShouldStop()) {
    return Status::Cancelled("session cancelled");
  }
  const std::vector<std::string> tokens = Tokenize(statement);
  if (tokens.empty()) return Status::InvalidArgument("empty statement");
  const std::string verb = ToUpper(tokens[0]);
  QueryVerb verb_id = QueryVerb::kNumVerbs;
  const bool known = ParseQueryVerb(verb, &verb_id);
  const auto start = std::chrono::steady_clock::now();
  StreamHandle touched;
  Result<std::string> result = ExecuteParsed(tokens, verb, &ctx, &touched);
  if (known) {
    const int64_t nanos =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    (touched ? touched.stats() : *engine_stats_)
        .Record(verb_id, result.ok(), nanos);
  }
  return result;
}

Result<std::string> QueryEngine::ExecuteBatchAppend(
    const std::string& name, std::span<const double> values,
    ExecContext* ctx) {
  if (ctx != nullptr && ctx->ShouldStop()) {
    return Status::Cancelled("session cancelled");
  }
  const auto start = std::chrono::steady_clock::now();
  Result<StreamHandle> handle = Stream(name);
  auto record = [&](bool ok) {
    const int64_t nanos =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    (handle.ok() ? handle->stats() : *engine_stats_)
        .Record(QueryVerb::kAppend, ok, nanos);
  };
  if (!handle.ok()) {
    record(false);
    return handle.status();
  }
  // Durable ingest: AppendLocked logs the record (and, under policy
  // "always", fsyncs) before anything is applied or acked. On failure the
  // batch is NOT applied — the typed error becomes the wire ERR, and the
  // client must not treat the values as accepted.
  const Result<int64_t> quarantined = AppendLocked(*handle, values);
  if (!quarantined.ok()) {
    record(false);
    return quarantined.status();
  }
  std::ostringstream os;
  os << "appended " << (static_cast<int64_t>(values.size()) - *quarantined)
     << " point(s)";
  if (*quarantined > 0) {
    os << ", quarantined " << *quarantined << " non-finite";
  }
  record(true);
  return os.str();
}

Result<std::string> QueryEngine::ExecuteParsed(
    const std::vector<std::string>& tokens, const std::string& verb,
    ExecContext* ctx, StreamHandle* touched) {
  if (verb == "LIST") {
    std::ostringstream os;
    const auto names = ListStreams();
    for (size_t i = 0; i < names.size(); ++i) {
      if (i > 0) os << ' ';
      os << names[i];
    }
    return os.str();
  }

  if (verb == "MEMORY") {
    if (tokens.size() != 1) {
      return Status::InvalidArgument("MEMORY takes no arguments");
    }
    std::ostringstream os;
    os << "budget=" << governor::FormatBytes(governor::Budget())
       << "; used=" << governor::Used() << "; peak=" << governor::Peak();
    for (const StreamHandle& handle : registry_->Handles()) {
      const auto lock = handle.LockWriter();
      os << "; " << handle.name() << "=" << handle.stream().MemoryBytes();
    }
    return os.str();
  }

  if (verb == "STATS" && tokens.size() == 1) {
    std::ostringstream os;
    os << "engine:";
    const std::string engine_lines = engine_stats_->Render();
    if (!engine_lines.empty()) os << '\n' << engine_lines;
    if (wal_ != nullptr) {
      os << "\nwal: durable lsn=" << wal_->log->durable_lsn()
         << "; last recovery: " << wal_->recovery.ToString();
    }
    const ReplicaStatus rs = replica_status();
    if (rs.is_replica) {
      const bool ro = repl_->read_only.load(std::memory_order_relaxed);
      os << "\nreplication: role=" << (ro ? "replica" : "promoted")
         << "; connected=" << (rs.connected ? "yes" : "no")
         << "; primary durable lsn=" << rs.primary_durable_lsn
         << "; applied lsn=" << rs.applied_lsn << "; lag records="
         << std::max<int64_t>(0, rs.primary_durable_lsn - rs.applied_lsn)
         << "; lag ms="
         << (rs.last_contact_ms == 0 ? 0 : SteadyNowMs() - rs.last_contact_ms)
         << "; reconnects=" << rs.reconnects << "; batches=" << rs.batches
         << "; records=" << rs.records << "; bootstraps=" << rs.bootstraps;
    }
    for (const StreamHandle& handle : registry_->Handles()) {
      os << "\nstream " << handle.name() << ':';
      const std::string lines = handle.stats().Render();
      if (!lines.empty()) os << '\n' << lines;
      const std::string publish = handle.stream().publish_stats().Render();
      if (!publish.empty()) os << '\n' << publish;
    }
    return os.str();
  }

  if (verb == "WAL") {
    if (wal_ == nullptr) {
      return Status::FailedPrecondition(
          "no write-ahead log is open (start with --wal-dir)");
    }
    if (tokens.size() == 2 && ToUpper(tokens[1]) == "CHECKPOINT") {
      std::string summary;
      STREAMHIST_RETURN_NOT_OK(WalCheckpointNow(&summary));
      return summary;
    }
    if (tokens.size() != 1) {
      return Status::InvalidArgument("WAL [CHECKPOINT]");
    }
    const wal::StatsSnapshot s = wal_->log->stats();
    std::ostringstream os;
    os << "policy=" << wal::PolicySpecString(wal_->log->options())
       << "; durable lsn=" << s.durable_lsn << "; next lsn=" << s.next_lsn
       << "; records=" << s.records << "; bytes=" << s.bytes
       << "; fsyncs=" << s.fsyncs << "; sync waits=" << s.sync_waits
       << "; segments created=" << s.segments_created << " deleted="
       << s.segments_deleted << "; checkpoints="
       << wal_->checkpoints.load(std::memory_order_relaxed)
       << "\nlast recovery: " << wal_->recovery.ToString();
    return os.str();
  }

  if (verb == "FLUSH") {
    // Publish any coalesced appends now (DESIGN.md §13). Not a QueryVerb
    // enumerator for the same reason WAL is not: the enum's cardinality is
    // baked into the SHMS v4+ stats layout.
    if (tokens.size() > 2) {
      return Status::InvalidArgument("FLUSH [<stream>]");
    }
    int64_t flushed = 0;
    if (tokens.size() == 2) {
      STREAMHIST_ASSIGN_OR_RETURN(StreamHandle handle, Stream(tokens[1]));
      const auto lock = handle.LockWriter();
      if (handle.stream().FlushIfDirty()) ++flushed;
    } else {
      for (const StreamHandle& handle : registry_->Handles()) {
        const auto lock = handle.LockWriter();
        if (handle.stream().FlushIfDirty()) ++flushed;
      }
    }
    return "flushed " + std::to_string(flushed) + " stream(s)";
  }

  if (verb == "PROMOTE") {
    // Failover: flip this replica into a writable primary at a clean batch
    // boundary (DESIGN.md §14). Not a QueryVerb enumerator for the same
    // SHMS stats-layout reason as WAL and FLUSH.
    if (tokens.size() != 1) {
      return Status::InvalidArgument("PROMOTE takes no arguments");
    }
    std::function<Result<std::string>()> promote;
    {
      const std::lock_guard<std::mutex> lock(repl_->mu);
      promote = repl_->promote;
    }
    if (!promote) {
      return Status::FailedPrecondition(
          "PROMOTE requires a replica (start with --replica-of)");
    }
    return promote();
  }

  if (tokens.size() < 2) {
    return Status::InvalidArgument(verb + " requires an argument");
  }

  if (verb == "CREATE") {
    if (tokens.size() > 4) {
      return Status::InvalidArgument("CREATE <stream> [<window> [<buckets>]]");
    }
    StreamConfig config;
    if (tokens.size() >= 3) {
      STREAMHIST_ASSIGN_OR_RETURN(config.window_size, ParseInt(tokens[2]));
    }
    if (tokens.size() == 4) {
      STREAMHIST_ASSIGN_OR_RETURN(config.num_buckets, ParseInt(tokens[3]));
    }
    const Status status = CreateStream(tokens[1], config);
    if (!status.ok()) return status;
    return "created stream '" + tokens[1] + "'";
  }
  if (verb == "DROP") {
    if (tokens.size() != 2) return Status::InvalidArgument("DROP <stream>");
    const Status status = DropStream(tokens[1]);
    if (!status.ok()) return status;
    return "dropped stream '" + tokens[1] + "'";
  }
  if (verb == "SAVE") {
    if (tokens.size() != 2) return Status::InvalidArgument("SAVE <path>");
    SaveReport save_report;
    const Status status = SaveCheckpoint(tokens[1], &save_report);
    if (!status.ok()) return status;
    std::ostringstream os;
    os << "checkpointed " << registry_->size() << " stream(s) to "
       << tokens[1];
    if (save_report.attempts > 1) {
      os << " (after " << save_report.attempts << " attempts)";
    }
    if (wal_ != nullptr) {
      os << "; wal durable lsn=" << wal_->log->durable_lsn();
    }
    return os.str();
  }
  if (verb == "LOAD") {
    if (tokens.size() != 2) return Status::InvalidArgument("LOAD <path>");
    if (repl_->read_only.load(std::memory_order_relaxed)) {
      // LOAD rewrites the registry and re-anchors the log — on a replica
      // that would fork its LSN space away from the primary's.
      return Status::ReadOnly(
          "this node is a read replica; LOAD must go to the primary");
    }
    STREAMHIST_ASSIGN_OR_RETURN(CheckpointReport report,
                                LoadCheckpoint(tokens[1]));
    return report.ToString();
  }

  STREAMHIST_ASSIGN_OR_RETURN(StreamHandle handle, Stream(tokens[1]));
  *touched = handle;

  // Mutating verbs: the per-stream writer mutex serializes them against
  // each other and against SAVE; the republish at the end is what makes the
  // mutation visible to (lock-free) readers.
  if (verb == "APPEND") {
    if (tokens.size() < 3) {
      return Status::InvalidArgument("APPEND <stream> <v1> [v2 ...]");
    }
    std::vector<double> values;
    values.reserve(tokens.size() - 2);
    for (size_t i = 2; i < tokens.size(); ++i) {
      STREAMHIST_ASSIGN_OR_RETURN(double v, ParseDouble(tokens[i]));
      values.push_back(v);
    }
    // One engine-side append path for every ingest surface: the text verb
    // lands on the same log-then-commit core as the binary batch frame.
    STREAMHIST_ASSIGN_OR_RETURN(const int64_t quarantined,
                                AppendLocked(handle, values));
    std::ostringstream os;
    os << "appended " << (static_cast<int64_t>(values.size()) - quarantined)
       << " point(s)";
    if (quarantined > 0) os << ", quarantined " << quarantined << " non-finite";
    return os.str();
  }
  if (verb == "BUILD") {
    // Offline V-optimal construction over the current window contents.
    // An optional mode argument is sticky: it updates the stream's
    // configured build mode (DESCRIBE shows it; checkpoints carry it). An
    // optional trailing WITHIN <ms> clause (not sticky) sets the wall-clock
    // budget for this one build; with none, the session deadline (when the
    // caller passed an ExecContext with one) or STREAMHIST_BUILD_DEADLINE_MS
    // supplies the default.
    size_t end = tokens.size();
    bool explicit_within = false;
    int64_t within_ms = DefaultBuildDeadlineMillis();
    if (end >= 4 && ToUpper(tokens[end - 2]) == "WITHIN") {
      STREAMHIST_ASSIGN_OR_RETURN(within_ms, ParseInt(tokens[end - 1]));
      if (within_ms <= 0) {
        return Status::InvalidArgument(
            "WITHIN requires a positive millisecond budget");
      }
      explicit_within = true;
      end -= 2;
    }
    Deadline deadline = within_ms > 0 ? Deadline::AfterMillis(within_ms)
                                      : Deadline::Infinite();
    if (!explicit_within && ctx != nullptr && !ctx->deadline().infinite()) {
      deadline = ctx->deadline();
    }
    const auto lock = handle.LockWriter();
    ManagedStream& stream = handle.stream();
    if (end == 3 && ToUpper(tokens[2]) == "EXACT") {
      const Status status = stream.SetBuildMode(WindowBuildMode::kExact, 0.0);
      if (!status.ok()) return status;
    } else if (end == 4 && ToUpper(tokens[2]) == "ERROR") {
      STREAMHIST_ASSIGN_OR_RETURN(double delta, ParseDouble(tokens[3]));
      const Status status =
          stream.SetBuildMode(WindowBuildMode::kApprox, delta);
      if (!status.ok()) return status;
    } else if (end != 2) {
      return Status::InvalidArgument(
          "BUILD <stream> [EXACT | ERROR <delta>] [WITHIN <ms>]");
    }
    const WindowBuildReport report = stream.BuildWindowHistogram(deadline);
    stream.PublishSnapshot();
    std::ostringstream os;
    if (report.rung == BuildRung::kApprox) {
      os << "built approx(delta=" << FormatNumber(report.delta) << ")";
    } else if (report.rung == BuildRung::kSnapshot) {
      os << "built snapshot(eps=" << FormatNumber(report.delta) << ")";
    } else {
      os << "built exact";
    }
    os << ": n=" << report.points
       << ", buckets=" << report.histogram.num_buckets()
       << ", sse=" << FormatNumber(report.sse);
    if (report.rung != BuildRung::kExact) {
      os << ", certified sse <= " << FormatNumber(report.bound_factor)
         << " * OPT";
    }
    if (report.degradation.degraded) {
      os << "; degraded: " << report.degradation.ToString();
    }
    return os.str();
  }

  if (verb == "STATS") {
    // STATS <stream> [<verb>] — counters, or one verb's latency histogram.
    if (tokens.size() == 2) {
      std::string lines = handle.stats().Render();
      const std::string publish = handle.stream().publish_stats().Render();
      if (!publish.empty()) {
        if (!lines.empty()) lines += '\n';
        lines += publish;
      }
      if (lines.empty()) {
        return "no statistics recorded for '" + tokens[1] + "'";
      }
      return lines;
    }
    if (tokens.size() == 3) {
      QueryVerb which = QueryVerb::kNumVerbs;
      if (!ParseQueryVerb(ToUpper(tokens[2]), &which)) {
        return Status::InvalidArgument("unknown verb '" + tokens[2] + "'");
      }
      const Histogram latency = handle.stats().LatencyHistogram(which);
      if (latency.num_buckets() == 0) {
        return "no statistics recorded for '" + tokens[1] + "' " +
               QueryVerbName(which);
      }
      // Rendered through core/histogram: domain index i is log2 latency
      // bucket i (bucket i >= 1 spans [256 << i, 256 << (i+1)) ns).
      return latency.ToString();
    }
    return Status::InvalidArgument("STATS [<stream> [<verb>]]");
  }

  // Replica rung of the degradation ladder: when this node is a badly
  // lagged replica, a typed shed the client can retry elsewhere beats an
  // arbitrarily stale answer.
  STREAMHIST_RETURN_NOT_OK(CheckReplicaLag());

  // Estimation verbs: answer from the latest published snapshot, lock-free.
  // A concurrent APPEND/BUILD/DROP cannot tear or invalidate `snap`.
  const std::shared_ptr<const QuerySnapshot> snap = handle.snapshot();
  const int64_t window_size = snap->window_size;

  if (verb == "SUM" || verb == "AVG") {
    STREAMHIST_ASSIGN_OR_RETURN(auto range,
                                ParseRange(tokens, 2, window_size));
    const auto [lo, hi] = range;
    if (verb == "AVG" && lo == hi) {
      return Status::InvalidArgument("AVG over an empty range");
    }
    const double sum = snap->histogram().RangeSum(lo, hi);
    return FormatNumber(verb == "SUM"
                            ? sum
                            : sum / static_cast<double>(hi - lo));
  }
  if (verb == "SUMBOUND" || verb == "AVGBOUND") {
    STREAMHIST_ASSIGN_OR_RETURN(auto range,
                                ParseRange(tokens, 2, window_size));
    const auto [lo, hi] = range;
    if (lo == hi) {
      return Status::InvalidArgument(verb + " over an empty range");
    }
    const BoundedValue r =
        verb == "SUMBOUND"
            ? RangeSumWithBound(snap->histogram(), snap->bucket_errors(), lo,
                                hi)
            : RangeAverageWithBound(snap->histogram(), snap->bucket_errors(),
                                    lo, hi);
    return FormatNumber(r.estimate) + " +- " + FormatNumber(r.error_bound);
  }
  if (verb == "POINT") {
    if (tokens.size() != 3) {
      return Status::InvalidArgument("POINT <stream> <i>");
    }
    STREAMHIST_ASSIGN_OR_RETURN(int64_t i, ParseInt(tokens[2]));
    if (i < 0 || i >= window_size) {
      return Status::OutOfRange("point index outside the window");
    }
    return FormatNumber(snap->histogram().Estimate(i));
  }
  if (verb == "QUANTILE") {
    if (tokens.size() != 3) {
      return Status::InvalidArgument("QUANTILE <stream> <phi>");
    }
    if (snap->quantiles == nullptr) {
      return Status::FailedPrecondition("quantiles disabled for this stream");
    }
    if (snap->quantiles->size() == 0) {
      return Status::FailedPrecondition("stream is empty");
    }
    STREAMHIST_ASSIGN_OR_RETURN(double phi, ParseDouble(tokens[2]));
    if (phi < 0.0 || phi > 1.0) {
      return Status::OutOfRange("phi must be in [0, 1]");
    }
    return FormatNumber(snap->quantiles->Quantile(phi));
  }
  if (verb == "DISTINCT") {
    if (!snap->has_distinct) {
      return Status::FailedPrecondition(
          "distinct counting disabled for this stream");
    }
    return FormatNumber(snap->distinct_estimate);
  }
  if (verb == "COUNT") {
    return FormatNumber(static_cast<double>(snap->total_points));
  }
  if (verb == "ERROR") {
    return FormatNumber(snap->approx_error());
  }
  if (verb == "DESCRIBE") {
    return snap->describe();
  }
  if (verb == "SHOW") {
    return snap->histogram().ToString();
  }
  return Status::InvalidArgument("unknown verb '" + verb + "'");
}

}  // namespace streamhist
