#include "src/engine/query_engine.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <set>
#include <sstream>

#include "src/core/error_bounds.h"
#include "src/util/thread_pool.h"

namespace streamhist {

namespace {

std::vector<std::string> Tokenize(const std::string& statement) {
  std::vector<std::string> tokens;
  std::istringstream in(statement);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

std::string ToUpper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

Result<int64_t> ParseInt(const std::string& token) {
  int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return Status::InvalidArgument("expected an integer, got '" + token + "'");
  }
  return value;
}

Result<double> ParseDouble(const std::string& token) {
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size() || token.empty()) {
    return Status::InvalidArgument("expected a number, got '" + token + "'");
  }
  return value;
}

std::string FormatNumber(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

/// Resolves a [lo, hi) window range from "lo hi" or "LAST k" argument forms.
Result<std::pair<int64_t, int64_t>> ParseRange(
    const std::vector<std::string>& tokens, size_t first_arg,
    int64_t window_size) {
  if (tokens.size() == first_arg + 2 &&
      ToUpper(tokens[first_arg]) == "LAST") {
    STREAMHIST_ASSIGN_OR_RETURN(int64_t k, ParseInt(tokens[first_arg + 1]));
    if (k < 1) return Status::InvalidArgument("LAST k requires k >= 1");
    k = std::min(k, window_size);
    return std::make_pair(window_size - k, window_size);
  }
  if (tokens.size() == first_arg + 2) {
    STREAMHIST_ASSIGN_OR_RETURN(int64_t lo, ParseInt(tokens[first_arg]));
    STREAMHIST_ASSIGN_OR_RETURN(int64_t hi, ParseInt(tokens[first_arg + 1]));
    if (!(0 <= lo && lo <= hi && hi <= window_size)) {
      std::ostringstream msg;
      msg << "range [" << lo << "," << hi << ") outside window of size "
          << window_size;
      return Status::OutOfRange(msg.str());
    }
    return std::make_pair(lo, hi);
  }
  return Status::InvalidArgument("expected '<lo> <hi>' or 'LAST <k>'");
}

}  // namespace

Status QueryEngine::CreateStream(const std::string& name,
                                 const StreamConfig& config) {
  if (name.empty()) return Status::InvalidArgument("stream name is empty");
  if (streams_.contains(name)) {
    return Status::InvalidArgument("stream '" + name + "' already exists");
  }
  STREAMHIST_ASSIGN_OR_RETURN(ManagedStream stream,
                              ManagedStream::Create(config));
  streams_.emplace(name, std::move(stream));
  return Status::OK();
}

Status QueryEngine::DropStream(const std::string& name) {
  if (streams_.erase(name) == 0) {
    return Status::NotFound("no stream named '" + name + "'");
  }
  return Status::OK();
}

Status QueryEngine::Append(const std::string& name, double value) {
  STREAMHIST_ASSIGN_OR_RETURN(ManagedStream * stream, GetStream(name));
  stream->Append(value);
  return Status::OK();
}

Status QueryEngine::AppendBatch(const std::string& name,
                                std::span<const double> values) {
  STREAMHIST_ASSIGN_OR_RETURN(ManagedStream * stream, GetStream(name));
  stream->AppendBatch(values);
  return Status::OK();
}

Status QueryEngine::AppendBatches(std::span<const StreamBatch> batches) {
  // Resolve and validate everything up front so the parallel phase cannot
  // fail and no points are appended on error.
  std::vector<ManagedStream*> targets;
  targets.reserve(batches.size());
  std::set<std::string> seen;
  for (const StreamBatch& batch : batches) {
    if (!seen.insert(batch.name).second) {
      return Status::InvalidArgument("duplicate batch for stream '" +
                                     batch.name + "'");
    }
    STREAMHIST_ASSIGN_OR_RETURN(ManagedStream * stream,
                                GetStream(batch.name));
    targets.push_back(stream);
  }
  ParallelFor(0, static_cast<int64_t>(batches.size()), /*grain=*/1,
              [&](int64_t begin, int64_t end) {
                for (int64_t i = begin; i < end; ++i) {
                  targets[static_cast<size_t>(i)]->AppendBatch(
                      batches[static_cast<size_t>(i)].values);
                }
              });
  return Status::OK();
}

void QueryEngine::RefreshAll() {
  std::vector<ManagedStream*> targets;
  targets.reserve(streams_.size());
  for (auto& [name, stream] : streams_) targets.push_back(&stream);
  ParallelFor(0, static_cast<int64_t>(targets.size()), /*grain=*/1,
              [&](int64_t begin, int64_t end) {
                for (int64_t i = begin; i < end; ++i) {
                  targets[static_cast<size_t>(i)]->Refresh();
                }
              });
}

Result<ManagedStream*> QueryEngine::GetStream(const std::string& name) {
  auto it = streams_.find(name);
  if (it == streams_.end()) {
    return Status::NotFound("no stream named '" + name + "'");
  }
  return &it->second;
}

std::vector<std::string> QueryEngine::ListStreams() const {
  std::vector<std::string> names;
  names.reserve(streams_.size());
  for (const auto& [name, stream] : streams_) names.push_back(name);
  return names;
}

Result<std::string> QueryEngine::Execute(const std::string& statement) {
  const std::vector<std::string> tokens = Tokenize(statement);
  if (tokens.empty()) return Status::InvalidArgument("empty statement");
  const std::string verb = ToUpper(tokens[0]);

  if (verb == "LIST") {
    std::ostringstream os;
    const auto names = ListStreams();
    for (size_t i = 0; i < names.size(); ++i) {
      if (i > 0) os << ' ';
      os << names[i];
    }
    return os.str();
  }

  if (tokens.size() < 2) {
    return Status::InvalidArgument(verb + " requires a stream name");
  }
  STREAMHIST_ASSIGN_OR_RETURN(ManagedStream * stream, GetStream(tokens[1]));
  const int64_t window_size = stream->window_histogram().window().size();

  if (verb == "SUM" || verb == "AVG") {
    STREAMHIST_ASSIGN_OR_RETURN(auto range,
                                ParseRange(tokens, 2, window_size));
    const auto [lo, hi] = range;
    if (verb == "AVG" && lo == hi) {
      return Status::InvalidArgument("AVG over an empty range");
    }
    const double sum = stream->window_histogram().RangeSum(lo, hi);
    return FormatNumber(verb == "SUM"
                            ? sum
                            : sum / static_cast<double>(hi - lo));
  }
  if (verb == "SUMBOUND" || verb == "AVGBOUND") {
    STREAMHIST_ASSIGN_OR_RETURN(auto range,
                                ParseRange(tokens, 2, window_size));
    const auto [lo, hi] = range;
    if (lo == hi) {
      return Status::InvalidArgument(verb + " over an empty range");
    }
    FixedWindowHistogram& fw = stream->window_histogram();
    const std::vector<double> errors = fw.BucketErrors();
    const BoundedValue r =
        verb == "SUMBOUND"
            ? RangeSumWithBound(fw.Extract(), errors, lo, hi)
            : RangeAverageWithBound(fw.Extract(), errors, lo, hi);
    return FormatNumber(r.estimate) + " +- " + FormatNumber(r.error_bound);
  }
  if (verb == "POINT") {
    if (tokens.size() != 3) {
      return Status::InvalidArgument("POINT <stream> <i>");
    }
    STREAMHIST_ASSIGN_OR_RETURN(int64_t i, ParseInt(tokens[2]));
    if (i < 0 || i >= window_size) {
      return Status::OutOfRange("point index outside the window");
    }
    return FormatNumber(stream->window_histogram().Extract().Estimate(i));
  }
  if (verb == "QUANTILE") {
    if (tokens.size() != 3) {
      return Status::InvalidArgument("QUANTILE <stream> <phi>");
    }
    if (stream->quantiles() == nullptr) {
      return Status::FailedPrecondition("quantiles disabled for this stream");
    }
    if (stream->quantiles()->size() == 0) {
      return Status::FailedPrecondition("stream is empty");
    }
    STREAMHIST_ASSIGN_OR_RETURN(double phi, ParseDouble(tokens[2]));
    if (phi < 0.0 || phi > 1.0) {
      return Status::OutOfRange("phi must be in [0, 1]");
    }
    return FormatNumber(stream->quantiles()->Quantile(phi));
  }
  if (verb == "DISTINCT") {
    if (stream->distinct() == nullptr) {
      return Status::FailedPrecondition(
          "distinct counting disabled for this stream");
    }
    return FormatNumber(stream->distinct()->EstimateDistinct());
  }
  if (verb == "COUNT") {
    return FormatNumber(static_cast<double>(stream->total_points()));
  }
  if (verb == "ERROR") {
    return FormatNumber(stream->window_histogram().ApproxError());
  }
  if (verb == "DESCRIBE") {
    return stream->Describe();
  }
  if (verb == "SHOW") {
    return stream->window_histogram().Extract().ToString();
  }
  return Status::InvalidArgument("unknown verb '" + verb + "'");
}

}  // namespace streamhist
