#ifndef STREAMHIST_ENGINE_QUERY_ENGINE_H_
#define STREAMHIST_ENGINE_QUERY_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/engine/managed_stream.h"
#include "src/engine/stream_registry.h"
#include "src/engine/stream_stats.h"
#include "src/util/deadline.h"
#include "src/util/result.h"
#include "src/util/wal.h"

namespace streamhist {

/// One stream's worth of arrivals for QueryEngine::AppendBatches.
struct StreamBatch {
  std::string name;
  std::vector<double> values;
};

/// A registry of named managed streams plus a tiny textual query language —
/// the "operators commonly pose queries" interface of the paper's
/// introduction made concrete. All answers come from the maintained
/// synopses; the raw stream is never stored beyond the sliding window.
///
/// Query language (one statement per line, case-insensitive keywords,
/// window-relative indices, ranges half-open):
///
///   SUM <stream> <lo> <hi>        estimated sum of window values [lo, hi)
///   SUM <stream> LAST <k>         estimated sum of the latest k points
///   AVG <stream> <lo> <hi>        estimated average over [lo, hi)
///   AVG <stream> LAST <k>
///   SUMBOUND <stream> <args>      like SUM but answers "estimate +- bound"
///                                 with a certified deterministic bound
///   AVGBOUND <stream> <args>      like AVG, with the certified bound
///   POINT <stream> <i>            estimated value of window point i
///   QUANTILE <stream> <phi>       value quantile over the whole stream
///   DISTINCT <stream>             estimated distinct values seen
///   COUNT <stream>                total points seen
///   ERROR <stream>                window histogram SSE bound
///   BUILD <stream>                offline V-optimal build of the current
///                                 window contents (configured mode)
///   BUILD <stream> EXACT          switch the stream to the exact DP, build
///   BUILD <stream> ERROR <delta>  switch to the (1+delta)-approximate
///                                 interval-pruned DP, build; the reply
///                                 carries the certified (1+delta)^(B-1)
///                                 factor (mode persists into checkpoints)
///   BUILD ... WITHIN <ms>         any BUILD form with a wall-clock budget:
///                                 when it expires the build degrades down
///                                 the ladder (exact -> approx -> snapshot),
///                                 always terminating with a histogram, a
///                                 certified bound, and the ladder trace.
///                                 With no WITHIN clause the default comes
///                                 from STREAMHIST_BUILD_DEADLINE_MS.
///   DESCRIBE <stream>             synopsis status line
///   SHOW <stream>                 the window histogram's buckets
///   STATS                         per-verb execution counters and latency
///                                 quantiles: engine-scoped verbs plus one
///                                 block per stream
///   STATS <stream>                one stream's per-verb counters
///   STATS <stream> <verb>         that verb's latency histogram (log2
///                                 nanosecond buckets)
///   MEMORY                        governor budget / used / peak plus the
///                                 per-stream synopsis footprints; budget
///                                 comes from STREAMHIST_MEM_BUDGET
///   LIST                          names of registered streams
///   CREATE <stream> [<window> [<buckets>]]   register a stream (refused
///                                 when its estimated footprint would
///                                 exceed the memory budget)
///   APPEND <stream> <v1> [v2 ...] feed points (NaN/Inf quarantined)
///   DROP <stream>                 unregister a stream
///   SAVE <path>                   checkpoint every stream to a file
///                                 (transient I/O failures are retried)
///   LOAD <path>                   restore streams from a checkpoint
///   WAL                           durability status: policy, durable LSN,
///                                 segment counters, last recovery summary
///   WAL CHECKPOINT                force a checkpoint into the WAL
///                                 directory and truncate sealed segments
///   FLUSH [<stream>]              publish any coalesced appends now — one
///                                 stream, or every stream with publication
///                                 pending (see DESIGN.md §13; a no-op under
///                                 the default per-batch publication policy)
///   PROMOTE                       flip a read replica into a writable
///                                 primary at a clean LSN boundary (DESIGN.md
///                                 §14); refused on a non-replica
///
/// (WAL / WAL CHECKPOINT / FLUSH / PROMOTE are deliberately *not* QueryVerb
/// enumerators: the enum's cardinality is baked into the SHMS v4+
/// stats-block layout, and growing it would break loading v1-v5
/// checkpoints. They execute without per-verb stats.)
///
/// Concurrency model (DESIGN.md §10): Execute is safe to call from any
/// number of threads against one engine. Estimation verbs answer lock-free
/// from each stream's atomically-published QuerySnapshot; APPEND/BUILD
/// mutate under that stream's writer mutex and republish; CREATE/DROP touch
/// one registry shard exclusively; SAVE/LOAD serialize against writers per
/// stream / per shard. A query that acquired a snapshot before a concurrent
/// republish (or DROP) answers from the old version in full — no torn
/// reads, no dangling pointers. Single-threaded use behaves exactly as it
/// did before the registry existed, statement for statement.
class QueryEngine {
 public:
  // Special members are out-of-line: wal_ points at a type only
  // query_engine.cc completes.
  QueryEngine();
  ~QueryEngine();

  // Streams hold large state; the engine is intentionally move-only.
  // An engine with an open WAL must not be moved: the background
  // checkpointer captures `this` (OpenWal pins the object).
  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;
  QueryEngine(QueryEngine&&) noexcept;
  QueryEngine& operator=(QueryEngine&&) noexcept;

  /// Registers a new stream under `name`; fails on duplicates or bad config.
  Status CreateStream(const std::string& name, const StreamConfig& config);

  /// Removes a stream; NotFound when absent.
  Status DropStream(const std::string& name);

  /// Appends one point to a named stream.
  Status Append(const std::string& name, double value);

  /// Appends a batch to a named stream.
  Status AppendBatch(const std::string& name, std::span<const double> values);

  /// Appends every batch, one job per stream on the global thread pool
  /// (util/thread_pool.h): streams hold disjoint synopsis state, so the
  /// per-stream work is independent and the result is identical to feeding
  /// the batches serially. Validates every name — and rejects duplicate
  /// names, which would race — before any point is appended.
  Status AppendBatches(std::span<const StreamBatch> batches);

  /// Rebuilds the lazily-maintained window histogram of every registered
  /// stream, one refresh job per stream on the global thread pool. After
  /// this, queries on any stream are lookup-only. Deterministic: each job
  /// touches only its own stream.
  void RefreshAll();

  /// The registered stream as a ref-counted handle, or NotFound. The handle
  /// keeps the stream's storage (and any snapshot acquired through it)
  /// alive across a concurrent DROP — the safe accessor.
  Result<StreamHandle> Stream(const std::string& name) const;

  /// Registered stream names, sorted.
  std::vector<std::string> ListStreams() const;

  /// Parses and executes one query statement; the result is rendered as a
  /// human-readable string (numeric answers use shortest-round-trip format).
  /// Thread-safe (see the concurrency model above).
  Result<std::string> Execute(const std::string& statement);

  /// Execute with a per-session context: a cancelled context (or an expired
  /// session deadline) fails the statement with kCancelled before it runs,
  /// and a BUILD with no WITHIN clause inherits the session deadline.
  /// Cancellation is checked at statement boundaries, not mid-verb.
  Result<std::string> Execute(const std::string& statement, ExecContext& ctx);

  /// The binary wire form of `APPEND <name> <values...>` (the TCP front
  /// end's batch frame): appends every value under the stream's writer mutex
  /// and republishes the snapshot once — N values, one republish — then
  /// returns the same "appended N point(s)" message the text verb renders.
  /// Records APPEND stats on the stream exactly like Execute; `ctx` (may be
  /// null) is checked at the statement boundary like the Execute overload.
  Result<std::string> ExecuteBatchAppend(const std::string& name,
                                         std::span<const double> values,
                                         ExecContext* ctx = nullptr);

  /// Counters for engine-scoped verbs (CREATE/DROP/LIST/MEMORY/SAVE/LOAD,
  /// plus statements whose stream could not be resolved). Process-lifetime;
  /// not checkpointed.
  const QueryStats& engine_stats() const { return *engine_stats_; }

  /// What LoadCheckpoint managed to recover: sections it restored and
  /// sections it had to discard (with the reason each was unusable).
  struct CheckpointReport {
    struct DroppedStream {
      std::string name;  // section label when the name itself was corrupted
      Status reason;
    };
    std::vector<std::string> loaded;
    std::vector<DroppedStream> dropped;

    bool fully_loaded() const { return dropped.empty(); }
    /// One-line human-readable summary for console/tool output.
    std::string ToString() const;
  };

  /// How a SaveCheckpoint call went: how many write attempts it took (1 on
  /// the happy path; up to the retry limit when transient I/O faults healed
  /// mid-save).
  struct SaveReport {
    int attempts = 0;
  };

  /// Atomically checkpoints every registered stream to `path` (write to a
  /// temp file, fsync, rename): a crash mid-save leaves any previous
  /// checkpoint at `path` intact. The file is a framed container with a
  /// CRC32C per section, so corruption is detected per stream on load.
  ///
  /// I/O failures are retried with exponential backoff (kSaveAttempts total
  /// attempts): the serialized image is built once, so every attempt writes
  /// identical bytes and a transient fault — a busy disk, an injected
  /// `fileio.fsync.transient` — self-heals without caller involvement.
  /// Non-I/O errors are not retried. `report`, when non-null, receives the
  /// attempt count either way.
  Status SaveCheckpoint(const std::string& path,
                        SaveReport* report = nullptr) const;

  /// Total write attempts SaveCheckpoint makes before giving up.
  static constexpr int kSaveAttempts = 3;

  /// Replaces the between-attempt backoff sleep (test seam: deterministic
  /// retry tests must not wall-clock sleep). Null restores the real sleep.
  static void SetBackoffSleeperForTest(void (*sleeper)(int64_t millis));

  /// Replaces the registry with the checkpoint's streams. Recovery is
  /// partial: a section whose CRC or contents are bad is dropped (reported
  /// in the result) while every intact section still loads. Only when the
  /// file itself is unreadable or its header frame is damaged does the call
  /// fail outright — and then the engine is left unchanged.
  ///
  /// With a WAL open, the restored streams' foreign LSN tails are reset and
  /// a fresh checkpoint is written into the WAL directory (truncating the
  /// log), so a crash right after LOAD recovers the loaded state instead of
  /// replaying a stale log over it.
  Result<CheckpointReport> LoadCheckpoint(const std::string& path);

  /// How OpenWal recovered: the log repair outcome, whether/what checkpoint
  /// seeded the registry, and the replay tallies.
  struct WalRecoveryReport {
    wal::OpenReport open;            // segment scan / torn-tail repair
    bool checkpoint_loaded = false;  // checkpoint.shcp seeded the registry
    std::string checkpoint_summary;  // CheckpointReport text, or why not
    int64_t records_applied = 0;     // replayed into live streams
    int64_t records_skipped = 0;     // already reflected by the checkpoint
    int64_t records_dropped = 0;     // undecodable or inapplicable
    std::string ToString() const;
  };

  /// Durability configuration for OpenWal.
  struct WalConfig {
    wal::Options options;
    /// Background checkpoint cadence; 0 disables the checkpointer thread
    /// (WAL CHECKPOINT still works on demand).
    int64_t checkpoint_interval_ms = 0;
  };

  /// Opens (or creates) the write-ahead log in `dir` and recovers: repairs
  /// the log (torn tails truncated, never fatal), loads `dir`/checkpoint.shcp
  /// when present, replays the retained records above each stream's applied
  /// LSN (SHMS v5 tail; v1-v4 restore with LSN 0 and replay everything),
  /// then starts logging CREATE/APPEND/DROP before each ack and — when
  /// configured — a background checkpoint thread that snapshots and
  /// truncates sealed segments. Fails only on real I/O errors, a governor
  /// refusal, or when a WAL is already open.
  Result<WalRecoveryReport> OpenWal(const std::string& dir,
                                    const WalConfig& config);

  /// Stops the checkpointer, flushes the log (the returned status is the
  /// flush outcome), and detaches the WAL. `final_stats`, when non-null,
  /// receives the post-flush counters — the last chance to read them.
  /// Idempotent; the destructor calls it best-effort.
  Status CloseWal(wal::StatsSnapshot* final_stats = nullptr);

  bool wal_enabled() const { return wal_ != nullptr; }

  /// Highest LSN the log has fsynced (0 without a WAL).
  int64_t WalDurableLsn() const;

  /// Log counters (zeroed snapshot without a WAL).
  wal::StatsSnapshot WalStats() const;

  /// The recovery report of the OpenWal call (empty report without a WAL).
  WalRecoveryReport LastWalRecovery() const;

  /// Checkpoints into the WAL directory and truncates every sealed segment
  /// the checkpoint covers — the WAL CHECKPOINT verb and the background
  /// checkpointer both land here. Serialized against itself.
  Status WalCheckpointNow(std::string* summary = nullptr);

  /// Tailing read of the durable log for replication shipping — a thin pass
  /// through to wal::Wal::ReadTail. Fails kFailedPrecondition without an
  /// open WAL.
  Status WalReadTail(wal::TailCursor* cursor, int64_t max_bytes,
                     wal::TailBatch* out) const;

  /// Blocks until the log's durable LSN reaches `lsn` or `timeout_ms`
  /// passes; false on timeout (or with no WAL open). The shipping loop's
  /// wait primitive: new durable records wake it, idle periods become
  /// heartbeats.
  bool WalWaitDurable(int64_t lsn, int64_t timeout_ms) const;

  // --- Replication (DESIGN.md §14) ---
  //
  // The engine carries the mechanism; the policy lives in src/server: a
  // primary installs a barrier (semi-sync acks), a replica runs read-only
  // with a feed of shipped batches, and PROMOTE hands control back.

  /// Read-only replica mode: CREATE/DROP/APPEND/LOAD are refused with
  /// kReadOnly while replicated batches keep applying underneath.
  /// Estimation verbs, SAVE, and WAL CHECKPOINT stay available.
  void SetReadOnly(bool read_only);
  bool read_only() const;

  /// Installed on a primary: called with each record's LSN after its
  /// successful WAL append (CREATE/DROP/APPEND log paths). A semi-sync
  /// barrier blocks until a replica acknowledged the LSN or its wait budget
  /// lapsed; returning non-OK fails the write (the record is already
  /// locally durable, so barriers should degrade, not error, on timeout).
  using ReplicationBarrier = std::function<Status(int64_t lsn)>;
  void SetReplicationBarrier(ReplicationBarrier barrier);

  /// Builds the serialized SHCP checkpoint image in memory — the bootstrap
  /// handoff body — plus the WAL LSN floor it reflects. Exactly the bytes
  /// SaveCheckpoint would write, without touching disk.
  Status BuildCheckpointImage(std::string* image, int64_t* wal_floor) const;

  /// Replica bootstrap: persists `image` as this engine's own checkpoint
  /// (crash-during-bootstrap recovers from it), replaces the registry with
  /// its streams KEEPING their per-stream LSN tails (primary and replica
  /// share one LSN space), and fast-forwards the local WAL so replication
  /// resumes at wal_floor + 1. Requires an open WAL.
  Status BootstrapFromImage(std::string_view image, int64_t wal_floor);

  /// What ApplyReplicatedBatch did with the shipped records.
  struct ReplicatedBatchReport {
    int64_t applied = 0;
    int64_t skipped = 0;  // LSN veto: already reflected (idempotent re-apply)
    int64_t dropped = 0;  // undecodable or inapplicable
  };

  /// Applies one shipped batch: logs every record into the local WAL at its
  /// primary LSN, fsyncs once (durability before acknowledgment), then
  /// applies through the replay path — the per-stream LSN veto makes
  /// re-delivery after a reconnect idempotent — and publishes the touched
  /// streams so estimation verbs serve the new state. Requires an open WAL.
  Status ApplyReplicatedBatch(std::span<const std::pair<int64_t, std::string>>
                                  records,
                              ReplicatedBatchReport* report = nullptr);

  /// Live replica-side replication state, fed by the replication client in
  /// src/server and rendered by STATS. Timestamps are steady-clock
  /// milliseconds so lag math never moves backwards with wall-clock jumps.
  struct ReplicaStatus {
    bool is_replica = false;
    bool connected = false;
    int64_t primary_durable_lsn = 0;  // from heartbeats / record batches
    int64_t applied_lsn = 0;          // highest LSN applied locally
    int64_t last_contact_ms = 0;      // steady-clock ms of last primary frame
    int64_t reconnects = 0;
    int64_t batches = 0;
    int64_t records = 0;
    int64_t bootstraps = 0;
  };
  void UpdateReplicaStatus(const ReplicaStatus& status);
  ReplicaStatus replica_status() const;

  /// Degradation ladder, replica rung: when > 0 and this replica has not
  /// heard from its primary for longer than `ms`, estimation verbs shed
  /// with kOverloaded instead of serving arbitrarily stale answers. 0
  /// disables the shed.
  void SetReplicaMaxLagMs(int64_t ms);

  /// Registered by the replica runtime; the PROMOTE verb invokes it. The
  /// handler stops replication at a batch boundary, flips read-only off,
  /// and returns the promotion summary.
  void SetPromoteHandler(std::function<Result<std::string>()> handler);

 private:
  struct WalState;      // defined in query_engine.cc
  struct FlusherState;  // defined in query_engine.cc
  struct ReplState;     // defined in query_engine.cc
  /// The parsed-statement dispatcher behind both Execute overloads. Sets
  /// `*touched` to the resolved stream handle for stream-scoped verbs (the
  /// stats target); leaves it empty for engine-scoped verbs and failed
  /// lookups.
  Result<std::string> ExecuteParsed(const std::vector<std::string>& tokens,
                                    const std::string& verb, ExecContext* ctx,
                                    StreamHandle* touched);

  /// LoadCheckpoint's parsing core; `header_lsn`, when non-null, receives
  /// the SHCP v2 header's global WAL LSN (0 for v1 files).
  Result<CheckpointReport> LoadCheckpointFrom(const std::string& path,
                                              int64_t* header_lsn);

  /// The from-memory core behind LoadCheckpointFrom — also the bootstrap
  /// path, where the image arrives over the wire instead of from disk.
  Result<CheckpointReport> LoadCheckpointFromBytes(std::string_view file,
                                                   int64_t* header_lsn);

  /// CreateStream minus the read-only gate and the WAL record: the replay /
  /// replica-apply form, where the CREATE is already logged (or arrives at a
  /// primary-assigned LSN). `wal_lsn` seeds the stream's LSN tail.
  Status CreateStreamUnlogged(const std::string& name,
                              const StreamConfig& config, int64_t wal_lsn);

  /// Replay/apply tallies for ApplyWalRecord.
  struct WalApplyCounters {
    int64_t applied = 0;
    int64_t skipped = 0;
    int64_t dropped = 0;
  };

  /// Applies one decoded-or-droppable WAL record to the registry — the
  /// shared core of OpenWal's recovery replay and ApplyReplicatedBatch.
  /// Per-stream LSN tails veto records the state already reflects; touched
  /// streams are collected into `appended` for a deferred publish. Never
  /// fails on record content (damage counts as dropped).
  Status ApplyWalRecord(int64_t lsn, std::string_view payload,
                        WalApplyCounters* counters,
                        std::map<std::string, StreamHandle>* appended);

  /// Runs the installed replication barrier for `lsn` (no-op without one).
  Status RunReplicationBarrier(int64_t lsn);

  /// The replica lag shed: OK, or kOverloaded when read-only and the
  /// primary has been silent past the configured bound.
  Status CheckReplicaLag() const;

  /// SaveCheckpoint's core; `wal_floor_out`, when non-null, receives the
  /// global WAL LSN stored in the image (the safe truncation horizon).
  Status SaveCheckpointInternal(const std::string& path, SaveReport* report,
                                int64_t* wal_floor_out) const;

  /// Logs one APPEND record for `handle` (no-op without a WAL). Must run
  /// under the stream's writer lock, before the values are applied — the
  /// log-before-apply ordering the checkpoint LSN protocol relies on. A
  /// failure (e.g. wal.fsync under policy "always") means the values must
  /// not be applied or acked.
  Status LogAppend(const StreamHandle& handle, std::span<const double> values);

  /// The single append core every ingest path lands on — text APPEND, the
  /// binary batch frame, AppendBatch, and AppendBatches all funnel here.
  /// Takes the stream's writer lock, logs to the WAL (log-before-ack), feeds
  /// the batch, and runs the publication policy (ManagedStream::
  /// CommitAppendBatch). Returns the number of values quarantined as
  /// non-finite.
  Result<int64_t> AppendLocked(const StreamHandle& handle,
                               std::span<const double> values);

  /// Starts the background flusher (once) when any stream runs with a
  /// positive staleness bound: a thread that ticks at half the smallest
  /// bound and publishes any stream whose oldest unpublished append has aged
  /// past its stream's bound — the guarantee that a quiet writer cannot
  /// strand acked values reader-invisible.
  void EnsureFlusher(int64_t bound_ms);

  // unique_ptr: the registry's mutexes (and the stats' atomics) are not
  // movable, the engine is.
  std::unique_ptr<StreamRegistry> registry_ =
      std::make_unique<StreamRegistry>();
  std::unique_ptr<QueryStats> engine_stats_ = std::make_unique<QueryStats>();
  std::unique_ptr<WalState> wal_;
  // Always allocated (the constructor does): replication flags are read on
  // hot paths without a null check. unique_ptr keeps the engine movable.
  std::unique_ptr<ReplState> repl_;
  // Guards flusher_ creation; unique_ptr keeps the engine movable.
  std::unique_ptr<std::mutex> flusher_mu_ = std::make_unique<std::mutex>();
  // Declared last: its joining destructor runs before the registry (which
  // the flusher thread walks) is torn down.
  std::unique_ptr<FlusherState> flusher_;
};

}  // namespace streamhist

#endif  // STREAMHIST_ENGINE_QUERY_ENGINE_H_
