#ifndef STREAMHIST_ENGINE_QUERY_ENGINE_H_
#define STREAMHIST_ENGINE_QUERY_ENGINE_H_

#include <map>
#include <string>
#include <vector>

#include "src/engine/managed_stream.h"
#include "src/util/result.h"

namespace streamhist {

/// A registry of named managed streams plus a tiny textual query language —
/// the "operators commonly pose queries" interface of the paper's
/// introduction made concrete. All answers come from the maintained
/// synopses; the raw stream is never stored beyond the sliding window.
///
/// Query language (one statement per line, case-insensitive keywords,
/// window-relative indices, ranges half-open):
///
///   SUM <stream> <lo> <hi>        estimated sum of window values [lo, hi)
///   SUM <stream> LAST <k>         estimated sum of the latest k points
///   AVG <stream> <lo> <hi>        estimated average over [lo, hi)
///   AVG <stream> LAST <k>
///   SUMBOUND <stream> <args>      like SUM but answers "estimate +- bound"
///                                 with a certified deterministic bound
///   AVGBOUND <stream> <args>      like AVG, with the certified bound
///   POINT <stream> <i>            estimated value of window point i
///   QUANTILE <stream> <phi>       value quantile over the whole stream
///   DISTINCT <stream>             estimated distinct values seen
///   COUNT <stream>                total points seen
///   ERROR <stream>                window histogram SSE bound
///   DESCRIBE <stream>             synopsis status line
///   SHOW <stream>                 the window histogram's buckets
///   LIST                          names of registered streams
class QueryEngine {
 public:
  QueryEngine() = default;

  // Streams hold large state; the engine is intentionally move-only.
  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;
  QueryEngine(QueryEngine&&) = default;
  QueryEngine& operator=(QueryEngine&&) = default;

  /// Registers a new stream under `name`; fails on duplicates or bad config.
  Status CreateStream(const std::string& name, const StreamConfig& config);

  /// Removes a stream; NotFound when absent.
  Status DropStream(const std::string& name);

  /// Appends one point to a named stream.
  Status Append(const std::string& name, double value);

  /// Appends a batch to a named stream.
  Status AppendBatch(const std::string& name, std::span<const double> values);

  /// The registered stream, or NotFound.
  Result<ManagedStream*> GetStream(const std::string& name);

  /// Registered stream names, sorted.
  std::vector<std::string> ListStreams() const;

  /// Parses and executes one query statement; the result is rendered as a
  /// human-readable string (numeric answers use shortest-round-trip format).
  Result<std::string> Execute(const std::string& statement);

 private:
  std::map<std::string, ManagedStream> streams_;
};

}  // namespace streamhist

#endif  // STREAMHIST_ENGINE_QUERY_ENGINE_H_
