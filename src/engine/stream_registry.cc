#include "src/engine/stream_registry.h"

#include <algorithm>
#include <functional>

namespace streamhist {

StreamRegistry::Shard& StreamRegistry::ShardFor(const std::string& name) {
  return shards_[std::hash<std::string>{}(name) % kNumShards];
}

const StreamRegistry::Shard& StreamRegistry::ShardFor(
    const std::string& name) const {
  return shards_[std::hash<std::string>{}(name) % kNumShards];
}

Result<StreamHandle> StreamRegistry::Get(const std::string& name) const {
  const Shard& shard = ShardFor(name);
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  const auto it = shard.entries.find(name);
  if (it == shard.entries.end()) {
    return Status::NotFound("no stream named '" + name + "'");
  }
  return StreamHandle(it->second);
}

Status StreamRegistry::Insert(const std::string& name, ManagedStream stream) {
  auto entry =
      std::make_shared<StreamHandle::Entry>(name, std::move(stream));
  Shard& shard = ShardFor(name);
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  if (!shard.entries.emplace(name, std::move(entry)).second) {
    return Status::InvalidArgument("stream '" + name + "' already exists");
  }
  return Status::OK();
}

Status StreamRegistry::Erase(const std::string& name) {
  std::shared_ptr<StreamHandle::Entry> victim;
  {
    Shard& shard = ShardFor(name);
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    const auto it = shard.entries.find(name);
    if (it == shard.entries.end()) {
      return Status::NotFound("no stream named '" + name + "'");
    }
    victim = std::move(it->second);
    shard.entries.erase(it);
  }
  // `victim` (and with it, possibly, a whole ManagedStream destructor and
  // its governor release) dies here, outside the shard lock — or later, in
  // whichever reader thread drops the last in-flight handle.
  return Status::OK();
}

std::vector<std::string> StreamRegistry::List() const {
  std::vector<std::string> names;
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    for (const auto& [name, entry] : shard.entries) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<StreamHandle> StreamRegistry::Handles() const {
  std::vector<StreamHandle> handles;
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    for (const auto& [name, entry] : shard.entries) {
      handles.push_back(StreamHandle(entry));
    }
  }
  std::sort(handles.begin(), handles.end(),
            [](const StreamHandle& a, const StreamHandle& b) {
              return a.name() < b.name();
            });
  return handles;
}

void StreamRegistry::ReplaceAll(std::map<std::string, ManagedStream> streams) {
  // Build the new entries before taking any lock.
  std::array<std::map<std::string, std::shared_ptr<StreamHandle::Entry>>,
             kNumShards>
      incoming;
  for (auto& [name, stream] : streams) {
    incoming[std::hash<std::string>{}(name) % kNumShards].emplace(
        name,
        std::make_shared<StreamHandle::Entry>(name, std::move(stream)));
  }
  // Lock every shard in index order (the only multi-shard lock site, so the
  // fixed order is deadlock-free by construction), swap, then release.
  std::array<std::unique_lock<std::shared_mutex>, kNumShards> locks;
  for (size_t i = 0; i < kNumShards; ++i) {
    locks[i] = std::unique_lock<std::shared_mutex>(shards_[i].mu);
  }
  std::array<std::map<std::string, std::shared_ptr<StreamHandle::Entry>>,
             kNumShards>
      outgoing;
  for (size_t i = 0; i < kNumShards; ++i) {
    outgoing[i] = std::move(shards_[i].entries);
    shards_[i].entries = std::move(incoming[i]);
  }
  for (auto& lock : locks) lock.unlock();
  // Old entries destruct here, after all locks are released (any still
  // referenced by in-flight handles survive until those drain).
}

size_t StreamRegistry::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

}  // namespace streamhist
