#ifndef STREAMHIST_ENGINE_STREAM_REGISTRY_H_
#define STREAMHIST_ENGINE_STREAM_REGISTRY_H_

#include <array>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/engine/managed_stream.h"
#include "src/util/result.h"

namespace streamhist {

class StreamRegistry;

/// Ref-counted reference to one registered stream — the safe replacement for
/// the raw `ManagedStream*` the engine used to hand out. The handle pins the
/// stream's storage: a concurrent DROP removes the stream from the registry
/// (new lookups miss), but the storage — and therefore any snapshot a reader
/// acquired through the handle — stays alive until the last in-flight handle
/// drains. That is exactly the dangling-pointer hazard `GetStream` had.
///
/// Thread contract:
///   - snapshot()/stats() are safe from any thread, lock-free.
///   - stream() mutation requires holding LockWriter() (or a context that is
///     provably single-threaded, e.g. a test or bench that owns the engine).
class StreamHandle {
 public:
  StreamHandle() = default;

  /// False for a default-constructed (empty) handle.
  explicit operator bool() const { return entry_ != nullptr; }

  /// The name the stream was registered under.
  const std::string& name() const { return entry_->name; }

  /// The live stream. Mutations require LockWriter().
  ManagedStream& stream() const { return entry_->stream; }

  /// The stream's latest published QuerySnapshot; lock-free, never null.
  std::shared_ptr<const QuerySnapshot> snapshot() const {
    return entry_->stream.AcquireSnapshot();
  }

  /// The stream's per-verb counters; safe to record into from any thread.
  QueryStats& stats() const { return entry_->stream.stats(); }

  /// Acquires the stream's writer mutex. One writer mutates at a time;
  /// readers never take this (they read published snapshots).
  std::unique_lock<std::mutex> LockWriter() const {
    return std::unique_lock<std::mutex>(entry_->writer_mu);
  }

 private:
  friend class StreamRegistry;

  struct Entry {
    Entry(std::string entry_name, ManagedStream entry_stream)
        : name(std::move(entry_name)), stream(std::move(entry_stream)) {}
    const std::string name;
    ManagedStream stream;
    std::mutex writer_mu;
  };

  explicit StreamHandle(std::shared_ptr<Entry> entry)
      : entry_(std::move(entry)) {}

  std::shared_ptr<Entry> entry_;
};

/// Sharded name -> stream map: the engine's registry, built for many
/// concurrent lookups against few structural changes. Names hash onto
/// kNumShards independent shards, each guarded by its own shared_mutex —
/// lookups take one shard's lock shared, CREATE/DROP take one shard's lock
/// exclusive, and traffic on different shards never contends at all
/// (striping). Entries are handed out as ref-counted StreamHandles, so
/// erasure is deferred reclamation, not deallocation.
///
/// Not movable (the mutexes pin it); QueryEngine holds it by unique_ptr.
class StreamRegistry {
 public:
  static constexpr size_t kNumShards = 16;

  StreamRegistry() = default;
  StreamRegistry(const StreamRegistry&) = delete;
  StreamRegistry& operator=(const StreamRegistry&) = delete;

  /// The stream registered under `name`, or NotFound.
  Result<StreamHandle> Get(const std::string& name) const;

  /// Registers `stream` under `name`; InvalidArgument on a duplicate (the
  /// check and the insert are one critical section, so racing CREATEs of
  /// the same name serialize correctly).
  Status Insert(const std::string& name, ManagedStream stream);

  /// Unregisters `name`, or NotFound. The entry's storage lives on until
  /// the last outstanding StreamHandle releases it.
  Status Erase(const std::string& name);

  /// All registered names, sorted.
  std::vector<std::string> List() const;

  /// Handles to every registered stream, sorted by name. The handles pin
  /// their entries, so the caller can iterate without registry locks.
  std::vector<StreamHandle> Handles() const;

  /// Atomically-enough replaces the whole registry contents (LOAD): every
  /// shard is locked exclusively for the swap, so no lookup ever observes a
  /// half-replaced registry. In-flight handles to old entries keep working.
  void ReplaceAll(std::map<std::string, ManagedStream> streams);

  /// Number of registered streams.
  size_t size() const;

 private:
  struct Shard {
    mutable std::shared_mutex mu;
    std::map<std::string, std::shared_ptr<StreamHandle::Entry>> entries;
  };

  Shard& ShardFor(const std::string& name);
  const Shard& ShardFor(const std::string& name) const;

  std::array<Shard, kNumShards> shards_;
};

}  // namespace streamhist

#endif  // STREAMHIST_ENGINE_STREAM_REGISTRY_H_
