#include "src/engine/stream_stats.h"

#include <bit>
#include <sstream>
#include <vector>

#include "src/util/framing.h"

namespace streamhist {

namespace {

struct VerbNameEntry {
  QueryVerb verb;
  const char* name;
};

constexpr VerbNameEntry kVerbNames[] = {
    {QueryVerb::kSum, "SUM"},           {QueryVerb::kAvg, "AVG"},
    {QueryVerb::kSumBound, "SUMBOUND"}, {QueryVerb::kAvgBound, "AVGBOUND"},
    {QueryVerb::kPoint, "POINT"},       {QueryVerb::kQuantile, "QUANTILE"},
    {QueryVerb::kDistinct, "DISTINCT"}, {QueryVerb::kCount, "COUNT"},
    {QueryVerb::kError, "ERROR"},       {QueryVerb::kBuild, "BUILD"},
    {QueryVerb::kAppend, "APPEND"},     {QueryVerb::kDescribe, "DESCRIBE"},
    {QueryVerb::kShow, "SHOW"},         {QueryVerb::kStats, "STATS"},
    {QueryVerb::kCreate, "CREATE"},     {QueryVerb::kDrop, "DROP"},
    {QueryVerb::kList, "LIST"},         {QueryVerb::kMemory, "MEMORY"},
    {QueryVerb::kSave, "SAVE"},         {QueryVerb::kLoad, "LOAD"},
};
static_assert(sizeof(kVerbNames) / sizeof(kVerbNames[0]) == kNumQueryVerbs,
              "every QueryVerb needs a name");

}  // namespace

const char* QueryVerbName(QueryVerb verb) {
  const size_t i = static_cast<size_t>(verb);
  if (i >= kNumQueryVerbs) return "UNKNOWN";
  return kVerbNames[i].name;
}

bool ParseQueryVerb(std::string_view token, QueryVerb* verb) {
  for (const VerbNameEntry& entry : kVerbNames) {
    if (token == entry.name) {
      *verb = entry.verb;
      return true;
    }
  }
  return false;
}

size_t QueryStats::LatencyBucketIndex(int64_t nanos) {
  if (nanos < 512) return 0;
  // nanos >= 512 => nanos >> 8 >= 2 => bit_width >= 2; bucket i holds
  // [256 << i, 256 << (i+1)).
  const size_t index =
      static_cast<size_t>(std::bit_width(static_cast<uint64_t>(nanos) >> 8)) -
      1;
  return index < kLatencyBuckets ? index : kLatencyBuckets - 1;
}

int64_t QueryStats::LatencyBucketLowerNanos(size_t index) {
  if (index == 0) return 0;
  return int64_t{256} << index;
}

int64_t QueryStats::LatencyBucketUpperNanos(size_t index) {
  return int64_t{256} << (index + 1);
}

void QueryStats::Record(QueryVerb verb, bool ok, int64_t nanos) {
  const size_t i = static_cast<size_t>(verb);
  if (i >= kNumQueryVerbs) return;
  if (nanos < 0) nanos = 0;
  Slot& slot = slots_[i];
  slot.count.fetch_add(1, std::memory_order_relaxed);
  if (!ok) slot.errors.fetch_add(1, std::memory_order_relaxed);
  slot.total_nanos.fetch_add(nanos, std::memory_order_relaxed);
  slot.latency[LatencyBucketIndex(nanos)].fetch_add(1,
                                                    std::memory_order_relaxed);
}

VerbCounters QueryStats::Read(QueryVerb verb) const {
  VerbCounters out;
  const size_t i = static_cast<size_t>(verb);
  if (i >= kNumQueryVerbs) return out;
  const Slot& slot = slots_[i];
  out.count = slot.count.load(std::memory_order_relaxed);
  out.errors = slot.errors.load(std::memory_order_relaxed);
  out.total_nanos = slot.total_nanos.load(std::memory_order_relaxed);
  for (size_t b = 0; b < kLatencyBuckets; ++b) {
    out.latency[b] = slot.latency[b].load(std::memory_order_relaxed);
  }
  return out;
}

bool QueryStats::Any() const {
  for (const Slot& slot : slots_) {
    if (slot.count.load(std::memory_order_relaxed) > 0) return true;
  }
  return false;
}

Histogram QueryStats::LatencyHistogram(QueryVerb verb) const {
  const VerbCounters c = Read(verb);
  if (c.count == 0) return Histogram();
  std::vector<Bucket> buckets;
  buckets.reserve(kLatencyBuckets);
  for (size_t b = 0; b < kLatencyBuckets; ++b) {
    buckets.push_back(Bucket{static_cast<int64_t>(b),
                             static_cast<int64_t>(b) + 1,
                             static_cast<double>(c.latency[b])});
  }
  return Histogram::FromBucketsUnchecked(std::move(buckets));
}

namespace {

/// Upper bound of the bucket holding the q-quantile of the recorded
/// latencies, in nanoseconds.
int64_t QuantileUpperNanos(const VerbCounters& c, double q) {
  const int64_t target =
      static_cast<int64_t>(q * static_cast<double>(c.count - 1)) + 1;
  int64_t seen = 0;
  for (size_t b = 0; b < kVerbLatencyBuckets; ++b) {
    seen += c.latency[b];
    if (seen >= target) return QueryStats::LatencyBucketUpperNanos(b);
  }
  return QueryStats::LatencyBucketUpperNanos(kVerbLatencyBuckets - 1);
}

}  // namespace

std::string FormatNanos(double nanos) {
  std::ostringstream os;
  os.precision(3);
  if (nanos < 1e3) {
    os << nanos << "ns";
  } else if (nanos < 1e6) {
    os << nanos / 1e3 << "us";
  } else if (nanos < 1e9) {
    os << nanos / 1e6 << "ms";
  } else {
    os << nanos / 1e9 << "s";
  }
  return os.str();
}

std::string QueryStats::Render() const {
  std::ostringstream os;
  bool first = true;
  for (size_t i = 0; i < kNumQueryVerbs; ++i) {
    const QueryVerb verb = static_cast<QueryVerb>(i);
    const VerbCounters c = Read(verb);
    if (c.count == 0) continue;
    if (!first) os << '\n';
    first = false;
    os << QueryVerbName(verb) << " count=" << c.count
       << " errors=" << c.errors << " mean="
       << FormatNanos(static_cast<double>(c.total_nanos) /
                      static_cast<double>(c.count))
       << " p50<=" << FormatNanos(static_cast<double>(QuantileUpperNanos(c, 0.5)))
       << " p99<="
       << FormatNanos(static_cast<double>(QuantileUpperNanos(c, 0.99)));
  }
  return os.str();
}

std::string QueryStats::Serialize() const {
  ByteWriter out;
  out.PutU32(static_cast<uint32_t>(kNumQueryVerbs));
  out.PutU32(static_cast<uint32_t>(kLatencyBuckets));
  for (size_t i = 0; i < kNumQueryVerbs; ++i) {
    const VerbCounters c = Read(static_cast<QueryVerb>(i));
    out.PutI64(c.count);
    out.PutI64(c.errors);
    out.PutI64(c.total_nanos);
    for (int64_t hits : c.latency) out.PutI64(hits);
  }
  return out.TakeBytes();
}

Status QueryStats::Deserialize(std::string_view bytes) {
  if (bytes.size() != SerializedBytes()) {
    return Status::InvalidArgument("stats block has wrong size");
  }
  ByteReader reader(bytes);
  uint32_t verbs = 0, latency_buckets = 0;
  if (!reader.ReadU32(&verbs) || !reader.ReadU32(&latency_buckets) ||
      verbs != kNumQueryVerbs || latency_buckets != kLatencyBuckets) {
    return Status::InvalidArgument("stats block layout mismatch");
  }
  for (size_t i = 0; i < kNumQueryVerbs; ++i) {
    Slot& slot = slots_[i];
    int64_t count = 0, errors = 0, total_nanos = 0;
    if (!reader.ReadI64(&count) || !reader.ReadI64(&errors) ||
        !reader.ReadI64(&total_nanos)) {
      return Status::InvalidArgument("truncated stats block");
    }
    // Only per-field invariants: counters are recorded with independent
    // relaxed atomics, so a checkpoint racing lock-free readers can
    // legitimately capture e.g. a count ahead of its latency buckets.
    // Cross-field equalities would reject such (healthy) images.
    if (count < 0 || errors < 0 || total_nanos < 0) {
      return Status::InvalidArgument("stats counters violate invariants");
    }
    std::array<int64_t, kLatencyBuckets> latency = {};
    for (size_t b = 0; b < kLatencyBuckets; ++b) {
      if (!reader.ReadI64(&latency[b])) {
        return Status::InvalidArgument("truncated stats block");
      }
      if (latency[b] < 0) {
        return Status::InvalidArgument("stats counters violate invariants");
      }
    }
    slot.count.store(count, std::memory_order_relaxed);
    slot.errors.store(errors, std::memory_order_relaxed);
    slot.total_nanos.store(total_nanos, std::memory_order_relaxed);
    for (size_t b = 0; b < kLatencyBuckets; ++b) {
      slot.latency[b].store(latency[b], std::memory_order_relaxed);
    }
  }
  return Status::OK();
}

void PublishStats::RecordPublish(int64_t nanos, int64_t staleness_us) {
  if (nanos < 0) nanos = 0;
  if (staleness_us < 0) staleness_us = 0;
  publishes_.fetch_add(1, std::memory_order_relaxed);
  total_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  latency_[QueryStats::LatencyBucketIndex(nanos)].fetch_add(
      1, std::memory_order_relaxed);
  int64_t seen = max_staleness_us_.load(std::memory_order_relaxed);
  while (staleness_us > seen &&
         !max_staleness_us_.compare_exchange_weak(seen, staleness_us,
                                                  std::memory_order_relaxed)) {
  }
}

void PublishStats::RecordSkipped() {
  skipped_.fetch_add(1, std::memory_order_relaxed);
}

PublishCounters PublishStats::Read() const {
  PublishCounters out;
  out.publishes = publishes_.load(std::memory_order_relaxed);
  out.skipped = skipped_.load(std::memory_order_relaxed);
  out.max_staleness_us = max_staleness_us_.load(std::memory_order_relaxed);
  out.total_nanos = total_nanos_.load(std::memory_order_relaxed);
  for (size_t b = 0; b < kVerbLatencyBuckets; ++b) {
    out.latency[b] = latency_[b].load(std::memory_order_relaxed);
  }
  return out;
}

std::string PublishStats::Render() const {
  const PublishCounters c = Read();
  if (c.publishes == 0) return {};
  // Reuse the verb-quantile machinery: only count/latency matter to it.
  VerbCounters as_verb;
  as_verb.count = c.publishes;
  as_verb.latency = c.latency;
  std::ostringstream os;
  os << "publish count=" << c.publishes << " skipped=" << c.skipped
     << " max_staleness=" << c.max_staleness_us << "us mean="
     << FormatNanos(static_cast<double>(c.total_nanos) /
                    static_cast<double>(c.publishes))
     << " p50<="
     << FormatNanos(static_cast<double>(QuantileUpperNanos(as_verb, 0.5)))
     << " p99<="
     << FormatNanos(static_cast<double>(QuantileUpperNanos(as_verb, 0.99)));
  return os.str();
}

std::string PublishStats::Serialize() const {
  const PublishCounters c = Read();
  ByteWriter out;
  out.PutU32(4);  // scalar counters ahead of the buckets
  out.PutU32(static_cast<uint32_t>(kVerbLatencyBuckets));
  out.PutI64(c.publishes);
  out.PutI64(c.skipped);
  out.PutI64(c.max_staleness_us);
  out.PutI64(c.total_nanos);
  for (int64_t hits : c.latency) out.PutI64(hits);
  return out.TakeBytes();
}

Status PublishStats::Deserialize(std::string_view bytes) {
  if (bytes.size() != SerializedBytes()) {
    return Status::InvalidArgument("publish-stats block has wrong size");
  }
  ByteReader reader(bytes);
  uint32_t scalars = 0, buckets = 0;
  if (!reader.ReadU32(&scalars) || !reader.ReadU32(&buckets) || scalars != 4 ||
      buckets != kVerbLatencyBuckets) {
    return Status::InvalidArgument("publish-stats block layout mismatch");
  }
  int64_t publishes = 0, skipped = 0, max_staleness_us = 0, total_nanos = 0;
  if (!reader.ReadI64(&publishes) || !reader.ReadI64(&skipped) ||
      !reader.ReadI64(&max_staleness_us) || !reader.ReadI64(&total_nanos)) {
    return Status::InvalidArgument("truncated publish-stats block");
  }
  if (publishes < 0 || skipped < 0 || max_staleness_us < 0 ||
      total_nanos < 0) {
    return Status::InvalidArgument("publish-stats counters violate invariants");
  }
  std::array<int64_t, kVerbLatencyBuckets> latency = {};
  for (size_t b = 0; b < kVerbLatencyBuckets; ++b) {
    if (!reader.ReadI64(&latency[b])) {
      return Status::InvalidArgument("truncated publish-stats block");
    }
    if (latency[b] < 0) {
      return Status::InvalidArgument(
          "publish-stats counters violate invariants");
    }
  }
  publishes_.store(publishes, std::memory_order_relaxed);
  skipped_.store(skipped, std::memory_order_relaxed);
  max_staleness_us_.store(max_staleness_us, std::memory_order_relaxed);
  total_nanos_.store(total_nanos, std::memory_order_relaxed);
  for (size_t b = 0; b < kVerbLatencyBuckets; ++b) {
    latency_[b].store(latency[b], std::memory_order_relaxed);
  }
  return Status::OK();
}

void QueryStats::MergeFrom(const QueryStats& other) {
  for (size_t i = 0; i < kNumQueryVerbs; ++i) {
    const VerbCounters c = other.Read(static_cast<QueryVerb>(i));
    Slot& slot = slots_[i];
    slot.count.fetch_add(c.count, std::memory_order_relaxed);
    slot.errors.fetch_add(c.errors, std::memory_order_relaxed);
    slot.total_nanos.fetch_add(c.total_nanos, std::memory_order_relaxed);
    for (size_t b = 0; b < kLatencyBuckets; ++b) {
      slot.latency[b].fetch_add(c.latency[b], std::memory_order_relaxed);
    }
  }
}

}  // namespace streamhist
