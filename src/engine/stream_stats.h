#ifndef STREAMHIST_ENGINE_STREAM_STATS_H_
#define STREAMHIST_ENGINE_STREAM_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/core/histogram.h"
#include "src/util/result.h"

namespace streamhist {

/// Every verb of the engine's query language, stream-scoped and
/// engine-scoped alike. The enumerator order is the SHMS v4 serialization
/// order — append new verbs at the end (before kNumVerbs) and bump the
/// snapshot version, never reorder.
enum class QueryVerb : uint8_t {
  kSum = 0,
  kAvg,
  kSumBound,
  kAvgBound,
  kPoint,
  kQuantile,
  kDistinct,
  kCount,
  kError,
  kBuild,
  kAppend,
  kDescribe,
  kShow,
  kStats,
  kCreate,
  kDrop,
  kList,
  kMemory,
  kSave,
  kLoad,
  kNumVerbs  // sentinel, not a verb
};

inline constexpr size_t kNumQueryVerbs =
    static_cast<size_t>(QueryVerb::kNumVerbs);

/// Stable upper-case name ("SUM", "BUILD", ...).
const char* QueryVerbName(QueryVerb verb);

/// Parses an upper-case verb token; false when it names no known verb.
bool ParseQueryVerb(std::string_view token, QueryVerb* verb);

/// Number of logarithmic latency buckets QueryStats keeps per verb.
inline constexpr size_t kVerbLatencyBuckets = 24;

/// Point-in-time copy of one verb's counters (plain values, no atomics).
struct VerbCounters {
  int64_t count = 0;
  int64_t errors = 0;
  int64_t total_nanos = 0;
  std::array<int64_t, kVerbLatencyBuckets> latency = {};
};

/// Per-verb execution counters and latency histograms, safe to record into
/// from any number of threads concurrently (relaxed atomics: counters are
/// diagnostics, not synchronization). One instance lives in every
/// ManagedStream (stream-scoped verbs, carried through SHMS v4 checkpoints)
/// and one in the QueryEngine (engine-scoped verbs, process-lifetime only).
///
/// Latencies land in logarithmic buckets: bucket 0 is [0, 512ns) and bucket
/// i >= 1 covers [256 << i, 256 << (i+1)) ns, the last bucket open-ended —
/// 24 buckets span half a microsecond to ~2 seconds, plenty for verbs that
/// range from a lock-free snapshot lookup to an exact DP build.
class QueryStats {
 public:
  static constexpr size_t kLatencyBuckets = kVerbLatencyBuckets;

  QueryStats() = default;
  QueryStats(const QueryStats&) = delete;
  QueryStats& operator=(const QueryStats&) = delete;

  /// Which latency bucket `nanos` lands in.
  static size_t LatencyBucketIndex(int64_t nanos);

  /// Inclusive lower edge of bucket `index` in nanoseconds (0 for bucket 0).
  static int64_t LatencyBucketLowerNanos(size_t index);

  /// Exclusive upper edge of bucket `index` in nanoseconds.
  static int64_t LatencyBucketUpperNanos(size_t index);

  /// Records one execution of `verb`: outcome and wall-clock cost.
  void Record(QueryVerb verb, bool ok, int64_t nanos);

  /// A coherent-enough copy of one verb's counters (each field read
  /// atomically; fields may straddle a concurrent Record).
  VerbCounters Read(QueryVerb verb) const;

  /// True when any verb has a nonzero count.
  bool Any() const;

  /// The verb's latency distribution rendered as a core/histogram Histogram:
  /// domain index i is latency bucket i, the bucket value its hit count. An
  /// empty histogram when the verb was never recorded.
  Histogram LatencyHistogram(QueryVerb verb) const;

  /// One "VERB count=N errors=E mean=X p50<=Y p99<=Z" line per verb with a
  /// nonzero count, joined with '\n'; empty string when nothing was
  /// recorded. The quantiles are bucket upper bounds, hence the "<=".
  std::string Render() const;

  /// Fixed-size byte image (SerializedBytes() long) of every counter — the
  /// SHMS v4 stats block.
  std::string Serialize() const;

  /// Inverse of Serialize into *this (expects a fresh instance). Rejects
  /// wrong sizes, mismatched layout constants, and negative counters.
  Status Deserialize(std::string_view bytes);

  /// Byte length of Serialize()'s output — a layout constant.
  static constexpr size_t SerializedBytes() {
    // Two u32 layout constants, then per verb: count, errors, total_nanos
    // and the latency buckets, all i64.
    return 8 + kNumQueryVerbs * 8 * (3 + kLatencyBuckets);
  }

  /// Adds every counter of `other` into *this (LOAD-time merge of restored
  /// stream stats is not needed today, but STATS aggregates engine views).
  void MergeFrom(const QueryStats& other);

 private:
  struct Slot {
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> errors{0};
    std::atomic<int64_t> total_nanos{0};
    std::array<std::atomic<int64_t>, kLatencyBuckets> latency{};
  };
  std::array<Slot, kNumQueryVerbs> slots_;
};

/// "1.2us" / "3.4ms" style rendering of a nanosecond count.
std::string FormatNanos(double nanos);

/// Point-in-time copy of a stream's publication counters.
struct PublishCounters {
  int64_t publishes = 0;
  int64_t skipped = 0;
  int64_t max_staleness_us = 0;
  int64_t total_nanos = 0;
  std::array<int64_t, kVerbLatencyBuckets> latency = {};
};

/// Snapshot-publication telemetry for one stream: how many times a fresh
/// QuerySnapshot was published, how many publication opportunities the
/// coalescing policy skipped, the worst observed staleness (age of the
/// oldest unpublished append when its publish finally ran), and a latency
/// histogram of the publish operation itself (same log2 nanosecond buckets
/// as QueryStats). Relaxed atomics, same recording discipline as QueryStats;
/// carried through SHMS v6 checkpoints as a tail block.
class PublishStats {
 public:
  PublishStats() = default;
  PublishStats(const PublishStats&) = delete;
  PublishStats& operator=(const PublishStats&) = delete;

  /// Records one publish: its own wall-clock cost and the staleness it
  /// cleared (0 when nothing was pending).
  void RecordPublish(int64_t nanos, int64_t staleness_us);

  /// Records one coalesced (skipped) publication opportunity.
  void RecordSkipped();

  PublishCounters Read() const;

  /// One "publish count=N skipped=K max_staleness=Xus mean=Y p50<=Z p99<=W"
  /// line; empty string when nothing was ever published.
  std::string Render() const;

  /// Fixed-size byte image (SerializedBytes() long) — the SHMS v6 tail.
  std::string Serialize() const;

  /// Inverse of Serialize into *this (expects a fresh instance). Rejects
  /// wrong sizes, layout mismatches, and negative counters.
  Status Deserialize(std::string_view bytes);

  static constexpr size_t SerializedBytes() {
    // Two u32 layout constants, then the four scalar counters and the
    // latency buckets, all i64.
    return 8 + (4 + kVerbLatencyBuckets) * 8;
  }

 private:
  std::atomic<int64_t> publishes_{0};
  std::atomic<int64_t> skipped_{0};
  std::atomic<int64_t> max_staleness_us_{0};
  std::atomic<int64_t> total_nanos_{0};
  std::array<std::atomic<int64_t>, kVerbLatencyBuckets> latency_{};
};

}  // namespace streamhist

#endif  // STREAMHIST_ENGINE_STREAM_STATS_H_
