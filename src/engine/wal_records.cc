#include "src/engine/wal_records.h"

#include <utility>

#include "src/util/framing.h"

namespace streamhist {
namespace walrec {
namespace {

void PutHeader(ByteWriter& out, RecordType type, std::string_view name) {
  out.PutU32(static_cast<uint32_t>(type));
  out.PutLengthPrefixed(name);
}

}  // namespace

std::string EncodeCreate(std::string_view name, const StreamConfig& config) {
  ByteWriter out;
  PutHeader(out, RecordType::kCreate, name);
  out.PutI64(config.window_size);
  out.PutI64(config.num_buckets);
  out.PutF64(config.epsilon);
  out.PutBool(config.keep_lifetime_histogram);
  out.PutBool(config.keep_quantiles);
  out.PutF64(config.quantile_epsilon);
  out.PutBool(config.keep_distinct);
  out.PutBool(config.build_mode == WindowBuildMode::kApprox);
  out.PutF64(config.build_delta);
  return out.TakeBytes();
}

std::string EncodeAppend(std::string_view name,
                         std::span<const double> values) {
  ByteWriter out;
  PutHeader(out, RecordType::kAppend, name);
  out.PutU64(values.size());
  for (double v : values) out.PutF64(v);
  return out.TakeBytes();
}

std::string EncodeDrop(std::string_view name) {
  ByteWriter out;
  PutHeader(out, RecordType::kDrop, name);
  return out.TakeBytes();
}

Result<Record> Decode(std::string_view payload) {
  ByteReader reader(payload);
  uint32_t type = 0;
  std::string_view name;
  if (!reader.ReadU32(&type) || !reader.ReadLengthPrefixed(&name)) {
    return Status::InvalidArgument("truncated wal record payload");
  }
  Record record;
  record.name.assign(name);
  switch (static_cast<RecordType>(type)) {
    case RecordType::kCreate: {
      record.type = RecordType::kCreate;
      bool approx = false;
      if (!reader.ReadI64(&record.config.window_size) ||
          !reader.ReadI64(&record.config.num_buckets) ||
          !reader.ReadF64(&record.config.epsilon) ||
          !reader.ReadBool(&record.config.keep_lifetime_histogram) ||
          !reader.ReadBool(&record.config.keep_quantiles) ||
          !reader.ReadF64(&record.config.quantile_epsilon) ||
          !reader.ReadBool(&record.config.keep_distinct) ||
          !reader.ReadBool(&approx) ||
          !reader.ReadF64(&record.config.build_delta)) {
        return Status::InvalidArgument("truncated wal CREATE record");
      }
      record.config.build_mode =
          approx ? WindowBuildMode::kApprox : WindowBuildMode::kExact;
      break;
    }
    case RecordType::kAppend: {
      record.type = RecordType::kAppend;
      uint64_t count = 0;
      if (!reader.ReadU64(&count) ||
          count > reader.remaining() / sizeof(double)) {
        return Status::InvalidArgument("truncated wal APPEND record");
      }
      record.values.reserve(static_cast<size_t>(count));
      for (uint64_t i = 0; i < count; ++i) {
        double v = 0;
        if (!reader.ReadF64(&v)) {
          return Status::InvalidArgument("truncated wal APPEND record");
        }
        record.values.push_back(v);
      }
      break;
    }
    case RecordType::kDrop:
      record.type = RecordType::kDrop;
      break;
    default:
      return Status::InvalidArgument("unknown wal record type " +
                                     std::to_string(type));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after wal record");
  }
  return record;
}

const char* RecordTypeName(RecordType type) {
  switch (type) {
    case RecordType::kCreate:
      return "create";
    case RecordType::kAppend:
      return "append";
    case RecordType::kDrop:
      return "drop";
  }
  return "unknown";
}

}  // namespace walrec
}  // namespace streamhist
