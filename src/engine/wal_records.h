#ifndef STREAMHIST_ENGINE_WAL_RECORDS_H_
#define STREAMHIST_ENGINE_WAL_RECORDS_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/engine/managed_stream.h"
#include "src/util/result.h"

namespace streamhist {
namespace walrec {

/// Engine-level codec for WAL record payloads (the opaque bytes behind
/// util/wal.h's LSN framing). Every record names its target stream; the
/// type tag is a u32 so future update-stream kinds — RETRACT / delta
/// records per Ganguly's deterministic summaries — extend the enum without
/// a format break.
///
///   payload: type u32 | name (length-prefixed) | type-specific bytes
///     kCreate: the full StreamConfig (window i64, buckets i64, eps f64,
///              keep_lifetime b, keep_quantiles b, quantile_eps f64,
///              keep_distinct b, build_approx b, build_delta f64)
///     kAppend: count u64 | count x f64 raw values (non-finite values are
///              logged as-is and re-quarantined deterministically at replay)
///     kDrop:   nothing
enum class RecordType : uint32_t {
  kCreate = 1,
  kAppend = 2,
  kDrop = 3,
};

struct Record {
  RecordType type = RecordType::kAppend;
  std::string name;
  StreamConfig config;         // kCreate only
  std::vector<double> values;  // kAppend only
};

std::string EncodeCreate(std::string_view name, const StreamConfig& config);
std::string EncodeAppend(std::string_view name, std::span<const double> values);
std::string EncodeDrop(std::string_view name);

/// Decodes one payload; rejects unknown types and malformed bytes (the WAL
/// frame CRC makes these rare, but replay must never trust lengths).
Result<Record> Decode(std::string_view payload);

/// Stable lowercase name for dump output ("create", "append", "drop").
const char* RecordTypeName(RecordType type);

}  // namespace walrec
}  // namespace streamhist

#endif  // STREAMHIST_ENGINE_WAL_RECORDS_H_
