#include "src/quantile/gk_summary.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace streamhist {

namespace {

// The GK invariant threshold: every tuple satisfies g + delta <= floor(2 e n).
int64_t Threshold(double epsilon, int64_t count) {
  return static_cast<int64_t>(
      std::floor(2.0 * epsilon * static_cast<double>(count)));
}

}  // namespace

Result<GKSummary> GKSummary::Create(double epsilon) {
  if (!(epsilon > 0.0 && epsilon < 1.0)) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  return GKSummary(epsilon);
}

void GKSummary::Insert(double value) {
  // First tuple with value >= v; the new tuple goes right before it.
  auto it = std::lower_bound(
      tuples_.begin(), tuples_.end(), value,
      [](const Tuple& t, double v) { return t.value < v; });

  int64_t delta = 0;
  if (it != tuples_.begin() && it != tuples_.end()) {
    delta = std::max<int64_t>(Threshold(epsilon_, count_) - 1, 0);
  }
  tuples_.insert(it, Tuple{value, 1, delta});
  ++count_;

  // Compress every ~1/(2 eps) insertions (GK's schedule).
  if (++inserts_since_compress_ >=
      static_cast<int64_t>(std::ceil(1.0 / (2.0 * epsilon_)))) {
    Compress();
    inserts_since_compress_ = 0;
  }
}

void GKSummary::Compress() {
  if (tuples_.size() <= 2) return;
  const int64_t threshold = Threshold(epsilon_, count_);
  // Right-to-left: fold tuple i into tuple i+1 when the merged tuple still
  // satisfies the invariant. Never fold the first tuple (it pins the
  // minimum) or past the last.
  for (size_t i = tuples_.size() - 2; i >= 1; --i) {
    Tuple& cur = tuples_[i];
    Tuple& next = tuples_[i + 1];
    if (cur.g + next.g + next.delta <= threshold) {
      next.g += cur.g;
      tuples_.erase(tuples_.begin() + static_cast<ptrdiff_t>(i));
    }
  }
}

double GKSummary::Quantile(double phi) const {
  STREAMHIST_CHECK_GT(count_, 0);
  phi = std::clamp(phi, 0.0, 1.0);
  const int64_t r = std::clamp<int64_t>(
      static_cast<int64_t>(std::ceil(phi * static_cast<double>(count_))),
      1, count_);
  const double slack = epsilon_ * static_cast<double>(count_);

  // Return the predecessor of the first tuple whose rmax exceeds r + slack;
  // the GK invariant makes that predecessor's rank lie in [r-slack, r+slack].
  int64_t rmin = 0;
  double prev_value = tuples_.front().value;
  for (const Tuple& t : tuples_) {
    rmin += t.g;
    if (static_cast<double>(rmin + t.delta) >
        static_cast<double>(r) + slack) {
      return prev_value;
    }
    prev_value = t.value;
  }
  return tuples_.back().value;
}

}  // namespace streamhist
