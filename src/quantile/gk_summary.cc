#include "src/quantile/gk_summary.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/framing.h"
#include "src/util/logging.h"

namespace streamhist {

namespace {

// The GK invariant threshold: every tuple satisfies g + delta <= floor(2 e n).
int64_t Threshold(double epsilon, int64_t count) {
  return static_cast<int64_t>(
      std::floor(2.0 * epsilon * static_cast<double>(count)));
}

}  // namespace

Result<GKSummary> GKSummary::Create(double epsilon) {
  if (!(epsilon > 0.0 && epsilon < 1.0)) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  return GKSummary(epsilon);
}

void GKSummary::Insert(double value) {
  // First tuple with value >= v; the new tuple goes right before it.
  auto it = std::lower_bound(
      tuples_.begin(), tuples_.end(), value,
      [](const Tuple& t, double v) { return t.value < v; });

  int64_t delta = 0;
  if (it != tuples_.begin() && it != tuples_.end()) {
    delta = std::max<int64_t>(Threshold(epsilon_, count_) - 1, 0);
  }
  tuples_.insert(it, Tuple{value, 1, delta});
  ++count_;

  // Compress every ~1/(2 eps) insertions (GK's schedule).
  if (++inserts_since_compress_ >=
      static_cast<int64_t>(std::ceil(1.0 / (2.0 * epsilon_)))) {
    Compress();
    inserts_since_compress_ = 0;
  }
}

void GKSummary::Compress() {
  if (tuples_.size() <= 2) return;
  const int64_t threshold = Threshold(epsilon_, count_);
  // Right-to-left: fold tuple i into tuple i+1 when the merged tuple still
  // satisfies the invariant. Never fold the first tuple (it pins the
  // minimum) or past the last.
  for (size_t i = tuples_.size() - 2; i >= 1; --i) {
    Tuple& cur = tuples_[i];
    Tuple& next = tuples_[i + 1];
    if (cur.g + next.g + next.delta <= threshold) {
      next.g += cur.g;
      tuples_.erase(tuples_.begin() + static_cast<ptrdiff_t>(i));
    }
  }
}

double GKSummary::Quantile(double phi) const {
  STREAMHIST_CHECK_GT(count_, 0);
  phi = std::clamp(phi, 0.0, 1.0);
  const int64_t r = std::clamp<int64_t>(
      static_cast<int64_t>(std::ceil(phi * static_cast<double>(count_))),
      1, count_);
  const double slack = epsilon_ * static_cast<double>(count_);

  // Return the predecessor of the first tuple whose rmax exceeds r + slack;
  // the GK invariant makes that predecessor's rank lie in [r-slack, r+slack].
  int64_t rmin = 0;
  double prev_value = tuples_.front().value;
  for (const Tuple& t : tuples_) {
    rmin += t.g;
    if (static_cast<double>(rmin + t.delta) >
        static_cast<double>(r) + slack) {
      return prev_value;
    }
    prev_value = t.value;
  }
  return tuples_.back().value;
}

namespace {
constexpr uint32_t kGkMagic = 0x5348474B;  // "SHGK"
constexpr uint32_t kGkVersion = 1;
constexpr size_t kBytesPerTuple = 8 + 8 + 8;  // value f64 + g i64 + delta i64
}  // namespace

std::string GKSummary::Serialize() const {
  ByteWriter payload;
  payload.PutF64(epsilon_);
  payload.PutI64(count_);
  payload.PutI64(inserts_since_compress_);
  payload.PutU64(tuples_.size());
  for (const Tuple& t : tuples_) {
    payload.PutF64(t.value);
    payload.PutI64(t.g);
    payload.PutI64(t.delta);
  }
  return WrapFrame(kGkMagic, kGkVersion, payload.bytes());
}

Result<GKSummary> GKSummary::Deserialize(std::string_view bytes) {
  STREAMHIST_ASSIGN_OR_RETURN(FrameView frame,
                              UnwrapFrame(bytes, kGkMagic, "GK summary"));
  if (frame.version != kGkVersion) {
    return Status::InvalidArgument("unsupported GK summary version");
  }
  ByteReader reader(frame.payload);
  double epsilon = 0.0;
  int64_t count = 0, inserts_since_compress = 0;
  uint64_t num_tuples = 0;
  if (!reader.ReadF64(&epsilon) || !reader.ReadI64(&count) ||
      !reader.ReadI64(&inserts_since_compress) ||
      !reader.ReadU64(&num_tuples)) {
    return Status::InvalidArgument("truncated GK summary header");
  }
  if (!std::isfinite(epsilon)) {
    return Status::InvalidArgument("GK epsilon is not finite");
  }
  STREAMHIST_ASSIGN_OR_RETURN(GKSummary summary, Create(epsilon));
  if (count < 0 || inserts_since_compress < 0 ||
      (count > 0) != (num_tuples > 0)) {
    return Status::InvalidArgument("GK counters violate invariants");
  }
  if (num_tuples > reader.remaining() / kBytesPerTuple ||
      num_tuples > static_cast<uint64_t>(count)) {
    return Status::InvalidArgument("GK tuple count exceeds payload");
  }
  summary.count_ = count;
  summary.inserts_since_compress_ = inserts_since_compress;
  summary.tuples_.reserve(num_tuples);
  int64_t rank_total = 0;
  double last_value = -std::numeric_limits<double>::infinity();
  for (uint64_t j = 0; j < num_tuples; ++j) {
    Tuple t{};
    if (!reader.ReadF64(&t.value) || !reader.ReadI64(&t.g) ||
        !reader.ReadI64(&t.delta)) {
      return Status::InvalidArgument("truncated GK tuples");
    }
    // Sorted by value, positive g, non-negative delta: the invariants
    // Quantile's rank walk relies on.
    if (!std::isfinite(t.value) || t.value < last_value || t.g < 1 ||
        t.delta < 0) {
      return Status::InvalidArgument("GK tuples violate invariants");
    }
    last_value = t.value;
    rank_total += t.g;
    summary.tuples_.push_back(t);
  }
  if (rank_total > count) {
    return Status::InvalidArgument("GK ranks exceed insertion count");
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after GK summary");
  }
  return summary;
}

}  // namespace streamhist
