#ifndef STREAMHIST_QUANTILE_GK_SUMMARY_H_
#define STREAMHIST_QUANTILE_GK_SUMMARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/result.h"

namespace streamhist {

/// Greenwald-Khanna one-pass epsilon-approximate quantile summary [GK01]
/// (paper related work, section 2). After N insertions, Quantile(phi)
/// returns a value whose rank is within epsilon * N of ceil(phi * N), in
/// O((1/epsilon) log(epsilon N)) space.
///
/// Included as the paper's related-work substrate: it powers the
/// value-domain equi-depth extension (quantile-boundary histograms over a
/// stream) used by examples and ablation benches.
class GKSummary {
 public:
  /// epsilon must be in (0, 1).
  static Result<GKSummary> Create(double epsilon);

  /// Inserts one value (amortized O(log(1/epsilon) + log log N)).
  void Insert(double value);

  /// Number of inserted values.
  int64_t size() const { return count_; }

  /// A value whose rank is within epsilon * N of phi * N. phi in [0, 1].
  /// Requires size() > 0.
  double Quantile(double phi) const;

  /// Number of summary tuples currently held (space diagnostic).
  int64_t num_tuples() const { return static_cast<int64_t>(tuples_.size()); }

  double epsilon() const { return epsilon_; }

  /// Approximate heap footprint in bytes (for the memory governor).
  int64_t MemoryBytes() const {
    return static_cast<int64_t>(tuples_.capacity() * sizeof(Tuple));
  }

  /// Serializes the summary (tuples + counters) as a framed, CRC-protected
  /// blob; a round-trip restores identical quantile answers and identical
  /// future insert behavior.
  std::string Serialize() const;

  /// Inverse of Serialize; validates the GK tuple invariants and never
  /// aborts on hostile bytes.
  static Result<GKSummary> Deserialize(std::string_view bytes);

 private:
  explicit GKSummary(double epsilon) : epsilon_(epsilon) {}

  /// A GK tuple: value v, g = rmin(v) - rmin(prev), delta = rmax(v) - rmin(v).
  struct Tuple {
    double value;
    int64_t g;
    int64_t delta;
  };

  void Compress();

  double epsilon_;
  int64_t count_ = 0;
  int64_t inserts_since_compress_ = 0;
  std::vector<Tuple> tuples_;  // sorted by value
};

}  // namespace streamhist

#endif  // STREAMHIST_QUANTILE_GK_SUMMARY_H_
