#include "src/quantile/reservoir.h"

namespace streamhist {

Result<ReservoirSample> ReservoirSample::Create(int64_t capacity,
                                                uint64_t seed) {
  if (capacity < 1) {
    return Status::InvalidArgument("capacity must be >= 1");
  }
  return ReservoirSample(capacity, seed);
}

void ReservoirSample::Append(double value) {
  ++seen_;
  if (static_cast<int64_t>(sample_.size()) < capacity_) {
    sample_.push_back(value);
    return;
  }
  // Replace a uniformly random slot with probability capacity / seen.
  const int64_t j = rng_.UniformInt(0, seen_ - 1);
  if (j < capacity_) {
    sample_[static_cast<size_t>(j)] = value;
  }
}

double ReservoirSample::EstimateMean() const {
  if (sample_.empty()) return 0.0;
  long double total = 0.0L;
  for (double v : sample_) total += v;
  return static_cast<double>(total / static_cast<long double>(sample_.size()));
}

double ReservoirSample::EstimateTotalSum() const {
  return EstimateMean() * static_cast<double>(seen_);
}

double ReservoirSample::EstimateCountInRange(double lo, double hi) const {
  if (sample_.empty()) return 0.0;
  int64_t in_range = 0;
  for (double v : sample_) {
    if (v >= lo && v < hi) ++in_range;
  }
  return static_cast<double>(in_range) /
         static_cast<double>(sample_.size()) * static_cast<double>(seen_);
}

}  // namespace streamhist
