#ifndef STREAMHIST_QUANTILE_RESERVOIR_H_
#define STREAMHIST_QUANTILE_RESERVOIR_H_

#include <cstdint>
#include <vector>

#include "src/util/random.h"
#include "src/util/result.h"

namespace streamhist {

/// Classic reservoir sample (Vitter's algorithm R) over a one-pass stream —
/// the random-sampling baseline of Manku et al. [SRL99] cited in the paper's
/// related work. Keeps a uniform sample of `capacity` points from everything
/// seen; supports the scaled estimates used by sampling-based approximate
/// query answering.
class ReservoirSample {
 public:
  /// capacity must be >= 1.
  static Result<ReservoirSample> Create(int64_t capacity, uint64_t seed = 1);

  /// Offers one stream point to the reservoir.
  void Append(double value);

  /// Number of points seen so far.
  int64_t size() const { return seen_; }

  /// Number of points currently in the reservoir (<= capacity).
  int64_t sample_size() const { return static_cast<int64_t>(sample_.size()); }

  const std::vector<double>& sample() const { return sample_; }

  /// Estimated sum over everything seen: mean(sample) * N.
  double EstimateTotalSum() const;

  /// Estimated count of seen points with value in [lo, hi):
  /// (sample fraction in range) * N.
  double EstimateCountInRange(double lo, double hi) const;

  /// Estimated mean of all seen points.
  double EstimateMean() const;

 private:
  ReservoirSample(int64_t capacity, uint64_t seed)
      : capacity_(capacity), rng_(seed) {}

  int64_t capacity_;
  int64_t seen_ = 0;
  Random rng_;
  std::vector<double> sample_;
};

}  // namespace streamhist

#endif  // STREAMHIST_QUANTILE_RESERVOIR_H_
