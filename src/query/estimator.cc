#include "src/query/estimator.h"

// The estimator adapters are header-only; this translation unit keeps the
// header honest about being self-contained.
