#ifndef STREAMHIST_QUERY_ESTIMATOR_H_
#define STREAMHIST_QUERY_ESTIMATOR_H_

#include <cstdint>
#include <span>
#include <string>

#include "src/core/histogram.h"
#include "src/stream/prefix_sums.h"
#include "src/wavelet/synopsis.h"

namespace streamhist {

/// Uniform interface over the synopses the paper's experiments compare:
/// answers approximate point and range-sum queries over a length-n sequence.
class RangeSumEstimator {
 public:
  virtual ~RangeSumEstimator() = default;

  /// Estimated sum over the half-open range [lo, hi).
  virtual double RangeSum(int64_t lo, int64_t hi) const = 0;

  /// Estimated value at index i.
  virtual double Estimate(int64_t i) const = 0;

  /// Domain size n.
  virtual int64_t domain_size() const = 0;

  /// Display name ("exact", "histogram", "wavelet", ...).
  virtual std::string name() const = 0;
};

/// Ground truth: exact answers from materialized data (prefix sums).
class ExactEstimator : public RangeSumEstimator {
 public:
  explicit ExactEstimator(std::span<const double> data)
      : sums_(data), n_(static_cast<int64_t>(data.size())) {}

  double RangeSum(int64_t lo, int64_t hi) const override {
    return sums_.Sum(lo, hi);
  }
  double Estimate(int64_t i) const override { return sums_.Sum(i, i + 1); }
  int64_t domain_size() const override { return n_; }
  std::string name() const override { return "exact"; }

 private:
  PrefixSums sums_;
  int64_t n_;
};

/// Histogram-backed estimates (any of the paper's histogram builders).
class HistogramEstimator : public RangeSumEstimator {
 public:
  /// Does not take ownership; `histogram` must outlive the estimator.
  explicit HistogramEstimator(const Histogram* histogram,
                              std::string name = "histogram")
      : histogram_(histogram), name_(std::move(name)) {}

  double RangeSum(int64_t lo, int64_t hi) const override {
    return histogram_->RangeSum(lo, hi);
  }
  double Estimate(int64_t i) const override {
    return histogram_->Estimate(i);
  }
  int64_t domain_size() const override { return histogram_->domain_size(); }
  std::string name() const override { return name_; }

 private:
  const Histogram* histogram_;
  std::string name_;
};

/// Wavelet-synopsis-backed estimates (the comparison baseline).
class WaveletEstimator : public RangeSumEstimator {
 public:
  /// Does not take ownership; `synopsis` must outlive the estimator.
  explicit WaveletEstimator(const WaveletSynopsis* synopsis)
      : synopsis_(synopsis) {}

  double RangeSum(int64_t lo, int64_t hi) const override {
    return synopsis_->RangeSum(lo, hi);
  }
  double Estimate(int64_t i) const override {
    return synopsis_->Estimate(i);
  }
  int64_t domain_size() const override { return synopsis_->domain_size(); }
  std::string name() const override { return "wavelet"; }

 private:
  const WaveletSynopsis* synopsis_;
};

}  // namespace streamhist

#endif  // STREAMHIST_QUERY_ESTIMATOR_H_
