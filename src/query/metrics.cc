#include "src/query/metrics.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace streamhist {

namespace {

/// Accumulates per-query errors into an AccuracyReport.
class Accumulator {
 public:
  explicit Accumulator(double sanity_floor) : floor_(sanity_floor) {}

  void Add(double exact, double approx) {
    const double abs_err = std::fabs(approx - exact);
    sum_abs_ += abs_err;
    sum_sq_ += abs_err * abs_err;
    sum_rel_ += abs_err / std::max(std::fabs(exact), floor_);
    max_abs_ = std::max(max_abs_, abs_err);
    ++count_;
  }

  AccuracyReport Finish() const {
    AccuracyReport report;
    report.num_queries = count_;
    if (count_ == 0) return report;
    const double n = static_cast<double>(count_);
    report.mean_absolute_error = static_cast<double>(sum_abs_ / n);
    report.root_mean_squared_error =
        std::sqrt(static_cast<double>(sum_sq_ / n));
    report.mean_relative_error = static_cast<double>(sum_rel_ / n);
    report.max_absolute_error = max_abs_;
    return report;
  }

 private:
  double floor_;
  long double sum_abs_ = 0.0L;
  long double sum_sq_ = 0.0L;
  long double sum_rel_ = 0.0L;
  double max_abs_ = 0.0;
  int64_t count_ = 0;
};

}  // namespace

AccuracyReport EvaluateRangeSums(const RangeSumEstimator& exact,
                                 const RangeSumEstimator& approx,
                                 const std::vector<RangeQuery>& queries,
                                 double sanity_floor) {
  STREAMHIST_CHECK_EQ(exact.domain_size(), approx.domain_size());
  Accumulator acc(sanity_floor);
  for (const RangeQuery& q : queries) {
    acc.Add(exact.RangeSum(q.lo, q.hi), approx.RangeSum(q.lo, q.hi));
  }
  return acc.Finish();
}

AccuracyReport EvaluateAllPoints(const RangeSumEstimator& exact,
                                 const RangeSumEstimator& approx,
                                 double sanity_floor) {
  STREAMHIST_CHECK_EQ(exact.domain_size(), approx.domain_size());
  Accumulator acc(sanity_floor);
  for (int64_t i = 0; i < exact.domain_size(); ++i) {
    acc.Add(exact.Estimate(i), approx.Estimate(i));
  }
  return acc.Finish();
}

}  // namespace streamhist
