#ifndef STREAMHIST_QUERY_METRICS_H_
#define STREAMHIST_QUERY_METRICS_H_

#include <cstdint>
#include <vector>

#include "src/query/estimator.h"
#include "src/query/workload.h"

namespace streamhist {

/// Aggregate accuracy of an approximate estimator against ground truth over
/// a query workload.
struct AccuracyReport {
  int64_t num_queries = 0;
  double mean_absolute_error = 0.0;  ///< mean |approx - exact|
  double root_mean_squared_error = 0.0;
  /// Mean of |approx - exact| / max(|exact|, sanity_floor): relative error
  /// with a floor that keeps near-zero truths from dominating.
  double mean_relative_error = 0.0;
  double max_absolute_error = 0.0;
};

/// Evaluates `approx` against `exact` on the range-sum workload.
/// `sanity_floor` guards the relative-error denominator (default 1.0).
AccuracyReport EvaluateRangeSums(const RangeSumEstimator& exact,
                                 const RangeSumEstimator& approx,
                                 const std::vector<RangeQuery>& queries,
                                 double sanity_floor = 1.0);

/// Evaluates point-query accuracy over every index of the domain.
AccuracyReport EvaluateAllPoints(const RangeSumEstimator& exact,
                                 const RangeSumEstimator& approx,
                                 double sanity_floor = 1.0);

}  // namespace streamhist

#endif  // STREAMHIST_QUERY_METRICS_H_
