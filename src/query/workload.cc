#include "src/query/workload.h"

#include <algorithm>

#include "src/util/logging.h"

namespace streamhist {

std::vector<RangeQuery> GenerateUniformRangeQueries(int64_t domain_size,
                                                    int64_t count,
                                                    Random& rng) {
  STREAMHIST_CHECK_GT(domain_size, 0);
  std::vector<RangeQuery> queries;
  queries.reserve(static_cast<size_t>(count));
  for (int64_t q = 0; q < count; ++q) {
    const int64_t lo = rng.UniformInt(0, domain_size - 1);
    const int64_t span = rng.UniformInt(1, domain_size - lo);
    queries.push_back(RangeQuery{lo, lo + span});
  }
  return queries;
}

std::vector<RangeQuery> GenerateSpanBoundedQueries(int64_t domain_size,
                                                   int64_t count,
                                                   int64_t min_span,
                                                   int64_t max_span,
                                                   Random& rng) {
  STREAMHIST_CHECK_GT(domain_size, 0);
  STREAMHIST_CHECK(1 <= min_span && min_span <= max_span);
  max_span = std::min(max_span, domain_size);
  std::vector<RangeQuery> queries;
  queries.reserve(static_cast<size_t>(count));
  for (int64_t q = 0; q < count; ++q) {
    const int64_t span = rng.UniformInt(min_span, max_span);
    const int64_t lo = rng.UniformInt(0, domain_size - span);
    queries.push_back(RangeQuery{lo, lo + span});
  }
  return queries;
}

}  // namespace streamhist
