#ifndef STREAMHIST_QUERY_WORKLOAD_H_
#define STREAMHIST_QUERY_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "src/util/random.h"

namespace streamhist {

/// One range aggregation query over the half-open index range [lo, hi).
struct RangeQuery {
  int64_t lo = 0;
  int64_t hi = 0;

  int64_t span() const { return hi - lo; }
};

/// Generates `count` random range-sum queries over a domain of size n,
/// "the starting points as well as the span of the queries chosen uniformly
/// and independently" (paper section 5.1): lo uniform on [0, n), span
/// uniform on [1, n - lo].
std::vector<RangeQuery> GenerateUniformRangeQueries(int64_t domain_size,
                                                    int64_t count,
                                                    Random& rng);

/// Generates queries whose spans are uniform on [min_span, max_span]
/// (clamped to fit), for span-controlled sweeps.
std::vector<RangeQuery> GenerateSpanBoundedQueries(int64_t domain_size,
                                                   int64_t count,
                                                   int64_t min_span,
                                                   int64_t max_span,
                                                   Random& rng);

}  // namespace streamhist

#endif  // STREAMHIST_QUERY_WORKLOAD_H_
