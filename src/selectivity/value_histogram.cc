#include "src/selectivity/value_histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/core/vopt_dp.h"
#include "src/util/logging.h"

namespace streamhist {

namespace {

Status CheckValueBuckets(const std::vector<ValueBucket>& buckets) {
  for (size_t k = 0; k < buckets.size(); ++k) {
    const ValueBucket& b = buckets[k];
    if (!(b.lo < b.hi)) {
      return Status::InvalidArgument("empty or inverted value bucket");
    }
    if (b.count < 0) {
      return Status::InvalidArgument("negative bucket count");
    }
    if (k > 0 && buckets[k - 1].hi != b.lo) {
      return Status::InvalidArgument("value buckets must be contiguous");
    }
  }
  return Status::OK();
}

// Width of the intersection of [lo, hi) with [a, b).
double Overlap(double lo, double hi, double a, double b) {
  const double left = std::max(lo, a);
  const double right = std::min(hi, b);
  return right > left ? right - left : 0.0;
}

}  // namespace

Result<ValueHistogram> ValueHistogram::Make(std::vector<ValueBucket> buckets) {
  STREAMHIST_RETURN_NOT_OK(CheckValueBuckets(buckets));
  return ValueHistogram(std::move(buckets));
}

double ValueHistogram::total_count() const {
  double total = 0.0;
  for (const ValueBucket& b : buckets_) total += b.count;
  return total;
}

double ValueHistogram::EstimateCountInRange(double lo, double hi) const {
  if (!(lo < hi)) return 0.0;
  double estimate = 0.0;
  for (const ValueBucket& b : buckets_) {
    const double overlap = Overlap(lo, hi, b.lo, b.hi);
    if (overlap > 0.0) {
      estimate += b.count * overlap / (b.hi - b.lo);
    }
  }
  return estimate;
}

double ValueHistogram::EstimateSelectivity(double lo, double hi) const {
  const double total = total_count();
  return total > 0.0 ? EstimateCountInRange(lo, hi) / total : 0.0;
}

std::string ValueHistogram::ToString() const {
  std::ostringstream os;
  for (size_t k = 0; k < buckets_.size(); ++k) {
    if (k > 0) os << ' ';
    os << '[' << buckets_[k].lo << ',' << buckets_[k].hi
       << ")=" << buckets_[k].count;
  }
  return os.str();
}

FrequencyDistribution::FrequencyDistribution(std::span<const double> data)
    : sorted_(data.begin(), data.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

int64_t FrequencyDistribution::CountInRange(double lo, double hi) const {
  const auto first = std::lower_bound(sorted_.begin(), sorted_.end(), lo);
  const auto last = std::lower_bound(sorted_.begin(), sorted_.end(), hi);
  return last - first;
}

double FrequencyDistribution::min() const {
  STREAMHIST_CHECK(!sorted_.empty());
  return sorted_.front();
}

double FrequencyDistribution::max() const {
  STREAMHIST_CHECK(!sorted_.empty());
  return sorted_.back();
}

ValueHistogram BuildEquiWidthValueHistogram(std::span<const double> data,
                                            int64_t num_buckets) {
  STREAMHIST_CHECK_GT(num_buckets, 0);
  STREAMHIST_CHECK(!data.empty());
  const auto [min_it, max_it] = std::minmax_element(data.begin(), data.end());
  const double lo = *min_it;
  // Half-open buckets: nudge the top edge so the max value is included.
  const double hi = std::nextafter(*max_it, *max_it + 1.0);
  const double width = (hi - lo) / static_cast<double>(num_buckets);

  std::vector<ValueBucket> buckets(static_cast<size_t>(num_buckets));
  for (int64_t k = 0; k < num_buckets; ++k) {
    buckets[static_cast<size_t>(k)].lo = lo + width * static_cast<double>(k);
    buckets[static_cast<size_t>(k)].hi =
        k + 1 == num_buckets ? hi : lo + width * static_cast<double>(k + 1);
  }
  for (double v : data) {
    int64_t k = width > 0
                    ? static_cast<int64_t>((v - lo) / width)
                    : 0;
    k = std::clamp<int64_t>(k, 0, num_buckets - 1);
    buckets[static_cast<size_t>(k)].count += 1.0;
  }
  return ValueHistogram::Make(std::move(buckets)).value();
}

ValueHistogram BuildEquiDepthValueHistogram(std::span<const double> data,
                                            int64_t num_buckets) {
  STREAMHIST_CHECK_GT(num_buckets, 0);
  STREAMHIST_CHECK(!data.empty());
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  const int64_t n = static_cast<int64_t>(sorted.size());
  const int64_t depth = (n + num_buckets - 1) / num_buckets;

  // Values whose multiplicity reaches a full bucket depth get a singleton
  // bucket of their own (compressed-histogram behavior): the
  // uniform-in-bucket assumption would otherwise smear a heavy value across
  // a wide range. Every bucket holds >= depth points except possibly the
  // last, so at most num_buckets + 1 buckets are produced.
  std::vector<ValueBucket> buckets;
  int64_t i = 0;
  double cursor = sorted.front();  // low edge of the next bucket
  while (i < n) {
    const double v = sorted[static_cast<size_t>(i)];
    const int64_t run_end =
        std::upper_bound(sorted.begin() + static_cast<ptrdiff_t>(i),
                         sorted.end(), v) -
        sorted.begin();
    if (run_end - i >= depth) {
      // Heavy value: close any gap up to v, then a singleton bucket.
      const double v_top = std::nextafter(v, v + 1.0);
      if (cursor < v) {
        buckets.push_back(ValueBucket{cursor, v, 0.0});
      }
      buckets.push_back(
          ValueBucket{v, v_top, static_cast<double>(run_end - i)});
      cursor = v_top;
      i = run_end;
      continue;
    }
    // Normal bucket: take ~depth points, extended to a value-run boundary so
    // equal values never straddle buckets.
    int64_t j = std::min(n, i + depth);
    j = std::upper_bound(sorted.begin() + static_cast<ptrdiff_t>(j - 1),
                         sorted.end(), sorted[static_cast<size_t>(j - 1)]) -
        sorted.begin();
    const double end_value =
        j == n ? std::nextafter(sorted.back(), sorted.back() + 1.0)
               : sorted[static_cast<size_t>(j)];
    buckets.push_back(
        ValueBucket{cursor, end_value, static_cast<double>(j - i)});
    cursor = end_value;
    i = j;
  }
  return ValueHistogram::Make(std::move(buckets)).value();
}

ValueHistogram BuildStreamingEquiDepthHistogram(const GKSummary& summary,
                                                int64_t num_buckets) {
  STREAMHIST_CHECK_GT(num_buckets, 0);
  STREAMHIST_CHECK_GT(summary.size(), 0);
  const double n = static_cast<double>(summary.size());
  const double lo = summary.Quantile(0.0);
  const double top_value = summary.Quantile(1.0);
  const double top = std::nextafter(top_value, top_value + 1.0);

  std::vector<ValueBucket> buckets;
  double start_value = lo;
  for (int64_t k = 1; k <= num_buckets; ++k) {
    const double phi = static_cast<double>(k) / static_cast<double>(num_buckets);
    double end_value = k == num_buckets ? top : summary.Quantile(phi);
    if (end_value <= start_value) continue;  // duplicate-heavy region
    buckets.push_back(ValueBucket{start_value, end_value, n /
                                  static_cast<double>(num_buckets)});
    start_value = end_value;
  }
  if (buckets.empty()) {
    buckets.push_back(ValueBucket{lo, top, n});
  } else {
    buckets.back().hi = std::max(buckets.back().hi, top);
  }
  // Redistribute so counts total exactly n even after merged boundaries.
  const double scale = n / [&] {
    double t = 0.0;
    for (const ValueBucket& b : buckets) t += b.count;
    return t;
  }();
  for (ValueBucket& b : buckets) b.count *= scale;
  return ValueHistogram::Make(std::move(buckets)).value();
}

ValueHistogram BuildVOptimalValueHistogram(std::span<const double> data,
                                           int64_t num_buckets,
                                           int64_t domain_bins) {
  STREAMHIST_CHECK_GT(num_buckets, 0);
  STREAMHIST_CHECK_GT(domain_bins, 0);
  STREAMHIST_CHECK(!data.empty());
  const auto [min_it, max_it] = std::minmax_element(data.begin(), data.end());
  const double lo = *min_it;
  const double hi = std::nextafter(*max_it, *max_it + 1.0);
  const double cell = (hi - lo) / static_cast<double>(domain_bins);

  // Frequency vector over the discretized value domain.
  std::vector<double> freq(static_cast<size_t>(domain_bins), 0.0);
  for (double v : data) {
    int64_t c = cell > 0 ? static_cast<int64_t>((v - lo) / cell) : 0;
    c = std::clamp<int64_t>(c, 0, domain_bins - 1);
    freq[static_cast<size_t>(c)] += 1.0;
  }

  // The paper's optimal DP on the frequency sequence.
  const OptimalHistogramResult result =
      BuildVOptimalHistogram(freq, num_buckets);

  std::vector<ValueBucket> buckets;
  buckets.reserve(static_cast<size_t>(result.histogram.num_buckets()));
  for (const Bucket& b : result.histogram.buckets()) {
    double count = 0.0;
    for (int64_t c = b.begin; c < b.end; ++c) {
      count += freq[static_cast<size_t>(c)];
    }
    const double bucket_lo = lo + cell * static_cast<double>(b.begin);
    const double bucket_hi =
        b.end == domain_bins ? hi : lo + cell * static_cast<double>(b.end);
    buckets.push_back(ValueBucket{bucket_lo, bucket_hi, count});
  }
  return ValueHistogram::Make(std::move(buckets)).value();
}

}  // namespace streamhist
