#ifndef STREAMHIST_SELECTIVITY_VALUE_HISTOGRAM_H_
#define STREAMHIST_SELECTIVITY_VALUE_HISTOGRAM_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/quantile/gk_summary.h"
#include "src/util/result.h"

namespace streamhist {

/// Value-domain (selectivity-estimation) histograms — the classic database
/// application the paper's introduction cites ([IP95], [PI97]): buckets
/// partition the *value* space and store how many points fall in each, so a
/// predicate `lo <= v < hi` can be estimated without touching the data.
/// These complement the paper's serial (index-domain) histograms: the same
/// V-optimal machinery, applied to the value-frequency vector.

/// One value-domain bucket: `count` points have values in [lo, hi).
struct ValueBucket {
  double lo = 0.0;
  double hi = 0.0;
  double count = 0.0;
};

/// A value-domain histogram with the continuous-values uniformity
/// assumption inside each bucket.
class ValueHistogram {
 public:
  ValueHistogram() = default;

  /// Buckets must be non-empty ranges, contiguous and increasing.
  static Result<ValueHistogram> Make(std::vector<ValueBucket> buckets);

  int64_t num_buckets() const { return static_cast<int64_t>(buckets_.size()); }
  const std::vector<ValueBucket>& buckets() const { return buckets_; }

  /// Total point count across buckets.
  double total_count() const;

  /// Estimated number of points with value in [lo, hi) (uniform-in-bucket).
  double EstimateCountInRange(double lo, double hi) const;

  /// EstimateCountInRange / total_count (0 when empty).
  double EstimateSelectivity(double lo, double hi) const;

  /// "[0,10)=42 [10,50)=7" style rendering.
  std::string ToString() const;

 private:
  explicit ValueHistogram(std::vector<ValueBucket> buckets)
      : buckets_(std::move(buckets)) {}

  std::vector<ValueBucket> buckets_;
};

/// Exact value-frequency ground truth over materialized data (for tests and
/// benchmarks).
class FrequencyDistribution {
 public:
  explicit FrequencyDistribution(std::span<const double> data);

  int64_t total() const { return static_cast<int64_t>(sorted_.size()); }

  /// Exact number of points with value in [lo, hi).
  int64_t CountInRange(double lo, double hi) const;

  double min() const;
  double max() const;

 private:
  std::vector<double> sorted_;
};

/// Equal-width value buckets over [min, max]. Requires B >= 1 and data
/// non-empty.
ValueHistogram BuildEquiWidthValueHistogram(std::span<const double> data,
                                            int64_t num_buckets);

/// Exact equi-depth buckets (offline, via sorting): each bucket holds
/// ~N/B points.
ValueHistogram BuildEquiDepthValueHistogram(std::span<const double> data,
                                            int64_t num_buckets);

/// One-pass streaming equi-depth: bucket boundaries read off a GK quantile
/// summary — each boundary's rank is within epsilon * N of the ideal
/// k*N/B, so every bucket count is within 2 * epsilon * N of N/B. This is
/// the paper's related-work substrate ([GK01], [SRL98]) put to its classic
/// use.
ValueHistogram BuildStreamingEquiDepthHistogram(const GKSummary& summary,
                                                int64_t num_buckets);

/// V-optimal histogram over the value-frequency vector (the [IP95] serial
/// V-optimal on the value domain): the value range is discretized into
/// `domain_bins` cells, the per-cell frequencies form a sequence, and the
/// paper's optimal DP chooses the B bucket boundaries minimizing the SSE of
/// the frequency approximation.
ValueHistogram BuildVOptimalValueHistogram(std::span<const double> data,
                                           int64_t num_buckets,
                                           int64_t domain_bins);

}  // namespace streamhist

#endif  // STREAMHIST_SELECTIVITY_VALUE_HISTOGRAM_H_
