#include "src/server/replication.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "src/engine/query_engine.h"
#include "src/server/socket.h"
#include "src/server/wire.h"
#include "src/util/backoff.h"
#include "src/util/fault.h"
#include "src/util/governor.h"
#include "src/util/wal.h"

namespace streamhist {
namespace net {

namespace {

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Blocking send of a whole frame. Tolerates fault-injected EAGAIN (the
/// socket itself is blocking) by waiting for writability; false on any real
/// error — the caller tears the link down.
bool SendAll(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = WriteFd(fd, bytes.data() + sent, bytes.size() - sent);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{};
      p.fd = fd;
      p.events = POLLOUT;
      (void)::poll(&p, 1, 100);
      continue;
    }
    return false;
  }
  return true;
}

void SetBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
}

}  // namespace

// --- ReplicationHub ---------------------------------------------------------

struct ReplicationHub::Impl {
  QueryEngine& engine;
  HubOptions options;

  /// One adopted replica link, served by two threads: the feeder ships WAL
  /// records (blocking writes, durability waits), the reader drains the
  /// replica's Progress acks the moment they arrive — a semi-sync barrier
  /// is blocked on exactly that, so acks must not wait out the feeder's
  /// durability sleep. `dead` flags the subscriber for reaping (a thread
  /// cannot join itself).
  struct Subscriber {
    UniqueFd fd;
    int64_t charge = 0;
    int64_t from_lsn = 1;
    std::string input;  // replica->primary bytes buffered pre-handoff
    std::atomic<int64_t> acked_lsn{0};
    std::atomic<bool> dead{false};
    std::thread feeder;
    std::thread reader;
  };

  mutable std::mutex mu;  // guards subs; acked_cv waits on it
  std::condition_variable acked_cv;
  std::vector<std::unique_ptr<Subscriber>> subs;
  std::atomic<bool> stop{false};

  std::atomic<int64_t> subscribes{0};
  std::atomic<int64_t> batches{0};
  std::atomic<int64_t> records{0};
  std::atomic<int64_t> heartbeats{0};
  std::atomic<int64_t> bootstraps{0};
  std::atomic<int64_t> sync_waits{0};
  std::atomic<int64_t> sync_timeouts{0};

  Impl(QueryEngine& e, const HubOptions& o) : engine(e), options(o) {}

  /// Parses complete frames out of `buf`, applying Progress acks; false on
  /// protocol damage (framing is lost — drop the link).
  bool ParseAcks(Subscriber& sub, std::string& buf) {
    while (!buf.empty()) {
      const ReplFrameScan scan = ScanReplFrame(buf, 4096);
      if (scan.state == FrameScan::State::kNeedMore) return true;
      if (scan.state == FrameScan::State::kBad) return false;
      const std::string_view frame(buf.data(), scan.frame_bytes);
      if (scan.magic == kReplProgressMagic) {
        const Result<int64_t> lsn = DecodeReplProgress(frame);
        if (!lsn.ok()) return false;
        int64_t cur = sub.acked_lsn.load(std::memory_order_relaxed);
        while (*lsn > cur && !sub.acked_lsn.compare_exchange_weak(
                                 cur, *lsn, std::memory_order_relaxed)) {
        }
        acked_cv.notify_all();
      }
      // Non-Progress frames from a replica are undefined; drop them — the
      // shipping direction carries its own integrity via CRC.
      buf.erase(0, scan.frame_bytes);
    }
    return true;
  }

  void ReaderMain(Subscriber* sub) {
    std::string buf = std::move(sub->input);
    bool healthy = ParseAcks(*sub, buf);
    while (healthy) {
      char chunk[4096];
      const ssize_t n = ::recv(sub->fd.get(), chunk, sizeof(chunk), 0);
      if (n == 0) break;  // replica closed its end
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // includes the shutdown() from Stop / the feeder
      }
      buf.append(chunk, static_cast<size_t>(n));
      healthy = ParseAcks(*sub, buf);
    }
    sub->dead.store(true, std::memory_order_release);
    ::shutdown(sub->fd.get(), SHUT_RDWR);  // unsticks a blocked feeder write
    acked_cv.notify_all();
  }

  void FeederMain(Subscriber* sub) {
    wal::TailCursor cursor;
    cursor.next_lsn = std::max<int64_t>(1, sub->from_lsn);
    while (!stop.load(std::memory_order_acquire) &&
           !sub->dead.load(std::memory_order_acquire)) {
      // Fault `net.partition`: the link silently dies mid-stream, exactly
      // like a yanked cable — no FIN reaches the replica until the close.
      if (fault::Triggered("net.partition")) break;
      wal::TailBatch batch;
      const Status read =
          engine.WalReadTail(&cursor, options.max_batch_bytes, &batch);
      if (!read.ok()) break;
      if (batch.truncated_below) {
        // The records this replica needs were checkpoint-truncated: hand
        // over the checkpoint image instead and resume above its floor.
        std::string image;
        int64_t floor = 0;
        if (!engine.BuildCheckpointImage(&image, &floor).ok()) break;
        if (!SendAll(sub->fd.get(), EncodeReplBootstrap(floor, image))) break;
        bootstraps.fetch_add(1, std::memory_order_relaxed);
        cursor = wal::TailCursor{};
        cursor.next_lsn = floor + 1;
        continue;
      }
      if (!batch.records.empty()) {
        if (!SendAll(sub->fd.get(), EncodeReplRecords(batch.records))) break;
        batches.fetch_add(1, std::memory_order_relaxed);
        records.fetch_add(static_cast<int64_t>(batch.records.size()),
                          std::memory_order_relaxed);
        continue;  // keep draining the backlog before waiting
      }
      // Caught up. Wait for the next durable record; a quiet interval
      // becomes a heartbeat so the replica can tell silence from death.
      if (!engine.WalWaitDurable(cursor.next_lsn, options.heartbeat_ms)) {
        if (!SendAll(sub->fd.get(),
                     EncodeReplHeartbeat(engine.WalDurableLsn()))) {
          break;
        }
        heartbeats.fetch_add(1, std::memory_order_relaxed);
      }
    }
    sub->dead.store(true, std::memory_order_release);
    ::shutdown(sub->fd.get(), SHUT_RDWR);  // unsticks the reader's recv
    // A semi-sync waiter blocked on this subscriber must recheck liveness.
    acked_cv.notify_all();
  }

  /// Joins and frees subscribers whose feeders exited. Called off the
  /// feeder threads (Adopt / Stop / stats).
  void ReapLocked() {
    auto it = subs.begin();
    while (it != subs.end()) {
      Subscriber& sub = **it;
      if (sub.dead.load(std::memory_order_acquire)) {
        if (sub.feeder.joinable()) sub.feeder.join();
        if (sub.reader.joinable()) sub.reader.join();
        governor::Release(sub.charge);
        it = subs.erase(it);
      } else {
        ++it;
      }
    }
  }
};

ReplicationHub::ReplicationHub(QueryEngine& engine, const HubOptions& options)
    : impl_(std::make_unique<Impl>(engine, options)) {}

ReplicationHub::~ReplicationHub() { Stop(); }

void ReplicationHub::Adopt(int fd, int64_t governor_charge, int64_t from_lsn,
                           std::string pending_input) {
  auto sub = std::make_unique<Impl::Subscriber>();
  sub->fd = UniqueFd(fd);
  sub->charge = governor_charge;
  sub->from_lsn = from_lsn;
  sub->input = std::move(pending_input);
  // The TCP server accepted it nonblocking; the feeder wants blocking
  // writes as its flow control.
  SetBlocking(sub->fd.get());
  impl_->subscribes.fetch_add(1, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->ReapLocked();
  if (impl_->stop.load(std::memory_order_acquire)) {
    governor::Release(sub->charge);
    return;  // shutting down: the socket just closes
  }
  Impl::Subscriber* raw = sub.get();
  Impl* impl = impl_.get();
  sub->feeder = std::thread([impl, raw] { impl->FeederMain(raw); });
  sub->reader = std::thread([impl, raw] { impl->ReaderMain(raw); });
  impl_->subs.push_back(std::move(sub));
}

Status ReplicationHub::WaitShipped(int64_t lsn) {
  if (impl_->options.sync_ms <= 0) return Status::OK();
  std::unique_lock<std::mutex> lock(impl_->mu);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(impl_->options.sync_ms);
  bool waited = false;
  for (;;) {
    bool any_live = false;
    int64_t best = 0;
    for (const auto& sub : impl_->subs) {
      if (sub->dead.load(std::memory_order_acquire)) continue;
      any_live = true;
      best = std::max(best, sub->acked_lsn.load(std::memory_order_relaxed));
    }
    // No replica connected: semi-sync degrades to async rather than
    // stalling every write until one shows up.
    if (!any_live || best >= lsn) return Status::OK();
    if (!waited) {
      waited = true;
      impl_->sync_waits.fetch_add(1, std::memory_order_relaxed);
    }
    if (impl_->acked_cv.wait_until(lock, deadline) ==
        std::cv_status::timeout) {
      // The record is locally durable; a slow replica must not turn into
      // client-visible write errors (and retried duplicates). Count it and
      // move on.
      impl_->sync_timeouts.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
  }
}

void ReplicationHub::Stop() {
  impl_->stop.store(true, std::memory_order_release);
  std::vector<std::unique_ptr<Impl::Subscriber>> drained;
  {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    drained.swap(impl_->subs);
  }
  for (auto& sub : drained) {
    ::shutdown(sub->fd.get(), SHUT_RDWR);
  }
  for (auto& sub : drained) {
    if (sub->feeder.joinable()) sub->feeder.join();
    if (sub->reader.joinable()) sub->reader.join();
    governor::Release(sub->charge);
  }
  impl_->acked_cv.notify_all();
}

HubStatsSnapshot ReplicationHub::stats() const {
  HubStatsSnapshot snap;
  {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    for (const auto& sub : impl_->subs) {
      if (!sub->dead.load(std::memory_order_acquire)) ++snap.subscribers;
      snap.acked_lsn = std::max(
          snap.acked_lsn, sub->acked_lsn.load(std::memory_order_relaxed));
    }
  }
  snap.subscribes = impl_->subscribes.load(std::memory_order_relaxed);
  snap.batches = impl_->batches.load(std::memory_order_relaxed);
  snap.records = impl_->records.load(std::memory_order_relaxed);
  snap.heartbeats = impl_->heartbeats.load(std::memory_order_relaxed);
  snap.bootstraps = impl_->bootstraps.load(std::memory_order_relaxed);
  snap.sync_waits = impl_->sync_waits.load(std::memory_order_relaxed);
  snap.sync_timeouts = impl_->sync_timeouts.load(std::memory_order_relaxed);
  return snap;
}

// --- ReplicaClient ----------------------------------------------------------

struct ReplicaClient::Impl {
  QueryEngine& engine;
  ReplicaOptions options;

  std::atomic<bool> stop{false};
  std::thread thread;

  std::mutex fd_mu;  // guards fd against Stop()'s shutdown from outside
  UniqueFd fd;

  std::mutex status_mu;  // guards status (the thread's working copy)
  QueryEngine::ReplicaStatus status;

  std::mutex lifecycle_mu;  // serializes Stop/Promote
  bool promoted = false;
  int64_t promoted_lsn = 0;

  Impl(QueryEngine& e, const ReplicaOptions& o) : engine(e), options(o) {
    status.is_replica = true;
  }

  /// Mutates the working status under the lock and pushes a copy into the
  /// engine, where STATS and the lag shed read it.
  template <typename Fn>
  void UpdateStatus(Fn&& fn) {
    QueryEngine::ReplicaStatus copy;
    {
      const std::lock_guard<std::mutex> lock(status_mu);
      fn(status);
      copy = status;
    }
    engine.UpdateReplicaStatus(copy);
  }

  /// Handles one complete primary->replica frame; false tears the link
  /// down (CRC damage, apply failure) so the resubscribe resynchronizes.
  bool HandleFrame(uint32_t magic, std::string_view frame) {
    const int64_t now_ms = SteadyNowMs();
    switch (magic) {
      case kReplRecordsMagic: {
        const Result<std::vector<ReplRecord>> decoded =
            DecodeReplRecords(frame);
        // A corrupt frame (fault repl.frame.corrupt, or a real fault in
        // between) fails the CRC inside UnwrapFrame: never apply, drop the
        // link, resume from our durable LSN.
        if (!decoded.ok()) return false;
        if (!engine.ApplyReplicatedBatch(*decoded).ok()) return false;
        const int64_t top =
            decoded->empty() ? 0 : decoded->back().first;
        UpdateStatus([&](QueryEngine::ReplicaStatus& s) {
          s.last_contact_ms = now_ms;
          s.batches += 1;
          s.records += static_cast<int64_t>(decoded->size());
          if (top > s.applied_lsn) s.applied_lsn = top;
          if (top > s.primary_durable_lsn) s.primary_durable_lsn = top;
        });
        // The Progress ack carries OUR durable LSN, sent only after
        // ApplyReplicatedBatch's fsync — this is what lets a semi-sync
        // primary treat the ack as replica-durable.
        return SendAll(fd_get(), EncodeReplProgress(engine.WalDurableLsn()));
      }
      case kReplHeartbeatMagic: {
        const Result<int64_t> lsn = DecodeReplHeartbeat(frame);
        if (!lsn.ok()) return false;
        UpdateStatus([&](QueryEngine::ReplicaStatus& s) {
          s.last_contact_ms = now_ms;
          if (*lsn > s.primary_durable_lsn) s.primary_durable_lsn = *lsn;
        });
        return true;
      }
      case kReplBootstrapMagic: {
        const Result<ReplBootstrap> boot = DecodeReplBootstrap(frame);
        if (!boot.ok()) return false;
        if (!engine.BootstrapFromImage(boot->image, boot->wal_floor).ok()) {
          return false;
        }
        UpdateStatus([&](QueryEngine::ReplicaStatus& s) {
          s.last_contact_ms = now_ms;
          s.bootstraps += 1;
          if (boot->wal_floor > s.applied_lsn) s.applied_lsn = boot->wal_floor;
          if (boot->wal_floor > s.primary_durable_lsn) {
            s.primary_durable_lsn = boot->wal_floor;
          }
        });
        return SendAll(fd_get(), EncodeReplProgress(engine.WalDurableLsn()));
      }
      default:
        // Subscribe/Progress never flow primary -> replica; hostile or
        // confused peer — drop the link.
        return false;
    }
  }

  int fd_get() {
    const std::lock_guard<std::mutex> lock(fd_mu);
    return fd.get();
  }

  /// One connected session: subscribe, then pump frames until the link
  /// dies, the primary goes silent, or stop is requested.
  void RunSession() {
    const int64_t from = engine.WalDurableLsn() + 1;
    if (!SendAll(fd_get(), EncodeReplSubscribe(from))) return;
    UpdateStatus([&](QueryEngine::ReplicaStatus& s) {
      s.connected = true;
      s.last_contact_ms = SteadyNowMs();
    });
    std::string buf;
    int64_t last_frame_ms = SteadyNowMs();
    while (!stop.load(std::memory_order_acquire)) {
      pollfd p{};
      p.fd = fd_get();
      p.events = POLLIN;
      const int pr = ::poll(&p, 1, 100);
      if (pr < 0) {
        if (errno == EINTR) continue;
        return;
      }
      if (pr == 0) {
        if (options.dead_peer_timeout_ms > 0 &&
            SteadyNowMs() - last_frame_ms > options.dead_peer_timeout_ms) {
          // Heartbeats stopped: the primary is dead or partitioned.
          return;
        }
        continue;
      }
      char chunk[65536];
      const ssize_t n = ::recv(p.fd, chunk, sizeof(chunk), MSG_DONTWAIT);
      if (n == 0) return;  // primary closed (shutdown, or ERR + close)
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          continue;
        }
        return;
      }
      buf.append(chunk, static_cast<size_t>(n));
      while (!buf.empty()) {
        const ReplFrameScan scan = ScanReplFrame(buf, options.max_frame_bytes);
        if (scan.state == FrameScan::State::kNeedMore) break;
        if (scan.state == FrameScan::State::kBad) return;
        // A text "ERR ..." reply to our Subscribe (refused / not enabled)
        // also lands here as a bad magic and tears the session down.
        const std::string_view frame(buf.data(), scan.frame_bytes);
        if (!HandleFrame(scan.magic, frame)) return;
        last_frame_ms = SteadyNowMs();
        buf.erase(0, scan.frame_bytes);
      }
    }
  }

  void ClientMain() {
    Backoff backoff{BackoffOptions{
        .initial_ms = options.reconnect_initial_ms,
        .max_ms = options.reconnect_max_ms,
        .multiplier = 2.0,
        .jitter = options.reconnect_jitter,
        .seed = options.reconnect_seed,
    }};
    // Sleep in slices so Stop()/PROMOTE never waits out a whole backoff.
    backoff.set_sleeper([this](int64_t ms) {
      const int64_t until = SteadyNowMs() + ms;
      while (!stop.load(std::memory_order_acquire) &&
             SteadyNowMs() < until) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
    int64_t sessions = 0;
    while (!stop.load(std::memory_order_acquire)) {
      Result<UniqueFd> conn = ConnectLoopback(options.primary_port);
      if (conn.ok()) {
        {
          const std::lock_guard<std::mutex> lock(fd_mu);
          fd = std::move(*conn);
        }
        ++sessions;
        if (sessions > 1) {
          UpdateStatus(
              [](QueryEngine::ReplicaStatus& s) { s.reconnects += 1; });
        }
        RunSession();
        // The session made contact, so the next failure starts its backoff
        // schedule from the beginning.
        backoff.Reset();
        {
          const std::lock_guard<std::mutex> lock(fd_mu);
          fd.Reset();
        }
        UpdateStatus(
            [](QueryEngine::ReplicaStatus& s) { s.connected = false; });
      }
      if (stop.load(std::memory_order_acquire)) break;
      backoff.SleepNext();
    }
  }

  void StopThread() {
    stop.store(true, std::memory_order_release);
    {
      const std::lock_guard<std::mutex> lock(fd_mu);
      // RunSession exits at a frame boundary: recv fails, and any frame
      // already being applied finishes first (apply happens on this same
      // thread) — that is the clean LSN boundary PROMOTE needs.
      if (fd.valid()) ::shutdown(fd.get(), SHUT_RDWR);
    }
    if (thread.joinable()) thread.join();
  }
};

ReplicaClient::ReplicaClient(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

Result<std::unique_ptr<ReplicaClient>> ReplicaClient::Start(
    QueryEngine& engine, const ReplicaOptions& options) {
  if (!engine.wal_enabled()) {
    return Status::FailedPrecondition(
        "a replica needs its own write-ahead log (start with --wal-dir)");
  }
  auto impl = std::make_unique<Impl>(engine, options);
  engine.SetReadOnly(true);
  impl->UpdateStatus([](QueryEngine::ReplicaStatus&) {});  // publish is_replica
  Impl* raw = impl.get();
  engine.SetPromoteHandler([raw]() -> Result<std::string> {
    const std::lock_guard<std::mutex> lock(raw->lifecycle_mu);
    if (raw->promoted) {
      return "already promoted at lsn " + std::to_string(raw->promoted_lsn);
    }
    raw->StopThread();
    raw->promoted = true;
    raw->promoted_lsn = raw->engine.WalDurableLsn();
    raw->engine.SetReadOnly(false);
    raw->UpdateStatus(
        [](QueryEngine::ReplicaStatus& s) { s.connected = false; });
    std::ostringstream os;
    os << "promoted to primary at lsn " << raw->promoted_lsn
       << "; accepting writes";
    return os.str();
  });
  raw->thread = std::thread([raw] { raw->ClientMain(); });
  return std::unique_ptr<ReplicaClient>(new ReplicaClient(std::move(impl)));
}

ReplicaClient::~ReplicaClient() {
  Stop();
  // The PROMOTE handler captures impl_ raw; make sure nothing can call it
  // once the client is gone.
  impl_->engine.SetPromoteHandler(nullptr);
}

Result<std::string> ReplicaClient::Promote() {
  const std::lock_guard<std::mutex> lock(impl_->lifecycle_mu);
  if (impl_->promoted) {
    return "already promoted at lsn " + std::to_string(impl_->promoted_lsn);
  }
  impl_->StopThread();
  impl_->promoted = true;
  impl_->promoted_lsn = impl_->engine.WalDurableLsn();
  impl_->engine.SetReadOnly(false);
  impl_->UpdateStatus(
      [](QueryEngine::ReplicaStatus& s) { s.connected = false; });
  std::ostringstream os;
  os << "promoted to primary at lsn " << impl_->promoted_lsn
     << "; accepting writes";
  return os.str();
}

void ReplicaClient::Stop() {
  const std::lock_guard<std::mutex> lock(impl_->lifecycle_mu);
  impl_->StopThread();
}

}  // namespace net
}  // namespace streamhist
