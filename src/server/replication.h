#ifndef STREAMHIST_SERVER_REPLICATION_H_
#define STREAMHIST_SERVER_REPLICATION_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/util/result.h"

namespace streamhist {

class QueryEngine;

namespace net {

/// Primary -> replica WAL shipping (DESIGN.md §14).
///
/// The topology is one primary, N read replicas, over the existing TCP
/// front-end: a replica opens an ordinary connection, sends one Subscribe
/// frame, and the server hands the socket off to the ReplicationHub, which
/// feeds it Records / Heartbeat / Bootstrap frames from a dedicated thread
/// per subscriber. Dedicated threads are deliberate: shipping does blocking
/// writes and durability waits that must never stall the epoll workers, and
/// a replica that stops draining simply stalls its own feeder (TCP
/// backpressure) without affecting clients or other replicas.

/// ReplicationHub tuning. Defaults suit the loopback deployments this
/// server targets; tests shrink the times to drive edges deterministically.
struct HubOptions {
  /// Idle cadence: with no new durable records for this long, a Heartbeat
  /// (carrying the durable LSN) keeps the link's liveness observable.
  int64_t heartbeat_ms = 500;
  /// Semi-synchronous ack budget: > 0 makes the engine's write barrier wait
  /// up to this long for some replica to confirm the record durable on its
  /// side. 0 ships asynchronously (acked writes can be lost with the
  /// primary until a replica catches up — see DESIGN.md §14.3).
  int64_t sync_ms = 0;
  /// Target bytes of WAL frames per Records batch.
  int64_t max_batch_bytes = 256 * 1024;
};

struct HubStatsSnapshot {
  int64_t subscribers = 0;  // live right now
  int64_t subscribes = 0;   // sockets ever adopted
  int64_t batches = 0;      // Records frames shipped
  int64_t records = 0;      // records shipped inside them
  int64_t heartbeats = 0;
  int64_t bootstraps = 0;    // checkpoint-image handoffs
  int64_t sync_waits = 0;    // barrier invocations that actually waited
  int64_t sync_timeouts = 0; // waits that lapsed (demoted to async)
  int64_t acked_lsn = 0;     // highest replica-durable LSN seen
};

class ReplicationHub {
 public:
  ReplicationHub(QueryEngine& engine, const HubOptions& options);
  ~ReplicationHub();  // Stop()

  ReplicationHub(const ReplicationHub&) = delete;
  ReplicationHub& operator=(const ReplicationHub&) = delete;

  /// Takes ownership of a subscribed socket (and its governor charge) from
  /// the TCP server and starts feeding it from `from_lsn`. `pending_input`
  /// is whatever the connection had buffered past the Subscribe frame
  /// (early Progress bytes).
  void Adopt(int fd, int64_t governor_charge, int64_t from_lsn,
             std::string pending_input);

  /// The engine's replication barrier (install via SetReplicationBarrier):
  /// under semi-sync, blocks until some live subscriber reports `lsn`
  /// durable or sync_ms lapses. Always returns OK — the record is already
  /// locally durable, so a lapsed wait degrades to async rather than
  /// erroring an ack the client would then retry into a duplicate.
  Status WaitShipped(int64_t lsn);

  /// Disconnects every subscriber and joins the feeders. Idempotent.
  void Stop();

  HubStatsSnapshot stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Replica-side runtime: maintains the subscription to the primary, applies
/// shipped batches into a read-only engine, and handles failover promotion.
struct ReplicaOptions {
  uint16_t primary_port = 0;  // loopback port of the primary's TCP server
  /// No frame (records or heartbeat) for this long means the primary is
  /// dead or partitioned: drop the link and reconnect with backoff.
  int64_t dead_peer_timeout_ms = 3000;
  /// Reconnect backoff schedule (util/backoff): jitter keeps a fleet of
  /// replicas from stampeding the primary the instant it returns.
  int64_t reconnect_initial_ms = 50;
  int64_t reconnect_max_ms = 2000;
  double reconnect_jitter = 0.3;
  uint64_t reconnect_seed = 1;
  /// Largest accepted frame — must admit a whole Bootstrap image.
  size_t max_frame_bytes = size_t{1} << 30;
};

class ReplicaClient {
 public:
  /// Flips the engine read-only, registers the PROMOTE handler, and starts
  /// the subscription thread. The engine must already have an open WAL (the
  /// replica's own durability) and must outlive the client.
  static Result<std::unique_ptr<ReplicaClient>> Start(
      QueryEngine& engine, const ReplicaOptions& options);

  ~ReplicaClient();  // Stop() — leaves the engine read-only if not promoted

  ReplicaClient(const ReplicaClient&) = delete;
  ReplicaClient& operator=(const ReplicaClient&) = delete;

  /// Failover: stops replication at a frame boundary (every applied batch
  /// is locally durable, so the boundary is clean), flips the engine
  /// writable, and reports the promotion LSN. Idempotent; this is what the
  /// PROMOTE verb calls.
  Result<std::string> Promote();

  /// Stops the subscription thread without promoting. Idempotent.
  void Stop();

 private:
  struct Impl;
  explicit ReplicaClient(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace net
}  // namespace streamhist

#endif  // STREAMHIST_SERVER_REPLICATION_H_
