#include "src/server/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "src/util/fault.h"

namespace streamhist {
namespace net {

namespace {

Status ErrnoStatus(const char* op) {
  return Status::IOError(std::string(op) + ": " + std::strerror(errno));
}

}  // namespace

void UniqueFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<UniqueFd> ListenLoopback(uint16_t port, int backlog) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return ErrnoStatus("socket");
  const int one = 1;
  // REUSEADDR so a restart does not wait out TIME_WAIT of the old listener.
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    return ErrnoStatus("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return ErrnoStatus("bind");
  }
  if (::listen(fd.get(), backlog) != 0) return ErrnoStatus("listen");
  STREAMHIST_RETURN_NOT_OK(SetNonBlocking(fd.get()));
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return ErrnoStatus("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<UniqueFd> ConnectLoopback(uint16_t port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return ErrnoStatus("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return ErrnoStatus("connect");
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return ErrnoStatus("fcntl(F_SETFL)");
  }
  return Status::OK();
}

ssize_t ReadFd(int fd, char* buf, size_t len) {
  if (len > 0 && fault::Triggered("net.read.short")) len = 1;
  ssize_t n;
  do {
    n = ::read(fd, buf, len);
  } while (n < 0 && errno == EINTR);
  return n;
}

ssize_t WriteFd(int fd, const char* buf, size_t len) {
  if (fault::Triggered("net.write.eagain")) {
    errno = EAGAIN;
    return -1;
  }
  ssize_t n;
  do {
    // MSG_NOSIGNAL: a peer that vanished mid-write is EPIPE, not a
    // process-killing SIGPIPE — the replication feeders write from plain
    // threads with no signal handling around them.
    n = ::send(fd, buf, len, MSG_NOSIGNAL);
  } while (n < 0 && errno == EINTR);
  return n;
}

}  // namespace net
}  // namespace streamhist
