#ifndef STREAMHIST_SERVER_SOCKET_H_
#define STREAMHIST_SERVER_SOCKET_H_

#include <sys/types.h>

#include <cstdint>
#include <utility>

#include "src/util/result.h"

namespace streamhist {
namespace net {

/// Owning file descriptor: closes on destruction, move-only. The server's
/// sockets, epoll instances, and eventfds all live in one of these so no
/// early-return path can leak a descriptor.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }
  UniqueFd(UniqueFd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() { return std::exchange(fd_, -1); }
  void Reset();

 private:
  int fd_ = -1;
};

/// A nonblocking loopback listener on `port` (0: kernel-assigned ephemeral
/// port — read the chosen one back with LocalPort). Loopback-only is
/// deliberate: the protocol carries no authentication, so the bind scope is
/// the trust boundary (front it with a proxy to go wider).
Result<UniqueFd> ListenLoopback(uint16_t port, int backlog);

/// The port a bound socket ended up on (resolves port-0 binds).
Result<uint16_t> LocalPort(int fd);

/// A BLOCKING loopback connection to `port` (TCP_NODELAY set) — the
/// replication client's transport. Blocking is deliberate: the client and
/// the primary's feeder each own a dedicated thread, so blocking writes are
/// the natural flow control and no event loop is involved.
Result<UniqueFd> ConnectLoopback(uint16_t port);

/// Marks `fd` nonblocking.
Status SetNonBlocking(int fd);

/// read(2), EINTR-retried. Fault point `net.read.short` clamps the read to
/// one byte per call, forcing every incremental-reparse path (split frame
/// headers, statements arriving a byte at a time) without a pathological
/// peer.
ssize_t ReadFd(int fd, char* buf, size_t len);

/// write(2), EINTR-retried. Fault point `net.write.eagain` simulates a full
/// socket buffer (returns -1 with errno=EAGAIN, writing nothing), forcing
/// the buffered-output + EPOLLOUT resumption path on demand.
ssize_t WriteFd(int fd, const char* buf, size_t len);

}  // namespace net
}  // namespace streamhist

#endif  // STREAMHIST_SERVER_SOCKET_H_
