#include "src/server/tcp_server.h"

#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/engine/query_engine.h"
#include "src/server/replication.h"
#include "src/server/socket.h"
#include "src/server/wire.h"
#include "src/util/fault.h"
#include "src/util/governor.h"

namespace streamhist {
namespace net {

namespace {

using SteadyClock = std::chrono::steady_clock;

/// One admitted client connection. Owned by exactly one worker thread, so
/// none of this state needs synchronization — cross-connection concurrency
/// lives entirely inside QueryEngine::Execute.
struct Connection {
  UniqueFd fd;
  std::string input;
  std::string output;
  size_t output_pos = 0;
  /// An oversized line drew its ERR; swallow bytes to the next newline.
  bool discarding_line = false;
  /// Protocol damage: flush what is queued, then close.
  bool close_after_flush = false;
  /// EPOLLIN currently disabled (backpressure / full input buffer).
  bool paused = false;
  /// EPOLLOUT currently enabled.
  bool want_write = false;
  /// Governor bytes charged at admission, released on destruction.
  int64_t charge = 0;
  /// >= 0 once a replication Subscribe frame was accepted: the requested
  /// from-LSN. The connection leaves the statement protocol — as soon as its
  /// queued replies drain, the socket is handed to the ReplicationHub.
  int64_t subscribe_from = -1;
  /// Last moment queued output shrank — the slow-reader clock.
  SteadyClock::time_point last_progress{};

  size_t PendingOut() const { return output.size() - output_pos; }
};

struct Stats {
  std::atomic<int64_t> accepted{0};
  std::atomic<int64_t> refused_over_cap{0};
  std::atomic<int64_t> refused_over_budget{0};
  std::atomic<int64_t> accept_faults{0};
  std::atomic<int64_t> active{0};
  std::atomic<int64_t> statements{0};
  std::atomic<int64_t> statement_errors{0};
  std::atomic<int64_t> batch_frames{0};
  std::atomic<int64_t> batch_values{0};
  std::atomic<int64_t> protocol_errors{0};
  std::atomic<int64_t> slow_reader_disconnects{0};
  std::atomic<int64_t> dropped_mid_request{0};
  std::atomic<int64_t> repl_subscribes{0};
  std::atomic<int64_t> bytes_in{0};
  std::atomic<int64_t> bytes_out{0};
};

/// A connection handed from the acceptor to its owning worker.
struct Handoff {
  int fd = -1;
  int64_t charge = 0;
};

}  // namespace

struct TcpServer::Impl {
  QueryEngine& engine;
  ServerOptions options;
  size_t input_cap = 0;       // per-connection input buffer bound
  int64_t conn_charge = 0;    // governor bytes per admitted connection
  UniqueFd listen_fd;
  uint16_t port = 0;
  Stats stats;
  std::atomic<bool> stop{false};
  std::once_flag shutdown_once;
  size_t next_worker = 0;  // round-robin deal; only the acceptor touches it

  struct Worker {
    UniqueFd epoll;
    UniqueFd wake;
    std::unordered_map<int, Connection> conns;
    std::mutex inbox_mu;
    std::vector<Handoff> inbox;
    std::thread thread;
  };
  // deque-free stable storage: workers never move once the threads start.
  std::vector<std::unique_ptr<Worker>> workers;

  explicit Impl(QueryEngine& e) : engine(e) {}

  // --- acceptor (runs on worker 0's loop) ---------------------------------

  void AcceptReady() {
    for (;;) {
      const int raw = ::accept4(listen_fd.get(), nullptr, nullptr,
                                SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (raw < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN, or a transient kernel refusal — next event retries
      }
      UniqueFd fd(raw);
      if (fault::Triggered("net.accept")) {
        // Simulated accept-path failure (EMFILE and friends): the socket is
        // dropped before any session state exists.
        stats.accept_faults.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (stats.active.load(std::memory_order_relaxed) >=
          options.max_connections) {
        RefuseAndClose(std::move(fd),
                       ErrResponse("OVERLOADED",
                                   "connection limit " +
                                       std::to_string(options.max_connections) +
                                       " reached; retry later"));
        stats.refused_over_cap.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (!governor::TryCharge(conn_charge)) {
        RefuseAndClose(
            std::move(fd),
            ErrResponse("RESOURCE_EXHAUSTED",
                        "memory budget refused connection buffers (" +
                            std::to_string(conn_charge) + " bytes)"));
        stats.refused_over_budget.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const int one = 1;
      ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      stats.accepted.fetch_add(1, std::memory_order_relaxed);
      stats.active.fetch_add(1, std::memory_order_relaxed);
      Worker& target = *workers[next_worker];
      next_worker = (next_worker + 1) % workers.size();
      {
        std::lock_guard<std::mutex> lock(target.inbox_mu);
        target.inbox.push_back({fd.Release(), conn_charge});
      }
      WakeWorker(target);
    }
  }

  /// Best-effort typed refusal on a socket that was never admitted: the
  /// send buffer of a fresh connection is empty, so a single nonblocking
  /// write almost always lands whole; if it does not, the close itself is
  /// the answer.
  static void RefuseAndClose(UniqueFd fd, const std::string& line) {
    (void)!WriteFd(fd.get(), line.data(), line.size());
  }

  static void WakeWorker(Worker& worker) {
    const uint64_t one = 1;
    (void)!::write(worker.wake.get(), &one, sizeof(one));
  }

  // --- per-connection protocol pump ---------------------------------------

  void Reply(Connection& conn, std::string bytes) {
    if (conn.PendingOut() == 0) conn.last_progress = SteadyClock::now();
    conn.output.append(bytes);
  }

  Result<std::string> ExecuteStatement(const std::string& statement) {
    ExecContext ctx(options.deadline_ms > 0
                        ? Deadline::AfterMillis(options.deadline_ms)
                        : Deadline::Infinite());
    return engine.Execute(statement, ctx);
  }

  /// Parses and executes everything parseable, stopping early once the
  /// output high-water mark is reached (the no-queuing-to-death rule: a
  /// pipelining client only gets as much execution as it drains replies).
  void ParseAvailable(Connection& conn) {
    // A subscribed connection no longer speaks the statement protocol: any
    // buffered bytes past the Subscribe frame are the hub's to parse.
    if (conn.subscribe_from >= 0) return;
    while (!conn.close_after_flush &&
           conn.PendingOut() < options.max_output_buffer) {
      if (conn.discarding_line) {
        const size_t nl = conn.input.find('\n');
        if (nl == std::string::npos) {
          conn.input.clear();  // still mid-oversized-line; drop and wait
          break;
        }
        conn.input.erase(0, nl + 1);
        conn.discarding_line = false;
        continue;
      }
      if (conn.input.empty()) break;

      if (static_cast<unsigned char>(conn.input[0]) == kBatchFrameFirstByte) {
        const FrameScan scan =
            ScanBatchFrame(conn.input, options.max_frame_bytes);
        if (scan.state == FrameScan::State::kNeedMore) break;
        if (scan.state == FrameScan::State::kBad) {
          // The declared length is untrustworthy, so the next frame boundary
          // is unknowable: answer once, then drop the connection.
          stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
          Reply(conn, ErrResponse("PROTOCOL", scan.error));
          conn.close_after_flush = true;
          break;
        }
        const std::string_view frame(conn.input.data(), scan.frame_bytes);
        Result<BatchAppend> batch = DecodeBatchAppend(frame);
        if (!batch.ok()) {
          // CRC/payload damage inside a well-delimited frame: the bytes on
          // the wire cannot be trusted, close after the typed answer.
          stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
          Reply(conn, ErrResponse("PROTOCOL", batch.status().message()));
          conn.close_after_flush = true;
          break;
        }
        ExecContext ctx(options.deadline_ms > 0
                            ? Deadline::AfterMillis(options.deadline_ms)
                            : Deadline::Infinite());
        const Result<std::string> result =
            engine.ExecuteBatchAppend(batch->name, batch->values, &ctx);
        if (result.ok()) {
          stats.batch_frames.fetch_add(1, std::memory_order_relaxed);
          stats.batch_values.fetch_add(
              static_cast<int64_t>(batch->values.size()),
              std::memory_order_relaxed);
          Reply(conn, OkResponse(result.value()));
        } else {
          stats.statement_errors.fetch_add(1, std::memory_order_relaxed);
          Reply(conn, ErrResponse(result.status()));
        }
        conn.input.erase(0, scan.frame_bytes);
        continue;
      }

      const auto first_byte = static_cast<unsigned char>(conn.input[0]);
      if (first_byte >= kReplSubscribeFirstByte &&
          first_byte <= (kReplProgressMagic & 0xFFu)) {
        const ReplFrameScan scan =
            ScanReplFrame(conn.input, options.max_frame_bytes);
        if (scan.state == FrameScan::State::kNeedMore) break;
        if (scan.state == FrameScan::State::kBad ||
            scan.magic != kReplSubscribeMagic) {
          // Only Subscribe may open the replication dialogue; anything else
          // here means the peer lost the plot — answer once and close.
          stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
          Reply(conn, ErrResponse("PROTOCOL",
                                  scan.error.empty()
                                      ? "unexpected replication frame before "
                                        "subscribe"
                                      : scan.error));
          conn.close_after_flush = true;
          break;
        }
        const Result<int64_t> from = DecodeReplSubscribe(
            std::string_view(conn.input.data(), scan.frame_bytes));
        if (!from.ok()) {
          stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
          Reply(conn, ErrResponse("PROTOCOL", from.status().message()));
          conn.close_after_flush = true;
          break;
        }
        if (options.replication_hub == nullptr) {
          stats.statement_errors.fetch_add(1, std::memory_order_relaxed);
          Reply(conn,
                ErrResponse("FAILED_PRECONDITION",
                            "replication is not enabled on this server (it "
                            "needs a write-ahead log: serve with --wal-dir)"));
          conn.close_after_flush = true;
          break;
        }
        if (fault::Triggered("repl.subscribe")) {
          Reply(conn, ErrResponse("OVERLOADED",
                                  "replication subscribe refused (fault)"));
          conn.close_after_flush = true;
          break;
        }
        conn.input.erase(0, scan.frame_bytes);
        conn.subscribe_from = *from;
        break;  // remaining input travels with the socket to the hub
      }

      const size_t nl = conn.input.find('\n');
      if (nl == std::string::npos) {
        if (conn.input.size() > options.max_line_bytes) {
          stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
          Reply(conn,
                ErrResponse("PROTOCOL",
                            "statement exceeds the " +
                                std::to_string(options.max_line_bytes) +
                                "-byte line limit"));
          conn.discarding_line = true;
          conn.input.clear();
          continue;
        }
        break;  // incomplete line; wait for more bytes
      }
      if (nl > options.max_line_bytes) {
        stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        Reply(conn, ErrResponse("PROTOCOL",
                                "statement exceeds the " +
                                    std::to_string(options.max_line_bytes) +
                                    "-byte line limit"));
        conn.input.erase(0, nl + 1);
        continue;
      }
      std::string line = conn.input.substr(0, nl);
      conn.input.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      const size_t first = line.find_first_not_of(" \t");
      if (first == std::string::npos || line[first] == '#') {
        continue;  // blank / comment: no reply, like the console
      }
      const Result<std::string> result = ExecuteStatement(line);
      if (result.ok()) {
        stats.statements.fetch_add(1, std::memory_order_relaxed);
        Reply(conn, OkResponse(result.value()));
      } else {
        stats.statement_errors.fetch_add(1, std::memory_order_relaxed);
        Reply(conn, ErrResponse(result.status()));
      }
    }
  }

  /// Writes queued output; false when the connection died mid-write.
  /// (The caller destroys it.)
  bool FlushOutput(Connection& conn) {
    while (conn.PendingOut() > 0) {
      const ssize_t n = WriteFd(conn.fd.get(), conn.output.data() + conn.output_pos,
                                conn.PendingOut());
      if (n > 0) {
        conn.output_pos += static_cast<size_t>(n);
        conn.last_progress = SteadyClock::now();
        stats.bytes_out.fetch_add(n, std::memory_order_relaxed);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      return false;  // EPIPE/ECONNRESET/...
    }
    conn.output.clear();
    conn.output_pos = 0;
    return true;
  }

  /// The per-connection pump: alternate parse/execute and flush until
  /// neither can progress, then recompute epoll interest. Returns false when
  /// the connection must be destroyed.
  bool ServiceConnection(Worker& worker, Connection& conn) {
    for (;;) {
      const size_t in_before = conn.input.size();
      const size_t out_before = conn.PendingOut();
      ParseAvailable(conn);
      if (!FlushOutput(conn)) return false;
      if (conn.close_after_flush && conn.PendingOut() == 0) return false;
      const bool progressed = conn.input.size() != in_before ||
                              (conn.PendingOut() < out_before &&
                               !conn.input.empty());
      if (!progressed) break;
    }
    if (conn.subscribe_from >= 0 && conn.PendingOut() == 0 &&
        !conn.close_after_flush) {
      // Every reply that preceded the Subscribe is on the wire: the
      // statement protocol is over for this socket. Hand it to the hub.
      HandoffToHub(worker, conn);
      return true;  // conn is gone; nothing further to service
    }
    UpdateInterest(worker, conn);
    return true;
  }

  /// Moves a subscribed connection (socket, governor charge, buffered
  /// input) out of the event loop and into the replication hub, which feeds
  /// it from a dedicated thread. Invalidates `conn`.
  void HandoffToHub(Worker& worker, Connection& conn) {
    const int fd = conn.fd.get();
    ::epoll_ctl(worker.epoll.get(), EPOLL_CTL_DEL, fd, nullptr);
    stats.active.fetch_sub(1, std::memory_order_relaxed);
    stats.repl_subscribes.fetch_add(1, std::memory_order_relaxed);
    const int64_t charge = conn.charge;
    const int64_t from = conn.subscribe_from;
    std::string pending = std::move(conn.input);
    const int raw = conn.fd.Release();
    worker.conns.erase(fd);
    // The charge transfers: the hub releases it when the subscriber dies.
    options.replication_hub->Adopt(raw, charge, from, std::move(pending));
  }

  void UpdateInterest(Worker& worker, Connection& conn) {
    const bool pause = conn.PendingOut() >= options.max_output_buffer ||
                       conn.input.size() >= input_cap ||
                       conn.close_after_flush;
    const bool want_write = conn.PendingOut() > 0;
    if (pause == conn.paused && want_write == conn.want_write) return;
    conn.paused = pause;
    conn.want_write = want_write;
    epoll_event ev{};
    ev.events = (pause ? 0u : static_cast<uint32_t>(EPOLLIN)) |
                (want_write ? static_cast<uint32_t>(EPOLLOUT) : 0u);
    ev.data.fd = conn.fd.get();
    ::epoll_ctl(worker.epoll.get(), EPOLL_CTL_MOD, conn.fd.get(), &ev);
  }

  void DestroyConnection(Worker& worker, int fd) {
    auto it = worker.conns.find(fd);
    if (it == worker.conns.end()) return;
    ::epoll_ctl(worker.epoll.get(), EPOLL_CTL_DEL, fd, nullptr);
    governor::Release(it->second.charge);
    stats.active.fetch_sub(1, std::memory_order_relaxed);
    worker.conns.erase(it);  // UniqueFd closes the socket
  }

  void OnReadable(Worker& worker, Connection& conn) {
    char buf[16384];
    const size_t room = input_cap > conn.input.size()
                            ? input_cap - conn.input.size()
                            : 0;
    if (room > 0) {
      const ssize_t n =
          ReadFd(conn.fd.get(), buf, std::min(sizeof(buf), room));
      if (n == 0) {
        // Peer closed. A half-received request simply evaporates: nothing
        // was executed, so no stats were recorded and no session state can
        // leak — the connection's buffers die with it.
        if (!conn.input.empty()) {
          stats.dropped_mid_request.fetch_add(1, std::memory_order_relaxed);
        }
        DestroyConnection(worker, conn.fd.get());
        return;
      }
      if (n < 0) {
        if (errno != EAGAIN && errno != EWOULDBLOCK) {
          if (!conn.input.empty()) {
            stats.dropped_mid_request.fetch_add(1, std::memory_order_relaxed);
          }
          DestroyConnection(worker, conn.fd.get());
          return;
        }
      } else {
        conn.input.append(buf, static_cast<size_t>(n));
        stats.bytes_in.fetch_add(n, std::memory_order_relaxed);
      }
    }
    if (!ServiceConnection(worker, conn)) {
      DestroyConnection(worker, conn.fd.get());
    }
  }

  void AdoptHandoffs(Worker& worker) {
    std::vector<Handoff> adopted;
    {
      std::lock_guard<std::mutex> lock(worker.inbox_mu);
      adopted.swap(worker.inbox);
    }
    for (const Handoff& handoff : adopted) {
      Connection conn;
      conn.fd = UniqueFd(handoff.fd);
      conn.charge = handoff.charge;
      conn.last_progress = SteadyClock::now();
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = handoff.fd;
      if (::epoll_ctl(worker.epoll.get(), EPOLL_CTL_ADD, handoff.fd, &ev) !=
          0) {
        governor::Release(handoff.charge);
        stats.active.fetch_sub(1, std::memory_order_relaxed);
        continue;  // conn's UniqueFd closes the socket
      }
      worker.conns.emplace(handoff.fd, std::move(conn));
    }
  }

  void ScanSlowReaders(Worker& worker) {
    if (options.slow_reader_timeout_ms <= 0) return;
    const auto now = SteadyClock::now();
    std::vector<int> victims;
    for (auto& [fd, conn] : worker.conns) {
      if (conn.PendingOut() == 0) continue;
      const auto stalled = std::chrono::duration_cast<std::chrono::milliseconds>(
                               now - conn.last_progress)
                               .count();
      if (stalled >= options.slow_reader_timeout_ms) victims.push_back(fd);
    }
    for (int fd : victims) {
      Connection& conn = worker.conns.at(fd);
      // The queued replies are undeliverable — drop them and make one
      // attempt at a typed goodbye the client can read from the socket
      // buffer once it finally comes back.
      conn.output.clear();
      conn.output_pos = 0;
      const std::string bye = ErrResponse(
          "OVERLOADED", "slow reader: no reply drained for " +
                            std::to_string(options.slow_reader_timeout_ms) +
                            " ms; disconnecting");
      (void)!WriteFd(fd, bye.data(), bye.size());
      stats.slow_reader_disconnects.fetch_add(1, std::memory_order_relaxed);
      DestroyConnection(worker, fd);
    }
  }

  void WorkerLoop(size_t index) {
    Worker& worker = *workers[index];
    const bool is_acceptor = index == 0;
    std::array<epoll_event, 64> events;
    while (!stop.load(std::memory_order_acquire)) {
      int timeout_ms = -1;
      if (options.slow_reader_timeout_ms > 0) {
        for (const auto& [fd, conn] : worker.conns) {
          if (conn.PendingOut() > 0) {
            timeout_ms = static_cast<int>(std::clamp<int64_t>(
                options.slow_reader_timeout_ms / 4, 10, 250));
            break;
          }
        }
      }
      const int n = ::epoll_wait(worker.epoll.get(), events.data(),
                                 static_cast<int>(events.size()), timeout_ms);
      if (n < 0 && errno != EINTR) break;
      for (int i = 0; i < n; ++i) {
        const int fd = events[static_cast<size_t>(i)].data.fd;
        const uint32_t mask = events[static_cast<size_t>(i)].events;
        if (fd == worker.wake.get()) {
          uint64_t drain = 0;
          (void)!::read(worker.wake.get(), &drain, sizeof(drain));
          AdoptHandoffs(worker);
          continue;
        }
        if (is_acceptor && fd == listen_fd.get()) {
          AcceptReady();
          continue;
        }
        auto it = worker.conns.find(fd);
        if (it == worker.conns.end()) continue;
        Connection& conn = it->second;
        if (mask & (EPOLLHUP | EPOLLERR)) {
          if (!conn.input.empty()) {
            stats.dropped_mid_request.fetch_add(1, std::memory_order_relaxed);
          }
          DestroyConnection(worker, fd);
          continue;
        }
        if (mask & EPOLLOUT) {
          if (!ServiceConnection(worker, conn)) {
            DestroyConnection(worker, fd);
            continue;
          }
        }
        if ((mask & EPOLLIN) && worker.conns.count(fd) > 0) {
          OnReadable(worker, worker.conns.at(fd));
        }
      }
      ScanSlowReaders(worker);
    }
    // Shutdown: every surviving connection is torn down on its owner thread.
    while (!worker.conns.empty()) {
      DestroyConnection(worker, worker.conns.begin()->first);
    }
    AdoptStragglers(worker);
  }

  /// Connections handed off but never adopted before shutdown still hold a
  /// governor charge and an fd; release both.
  void AdoptStragglers(Worker& worker) {
    std::lock_guard<std::mutex> lock(worker.inbox_mu);
    for (const Handoff& handoff : worker.inbox) {
      ::close(handoff.fd);
      governor::Release(handoff.charge);
      stats.active.fetch_sub(1, std::memory_order_relaxed);
    }
    worker.inbox.clear();
  }

  void Shutdown() {
    std::call_once(shutdown_once, [this] {
      stop.store(true, std::memory_order_release);
      for (auto& worker : workers) WakeWorker(*worker);
      for (auto& worker : workers) {
        if (worker->thread.joinable()) worker->thread.join();
      }
      listen_fd.Reset();
    });
  }
};

TcpServer::TcpServer(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}

TcpServer::~TcpServer() { Shutdown(); }

Result<std::unique_ptr<TcpServer>> TcpServer::Start(
    QueryEngine& engine, const ServerOptions& options) {
  if (options.threads < 1 || options.threads > 64) {
    return Status::InvalidArgument("server threads must be in [1, 64]");
  }
  if (options.max_connections < 1) {
    return Status::InvalidArgument("max_connections must be >= 1");
  }
  if (options.max_line_bytes < 64 || options.max_frame_bytes < 64) {
    return Status::InvalidArgument("line/frame limits must be >= 64 bytes");
  }
  auto impl = std::make_unique<Impl>(engine);
  impl->options = options;
  // The input buffer must hold one maximal in-flight request of either form
  // (plus a read chunk of pipelined follow-ons); the admission charge covers
  // both bounded buffers, so an admitted connection can never grow past what
  // the governor already accounted.
  impl->input_cap = options.max_frame_bytes + kFrameOverheadBytes +
                    options.max_line_bytes + 16384;
  impl->conn_charge = static_cast<int64_t>(impl->input_cap) +
                      static_cast<int64_t>(options.max_output_buffer) + 65536;
  STREAMHIST_ASSIGN_OR_RETURN(impl->listen_fd,
                              ListenLoopback(options.port, options.backlog));
  STREAMHIST_ASSIGN_OR_RETURN(impl->port, LocalPort(impl->listen_fd.get()));

  for (int i = 0; i < options.threads; ++i) {
    auto worker = std::make_unique<Impl::Worker>();
    worker->epoll = UniqueFd(::epoll_create1(EPOLL_CLOEXEC));
    if (!worker->epoll.valid()) {
      return Status::IOError("epoll_create1 failed");
    }
    worker->wake = UniqueFd(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
    if (!worker->wake.valid()) return Status::IOError("eventfd failed");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = worker->wake.get();
    if (::epoll_ctl(worker->epoll.get(), EPOLL_CTL_ADD, worker->wake.get(),
                    &ev) != 0) {
      return Status::IOError("epoll_ctl(wake) failed");
    }
    impl->workers.push_back(std::move(worker));
  }
  {
    Impl::Worker& acceptor = *impl->workers[0];
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = impl->listen_fd.get();
    if (::epoll_ctl(acceptor.epoll.get(), EPOLL_CTL_ADD,
                    impl->listen_fd.get(), &ev) != 0) {
      return Status::IOError("epoll_ctl(listen) failed");
    }
  }
  Impl* raw = impl.get();
  for (size_t i = 0; i < impl->workers.size(); ++i) {
    impl->workers[i]->thread = std::thread([raw, i] { raw->WorkerLoop(i); });
  }
  return std::unique_ptr<TcpServer>(new TcpServer(std::move(impl)));
}

uint16_t TcpServer::port() const { return impl_->port; }

void TcpServer::Shutdown() { impl_->Shutdown(); }

ServerStatsSnapshot TcpServer::stats() const {
  const Stats& s = impl_->stats;
  ServerStatsSnapshot snap;
  snap.accepted = s.accepted.load(std::memory_order_relaxed);
  snap.refused_over_cap = s.refused_over_cap.load(std::memory_order_relaxed);
  snap.refused_over_budget =
      s.refused_over_budget.load(std::memory_order_relaxed);
  snap.accept_faults = s.accept_faults.load(std::memory_order_relaxed);
  snap.active = s.active.load(std::memory_order_relaxed);
  snap.statements = s.statements.load(std::memory_order_relaxed);
  snap.statement_errors = s.statement_errors.load(std::memory_order_relaxed);
  snap.batch_frames = s.batch_frames.load(std::memory_order_relaxed);
  snap.batch_values = s.batch_values.load(std::memory_order_relaxed);
  snap.protocol_errors = s.protocol_errors.load(std::memory_order_relaxed);
  snap.slow_reader_disconnects =
      s.slow_reader_disconnects.load(std::memory_order_relaxed);
  snap.dropped_mid_request =
      s.dropped_mid_request.load(std::memory_order_relaxed);
  snap.repl_subscribes = s.repl_subscribes.load(std::memory_order_relaxed);
  snap.bytes_in = s.bytes_in.load(std::memory_order_relaxed);
  snap.bytes_out = s.bytes_out.load(std::memory_order_relaxed);
  return snap;
}

std::string TcpServer::SummaryLine() const {
  const ServerStatsSnapshot s = stats();
  std::ostringstream os;
  os << "serve: " << s.statements << " statements (" << s.statement_errors
     << " errors), " << s.batch_frames << " batch frames (" << s.batch_values
     << " values), " << s.accepted << " connections ("
     << s.refused_over_cap + s.refused_over_budget << " refused, "
     << s.slow_reader_disconnects << " slow-reader disconnects, "
     << s.protocol_errors << " protocol errors), " << s.bytes_in
     << " bytes in, " << s.bytes_out << " bytes out";
  return os.str();
}

}  // namespace net
}  // namespace streamhist
