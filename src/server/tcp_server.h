#ifndef STREAMHIST_SERVER_TCP_SERVER_H_
#define STREAMHIST_SERVER_TCP_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/util/result.h"

namespace streamhist {

class QueryEngine;

namespace net {

class ReplicationHub;

/// Tuning knobs for TcpServer. The defaults suit a localhost deployment;
/// tests shrink the limits to drive the admission / backpressure paths
/// deterministically.
struct ServerOptions {
  /// Loopback port to listen on; 0 asks the kernel for an ephemeral port
  /// (read it back with TcpServer::port()).
  uint16_t port = 0;
  /// Event-loop worker threads; connections are dealt round-robin.
  int threads = 1;
  /// Per-request deadline in milliseconds (0: none). Statements run under an
  /// ExecContext carrying this deadline, so a BUILD with no WITHIN clause
  /// inherits it into the degradation ladder — the "heavy" request class —
  /// while cheap estimation verbs are simply rejected kCancelled if they are
  /// dequeued after it already passed. STREAMHIST_BUILD_DEADLINE_MS supplies
  /// the BUILD-class default when this is 0.
  int64_t deadline_ms = 0;
  /// Admission cap on concurrently open connections; over it, accepts are
  /// answered with "ERR OVERLOADED ..." and closed instead of queued.
  int max_connections = 256;
  /// Longest accepted text statement; longer lines draw one
  /// "ERR PROTOCOL ..." and are discarded to the next newline.
  size_t max_line_bytes = 64 * 1024;
  /// Largest accepted batch-frame payload; a header declaring more is
  /// hostile and closes the connection.
  size_t max_frame_bytes = 4 * 1024 * 1024;
  /// Backpressure high-water mark: once this many reply bytes are queued on
  /// a connection, the server stops reading (and executing) for it until the
  /// client drains — pipelining cannot queue unbounded output.
  size_t max_output_buffer = 256 * 1024;
  /// A connection holding queued output that makes no write progress for
  /// this long is a slow reader: it is disconnected (with a best-effort
  /// "ERR OVERLOADED ..." line) instead of pinning its buffers forever.
  int64_t slow_reader_timeout_ms = 5000;
  /// listen(2) backlog.
  int backlog = 128;
  /// When set, a replication Subscribe frame hands its connection (socket,
  /// governor charge and all) off to this hub, which ships WAL records on a
  /// dedicated feeder thread. Null refuses subscribes with
  /// ERR FAILED_PRECONDITION. Must outlive the server.
  ReplicationHub* replication_hub = nullptr;
};

/// Monotonic counters, readable at any time (and after Shutdown).
struct ServerStatsSnapshot {
  int64_t accepted = 0;
  int64_t refused_over_cap = 0;     // connection cap admission refusals
  int64_t refused_over_budget = 0;  // governor admission refusals
  int64_t accept_faults = 0;        // net.accept fault point fires
  int64_t active = 0;               // currently open connections
  int64_t statements = 0;           // text statements executed OK
  int64_t statement_errors = 0;     // text statements answered ERR
  int64_t batch_frames = 0;         // binary frames applied
  int64_t batch_values = 0;         // values appended through frames
  int64_t protocol_errors = 0;      // malformed frames / oversized lines
  int64_t slow_reader_disconnects = 0;
  int64_t dropped_mid_request = 0;  // peer vanished with a partial request
  int64_t repl_subscribes = 0;      // connections handed to the replication hub
  int64_t bytes_in = 0;
  int64_t bytes_out = 0;
};

/// The epoll TCP front-end over one QueryEngine (DESIGN.md §11): pipelined
/// newline-delimited statements plus the binary batch-APPEND frame, with
/// per-connection output backpressure and governor-wired admission control.
///
/// Threading: Start spawns `options.threads` event-loop workers; worker 0
/// also accepts. Each connection lives on exactly one worker, so connection
/// state is single-threaded; all cross-connection concurrency happens inside
/// QueryEngine, whose Execute is thread-safe by design (DESIGN.md §10).
/// Statements execute on the worker loop itself — the deadline class keeps
/// heavy BUILDs from starving a worker's other connections indefinitely.
///
/// The engine must outlive the server. Shutdown() (or the destructor) stops
/// accepting, closes every connection, and joins the workers.
class TcpServer {
 public:
  /// Binds, spawns the workers, and starts accepting.
  static Result<std::unique_ptr<TcpServer>> Start(QueryEngine& engine,
                                                  const ServerOptions& options);

  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// The bound loopback port (resolves an ephemeral-port request).
  uint16_t port() const;

  /// Stops accepting, disconnects everything, joins the workers. Idempotent.
  void Shutdown();

  ServerStatsSnapshot stats() const;

  /// One-line human-readable counter summary ("served N statements ...").
  std::string SummaryLine() const;

 private:
  struct Impl;
  explicit TcpServer(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace net
}  // namespace streamhist

#endif  // STREAMHIST_SERVER_TCP_SERVER_H_
