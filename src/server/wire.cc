#include "src/server/wire.h"

#include <cstring>

#include "src/util/framing.h"

namespace streamhist {
namespace net {

std::string EncodeBatchAppend(std::string_view name,
                              std::span<const double> values) {
  ByteWriter payload;
  payload.PutLengthPrefixed(name);
  payload.PutU64(values.size());
  for (double v : values) payload.PutF64(v);
  return WrapFrame(kBatchFrameMagic, kBatchFrameVersion, payload.bytes());
}

FrameScan ScanBatchFrame(std::string_view buffer, size_t max_frame_bytes) {
  FrameScan scan;
  if (buffer.size() < kFrameHeaderBytes) return scan;  // kNeedMore
  uint32_t magic = 0;
  uint64_t payload_len = 0;
  std::memcpy(&magic, buffer.data(), sizeof(magic));
  std::memcpy(&payload_len, buffer.data() + 8, sizeof(payload_len));
  if (magic != kBatchFrameMagic) {
    scan.state = FrameScan::State::kBad;
    scan.error = "bad batch frame magic";
    return scan;
  }
  if (payload_len > max_frame_bytes) {
    scan.state = FrameScan::State::kBad;
    scan.error = "batch frame payload of " + std::to_string(payload_len) +
                 " bytes exceeds the " + std::to_string(max_frame_bytes) +
                 "-byte limit";
    return scan;
  }
  const size_t total = kFrameOverheadBytes + static_cast<size_t>(payload_len);
  if (buffer.size() < total) return scan;  // kNeedMore
  scan.state = FrameScan::State::kFrame;
  scan.frame_bytes = total;
  return scan;
}

Result<BatchAppend> DecodeBatchAppend(std::string_view frame) {
  STREAMHIST_ASSIGN_OR_RETURN(
      FrameView view, UnwrapFrame(frame, kBatchFrameMagic, "batch append"));
  if (view.version != kBatchFrameVersion) {
    return Status::InvalidArgument("unsupported batch frame version " +
                                   std::to_string(view.version));
  }
  ByteReader reader(view.payload);
  std::string_view name;
  uint64_t count = 0;
  if (!reader.ReadLengthPrefixed(&name) || !reader.ReadU64(&count)) {
    return Status::InvalidArgument("malformed batch frame payload");
  }
  if (name.empty()) {
    return Status::InvalidArgument("batch frame names no stream");
  }
  // Division form so a hostile count (e.g. 2^61) can't wrap count * 8 mod
  // 2^64 and slip past into the resize below.
  if (count > reader.remaining() / sizeof(double) ||
      reader.remaining() != count * sizeof(double)) {
    return Status::InvalidArgument(
        "batch frame declares " + std::to_string(count) + " value(s) but " +
        std::to_string(reader.remaining() / sizeof(double)) + " follow");
  }
  BatchAppend batch;
  batch.name.assign(name);
  batch.values.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    if (!reader.ReadF64(&batch.values[i])) {
      return Status::InvalidArgument("batch frame value underrun");
    }
  }
  return batch;
}

std::string OkResponse(std::string_view payload) {
  size_t lines = 1;
  for (char c : payload) {
    if (c == '\n') ++lines;
  }
  // A payload that already ends in '\n' declared its last line there.
  if (!payload.empty() && payload.back() == '\n') --lines;
  std::string out = "OK " + std::to_string(lines) + "\n";
  out.append(payload);
  if (payload.empty() || payload.back() != '\n') out.push_back('\n');
  return out;
}

std::string ErrResponse(std::string_view code, std::string_view message) {
  std::string out = "ERR ";
  out.append(code);
  out.push_back(' ');
  for (char c : message) out.push_back(c == '\n' ? ' ' : c);
  out.push_back('\n');
  return out;
}

const char* StatusCodeToken(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kIOError:
      return "IO_ERROR";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "INTERNAL";
}

std::string ErrResponse(const Status& status) {
  return ErrResponse(StatusCodeToken(status.code()), status.message());
}

}  // namespace net
}  // namespace streamhist
