#include "src/server/wire.h"

#include <cstring>

#include "src/util/fault.h"
#include "src/util/framing.h"

namespace streamhist {
namespace net {

std::string EncodeBatchAppend(std::string_view name,
                              std::span<const double> values) {
  ByteWriter payload;
  payload.PutLengthPrefixed(name);
  payload.PutU64(values.size());
  for (double v : values) payload.PutF64(v);
  return WrapFrame(kBatchFrameMagic, kBatchFrameVersion, payload.bytes());
}

FrameScan ScanBatchFrame(std::string_view buffer, size_t max_frame_bytes) {
  FrameScan scan;
  if (buffer.size() < kFrameHeaderBytes) return scan;  // kNeedMore
  uint32_t magic = 0;
  uint64_t payload_len = 0;
  std::memcpy(&magic, buffer.data(), sizeof(magic));
  std::memcpy(&payload_len, buffer.data() + 8, sizeof(payload_len));
  if (magic != kBatchFrameMagic) {
    scan.state = FrameScan::State::kBad;
    scan.error = "bad batch frame magic";
    return scan;
  }
  if (payload_len > max_frame_bytes) {
    scan.state = FrameScan::State::kBad;
    scan.error = "batch frame payload of " + std::to_string(payload_len) +
                 " bytes exceeds the " + std::to_string(max_frame_bytes) +
                 "-byte limit";
    return scan;
  }
  const size_t total = kFrameOverheadBytes + static_cast<size_t>(payload_len);
  if (buffer.size() < total) return scan;  // kNeedMore
  scan.state = FrameScan::State::kFrame;
  scan.frame_bytes = total;
  return scan;
}

Result<BatchAppend> DecodeBatchAppend(std::string_view frame) {
  STREAMHIST_ASSIGN_OR_RETURN(
      FrameView view, UnwrapFrame(frame, kBatchFrameMagic, "batch append"));
  if (view.version != kBatchFrameVersion) {
    return Status::InvalidArgument("unsupported batch frame version " +
                                   std::to_string(view.version));
  }
  ByteReader reader(view.payload);
  std::string_view name;
  uint64_t count = 0;
  if (!reader.ReadLengthPrefixed(&name) || !reader.ReadU64(&count)) {
    return Status::InvalidArgument("malformed batch frame payload");
  }
  if (name.empty()) {
    return Status::InvalidArgument("batch frame names no stream");
  }
  // Division form so a hostile count (e.g. 2^61) can't wrap count * 8 mod
  // 2^64 and slip past into the resize below.
  if (count > reader.remaining() / sizeof(double) ||
      reader.remaining() != count * sizeof(double)) {
    return Status::InvalidArgument(
        "batch frame declares " + std::to_string(count) + " value(s) but " +
        std::to_string(reader.remaining() / sizeof(double)) + " follow");
  }
  BatchAppend batch;
  batch.name.assign(name);
  batch.values.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    if (!reader.ReadF64(&batch.values[i])) {
      return Status::InvalidArgument("batch frame value underrun");
    }
  }
  return batch;
}

std::string OkResponse(std::string_view payload) {
  size_t lines = 1;
  for (char c : payload) {
    if (c == '\n') ++lines;
  }
  // A payload that already ends in '\n' declared its last line there.
  if (!payload.empty() && payload.back() == '\n') --lines;
  std::string out = "OK " + std::to_string(lines) + "\n";
  out.append(payload);
  if (payload.empty() || payload.back() != '\n') out.push_back('\n');
  return out;
}

std::string ErrResponse(std::string_view code, std::string_view message) {
  std::string out = "ERR ";
  out.append(code);
  out.push_back(' ');
  for (char c : message) out.push_back(c == '\n' ? ' ' : c);
  out.push_back('\n');
  return out;
}

const char* StatusCodeToken(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kIOError:
      return "IO_ERROR";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kReadOnly:
      return "READONLY";
    case StatusCode::kOverloaded:
      return "OVERLOADED";
  }
  return "INTERNAL";
}

std::string ErrResponse(const Status& status) {
  return ErrResponse(StatusCodeToken(status.code()), status.message());
}

namespace {

bool IsReplMagic(uint32_t magic) {
  return magic == kReplSubscribeMagic || magic == kReplRecordsMagic ||
         magic == kReplHeartbeatMagic || magic == kReplBootstrapMagic ||
         magic == kReplProgressMagic;
}

std::string EncodeLsnFrame(uint32_t magic, int64_t lsn) {
  ByteWriter payload;
  payload.PutU64(static_cast<uint64_t>(lsn));
  return WrapFrame(magic, kReplFrameVersion, payload.bytes());
}

Result<int64_t> DecodeLsnFrame(std::string_view frame, uint32_t magic,
                               const char* what) {
  STREAMHIST_ASSIGN_OR_RETURN(FrameView view, UnwrapFrame(frame, magic, what));
  if (view.version != kReplFrameVersion) {
    return Status::InvalidArgument(std::string(what) +
                                   " frame version unsupported");
  }
  ByteReader reader(view.payload);
  uint64_t lsn = 0;
  if (!reader.ReadU64(&lsn) || !reader.AtEnd()) {
    return Status::InvalidArgument(std::string(what) +
                                   " frame payload malformed");
  }
  return static_cast<int64_t>(lsn);
}

}  // namespace

std::string EncodeReplSubscribe(int64_t from_lsn) {
  return EncodeLsnFrame(kReplSubscribeMagic, from_lsn);
}

std::string EncodeReplRecords(std::span<const ReplRecord> records) {
  ByteWriter payload;
  payload.PutU64(records.size());
  for (const ReplRecord& record : records) {
    payload.PutU64(static_cast<uint64_t>(record.first));
    payload.PutLengthPrefixed(record.second);
  }
  std::string frame =
      WrapFrame(kReplRecordsMagic, kReplFrameVersion, payload.bytes());
  if (fault::Triggered("repl.frame.corrupt") &&
      frame.size() > kFrameOverheadBytes) {
    // Flip one payload bit: the CRC must catch it on the replica, which
    // drops the connection and resynchronizes by resubscribing.
    frame[kFrameHeaderBytes + (frame.size() - kFrameOverheadBytes) / 2] ^=
        0x04;
  }
  return frame;
}

std::string EncodeReplHeartbeat(int64_t durable_lsn) {
  return EncodeLsnFrame(kReplHeartbeatMagic, durable_lsn);
}

std::string EncodeReplBootstrap(int64_t wal_floor, std::string_view image) {
  ByteWriter payload;
  payload.PutU64(static_cast<uint64_t>(wal_floor));
  payload.PutLengthPrefixed(image);
  return WrapFrame(kReplBootstrapMagic, kReplFrameVersion, payload.bytes());
}

std::string EncodeReplProgress(int64_t durable_lsn) {
  return EncodeLsnFrame(kReplProgressMagic, durable_lsn);
}

ReplFrameScan ScanReplFrame(std::string_view buffer, size_t max_frame_bytes) {
  ReplFrameScan scan;
  if (buffer.size() < kFrameHeaderBytes) return scan;  // kNeedMore
  uint32_t magic = 0;
  uint64_t payload_len = 0;
  std::memcpy(&magic, buffer.data(), sizeof(magic));
  std::memcpy(&payload_len, buffer.data() + 8, sizeof(payload_len));
  if (!IsReplMagic(magic)) {
    scan.state = FrameScan::State::kBad;
    scan.error = "bad replication frame magic";
    return scan;
  }
  scan.magic = magic;
  if (payload_len > max_frame_bytes) {
    scan.state = FrameScan::State::kBad;
    scan.error = "replication frame payload of " +
                 std::to_string(payload_len) + " bytes exceeds the " +
                 std::to_string(max_frame_bytes) + "-byte limit";
    return scan;
  }
  const size_t total = kFrameOverheadBytes + static_cast<size_t>(payload_len);
  if (buffer.size() < total) return scan;  // kNeedMore
  scan.state = FrameScan::State::kFrame;
  scan.frame_bytes = total;
  return scan;
}

Result<int64_t> DecodeReplSubscribe(std::string_view frame) {
  return DecodeLsnFrame(frame, kReplSubscribeMagic, "subscribe");
}

Result<std::vector<ReplRecord>> DecodeReplRecords(std::string_view frame) {
  STREAMHIST_ASSIGN_OR_RETURN(
      FrameView view, UnwrapFrame(frame, kReplRecordsMagic, "records"));
  if (view.version != kReplFrameVersion) {
    return Status::InvalidArgument("records frame version unsupported");
  }
  ByteReader reader(view.payload);
  uint64_t count = 0;
  if (!reader.ReadU64(&count)) {
    return Status::InvalidArgument("records frame payload malformed");
  }
  // Every record costs at least 16 payload bytes (lsn + length prefix), so
  // a hostile count cannot force a huge reserve.
  if (count > reader.remaining() / 16) {
    return Status::InvalidArgument("records frame count implausible");
  }
  std::vector<ReplRecord> records;
  records.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t lsn = 0;
    std::string_view bytes;
    if (!reader.ReadU64(&lsn) || !reader.ReadLengthPrefixed(&bytes)) {
      return Status::InvalidArgument("records frame record underrun");
    }
    records.emplace_back(static_cast<int64_t>(lsn), std::string(bytes));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after records frame");
  }
  return records;
}

Result<int64_t> DecodeReplHeartbeat(std::string_view frame) {
  return DecodeLsnFrame(frame, kReplHeartbeatMagic, "heartbeat");
}

Result<ReplBootstrap> DecodeReplBootstrap(std::string_view frame) {
  STREAMHIST_ASSIGN_OR_RETURN(
      FrameView view, UnwrapFrame(frame, kReplBootstrapMagic, "bootstrap"));
  if (view.version != kReplFrameVersion) {
    return Status::InvalidArgument("bootstrap frame version unsupported");
  }
  ByteReader reader(view.payload);
  uint64_t floor = 0;
  std::string_view image;
  if (!reader.ReadU64(&floor) || !reader.ReadLengthPrefixed(&image) ||
      !reader.AtEnd()) {
    return Status::InvalidArgument("bootstrap frame payload malformed");
  }
  ReplBootstrap bootstrap;
  bootstrap.wal_floor = static_cast<int64_t>(floor);
  bootstrap.image.assign(image);
  return bootstrap;
}

Result<int64_t> DecodeReplProgress(std::string_view frame) {
  return DecodeLsnFrame(frame, kReplProgressMagic, "progress");
}

}  // namespace net
}  // namespace streamhist
