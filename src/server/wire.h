#ifndef STREAMHIST_SERVER_WIRE_H_
#define STREAMHIST_SERVER_WIRE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/result.h"

namespace streamhist {
namespace net {

/// The TCP statement protocol (DESIGN.md §11). Two request forms share one
/// connection:
///
///   1. Text: one engine statement per '\n'-terminated line — exactly the
///      console/script language. Blank lines and '#' comments get no reply.
///   2. Binary batch-APPEND: a CRC32C-checked frame (util/framing layout)
///      carrying N values for one stream; costs a single snapshot republish
///      no matter how large N is. Its first wire byte is >= 0x80, so the
///      parser can tell the two forms apart from one byte.
///
/// Every request gets exactly one reply:
///
///   OK <k>\n            then k payload lines (k >= 1)
///   ERR <CODE> <text>\n one line; <CODE> is a stable upper-snake token
///
/// Replies arrive in request order (pipelining is encouraged — that is what
/// amortizes round trips), and <text> never contains '\n'.

/// Frame magic for the binary batch-APPEND form. Little-endian on the wire,
/// so the first transmitted byte is 0xF5 — deliberately outside ASCII so no
/// text statement can alias a frame header.
inline constexpr uint32_t kBatchFrameMagic = 0x484253F5;  // "\xF5SBH"
inline constexpr uint32_t kBatchFrameVersion = 1;
inline constexpr unsigned char kBatchFrameFirstByte = 0xF5;

/// Frame layout overhead: 16-byte header (magic u32, version u32,
/// payload_len u64) plus the trailing crc32c u32 (util/framing's WrapFrame).
inline constexpr size_t kFrameHeaderBytes = 16;
inline constexpr size_t kFrameOverheadBytes = kFrameHeaderBytes + 4;

/// A decoded batch-APPEND request.
struct BatchAppend {
  std::string name;
  std::vector<double> values;
};

/// Encodes a batch-APPEND frame: WrapFrame around
///   name (u64 length + bytes) | count u64 | count x f64.
std::string EncodeBatchAppend(std::string_view name,
                              std::span<const double> values);

/// What an incremental scan of a partially-received frame concluded.
struct FrameScan {
  enum class State {
    kNeedMore,  // buffer holds a valid prefix; read more bytes
    kFrame,     // a whole frame is buffered: frame_bytes long
    kBad,       // the header is hostile (bad magic / oversized declared
                // length); `error` says why. Framing is lost — close.
  };
  State state = State::kNeedMore;
  size_t frame_bytes = 0;
  std::string error;
};

/// Scans `buffer` (which starts with kBatchFrameFirstByte) for one complete
/// batch frame without copying. Rejects declared payloads larger than
/// `max_frame_bytes` up front so a hostile length can never make the server
/// buffer unbounded input.
FrameScan ScanBatchFrame(std::string_view buffer, size_t max_frame_bytes);

/// Validates (magic, version, CRC) and decodes one complete frame.
Result<BatchAppend> DecodeBatchAppend(std::string_view frame);

/// "OK <k>\n" + the payload's lines (k = line count; a trailing '\n' is
/// added when missing). An empty payload is sent as one empty line.
std::string OkResponse(std::string_view payload);

/// "ERR <code> <message>\n" with any newlines in `message` flattened to
/// spaces so the reply stays one line.
std::string ErrResponse(std::string_view code, std::string_view message);

/// Stable wire token for a StatusCode: kInvalidArgument -> "INVALID_ARGUMENT"
/// and so on. Protocol-level failures use codes outside this enum
/// ("PROTOCOL", "OVERLOADED").
const char* StatusCodeToken(StatusCode code);

/// Renders an error Status as its wire reply line.
std::string ErrResponse(const Status& status);

}  // namespace net
}  // namespace streamhist

#endif  // STREAMHIST_SERVER_WIRE_H_
