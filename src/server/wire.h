#ifndef STREAMHIST_SERVER_WIRE_H_
#define STREAMHIST_SERVER_WIRE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/result.h"

namespace streamhist {
namespace net {

/// The TCP statement protocol (DESIGN.md §11). Two request forms share one
/// connection:
///
///   1. Text: one engine statement per '\n'-terminated line — exactly the
///      console/script language. Blank lines and '#' comments get no reply.
///   2. Binary batch-APPEND: a CRC32C-checked frame (util/framing layout)
///      carrying N values for one stream; costs a single snapshot republish
///      no matter how large N is. Its first wire byte is >= 0x80, so the
///      parser can tell the two forms apart from one byte.
///
/// Every request gets exactly one reply:
///
///   OK <k>\n            then k payload lines (k >= 1)
///   ERR <CODE> <text>\n one line; <CODE> is a stable upper-snake token
///
/// Replies arrive in request order (pipelining is encouraged — that is what
/// amortizes round trips), and <text> never contains '\n'.

/// Frame magic for the binary batch-APPEND form. Little-endian on the wire,
/// so the first transmitted byte is 0xF5 — deliberately outside ASCII so no
/// text statement can alias a frame header.
inline constexpr uint32_t kBatchFrameMagic = 0x484253F5;  // "\xF5SBH"
inline constexpr uint32_t kBatchFrameVersion = 1;
inline constexpr unsigned char kBatchFrameFirstByte = 0xF5;

/// Frame layout overhead: 16-byte header (magic u32, version u32,
/// payload_len u64) plus the trailing crc32c u32 (util/framing's WrapFrame).
inline constexpr size_t kFrameHeaderBytes = 16;
inline constexpr size_t kFrameOverheadBytes = kFrameHeaderBytes + 4;

/// A decoded batch-APPEND request.
struct BatchAppend {
  std::string name;
  std::vector<double> values;
};

/// Encodes a batch-APPEND frame: WrapFrame around
///   name (u64 length + bytes) | count u64 | count x f64.
std::string EncodeBatchAppend(std::string_view name,
                              std::span<const double> values);

/// What an incremental scan of a partially-received frame concluded.
struct FrameScan {
  enum class State {
    kNeedMore,  // buffer holds a valid prefix; read more bytes
    kFrame,     // a whole frame is buffered: frame_bytes long
    kBad,       // the header is hostile (bad magic / oversized declared
                // length); `error` says why. Framing is lost — close.
  };
  State state = State::kNeedMore;
  size_t frame_bytes = 0;
  std::string error;
};

/// Scans `buffer` (which starts with kBatchFrameFirstByte) for one complete
/// batch frame without copying. Rejects declared payloads larger than
/// `max_frame_bytes` up front so a hostile length can never make the server
/// buffer unbounded input.
FrameScan ScanBatchFrame(std::string_view buffer, size_t max_frame_bytes);

/// Validates (magic, version, CRC) and decodes one complete frame.
Result<BatchAppend> DecodeBatchAppend(std::string_view frame);

/// "OK <k>\n" + the payload's lines (k = line count; a trailing '\n' is
/// added when missing). An empty payload is sent as one empty line.
std::string OkResponse(std::string_view payload);

/// "ERR <code> <message>\n" with any newlines in `message` flattened to
/// spaces so the reply stays one line.
std::string ErrResponse(std::string_view code, std::string_view message);

/// Stable wire token for a StatusCode: kInvalidArgument -> "INVALID_ARGUMENT"
/// and so on. Protocol-level failures use codes outside this enum
/// ("PROTOCOL", "OVERLOADED").
const char* StatusCodeToken(StatusCode code);

/// Renders an error Status as its wire reply line.
std::string ErrResponse(const Status& status);

/// --- Replication frame family (DESIGN.md §14) ---
///
/// A replica opens an ordinary connection and sends one Subscribe frame;
/// once the primary accepts it the connection leaves the statement protocol
/// for good. Primary -> replica traffic is then Records / Heartbeat /
/// Bootstrap frames; replica -> primary traffic is Progress frames. All use
/// the util/framing layout (so every frame is CRC32C-checked end to end)
/// with first wire bytes 0xF6..0xFA — disjoint from text statements and
/// from the 0xF5 batch-APPEND frame, so one-byte dispatch still works.
///
///   Subscribe  replica -> primary   payload: from_lsn u64 — ship records
///              with LSN >= from_lsn. Answered with Bootstrap when that LSN
///              was already truncated by a checkpoint.
///   Records    primary -> replica   payload: count u64, then count x
///              (lsn u64 | length-prefixed record bytes). Only fsynced
///              records are ever shipped.
///   Heartbeat  primary -> replica   payload: durable_lsn u64 — liveness
///              plus the lag numerator when no records are flowing.
///   Bootstrap  primary -> replica   payload: wal_floor u64 |
///              length-prefixed SHCP checkpoint image reflecting every LSN
///              <= wal_floor; shipping resumes at wal_floor + 1.
///   Progress   replica -> primary   payload: durable_lsn u64 — the highest
///              LSN the replica has fsynced into its own log (sent only
///              after that fsync, which is what makes semi-sync acks mean
///              replica-durable).

inline constexpr uint32_t kReplSubscribeMagic = 0x485253F6;   // "\xF6SRH"
inline constexpr uint32_t kReplRecordsMagic = 0x485253F7;     // "\xF7SRH"
inline constexpr uint32_t kReplHeartbeatMagic = 0x485253F8;   // "\xF8SRH"
inline constexpr uint32_t kReplBootstrapMagic = 0x485253F9;   // "\xF9SRH"
inline constexpr uint32_t kReplProgressMagic = 0x485253FA;    // "\xFASRH"
inline constexpr uint32_t kReplFrameVersion = 1;
inline constexpr unsigned char kReplSubscribeFirstByte = 0xF6;

/// One shipped record: the primary's LSN plus the opaque WAL payload
/// (src/engine/wal_records bytes — this layer never decodes them).
using ReplRecord = std::pair<int64_t, std::string>;

/// A decoded Bootstrap frame.
struct ReplBootstrap {
  int64_t wal_floor = 0;
  std::string image;  // SHCP checkpoint container bytes
};

std::string EncodeReplSubscribe(int64_t from_lsn);
/// Fault point `repl.frame.corrupt` flips one payload bit of the encoded
/// frame — the receiver must reject it on CRC and resynchronize by
/// reconnecting rather than applying garbage.
std::string EncodeReplRecords(std::span<const ReplRecord> records);
std::string EncodeReplHeartbeat(int64_t durable_lsn);
std::string EncodeReplBootstrap(int64_t wal_floor, std::string_view image);
std::string EncodeReplProgress(int64_t durable_lsn);

/// Incremental scan for one complete replication-family frame. Same
/// contract as ScanBatchFrame (kNeedMore / kFrame / kBad) plus the frame's
/// magic so the caller can dispatch before decoding.
struct ReplFrameScan {
  FrameScan::State state = FrameScan::State::kNeedMore;
  uint32_t magic = 0;
  size_t frame_bytes = 0;
  std::string error;
};
ReplFrameScan ScanReplFrame(std::string_view buffer, size_t max_frame_bytes);

Result<int64_t> DecodeReplSubscribe(std::string_view frame);
Result<std::vector<ReplRecord>> DecodeReplRecords(std::string_view frame);
Result<int64_t> DecodeReplHeartbeat(std::string_view frame);
Result<ReplBootstrap> DecodeReplBootstrap(std::string_view frame);
Result<int64_t> DecodeReplProgress(std::string_view frame);

}  // namespace net
}  // namespace streamhist

#endif  // STREAMHIST_SERVER_WIRE_H_
