#include "src/sketch/fm_sketch.h"

#include <bit>
#include <cmath>
#include <cstring>

#include "src/util/framing.h"

namespace streamhist {

namespace {

// phi constant from [FM83].
constexpr double kPhi = 0.77351;

uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

Result<FMSketch> FMSketch::Create(int64_t num_bitmaps, uint64_t seed) {
  if (num_bitmaps < 1 ||
      !std::has_single_bit(static_cast<uint64_t>(num_bitmaps))) {
    return Status::InvalidArgument("num_bitmaps must be a power of two >= 1");
  }
  return FMSketch(num_bitmaps, seed);
}

FMSketch::FMSketch(int64_t num_bitmaps, uint64_t seed) : seed_(seed) {
  bitmaps_.assign(static_cast<size_t>(num_bitmaps), 0);
}

void FMSketch::Add(uint64_t key) {
  ++items_added_;
  const uint64_t h = Mix64(key ^ seed_);
  const uint64_t m = bitmaps_.size();
  const size_t bucket = static_cast<size_t>(h & (m - 1));
  const uint64_t rest = h >> std::countr_zero(m) | (uint64_t{1} << 63);
  const int rank = std::countr_zero(rest);
  const uint64_t bit = uint64_t{1} << rank;
  if ((bitmaps_[bucket] & bit) == 0) {
    bitmaps_[bucket] |= bit;
    ++mutations_;
  }
}

void FMSketch::AddValue(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  Add(bits);
}

double FMSketch::EstimateDistinct() const {
  // Mean rank of the lowest unset bit across bitmaps.
  double total_rank = 0.0;
  int64_t empty = 0;
  for (uint64_t bitmap : bitmaps_) {
    total_rank += static_cast<double>(std::countr_one(bitmap));
    if (bitmap == 0) ++empty;
  }
  const double m = static_cast<double>(bitmaps_.size());
  const double raw = m / kPhi * std::pow(2.0, total_rank / m);
  // PCSA is biased upward for small cardinalities (< ~2.5 bitmaps' worth of
  // keys): fall back to linear counting on the empty-bitmap fraction, the
  // standard hybrid correction.
  if (empty > 0 && raw < 2.5 * m) {
    return m * std::log(m / static_cast<double>(empty));
  }
  return raw;
}

Status FMSketch::Merge(const FMSketch& other) {
  if (other.bitmaps_.size() != bitmaps_.size() || other.seed_ != seed_) {
    return Status::InvalidArgument("FMSketch shape/seed mismatch");
  }
  for (size_t i = 0; i < bitmaps_.size(); ++i) {
    if ((other.bitmaps_[i] & ~bitmaps_[i]) != 0) ++mutations_;
    bitmaps_[i] |= other.bitmaps_[i];
  }
  items_added_ += other.items_added_;
  return Status::OK();
}

namespace {
constexpr uint32_t kFmMagic = 0x5348464D;  // "SHFM"
constexpr uint32_t kFmVersion = 1;
}  // namespace

std::string FMSketch::Serialize() const {
  ByteWriter payload;
  payload.PutU64(seed_);
  payload.PutI64(items_added_);
  payload.PutU64(bitmaps_.size());
  for (uint64_t bitmap : bitmaps_) payload.PutU64(bitmap);
  return WrapFrame(kFmMagic, kFmVersion, payload.bytes());
}

Result<FMSketch> FMSketch::Deserialize(std::string_view bytes) {
  STREAMHIST_ASSIGN_OR_RETURN(FrameView frame,
                              UnwrapFrame(bytes, kFmMagic, "FM sketch"));
  if (frame.version != kFmVersion) {
    return Status::InvalidArgument("unsupported FM sketch version");
  }
  ByteReader reader(frame.payload);
  uint64_t seed = 0, num_bitmaps = 0;
  int64_t items_added = 0;
  if (!reader.ReadU64(&seed) || !reader.ReadI64(&items_added) ||
      !reader.ReadU64(&num_bitmaps)) {
    return Status::InvalidArgument("truncated FM sketch header");
  }
  if (items_added < 0) {
    return Status::InvalidArgument("FM item count violates invariants");
  }
  if (num_bitmaps != reader.remaining() / 8 ||
      num_bitmaps > (uint64_t{1} << 31)) {
    return Status::InvalidArgument("FM bitmap count exceeds payload");
  }
  STREAMHIST_ASSIGN_OR_RETURN(
      FMSketch sketch,
      Create(static_cast<int64_t>(num_bitmaps), seed));
  sketch.items_added_ = items_added;
  for (uint64_t& bitmap : sketch.bitmaps_) {
    reader.ReadU64(&bitmap);  // size pre-validated above
    if (bitmap != 0) ++sketch.mutations_;  // caches keyed on mutations() reset
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after FM sketch");
  }
  return sketch;
}

}  // namespace streamhist
