#ifndef STREAMHIST_SKETCH_FM_SKETCH_H_
#define STREAMHIST_SKETCH_FM_SKETCH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/result.h"

namespace streamhist {

/// Flajolet-Martin probabilistic counting [FM83] with stochastic averaging
/// (PCSA) — the paper's related-work substrate for counting distinct values
/// on a stream in constant space. Each item is hashed; the low bits pick one
/// of `num_bitmaps` bitmaps and the rank of the lowest set bit of the rest
/// marks the bitmap. The distinct-count estimate is
///
///   (num_bitmaps / phi) * 2^(mean lowest-unset-rank),   phi ~= 0.77351
///
/// with standard error ~ 0.78 / sqrt(num_bitmaps).
class FMSketch {
 public:
  /// num_bitmaps must be a power of two >= 1.
  static Result<FMSketch> Create(int64_t num_bitmaps, uint64_t seed = 1);

  /// Adds one item (any 64-bit key; hash doubles via bit_cast for values).
  void Add(uint64_t key);

  /// Convenience for double-valued stream points.
  void AddValue(double value);

  /// Estimated number of distinct keys added.
  double EstimateDistinct() const;

  /// Number of items added (not distinct).
  int64_t items_added() const { return items_added_; }

  /// Number of Add calls that actually changed a bitmap — and therefore the
  /// estimate. Two sketch states with equal mutation counts that started
  /// from the same state yield equal estimates, so callers can cache
  /// EstimateDistinct() keyed on this counter and skip the O(num_bitmaps)
  /// scan on the (overwhelmingly common) no-new-bit append. In-memory only:
  /// not serialized, not part of the equality surface.
  int64_t mutations() const { return mutations_; }

  int64_t num_bitmaps() const {
    return static_cast<int64_t>(bitmaps_.size());
  }

  /// Approximate heap footprint in bytes (for the memory governor).
  int64_t MemoryBytes() const {
    return static_cast<int64_t>(bitmaps_.capacity() * sizeof(uint64_t));
  }

  /// Merges another sketch built with the same shape and seed (union
  /// semantics). Returns InvalidArgument on shape/seed mismatch.
  Status Merge(const FMSketch& other);

  /// Serializes seed, counters, and bitmaps as a framed, CRC-protected
  /// blob; a round-trip restores identical estimates and merge behavior.
  std::string Serialize() const;

  /// Inverse of Serialize; never aborts on hostile bytes.
  static Result<FMSketch> Deserialize(std::string_view bytes);

 private:
  FMSketch(int64_t num_bitmaps, uint64_t seed);

  uint64_t seed_;
  int64_t items_added_ = 0;
  int64_t mutations_ = 0;
  std::vector<uint64_t> bitmaps_;  // bit r set: some key hit rank r
};

}  // namespace streamhist

#endif  // STREAMHIST_SKETCH_FM_SKETCH_H_
