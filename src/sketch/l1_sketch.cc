#include "src/sketch/l1_sketch.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace streamhist {

namespace {

uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

double MedianOfAbs(std::vector<double> values) {
  const size_t mid = values.size() / 2;
  for (double& v : values) v = std::fabs(v);
  std::nth_element(values.begin(), values.begin() + static_cast<ptrdiff_t>(mid),
                   values.end());
  double median = values[mid];
  if (values.size() % 2 == 0) {
    const double lower = *std::max_element(
        values.begin(), values.begin() + static_cast<ptrdiff_t>(mid));
    median = (median + lower) / 2.0;
  }
  return median;
}

}  // namespace

Result<L1Sketch> L1Sketch::Create(int64_t num_counters, uint64_t seed) {
  if (num_counters < 1) {
    return Status::InvalidArgument("num_counters must be >= 1");
  }
  return L1Sketch(num_counters, seed);
}

L1Sketch::L1Sketch(int64_t num_counters, uint64_t seed) : seed_(seed) {
  counters_.assign(static_cast<size_t>(num_counters), 0.0);
}

double L1Sketch::CauchyAt(int64_t j, int64_t index) const {
  // Deterministic uniform in (0, 1) from (seed, j, index), then the Cauchy
  // inverse CDF tan(pi (u - 1/2)).
  const uint64_t h =
      Mix64(seed_ ^ Mix64(static_cast<uint64_t>(j) * 0x9e3779b97f4a7c15ULL ^
                          static_cast<uint64_t>(index)));
  const double u =
      (static_cast<double>(h >> 11) + 0.5) * 0x1.0p-53;  // (0, 1)
  return std::tan(M_PI * (u - 0.5));
}

void L1Sketch::Update(int64_t index, double delta) {
  for (size_t j = 0; j < counters_.size(); ++j) {
    counters_[j] += delta * CauchyAt(static_cast<int64_t>(j), index);
  }
}

double L1Sketch::EstimateL1Norm() const {
  return MedianOfAbs(counters_);
}

double L1Sketch::EstimateL1Distance(const L1Sketch& other) const {
  STREAMHIST_CHECK_EQ(counters_.size(), other.counters_.size());
  STREAMHIST_CHECK_EQ(seed_, other.seed_);
  std::vector<double> diffs(counters_.size());
  for (size_t j = 0; j < counters_.size(); ++j) {
    diffs[j] = counters_[j] - other.counters_[j];
  }
  return MedianOfAbs(std::move(diffs));
}

}  // namespace streamhist
