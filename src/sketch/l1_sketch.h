#ifndef STREAMHIST_SKETCH_L1_SKETCH_H_
#define STREAMHIST_SKETCH_L1_SKETCH_H_

#include <cstdint>
#include <vector>

#include "src/util/result.h"

namespace streamhist {

/// Stable-distribution L1 sketch in the style of Indyk [Ind00] (the paper's
/// related work also cites the L1-difference algorithm of Feigenbaum et al.
/// [FKSV99]): maintains k counters c_j = sum_i x_i * s_j(i) where s_j(i) is
/// a pseudorandom Cauchy variate derived deterministically from (j, i, seed).
/// Because the Cauchy distribution is 1-stable, c_j(x) - c_j(y) is
/// distributed as ||x - y||_1 times a standard Cauchy, so
///
///   L1(x, y)  ~=  median_j |c_j(x) - c_j(y)|
///
/// Streams are vectors indexed by position: Update(i, delta) adds delta to
/// coordinate i. Two sketches built with the same (k, seed) are comparable
/// and linear (sketch(x - y) = sketch(x) - sketch(y)).
class L1Sketch {
 public:
  /// num_counters (k) must be >= 1; accuracy ~ O(1/sqrt(k)).
  static Result<L1Sketch> Create(int64_t num_counters, uint64_t seed = 1);

  /// Adds delta to coordinate `index` of the underlying vector.
  void Update(int64_t index, double delta);

  /// Convenience: appends a stream point as coordinate `next_index++`.
  void Append(double value) { Update(next_index_++, value); }

  /// Estimated L1 norm of the underlying vector.
  double EstimateL1Norm() const;

  /// Estimated L1 distance to another sketch (same k and seed required;
  /// CHECK-fails otherwise).
  double EstimateL1Distance(const L1Sketch& other) const;

  int64_t num_counters() const {
    return static_cast<int64_t>(counters_.size());
  }

 private:
  L1Sketch(int64_t num_counters, uint64_t seed);

  // Pseudorandom standard Cauchy variate for (counter j, coordinate i).
  double CauchyAt(int64_t j, int64_t index) const;

  uint64_t seed_;
  int64_t next_index_ = 0;
  std::vector<double> counters_;
};

}  // namespace streamhist

#endif  // STREAMHIST_SKETCH_L1_SKETCH_H_
