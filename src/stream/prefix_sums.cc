#include "src/stream/prefix_sums.h"

namespace streamhist {

PrefixSums::PrefixSums(std::span<const double> values) {
  const size_t n = values.size();
  if (n > 0) {
    long double total = 0.0L;
    for (const double v : values) total += v;
    offset_ = total / static_cast<long double>(n);
  }
  sum_.resize(n + 1);
  sqsum_.resize(n + 1);
  sum_[0] = 0.0L;
  sqsum_[0] = 0.0L;
  for (size_t k = 0; k < n; ++k) {
    const long double d = values[k] - offset_;
    sum_[k + 1] = sum_[k] + d;
    sqsum_[k + 1] = sqsum_[k] + d * d;
  }
}

}  // namespace streamhist
