#include "src/stream/prefix_sums.h"

#include "src/util/logging.h"

namespace streamhist {

PrefixSums::PrefixSums(std::span<const double> values) {
  const size_t n = values.size();
  if (n > 0) {
    long double total = 0.0L;
    for (const double v : values) total += v;
    offset_ = total / static_cast<long double>(n);
  }
  sum_.resize(n + 1);
  sqsum_.resize(n + 1);
  sum_[0] = 0.0L;
  sqsum_[0] = 0.0L;
  for (size_t k = 0; k < n; ++k) {
    const long double d = values[k] - offset_;
    sum_[k + 1] = sum_[k] + d;
    sqsum_[k + 1] = sqsum_[k] + d * d;
  }
}

double PrefixSums::Sum(int64_t i, int64_t j) const {
  STREAMHIST_DCHECK(0 <= i && i <= j && j <= size());
  const long double shifted =
      sum_[static_cast<size_t>(j)] - sum_[static_cast<size_t>(i)];
  return static_cast<double>(shifted + offset_ * static_cast<long double>(j - i));
}

double PrefixSums::SumSquares(int64_t i, int64_t j) const {
  STREAMHIST_DCHECK(0 <= i && i <= j && j <= size());
  // sum v^2 = sum (d + o)^2 = sum d^2 + 2 o sum d + o^2 w.
  const long double d2 =
      sqsum_[static_cast<size_t>(j)] - sqsum_[static_cast<size_t>(i)];
  const long double d1 =
      sum_[static_cast<size_t>(j)] - sum_[static_cast<size_t>(i)];
  const long double w = static_cast<long double>(j - i);
  return static_cast<double>(d2 + 2.0L * offset_ * d1 + offset_ * offset_ * w);
}

double PrefixSums::Mean(int64_t i, int64_t j) const {
  STREAMHIST_DCHECK(i < j);
  return Sum(i, j) / static_cast<double>(j - i);
}

double PrefixSums::SqError(int64_t i, int64_t j) const {
  STREAMHIST_DCHECK(0 <= i && i <= j && j <= size());
  if (j - i <= 1) return 0.0;
  // Shift-invariant: evaluate on the shifted values directly.
  const long double s =
      sum_[static_cast<size_t>(j)] - sum_[static_cast<size_t>(i)];
  const long double q =
      sqsum_[static_cast<size_t>(j)] - sqsum_[static_cast<size_t>(i)];
  const long double err = q - s * s / static_cast<long double>(j - i);
  return err > 0.0L ? static_cast<double>(err) : 0.0;
}

}  // namespace streamhist
