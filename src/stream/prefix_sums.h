#ifndef STREAMHIST_STREAM_PREFIX_SUMS_H_
#define STREAMHIST_STREAM_PREFIX_SUMS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/util/logging.h"

namespace streamhist {

/// Prefix sums and sums-of-squares over a finite sequence, supporting O(1)
/// bucket statistics. This is the paper's SUM / SQSUM pair (equation 3):
/// for a bucket the squared error under the mean representative is
///
///   SQERROR(i, j) = SQSUM(i, j) - SUM(i, j)^2 / (j - i)
///
/// (half-open [i, j) in this codebase). Accumulation uses long double over
/// values *shifted by the sequence mean* — SQERROR is shift-invariant, and
/// shifting keeps the catastrophic-cancellation term SUM^2/(j-i) small even
/// when the data rides a large offset (e.g. values near 1e9 with tiny
/// variance). Results are clamped at zero so rounding can never produce a
/// negative bucket error.
///
/// The query methods are defined inline: they sit in the inner loop of the
/// V-optimal DP kernels (core/vopt_kernel.h), where a cross-TU call per
/// candidate would dominate the sweep.
class PrefixSums {
 public:
  /// Builds prefix sums over `values` in O(n).
  explicit PrefixSums(std::span<const double> values);

  /// Number of underlying values.
  int64_t size() const { return static_cast<int64_t>(sum_.size()) - 1; }

  /// Sum of values[i..j). Requires 0 <= i <= j <= size().
  double Sum(int64_t i, int64_t j) const {
    STREAMHIST_DCHECK(0 <= i && i <= j && j <= size());
    const long double shifted =
        sum_[static_cast<size_t>(j)] - sum_[static_cast<size_t>(i)];
    return static_cast<double>(shifted +
                               offset_ * static_cast<long double>(j - i));
  }

  /// Sum of squared values over [i, j). Requires 0 <= i <= j <= size().
  double SumSquares(int64_t i, int64_t j) const {
    STREAMHIST_DCHECK(0 <= i && i <= j && j <= size());
    // sum v^2 = sum (d + o)^2 = sum d^2 + 2 o sum d + o^2 w.
    const long double d2 =
        sqsum_[static_cast<size_t>(j)] - sqsum_[static_cast<size_t>(i)];
    const long double d1 =
        sum_[static_cast<size_t>(j)] - sum_[static_cast<size_t>(i)];
    const long double w = static_cast<long double>(j - i);
    return static_cast<double>(d2 + 2.0L * offset_ * d1 + offset_ * offset_ * w);
  }

  /// Mean of values[i..j). Requires i < j.
  double Mean(int64_t i, int64_t j) const {
    STREAMHIST_DCHECK(i < j);
    return Sum(i, j) / static_cast<double>(j - i);
  }

  /// SSE of representing values[i..j) by their mean; 0 for empty ranges.
  double SqError(int64_t i, int64_t j) const {
    STREAMHIST_DCHECK(0 <= i && i <= j && j <= size());
    if (j - i <= 1) return 0.0;
    // Shift-invariant: evaluate on the shifted values directly.
    const long double s =
        sum_[static_cast<size_t>(j)] - sum_[static_cast<size_t>(i)];
    const long double q =
        sqsum_[static_cast<size_t>(j)] - sqsum_[static_cast<size_t>(i)];
    const long double err = q - s * s / static_cast<long double>(j - i);
    return err > 0.0L ? static_cast<double>(err) : 0.0;
  }

 private:
  long double offset_ = 0.0L;       // sequence mean, subtracted before summing
  std::vector<long double> sum_;    // sum_[k] = sum of shifted values[0..k)
  std::vector<long double> sqsum_;  // sqsum_[k] = shifted sum of squares
};

}  // namespace streamhist

#endif  // STREAMHIST_STREAM_PREFIX_SUMS_H_
