#include "src/stream/sliding_window.h"

#include "src/util/logging.h"

namespace streamhist {

SlidingWindow::SlidingWindow(int64_t capacity) : capacity_(capacity) {
  STREAMHIST_CHECK_GT(capacity, 0);
  values_.resize(static_cast<size_t>(capacity));
  cum_sum_.resize(static_cast<size_t>(capacity));
  cum_sqsum_.resize(static_cast<size_t>(capacity));
}

void SlidingWindow::EvictOldest() {
  STREAMHIST_CHECK_GT(size_, 0);
  // Fold the departing point's cumulative totals into the base.
  const size_t old_slot = Slot(0);
  base_sum_ = cum_sum_[old_slot];
  base_sqsum_ = cum_sqsum_[old_slot];
  head_ = (head_ + 1) % capacity_;
  --size_;
}

void SlidingWindow::Append(double value) {
  if (total_appended_ == 0) offset_ = value;  // seed the shift epoch
  if (size_ == capacity_) EvictOldest();
  const size_t slot = Slot(size_);
  const long double d = value - offset_;
  running_sum_ += d;
  running_sqsum_ += d * d;
  values_[slot] = value;
  cum_sum_[slot] = running_sum_;
  cum_sqsum_[slot] = running_sqsum_;
  ++size_;
  ++total_appended_;
  if (++appends_since_rebase_ >= capacity_) Rebase();
}

void SlidingWindow::Rebase() {
  // Rebuild the cumulative arrays with the window start as the new origin
  // and the current window mean as the new shift offset.
  if (size_ > 0) {
    long double total = 0.0L;
    for (int64_t i = 0; i < size_; ++i) total += values_[Slot(i)];
    offset_ = total / static_cast<long double>(size_);
  }
  running_sum_ = 0.0L;
  running_sqsum_ = 0.0L;
  base_sum_ = 0.0L;
  base_sqsum_ = 0.0L;
  for (int64_t i = 0; i < size_; ++i) {
    const size_t slot = Slot(i);
    const long double d = values_[slot] - offset_;
    running_sum_ += d;
    running_sqsum_ += d * d;
    cum_sum_[slot] = running_sum_;
    cum_sqsum_[slot] = running_sqsum_;
  }
  appends_since_rebase_ = 0;
  ++rebase_count_;
}

double SlidingWindow::operator[](int64_t i) const {
  STREAMHIST_DCHECK(0 <= i && i < size_);
  return values_[Slot(i)];
}

std::vector<double> SlidingWindow::ToVector() const {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(size_));
  for (int64_t i = 0; i < size_; ++i) out.push_back((*this)[i]);
  return out;
}

double SlidingWindow::Sum(int64_t i, int64_t j) const {
  STREAMHIST_DCHECK(0 <= i && i <= j && j <= size_);
  if (i == j) return 0.0;
  const long double shifted = CumSum(j - 1) - CumSumBefore(i);
  return static_cast<double>(shifted +
                             offset_ * static_cast<long double>(j - i));
}

double SlidingWindow::SumSquares(int64_t i, int64_t j) const {
  STREAMHIST_DCHECK(0 <= i && i <= j && j <= size_);
  if (i == j) return 0.0;
  // sum v^2 = sum (d + o)^2 = sum d^2 + 2 o sum d + o^2 w.
  const long double d2 = CumSqSum(j - 1) - CumSqSumBefore(i);
  const long double d1 = CumSum(j - 1) - CumSumBefore(i);
  const long double w = static_cast<long double>(j - i);
  return static_cast<double>(d2 + 2.0L * offset_ * d1 + offset_ * offset_ * w);
}

double SlidingWindow::Mean(int64_t i, int64_t j) const {
  STREAMHIST_DCHECK(i < j);
  return Sum(i, j) / static_cast<double>(j - i);
}

double SlidingWindow::SqError(int64_t i, int64_t j) const {
  STREAMHIST_DCHECK(0 <= i && i <= j && j <= size_);
  if (j - i <= 1) return 0.0;
  const long double s = CumSum(j - 1) - CumSumBefore(i);
  const long double q = CumSqSum(j - 1) - CumSqSumBefore(i);
  const long double err = q - s * s / static_cast<long double>(j - i);
  return err > 0.0L ? static_cast<double>(err) : 0.0;
}

}  // namespace streamhist
