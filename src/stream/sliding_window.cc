#include "src/stream/sliding_window.h"

#include <cmath>

#include "src/util/framing.h"
#include "src/util/logging.h"

namespace streamhist {

namespace {

constexpr uint32_t kWindowMagic = 0x53485357;  // "SHSW"
constexpr uint32_t kWindowVersion = 1;
// Guards the capacity-sized allocations against a corrupted header; a
// 128M-point window is far beyond any supported configuration.
constexpr int64_t kMaxWindowCapacity = int64_t{1} << 27;
// Per-point payload: value f64 + two long doubles as (hi, lo) pairs.
constexpr size_t kBytesPerPoint = 8 + 16 + 16;

}  // namespace

SlidingWindow::SlidingWindow(int64_t capacity) : capacity_(capacity) {
  STREAMHIST_CHECK_GT(capacity, 0);
  values_.resize(static_cast<size_t>(capacity));
  cum_sum_.resize(static_cast<size_t>(capacity));
  cum_sqsum_.resize(static_cast<size_t>(capacity));
}

void SlidingWindow::EvictOldest() {
  STREAMHIST_CHECK_GT(size_, 0);
  // Fold the departing point's cumulative totals into the base.
  const size_t old_slot = Slot(0);
  base_sum_ = cum_sum_[old_slot];
  base_sqsum_ = cum_sqsum_[old_slot];
  head_ = (head_ + 1) % capacity_;
  --size_;
}

void SlidingWindow::Append(double value) {
  if (total_appended_ == 0) offset_ = value;  // seed the shift epoch
  if (size_ == capacity_) EvictOldest();
  const size_t slot = Slot(size_);
  const long double d = value - offset_;
  running_sum_ += d;
  running_sqsum_ += d * d;
  values_[slot] = value;
  cum_sum_[slot] = running_sum_;
  cum_sqsum_[slot] = running_sqsum_;
  ++size_;
  ++total_appended_;
  if (++appends_since_rebase_ >= capacity_) Rebase();
}

void SlidingWindow::Rebase() {
  // Rebuild the cumulative arrays with the window start as the new origin
  // and the current window mean as the new shift offset.
  if (size_ > 0) {
    long double total = 0.0L;
    for (int64_t i = 0; i < size_; ++i) total += values_[Slot(i)];
    offset_ = total / static_cast<long double>(size_);
  }
  running_sum_ = 0.0L;
  running_sqsum_ = 0.0L;
  base_sum_ = 0.0L;
  base_sqsum_ = 0.0L;
  for (int64_t i = 0; i < size_; ++i) {
    const size_t slot = Slot(i);
    const long double d = values_[slot] - offset_;
    running_sum_ += d;
    running_sqsum_ += d * d;
    cum_sum_[slot] = running_sum_;
    cum_sqsum_[slot] = running_sqsum_;
  }
  appends_since_rebase_ = 0;
  ++rebase_count_;
}

double SlidingWindow::operator[](int64_t i) const {
  STREAMHIST_DCHECK(0 <= i && i < size_);
  return values_[Slot(i)];
}

std::vector<double> SlidingWindow::ToVector() const {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(size_));
  for (int64_t i = 0; i < size_; ++i) out.push_back((*this)[i]);
  return out;
}

double SlidingWindow::Sum(int64_t i, int64_t j) const {
  STREAMHIST_DCHECK(0 <= i && i <= j && j <= size_);
  if (i == j) return 0.0;
  const long double shifted = CumSum(j - 1) - CumSumBefore(i);
  return static_cast<double>(shifted +
                             offset_ * static_cast<long double>(j - i));
}

double SlidingWindow::SumSquares(int64_t i, int64_t j) const {
  STREAMHIST_DCHECK(0 <= i && i <= j && j <= size_);
  if (i == j) return 0.0;
  // sum v^2 = sum (d + o)^2 = sum d^2 + 2 o sum d + o^2 w.
  const long double d2 = CumSqSum(j - 1) - CumSqSumBefore(i);
  const long double d1 = CumSum(j - 1) - CumSumBefore(i);
  const long double w = static_cast<long double>(j - i);
  return static_cast<double>(d2 + 2.0L * offset_ * d1 + offset_ * offset_ * w);
}

double SlidingWindow::Mean(int64_t i, int64_t j) const {
  STREAMHIST_DCHECK(i < j);
  return Sum(i, j) / static_cast<double>(j - i);
}

double SlidingWindow::SqError(int64_t i, int64_t j) const {
  STREAMHIST_DCHECK(0 <= i && i <= j && j <= size_);
  if (j - i <= 1) return 0.0;
  const long double s = CumSum(j - 1) - CumSumBefore(i);
  const long double q = CumSqSum(j - 1) - CumSqSumBefore(i);
  const long double err = q - s * s / static_cast<long double>(j - i);
  return err > 0.0L ? static_cast<double>(err) : 0.0;
}

std::string SlidingWindow::Serialize() const {
  ByteWriter payload;
  payload.PutI64(capacity_);
  payload.PutI64(size_);
  payload.PutI64(total_appended_);
  payload.PutI64(appends_since_rebase_);
  payload.PutI64(rebase_count_);
  payload.PutLongDouble(offset_);
  payload.PutLongDouble(running_sum_);
  payload.PutLongDouble(running_sqsum_);
  payload.PutLongDouble(base_sum_);
  payload.PutLongDouble(base_sqsum_);
  // Live entries in logical (oldest-first) order; the restored window packs
  // them from slot 0, which preserves every logical-index query.
  for (int64_t i = 0; i < size_; ++i) {
    const size_t slot = Slot(i);
    payload.PutF64(values_[slot]);
    payload.PutLongDouble(cum_sum_[slot]);
    payload.PutLongDouble(cum_sqsum_[slot]);
  }
  return WrapFrame(kWindowMagic, kWindowVersion, payload.bytes());
}

Result<SlidingWindow> SlidingWindow::Deserialize(std::string_view bytes) {
  STREAMHIST_ASSIGN_OR_RETURN(FrameView frame,
                              UnwrapFrame(bytes, kWindowMagic, "window"));
  if (frame.version != kWindowVersion) {
    return Status::InvalidArgument("unsupported window version");
  }
  ByteReader reader(frame.payload);
  int64_t capacity = 0, size = 0, total_appended = 0, appends_since_rebase = 0,
          rebase_count = 0;
  long double offset = 0.0L, running_sum = 0.0L, running_sqsum = 0.0L,
              base_sum = 0.0L, base_sqsum = 0.0L;
  if (!reader.ReadI64(&capacity) || !reader.ReadI64(&size) ||
      !reader.ReadI64(&total_appended) ||
      !reader.ReadI64(&appends_since_rebase) ||
      !reader.ReadI64(&rebase_count) || !reader.ReadLongDouble(&offset) ||
      !reader.ReadLongDouble(&running_sum) ||
      !reader.ReadLongDouble(&running_sqsum) ||
      !reader.ReadLongDouble(&base_sum) ||
      !reader.ReadLongDouble(&base_sqsum)) {
    return Status::InvalidArgument("truncated window header");
  }
  if (capacity < 1 || capacity > kMaxWindowCapacity) {
    return Status::InvalidArgument("window capacity out of range");
  }
  if (size < 0 || size > capacity || total_appended < size ||
      appends_since_rebase < 0 || appends_since_rebase >= capacity + 1 ||
      rebase_count < 0) {
    return Status::InvalidArgument("window counters violate invariants");
  }
  if (reader.remaining() != static_cast<size_t>(size) * kBytesPerPoint) {
    return Status::InvalidArgument("window payload size mismatch");
  }
  if (!std::isfinite(static_cast<double>(offset))) {
    return Status::InvalidArgument("window offset is not finite");
  }
  SlidingWindow window(capacity);
  window.size_ = size;
  window.total_appended_ = total_appended;
  window.appends_since_rebase_ = appends_since_rebase;
  window.rebase_count_ = rebase_count;
  window.offset_ = offset;
  window.running_sum_ = running_sum;
  window.running_sqsum_ = running_sqsum;
  window.base_sum_ = base_sum;
  window.base_sqsum_ = base_sqsum;
  for (int64_t i = 0; i < size; ++i) {
    double value = 0.0;
    long double cum = 0.0L, cumsq = 0.0L;
    reader.ReadF64(&value);  // sizes pre-validated above
    reader.ReadLongDouble(&cum);
    reader.ReadLongDouble(&cumsq);
    if (!std::isfinite(value) || !std::isfinite(static_cast<double>(cum)) ||
        !std::isfinite(static_cast<double>(cumsq))) {
      return Status::InvalidArgument("window contains non-finite values");
    }
    const size_t slot = static_cast<size_t>(i);  // restored head_ is 0
    window.values_[slot] = value;
    window.cum_sum_[slot] = cum;
    window.cum_sqsum_[slot] = cumsq;
  }
  return window;
}

}  // namespace streamhist
