#ifndef STREAMHIST_STREAM_SLIDING_WINDOW_H_
#define STREAMHIST_STREAM_SLIDING_WINDOW_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/result.h"

namespace streamhist {

/// Circular buffer over the most recent `capacity` stream points, augmented
/// with the paper's cyclic prefix-sum arrays SUM' and SQSUM' (section 4.5):
/// each slot carries the running total of everything appended since the last
/// rebase, and the totals evicted from the window are tracked separately, so
/// any window-relative bucket sum or squared error is O(1). Every `capacity`
/// appends the running totals are rebuilt from the live window contents —
/// O(n) work amortized to O(1) per append, exactly as the paper prescribes.
///
/// Numerics: sums accumulate values *shifted by a per-epoch offset* (the
/// window mean at the last rebase). SqError is shift-invariant, so the
/// catastrophic-cancellation term SUM^2/(j-i) stays small even when the data
/// rides a large offset (values near 1e9 with tiny variance); the rebase
/// also bounds the accumulated magnitude between epochs.
///
/// Logical indices are window-relative: index 0 is the temporally oldest
/// point currently in the window, size()-1 the newest.
class SlidingWindow {
 public:
  /// Creates an empty window holding at most `capacity` (> 0) points.
  explicit SlidingWindow(int64_t capacity);

  /// Appends a point, evicting the oldest one if the window is full.
  void Append(double value);

  /// Evicts the oldest point without appending (for time-based windows).
  /// Requires size() > 0.
  void EvictOldest();

  /// Number of points currently held (<= capacity).
  int64_t size() const { return size_; }

  /// Maximum number of points held.
  int64_t capacity() const { return capacity_; }

  /// True once capacity() points have been appended.
  bool full() const { return size_ == capacity_; }

  /// Total number of Append calls over the stream's lifetime.
  int64_t total_appended() const { return total_appended_; }

  /// Value at window-relative index i in [0, size()).
  double operator[](int64_t i) const;

  /// Copies the current window contents oldest-first.
  std::vector<double> ToVector() const;

  /// Sum of window values over the half-open logical range [i, j).
  double Sum(int64_t i, int64_t j) const;

  /// Sum of squares of window values over [i, j).
  double SumSquares(int64_t i, int64_t j) const;

  /// Mean of window values over [i, j); requires i < j.
  double Mean(int64_t i, int64_t j) const;

  /// SSE of representing window values [i, j) by their mean (clamped >= 0).
  double SqError(int64_t i, int64_t j) const;

  /// Number of O(n) rebases performed so far (exposed for tests/benches).
  int64_t rebase_count() const { return rebase_count_; }

  /// Approximate heap footprint in bytes (values plus the two cyclic
  /// prefix-sum arrays) — the input to the memory governor's accounting
  /// (util/governor.h).
  int64_t MemoryBytes() const {
    return static_cast<int64_t>(values_.capacity() * sizeof(double) +
                                cum_sum_.capacity() * sizeof(long double) +
                                cum_sqsum_.capacity() * sizeof(long double));
  }

  /// Serializes the complete window state — values, cumulative sums, shift
  /// epoch, counters — as a framed, CRC-protected blob (util/framing.h).
  /// Deserialize restores a bit-identical window, so every query answer and
  /// every future append behaves exactly as on the original.
  std::string Serialize() const;

  /// Inverse of Serialize; validates structure, bounds, and finiteness, and
  /// returns InvalidArgument (never aborts) on hostile bytes.
  static Result<SlidingWindow> Deserialize(std::string_view bytes);

 private:
  // Physical slot of logical index i.
  std::size_t Slot(int64_t i) const {
    return static_cast<std::size_t>((head_ + i) % capacity_);
  }
  // Running totals including logical index i, minus nothing: cumulative since
  // last rebase.
  long double CumSum(int64_t i) const { return cum_sum_[Slot(i)]; }
  long double CumSqSum(int64_t i) const { return cum_sqsum_[Slot(i)]; }
  // Cumulative totals strictly before logical index i.
  long double CumSumBefore(int64_t i) const {
    return i == 0 ? base_sum_ : CumSum(i - 1);
  }
  long double CumSqSumBefore(int64_t i) const {
    return i == 0 ? base_sqsum_ : CumSqSum(i - 1);
  }
  void Rebase();

  int64_t capacity_;
  int64_t size_ = 0;
  int64_t head_ = 0;  // physical slot of logical index 0
  int64_t total_appended_ = 0;
  int64_t appends_since_rebase_ = 0;
  int64_t rebase_count_ = 0;

  std::vector<double> values_;
  std::vector<long double> cum_sum_;
  std::vector<long double> cum_sqsum_;
  long double offset_ = 0.0L;         // per-epoch shift applied before summing
  long double running_sum_ = 0.0L;    // shifted totals since last rebase
  long double running_sqsum_ = 0.0L;
  long double base_sum_ = 0.0L;       // shifted totals evicted since rebase
  long double base_sqsum_ = 0.0L;
};

}  // namespace streamhist

#endif  // STREAMHIST_STREAM_SLIDING_WINDOW_H_
