#include "src/stream/sources.h"

namespace streamhist {

std::vector<double> Drain(StreamSource& source, int64_t max_points) {
  std::vector<double> out;
  for (int64_t i = 0; i < max_points; ++i) {
    std::optional<double> v = source.Next();
    if (!v.has_value()) break;
    out.push_back(*v);
  }
  return out;
}

}  // namespace streamhist
