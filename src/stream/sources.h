#ifndef STREAMHIST_STREAM_SOURCES_H_
#define STREAMHIST_STREAM_SOURCES_H_

#include <functional>
#include <optional>
#include <utility>
#include <vector>

namespace streamhist {

/// A one-pass data stream: points are produced in arrival order and can be
/// read exactly once, matching the paper's model. Next() returns nullopt when
/// the stream is exhausted (infinite sources never are).
class StreamSource {
 public:
  virtual ~StreamSource() = default;

  /// Produces the next point, or nullopt at end of stream.
  virtual std::optional<double> Next() = 0;
};

/// Replays a finite, materialized sequence as a stream.
class VectorSource : public StreamSource {
 public:
  explicit VectorSource(std::vector<double> values)
      : values_(std::move(values)) {}

  std::optional<double> Next() override {
    if (pos_ >= values_.size()) return std::nullopt;
    return values_[pos_++];
  }

  /// Rewinds to the beginning (useful for multi-algorithm comparisons over
  /// the same stream; each algorithm still sees a single pass).
  void Reset() { pos_ = 0; }

 private:
  std::vector<double> values_;
  size_t pos_ = 0;
};

/// Adapts a callable producing one point per call into a (possibly infinite)
/// stream. The callable returns nullopt to end the stream.
class GeneratorSource : public StreamSource {
 public:
  explicit GeneratorSource(std::function<std::optional<double>()> fn)
      : fn_(std::move(fn)) {}

  std::optional<double> Next() override { return fn_(); }

 private:
  std::function<std::optional<double>()> fn_;
};

/// Truncates another stream after `limit` points.
class LimitSource : public StreamSource {
 public:
  LimitSource(StreamSource* inner, int64_t limit)
      : inner_(inner), remaining_(limit) {}

  std::optional<double> Next() override {
    if (remaining_ <= 0) return std::nullopt;
    --remaining_;
    return inner_->Next();
  }

 private:
  StreamSource* inner_;  // not owned
  int64_t remaining_;
};

/// Drains a stream into a vector (at most `max_points` points).
std::vector<double> Drain(StreamSource& source, int64_t max_points);

}  // namespace streamhist

#endif  // STREAMHIST_STREAM_SOURCES_H_
