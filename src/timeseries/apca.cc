#include "src/timeseries/apca.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "src/stream/prefix_sums.h"
#include "src/util/logging.h"
#include "src/wavelet/haar.h"
#include "src/wavelet/synopsis.h"

namespace streamhist {

PiecewiseConstant BuildApca(std::span<const double> data,
                            int64_t num_segments) {
  STREAMHIST_CHECK_GT(num_segments, 0);
  const int64_t n = static_cast<int64_t>(data.size());
  if (n == 0) return PiecewiseConstant();

  // Steps 1-2: thresholded Haar reconstruction and its segment boundaries.
  const WaveletSynopsis synopsis = WaveletSynopsis::Build(data, num_segments);
  const std::vector<double> approx = synopsis.Reconstruct();

  std::vector<int64_t> boundaries{0};
  for (int64_t i = 1; i < n; ++i) {
    if (approx[static_cast<size_t>(i)] != approx[static_cast<size_t>(i - 1)]) {
      boundaries.push_back(i);
    }
  }
  boundaries.push_back(n);

  // Step 3: merge adjacent segments (smallest SSE increase first) down to
  // num_segments. Segment count is O(num_segments), so a quadratic greedy
  // loop is fine.
  PrefixSums sums(data);
  auto segment_sse = [&](int64_t b, int64_t e) { return sums.SqError(b, e); };
  while (static_cast<int64_t>(boundaries.size()) - 1 > num_segments) {
    double best = std::numeric_limits<double>::infinity();
    size_t best_k = 1;
    for (size_t k = 1; k + 1 < boundaries.size(); ++k) {
      const double penalty =
          segment_sse(boundaries[k - 1], boundaries[k + 1]) -
          segment_sse(boundaries[k - 1], boundaries[k]) -
          segment_sse(boundaries[k], boundaries[k + 1]);
      if (penalty < best) {
        best = penalty;
        best_k = k;
      }
    }
    boundaries.erase(boundaries.begin() + static_cast<ptrdiff_t>(best_k));
  }

  // Step 4: exact means.
  std::vector<Segment> segments;
  segments.reserve(boundaries.size() - 1);
  for (size_t k = 0; k + 1 < boundaries.size(); ++k) {
    segments.push_back(Segment{boundaries[k], boundaries[k + 1],
                               sums.Mean(boundaries[k], boundaries[k + 1])});
  }
  return PiecewiseConstant(std::move(segments));
}

}  // namespace streamhist
