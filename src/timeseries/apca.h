#ifndef STREAMHIST_TIMESERIES_APCA_H_
#define STREAMHIST_TIMESERIES_APCA_H_

#include <cstdint>
#include <span>

#include "src/timeseries/piecewise.h"

namespace streamhist {

/// Adaptive Piecewise Constant Approximation of Keogh, Chakrabarti, Mehrotra
/// & Pazzani [KCMP01] — the comparison method in the paper's similarity
/// experiments. The construction follows the original recipe:
///
///   1. Haar-decompose the (power-of-two padded) series and retain the
///      `num_segments` largest coefficients under L2 normalization;
///   2. reconstruct and read off the piecewise-constant segment boundaries
///      (at most 3 * num_segments segments arise);
///   3. greedily merge adjacent segments with the smallest SSE increase
///      until `num_segments` remain;
///   4. set each segment's value to the exact data mean over the segment
///      (required for the lower-bounding distance).
///
/// O(n log n) per series. Fast but heuristic: no approximation guarantee
/// relative to the optimal piecewise representation — the contrast the
/// paper's experiments draw out.
PiecewiseConstant BuildApca(std::span<const double> data, int64_t num_segments);

}  // namespace streamhist

#endif  // STREAMHIST_TIMESERIES_APCA_H_
