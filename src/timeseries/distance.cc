#include "src/timeseries/distance.h"

#include <cmath>

#include "src/util/logging.h"

namespace streamhist {

double SquaredEuclidean(std::span<const double> a, std::span<const double> b) {
  STREAMHIST_CHECK_EQ(a.size(), b.size());
  long double total = 0.0L;
  for (size_t i = 0; i < a.size(); ++i) {
    const long double d = a[i] - b[i];
    total += d * d;
  }
  return static_cast<double>(total);
}

double Euclidean(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(SquaredEuclidean(a, b));
}

double SquaredLowerBound(std::span<const double> query,
                         const PiecewiseConstant& repr) {
  STREAMHIST_CHECK_EQ(static_cast<int64_t>(query.size()), repr.domain_size());
  long double total = 0.0L;
  for (const Segment& s : repr.segments()) {
    long double qsum = 0.0L;
    for (int64_t i = s.begin; i < s.end; ++i) {
      qsum += query[static_cast<size_t>(i)];
    }
    const long double qmean = qsum / static_cast<long double>(s.width());
    const long double d = qmean - s.value;
    total += static_cast<long double>(s.width()) * d * d;
  }
  return static_cast<double>(total);
}

double LowerBound(std::span<const double> query,
                  const PiecewiseConstant& repr) {
  return std::sqrt(SquaredLowerBound(query, repr));
}

}  // namespace streamhist
