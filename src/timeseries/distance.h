#ifndef STREAMHIST_TIMESERIES_DISTANCE_H_
#define STREAMHIST_TIMESERIES_DISTANCE_H_

#include <span>

#include "src/timeseries/piecewise.h"

namespace streamhist {

/// Exact squared Euclidean distance between equal-length series.
double SquaredEuclidean(std::span<const double> a, std::span<const double> b);

/// Exact Euclidean distance between equal-length series.
double Euclidean(std::span<const double> a, std::span<const double> b);

/// Lower bound on the squared Euclidean distance between the raw `query`
/// and the *original* series summarized by `repr` (whose segment values must
/// be exact segment means — guaranteed by BuildApca and by histogram bucket
/// means):
///
///   LB^2 = sum_over_segments  width * (mean(query over segment) - value)^2
///
/// By Cauchy-Schwarz, sum_{i in seg} (q_i - s_i)^2 >= width * (qbar - sbar)^2
/// whenever sbar is the true mean of s over the segment, so LB never exceeds
/// the true distance: the GEMINI no-false-dismissal property [KCMP01].
double SquaredLowerBound(std::span<const double> query,
                         const PiecewiseConstant& repr);

/// sqrt of SquaredLowerBound.
double LowerBound(std::span<const double> query, const PiecewiseConstant& repr);

}  // namespace streamhist

#endif  // STREAMHIST_TIMESERIES_DISTANCE_H_
