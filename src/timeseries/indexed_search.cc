#include "src/timeseries/indexed_search.h"

#include <algorithm>
#include <cmath>

#include "src/timeseries/distance.h"
#include "src/timeseries/paa.h"
#include "src/util/logging.h"

namespace streamhist {

IndexedSimilaritySearch::IndexedSimilaritySearch(
    std::vector<std::vector<double>> series, int64_t dimensions)
    : series_(std::move(series)), dimensions_(dimensions) {
  STREAMHIST_CHECK(!series_.empty());
  length_ = static_cast<int64_t>(series_.front().size());
  std::vector<std::vector<double>> features;
  features.reserve(series_.size());
  for (const std::vector<double>& s : series_) {
    STREAMHIST_CHECK_EQ(static_cast<int64_t>(s.size()), length_);
    features.push_back(PaaFeatures(s, dimensions_));
  }
  tree_ = std::make_unique<RTree>(std::move(features));
}

std::vector<Match> IndexedSimilaritySearch::RangeSearch(
    std::span<const double> query, double radius, SearchStats* stats,
    RTree::SearchStats* tree_stats) const {
  STREAMHIST_CHECK_EQ(static_cast<int64_t>(query.size()), length_);
  const std::vector<double> query_features = PaaFeatures(query, dimensions_);

  // Filter: feature distance lower-bounds the true distance, so a ball query
  // at the same radius admits every true match.
  RTree::SearchStats tstats;
  const std::vector<int64_t> candidates =
      tree_->BallQuery(query_features, radius, &tstats);

  SearchStats local;
  std::vector<Match> matches;
  const double radius_sq = radius * radius;
  for (int64_t id : candidates) {
    ++local.candidates;
    const double d_sq =
        SquaredEuclidean(query, series_[static_cast<size_t>(id)]);
    if (d_sq <= radius_sq) {
      ++local.answers;
      matches.push_back(Match{id, std::sqrt(d_sq)});
    } else {
      ++local.false_positives;
    }
  }
  std::sort(matches.begin(), matches.end(),
            [](const Match& a, const Match& b) {
              return a.distance < b.distance;
            });
  if (stats != nullptr) *stats = local;
  if (tree_stats != nullptr) *tree_stats = tstats;
  return matches;
}

std::vector<Match> IndexedSimilaritySearch::KnnSearch(
    std::span<const double> query, int64_t k, SearchStats* stats,
    RTree::SearchStats* tree_stats) const {
  STREAMHIST_CHECK_EQ(static_cast<int64_t>(query.size()), length_);
  const std::vector<double> query_features = PaaFeatures(query, dimensions_);

  RTree::SearchStats tstats;
  const auto refined = tree_->KnnRefined(
      query_features, k,
      [&](int64_t id) {
        return SquaredEuclidean(query, series_[static_cast<size_t>(id)]);
      },
      &tstats);

  SearchStats local;
  local.candidates = tstats.points_compared;
  local.answers = static_cast<int64_t>(refined.size());
  local.false_positives = local.candidates - local.answers;
  std::vector<Match> matches;
  matches.reserve(refined.size());
  for (const auto& [d_sq, id] : refined) {
    matches.push_back(Match{id, std::sqrt(d_sq)});
  }
  if (stats != nullptr) *stats = local;
  if (tree_stats != nullptr) *tree_stats = tstats;
  return matches;
}

}  // namespace streamhist
