#ifndef STREAMHIST_TIMESERIES_INDEXED_SEARCH_H_
#define STREAMHIST_TIMESERIES_INDEXED_SEARCH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/timeseries/rtree.h"
#include "src/timeseries/similarity.h"

namespace streamhist {

/// The full GEMINI indexing pipeline of Yi & Faloutsos [YF00] / Keogh et al.
/// [KCMP01] (the framework inside which the paper's similarity experiments
/// count false positives): every series is reduced to a low-dimensional PAA
/// feature point, the points are packed into an R-tree, and queries run
/// filter-and-refine — the tree prunes by lower-bounding index distance, and
/// only surviving candidates pay an exact Euclidean comparison. No false
/// dismissals, by the PAA lower-bound property.
class IndexedSimilaritySearch {
 public:
  /// Builds PAA features (`dimensions` per series) and the R-tree. All
  /// series must share one length >= dimensions.
  IndexedSimilaritySearch(std::vector<std::vector<double>> series,
                          int64_t dimensions);

  int64_t num_series() const { return static_cast<int64_t>(series_.size()); }
  int64_t series_length() const { return length_; }
  const RTree& tree() const { return *tree_; }

  /// All series within Euclidean `radius` of `query`, ascending by exact
  /// distance. `stats` reports filter quality; `tree_stats` the node/leaf
  /// accesses (the I/O proxy).
  std::vector<Match> RangeSearch(std::span<const double> query, double radius,
                                 SearchStats* stats = nullptr,
                                 RTree::SearchStats* tree_stats = nullptr) const;

  /// The k nearest series by exact distance, via best-first refine on the
  /// index.
  std::vector<Match> KnnSearch(std::span<const double> query, int64_t k,
                               SearchStats* stats = nullptr,
                               RTree::SearchStats* tree_stats = nullptr) const;

 private:
  std::vector<std::vector<double>> series_;
  int64_t length_ = 0;
  int64_t dimensions_;
  std::unique_ptr<RTree> tree_;
};

}  // namespace streamhist

#endif  // STREAMHIST_TIMESERIES_INDEXED_SEARCH_H_
