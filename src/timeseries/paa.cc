#include "src/timeseries/paa.h"

#include <cmath>

#include "src/util/logging.h"

namespace streamhist {

std::vector<double> PaaFeatures(std::span<const double> series,
                                int64_t dimensions) {
  STREAMHIST_CHECK_GT(dimensions, 0);
  const int64_t n = static_cast<int64_t>(series.size());
  STREAMHIST_CHECK_GE(n, dimensions);
  std::vector<double> features;
  features.reserve(static_cast<size_t>(dimensions));
  for (int64_t d = 0; d < dimensions; ++d) {
    const int64_t begin = d * n / dimensions;
    const int64_t end = (d + 1) * n / dimensions;
    double mean = 0.0;
    for (int64_t i = begin; i < end; ++i) {
      mean += series[static_cast<size_t>(i)];
    }
    mean /= static_cast<double>(end - begin);
    // sqrt-width scaling bakes the per-segment weight into the coordinates,
    // so the index space uses plain (unweighted) L2.
    features.push_back(mean * std::sqrt(static_cast<double>(end - begin)));
  }
  return features;
}

double PaaSquaredDistance(std::span<const double> a,
                          std::span<const double> b) {
  STREAMHIST_CHECK_EQ(a.size(), b.size());
  double total = 0.0;
  for (size_t d = 0; d < a.size(); ++d) {
    const double diff = a[d] - b[d];
    total += diff * diff;
  }
  return total;
}

}  // namespace streamhist
