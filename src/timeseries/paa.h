#ifndef STREAMHIST_TIMESERIES_PAA_H_
#define STREAMHIST_TIMESERIES_PAA_H_

#include <cstdint>
#include <span>
#include <vector>

namespace streamhist {

/// Piecewise Aggregate Approximation (Yi & Faloutsos [YF00], cited in the
/// paper's introduction; also Keogh et al.): a length-n series is reduced to
/// D equal-width segment means. Scaling each mean by sqrt(segment width)
/// makes plain Euclidean distance in feature space a lower bound on the true
/// Euclidean distance between series (Cauchy-Schwarz per segment), which is
/// what lets an R-tree over the features answer similarity queries with no
/// false dismissals (the GEMINI framework).
///
/// `dimensions` must divide decisions gracefully: the last segment absorbs
/// the remainder when D does not divide n.
std::vector<double> PaaFeatures(std::span<const double> series,
                                int64_t dimensions);

/// Squared Euclidean distance between two feature vectors (the index-space
/// distance; a lower bound on the true squared distance when both come from
/// PaaFeatures with the same shape).
double PaaSquaredDistance(std::span<const double> a, std::span<const double> b);

}  // namespace streamhist

#endif  // STREAMHIST_TIMESERIES_PAA_H_
