#include "src/timeseries/piecewise.h"

#include "src/stream/prefix_sums.h"
#include "src/util/logging.h"

namespace streamhist {

PiecewiseConstant::PiecewiseConstant(std::vector<Segment> segments)
    : segments_(std::move(segments)) {
#ifndef NDEBUG
  int64_t expected = 0;
  for (const Segment& s : segments_) {
    STREAMHIST_DCHECK(s.begin == expected && s.end > s.begin);
    expected = s.end;
  }
#endif
}

PiecewiseConstant PiecewiseConstant::FromHistogram(const Histogram& histogram) {
  std::vector<Segment> segments;
  segments.reserve(static_cast<size_t>(histogram.num_buckets()));
  for (const Bucket& b : histogram.buckets()) {
    segments.push_back(Segment{b.begin, b.end, b.value});
  }
  return PiecewiseConstant(std::move(segments));
}

double PiecewiseConstant::Estimate(int64_t i) const {
  STREAMHIST_DCHECK(0 <= i && i < domain_size());
  // Binary search over segment ends.
  size_t lo = 0;
  size_t hi = segments_.size() - 1;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (segments_[mid].end <= i) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return segments_[lo].value;
}

std::vector<double> PiecewiseConstant::Reconstruct() const {
  std::vector<double> out(static_cast<size_t>(domain_size()));
  for (const Segment& s : segments_) {
    for (int64_t i = s.begin; i < s.end; ++i) {
      out[static_cast<size_t>(i)] = s.value;
    }
  }
  return out;
}

void PiecewiseConstant::ResetValuesToMeans(std::span<const double> data) {
  STREAMHIST_CHECK_EQ(static_cast<int64_t>(data.size()), domain_size());
  PrefixSums sums(data);
  for (Segment& s : segments_) {
    s.value = sums.Mean(s.begin, s.end);
  }
}

}  // namespace streamhist
