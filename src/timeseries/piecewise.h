#ifndef STREAMHIST_TIMESERIES_PIECEWISE_H_
#define STREAMHIST_TIMESERIES_PIECEWISE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/histogram.h"

namespace streamhist {

/// One segment of an adaptive piecewise-constant representation:
/// indices [begin, end) approximated by `value`.
struct Segment {
  int64_t begin = 0;
  int64_t end = 0;
  double value = 0.0;

  int64_t width() const { return end - begin; }
};

/// Adaptive piecewise-constant representation of a time series — the common
/// form shared by APCA [KCMP01] and the paper's histograms, which makes the
/// similarity-search comparison an apples-to-apples one: both reduce a
/// series to (boundary, mean) pairs and use the same lower-bounding distance.
class PiecewiseConstant {
 public:
  PiecewiseConstant() = default;

  /// Segments must be contiguous from 0 and non-empty; checked in debug.
  explicit PiecewiseConstant(std::vector<Segment> segments);

  /// Converts a histogram (bucket means) into this representation.
  static PiecewiseConstant FromHistogram(const Histogram& histogram);

  int64_t num_segments() const {
    return static_cast<int64_t>(segments_.size());
  }
  int64_t domain_size() const {
    return segments_.empty() ? 0 : segments_.back().end;
  }
  const std::vector<Segment>& segments() const { return segments_; }

  /// Value of the approximation at index i.
  double Estimate(int64_t i) const;

  /// Reconstructs the approximate series.
  std::vector<double> Reconstruct() const;

  /// Recomputes each segment's value as the exact mean of `data` over the
  /// segment (needed for the lower-bounding property; see distance.h).
  void ResetValuesToMeans(std::span<const double> data);

 private:
  std::vector<Segment> segments_;
};

}  // namespace streamhist

#endif  // STREAMHIST_TIMESERIES_PIECEWISE_H_
