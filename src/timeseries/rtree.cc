#include "src/timeseries/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "src/util/logging.h"

namespace streamhist {

RTree::RTree(std::vector<std::vector<double>> points, int64_t leaf_capacity,
             int64_t fanout)
    : points_(std::move(points)),
      leaf_capacity_(leaf_capacity),
      fanout_(fanout) {
  STREAMHIST_CHECK_GE(leaf_capacity_, 2);
  STREAMHIST_CHECK_GE(fanout_, 2);
  STREAMHIST_CHECK(!points_.empty());
  dims_ = static_cast<int64_t>(points_.front().size());
  for (const auto& p : points_) {
    STREAMHIST_CHECK_EQ(static_cast<int64_t>(p.size()), dims_);
  }
  std::vector<int64_t> ids(points_.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int64_t>(i);
  root_ = Build(ids, 0);
}

void RTree::ComputeMbr(Node& node) const {
  node.low.assign(static_cast<size_t>(dims_),
                  std::numeric_limits<double>::infinity());
  node.high.assign(static_cast<size_t>(dims_),
                   -std::numeric_limits<double>::infinity());
  auto expand_point = [&](const std::vector<double>& p) {
    for (int64_t d = 0; d < dims_; ++d) {
      node.low[static_cast<size_t>(d)] =
          std::min(node.low[static_cast<size_t>(d)], p[static_cast<size_t>(d)]);
      node.high[static_cast<size_t>(d)] = std::max(
          node.high[static_cast<size_t>(d)], p[static_cast<size_t>(d)]);
    }
  };
  if (node.is_leaf) {
    for (int64_t id : node.children) {
      expand_point(points_[static_cast<size_t>(id)]);
    }
  } else {
    for (int64_t child : node.children) {
      const Node& c = nodes_[static_cast<size_t>(child)];
      for (int64_t d = 0; d < dims_; ++d) {
        node.low[static_cast<size_t>(d)] = std::min(
            node.low[static_cast<size_t>(d)], c.low[static_cast<size_t>(d)]);
        node.high[static_cast<size_t>(d)] = std::max(
            node.high[static_cast<size_t>(d)], c.high[static_cast<size_t>(d)]);
      }
    }
  }
}

int64_t RTree::Build(std::vector<int64_t>& ids, int64_t level) {
  height_ = std::max(height_, level + 1);
  if (static_cast<int64_t>(ids.size()) <= leaf_capacity_) {
    Node leaf;
    leaf.is_leaf = true;
    leaf.children = ids;
    ComputeMbr(leaf);
    nodes_.push_back(std::move(leaf));
    return static_cast<int64_t>(nodes_.size()) - 1;
  }
  // Sort-tile along a dimension cycling with depth, then split into at most
  // `fanout` contiguous groups.
  const int64_t dim = level % dims_;
  std::sort(ids.begin(), ids.end(), [&](int64_t a, int64_t b) {
    return points_[static_cast<size_t>(a)][static_cast<size_t>(dim)] <
           points_[static_cast<size_t>(b)][static_cast<size_t>(dim)];
  });
  const int64_t group_size =
      std::max<int64_t>(leaf_capacity_,
                        (static_cast<int64_t>(ids.size()) + fanout_ - 1) /
                            fanout_);
  Node internal;
  internal.is_leaf = false;
  for (size_t start = 0; start < ids.size();
       start += static_cast<size_t>(group_size)) {
    const size_t end =
        std::min(ids.size(), start + static_cast<size_t>(group_size));
    std::vector<int64_t> group(ids.begin() + static_cast<ptrdiff_t>(start),
                               ids.begin() + static_cast<ptrdiff_t>(end));
    internal.children.push_back(Build(group, level + 1));
  }
  ComputeMbr(internal);
  nodes_.push_back(std::move(internal));
  return static_cast<int64_t>(nodes_.size()) - 1;
}

double RTree::SquaredMinDist(std::span<const double> query,
                             std::span<const double> low,
                             std::span<const double> high) {
  STREAMHIST_DCHECK(query.size() == low.size() && low.size() == high.size());
  double total = 0.0;
  for (size_t d = 0; d < query.size(); ++d) {
    double gap = 0.0;
    if (query[d] < low[d]) {
      gap = low[d] - query[d];
    } else if (query[d] > high[d]) {
      gap = query[d] - high[d];
    }
    total += gap * gap;
  }
  return total;
}

std::vector<int64_t> RTree::BallQuery(std::span<const double> query,
                                      double radius,
                                      SearchStats* stats) const {
  STREAMHIST_CHECK_EQ(static_cast<int64_t>(query.size()), dims_);
  SearchStats local;
  const double radius_sq = radius * radius;
  std::vector<std::pair<double, int64_t>> hits;  // (dist^2, id)
  std::vector<int64_t> stack{root_};
  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<size_t>(stack.back())];
    stack.pop_back();
    ++local.nodes_visited;
    if (SquaredMinDist(query, node.low, node.high) > radius_sq) continue;
    if (node.is_leaf) {
      ++local.leaves_visited;
      for (int64_t id : node.children) {
        ++local.points_compared;
        double dist_sq = 0.0;
        const auto& p = points_[static_cast<size_t>(id)];
        for (int64_t d = 0; d < dims_; ++d) {
          const double diff = query[static_cast<size_t>(d)] -
                              p[static_cast<size_t>(d)];
          dist_sq += diff * diff;
        }
        if (dist_sq <= radius_sq) hits.emplace_back(dist_sq, id);
      }
    } else {
      for (int64_t child : node.children) stack.push_back(child);
    }
  }
  std::sort(hits.begin(), hits.end());
  std::vector<int64_t> ids;
  ids.reserve(hits.size());
  for (const auto& [dist_sq, id] : hits) ids.push_back(id);
  if (stats != nullptr) *stats = local;
  return ids;
}

std::vector<int64_t> RTree::KnnQuery(std::span<const double> query, int64_t k,
                                     SearchStats* stats) const {
  STREAMHIST_CHECK_EQ(static_cast<int64_t>(query.size()), dims_);
  STREAMHIST_CHECK_GT(k, 0);
  SearchStats local;

  // Best-first branch and bound: a min-heap over both nodes and points keyed
  // by (squared) distance; the first k points popped are exactly the k
  // nearest, because a point is popped only when no un-expanded subtree can
  // contain anything closer.
  struct Entry {
    double dist_sq;
    bool is_node;
    int64_t id;
  };
  auto cmp = [](const Entry& a, const Entry& b) {
    return a.dist_sq > b.dist_sq;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  heap.push(Entry{0.0, true, root_});

  std::vector<int64_t> result;
  while (!heap.empty() && static_cast<int64_t>(result.size()) < k) {
    const Entry e = heap.top();
    heap.pop();
    if (!e.is_node) {
      result.push_back(e.id);
      continue;
    }
    const Node& node = nodes_[static_cast<size_t>(e.id)];
    ++local.nodes_visited;
    if (node.is_leaf) {
      ++local.leaves_visited;
      for (int64_t id : node.children) {
        ++local.points_compared;
        double dist_sq = 0.0;
        const auto& p = points_[static_cast<size_t>(id)];
        for (int64_t d = 0; d < dims_; ++d) {
          const double diff = query[static_cast<size_t>(d)] -
                              p[static_cast<size_t>(d)];
          dist_sq += diff * diff;
        }
        heap.push(Entry{dist_sq, false, id});
      }
    } else {
      for (int64_t child : node.children) {
        const Node& c = nodes_[static_cast<size_t>(child)];
        heap.push(Entry{SquaredMinDist(query, c.low, c.high), true, child});
      }
    }
  }
  if (stats != nullptr) *stats = local;
  return result;
}

std::vector<std::pair<double, int64_t>> RTree::KnnRefined(
    std::span<const double> query, int64_t k,
    const std::function<double(int64_t)>& true_dist_sq,
    SearchStats* stats) const {
  STREAMHIST_CHECK_EQ(static_cast<int64_t>(query.size()), dims_);
  STREAMHIST_CHECK_GT(k, 0);
  SearchStats local;

  struct Entry {
    double dist_sq;  // index-space (lower-bound) distance
    bool is_node;
    int64_t id;
  };
  auto entry_cmp = [](const Entry& a, const Entry& b) {
    return a.dist_sq > b.dist_sq;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(entry_cmp)> frontier(
      entry_cmp);
  frontier.push(Entry{0.0, true, root_});

  // Current best k true distances, max on top.
  std::priority_queue<std::pair<double, int64_t>> best;
  const auto kth = [&] {
    return static_cast<int64_t>(best.size()) == k
               ? best.top().first
               : std::numeric_limits<double>::infinity();
  };

  while (!frontier.empty()) {
    const Entry e = frontier.top();
    frontier.pop();
    // Index distance lower-bounds every true distance in the subtree/point,
    // so once it reaches the kth true distance nothing better remains.
    if (e.dist_sq >= kth()) break;
    if (!e.is_node) {
      ++local.points_compared;
      const double true_sq = true_dist_sq(e.id);
      if (true_sq < kth()) {
        best.emplace(true_sq, e.id);
        if (static_cast<int64_t>(best.size()) > k) best.pop();
      }
      continue;
    }
    const Node& node = nodes_[static_cast<size_t>(e.id)];
    ++local.nodes_visited;
    if (node.is_leaf) {
      ++local.leaves_visited;
      for (int64_t id : node.children) {
        double feature_sq = 0.0;
        const auto& p = points_[static_cast<size_t>(id)];
        for (int64_t d = 0; d < dims_; ++d) {
          const double diff =
              query[static_cast<size_t>(d)] - p[static_cast<size_t>(d)];
          feature_sq += diff * diff;
        }
        if (feature_sq < kth()) frontier.push(Entry{feature_sq, false, id});
      }
    } else {
      for (int64_t child : node.children) {
        const Node& c = nodes_[static_cast<size_t>(child)];
        const double mindist = SquaredMinDist(query, c.low, c.high);
        if (mindist < kth()) frontier.push(Entry{mindist, true, child});
      }
    }
  }

  std::vector<std::pair<double, int64_t>> result;
  result.reserve(best.size());
  while (!best.empty()) {
    result.push_back(best.top());
    best.pop();
  }
  std::reverse(result.begin(), result.end());
  if (stats != nullptr) *stats = local;
  return result;
}

}  // namespace streamhist
