#ifndef STREAMHIST_TIMESERIES_RTREE_H_
#define STREAMHIST_TIMESERIES_RTREE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

namespace streamhist {

/// A static bulk-loaded R-tree over D-dimensional points — the disk-style
/// index structure the GEMINI similarity framework assumes ([YF00],
/// [KCMP01]; the paper's similarity experiments measure false positives
/// produced by exactly this kind of index). Built once with Sort-Tile-
/// Recursive packing; supports ball (range) queries and best-first k-NN via
/// MINDIST on bounding rectangles, which never dismisses a point whose true
/// distance qualifies.
class RTree {
 public:
  /// Per-query work counters (the I/O proxy reported by index papers).
  struct SearchStats {
    int64_t nodes_visited = 0;
    int64_t leaves_visited = 0;
    int64_t points_compared = 0;
  };

  /// Bulk-loads the tree over `points` (all must share one dimensionality;
  /// ids are their indices). `leaf_capacity`/`fanout` >= 2.
  RTree(std::vector<std::vector<double>> points, int64_t leaf_capacity = 16,
        int64_t fanout = 8);

  int64_t num_points() const { return static_cast<int64_t>(points_.size()); }
  int64_t dimensions() const { return dims_; }
  int64_t num_nodes() const { return static_cast<int64_t>(nodes_.size()); }
  int64_t height() const { return height_; }

  /// Ids of all points within Euclidean `radius` of `query` (in the index
  /// space), ascending by distance.
  std::vector<int64_t> BallQuery(std::span<const double> query, double radius,
                                 SearchStats* stats = nullptr) const;

  /// Ids of the k nearest points to `query`, ascending by distance
  /// (best-first branch-and-bound).
  std::vector<int64_t> KnnQuery(std::span<const double> query, int64_t k,
                                SearchStats* stats = nullptr) const;

  /// GEMINI-style exact k-NN under a *true* distance for which the index
  /// space is a lower bound: traverses best-first by index distance,
  /// refining popped points through `true_dist_sq(id)`, and stops once no
  /// remaining subtree or point can beat the current kth true distance.
  /// Returns (true squared distance, id) pairs ascending. `stats->
  /// points_compared` counts refinements (the false-positive proxy).
  std::vector<std::pair<double, int64_t>> KnnRefined(
      std::span<const double> query, int64_t k,
      const std::function<double(int64_t)>& true_dist_sq,
      SearchStats* stats = nullptr) const;

  /// Squared MINDIST from a point to an axis-aligned rectangle given as
  /// (low, high) coordinate vectors — exposed for tests.
  static double SquaredMinDist(std::span<const double> query,
                               std::span<const double> low,
                               std::span<const double> high);

 private:
  struct Node {
    std::vector<double> low;    // MBR lower corner
    std::vector<double> high;   // MBR upper corner
    std::vector<int64_t> children;  // node ids (internal) or point ids (leaf)
    bool is_leaf = false;
  };

  /// Recursively packs `ids` into a subtree; returns the subtree root id.
  int64_t Build(std::vector<int64_t>& ids, int64_t level);
  void ComputeMbr(Node& node) const;

  std::vector<std::vector<double>> points_;
  std::vector<Node> nodes_;
  int64_t root_ = -1;
  int64_t dims_ = 0;
  int64_t leaf_capacity_;
  int64_t fanout_;
  int64_t height_ = 0;
};

}  // namespace streamhist

#endif  // STREAMHIST_TIMESERIES_RTREE_H_
