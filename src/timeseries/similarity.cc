#include "src/timeseries/similarity.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/core/agglomerative.h"
#include "src/core/fixed_window.h"
#include "src/core/vopt_dp.h"
#include "src/timeseries/apca.h"
#include "src/timeseries/distance.h"
#include "src/util/logging.h"

namespace streamhist {

ReprBuilder MakeApcaBuilder() {
  return [](std::span<const double> data, int64_t segments) {
    return BuildApca(data, segments);
  };
}

ReprBuilder MakeVOptimalBuilder() {
  return [](std::span<const double> data, int64_t segments) {
    return PiecewiseConstant::FromHistogram(
        BuildVOptimalHistogram(data, segments).histogram);
  };
}

ReprBuilder MakeAgglomerativeBuilder(double epsilon) {
  return [epsilon](std::span<const double> data, int64_t segments) {
    ApproxHistogramOptions options;
    options.num_buckets = segments;
    options.epsilon = epsilon;
    AgglomerativeHistogram builder =
        AgglomerativeHistogram::Create(options).value();
    for (double v : data) builder.Append(v);
    PiecewiseConstant repr =
        PiecewiseConstant::FromHistogram(builder.Extract());
    // Snapshot-derived means can differ from exact segment means only by
    // floating-point noise, but the lower-bound property requires exact
    // means; reset defensively.
    repr.ResetValuesToMeans(data);
    return repr;
  };
}

ReprBuilder MakeFixedWindowBuilder(double epsilon) {
  return [epsilon](std::span<const double> data, int64_t segments) {
    FixedWindowOptions options;
    options.window_size = static_cast<int64_t>(data.size());
    options.num_buckets = segments;
    options.epsilon = epsilon;
    options.rebuild_on_append = false;
    FixedWindowHistogram builder =
        FixedWindowHistogram::Create(options).value();
    for (double v : data) builder.Append(v);
    return PiecewiseConstant::FromHistogram(builder.Extract());
  };
}

SimilarityIndex::SimilarityIndex(std::vector<std::vector<double>> series,
                                 int64_t num_segments,
                                 const ReprBuilder& builder)
    : series_(std::move(series)) {
  STREAMHIST_CHECK(!series_.empty());
  length_ = static_cast<int64_t>(series_.front().size());
  reprs_.reserve(series_.size());
  for (const std::vector<double>& s : series_) {
    STREAMHIST_CHECK_EQ(static_cast<int64_t>(s.size()), length_);
    reprs_.push_back(builder(s, num_segments));
  }
}

std::vector<Match> SimilarityIndex::RangeSearch(std::span<const double> query,
                                                double radius,
                                                SearchStats* stats) const {
  STREAMHIST_CHECK_EQ(static_cast<int64_t>(query.size()), length_);
  SearchStats local;
  std::vector<Match> matches;
  const double radius_sq = radius * radius;
  for (size_t id = 0; id < series_.size(); ++id) {
    const double lb_sq = SquaredLowerBound(query, reprs_[id]);
    if (lb_sq > radius_sq) continue;  // safe dismissal
    ++local.candidates;
    const double d_sq = SquaredEuclidean(query, series_[id]);
    if (d_sq <= radius_sq) {
      ++local.answers;
      matches.push_back(Match{static_cast<int64_t>(id), std::sqrt(d_sq)});
    } else {
      ++local.false_positives;
    }
  }
  std::sort(matches.begin(), matches.end(),
            [](const Match& a, const Match& b) {
              return a.distance < b.distance;
            });
  if (stats != nullptr) *stats = local;
  return matches;
}

std::vector<Match> SimilarityIndex::KnnSearch(std::span<const double> query,
                                              int64_t k,
                                              SearchStats* stats) const {
  STREAMHIST_CHECK_EQ(static_cast<int64_t>(query.size()), length_);
  STREAMHIST_CHECK_GT(k, 0);
  SearchStats local;

  // Candidates in increasing lower-bound order.
  std::vector<std::pair<double, int64_t>> order;
  order.reserve(series_.size());
  for (size_t id = 0; id < series_.size(); ++id) {
    order.emplace_back(SquaredLowerBound(query, reprs_[id]),
                       static_cast<int64_t>(id));
  }
  std::sort(order.begin(), order.end());

  std::vector<Match> best;  // kept sorted by distance, size <= k
  double kth_sq = std::numeric_limits<double>::infinity();
  for (const auto& [lb_sq, id] : order) {
    if (static_cast<int64_t>(best.size()) == k && lb_sq > kth_sq) {
      break;  // no remaining series can enter the top-k
    }
    ++local.candidates;
    const double d_sq =
        SquaredEuclidean(query, series_[static_cast<size_t>(id)]);
    if (static_cast<int64_t>(best.size()) < k || d_sq < kth_sq) {
      best.push_back(Match{id, std::sqrt(d_sq)});
      std::sort(best.begin(), best.end(), [](const Match& a, const Match& b) {
        return a.distance < b.distance;
      });
      if (static_cast<int64_t>(best.size()) > k) best.pop_back();
      if (static_cast<int64_t>(best.size()) == k) {
        kth_sq = best.back().distance * best.back().distance;
      }
    } else {
      ++local.false_positives;
    }
  }
  local.answers = static_cast<int64_t>(best.size());
  if (stats != nullptr) *stats = local;
  return best;
}

std::vector<PiecewiseConstant> BuildSubsequenceRepresentationsStreaming(
    std::span<const double> series, int64_t window, int64_t step,
    int64_t num_segments, double epsilon) {
  STREAMHIST_CHECK_GT(window, 0);
  STREAMHIST_CHECK_GT(step, 0);
  FixedWindowOptions options;
  options.window_size = window;
  options.num_buckets = num_segments;
  options.epsilon = epsilon;
  options.rebuild_on_append = false;
  FixedWindowHistogram sketch = FixedWindowHistogram::Create(options).value();

  std::vector<PiecewiseConstant> reprs;
  const int64_t n = static_cast<int64_t>(series.size());
  for (int64_t i = 0; i < n; ++i) {
    sketch.Append(series[static_cast<size_t>(i)]);
    // Snapshot whenever the window exactly covers [start, start + window)
    // for a stride-aligned start.
    const int64_t start = i + 1 - window;
    if (start >= 0 && start % step == 0) {
      reprs.push_back(PiecewiseConstant::FromHistogram(sketch.Extract()));
    }
  }
  return reprs;
}

std::vector<std::vector<double>> ExtractSubsequences(
    std::span<const double> series, int64_t window, int64_t step) {
  STREAMHIST_CHECK_GT(window, 0);
  STREAMHIST_CHECK_GT(step, 0);
  std::vector<std::vector<double>> out;
  const int64_t n = static_cast<int64_t>(series.size());
  for (int64_t start = 0; start + window <= n; start += step) {
    out.emplace_back(series.begin() + static_cast<ptrdiff_t>(start),
                     series.begin() + static_cast<ptrdiff_t>(start + window));
  }
  return out;
}

}  // namespace streamhist
