#ifndef STREAMHIST_TIMESERIES_SIMILARITY_H_
#define STREAMHIST_TIMESERIES_SIMILARITY_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "src/timeseries/piecewise.h"

namespace streamhist {

/// Builds a B-segment piecewise-constant representation of one series.
/// Provided builders: MakeApcaBuilder, MakeVOptimalBuilder,
/// MakeAgglomerativeBuilder (see below).
using ReprBuilder =
    std::function<PiecewiseConstant(std::span<const double>, int64_t)>;

/// APCA of Keogh et al. (timeseries/apca.h).
ReprBuilder MakeApcaBuilder();

/// Optimal V-optimal histogram as a representation (exact DP; offline).
ReprBuilder MakeVOptimalBuilder();

/// One-pass (1+eps)-approximate histogram as a representation — the paper's
/// proposal for whole-series matching.
ReprBuilder MakeAgglomerativeBuilder(double epsilon);

/// One-pass fixed-window histogram representation: the series is streamed
/// through a FixedWindowHistogram whose window equals the series length —
/// the paper's proposal for subsequence-matching pipelines where windows
/// slide over a long stream.
ReprBuilder MakeFixedWindowBuilder(double epsilon);

/// Filter-and-refine statistics for one query.
struct SearchStats {
  int64_t candidates = 0;       ///< series whose lower bound passed the filter
  int64_t false_positives = 0;  ///< candidates rejected by the exact distance
  int64_t answers = 0;          ///< true matches returned
};

/// One search hit.
struct Match {
  int64_t series_id = 0;
  double distance = 0.0;  ///< exact Euclidean distance
};

/// GEMINI-style filter-and-refine similarity search over a collection of
/// equal-length series, each reduced to a B-segment piecewise-constant
/// representation. Because the lower-bounding distance never exceeds the
/// true distance (distance.h), the filter admits no false dismissals; the
/// experiments compare representations by how many *false positives* (wasted
/// exact-distance computations) each admits — the paper's quality metric in
/// its similarity experiments.
class SimilarityIndex {
 public:
  /// Builds representations for every series. All series must share one
  /// length. `num_segments` is the per-series space budget B.
  SimilarityIndex(std::vector<std::vector<double>> series,
                  int64_t num_segments, const ReprBuilder& builder);

  int64_t num_series() const { return static_cast<int64_t>(series_.size()); }
  int64_t series_length() const { return length_; }
  const PiecewiseConstant& representation(int64_t id) const {
    return reprs_[static_cast<size_t>(id)];
  }

  /// All series within Euclidean `radius` of `query`, with filter stats.
  std::vector<Match> RangeSearch(std::span<const double> query, double radius,
                                 SearchStats* stats) const;

  /// The k nearest series to `query` (exact distances), refining candidates
  /// in increasing lower-bound order with best-so-far pruning. `stats`
  /// counts exact distance computations as candidates and those that did not
  /// enter the final top-k as false positives.
  std::vector<Match> KnnSearch(std::span<const double> query, int64_t k,
                               SearchStats* stats) const;

 private:
  std::vector<std::vector<double>> series_;
  std::vector<PiecewiseConstant> reprs_;
  int64_t length_ = 0;
};

/// Extracts the sliding windows of `window` points (advancing by `step`)
/// from a long series — the reduction from subsequence matching to whole
/// matching used by the paper's subsequence experiments.
std::vector<std::vector<double>> ExtractSubsequences(
    std::span<const double> series, int64_t window, int64_t step);

/// The paper's actual subsequence pipeline: stream the long series through
/// ONE FixedWindowHistogram and snapshot the (1+eps)-approximate
/// representation every `step` arrivals once the window fills — instead of
/// rebuilding a fresh representation per extracted window. Returns one
/// PiecewiseConstant per snapshot position (matching
/// ExtractSubsequences(series, window, step) order). The histogram's
/// incremental maintenance is exactly what makes dense strides affordable.
std::vector<PiecewiseConstant> BuildSubsequenceRepresentationsStreaming(
    std::span<const double> series, int64_t window, int64_t step,
    int64_t num_segments, double epsilon);

}  // namespace streamhist

#endif  // STREAMHIST_TIMESERIES_SIMILARITY_H_
