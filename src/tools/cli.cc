#include "src/tools/cli.h"

#include <errno.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <thread>

#include "src/core/agglomerative.h"
#include "src/core/heuristics.h"
#include "src/core/histogram_io.h"
#include "src/core/vopt_dp.h"
#include "src/data/generators.h"
#include "src/data/io.h"
#include "src/engine/query_engine.h"
#include "src/engine/wal_records.h"
#include "src/server/replication.h"
#include "src/server/tcp_server.h"
#include "src/util/wal.h"

namespace streamhist {

namespace {

/// Splits "--key value" pairs from args[start..); positional tokens land in
/// `positional`.
std::map<std::string, std::string> ParseFlags(
    const std::vector<std::string>& args, size_t start,
    std::vector<std::string>& positional) {
  std::map<std::string, std::string> flags;
  for (size_t i = start; i < args.size(); ++i) {
    if (args[i].rfind("--", 0) == 0 && i + 1 < args.size()) {
      flags[args[i].substr(2)] = args[i + 1];
      ++i;
    } else {
      positional.push_back(args[i]);
    }
  }
  return flags;
}

int Usage(std::ostream& err) {
  err << "usage: streamhist_tool"
         " <generate|build|query|inspect|console|serve|wal> [flags]\n"
         "  generate --kind K --n N [--seed S] --out series.csv\n"
         "  build --input series.csv --buckets B [--epsilon E]\n"
         "        [--algorithm vopt|agglomerative|greedy|equiwidth|maxdiff]\n"
         "        --out hist.bin\n"
         "  query --histogram hist.bin SUM <lo> <hi> | AVG <lo> <hi> |"
         " POINT <i>\n"
         "  inspect --histogram hist.bin\n"
         "  console [--script file]   engine statements from stdin or file\n"
         "          (CREATE/APPEND/SUM/.../SAVE <path>/LOAD <path>;\n"
         "           BUILD <s> [EXACT|ERROR <d>] [WITHIN <ms>] degrades\n"
         "           gracefully on deadline expiry; MEMORY shows the\n"
         "           governor budget from STREAMHIST_MEM_BUDGET;\n"
         "           STATS [<s> [<verb>]] shows execution counters)\n"
         "  serve --threads N [--script file] [--deadline-ms D]\n"
         "        one shared engine, N concurrent sessions: statement i runs\n"
         "        on session i%N with its own ExecContext (optional session\n"
         "        deadline D); answers print in input order plus a summary.\n"
         "        Statements race across sessions — scripts should make\n"
         "        cross-session statements independent, or use --threads 1.\n"
         "  serve --listen PORT [--threads N] [--deadline-ms D]\n"
         "        [--max-conns C]\n"
         "        TCP front-end on 127.0.0.1:PORT (PORT 0: ephemeral, the\n"
         "        chosen port is printed): newline-delimited statements plus\n"
         "        the binary batch-APPEND frame, pipelined, with output\n"
         "        backpressure and governor admission control (DESIGN.md\n"
         "        \xC2\xA7" "11). D is the per-request deadline class knob;\n"
         "        SIGINT/SIGTERM shuts down cleanly with a summary line.\n"
         "        A 'LISTENING <port>' line on stdout is the machine-\n"
         "        readable bind announcement harnesses should parse.\n"
         "  serve --listen PORT --wal-dir DIR [--repl-sync-ms MS]\n"
         "        primary role (DESIGN.md \xC2\xA7" "14): replicas may subscribe\n"
         "        and are fed the WAL live. MS > 0 makes acks semi-\n"
         "        synchronous (wait up to MS for a replica to confirm\n"
         "        durability; a lapse degrades to async, never errors).\n"
         "  serve --listen PORT --wal-dir DIR --replica-of HOST:PORT\n"
         "        [--replica-max-lag-ms MS]\n"
         "        read replica: subscribes to the primary (loopback only),\n"
         "        applies its WAL, serves estimation verbs; writes answer\n"
         "        ERR READONLY. Reconnects with jittered backoff; silent\n"
         "        past MS (default 10000, 0 off) sheds ERR OVERLOADED.\n"
         "        The PROMOTE statement flips it into a writable primary.\n"
         "  console|serve [--wal-dir DIR] [--wal-policy P]\n"
         "        [--wal-checkpoint-ms MS]\n"
         "        durable ingest (DESIGN.md \xC2\xA7" "12): CREATE/APPEND/DROP\n"
         "        are logged to DIR before the ack and recovered on restart\n"
         "        (checkpoint + replay; the recovery line prints first).\n"
         "        P is always | bytes:N | interval:ms | none (default\n"
         "        always, or $STREAMHIST_WAL); MS is the background\n"
         "        checkpoint cadence (default 1000, 0 disables).\n"
         "  wal <dump|verify> --dir DIR\n"
         "        read-only segment scan: dump prints every decoded record,\n"
         "        verify just the scan report. Exit codes: 0 clean, 1 on\n"
         "        interior corruption (fsynced bytes rotted), 3 when the\n"
         "        only damage is a torn tail (normal crash residue that\n"
         "        recovery truncates).\n";
  return 2;
}

Result<Histogram> LoadHistogram(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open histogram file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DeserializeHistogram(buffer.str());
}

int Generate(const std::map<std::string, std::string>& flags,
             std::ostream& out, std::ostream& err) {
  if (!flags.contains("n") || !flags.contains("out")) {
    err << "generate: --n and --out are required\n";
    return 2;
  }
  const int64_t n = std::atoll(flags.at("n").c_str());
  if (n <= 0) {
    err << "generate: --n must be positive\n";
    return 2;
  }
  const DatasetKind kind = ParseDatasetKind(
      flags.contains("kind") ? flags.at("kind") : "utilization");
  const uint64_t seed = flags.contains("seed")
                            ? std::strtoull(flags.at("seed").c_str(), nullptr, 10)
                            : 1;
  const std::vector<double> series = GenerateDataset(kind, n, seed);
  if (Status s = WriteSeriesCsv(flags.at("out"), series); !s.ok()) {
    err << "generate: " << s << "\n";
    return 1;
  }
  out << "wrote " << n << " " << DatasetKindName(kind) << " points to "
      << flags.at("out") << "\n";
  return 0;
}

int Build(const std::map<std::string, std::string>& flags, std::ostream& out,
          std::ostream& err) {
  if (!flags.contains("input") || !flags.contains("buckets") ||
      !flags.contains("out")) {
    err << "build: --input, --buckets and --out are required\n";
    return 2;
  }
  auto series = ReadSeriesCsv(flags.at("input"));
  if (!series.ok()) {
    err << "build: " << series.status() << "\n";
    return 1;
  }
  if (series.value().empty()) {
    err << "build: input series is empty\n";
    return 1;
  }
  const int64_t buckets = std::atoll(flags.at("buckets").c_str());
  if (buckets <= 0) {
    err << "build: --buckets must be positive\n";
    return 2;
  }
  if (buckets > static_cast<int64_t>(series.value().size())) {
    err << "build: --buckets (" << buckets << ") exceeds series length ("
        << series.value().size() << ")\n";
    return 2;
  }
  const double epsilon =
      flags.contains("epsilon") ? std::atof(flags.at("epsilon").c_str()) : 0.1;
  const std::string algorithm =
      flags.contains("algorithm") ? flags.at("algorithm") : "vopt";

  Histogram histogram;
  if (algorithm == "vopt") {
    histogram = BuildVOptimalHistogram(series.value(), buckets).histogram;
  } else if (algorithm == "agglomerative") {
    ApproxHistogramOptions options;
    options.num_buckets = buckets;
    options.epsilon = epsilon;
    auto builder = AgglomerativeHistogram::Create(options);
    if (!builder.ok()) {
      err << "build: " << builder.status() << "\n";
      return 1;
    }
    for (double v : series.value()) builder.value().Append(v);
    histogram = builder.value().Extract();
  } else if (algorithm == "greedy") {
    histogram = BuildGreedyMergeHistogram(series.value(), buckets);
  } else if (algorithm == "equiwidth") {
    histogram = BuildEquiWidthHistogram(series.value(), buckets);
  } else if (algorithm == "maxdiff") {
    histogram = BuildMaxDiffHistogram(series.value(), buckets);
  } else {
    err << "build: unknown algorithm '" << algorithm << "'\n";
    return 2;
  }

  std::ofstream file(flags.at("out"), std::ios::binary);
  if (!file.is_open()) {
    err << "build: cannot write " << flags.at("out") << "\n";
    return 1;
  }
  const std::string bytes = SerializeHistogram(histogram);
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  file.flush();
  if (!file.good()) {
    err << "build: write failed\n";
    return 1;
  }
  out << "built " << algorithm << " histogram: " << histogram.num_buckets()
      << " buckets over " << histogram.domain_size() << " points, SSE "
      << histogram.SseAgainst(series.value()) << ", " << bytes.size()
      << " bytes\n";
  return 0;
}

int Query(const std::map<std::string, std::string>& flags,
          const std::vector<std::string>& positional, std::ostream& out,
          std::ostream& err) {
  if (!flags.contains("histogram") || positional.empty()) {
    err << "query: --histogram and a query are required\n";
    return 2;
  }
  auto histogram = LoadHistogram(flags.at("histogram"));
  if (!histogram.ok()) {
    err << "query: " << histogram.status() << "\n";
    return 1;
  }
  const int64_t n = histogram.value().domain_size();
  const std::string& verb = positional[0];
  out.precision(15);  // answers must round-trip through text
  if ((verb == "SUM" || verb == "AVG") && positional.size() == 3) {
    const int64_t lo = std::atoll(positional[1].c_str());
    const int64_t hi = std::atoll(positional[2].c_str());
    if (!(0 <= lo && lo < hi && hi <= n)) {
      err << "query: range [" << lo << "," << hi << ") outside domain of size "
          << n << "\n";
      return 1;
    }
    const double sum = histogram.value().RangeSum(lo, hi);
    out << (verb == "SUM" ? sum : sum / static_cast<double>(hi - lo)) << "\n";
    return 0;
  }
  if (verb == "POINT" && positional.size() == 2) {
    const int64_t i = std::atoll(positional[1].c_str());
    if (i < 0 || i >= n) {
      err << "query: index " << i << " outside domain of size " << n << "\n";
      return 1;
    }
    out << histogram.value().Estimate(i) << "\n";
    return 0;
  }
  err << "query: expected SUM <lo> <hi> | AVG <lo> <hi> | POINT <i>\n";
  return 2;
}

int Inspect(const std::map<std::string, std::string>& flags, std::ostream& out,
            std::ostream& err) {
  if (!flags.contains("histogram")) {
    err << "inspect: --histogram is required\n";
    return 2;
  }
  auto histogram = LoadHistogram(flags.at("histogram"));
  if (!histogram.ok()) {
    err << "inspect: " << histogram.status() << "\n";
    return 1;
  }
  out << histogram.value().num_buckets() << " buckets over domain [0, "
      << histogram.value().domain_size() << ")\n"
      << histogram.value().ToString() << "\n";
  return 0;
}

/// Resolves the --wal-* flags (with $STREAMHIST_WAL supplying the default
/// policy spec) and opens the engine's write-ahead log, printing the
/// recovery line. No --wal-dir means no WAL; returns a nonzero exit code on
/// bad flags or a failed open.
int MaybeOpenWal(QueryEngine& engine,
                 const std::map<std::string, std::string>& flags,
                 std::ostream& out, std::ostream& err, const char* who) {
  if (!flags.contains("wal-dir")) return 0;
  QueryEngine::WalConfig config;
  std::string spec;
  if (flags.contains("wal-policy")) {
    spec = flags.at("wal-policy");
  } else if (const char* env = std::getenv("STREAMHIST_WAL")) {
    spec = env;
  }
  if (!spec.empty()) {
    const Result<wal::Options> parsed = wal::ParsePolicySpec(spec);
    if (!parsed.ok()) {
      err << who << ": wal policy: " << parsed.status() << "\n";
      return 2;
    }
    config.options = parsed.value();
  }
  config.checkpoint_interval_ms =
      flags.contains("wal-checkpoint-ms")
          ? std::atoll(flags.at("wal-checkpoint-ms").c_str())
          : 1000;
  if (config.checkpoint_interval_ms < 0) {
    err << who << ": --wal-checkpoint-ms must be >= 0\n";
    return 2;
  }
  const Result<QueryEngine::WalRecoveryReport> recovery =
      engine.OpenWal(flags.at("wal-dir"), config);
  if (!recovery.ok()) {
    err << who << ": wal: " << recovery.status() << "\n";
    return 1;
  }
  // Flushed before any "listening on" line so harnesses can read it first.
  out << "wal: policy=" << wal::PolicySpecString(config.options) << "; "
      << recovery.value().ToString() << std::endl;
  return 0;
}

/// One-line durability totals for shutdown summaries.
std::string WalSummaryLine(const wal::StatsSnapshot& s) {
  std::ostringstream os;
  os << "wal: records=" << s.records << ", bytes=" << s.bytes
     << ", fsyncs=" << s.fsyncs << ", sync waits=" << s.sync_waits
     << ", segments created=" << s.segments_created << " deleted="
     << s.segments_deleted << ", durable lsn=" << s.durable_lsn;
  return os.str();
}

/// Line-at-a-time QueryEngine session: statements from stdin (interactive)
/// or a script file. Failed statements print an error and the session keeps
/// going — one bad query should not kill a long-running console. EXIT/QUIT
/// ends the session.
int Console(const std::map<std::string, std::string>& flags, std::ostream& out,
            std::ostream& err) {
  std::ifstream script;
  std::istream* in = &std::cin;
  if (flags.contains("script")) {
    script.open(flags.at("script"));
    if (!script.is_open()) {
      err << "console: cannot open script: " << flags.at("script") << "\n";
      return 1;
    }
    in = &script;
  }
  QueryEngine engine;
  if (const int rc = MaybeOpenWal(engine, flags, out, err, "console");
      rc != 0) {
    return rc;
  }
  std::string line;
  while (std::getline(*in, line)) {
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::string statement = line.substr(first);
    std::string head = statement.substr(0, statement.find_first_of(" \t\r"));
    std::transform(head.begin(), head.end(), head.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    if (head == "EXIT" || head == "QUIT") break;
    const Result<std::string> result = engine.Execute(statement);
    if (result.ok()) {
      out << result.value() << "\n";
    } else {
      err << "error: " << result.status() << "\n";
    }
  }
  return 0;
}

// Self-pipe for serve --listen: the signal handler writes one byte, the
// foreground thread blocks on the read end until shutdown is requested.
int g_shutdown_pipe[2] = {-1, -1};

extern "C" void ServeShutdownHandler(int /*signum*/) {
  const char byte = 1;
  // write(2) is async-signal-safe; the result is irrelevant (a full pipe
  // means a shutdown byte is already queued).
  [[maybe_unused]] const ssize_t n = write(g_shutdown_pipe[1], &byte, 1);
}

/// The TCP front-end (DESIGN.md §11): bind, print the port, serve until
/// SIGINT/SIGTERM, shut down cleanly, print the summary line.
int ServeTcp(const std::map<std::string, std::string>& flags,
             int threads, int64_t deadline_ms, std::ostream& out,
             std::ostream& err) {
  net::ServerOptions options;
  const int64_t port = std::atoll(flags.at("listen").c_str());
  if (port < 0 || port > 65535) {
    err << "serve: --listen must be a port in [0, 65535]\n";
    return 2;
  }
  options.port = static_cast<uint16_t>(port);
  options.threads = threads;
  options.deadline_ms = deadline_ms;
  if (flags.contains("max-conns")) {
    const int64_t cap = std::atoll(flags.at("max-conns").c_str());
    if (cap < 1) {
      err << "serve: --max-conns must be >= 1\n";
      return 2;
    }
    options.max_connections = static_cast<int>(cap);
  }

  QueryEngine engine;
  if (const int rc = MaybeOpenWal(engine, flags, out, err, "serve");
      rc != 0) {
    return rc;
  }

  // Replication (DESIGN.md §14). Any WAL-backed server can feed replicas, so
  // the hub exists whenever the log does — an ex-replica keeps it after
  // PROMOTE and can immediately take subscribers of its own.
  std::unique_ptr<net::ReplicationHub> hub;
  if (engine.wal_enabled()) {
    net::HubOptions hub_options;
    if (flags.contains("repl-sync-ms")) {
      hub_options.sync_ms = std::atoll(flags.at("repl-sync-ms").c_str());
      if (hub_options.sync_ms < 0) {
        err << "serve: --repl-sync-ms must be >= 0\n";
        return 2;
      }
    }
    hub = std::make_unique<net::ReplicationHub>(engine, hub_options);
    net::ReplicationHub* raw_hub = hub.get();
    engine.SetReplicationBarrier(
        [raw_hub](int64_t lsn) { return raw_hub->WaitShipped(lsn); });
    options.replication_hub = raw_hub;
  } else if (flags.contains("repl-sync-ms")) {
    err << "serve: --repl-sync-ms needs a write-ahead log (--wal-dir)\n";
    return 2;
  }

  std::unique_ptr<net::ReplicaClient> replica;
  if (flags.contains("replica-of")) {
    const std::string& target = flags.at("replica-of");
    const size_t colon = target.rfind(':');
    const std::string host = colon == std::string::npos
                                 ? std::string()
                                 : target.substr(0, colon);
    const int64_t primary_port =
        colon == std::string::npos
            ? 0
            : std::atoll(target.substr(colon + 1).c_str());
    if ((host != "127.0.0.1" && host != "localhost") || primary_port < 1 ||
        primary_port > 65535) {
      err << "serve: --replica-of expects 127.0.0.1:PORT or localhost:PORT"
             " (the replication link is loopback-only, like the listener)\n";
      return 2;
    }
    if (!engine.wal_enabled()) {
      err << "serve: a replica needs its own write-ahead log (--wal-dir)\n";
      return 1;
    }
    int64_t max_lag_ms = 10000;
    if (flags.contains("replica-max-lag-ms")) {
      max_lag_ms = std::atoll(flags.at("replica-max-lag-ms").c_str());
      if (max_lag_ms < 0) {
        err << "serve: --replica-max-lag-ms must be >= 0\n";
        return 2;
      }
    }
    net::ReplicaOptions replica_options;
    replica_options.primary_port = static_cast<uint16_t>(primary_port);
    Result<std::unique_ptr<net::ReplicaClient>> started =
        net::ReplicaClient::Start(engine, replica_options);
    if (!started.ok()) {
      err << "serve: replica: " << started.status() << "\n";
      return 1;
    }
    replica = std::move(started.value());
    engine.SetReplicaMaxLagMs(max_lag_ms);
    out << "replica of " << host << ":" << primary_port
        << " (max lag " << max_lag_ms << " ms; PROMOTE to take over)"
        << std::endl;
  }

  // Shutdown plumbing goes in BEFORE the server exists: a SIGINT/SIGTERM
  // delivered during startup is then queued as a byte in the pipe (drained
  // by the read loop below) instead of taking the default disposition and
  // killing the process with the WAL unflushed. On pipe failure nothing has
  // started yet; ~QueryEngine closes and flushes the WAL.
  if (pipe(g_shutdown_pipe) != 0) {
    err << "serve: cannot create shutdown pipe\n";
    return 1;
  }
  struct sigaction action = {};
  action.sa_handler = ServeShutdownHandler;
  sigemptyset(&action.sa_mask);
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);

  auto server = net::TcpServer::Start(engine, options);
  if (!server.ok()) {
    err << "serve: " << server.status() << "\n";
    const int rfd = g_shutdown_pipe[0], wfd = g_shutdown_pipe[1];
    g_shutdown_pipe[0] = g_shutdown_pipe[1] = -1;
    close(rfd);
    close(wfd);
    return 1;
  }
  // The machine-readable bind announcement: harnesses asking for --listen 0
  // parse the kernel-chosen port from exactly this line.
  out << "LISTENING " << server.value()->port() << std::endl;
  out << "listening on 127.0.0.1:" << server.value()->port() << " ("
      << threads << (threads == 1 ? " thread" : " threads");
  if (deadline_ms > 0) out << ", deadline " << deadline_ms << " ms";
  out << ")" << std::endl;

  char byte = 0;
  ssize_t n;
  do {
    n = read(g_shutdown_pipe[0], &byte, 1);
  } while (n < 0 && errno == EINTR);

  server.value()->Shutdown();
  out << server.value()->SummaryLine() << "\n";
  // Replication stops after the front-end (no new subscribes can arrive) and
  // before the WAL closes (the feeders read it until the very end).
  if (replica != nullptr) replica->Stop();
  if (hub != nullptr) {
    engine.SetReplicationBarrier(nullptr);
    const net::HubStatsSnapshot hs = hub->stats();
    if (hs.subscribes > 0) {
      out << "replication: " << hs.subscribes << " subscribes, " << hs.batches
          << " batches (" << hs.records << " records), " << hs.heartbeats
          << " heartbeats, " << hs.bootstraps << " bootstraps, acked lsn "
          << hs.acked_lsn << "\n";
    }
    hub->Stop();
  }
  if (engine.wal_enabled()) {
    // Final flush first, so the totals line reports the true durable LSN.
    wal::StatsSnapshot final_stats;
    (void)engine.CloseWal(&final_stats);
    out << WalSummaryLine(final_stats) << "\n";
  }
  close(g_shutdown_pipe[0]);
  close(g_shutdown_pipe[1]);
  g_shutdown_pipe[0] = g_shutdown_pipe[1] = -1;
  return 0;
}

/// Concurrent QueryEngine sessions against one shared engine: the
/// operational shape the snapshot-isolated core exists for. Statements are
/// dealt round-robin to N session threads (statement i -> session i % N);
/// each session executes its hand in order under its own ExecContext. The
/// engine's concurrency model guarantees every interleaving is safe; the
/// script decides whether it is meaningful. Answers are buffered and printed
/// in input order so output is reproducible even though execution is not
/// serialized.
int Serve(const std::map<std::string, std::string>& flags, std::ostream& out,
          std::ostream& err) {
  const int threads =
      flags.contains("threads") ? std::atoi(flags.at("threads").c_str()) : 1;
  if (threads < 1 || threads > 64) {
    err << "serve: --threads must be in [1, 64]\n";
    return 2;
  }
  const bool has_deadline = flags.contains("deadline-ms");
  const int64_t deadline_ms =
      has_deadline ? std::max<int64_t>(
                         0, std::atoll(flags.at("deadline-ms").c_str()))
                   : 0;

  if (flags.contains("listen")) {
    return ServeTcp(flags, threads, deadline_ms, out, err);
  }

  std::ifstream script;
  std::istream* in = &std::cin;
  if (flags.contains("script")) {
    script.open(flags.at("script"));
    if (!script.is_open()) {
      err << "serve: cannot open script: " << flags.at("script") << "\n";
      return 1;
    }
    in = &script;
  }
  std::vector<std::string> statements;
  std::string line;
  while (std::getline(*in, line)) {
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::string statement = line.substr(first);
    std::string head = statement.substr(0, statement.find_first_of(" \t\r"));
    std::transform(head.begin(), head.end(), head.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    if (head == "EXIT" || head == "QUIT") break;
    statements.push_back(std::move(statement));
  }

  QueryEngine engine;
  if (const int rc = MaybeOpenWal(engine, flags, out, err, "serve");
      rc != 0) {
    return rc;
  }
  std::vector<std::string> answers(statements.size());
  std::vector<uint8_t> succeeded(statements.size(), 0);
  std::vector<std::thread> sessions;
  sessions.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    sessions.emplace_back([&, t] {
      ExecContext ctx(has_deadline ? Deadline::AfterMillis(deadline_ms)
                                   : Deadline::Infinite());
      for (size_t i = static_cast<size_t>(t); i < statements.size();
           i += static_cast<size_t>(threads)) {
        const Result<std::string> result = engine.Execute(statements[i], ctx);
        if (result.ok()) {
          answers[i] = result.value();
          succeeded[i] = 1;
        } else {
          std::ostringstream os;
          os << result.status();
          answers[i] = os.str();
        }
      }
    });
  }
  for (std::thread& session : sessions) session.join();

  size_t ok = 0;
  for (size_t i = 0; i < statements.size(); ++i) {
    if (succeeded[i]) {
      out << answers[i] << "\n";
      ++ok;
    } else {
      err << "error: " << answers[i] << "\n";
    }
  }
  out << "serve: " << statements.size() << " statements on " << threads
      << (threads == 1 ? " session: " : " sessions: ") << ok << " ok, "
      << (statements.size() - ok) << " errors\n";
  if (engine.wal_enabled()) {
    wal::StatsSnapshot final_stats;
    (void)engine.CloseWal(&final_stats);
    out << WalSummaryLine(final_stats) << "\n";
  }
  return 0;
}

/// Read-only WAL inspection: `wal dump` prints every decoded record, `wal
/// verify` just the scan report. Neither repairs anything — a torn tail is
/// reported, not truncated (that is Open's job, under a running engine).
int WalCmd(const std::map<std::string, std::string>& flags,
           const std::vector<std::string>& positional, std::ostream& out,
           std::ostream& err) {
  if (positional.empty() ||
      (positional[0] != "dump" && positional[0] != "verify") ||
      !flags.contains("dir")) {
    err << "wal: expected 'wal <dump|verify> --dir DIR'\n";
    return 2;
  }
  const bool dump = positional[0] == "dump";
  out.precision(15);
  const wal::Wal::RecordFn on_record = [&](int64_t lsn,
                                           std::string_view payload) {
    if (!dump) return Status::OK();
    out << "lsn=" << lsn;
    const Result<walrec::Record> record = walrec::Decode(payload);
    if (!record.ok()) {
      // The frame CRC passed, so this is a codec gap, not rot.
      out << " undecodable: " << record.status() << "\n";
      return Status::OK();
    }
    out << " " << walrec::RecordTypeName(record->type) << " stream="
        << record->name;
    switch (record->type) {
      case walrec::RecordType::kCreate:
        out << " window=" << record->config.window_size
            << " buckets=" << record->config.num_buckets;
        break;
      case walrec::RecordType::kAppend: {
        out << " values=" << record->values.size();
        if (record->values.size() <= 8) {
          for (double v : record->values) out << " " << v;
        }
        break;
      }
      case walrec::RecordType::kDrop:
        break;
    }
    out << "\n";
    return Status::OK();
  };
  wal::OpenReport report;
  const Status status = wal::Wal::Scan(flags.at("dir"), on_record, &report);
  if (!status.ok()) {
    err << "wal: " << status << "\n";
    return 1;
  }
  out << report.ToString() << "\n";
  // Interior corruption means fsynced bytes rotted — worth a hard exit.
  // A torn tail alone is normal crash residue (recovery truncates it), so
  // it gets its own advisory code an operator's script can treat as OK.
  if (report.corrupt_records > 0) return 1;
  if (report.tail_truncated) return 3;
  return 0;
}

}  // namespace

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  if (args.empty()) return Usage(err);
  std::vector<std::string> positional;
  const std::map<std::string, std::string> flags =
      ParseFlags(args, 1, positional);
  if (args[0] == "generate") return Generate(flags, out, err);
  if (args[0] == "build") return Build(flags, out, err);
  if (args[0] == "query") return Query(flags, positional, out, err);
  if (args[0] == "inspect") return Inspect(flags, out, err);
  if (args[0] == "console") return Console(flags, out, err);
  if (args[0] == "serve") return Serve(flags, out, err);
  if (args[0] == "wal") return WalCmd(flags, positional, out, err);
  return Usage(err);
}

}  // namespace streamhist
