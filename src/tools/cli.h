#ifndef STREAMHIST_TOOLS_CLI_H_
#define STREAMHIST_TOOLS_CLI_H_

#include <ostream>
#include <string>
#include <vector>

namespace streamhist {

/// Implements the `streamhist_tool` command-line utility (exposed as a
/// library function so the test suite can drive it without spawning
/// processes). Subcommands:
///
///   generate --kind <utilization|walk|piecewise|zipf|sines> --n <N>
///            [--seed <S>] --out <csv>
///       writes a synthetic series (the DESIGN.md §4 substitutions).
///
///   build --input <csv> --buckets <B> [--epsilon <E>] [--algorithm
///         <vopt|agglomerative|greedy|equiwidth|maxdiff>] --out <hist.bin>
///       builds a histogram of the series and serializes it.
///
///   query --histogram <hist.bin> <SUM|AVG|POINT> <args...>
///       answers a query from a serialized histogram (no data needed).
///
///   inspect --histogram <hist.bin>
///       prints the buckets.
///
///   console [--script file] / serve [--script file | --listen port]
///       engine statement sessions: console is one in-process session;
///       serve --script deals a script across N concurrent sessions; and
///       serve --listen runs the TCP front-end (src/server/tcp_server.h)
///       until SIGINT/SIGTERM.
///
/// Returns a process exit code; human-readable output/errors go to `out` /
/// `err`.
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

}  // namespace streamhist

#endif  // STREAMHIST_TOOLS_CLI_H_
