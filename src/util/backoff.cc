#include "src/util/backoff.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace streamhist {
namespace {

// splitmix64: a fixed, well-mixed hash so jitter depends only on
// (seed, attempt) — no stateful RNG, no cross-instance divergence.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

Backoff::Backoff(const BackoffOptions& options) : options_(options) {
  if (options_.initial_ms < 0) options_.initial_ms = 0;
  if (options_.max_ms < options_.initial_ms) {
    options_.max_ms = options_.initial_ms;
  }
  if (options_.multiplier < 1.0) options_.multiplier = 1.0;
  options_.jitter = std::clamp(options_.jitter, 0.0, 0.999);
}

int64_t Backoff::DelayMs(int64_t attempt) const {
  if (attempt < 1) attempt = 1;
  // Grow multiplicatively in double space; the cap makes overflow moot.
  double base = static_cast<double>(options_.initial_ms);
  const double cap = static_cast<double>(options_.max_ms);
  for (int64_t i = 1; i < attempt && base < cap; ++i) {
    base *= options_.multiplier;
  }
  base = std::min(base, cap);
  if (options_.jitter > 0.0) {
    const uint64_t h =
        Mix64(options_.seed ^ Mix64(static_cast<uint64_t>(attempt)));
    const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
    base *= 1.0 - options_.jitter + 2.0 * options_.jitter * unit;
  }
  return std::clamp(static_cast<int64_t>(std::llround(base)), int64_t{0},
                    options_.max_ms * 2);
}

int64_t Backoff::NextDelayMs() { return DelayMs(++attempt_); }

void Backoff::SleepNext() {
  const int64_t ms = NextDelayMs();
  if (ms <= 0) return;
  if (sleeper_) {
    sleeper_(ms);
  } else {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
}

void Backoff::Reset() { attempt_ = 0; }

void Backoff::set_sleeper(Sleeper sleeper) { sleeper_ = std::move(sleeper); }

}  // namespace streamhist
