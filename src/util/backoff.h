#ifndef STREAMHIST_UTIL_BACKOFF_H_
#define STREAMHIST_UTIL_BACKOFF_H_

#include <cstdint>
#include <functional>

namespace streamhist {

/// Capped exponential backoff with deterministic, seedable jitter.
///
/// Two call sites share this schedule: the checkpoint writer's bounded
/// retry against transient fsync/rename failures (src/engine), and the
/// replica's reconnect loop against a primary that is down or partitioned
/// (src/server). The first wants the exact historical 1ms, 2ms, ... doubling
/// with no jitter; the second wants jitter so a fleet of replicas does not
/// reconnect in lockstep the instant the primary returns.
///
/// DelayMs(n) is a pure function of the options and the 1-based attempt
/// number — jitter is drawn from a hash of (seed, n), not from a stateful
/// RNG — so a test can assert the whole schedule without sleeping, and two
/// Backoff instances with the same options agree forever.
struct BackoffOptions {
  int64_t initial_ms = 1;   // delay before the second attempt
  int64_t max_ms = 1000;    // cap applied before jitter
  double multiplier = 2.0;  // growth per attempt
  /// Jitter fraction in [0, 1): the capped base delay is scaled by a
  /// deterministic factor in [1 - jitter, 1 + jitter) keyed on (seed, n).
  double jitter = 0.0;
  uint64_t seed = 0;
};

class Backoff {
 public:
  using Sleeper = std::function<void(int64_t ms)>;

  explicit Backoff(const BackoffOptions& options);

  /// The delay after failed attempt `attempt` (1-based). Pure.
  int64_t DelayMs(int64_t attempt) const;

  /// DelayMs for the next attempt, advancing the internal counter.
  int64_t NextDelayMs();

  /// Sleeps for NextDelayMs() via the injected sleeper.
  void SleepNext();

  /// Restarts the schedule at attempt 1 — call after a success so the next
  /// failure starts over at initial_ms.
  void Reset();

  /// Failed attempts consumed so far via NextDelayMs/SleepNext.
  int64_t attempt() const { return attempt_; }

  /// Replaces the real sleep (tests, and the engine's injectable-sleeper
  /// seam). A null sleeper restores the default std::this_thread sleep.
  void set_sleeper(Sleeper sleeper);

 private:
  BackoffOptions options_;
  int64_t attempt_ = 0;
  Sleeper sleeper_;
};

}  // namespace streamhist

#endif  // STREAMHIST_UTIL_BACKOFF_H_
