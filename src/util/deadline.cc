#include "src/util/deadline.h"

#include <cstdlib>
#include <limits>

#include "src/util/fault.h"

namespace streamhist {

int64_t Deadline::RemainingMillis() const {
  if (infinite_) return std::numeric_limits<int64_t>::max();
  const auto left = at_ - std::chrono::steady_clock::now();
  const int64_t ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(left).count();
  return ms > 0 ? ms : 0;
}

bool ExecContext::CheckExpiredSlow() const {
  // The injected expiry fires regardless of the configured deadline so a
  // chaos run can degrade builds that carry no WITHIN clause; a count-limited
  // arming (deadline.expire:1) cancels exactly one ladder rung.
  if (fault::Triggered("deadline.expire") || deadline_.Expired()) {
    cancel_.Cancel();
    return true;
  }
  return false;
}

int64_t DefaultBuildDeadlineMillis() {
  static const int64_t ms = [] {
    const char* env = std::getenv("STREAMHIST_BUILD_DEADLINE_MS");
    if (env == nullptr || *env == '\0') return int64_t{0};
    char* end = nullptr;
    const long long parsed = std::strtoll(env, &end, 10);
    if (end == env || *end != '\0' || parsed <= 0) return int64_t{0};
    return static_cast<int64_t>(parsed);
  }();
  return ms;
}

}  // namespace streamhist
