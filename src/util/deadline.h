#ifndef STREAMHIST_UTIL_DEADLINE_H_
#define STREAMHIST_UTIL_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace streamhist {

/// Cooperative-cancellation flag shared between a requester and the worker
/// loops it wants to be able to stop. The check is one relaxed atomic load
/// (the same disabled-cost discipline as fault::Triggered), so kernels can
/// afford to consult it at every grain boundary.
///
/// Relaxed ordering is sufficient: cancellation is a hint that only ever
/// turns work *off*, the worker never reads data published by Cancel(), and
/// a check that misses a concurrent Cancel() by one grain is still correct —
/// it just stops one chunk later.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// A wall-clock budget on steady_clock. Infinite() never expires and costs
/// nothing to check (one bool); AfterMillis(ms) expires `ms` milliseconds
/// after construction.
class Deadline {
 public:
  /// A deadline that never expires.
  static Deadline Infinite() { return Deadline(); }

  /// Expires `ms` milliseconds from now. ms <= 0 is already expired.
  static Deadline AfterMillis(int64_t ms) {
    Deadline d;
    d.infinite_ = false;
    d.at_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    return d;
  }

  bool infinite() const { return infinite_; }

  /// True once the wall clock passed the deadline (always false for
  /// Infinite()). Reads the clock — call from grain boundaries, not inner
  /// loops.
  bool Expired() const {
    return !infinite_ && std::chrono::steady_clock::now() >= at_;
  }

  /// Milliseconds until expiry, clamped to >= 0. Meaningless (large) for
  /// infinite deadlines.
  int64_t RemainingMillis() const;

 private:
  Deadline() = default;

  bool infinite_ = true;
  std::chrono::steady_clock::time_point at_{};
};

/// The cancellation context threaded through the offline DP kernels
/// (core/vopt_kernel.h, core/approx_dp.cc, core/agglomerative.cc): one
/// deadline plus one latch. Kernels call ShouldStop() at grain boundaries;
/// once it returns true it stays true (deadline expiry is latched into the
/// token), so every chunk of a cancelled sweep observes the same answer.
///
/// Fault point `deadline.expire` (util/fault.h) makes ShouldStop() report
/// expiry deterministically, independent of the wall clock — that is how
/// tests drive a specific degradation-ladder rung without timing games.
class ExecContext {
 public:
  ExecContext() = default;
  explicit ExecContext(Deadline deadline) : deadline_(deadline) {}
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  /// Fast path: one relaxed load when not yet cancelled and the deadline is
  /// infinite (plus the fault registry's own one-load fast path).
  bool ShouldStop() const {
    if (cancel_.cancelled()) return true;
    return CheckExpiredSlow();
  }

  /// Requests cancellation explicitly (idempotent).
  void Cancel() { cancel_.Cancel(); }

  const Deadline& deadline() const { return deadline_; }

 private:
  // Clock / fault check; latches a positive answer into the token so
  // subsequent checks are one load.
  bool CheckExpiredSlow() const;

  Deadline deadline_ = Deadline::Infinite();
  mutable CancelToken cancel_;
};

/// The process-default BUILD deadline from STREAMHIST_BUILD_DEADLINE_MS
/// (parsed once at first use): milliseconds per BUILD statement when the
/// query carries no WITHIN clause. Unset, empty, or non-positive means no
/// default deadline. Returns 0 when unset.
int64_t DefaultBuildDeadlineMillis();

}  // namespace streamhist

#endif  // STREAMHIST_UTIL_DEADLINE_H_
