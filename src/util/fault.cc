#include "src/util/fault.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

namespace streamhist {
namespace fault {

namespace {

struct ArmState {
  int64_t remaining = kUnlimitedFires;  // fires left; kUnlimitedFires: no cap
};

struct Registry {
  std::mutex mu;
  std::map<std::string, ArmState> armed;
  // point name -> times it fired while armed (kept across self-disarm)
  std::map<std::string, int64_t> fired;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives all users
  return *registry;
}

// Parse STREAMHIST_FAULTS once, before main touches any fault point.
const bool g_env_parsed = [] {
  if (const char* spec = std::getenv("STREAMHIST_FAULTS")) {
    ArmFromSpec(spec);
  }
  return true;
}();

}  // namespace

namespace internal {

bool TriggeredSlow(const char* point) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.armed.find(point);
  if (it == registry.armed.end()) return false;
  ++registry.fired[point];
  if (it->second.remaining != kUnlimitedFires &&
      --it->second.remaining == 0) {
    registry.armed.erase(it);
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  return true;
}

}  // namespace internal

void Arm(const std::string& point, int64_t max_fires) {
  if (max_fires != kUnlimitedFires && max_fires < 1) return;
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto [it, inserted] = registry.armed.try_emplace(point);
  it->second.remaining = max_fires;
  if (inserted) {
    internal::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
}

void ArmFromSpec(const std::string& spec) {
  const std::vector<std::string> known = KnownPoints();
  std::string unknown;
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    // Trim surrounding whitespace.
    size_t lo = begin, hi = end;
    while (lo < hi && std::isspace(static_cast<unsigned char>(spec[lo]))) ++lo;
    while (hi > lo && std::isspace(static_cast<unsigned char>(spec[hi - 1]))) {
      --hi;
    }
    if (hi > lo) {
      std::string entry = spec.substr(lo, hi - lo);
      // Optional ":N" fire budget — split on the last colon when everything
      // after it is digits (point names themselves contain no colons).
      int64_t max_fires = kUnlimitedFires;
      const size_t colon = entry.rfind(':');
      if (colon != std::string::npos && colon + 1 < entry.size()) {
        bool digits = true;
        int64_t parsed = 0;
        for (size_t i = colon + 1; i < entry.size(); ++i) {
          if (!std::isdigit(static_cast<unsigned char>(entry[i]))) {
            digits = false;
            break;
          }
          parsed = parsed * 10 + (entry[i] - '0');
        }
        if (digits && parsed >= 1) {
          max_fires = parsed;
          entry.resize(colon);
        }
      }
      if (!entry.empty()) {
        if (!std::binary_search(known.begin(), known.end(), entry)) {
          unknown += unknown.empty() ? "" : ", ";
          unknown += entry;
        }
        Arm(entry, max_fires);
      }
    }
    begin = end + 1;
  }
  if (!unknown.empty()) {
    std::fprintf(stderr,
                 "warning: STREAMHIST_FAULTS names unknown fault point(s): "
                 "%s (see fault::KnownPoints)\n",
                 unknown.c_str());
  }
}

void Disarm(const std::string& point) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (registry.armed.erase(point) > 0) {
    internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  internal::g_armed_count.fetch_sub(
      static_cast<int64_t>(registry.armed.size()), std::memory_order_relaxed);
  registry.armed.clear();
  registry.fired.clear();
}

int64_t TriggerCount(const std::string& point) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.fired.find(point);
  return it == registry.fired.end() ? 0 : it->second;
}

std::vector<std::string> Armed() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<std::string> names;
  names.reserve(registry.armed.size());
  for (const auto& [name, state] : registry.armed) names.push_back(name);
  return names;
}

std::vector<std::string> KnownPoints() {
  // Sorted. Every name here must have a Triggered() call site in production
  // code; fault_injection_test cross-checks the list.
  return {
      "deadline.expire",     "fileio.fsync",
      "fileio.fsync.transient", "fileio.read.bitflip",
      "fileio.read.truncate", "fileio.rename",
      "fileio.short_write",  "governor.oom",
      "net.accept",          "net.partition",
      "net.read.short",      "net.write.eagain",
      "repl.frame.corrupt",  "repl.subscribe",
      "wal.append.short",    "wal.fsync",
      "wal.replay.corrupt",  "wal.seal",
  };
}

}  // namespace fault
}  // namespace streamhist
