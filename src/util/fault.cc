#include "src/util/fault.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <mutex>

namespace streamhist {
namespace fault {

namespace {

struct Registry {
  std::mutex mu;
  // point name -> times it fired while armed
  std::map<std::string, int64_t> armed;
  std::map<std::string, int64_t> fired;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives all users
  return *registry;
}

// Parse STREAMHIST_FAULTS once, before main touches any fault point.
const bool g_env_parsed = [] {
  if (const char* spec = std::getenv("STREAMHIST_FAULTS")) {
    ArmFromSpec(spec);
  }
  return true;
}();

}  // namespace

namespace internal {

bool TriggeredSlow(const char* point) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.armed.find(point);
  if (it == registry.armed.end()) return false;
  ++it->second;
  ++registry.fired[point];
  return true;
}

}  // namespace internal

void Arm(const std::string& point) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (registry.armed.emplace(point, 0).second) {
    internal::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
}

void ArmFromSpec(const std::string& spec) {
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    // Trim surrounding whitespace.
    size_t lo = begin, hi = end;
    while (lo < hi && std::isspace(static_cast<unsigned char>(spec[lo]))) ++lo;
    while (hi > lo && std::isspace(static_cast<unsigned char>(spec[hi - 1]))) {
      --hi;
    }
    if (hi > lo) Arm(spec.substr(lo, hi - lo));
    begin = end + 1;
  }
}

void Disarm(const std::string& point) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (registry.armed.erase(point) > 0) {
    internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  internal::g_armed_count.fetch_sub(
      static_cast<int64_t>(registry.armed.size()), std::memory_order_relaxed);
  registry.armed.clear();
  registry.fired.clear();
}

int64_t TriggerCount(const std::string& point) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.fired.find(point);
  return it == registry.fired.end() ? 0 : it->second;
}

std::vector<std::string> Armed() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<std::string> names;
  names.reserve(registry.armed.size());
  for (const auto& [name, count] : registry.armed) names.push_back(name);
  return names;
}

}  // namespace fault
}  // namespace streamhist
