#ifndef STREAMHIST_UTIL_FAULT_H_
#define STREAMHIST_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace streamhist {
namespace fault {

/// Injectable failure-point registry for crash-safety testing. Production
/// code guards a simulated failure with Triggered("point.name"); tests (or
/// the STREAMHIST_FAULTS environment variable, a comma-separated list of
/// point names parsed at process start) arm points to force the failure.
///
/// A spec entry may carry a fire budget — "fileio.fsync.transient:2" fires
/// on the first two checks and then self-disarms — which is how transient
/// (self-healing) failures are modeled: a retry loop outlasts the budget.
///
/// Disabled cost: one relaxed atomic load — no string work, no locks — so
/// the hooks can stay compiled into release binaries.
///
/// Wired points are listed by KnownPoints(); ArmFromSpec warns on stderr
/// about names outside that registry (a typo would otherwise silently disarm
/// a chaos run) but still arms them, so tests can use scratch names.
///
/// Points currently wired:
///   fileio.short_write      AtomicWriteFile persists only half the bytes,
///                           then fails before renaming (torn write / ENOSPC)
///   fileio.fsync            fsync of the temp file reports failure
///   fileio.fsync.transient  like fileio.fsync; by convention armed with a
///                           fire budget so a bounded retry loop self-heals
///   fileio.rename           the atomic rename reports failure
///   fileio.read.bitflip     ReadFileToString flips one bit of the middle byte
///   fileio.read.truncate    ReadFileToString drops the trailing half
///   deadline.expire         ExecContext::ShouldStop reports expiry
///                           (util/deadline.h) — cancels DP ladder rungs
///   governor.oom            governor::TryCharge refuses the charge
///                           (util/governor.h) — sheds DP scratch to the
///                           ladder's cheaper rungs
///   net.accept              the TCP acceptor drops a just-accepted socket
///                           (src/server) — simulates EMFILE-class accept
///                           failures after the kernel handshake succeeded
///   net.partition           the replication link drops mid-stream on the
///                           primary's send path (src/server) — forces the
///                           replica's reconnect-with-backoff and resume
///   net.read.short          socket reads return at most one byte per call
///                           — forces every incremental reparse path (split
///                           frame headers, byte-at-a-time statements)
///   net.write.eagain        socket writes report EAGAIN without writing —
///                           forces the buffered-output / EPOLLOUT path
///   repl.frame.corrupt      EncodeReplRecords flips one payload bit
///                           (src/server/wire) — the replica must reject the
///                           frame on CRC and resynchronize by reconnecting
///   repl.subscribe          the primary refuses a replication subscribe
///                           (src/server) — the replica retries with backoff
///   wal.append.short        a WAL record write persists only half its
///                           frame (util/wal.h) — leaves the torn-tail
///                           shape recovery must truncate
///   wal.fsync               the WAL group-commit fsync reports failure —
///                           under policy "always" the append is NOT acked
///   wal.seal                segment rotation fails; the append that
///                           triggered it errors, the log stays writable
///   wal.replay.corrupt      the recovery scan flips one bit mid-segment —
///                           forces the CRC-skip / resynchronization path

namespace internal {
// Number of currently armed points; the fast path for the disabled case.
inline std::atomic<int64_t> g_armed_count{0};
bool TriggeredSlow(const char* point);
}  // namespace internal

/// Unlimited fire budget for Arm().
inline constexpr int64_t kUnlimitedFires = -1;

/// True when `point` is armed: the caller must simulate the failure. Also
/// increments the point's trigger counter (see TriggerCount) and consumes
/// one unit of a finite fire budget (self-disarming at zero).
inline bool Triggered(const char* point) {
  if (internal::g_armed_count.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  return internal::TriggeredSlow(point);
}

/// Arms a failure point for `max_fires` triggers (kUnlimitedFires: forever).
/// Re-arming an armed point resets its budget.
void Arm(const std::string& point, int64_t max_fires = kUnlimitedFires);

/// Arms every point in a comma-separated spec ("a.b,c.d:2"); empty names
/// are skipped and a ":N" suffix (N >= 1) sets the fire budget. This is the
/// STREAMHIST_FAULTS parser, exposed for tests. Unknown point names warn on
/// stderr but still arm.
void ArmFromSpec(const std::string& spec);

/// Disarms one point (no-op when not armed).
void Disarm(const std::string& point);

/// Disarms everything and resets trigger counters.
void DisarmAll();

/// How many times `point` fired while armed (for test assertions that a
/// fault path was actually exercised). Survives self-disarming.
int64_t TriggerCount(const std::string& point);

/// Currently armed point names, sorted.
std::vector<std::string> Armed();

/// The registry of point names wired into production code, sorted. Specs
/// naming anything else draw the ArmFromSpec warning.
std::vector<std::string> KnownPoints();

/// RAII arming for tests: arms on construction, disarms on destruction.
class ScopedFault {
 public:
  explicit ScopedFault(std::string point,
                       int64_t max_fires = kUnlimitedFires)
      : point_(std::move(point)) {
    Arm(point_, max_fires);
  }
  ~ScopedFault() { Disarm(point_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  std::string point_;
};

}  // namespace fault
}  // namespace streamhist

#endif  // STREAMHIST_UTIL_FAULT_H_
