#ifndef STREAMHIST_UTIL_FAULT_H_
#define STREAMHIST_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace streamhist {
namespace fault {

/// Injectable failure-point registry for crash-safety testing. Production
/// code guards a simulated failure with Triggered("point.name"); tests (or
/// the STREAMHIST_FAULTS environment variable, a comma-separated list of
/// point names parsed at process start) arm points to force the failure.
///
/// Disabled cost: one relaxed atomic load — no string work, no locks — so
/// the hooks can stay compiled into release binaries.
///
/// Points currently wired (see util/fileio.cc):
///   fileio.short_write   AtomicWriteFile persists only half the bytes, then
///                        fails before renaming (torn-write / ENOSPC crash)
///   fileio.fsync         fsync of the temp file reports failure
///   fileio.rename        the atomic rename reports failure
///   fileio.read.bitflip  ReadFileToString flips one bit of the middle byte
///   fileio.read.truncate ReadFileToString drops the trailing half

namespace internal {
// Number of currently armed points; the fast path for the disabled case.
inline std::atomic<int64_t> g_armed_count{0};
bool TriggeredSlow(const char* point);
}  // namespace internal

/// True when `point` is armed: the caller must simulate the failure. Also
/// increments the point's trigger counter (see TriggerCount).
inline bool Triggered(const char* point) {
  if (internal::g_armed_count.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  return internal::TriggeredSlow(point);
}

/// Arms a failure point. Idempotent.
void Arm(const std::string& point);

/// Arms every point in a comma-separated spec ("a.b,c.d"); empty names are
/// skipped. This is the STREAMHIST_FAULTS parser, exposed for tests.
void ArmFromSpec(const std::string& spec);

/// Disarms one point (no-op when not armed).
void Disarm(const std::string& point);

/// Disarms everything and resets trigger counters.
void DisarmAll();

/// How many times `point` fired while armed (for test assertions that a
/// fault path was actually exercised).
int64_t TriggerCount(const std::string& point);

/// Currently armed point names, sorted.
std::vector<std::string> Armed();

/// RAII arming for tests: arms on construction, disarms on destruction.
class ScopedFault {
 public:
  explicit ScopedFault(std::string point) : point_(std::move(point)) {
    Arm(point_);
  }
  ~ScopedFault() { Disarm(point_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  std::string point_;
};

}  // namespace fault
}  // namespace streamhist

#endif  // STREAMHIST_UTIL_FAULT_H_
