#include "src/util/fileio.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "src/util/fault.h"

namespace streamhist {

namespace {

Status Errno(const std::string& op, const std::string& path) {
  std::ostringstream msg;
  msg << op << " failed for " << path << ": " << std::strerror(errno);
  return Status::IOError(msg.str());
}

Status InjectedFault(const char* point) {
  return Status::IOError(std::string("injected fault: ") + point);
}

// Writes all of `bytes` to `fd`, looping over partial writes.
bool WriteAll(int fd, std::string_view bytes) {
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

// fsync of the containing directory so the rename itself is durable.
Status SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dirfd < 0) return Errno("open directory", dir);
  const int rc = ::fsync(dirfd);
  ::close(dirfd);
  if (rc != 0) return Errno("fsync directory", dir);
  return Status::OK();
}

}  // namespace

Status AtomicWriteFile(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open", tmp);

  if (fault::Triggered("fileio.short_write")) {
    // Simulate a crash / ENOSPC mid-write: half the bytes land, the temp
    // file is abandoned, the destination is untouched.
    (void)WriteAll(fd, bytes.substr(0, bytes.size() / 2));
    ::close(fd);
    return InjectedFault("fileio.short_write");
  }
  if (!WriteAll(fd, bytes)) {
    const Status status = Errno("write", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  }
  if (fault::Triggered("fileio.fsync")) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return InjectedFault("fileio.fsync");
  }
  // Same failure as fileio.fsync, separately named so a finite fire budget
  // ("fileio.fsync.transient:2") can model a fault that heals while a retry
  // loop (QueryEngine::SaveCheckpoint) is still willing to try again.
  if (fault::Triggered("fileio.fsync.transient")) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return InjectedFault("fileio.fsync.transient");
  }
  if (::fsync(fd) != 0) {
    const Status status = Errno("fsync", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Errno("close", tmp);
  }
  if (fault::Triggered("fileio.rename")) {
    ::unlink(tmp.c_str());
    return InjectedFault("fileio.rename");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status status = Errno("rename", tmp);
    ::unlink(tmp.c_str());
    return status;
  }
  return SyncParentDir(path);
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("read failed: " + path);
  std::string bytes = buffer.str();
  if (!bytes.empty() && fault::Triggered("fileio.read.bitflip")) {
    bytes[bytes.size() / 2] ^= 0x08;  // deterministic single-bit flip
  }
  if (fault::Triggered("fileio.read.truncate")) {
    bytes.resize(bytes.size() / 2);
  }
  return bytes;
}

}  // namespace streamhist
