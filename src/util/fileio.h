#ifndef STREAMHIST_UTIL_FILEIO_H_
#define STREAMHIST_UTIL_FILEIO_H_

#include <string>
#include <string_view>

#include "src/util/result.h"
#include "src/util/status.h"

namespace streamhist {

/// Durably replaces the file at `path` with `bytes`: writes to a temp file
/// in the same directory, fsyncs it, renames it over `path`, and fsyncs the
/// directory. A crash at any step leaves either the old complete file or the
/// new complete file — never a torn mix — which is the invariant the
/// checkpoint subsystem's crash-safety guarantee rests on.
///
/// Fault points (util/fault.h): fileio.short_write, fileio.fsync,
/// fileio.rename.
Status AtomicWriteFile(const std::string& path, std::string_view bytes);

/// Reads the whole file into a string. Fault points: fileio.read.bitflip,
/// fileio.read.truncate (corrupt the returned bytes to simulate media rot —
/// downstream parsers must cope).
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace streamhist

#endif  // STREAMHIST_UTIL_FILEIO_H_
