#include "src/util/framing.h"

#include <array>
#include <cstring>
#include <sstream>

namespace streamhist {

namespace {

// CRC32C lookup table (reflected polynomial 0x82F63B78), built once.
std::array<uint32_t, 256> BuildCrc32cTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Crc32cTable() {
  static const std::array<uint32_t, 256> table = BuildCrc32cTable();
  return table;
}

Status FrameError(const char* what, const char* detail) {
  std::ostringstream msg;
  msg << "malformed " << what << " frame: " << detail;
  return Status::InvalidArgument(msg.str());
}

// Frame layout: magic u32 + version u32 + payload_len u64 header, then the
// payload, then a crc32c u32 trailer covering header + payload.
constexpr size_t kFrameHeaderSize = 16;
constexpr size_t kFrameTrailerSize = 4;

}  // namespace

uint32_t Crc32c(std::string_view bytes, uint32_t crc) {
  const std::array<uint32_t, 256>& table = Crc32cTable();
  crc = ~crc;
  for (unsigned char byte : bytes) {
    crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

void ByteWriter::PutU32(uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out_.append(buf, 4);
}

void ByteWriter::PutU64(uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out_.append(buf, 8);
}

void ByteWriter::PutF64(double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out_.append(buf, 8);
}

void ByteWriter::PutLongDouble(long double v) {
  const double hi = static_cast<double>(v);
  const double lo = static_cast<double>(v - static_cast<long double>(hi));
  PutF64(hi);
  PutF64(lo);
}

void ByteWriter::PutBool(bool v) { out_.push_back(v ? '\1' : '\0'); }

void ByteWriter::PutLengthPrefixed(std::string_view bytes) {
  PutU64(bytes.size());
  out_.append(bytes);
}

bool ByteReader::Read(void* out, size_t n) {
  if (remaining() < n) return false;
  std::memcpy(out, bytes_.data() + pos_, n);
  pos_ += n;
  return true;
}

bool ByteReader::ReadU32(uint32_t* v) { return Read(v, 4); }
bool ByteReader::ReadU64(uint64_t* v) { return Read(v, 8); }

bool ByteReader::ReadI64(int64_t* v) {
  uint64_t u = 0;
  if (!ReadU64(&u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

bool ByteReader::ReadF64(double* v) { return Read(v, 8); }

bool ByteReader::ReadLongDouble(long double* v) {
  double hi = 0.0, lo = 0.0;
  if (!ReadF64(&hi) || !ReadF64(&lo)) return false;
  *v = static_cast<long double>(hi) + static_cast<long double>(lo);
  return true;
}

bool ByteReader::ReadBool(bool* v) {
  char c = 0;
  if (!Read(&c, 1)) return false;
  *v = c != '\0';
  return true;
}

bool ByteReader::ReadLengthPrefixed(std::string_view* out) {
  uint64_t len = 0;
  if (!ReadU64(&len)) return false;
  if (len > remaining()) return false;
  *out = bytes_.substr(pos_, static_cast<size_t>(len));
  pos_ += static_cast<size_t>(len);
  return true;
}

bool ByteReader::Skip(size_t n) {
  if (remaining() < n) return false;
  pos_ += n;
  return true;
}

std::string_view ByteReader::Window(size_t begin, size_t end) const {
  return bytes_.substr(begin, end - begin);
}

std::string WrapFrame(uint32_t magic, uint32_t version,
                      std::string_view payload) {
  ByteWriter w;
  w.PutU32(magic);
  w.PutU32(version);
  w.PutU64(payload.size());
  w.Append(payload);
  const uint32_t crc = Crc32c(w.bytes());
  w.PutU32(crc);
  return w.TakeBytes();
}

Result<FrameView> UnwrapFrame(std::string_view bytes, uint32_t magic,
                              const char* what) {
  ByteReader reader(bytes);
  STREAMHIST_ASSIGN_OR_RETURN(FrameView frame, ReadFrame(reader, magic, what));
  if (!reader.AtEnd()) return FrameError(what, "trailing bytes after frame");
  return frame;
}

Result<FrameView> ReadFrame(ByteReader& reader, uint32_t magic,
                            const char* what) {
  const size_t frame_start = reader.position();
  uint32_t got_magic = 0, version = 0;
  uint64_t payload_len = 0;
  if (!reader.ReadU32(&got_magic)) return FrameError(what, "truncated magic");
  if (got_magic != magic) return FrameError(what, "bad magic");
  if (!reader.ReadU32(&version)) return FrameError(what, "truncated version");
  if (!reader.ReadU64(&payload_len)) {
    return FrameError(what, "truncated length");
  }
  if (payload_len > reader.remaining() ||
      reader.remaining() - static_cast<size_t>(payload_len) <
          kFrameTrailerSize) {
    return FrameError(what, "declared payload exceeds available bytes");
  }
  const size_t payload_start = reader.position();
  reader.Skip(static_cast<size_t>(payload_len));
  uint32_t stored_crc = 0;
  reader.ReadU32(&stored_crc);  // in bounds per the check above
  // The reader is now past the whole frame, so on a CRC mismatch a container
  // parser can still resynchronize on the next section.
  const std::string_view covered = reader.Window(
      frame_start, payload_start + static_cast<size_t>(payload_len));
  if (Crc32c(covered) != stored_crc) return FrameError(what, "crc mismatch");
  return FrameView{
      version,
      reader.Window(payload_start,
                    payload_start + static_cast<size_t>(payload_len))};
}

}  // namespace streamhist
