#ifndef STREAMHIST_UTIL_FRAMING_H_
#define STREAMHIST_UTIL_FRAMING_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/result.h"

namespace streamhist {

/// CRC32C (Castagnoli) over `bytes`, chained through `crc` (pass the previous
/// return value to extend a running checksum). The same polynomial iSCSI and
/// ext4 use; chosen over CRC32 for its better burst-error detection.
uint32_t Crc32c(std::string_view bytes, uint32_t crc = 0);

/// Little-endian byte-string builder for the framed serialization format
/// shared by every synopsis (the generalization of histogram_io's original
/// ad-hoc writer). All integers are fixed-width little-endian; doubles are
/// IEEE-754 bit patterns.
class ByteWriter {
 public:
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutF64(double v);
  /// Exact long-double round-trip as a (hi, lo) double pair: hi carries the
  /// leading 53 mantissa bits, lo the residual. Portable across libcs that
  /// differ in long-double width, unlike a raw memcpy of the 16-byte slot
  /// (whose padding bytes are also indeterminate).
  void PutLongDouble(long double v);
  void PutBool(bool v);
  /// u64 length followed by the raw bytes — for nested sub-blobs.
  void PutLengthPrefixed(std::string_view bytes);
  void Append(std::string_view bytes) { out_.append(bytes); }

  size_t size() const { return out_.size(); }
  const std::string& bytes() const& { return out_; }
  std::string TakeBytes() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked little-endian reader over a byte view. Every Read returns
/// false on underrun instead of touching out-of-range memory, so hostile
/// bytes can never fault the parser.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  bool ReadU32(uint32_t* v);
  bool ReadU64(uint64_t* v);
  bool ReadI64(int64_t* v);
  bool ReadF64(double* v);
  bool ReadLongDouble(long double* v);
  bool ReadBool(bool* v);
  /// Reads a u64 length then a view of that many bytes (no copy).
  bool ReadLengthPrefixed(std::string_view* out);
  /// Advances past `n` bytes; false (without moving) on underrun.
  bool Skip(size_t n);
  /// A view of absolute byte range [begin, end) of the underlying buffer.
  std::string_view Window(size_t begin, size_t end) const;

  size_t position() const { return pos_; }
  size_t remaining() const { return bytes_.size() - pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }
  /// The unread tail (does not advance).
  std::string_view Rest() const { return bytes_.substr(pos_); }

 private:
  bool Read(void* out, size_t n);

  std::string_view bytes_;
  size_t pos_ = 0;
};

/// A self-delimiting frame, the unit of every serialized synopsis and of
/// checkpoint-file sections:
///
///   magic u32 | version u32 | payload_len u64 | payload | crc32c u32
///
/// The CRC covers magic..payload, so any single-bit flip anywhere in the
/// frame (header included) is detected.
std::string WrapFrame(uint32_t magic, uint32_t version,
                      std::string_view payload);

struct FrameView {
  uint32_t version = 0;
  std::string_view payload;
};

/// Parses and validates a frame that must span `bytes` exactly (trailing
/// bytes are an error). Checks magic, structural bounds, and the CRC; the
/// version is returned for the caller to dispatch on. `what` names the
/// expected content in error messages ("histogram", "checkpoint", ...).
Result<FrameView> UnwrapFrame(std::string_view bytes, uint32_t magic,
                              const char* what);

/// Streamed variant for container files: reads one frame at the reader's
/// position and advances past it. On a CRC mismatch the reader is still
/// advanced past the frame when the declared length is in bounds, so the
/// caller can skip a corrupted section and resynchronize on the next one.
Result<FrameView> ReadFrame(ByteReader& reader, uint32_t magic,
                            const char* what);

}  // namespace streamhist

#endif  // STREAMHIST_UTIL_FRAMING_H_
