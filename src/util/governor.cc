#include "src/util/governor.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <sstream>

#include "src/util/fault.h"

namespace streamhist {
namespace governor {

namespace {

std::atomic<int64_t> g_budget{-1};  // -1: not yet read from the environment
std::atomic<int64_t> g_used{0};
std::atomic<int64_t> g_peak{0};

int64_t BudgetFromEnv() {
  const char* env = std::getenv("STREAMHIST_MEM_BUDGET");
  if (env == nullptr || *env == '\0') return 0;
  const int64_t parsed = ParseByteSize(env);
  return parsed > 0 ? parsed : 0;
}

void NotePeak(int64_t used_now) {
  int64_t peak = g_peak.load(std::memory_order_relaxed);
  while (used_now > peak &&
         !g_peak.compare_exchange_weak(peak, used_now,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

int64_t Budget() {
  int64_t budget = g_budget.load(std::memory_order_relaxed);
  if (budget >= 0) return budget;
  budget = BudgetFromEnv();
  // First caller wins; a raced SetBudgetForTest would have stored >= 0.
  int64_t expected = -1;
  g_budget.compare_exchange_strong(expected, budget,
                                   std::memory_order_relaxed);
  return g_budget.load(std::memory_order_relaxed);
}

void SetBudgetForTest(int64_t bytes) {
  g_budget.store(bytes >= 0 ? bytes : 0, std::memory_order_relaxed);
}

int64_t Used() { return g_used.load(std::memory_order_relaxed); }

int64_t Peak() { return g_peak.load(std::memory_order_relaxed); }

bool TryCharge(int64_t bytes) {
  if (bytes < 0) return false;
  if (fault::Triggered("governor.oom")) return false;
  const int64_t budget = Budget();
  int64_t used = g_used.load(std::memory_order_relaxed);
  while (true) {
    if (budget > 0 && used + bytes > budget) return false;
    if (g_used.compare_exchange_weak(used, used + bytes,
                                     std::memory_order_relaxed)) {
      NotePeak(used + bytes);
      return true;
    }
  }
}

void AdjustCharge(int64_t delta) {
  const int64_t now = g_used.fetch_add(delta, std::memory_order_relaxed) +
                      delta;
  NotePeak(now);
}

void Release(int64_t bytes) {
  g_used.fetch_sub(bytes, std::memory_order_relaxed);
}

int64_t ParseByteSize(const std::string& spec) {
  if (spec.empty()) return -1;
  size_t end = spec.size();
  int64_t multiplier = 1;
  const char suffix =
      static_cast<char>(std::toupper(static_cast<unsigned char>(spec.back())));
  if (suffix == 'K' || suffix == 'M' || suffix == 'G') {
    multiplier = suffix == 'K'   ? int64_t{1} << 10
                 : suffix == 'M' ? int64_t{1} << 20
                                 : int64_t{1} << 30;
    --end;
  }
  if (end == 0) return -1;
  int64_t value = 0;
  for (size_t i = 0; i < end; ++i) {
    if (!std::isdigit(static_cast<unsigned char>(spec[i]))) return -1;
    value = value * 10 + (spec[i] - '0');
    if (value > (int64_t{1} << 53)) return -1;  // absurd; also overflow guard
  }
  return value * multiplier;
}

std::string FormatBytes(int64_t bytes) {
  if (bytes <= 0) return "unlimited";
  std::ostringstream os;
  os << bytes;
  const double mib = static_cast<double>(bytes) / (1024.0 * 1024.0);
  os.precision(1);
  os << " (" << std::fixed << mib << " MiB)";
  return os.str();
}

}  // namespace governor
}  // namespace streamhist
