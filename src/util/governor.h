#ifndef STREAMHIST_UTIL_GOVERNOR_H_
#define STREAMHIST_UTIL_GOVERNOR_H_

#include <cstdint>
#include <string>

namespace streamhist {
namespace governor {

/// Process-wide synopsis-memory accounting. Synopses (through
/// ManagedStream) charge what they hold and release it on destruction; new
/// work — a CREATE, a DP scratch allocation — asks TryCharge first and is
/// refused when it would push usage past the budget. Existing state is never
/// evicted: the budget gates admission, not residency, so a refusal always
/// has a cheaper fallback (the degradation ladder's next rung).
///
/// The budget comes from STREAMHIST_MEM_BUDGET (bytes, optional K/M/G
/// suffix, parsed once at first use); 0 / unset means unlimited. Tests
/// override it with SetBudgetForTest.
///
/// Fault point `governor.oom` (util/fault.h) makes TryCharge refuse
/// deterministically, which is how tests drive the out-of-memory path of
/// every ladder rung without a real allocation storm.

/// Configured budget in bytes; 0 means unlimited.
int64_t Budget();

/// Overrides the budget (0 = unlimited). Test-only; not thread-safe against
/// concurrent TryCharge races on the boundary, which tests don't do.
void SetBudgetForTest(int64_t bytes);

/// Bytes currently charged.
int64_t Used();

/// High-water mark of Used() since process start (or the last reset).
int64_t Peak();

/// Attempts to charge `bytes` (>= 0) against the budget. Refuses — charging
/// nothing — when the fault point `governor.oom` is armed or when
/// Used() + bytes would exceed a nonzero budget.
bool TryCharge(int64_t bytes);

/// Adjusts the charge unconditionally (delta may be negative). Used for
/// state that already exists and must stay accounted even past the budget —
/// admission control happens earlier, at TryCharge time.
void AdjustCharge(int64_t delta);

/// Releases a prior charge.
void Release(int64_t bytes);

/// RAII for fallible scratch charges (DP tables): charges on construction,
/// releases on destruction; ok() says whether the charge was admitted.
class ScopedCharge {
 public:
  explicit ScopedCharge(int64_t bytes)
      : bytes_(bytes), ok_(TryCharge(bytes)) {}
  ~ScopedCharge() {
    if (ok_) Release(bytes_);
  }
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;

  bool ok() const { return ok_; }

 private:
  int64_t bytes_;
  bool ok_;
};

/// "512", "64K", "16M", "2G" -> bytes; negative on parse failure.
int64_t ParseByteSize(const std::string& spec);

/// Human-oriented rendering ("unlimited", "1048576 (1.0 MiB)").
std::string FormatBytes(int64_t bytes);

}  // namespace governor
}  // namespace streamhist

#endif  // STREAMHIST_UTIL_GOVERNOR_H_
