#ifndef STREAMHIST_UTIL_LOGGING_H_
#define STREAMHIST_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace streamhist {
namespace internal_logging {

/// Accumulates a fatal-error message and aborts the process when destroyed.
/// Used only via the STREAMHIST_CHECK* macros below.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " CHECK failed: " << condition << " ";
  }

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  [[noreturn]] ~FatalMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  FatalMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Swallows a streamed message in the disabled branch of DCHECK.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace streamhist

/// Aborts with a message when `condition` is false. For programming errors
/// (contract violations), not for data-dependent failures — those return
/// Status. Supports streaming extra context:
///   STREAMHIST_CHECK(i < n) << "index " << i;
#define STREAMHIST_CHECK(condition)                                            \
  switch (0)                                                                   \
  case 0:                                                                      \
  default:                                                                     \
    if (condition)                                                             \
      ;                                                                        \
    else                                                                       \
      ::streamhist::internal_logging::FatalMessage(__FILE__, __LINE__,         \
                                                   #condition)

#define STREAMHIST_CHECK_EQ(a, b) STREAMHIST_CHECK((a) == (b))
#define STREAMHIST_CHECK_NE(a, b) STREAMHIST_CHECK((a) != (b))
#define STREAMHIST_CHECK_LT(a, b) STREAMHIST_CHECK((a) < (b))
#define STREAMHIST_CHECK_LE(a, b) STREAMHIST_CHECK((a) <= (b))
#define STREAMHIST_CHECK_GT(a, b) STREAMHIST_CHECK((a) > (b))
#define STREAMHIST_CHECK_GE(a, b) STREAMHIST_CHECK((a) >= (b))

/// Debug-only CHECK; compiled out (condition not evaluated) in NDEBUG builds.
#ifndef NDEBUG
#define STREAMHIST_DCHECK(condition) STREAMHIST_CHECK(condition)
#else
#define STREAMHIST_DCHECK(condition) \
  while (false) ::streamhist::internal_logging::NullStream()
#endif

#endif  // STREAMHIST_UTIL_LOGGING_H_
