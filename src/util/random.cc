#include "src/util/random.h"

#include <cmath>

#include "src/util/logging.h"

namespace streamhist {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Random::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Random::UniformUint64(uint64_t bound) {
  STREAMHIST_CHECK_GT(bound, 0u);
  // Rejection sampling: accept only values below the largest multiple of
  // `bound` to avoid modulo bias.
  const uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Random::UniformInt(int64_t lo, int64_t hi) {
  STREAMHIST_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(UniformUint64(span));
}

double Random::UniformDouble() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Random::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Random::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  while (u1 <= 1e-300) u1 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Random::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Random::Exponential(double lambda) {
  STREAMHIST_CHECK_GT(lambda, 0.0);
  double u = UniformDouble();
  while (u <= 0.0) u = UniformDouble();
  return -std::log(u) / lambda;
}

bool Random::Bernoulli(double p) { return UniformDouble() < p; }

int64_t Random::Zipf(int64_t n, double s) {
  STREAMHIST_CHECK_GT(n, 0);
  STREAMHIST_CHECK_GE(s, 0.0);
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.assign(static_cast<size_t>(n), 0.0);
    double total = 0.0;
    for (int64_t k = 1; k <= n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k), s);
      zipf_cdf_[static_cast<size_t>(k - 1)] = total;
    }
    for (auto& c : zipf_cdf_) c /= total;
  }
  const double u = UniformDouble();
  // Binary search for the first CDF entry >= u.
  size_t lo = 0, hi = zipf_cdf_.size() - 1;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (zipf_cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return static_cast<int64_t>(lo) + 1;
}

}  // namespace streamhist
