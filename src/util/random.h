#ifndef STREAMHIST_UTIL_RANDOM_H_
#define STREAMHIST_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace streamhist {

/// Deterministic, seedable pseudo-random generator (xoshiro256**) with the
/// variate helpers the data generators and workloads need. Not
/// cryptographically secure; chosen for speed and reproducibility across
/// platforms (unlike std::mt19937 distributions, whose output is
/// implementation-defined for std::*_distribution).
class Random {
 public:
  /// Seeds the state from `seed` via SplitMix64 so that nearby seeds give
  /// unrelated streams.
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform on [0, 2^64).
  uint64_t NextUint64();

  /// Uniform on [0, bound). bound must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  uint64_t UniformUint64(uint64_t bound);

  /// Uniform integer on [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform real on [0, 1).
  double UniformDouble();

  /// Uniform real on [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box-Muller (cached second variate).
  double Gaussian();

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Exponential with the given rate lambda (> 0).
  double Exponential(double lambda);

  /// Bernoulli trial with success probability p in [0, 1].
  bool Bernoulli(double p);

  /// Zipf-distributed rank on [1, n] with skew parameter s >= 0 (s == 0 is
  /// uniform). Uses inverse-CDF over precomputed weights when n is small and
  /// rejection-inversion otherwise; this implementation precomputes, so
  /// repeated calls with the same (n, s) are cheap after the first.
  int64_t Zipf(int64_t n, double s);

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(UniformUint64(i));
      std::swap(values[i - 1], values[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;

  // Cached Zipf CDF for the last (n, s) pair used.
  int64_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace streamhist

#endif  // STREAMHIST_UTIL_RANDOM_H_
