#ifndef STREAMHIST_UTIL_RESULT_H_
#define STREAMHIST_UTIL_RESULT_H_

#include <optional>
#include <utility>

#include "src/util/logging.h"
#include "src/util/status.h"

namespace streamhist {

/// Either a value of type T or an error Status — the return type of fallible
/// factories (e.g. FixedWindowHistogram::Create). Accessing the value of an
/// errored Result is a checked fatal error, never undefined behavior.
template <typename T>
class Result {
 public:
  /// Implicit from a value: allows `return some_t;`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  /// Implicit from an error status: allows `return Status::InvalidArgument(...)`.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    STREAMHIST_CHECK(!status_.ok())
        << "Result constructed from an OK status without a value";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; fatal if this Result holds an error.
  const T& value() const& {
    STREAMHIST_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    STREAMHIST_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    STREAMHIST_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // ok() iff value_ holds a value.
};

/// Unwraps a Result into `lhs`, propagating the error out of the enclosing
/// function.
#define STREAMHIST_ASSIGN_OR_RETURN(lhs, expr)     \
  auto STREAMHIST_CONCAT_(_res_, __LINE__) = (expr);       \
  if (!STREAMHIST_CONCAT_(_res_, __LINE__).ok())           \
    return STREAMHIST_CONCAT_(_res_, __LINE__).status();   \
  lhs = std::move(STREAMHIST_CONCAT_(_res_, __LINE__)).value()

#define STREAMHIST_CONCAT_IMPL_(a, b) a##b
#define STREAMHIST_CONCAT_(a, b) STREAMHIST_CONCAT_IMPL_(a, b)

}  // namespace streamhist

#endif  // STREAMHIST_UTIL_RESULT_H_
