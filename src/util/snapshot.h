#ifndef STREAMHIST_UTIL_SNAPSHOT_H_
#define STREAMHIST_UTIL_SNAPSHOT_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <utility>

namespace streamhist {

/// RCU-style single-writer/multi-reader publication cell: the writer builds a
/// fresh immutable `T` off to the side and `Publish`es it by swapping in the
/// owning `shared_ptr`; readers `Acquire` the current version and keep it
/// alive for as long as they hold the returned pointer, no matter how many
/// times the writer republishes or even destroys the cell's owner in the
/// meantime.
///
/// This is the concurrency primitive behind the engine's snapshot isolation:
/// a reader never sees a half-updated `T` (it only ever dereferences a fully
/// constructed, never-again-mutated object), and a writer never blocks on
/// readers (old versions are reclaimed by the last reader's shared_ptr
/// release — the grace period of classic RCU, paid for with refcounting
/// instead of epoch tracking).
///
/// The pointer exchange is guarded by a shared_mutex held only for the
/// shared_ptr copy/swap (a few instructions), never across construction or
/// destruction of a version, so the critical section is bounded and
/// independent of `T`'s size. A std::atomic<std::shared_ptr> would express
/// the same thing, but libstdc++'s implementation is an internal spinlock
/// whose lock-bit protocol ThreadSanitizer cannot see through (GCC 12/13),
/// and the TSan CI job gates; the shared_mutex is equivalently cheap on this
/// path and fully TSan-visible.
template <typename T>
class SnapshotCell {
 public:
  using Ptr = std::shared_ptr<const T>;

  SnapshotCell() = default;
  explicit SnapshotCell(Ptr initial) : cell_(std::move(initial)) {}

  // The cell is a synchronization point with a stable address; copying or
  // moving it would silently fork the readers from the writer.
  SnapshotCell(const SnapshotCell&) = delete;
  SnapshotCell& operator=(const SnapshotCell&) = delete;

  /// The current version (null until the first Publish when default
  /// constructed). Safe from any thread; the returned pointer pins the
  /// version for the caller's lifetime of use.
  Ptr Acquire() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return cell_;
  }

  /// Replaces the current version. Single writer at a time (the engine holds
  /// the per-stream writer mutex); readers racing this get either the old or
  /// the new version, never a mix. The displaced version is released outside
  /// the lock: if this writer holds the last reference, `T`'s destructor
  /// must not run while readers are blocked out.
  void Publish(Ptr next) {
    Ptr displaced;
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      displaced.swap(cell_);
      cell_ = std::move(next);
    }
  }

 private:
  mutable std::shared_mutex mu_;
  Ptr cell_;
};

}  // namespace streamhist

#endif  // STREAMHIST_UTIL_SNAPSHOT_H_
