#include "src/util/status.h"

namespace streamhist {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kReadOnly:
      return "ReadOnly";
    case StatusCode::kOverloaded:
      return "Overloaded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace streamhist
