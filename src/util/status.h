#ifndef STREAMHIST_UTIL_STATUS_H_
#define STREAMHIST_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace streamhist {

/// Coarse error taxonomy for fallible operations. The library does not use
/// exceptions; fallible construction and I/O return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kIOError,
  kInternal,
  kCancelled,
  kResourceExhausted,
  /// The engine is a read replica: mutating verbs are refused here and must
  /// go to the primary (wire token "READONLY").
  kReadOnly,
  /// The server is shedding this request to protect service quality — e.g.
  /// a replica whose replication lag exceeds its staleness bound (wire
  /// token "OVERLOADED", matching the front-end's admission-control code).
  kOverloaded,
};

/// Returns a stable human-readable name for a StatusCode ("Ok",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Value-semantic success/error indicator, modeled on absl::Status /
/// arrow::Status. An ok status carries no message; error statuses carry a
/// code and a free-form message.
class Status {
 public:
  /// Constructs an ok status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. A kOk code with a
  /// message is normalized to a plain ok status.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    if (code_ == StatusCode::kOk) message_.clear();
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status ReadOnly(std::string msg) {
    return Status(StatusCode::kReadOnly, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates an error Status out of the enclosing function.
#define STREAMHIST_RETURN_NOT_OK(expr)                   \
  do {                                                   \
    ::streamhist::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                           \
  } while (false)

}  // namespace streamhist

#endif  // STREAMHIST_UTIL_STATUS_H_
