#include "src/util/thread_pool.h"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <utility>

#include "src/util/logging.h"

namespace streamhist {

namespace {

thread_local bool tls_in_worker = false;

std::mutex& GlobalPoolMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

// Guarded by GlobalPoolMutex(). The pool pointer stays reachable so workers
// blocked in their condition wait at process exit are never torn down from a
// static destructor (and LSan sees the allocation as reachable).
int g_thread_count = 0;  // 0 = not yet resolved
ThreadPool* g_pool = nullptr;

// Pool (if any) to run a ParallelFor on, under the current thread count.
ThreadPool* GlobalPoolLocked(int num_threads) {
  if (num_threads <= 1) return nullptr;
  if (g_pool == nullptr || g_pool->num_threads() != num_threads) {
    delete g_pool;
    g_pool = new ThreadPool(num_threads);
  }
  return g_pool;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  STREAMHIST_CHECK_GE(num_threads, 1);
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    STREAMHIST_CHECK(!stop_);
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::InWorkerThread() { return tls_in_worker; }

void ThreadPool::WorkerLoop() {
  tls_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

int DefaultThreadCount() {
  const char* env = std::getenv("STREAMHIST_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 4096) {
      return static_cast<int>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int ThreadCount() {
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  if (g_thread_count == 0) g_thread_count = DefaultThreadCount();
  return g_thread_count;
}

void SetThreadCount(int n) {
  STREAMHIST_CHECK_GE(n, 1);
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  g_thread_count = n;
  if (g_pool != nullptr && g_pool->num_threads() != n) {
    delete g_pool;
    g_pool = nullptr;  // rebuilt lazily at the right size
  }
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body) {
  STREAMHIST_CHECK_GE(grain, 1);
  const int64_t range = end - begin;
  if (range <= 0) return;

  // The partition must not depend on the thread count, so that bodies which
  // (incorrectly but harmlessly) carry per-chunk state still reproduce: chunk
  // size is max(grain, range/kMaxChunks) always.
  constexpr int64_t kMaxChunks = 64;
  const int64_t chunk =
      std::max(grain, (range + kMaxChunks - 1) / kMaxChunks);
  const int64_t num_chunks = (range + chunk - 1) / chunk;

  const int num_threads = ThreadCount();
  if (num_threads <= 1 || num_chunks <= 1 || ThreadPool::InWorkerThread()) {
    body(begin, end);
    return;
  }

  ThreadPool* pool;
  {
    std::lock_guard<std::mutex> lock(GlobalPoolMutex());
    if (g_thread_count == 0) g_thread_count = DefaultThreadCount();
    pool = GlobalPoolLocked(g_thread_count);
  }
  if (pool == nullptr) {
    body(begin, end);
    return;
  }

  struct SharedState {
    std::mutex mu;
    std::condition_variable done;
    int64_t remaining;
    std::vector<std::exception_ptr> errors;
  };
  auto state = std::make_shared<SharedState>();
  state->remaining = num_chunks;
  state->errors.resize(static_cast<size_t>(num_chunks));

  for (int64_t c = 0; c < num_chunks; ++c) {
    const int64_t chunk_begin = begin + c * chunk;
    const int64_t chunk_end = std::min(end, chunk_begin + chunk);
    pool->Submit([state, &body, c, chunk_begin, chunk_end] {
      try {
        body(chunk_begin, chunk_end);
      } catch (...) {
        state->errors[static_cast<size_t>(c)] = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(state->mu);
      if (--state->remaining == 0) state->done.notify_all();
    });
  }
  std::vector<std::exception_ptr> errors;
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done.wait(lock, [&state] { return state->remaining == 0; });
    // Take the slots: exception objects must only ever be destroyed on this
    // thread. A worker's task lambda can drop the last SharedState reference
    // after a rethrow below has already unwound this frame, and freeing an
    // exception from the worker then races with the catch handler still
    // holding it (libstdc++'s exception_ptr refcount is opaque to TSan).
    errors.swap(state->errors);
  }
  // Deterministic propagation: the lowest-chunk failure wins regardless of
  // which worker hit it first.
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace streamhist
