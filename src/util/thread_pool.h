#ifndef STREAMHIST_UTIL_THREAD_POOL_H_
#define STREAMHIST_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace streamhist {

/// A fixed-size, work-stealing-free thread pool. Tasks run in FIFO order of
/// submission; there is no per-worker queue and no stealing, so the set of
/// tasks a call executes — and therefore every result computed from disjoint
/// per-task state — is independent of scheduling. Used via ParallelFor below;
/// exposed directly for lifecycle tests and custom batch jobs.
class ThreadPool {
 public:
  /// Starts `num_threads` (>= 1) workers immediately.
  explicit ThreadPool(int num_threads);

  /// Drains nothing: outstanding tasks still run, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(threads_.size()); }

  /// Enqueues one task. Tasks must not block on other tasks submitted to the
  /// same pool (no nested waiting) — ParallelFor enforces this by running
  /// nested loops inline on the worker thread.
  void Submit(std::function<void()> task);

  /// True when called from one of this process's pool worker threads (any
  /// pool). The inline-execution guard for nested parallelism.
  static bool InWorkerThread();

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
};

/// The process-wide degree of parallelism used by ParallelFor. Resolution
/// order: the last SetThreadCount() call, else the STREAMHIST_THREADS
/// environment variable, else std::thread::hardware_concurrency().
int ThreadCount();

/// Overrides the degree of parallelism (n >= 1; 1 disables threading). Not
/// safe to call concurrently with a running ParallelFor: the previous global
/// pool is torn down.
void SetThreadCount(int n);

/// The default ThreadCount() before any SetThreadCount() override: the value
/// of STREAMHIST_THREADS when set to a valid positive integer, otherwise
/// hardware_concurrency() (>= 1). Re-reads the environment on every call.
int DefaultThreadCount();

/// Deterministic data-parallel loop: invokes `body(chunk_begin, chunk_end)`
/// over a fixed partition of [begin, end) whose chunk boundaries depend only
/// on the range and `grain` — never on thread scheduling — so any body that
/// writes disjoint per-index state produces bit-identical results for every
/// ThreadCount(), including 1. Blocks until all chunks finish; rethrows the
/// first (lowest-chunk) exception. Ranges shorter than `grain`, ThreadCount()
/// == 1, and calls from inside a pool worker all run inline on the caller's
/// thread (the nested-submit deadlock guard).
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body);

}  // namespace streamhist

#endif  // STREAMHIST_UTIL_THREAD_POOL_H_
