#include "src/util/timer.h"

// Timer is header-only today; this translation unit exists so the build
// fails loudly if the header stops being self-contained.
