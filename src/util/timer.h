#ifndef STREAMHIST_UTIL_TIMER_H_
#define STREAMHIST_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace streamhist {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses.
class Timer {
 public:
  Timer() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Nanoseconds elapsed since construction or the last Restart().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace streamhist

#endif  // STREAMHIST_UTIL_TIMER_H_
