#include "src/util/wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

#include "src/util/fault.h"
#include "src/util/fileio.h"
#include "src/util/framing.h"
#include "src/util/governor.h"

namespace streamhist {
namespace wal {
namespace {

// Segment header frame: payload is the first LSN this segment can hold.
constexpr uint32_t kSegmentMagic = 0x5348574C;  // "SHWL"
constexpr uint32_t kSegmentVersion = 1;
// Record frame: payload is `lsn u64 | caller bytes`.
constexpr uint32_t kRecordMagic = 0x53485752;  // "SHWR"
constexpr uint32_t kRecordVersion = 1;
// framing.h layout: magic u32 | version u32 | payload_len u64 | payload |
// crc32c u32 — a 16-byte head and a 4-byte trailer around the payload.
constexpr size_t kFrameHeadBytes = 16;
constexpr size_t kFrameOverhead = 20;
// Fixed governor charge on top of the active segment: scan buffer slack
// and bookkeeping.
constexpr int64_t kGovernorSlackBytes = 64 * 1024;

std::string Errno(const char* op, const std::string& path) {
  std::ostringstream os;
  os << op << " failed for '" << path << "': " << std::strerror(errno);
  return os.str();
}

std::string SegmentPath(const std::string& dir, int64_t first_lsn) {
  char name[40];
  std::snprintf(name, sizeof(name), "wal-%020" PRId64 ".seg", first_lsn);
  return dir + "/" + name;
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Status::IOError(Errno("open", dir));
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IOError(Errno("fsync", dir));
  return Status::OK();
}

Status WriteAllFd(int fd, std::string_view bytes, const std::string& path) {
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno("write", path));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t LoadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// Lists wal-*.seg files in `dir`, sorted by name (zero-padded first LSN, so
// name order is LSN order).
Result<std::vector<std::string>> ListSegments(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Status::IOError(Errno("opendir", dir));
  std::vector<std::string> names;
  while (struct dirent* ent = ::readdir(d)) {
    const std::string_view name(ent->d_name);
    if (name.size() > 8 && name.substr(0, 4) == "wal-" &&
        name.substr(name.size() - 4) == ".seg") {
      names.emplace_back(name);
    }
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

// Shared scan core behind Open (repair=true), Scan, and Replay. Walks every
// segment in LSN order with a hand-rolled frame parser (ReadFrame's resync
// advances even on short frames, which would blur the torn-tail /
// interior-rot distinction this classification depends on):
//
//   * a CRC-bad frame whose head and declared length are intact is interior
//     rot — skipped whole, counted, scan continues (resynchronization);
//   * a structurally short or magic-less tail in the NEWEST segment is the
//     torn footprint of a crashed write — truncated (when `repair`) at the
//     last whole-frame boundary, reported, never fatal;
//   * the same damage in a sealed segment abandons the rest of that segment
//     only (there is no trustworthy delimiter to resync on).
//
// A scan therefore never fails on damaged content, only on real I/O errors.
Status ScanImpl(const std::string& dir, bool repair, int64_t from_lsn,
                const Wal::RecordFn* fn, std::vector<SegmentInfo>* segments,
                OpenReport* report) {
  OpenReport out;
  STREAMHIST_ASSIGN_OR_RETURN(std::vector<std::string> names,
                              ListSegments(dir));
  std::vector<SegmentInfo> infos;
  int64_t max_lsn = 0;  // across valid records and segment headers
  for (size_t i = 0; i < names.size(); ++i) {
    const bool last_segment = i + 1 == names.size();
    const std::string path = dir + "/" + names[i];
    STREAMHIST_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
    if (fault::Triggered("wal.replay.corrupt") &&
        bytes.size() > kFrameOverhead) {
      bytes[bytes.size() / 2] ^= 0x10;
    }
    SegmentInfo info;
    info.path = path;
    ++out.segments;
    const char* data = bytes.data();
    const size_t size = bytes.size();
    size_t pos = 0;
    bool at_header = true;
    while (pos < size) {
      const size_t rest = size - pos;
      bool structural = rest < kFrameOverhead;
      uint64_t payload_len = 0;
      if (!structural) {
        const uint32_t magic = LoadU32(data + pos);
        payload_len = LoadU64(data + pos + 8);
        if (magic != (at_header ? kSegmentMagic : kRecordMagic) ||
            payload_len > rest - kFrameOverhead) {
          structural = true;
        }
      }
      if (structural) {
        if (last_segment) {
          out.torn_bytes += static_cast<int64_t>(rest);
          out.tail_truncated = true;
          if (repair) {
            int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
            if (fd < 0) return Status::IOError(Errno("open", path));
            const int rc = ::ftruncate(fd, static_cast<off_t>(pos));
            ::close(fd);
            if (rc != 0) return Status::IOError(Errno("ftruncate", path));
          }
        } else {
          ++out.corrupt_records;
        }
        break;
      }
      const size_t frame_bytes = kFrameOverhead + payload_len;
      const std::string_view covered(data + pos, kFrameHeadBytes + payload_len);
      const uint32_t stored_crc = LoadU32(data + pos + kFrameHeadBytes +
                                          static_cast<size_t>(payload_len));
      const uint32_t version = LoadU32(data + pos + 4);
      const std::string_view payload(data + pos + kFrameHeadBytes,
                                     static_cast<size_t>(payload_len));
      const bool header = at_header;
      at_header = false;
      pos += frame_bytes;
      if (Crc32c(covered) != stored_crc) {
        ++out.corrupt_records;
        continue;
      }
      if (header) {
        ByteReader hp(payload);
        uint64_t first = 0;
        if (version == kSegmentVersion && hp.ReadU64(&first)) {
          info.first_lsn = static_cast<int64_t>(first);
          info.max_lsn = info.first_lsn - 1;
          max_lsn = std::max(max_lsn, info.first_lsn - 1);
        } else {
          ++out.corrupt_records;
        }
        continue;
      }
      ByteReader rp(payload);
      uint64_t lsn = 0;
      if (version != kRecordVersion || !rp.ReadU64(&lsn)) {
        ++out.corrupt_records;
        continue;
      }
      ++out.records;
      const int64_t slsn = static_cast<int64_t>(lsn);
      info.max_lsn = std::max(info.max_lsn, slsn);
      max_lsn = std::max(max_lsn, slsn);
      if (out.first_lsn == 0 || slsn < out.first_lsn) out.first_lsn = slsn;
      if (fn != nullptr && *fn && slsn >= from_lsn) {
        STREAMHIST_RETURN_NOT_OK((*fn)(slsn, rp.Rest()));
      }
    }
    infos.push_back(std::move(info));
  }
  out.next_lsn = max_lsn + 1;
  if (segments != nullptr) *segments = std::move(infos);
  if (report != nullptr) *report = out;
  return Status::OK();
}

}  // namespace

Result<Options> ParsePolicySpec(std::string_view spec) {
  Options options;
  if (spec == "always") {
    options.policy = SyncPolicy::kAlways;
    return options;
  }
  if (spec == "none") {
    options.policy = SyncPolicy::kNone;
    return options;
  }
  const size_t colon = spec.find(':');
  const std::string_view head = spec.substr(0, colon);
  const std::string_view arg = colon == std::string_view::npos
                                   ? std::string_view()
                                   : spec.substr(colon + 1);
  if (head == "bytes") {
    const int64_t n = governor::ParseByteSize(std::string(arg));
    if (n <= 0) {
      return Status::InvalidArgument(
          "wal policy 'bytes:N' needs a positive byte count, got '" +
          std::string(spec) + "'");
    }
    options.policy = SyncPolicy::kBytes;
    options.bytes_threshold = n;
    return options;
  }
  if (head == "interval") {
    int64_t ms = -1;
    std::istringstream in{std::string(arg)};
    if (!(in >> ms) || !in.eof() || ms <= 0) {
      return Status::InvalidArgument(
          "wal policy 'interval:MS' needs a positive millisecond count, "
          "got '" +
          std::string(spec) + "'");
    }
    options.policy = SyncPolicy::kInterval;
    options.interval_ms = ms;
    return options;
  }
  return Status::InvalidArgument(
      "unknown wal policy '" + std::string(spec) +
      "' (want always | bytes:N | interval:MS | none)");
}

std::string PolicySpecString(const Options& options) {
  switch (options.policy) {
    case SyncPolicy::kAlways:
      return "always";
    case SyncPolicy::kNone:
      return "none";
    case SyncPolicy::kBytes:
      return "bytes:" + std::to_string(options.bytes_threshold);
    case SyncPolicy::kInterval:
      return "interval:" + std::to_string(options.interval_ms);
  }
  return "always";
}

std::string OpenReport::ToString() const {
  std::ostringstream os;
  os << "wal: " << records << " record(s) across " << segments
     << " segment(s), next lsn " << next_lsn;
  if (tail_truncated) {
    os << "; torn tail truncated (" << torn_bytes << " bytes)";
  }
  if (corrupt_records > 0) {
    os << "; " << corrupt_records << " corrupt record(s) skipped";
  }
  return os.str();
}

Wal::Wal(std::string dir, const Options& options)
    : dir_(std::move(dir)), options_(options) {}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& dir,
                                       const Options& options,
                                       OpenReport* report) {
  if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
    return Status::IOError(Errno("mkdir", dir));
  }
  const int64_t charge = options.segment_bytes + kGovernorSlackBytes;
  if (!governor::TryCharge(charge)) {
    return Status::ResourceExhausted(
        "wal: governor refused " + governor::FormatBytes(charge) +
        " for segment buffers (budget " +
        governor::FormatBytes(governor::Budget()) + ")");
  }
  std::unique_ptr<Wal> wal(new Wal(dir, options));
  wal->governor_charge_ = charge;
  OpenReport scan;
  STREAMHIST_RETURN_NOT_OK(
      ScanImpl(dir, /*repair=*/true, 0, nullptr, &wal->sealed_, &scan));
  wal->next_lsn_ = scan.next_lsn;
  wal->written_lsn_ = scan.next_lsn - 1;
  wal->durable_lsn_ = scan.next_lsn - 1;
  // Always start a fresh active segment: every pre-existing file is sealed,
  // which keeps the append path free of reopen-and-continue edge cases.
  STREAMHIST_RETURN_NOT_OK(wal->OpenActiveSegment(wal->next_lsn_));
  wal->stats_.segments_created = 1;
  wal->flusher_ = std::thread([w = wal.get()] { w->FlusherMain(); });
  if (report != nullptr) *report = scan;
  return wal;
}

Status Wal::Scan(const std::string& dir, const RecordFn& fn,
                 OpenReport* report) {
  return ScanImpl(dir, /*repair=*/false, 0, fn ? &fn : nullptr, nullptr,
                  report);
}

Status Wal::Replay(int64_t from_lsn, const RecordFn& fn,
                   OpenReport* report) const {
  return ScanImpl(dir_, /*repair=*/false, from_lsn, fn ? &fn : nullptr,
                  nullptr, report);
}

Wal::~Wal() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
    flush_cv_.notify_all();
    durable_cv_.notify_all();
  }
  if (flusher_.joinable()) flusher_.join();
  if (fd_ >= 0) {
    // Best-effort final durability; a failure here has no one to report to
    // (shutdown paths that care call Flush() first for error visibility).
    if (unsynced_bytes_ > 0) ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
  if (governor_charge_ > 0) governor::Release(governor_charge_);
}

Status Wal::OpenActiveSegment(int64_t first_lsn) {
  const std::string path = SegmentPath(dir_, first_lsn);
  const int flags = O_WRONLY | O_CLOEXEC | O_CREAT | O_EXCL;
  int fd = ::open(path.c_str(), flags, 0666);
  if (fd < 0 && errno == EEXIST) {
    // A leftover segment with this exact first LSN holds no live records
    // (a record would have advanced next_lsn past it), so replacing it is
    // always safe. Typical cause: crash right after a rotation wrote only
    // the header.
    if (::unlink(path.c_str()) != 0) {
      return Status::IOError(Errno("unlink", path));
    }
    // The scan sealed that leftover under this very path. Drop the stale
    // entry, or TruncateBefore (its max_lsn is first_lsn - 1, below any
    // floor) would unlink the file we are about to append through — acked
    // records silently diverted into an orphaned inode.
    sealed_.erase(std::remove_if(sealed_.begin(), sealed_.end(),
                                 [&](const SegmentInfo& seg) {
                                   return seg.path == path;
                                 }),
                  sealed_.end());
    fd = ::open(path.c_str(), flags, 0666);
  }
  if (fd < 0) return Status::IOError(Errno("open", path));
  ByteWriter header;
  header.PutU64(static_cast<uint64_t>(first_lsn));
  const std::string frame =
      WrapFrame(kSegmentMagic, kSegmentVersion, header.bytes());
  if (Status s = WriteAllFd(fd, frame, path); !s.ok()) {
    ::close(fd);
    ::unlink(path.c_str());
    return s;
  }
  if (Status s = SyncDir(dir_); !s.ok()) {
    ::close(fd);
    ::unlink(path.c_str());
    return s;
  }
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
  active_path_ = path;
  active_first_lsn_ = first_lsn;
  active_bytes_ = static_cast<int64_t>(frame.size());
  unsynced_bytes_ += static_cast<int64_t>(frame.size());
  return Status::OK();
}

Status Wal::SealAndRotateLocked() {
  if (fault::Triggered("wal.seal")) {
    return Status::IOError("injected fault: wal.seal (segment rotation)");
  }
  // Seal = make the outgoing segment fully durable, so TruncateBefore can
  // reason about sealed segments without consulting fsync state.
  if (::fsync(fd_) != 0) return Status::IOError(Errno("fsync", active_path_));
  ++stats_.fsyncs;
  durable_lsn_ = std::max(durable_lsn_, written_lsn_);
  unsynced_bytes_ = 0;
  // Invalidate any covered_bytes a concurrently unlocked FsyncLocked
  // captured: from here on unsynced_bytes_ counts the NEW segment only.
  ++rotation_epoch_;
  durable_cv_.notify_all();
  const SegmentInfo outgoing{active_path_, active_first_lsn_, written_lsn_};
  // OpenActiveSegment closes the old fd only after the new segment is up,
  // so a failure leaves the current segment writable (retried next append).
  STREAMHIST_RETURN_NOT_OK(OpenActiveSegment(next_lsn_));
  sealed_.push_back(outgoing);
  ++stats_.segments_created;
  return Status::OK();
}

Status Wal::WriteFrameLocked(std::string_view frame) {
  if (fault::Triggered("wal.append.short")) {
    // Persist half the frame, then fail — the torn-write shape a crash or
    // ENOSPC leaves. Roll the file back so the in-memory offset stays true.
    (void)WriteAllFd(fd_, frame.substr(0, frame.size() / 2), active_path_);
    if (::ftruncate(fd_, static_cast<off_t>(active_bytes_)) != 0) {
      return Status::IOError(Errno("ftruncate", active_path_));
    }
    ::lseek(fd_, static_cast<off_t>(active_bytes_), SEEK_SET);
    return Status::IOError("injected fault: wal.append.short (torn write)");
  }
  if (Status s = WriteAllFd(fd_, frame, active_path_); !s.ok()) {
    // Partial progress is possible; roll back to the last record boundary.
    (void)::ftruncate(fd_, static_cast<off_t>(active_bytes_));
    (void)::lseek(fd_, static_cast<off_t>(active_bytes_), SEEK_SET);
    return s;
  }
  active_bytes_ += static_cast<int64_t>(frame.size());
  unsynced_bytes_ += static_cast<int64_t>(frame.size());
  return Status::OK();
}

Result<int64_t> Wal::Append(std::string_view payload) {
  std::unique_lock<std::mutex> lock(mu_);
  if (stop_ || fd_ < 0) return Status::FailedPrecondition("wal is closed");
  if (active_bytes_ >= options_.segment_bytes) {
    STREAMHIST_RETURN_NOT_OK(SealAndRotateLocked());
  }
  const int64_t lsn = next_lsn_;
  ByteWriter body;
  body.PutU64(static_cast<uint64_t>(lsn));
  body.Append(payload);
  const std::string frame =
      WrapFrame(kRecordMagic, kRecordVersion, body.bytes());
  STREAMHIST_RETURN_NOT_OK(WriteFrameLocked(frame));
  next_lsn_ = lsn + 1;
  written_lsn_ = lsn;
  ++stats_.records;
  stats_.bytes += static_cast<int64_t>(frame.size());
  switch (options_.policy) {
    case SyncPolicy::kAlways: {
      requested_lsn_ = std::max(requested_lsn_, lsn);
      ++stats_.sync_waits;
      const int64_t my_error_seq = flush_error_seq_;
      flush_cv_.notify_one();
      durable_cv_.wait(lock, [&] {
        return durable_lsn_ >= lsn || flush_error_seq_ != my_error_seq ||
               stop_;
      });
      if (durable_lsn_ >= lsn) return lsn;
      if (flush_error_seq_ != my_error_seq) return flush_error_;
      return Status::FailedPrecondition("wal closed while awaiting fsync");
    }
    case SyncPolicy::kBytes:
      if (unsynced_bytes_ >= options_.bytes_threshold) {
        requested_lsn_ = std::max(requested_lsn_, written_lsn_);
        flush_cv_.notify_one();
      }
      return lsn;
    case SyncPolicy::kInterval:
    case SyncPolicy::kNone:
      return lsn;
  }
  return lsn;
}

Status Wal::ReadTail(TailCursor* cursor, int64_t max_bytes, TailBatch* out) {
  out->records.clear();
  out->truncated_below = false;
  int64_t emitted_bytes = 0;
  // Bounded segment hops per call; a reader that cannot make progress
  // returns an empty batch and retries rather than spinning here.
  for (int hop = 0; hop < 64; ++hop) {
    int64_t cap = 0;          // durability horizon: never emit beyond it
    int64_t chosen_max = 0;   // the chosen segment's claimed max LSN
    std::string path;
    bool is_active = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (stop_ || fd_ < 0) return Status::FailedPrecondition("wal is closed");
      cap = durable_lsn_;
      if (cursor->next_lsn > cap) return Status::OK();  // caught up
      const int64_t retained_floor =
          sealed_.empty() ? active_first_lsn_ : sealed_.front().first_lsn;
      if (cursor->next_lsn < retained_floor) {
        out->truncated_below = true;
        return Status::OK();
      }
      for (const SegmentInfo& seg : sealed_) {
        if (seg.max_lsn >= cursor->next_lsn) {
          path = seg.path;
          chosen_max = seg.max_lsn;
          break;
        }
      }
      if (path.empty()) {
        path = active_path_;
        chosen_max = written_lsn_;
        is_active = true;
      }
    }
    if (path != cursor->segment_path) {
      cursor->segment_path = path;
      cursor->offset = 0;
    }
    auto bytes_or = ReadFileToString(path);
    if (!bytes_or.ok()) {
      // The segment raced a checkpoint truncation out from under us; the
      // records it held are below the new retention floor.
      out->truncated_below = true;
      return Status::OK();
    }
    const std::string& bytes = bytes_or.value();
    const char* data = bytes.data();
    const size_t size = bytes.size();
    size_t pos = std::min(static_cast<size_t>(cursor->offset), size);
    while (pos < size) {
      const size_t rest = size - pos;
      if (rest < kFrameOverhead) break;
      const uint32_t magic = LoadU32(data + pos);
      const uint64_t payload_len = LoadU64(data + pos + 8);
      if ((magic != kRecordMagic && magic != kSegmentMagic) ||
          payload_len > rest - kFrameOverhead) {
        // Structurally short: an in-flight append's tail (active segment)
        // or abandoned rot (sealed) — either way, stop parsing this file.
        break;
      }
      const size_t frame_bytes = kFrameOverhead + payload_len;
      const std::string_view covered(data + pos,
                                     kFrameHeadBytes + payload_len);
      const uint32_t stored_crc = LoadU32(data + pos + kFrameHeadBytes +
                                          static_cast<size_t>(payload_len));
      const uint32_t version = LoadU32(data + pos + 4);
      const std::string_view payload(data + pos + kFrameHeadBytes,
                                     static_cast<size_t>(payload_len));
      if (Crc32c(covered) != stored_crc || magic == kSegmentMagic) {
        // Headers carry no records; CRC-bad interiors are skipped exactly
        // like Replay's resynchronization skips them.
        pos += frame_bytes;
        cursor->offset = static_cast<int64_t>(pos);
        continue;
      }
      ByteReader rp(payload);
      uint64_t lsn_u = 0;
      if (version != kRecordVersion || !rp.ReadU64(&lsn_u)) {
        pos += frame_bytes;
        cursor->offset = static_cast<int64_t>(pos);
        continue;
      }
      const int64_t lsn = static_cast<int64_t>(lsn_u);
      if (lsn > cap) return Status::OK();  // not durable yet; reread later
      pos += frame_bytes;
      cursor->offset = static_cast<int64_t>(pos);
      if (lsn < cursor->next_lsn) continue;  // already consumed
      out->records.emplace_back(lsn, std::string(rp.Rest()));
      cursor->next_lsn = lsn + 1;
      emitted_bytes += static_cast<int64_t>(frame_bytes);
      if (emitted_bytes >= max_bytes) return Status::OK();
    }
    if (is_active) return Status::OK();  // read everything on disk so far
    // A finished sealed segment may claim LSNs it cannot produce (rot that
    // abandoned its tail, or an AlignNextLsn gap); advance past its claim
    // so the hop cannot re-pick the same file forever.
    cursor->next_lsn = std::max(cursor->next_lsn, chosen_max + 1);
  }
  return Status::OK();
}

Status Wal::AppendAt(int64_t lsn, std::string_view payload) {
  std::unique_lock<std::mutex> lock(mu_);
  if (stop_ || fd_ < 0) return Status::FailedPrecondition("wal is closed");
  if (lsn < next_lsn_) {
    return Status::InvalidArgument(
        "AppendAt lsn " + std::to_string(lsn) + " is below next lsn " +
        std::to_string(next_lsn_));
  }
  if (active_bytes_ >= options_.segment_bytes) {
    STREAMHIST_RETURN_NOT_OK(SealAndRotateLocked());
  }
  ByteWriter body;
  body.PutU64(static_cast<uint64_t>(lsn));
  body.Append(payload);
  const std::string frame =
      WrapFrame(kRecordMagic, kRecordVersion, body.bytes());
  STREAMHIST_RETURN_NOT_OK(WriteFrameLocked(frame));
  next_lsn_ = lsn + 1;
  written_lsn_ = lsn;
  ++stats_.records;
  stats_.bytes += static_cast<int64_t>(frame.size());
  return Status::OK();
}

Status Wal::AlignNextLsn(int64_t lsn) {
  std::unique_lock<std::mutex> lock(mu_);
  if (stop_ || fd_ < 0) return Status::FailedPrecondition("wal is closed");
  if (lsn < next_lsn_) {
    return Status::InvalidArgument(
        "AlignNextLsn cannot move backwards: lsn " + std::to_string(lsn) +
        " < next lsn " + std::to_string(next_lsn_));
  }
  if (lsn == active_first_lsn_ && written_lsn_ < active_first_lsn_) {
    return Status::OK();  // already an empty segment headed exactly there
  }
  next_lsn_ = lsn;
  // LSNs below the floor live in the bootstrap image, not this log; treat
  // them as written-and-durable so resume points (durable + 1) are honest.
  written_lsn_ = std::max(written_lsn_, lsn - 1);
  durable_lsn_ = std::max(durable_lsn_, lsn - 1);
  durable_cv_.notify_all();
  return SealAndRotateLocked();
}

bool Wal::WaitDurable(int64_t lsn, int64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  if (durable_lsn_ >= lsn) return true;
  if (stop_) return false;
  const int64_t target = std::min(lsn, written_lsn_);
  if (target > requested_lsn_) {
    requested_lsn_ = target;
    flush_cv_.notify_one();
  }
  if (timeout_ms <= 0) return false;
  durable_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                       [&] { return durable_lsn_ >= lsn || stop_; });
  return durable_lsn_ >= lsn;
}

int64_t Wal::first_retained_lsn() const {
  std::unique_lock<std::mutex> lock(mu_);
  return sealed_.empty() ? active_first_lsn_ : sealed_.front().first_lsn;
}

Status Wal::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  const int64_t target = written_lsn_;
  if (durable_lsn_ >= target) return Status::OK();
  if (stop_) return Status::FailedPrecondition("wal is closed");
  requested_lsn_ = std::max(requested_lsn_, target);
  const int64_t my_error_seq = flush_error_seq_;
  flush_cv_.notify_one();
  durable_cv_.wait(lock, [&] {
    return durable_lsn_ >= target || flush_error_seq_ != my_error_seq || stop_;
  });
  if (durable_lsn_ >= target) return Status::OK();
  if (flush_error_seq_ != my_error_seq) return flush_error_;
  return Status::FailedPrecondition("wal closed while awaiting fsync");
}

void Wal::FlusherMain() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    auto wakeup = [&] {
      return stop_ || requested_lsn_ > durable_lsn_ ||
             (options_.policy == SyncPolicy::kBytes &&
              unsynced_bytes_ >= options_.bytes_threshold);
    };
    if (options_.policy == SyncPolicy::kInterval) {
      flush_cv_.wait_for(lock,
                         std::chrono::milliseconds(options_.interval_ms),
                         wakeup);
    } else {
      flush_cv_.wait(lock, wakeup);
    }
    if (stop_) break;
    const bool want =
        requested_lsn_ > durable_lsn_ ||
        (options_.policy == SyncPolicy::kBytes &&
         unsynced_bytes_ >= options_.bytes_threshold) ||
        (options_.policy == SyncPolicy::kInterval && unsynced_bytes_ > 0);
    if (!want) continue;
    if (const Status s = FsyncLocked(lock); !s.ok() && !stop_) {
      // Back off so a persistently failing fsync can't spin the flusher;
      // waiters were already released with the error.
      flush_cv_.wait_for(lock, std::chrono::milliseconds(10));
    }
  }
}

Status Wal::FsyncLocked(std::unique_lock<std::mutex>& lock) {
  const int64_t target = written_lsn_;
  if (target <= durable_lsn_) return Status::OK();
  // fsync outside the lock so concurrent appenders keep filling the next
  // group — this is what makes the commit a *group* commit. The dup'd fd
  // stays valid across a concurrent rotation (which closes fd_), and every
  // record <= target is in the file behind it (rotation itself fsyncs).
  const int dup_fd = ::dup(fd_);
  if (dup_fd < 0) {
    flush_error_ = Status::IOError(Errno("dup", active_path_));
    ++flush_error_seq_;
    durable_cv_.notify_all();
    return flush_error_;
  }
  const int64_t covered_bytes = unsynced_bytes_;
  const int64_t epoch = rotation_epoch_;
  lock.unlock();
  Status result = Status::OK();
  if (fault::Triggered("wal.fsync")) {
    result = Status::IOError("injected fault: wal.fsync (fsync failed)");
  } else if (::fsync(dup_fd) != 0) {
    result = Status::IOError(Errno("fsync", active_path_));
  }
  ::close(dup_fd);
  lock.lock();
  if (result.ok()) {
    ++stats_.fsyncs;
    durable_lsn_ = std::max(durable_lsn_, target);
    if (rotation_epoch_ == epoch) {
      // No rotation raced the unlocked fsync, so covered_bytes still
      // describes bytes of the same segment; subtract what we synced.
      // After a rotation the counter was reset and now tracks the new
      // segment's un-fsynced bytes — subtracting stale covered_bytes
      // would mark those as synced and starve the bytes:N policy.
      unsynced_bytes_ = std::max<int64_t>(0, unsynced_bytes_ - covered_bytes);
    }
    durable_cv_.notify_all();
  } else {
    flush_error_ = result;
    ++flush_error_seq_;
    durable_cv_.notify_all();
  }
  return result;
}

Status Wal::TruncateBefore(int64_t lsn) {
  std::unique_lock<std::mutex> lock(mu_);
  bool any = false;
  std::vector<SegmentInfo> keep;
  Status first_error = Status::OK();
  for (SegmentInfo& seg : sealed_) {
    if (seg.max_lsn < lsn) {
      if (::unlink(seg.path.c_str()) != 0 && errno != ENOENT) {
        if (first_error.ok()) {
          first_error = Status::IOError(Errno("unlink", seg.path));
        }
        keep.push_back(std::move(seg));
        continue;
      }
      ++stats_.segments_deleted;
      any = true;
    } else {
      keep.push_back(std::move(seg));
    }
  }
  sealed_ = std::move(keep);
  if (any) {
    if (Status s = SyncDir(dir_); !s.ok() && first_error.ok()) {
      first_error = s;
    }
  }
  return first_error;
}

int64_t Wal::durable_lsn() const {
  std::unique_lock<std::mutex> lock(mu_);
  return durable_lsn_;
}

int64_t Wal::next_lsn() const {
  std::unique_lock<std::mutex> lock(mu_);
  return next_lsn_;
}

StatsSnapshot Wal::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  StatsSnapshot out = stats_;
  out.durable_lsn = durable_lsn_;
  out.next_lsn = next_lsn_;
  return out;
}

}  // namespace wal
}  // namespace streamhist
