#ifndef STREAMHIST_UTIL_WAL_H_
#define STREAMHIST_UTIL_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/util/result.h"
#include "src/util/status.h"

namespace streamhist {
namespace wal {

/// Segmented write-ahead log of CRC32C-framed records with monotone LSNs
/// and group commit. The WAL knows nothing about what a record means: the
/// payload is an opaque byte string supplied by the caller (the engine's
/// record codec lives in src/engine/wal_records.h), so the format can carry
/// future record kinds — RETRACT/delta updates per Ganguly's update-stream
/// summaries — without touching this layer.
///
/// On disk a log is a directory of segment files `wal-<first_lsn>.seg`
/// (20-digit zero-padded first LSN, so lexicographic order is LSN order).
/// A segment is a header frame followed by record frames, each a
/// src/util/framing frame:
///
///   header: magic "SHWL" v1, payload = first_lsn u64
///   record: magic "SHWR" v1, payload = lsn u64 | caller bytes
///
/// Open() scans every retained segment, truncates a torn tail (a partial
/// frame at the end of the newest segment — the footprint of a crash
/// mid-write) at the last whole-record boundary, and derives the next LSN.
/// Recovery therefore never fails on a torn tail; it repairs and reports.
/// A CRC-bad record in the interior (media rot) is skipped by frame
/// resynchronization and counted, never fatal.
///
/// Durability policies (ParsePolicySpec: "always" | "bytes:N" |
/// "interval:MS" | "none"):
///   always     Append returns only after the record is fsynced. A
///              background flusher coalesces concurrently waiting
///              appenders into one fsync (group commit).
///   bytes:N    Append returns once the record is buffered in the file;
///              the flusher fsyncs whenever >= N unsynced bytes accumulate.
///   interval:M the flusher fsyncs every M milliseconds.
///   none       no fsync except on Close/Flush.
/// Only "always" gives acked-implies-durable; the others bound the loss
/// window instead (documented trade, bench-measured in BENCH_PR7).
///
/// Thread-safe: any number of appenders; one internal flusher thread.
///
/// Memory accounting: Open charges the active-segment write-back footprint
/// (segment_bytes) plus scan buffers against the PR4 governor and refuses
/// to open when over budget; the charge is released on destruction.
///
/// Fault points (util/fault.h): wal.append.short, wal.fsync, wal.seal,
/// wal.replay.corrupt.

enum class SyncPolicy { kAlways, kBytes, kInterval, kNone };

struct Options {
  SyncPolicy policy = SyncPolicy::kAlways;
  /// kBytes: fsync once this many unsynced bytes accumulate.
  int64_t bytes_threshold = 1 << 20;
  /// kInterval: fsync cadence in milliseconds.
  int64_t interval_ms = 5;
  /// Rotate (seal) the active segment once it reaches this size.
  int64_t segment_bytes = 4 << 20;
};

/// Parses a durability-policy spec ("always", "bytes:65536", "interval:5",
/// "none") into Options (segment_bytes keeps its default). This is the
/// STREAMHIST_WAL / `serve --wal-policy` grammar.
Result<Options> ParsePolicySpec(std::string_view spec);

/// Inverse of ParsePolicySpec for the policy fields.
std::string PolicySpecString(const Options& options);

/// What Open (or a read-only Scan) found on disk.
struct OpenReport {
  int64_t segments = 0;         // segment files scanned
  int64_t records = 0;          // whole, CRC-valid records retained
  int64_t corrupt_records = 0;  // CRC-bad interior records (skipped)
  int64_t torn_bytes = 0;       // bytes cut (or cuttable) off the tail
  bool tail_truncated = false;  // a torn tail was found
  int64_t first_lsn = 0;        // lowest retained LSN (0 when empty)
  int64_t next_lsn = 1;         // first LSN Append will assign
  std::string ToString() const;
};

/// Process-lifetime counters (monotone except the LSN watermarks).
struct StatsSnapshot {
  int64_t records = 0;           // records appended this process
  int64_t bytes = 0;             // frame bytes written this process
  int64_t fsyncs = 0;            // fsync calls issued
  int64_t sync_waits = 0;        // appends that blocked on durability
  int64_t segments_created = 0;  // rotations (plus the initial segment)
  int64_t segments_deleted = 0;  // sealed segments removed by truncation
  int64_t durable_lsn = 0;       // highest LSN covered by an fsync
  int64_t next_lsn = 1;
};

/// One sealed (or scanned) segment file. Internal bookkeeping, exposed for
/// the scan routine that rebuilds it on Open.
struct SegmentInfo {
  std::string path;
  int64_t first_lsn = 0;  // from the segment header
  int64_t max_lsn = 0;    // highest valid record LSN; first_lsn - 1 if none
};

/// Position of a tailing reader (the replication feeder). Value-semantic:
/// next_lsn is authoritative; segment_path/offset are a seek hint that is
/// revalidated on every ReadTail, so a cursor gone stale across a rotation
/// or checkpoint truncation self-heals instead of misreading.
struct TailCursor {
  int64_t next_lsn = 1;      // lowest LSN the reader still wants
  std::string segment_path;  // file the cursor is parked in ("": unknown)
  int64_t offset = 0;        // byte offset of the next unread frame
};

/// One ReadTail result: records in LSN order, every LSN fsync-covered at
/// call time.
struct TailBatch {
  std::vector<std::pair<int64_t, std::string>> records;  // (lsn, payload)
  /// The cursor predates retention (a checkpoint truncated those segments):
  /// the reader cannot resume from the log and must bootstrap from a
  /// checkpoint image instead.
  bool truncated_below = false;
};

class Wal {
 public:
  /// Called once per retained record, in LSN order. A non-OK return aborts
  /// the scan and is propagated.
  using RecordFn =
      std::function<Status(int64_t lsn, std::string_view payload)>;

  /// Opens (creating the directory if needed) and repairs the log, then
  /// starts the flusher. `report`, when non-null, receives the scan
  /// outcome. Fails only on real I/O errors or governor refusal — never on
  /// torn or corrupt content.
  static Result<std::unique_ptr<Wal>> Open(const std::string& dir,
                                           const Options& options,
                                           OpenReport* report);

  /// Read-only scan of a log directory: validates every frame and reports
  /// what Open would find, optionally handing each record to `fn` (null is
  /// fine — verify mode). Never modifies the files.
  static Status Scan(const std::string& dir, const RecordFn& fn,
                     OpenReport* report);

  ~Wal();  // Flush(), stop the flusher, release the governor charge.

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Streams every retained record with LSN >= from_lsn to `fn`. Call
  /// before the first Append (recovery replay); the scan reads the repaired
  /// files back from disk.
  Status Replay(int64_t from_lsn, const RecordFn& fn,
                OpenReport* report) const;

  /// Appends one record, assigns its LSN, and blocks per the durability
  /// policy. Under "always" a flush failure (fault point wal.fsync) is
  /// returned here and the record must not be acked — the caller's
  /// log-before-apply ordering makes the value invisible.
  Result<int64_t> Append(std::string_view payload);

  /// Fsyncs everything appended so far (shutdown, pre-checkpoint barrier).
  Status Flush();

  /// Reads records with LSN >= cursor->next_lsn in LSN order, stopping
  /// after roughly max_bytes of frame data or at the durability horizon —
  /// a tailing reader never sees a record the primary has not fsynced, so
  /// a replica can never end up more durable than its primary. Advances
  /// the cursor and follows the active segment across rotations; an empty
  /// batch with truncated_below unset means caught up.
  Status ReadTail(TailCursor* cursor, int64_t max_bytes, TailBatch* out);

  /// Appends one record at an explicit LSN (replica side: records arrive
  /// already numbered by the primary; gaps from skipped corrupt records
  /// are legal). Requires lsn >= next_lsn(). Never waits for durability,
  /// whatever the policy — batch appliers call Flush() once per batch.
  Status AppendAt(int64_t lsn, std::string_view payload);

  /// Fast-forwards the log so the next record lands at exactly `lsn`
  /// (>= next_lsn()), sealing the active segment and opening a fresh one
  /// whose header carries `lsn`. This is the checkpoint-bootstrap handoff's
  /// "resume after the floor" step: LSNs <= lsn - 1 are treated as durable
  /// (they live in the bootstrap image, not this log).
  Status AlignNextLsn(int64_t lsn);

  /// Blocks until durable_lsn() >= lsn (nudging the flusher if needed), the
  /// timeout elapses, or the log closes. Returns whether lsn is durable.
  bool WaitDurable(int64_t lsn, int64_t timeout_ms);

  /// Lowest LSN a tailing reader could still read from retained segments.
  int64_t first_retained_lsn() const;

  /// Deletes sealed segments every record of which has LSN < lsn — called
  /// after a checkpoint covering LSNs < lsn is durably on disk. The active
  /// segment is never deleted.
  Status TruncateBefore(int64_t lsn);

  int64_t durable_lsn() const;
  /// The LSN the next Append will assign; next_lsn() - 1 is the high-water
  /// mark of assigned LSNs.
  int64_t next_lsn() const;
  StatsSnapshot stats() const;
  const std::string& dir() const { return dir_; }
  const Options& options() const { return options_; }

 private:
  Wal(std::string dir, const Options& options);

  Status OpenActiveSegment(int64_t first_lsn);
  Status SealAndRotateLocked();
  Status WriteFrameLocked(std::string_view frame);
  void FlusherMain();
  Status FsyncLocked(std::unique_lock<std::mutex>& lock);

  const std::string dir_;
  const Options options_;
  int64_t governor_charge_ = 0;

  mutable std::mutex mu_;
  std::condition_variable flush_cv_;    // appenders -> flusher
  std::condition_variable durable_cv_;  // flusher -> waiting appenders
  int fd_ = -1;
  std::string active_path_;        // file backing fd_
  std::vector<SegmentInfo> sealed_;  // immutable predecessors of the active
  int64_t active_first_lsn_ = 0;   // header LSN of the active segment
  int64_t active_bytes_ = 0;       // bytes written to the active segment
  int64_t next_lsn_ = 1;           // next LSN to assign
  int64_t written_lsn_ = 0;        // highest LSN fully in the file
  int64_t durable_lsn_ = 0;        // highest LSN covered by fsync
  int64_t requested_lsn_ = 0;      // highest LSN an appender wants durable
  int64_t unsynced_bytes_ = 0;     // bytes written since the last fsync
  int64_t rotation_epoch_ = 0;     // bumped whenever a rotation resets it
  bool stop_ = false;
  Status flush_error_ = Status::OK();  // last flush failure
  int64_t flush_error_seq_ = 0;        // bumped on every flush failure
  StatsSnapshot stats_;
  std::thread flusher_;
};

}  // namespace wal
}  // namespace streamhist

#endif  // STREAMHIST_UTIL_WAL_H_
