#include "src/wavelet/haar.h"

#include <bit>
#include <cmath>

#include "src/util/logging.h"

namespace streamhist {

int64_t NextPowerOfTwo(int64_t n) {
  STREAMHIST_CHECK_GE(n, 1);
  return static_cast<int64_t>(std::bit_ceil(static_cast<uint64_t>(n)));
}

std::vector<double> HaarDecompose(std::span<const double> values) {
  const int64_t n = static_cast<int64_t>(values.size());
  STREAMHIST_CHECK(n >= 1 && std::has_single_bit(static_cast<uint64_t>(n)))
      << "HaarDecompose requires a power-of-two length, got " << n;
  // Averages pyramid: level 0 = leaves; repeatedly halve.
  std::vector<double> coeffs(static_cast<size_t>(n));
  std::vector<double> avg(values.begin(), values.end());
  int64_t len = n;
  while (len > 1) {
    const int64_t half = len / 2;
    // Detail coefficients for the nodes at this level occupy indices
    // [half, len) in error-tree numbering.
    for (int64_t j = 0; j < half; ++j) {
      const double left = avg[static_cast<size_t>(2 * j)];
      const double right = avg[static_cast<size_t>(2 * j + 1)];
      coeffs[static_cast<size_t>(half + j)] = (left - right) / 2.0;
      avg[static_cast<size_t>(j)] = (left + right) / 2.0;
    }
    len = half;
  }
  coeffs[0] = avg[0];
  return coeffs;
}

std::vector<double> HaarReconstruct(std::span<const double> coeffs) {
  const int64_t n = static_cast<int64_t>(coeffs.size());
  STREAMHIST_CHECK(n >= 1 && std::has_single_bit(static_cast<uint64_t>(n)));
  std::vector<double> values(static_cast<size_t>(n));
  values[0] = coeffs[0];
  int64_t len = 1;
  while (len < n) {
    // Expand the averages at [0, len) into [0, 2*len) using the details at
    // error-tree indices [len, 2*len).
    for (int64_t j = len - 1; j >= 0; --j) {
      const double a = values[static_cast<size_t>(j)];
      const double d = coeffs[static_cast<size_t>(len + j)];
      values[static_cast<size_t>(2 * j)] = a + d;
      values[static_cast<size_t>(2 * j + 1)] = a - d;
    }
    len *= 2;
  }
  return values;
}

HaarSupport HaarSupportOf(int64_t i, int64_t size) {
  STREAMHIST_DCHECK(std::has_single_bit(static_cast<uint64_t>(size)));
  STREAMHIST_DCHECK(0 <= i && i < size);
  if (i == 0) return HaarSupport{0, size, size};
  const int level = std::bit_width(static_cast<uint64_t>(i)) - 1;
  const int64_t nodes_at_level = int64_t{1} << level;
  const int64_t support = size / nodes_at_level;
  const int64_t j = i - nodes_at_level;
  const int64_t begin = j * support;
  return HaarSupport{begin, begin + support / 2, begin + support};
}

double HaarL2Weight(int64_t i, double value, int64_t size) {
  const HaarSupport s = HaarSupportOf(i, size);
  return std::fabs(value) * std::sqrt(static_cast<double>(s.end - s.begin));
}

}  // namespace streamhist
