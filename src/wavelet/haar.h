#ifndef STREAMHIST_WAVELET_HAAR_H_
#define STREAMHIST_WAVELET_HAAR_H_

#include <cstdint>
#include <span>
#include <vector>

namespace streamhist {

/// Smallest power of two >= n (n >= 1).
int64_t NextPowerOfTwo(int64_t n);

/// Haar wavelet decomposition in error-tree form over a power-of-two-length
/// input. coeffs[0] is the overall average; coeffs[i] for i >= 1 is the
/// detail coefficient of error-tree node i, defined as
/// (avg(left half) - avg(right half)) / 2 over the node's support.
/// Reconstruction: each leaf value is coeffs[0] plus the signed sum of the
/// details on its root-to-leaf path (+ for left subtree, - for right).
std::vector<double> HaarDecompose(std::span<const double> values);

/// Exact inverse of HaarDecompose.
std::vector<double> HaarReconstruct(std::span<const double> coeffs);

/// Support of error-tree node i over a domain of `size` (a power of two):
/// the coefficient contributes +value on [begin, mid) and -value on
/// [mid, end). For the average coefficient (i == 0), mid == end == size and
/// the contribution is +value everywhere.
struct HaarSupport {
  int64_t begin;
  int64_t mid;
  int64_t end;
};
HaarSupport HaarSupportOf(int64_t i, int64_t size);

/// L2 importance of a coefficient: its squared contribution to the signal
/// energy is value^2 * support_width (details) or value^2 * size (average).
/// Thresholding by this weight minimizes the SSE of the retained subset.
double HaarL2Weight(int64_t i, double value, int64_t size);

}  // namespace streamhist

#endif  // STREAMHIST_WAVELET_HAAR_H_
