#include "src/wavelet/sliding_wavelet.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>

#include "src/util/logging.h"
#include "src/wavelet/haar.h"

namespace streamhist {

Result<SlidingWavelet> SlidingWavelet::Create(int64_t window_size) {
  if (window_size < 1 ||
      !std::has_single_bit(static_cast<uint64_t>(window_size))) {
    return Status::InvalidArgument("window_size must be a power of two >= 1");
  }
  return SlidingWavelet(window_size);
}

SlidingWavelet::SlidingWavelet(int64_t window_size)
    : capacity_(window_size),
      leaves_(static_cast<size_t>(window_size), 0.0),
      coeffs_(static_cast<size_t>(window_size), 0.0) {}

void SlidingWavelet::ApplyLeafDelta(int64_t leaf, double delta) {
  if (delta == 0.0) return;
  // Overall average.
  coeffs_[0] += delta / static_cast<double>(capacity_);
  ++coefficient_updates_;
  // Detail nodes on the root-to-leaf path: at the level with 2^l nodes the
  // leaf's node has support s = capacity / 2^l; a delta in the left half
  // raises the detail by delta/s, in the right half lowers it.
  for (int64_t nodes = 1; nodes < capacity_; nodes *= 2) {
    const int64_t support = capacity_ / nodes;
    const int64_t node = nodes + leaf / support;
    const bool left_half = (leaf % support) < support / 2;
    coeffs_[static_cast<size_t>(node)] +=
        (left_half ? delta : -delta) / static_cast<double>(support);
    ++coefficient_updates_;
  }
}

void SlidingWavelet::Append(double value) {
  int64_t pos = 0;
  if (size_ < capacity_) {
    pos = size_;
    ++size_;
  } else {
    pos = head_;
    head_ = (head_ + 1) & (capacity_ - 1);
  }
  const double delta = value - leaves_[static_cast<size_t>(pos)];
  leaves_[static_cast<size_t>(pos)] = value;
  ApplyLeafDelta(pos, delta);
  top_set_valid_ = false;
}

double SlidingWavelet::Estimate(int64_t i) const {
  STREAMHIST_DCHECK(0 <= i && i < size_);
  return leaves_[static_cast<size_t>(Physical(i))];
}

namespace {

int64_t Overlap(int64_t lo, int64_t hi, int64_t a, int64_t b) {
  const int64_t left = std::max(lo, a);
  const int64_t right = std::min(hi, b);
  return right > left ? right - left : 0;
}

}  // namespace

double SlidingWavelet::PhysicalRangeSum(int64_t lo, int64_t hi) const {
  if (lo >= hi) return 0.0;
  // Recursive descent: a node knows its average; its children's averages are
  // avg +- detail. Only the two boundary paths are expanded: O(log n).
  struct Frame {
    int64_t node;  // error-tree index; 1 is the root detail node
    int64_t begin;
    int64_t end;
    double avg;
  };
  double total = 0.0;
  std::vector<Frame> stack;
  stack.push_back(Frame{1, 0, capacity_, coeffs_[0]});
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (lo <= f.begin && f.end <= hi) {
      total += f.avg * static_cast<double>(f.end - f.begin);
      continue;
    }
    if (Overlap(lo, hi, f.begin, f.end) == 0) continue;
    if (f.end - f.begin == 1) {
      continue;  // unreachable: width-1 nodes are fully covered or disjoint
    }
    const double detail = coeffs_[static_cast<size_t>(f.node)];
    const int64_t mid = (f.begin + f.end) / 2;
    stack.push_back(Frame{2 * f.node, f.begin, mid, f.avg + detail});
    stack.push_back(Frame{2 * f.node + 1, mid, f.end, f.avg - detail});
  }
  return total;
}

double SlidingWavelet::ExactRangeSum(int64_t lo, int64_t hi) const {
  STREAMHIST_DCHECK(0 <= lo && lo <= hi && hi <= size_);
  if (lo == hi) return 0.0;
  const int64_t p_lo = Physical(lo);
  const int64_t len = hi - lo;
  if (p_lo + len <= capacity_) {
    return PhysicalRangeSum(p_lo, p_lo + len);
  }
  return PhysicalRangeSum(p_lo, capacity_) +
         PhysicalRangeSum(0, p_lo + len - capacity_);
}

void SlidingWavelet::RefreshTopSet(int64_t num_coefficients) {
  std::vector<int64_t> order(coeffs_.size());
  std::iota(order.begin(), order.end(), 0);
  const size_t keep =
      std::min(static_cast<size_t>(num_coefficients), coeffs_.size());
  std::partial_sort(
      order.begin(), order.begin() + static_cast<ptrdiff_t>(keep), order.end(),
      [&](int64_t a, int64_t b) {
        return HaarL2Weight(a, coeffs_[static_cast<size_t>(a)], capacity_) >
               HaarL2Weight(b, coeffs_[static_cast<size_t>(b)], capacity_);
      });
  top_set_.clear();
  for (size_t t = 0; t < keep; ++t) {
    const int64_t i = order[t];
    const double value = coeffs_[static_cast<size_t>(i)];
    if (value == 0.0) continue;
    const HaarSupport s = HaarSupportOf(i, capacity_);
    top_set_.push_back(TopCoefficient{s.begin, s.mid, s.end, value});
  }
  top_set_budget_ = num_coefficients;
  top_set_valid_ = true;
}

double SlidingWavelet::PhysicalApproxRangeSum(int64_t lo, int64_t hi) const {
  double total = 0.0;
  for (const TopCoefficient& c : top_set_) {
    const int64_t plus = Overlap(lo, hi, c.begin, c.mid);
    const int64_t minus = Overlap(lo, hi, c.mid, c.end);
    total += c.value * static_cast<double>(plus - minus);
  }
  return total;
}

double SlidingWavelet::ApproxRangeSum(int64_t lo, int64_t hi,
                                      int64_t num_coefficients) {
  STREAMHIST_DCHECK(0 <= lo && lo <= hi && hi <= size_);
  STREAMHIST_CHECK_GT(num_coefficients, 0);
  if (!top_set_valid_ || top_set_budget_ != num_coefficients) {
    RefreshTopSet(num_coefficients);
  }
  const int64_t p_lo = Physical(lo);
  const int64_t len = hi - lo;
  if (p_lo + len <= capacity_) {
    return PhysicalApproxRangeSum(p_lo, p_lo + len);
  }
  return PhysicalApproxRangeSum(p_lo, capacity_) +
         PhysicalApproxRangeSum(0, p_lo + len - capacity_);
}

}  // namespace streamhist
