#ifndef STREAMHIST_WAVELET_SLIDING_WAVELET_H_
#define STREAMHIST_WAVELET_SLIDING_WAVELET_H_

#include <cstdint>
#include <vector>

#include "src/util/result.h"

namespace streamhist {

/// Incrementally-maintained Haar coefficient tree over a sliding window —
/// the engineering alternative to the paper's recompute-from-scratch wavelet
/// baseline, in the spirit of Matias, Vitter & Wang's dynamic wavelet
/// maintenance [MVW00] (adapted from value-domain updates to window slides).
///
/// The window occupies a power-of-two circular buffer; each arrival
/// overwrites the oldest leaf and refreshes the O(log n) coefficients on its
/// root path, instead of an O(n) transform per arrival. The full tree is
/// retained, so exact window range sums cost O(log n); a thresholded top-B
/// snapshot (the lossy synopsis the paper benchmarks against) costs O(n)
/// but is cached between arrivals.
///
/// Window-relative index 0 is the oldest point in the window.
class SlidingWavelet {
 public:
  /// window_size must be a power of two >= 1.
  static Result<SlidingWavelet> Create(int64_t window_size);

  /// Appends a point, evicting the oldest once the window is full;
  /// O(log n) coefficient updates.
  void Append(double value);

  /// Number of points currently in the window.
  int64_t size() const { return size_; }

  int64_t window_size() const { return capacity_; }

  /// Exact sum of window values over window-relative [lo, hi); O(log n).
  double ExactRangeSum(int64_t lo, int64_t hi) const;

  /// Approximate sum over [lo, hi) using only the top `num_coefficients`
  /// coefficients by L2 weight (cached until the next Append); O(B) per
  /// query after an O(n) selection per window change.
  double ApproxRangeSum(int64_t lo, int64_t hi, int64_t num_coefficients);

  /// Exact value of window point i (O(log n) path evaluation).
  double Estimate(int64_t i) const;

  /// Total number of leaf-path coefficient updates performed (diagnostic).
  int64_t coefficient_updates() const { return coefficient_updates_; }

 private:
  explicit SlidingWavelet(int64_t window_size);

  /// Applies `delta` at physical leaf position `leaf`: O(log n).
  void ApplyLeafDelta(int64_t leaf, double delta);

  /// Physical leaf position of window-relative index i.
  int64_t Physical(int64_t i) const { return (head_ + i) & (capacity_ - 1); }

  /// Exact sum over the *physical* range [lo, hi) from the coefficient tree.
  double PhysicalRangeSum(int64_t lo, int64_t hi) const;

  /// Approximate sum over the physical range using the cached top set.
  double PhysicalApproxRangeSum(int64_t lo, int64_t hi) const;

  void RefreshTopSet(int64_t num_coefficients);

  int64_t capacity_;
  int64_t size_ = 0;
  int64_t head_ = 0;  // physical position of window-relative index 0
  int64_t coefficient_updates_ = 0;
  std::vector<double> leaves_;  // physical order
  std::vector<double> coeffs_;  // error-tree layout over physical leaves

  // Cached top-B selection (physical supports), invalidated by Append.
  struct TopCoefficient {
    int64_t begin;
    int64_t mid;
    int64_t end;
    double value;
  };
  std::vector<TopCoefficient> top_set_;
  int64_t top_set_budget_ = 0;
  bool top_set_valid_ = false;
};

}  // namespace streamhist

#endif  // STREAMHIST_WAVELET_SLIDING_WAVELET_H_
