#include "src/wavelet/synopsis.h"

#include <algorithm>
#include <numeric>

#include "src/util/logging.h"
#include "src/wavelet/haar.h"

namespace streamhist {

WaveletSynopsis WaveletSynopsis::Build(std::span<const double> data,
                                       int64_t num_coefficients) {
  STREAMHIST_CHECK_GT(num_coefficients, 0);
  WaveletSynopsis synopsis;
  const int64_t n = static_cast<int64_t>(data.size());
  synopsis.n_ = n;
  if (n == 0) return synopsis;

  const int64_t padded = NextPowerOfTwo(n);
  synopsis.padded_ = padded;
  std::vector<double> padded_data(data.begin(), data.end());
  if (padded > n) {
    const double mean =
        std::accumulate(data.begin(), data.end(), 0.0) /
        static_cast<double>(n);
    padded_data.resize(static_cast<size_t>(padded), mean);
  }

  const std::vector<double> coeffs = HaarDecompose(padded_data);

  // Rank coefficient indices by L2 weight, descending, and keep the top B
  // nonzero ones.
  std::vector<int64_t> order(coeffs.size());
  std::iota(order.begin(), order.end(), 0);
  const size_t keep = std::min(static_cast<size_t>(num_coefficients),
                               coeffs.size());
  std::partial_sort(
      order.begin(), order.begin() + static_cast<ptrdiff_t>(keep), order.end(),
      [&](int64_t a, int64_t b) {
        return HaarL2Weight(a, coeffs[static_cast<size_t>(a)], padded) >
               HaarL2Weight(b, coeffs[static_cast<size_t>(b)], padded);
      });

  synopsis.coefficients_.reserve(keep);
  for (size_t t = 0; t < keep; ++t) {
    const int64_t i = order[t];
    const double value = coeffs[static_cast<size_t>(i)];
    if (value == 0.0) continue;
    const HaarSupport s = HaarSupportOf(i, padded);
    synopsis.coefficients_.push_back(Coefficient{s.begin, s.mid, s.end, value});
  }
  return synopsis;
}

double WaveletSynopsis::Estimate(int64_t i) const {
  STREAMHIST_DCHECK(0 <= i && i < n_);
  double v = 0.0;
  for (const Coefficient& c : coefficients_) {
    if (i >= c.begin && i < c.mid) {
      v += c.value;
    } else if (i >= c.mid && i < c.end) {
      v -= c.value;
    }
  }
  return v;
}

namespace {

// Width of the intersection of [lo, hi) with [a, b).
int64_t Overlap(int64_t lo, int64_t hi, int64_t a, int64_t b) {
  const int64_t left = std::max(lo, a);
  const int64_t right = std::min(hi, b);
  return right > left ? right - left : 0;
}

}  // namespace

double WaveletSynopsis::RangeSum(int64_t lo, int64_t hi) const {
  STREAMHIST_DCHECK(0 <= lo && lo <= hi && hi <= n_);
  double total = 0.0;
  for (const Coefficient& c : coefficients_) {
    const int64_t plus = Overlap(lo, hi, c.begin, c.mid);
    const int64_t minus = Overlap(lo, hi, c.mid, c.end);
    total += c.value * static_cast<double>(plus - minus);
  }
  return total;
}

std::vector<double> WaveletSynopsis::Reconstruct() const {
  std::vector<double> out(static_cast<size_t>(n_), 0.0);
  for (const Coefficient& c : coefficients_) {
    const int64_t plus_end = std::min(c.mid, n_);
    for (int64_t i = c.begin; i < plus_end; ++i) {
      out[static_cast<size_t>(i)] += c.value;
    }
    const int64_t minus_end = std::min(c.end, n_);
    for (int64_t i = c.mid; i < minus_end; ++i) {
      out[static_cast<size_t>(i)] -= c.value;
    }
  }
  return out;
}

double WaveletSynopsis::SseAgainst(std::span<const double> data) const {
  STREAMHIST_CHECK_EQ(static_cast<int64_t>(data.size()), n_);
  const std::vector<double> approx = Reconstruct();
  long double total = 0.0L;
  for (size_t i = 0; i < approx.size(); ++i) {
    const long double d = data[i] - approx[i];
    total += d * d;
  }
  return static_cast<double>(total);
}

}  // namespace streamhist
