#ifndef STREAMHIST_WAVELET_SYNOPSIS_H_
#define STREAMHIST_WAVELET_SYNOPSIS_H_

#include <cstdint>
#include <span>
#include <vector>

namespace streamhist {

/// Wavelet-based synopsis in the style of Matias, Vitter & Wang [MVW]:
/// the B largest Haar coefficients under L2 normalization, supporting O(B)
/// point estimates and O(B) range sums. This is the comparison baseline of
/// the paper's Figure 6; there (and in bench_fig6_*) it is recomputed from
/// scratch each time the sliding window moves, as the paper describes.
///
/// Non-power-of-two inputs are padded to the next power of two with the
/// series mean (gentler than zero padding on utilization-style data whose
/// level is far from zero); estimates are only defined on the original
/// domain [0, n).
class WaveletSynopsis {
 public:
  /// An empty synopsis over the empty domain.
  WaveletSynopsis() = default;

  /// Builds the top-`num_coefficients` synopsis of `data`.
  static WaveletSynopsis Build(std::span<const double> data,
                               int64_t num_coefficients);

  /// Original domain size n.
  int64_t domain_size() const { return n_; }

  /// Number of retained coefficients (<= requested; small inputs may have
  /// fewer nonzero coefficients).
  int64_t num_coefficients() const {
    return static_cast<int64_t>(coefficients_.size());
  }

  /// Estimated value of point i in [0, n).
  double Estimate(int64_t i) const;

  /// Estimated sum over [lo, hi), 0 <= lo <= hi <= n.
  double RangeSum(int64_t lo, int64_t hi) const;

  /// Reconstructs the approximate sequence over [0, n).
  std::vector<double> Reconstruct() const;

  /// SSE of the approximation against `data` (size n).
  double SseAgainst(std::span<const double> data) const;

 private:
  /// A retained coefficient with its precomputed support: contributes
  /// +value on [begin, mid) and -value on [mid, end).
  struct Coefficient {
    int64_t begin;
    int64_t mid;
    int64_t end;
    double value;
  };

  int64_t n_ = 0;       // original length
  int64_t padded_ = 0;  // power-of-two transform length
  std::vector<Coefficient> coefficients_;
};

}  // namespace streamhist

#endif  // STREAMHIST_WAVELET_SYNOPSIS_H_
