#include "src/core/agglomerative.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/vopt_dp.h"
#include "src/data/generators.h"
#include "src/util/random.h"

namespace streamhist {
namespace {

AgglomerativeHistogram MakeAgglom(int64_t buckets, double epsilon) {
  ApproxHistogramOptions options;
  options.num_buckets = buckets;
  options.epsilon = epsilon;
  return AgglomerativeHistogram::Create(options).value();
}

TEST(AgglomerativeTest, CreateValidatesOptions) {
  ApproxHistogramOptions bad;
  bad.num_buckets = 0;
  EXPECT_FALSE(AgglomerativeHistogram::Create(bad).ok());
  bad.num_buckets = 4;
  bad.epsilon = -1.0;
  EXPECT_FALSE(AgglomerativeHistogram::Create(bad).ok());
  bad.epsilon = 0.25;
  auto ok = AgglomerativeHistogram::Create(bad);
  ASSERT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ(ok.value().delta(), 0.25 / 8.0);
}

TEST(AgglomerativeTest, EmptyExtract) {
  AgglomerativeHistogram a = MakeAgglom(3, 0.1);
  EXPECT_EQ(a.Extract().num_buckets(), 0);
  EXPECT_DOUBLE_EQ(a.ApproxError(), 0.0);
}

TEST(AgglomerativeTest, SinglePoint) {
  AgglomerativeHistogram a = MakeAgglom(3, 0.1);
  a.Append(7.0);
  EXPECT_DOUBLE_EQ(a.ApproxError(), 0.0);
  Histogram h = a.Extract();
  ASSERT_EQ(h.num_buckets(), 1);
  EXPECT_DOUBLE_EQ(h.buckets()[0].value, 7.0);
}

TEST(AgglomerativeTest, ConstantStreamHasZeroError) {
  AgglomerativeHistogram a = MakeAgglom(2, 0.1);
  for (int i = 0; i < 1000; ++i) a.Append(5.0);
  EXPECT_DOUBLE_EQ(a.ApproxError(), 0.0);
  Histogram h = a.Extract();
  EXPECT_EQ(h.domain_size(), 1000);
  EXPECT_DOUBLE_EQ(h.SseAgainst(std::vector<double>(1000, 5.0)), 0.0);
}

TEST(AgglomerativeTest, PiecewiseConstantRecoveredExactly) {
  AgglomerativeHistogram a = MakeAgglom(3, 0.5);
  std::vector<double> data;
  for (int i = 0; i < 20; ++i) data.push_back(4.0);
  for (int i = 0; i < 30; ++i) data.push_back(-2.0);
  for (int i = 0; i < 10; ++i) data.push_back(11.0);
  for (double v : data) a.Append(v);
  EXPECT_NEAR(a.ApproxError(), 0.0, 1e-9);
  Histogram h = a.Extract();
  EXPECT_NEAR(h.SseAgainst(data), 0.0, 1e-9);
}

TEST(AgglomerativeTest, ExtractedHistogramIsValidAtEveryPrefix) {
  AgglomerativeHistogram a = MakeAgglom(4, 0.3);
  Random rng(5);
  for (int i = 1; i <= 120; ++i) {
    a.Append(rng.UniformInt(0, 30));
    Histogram h = a.Extract();
    EXPECT_TRUE(h.Validate().ok()) << "prefix " << i;
    EXPECT_EQ(h.domain_size(), i);
    EXPECT_LE(h.num_buckets(), 4);
  }
}

TEST(AgglomerativeTest, ExtractErrorConsistentWithApproxError) {
  AgglomerativeHistogram a = MakeAgglom(5, 0.2);
  Random rng(8);
  std::vector<double> data;
  for (int i = 0; i < 400; ++i) {
    const double v = rng.UniformInt(0, 100);
    data.push_back(v);
    a.Append(v);
  }
  // The extraction DP may find a *better* partition than the streamed value
  // (it minimizes jointly over all levels), never a worse one beyond noise.
  const double extracted = a.Extract().SseAgainst(data);
  EXPECT_LE(extracted, a.ApproxError() * (1.0 + 1e-9) + 1e-6);
}

TEST(AgglomerativeTest, SpaceGrowsLogarithmically) {
  AgglomerativeHistogram a = MakeAgglom(4, 0.5);
  Random rng(13);
  int64_t entries_at_1k = 0;
  for (int i = 1; i <= 16000; ++i) {
    a.Append(rng.UniformInt(0, 256));
    if (i == 1000) entries_at_1k = a.total_stored_entries();
  }
  const int64_t entries_at_16k = a.total_stored_entries();
  ASSERT_GT(entries_at_1k, 0);
  // A 16x longer stream should grow storage by far less than 16x (the bound
  // is logarithmic in stream length for bounded values).
  EXPECT_LT(entries_at_16k, 4 * entries_at_1k);
}

// Property sweep: the extracted histogram's SSE is within (1+eps) of the
// optimal B-bucket histogram of the full prefix.
struct GuaranteeCase {
  const char* dataset;
  int64_t length;
  int64_t buckets;
  double epsilon;
  uint64_t seed;
};

void PrintTo(const GuaranteeCase& c, std::ostream* os) {
  *os << c.dataset << "/n" << c.length << "/B" << c.buckets << "/eps"
      << c.epsilon << "/s" << c.seed;
}

class AgglomerativeGuaranteeTest
    : public ::testing::TestWithParam<GuaranteeCase> {};

TEST_P(AgglomerativeGuaranteeTest, WithinOnePlusEpsilonOfOptimal) {
  const GuaranteeCase c = GetParam();
  const std::vector<double> data =
      GenerateDataset(ParseDatasetKind(c.dataset), c.length, c.seed);
  AgglomerativeHistogram a = MakeAgglom(c.buckets, c.epsilon);
  for (double v : data) a.Append(v);
  const double opt = OptimalSse(data, c.buckets);
  const double approx = a.Extract().SseAgainst(data);
  EXPECT_LE(approx, (1.0 + c.epsilon) * opt + 1e-6)
      << "approx=" << approx << " opt=" << opt;
  EXPECT_GE(approx, opt - 1e-6);  // can never beat the optimum
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AgglomerativeGuaranteeTest,
    ::testing::Values(GuaranteeCase{"walk", 200, 4, 0.5, 1},
                      GuaranteeCase{"walk", 200, 4, 0.1, 2},
                      GuaranteeCase{"walk", 400, 8, 0.2, 3},
                      GuaranteeCase{"piecewise", 300, 6, 0.1, 4},
                      GuaranteeCase{"piecewise", 300, 6, 1.0, 5},
                      GuaranteeCase{"zipf", 200, 4, 0.3, 6},
                      GuaranteeCase{"zipf", 300, 8, 0.05, 7},
                      GuaranteeCase{"sines", 400, 8, 0.2, 8},
                      GuaranteeCase{"utilization", 400, 6, 0.5, 9},
                      GuaranteeCase{"utilization", 200, 2, 0.05, 10}));

}  // namespace
}  // namespace streamhist
