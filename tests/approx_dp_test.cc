// Property suite for the (1+delta)-approximate V-optimal DP
// (core/approx_dp.h): the sandwich bound
//
//   exact_sse <= approx_sse <= (1+delta)^(B-1) * exact_sse
//
// over random / Zipfian / sorted inputs across an (n, B, delta) grid,
// delta -> 0 convergence to the exact DP, realized-SSE consistency with the
// returned histogram, and the generic (virtual) cost-function path.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/approx_dp.h"
#include "src/core/bucket_cost.h"
#include "src/core/error_bounds.h"
#include "src/core/vopt_dp.h"
#include "src/data/generators.h"
#include "src/util/random.h"

namespace streamhist {
namespace {

// Relative slack for comparisons between independently-computed long-double
// accumulations (exact DP vs approximate DP vs SseAgainst).
constexpr double kRelTol = 1e-9;

std::vector<double> MakeInput(const std::string& shape, int64_t n,
                              uint64_t seed) {
  if (shape == "zipf") {
    return GenerateZipfValues(n, /*domain=*/1000, /*skew=*/1.2, seed);
  }
  Random rng(seed);
  std::vector<double> data;
  data.reserve(static_cast<size_t>(n));
  if (shape == "sorted") {
    // Strictly increasing with random gaps: a monotone stress case with no
    // duplicate values (so DP tie-breaks are unambiguous).
    double v = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      v += rng.UniformDouble(0.01, 3.0);
      data.push_back(v);
    }
    return data;
  }
  for (int64_t i = 0; i < n; ++i) data.push_back(rng.UniformDouble(0, 1000));
  return data;
}

std::vector<int64_t> Boundaries(const Histogram& h) {
  std::vector<int64_t> b;
  b.push_back(0);
  for (const Bucket& bucket : h.buckets()) b.push_back(bucket.end);
  return b;
}

TEST(ApproxDpTest, SandwichBoundHoldsOnGrid) {
  const std::string shapes[] = {"random", "zipf", "sorted"};
#ifdef NDEBUG
  const int64_t sizes[] = {64, 500, 1500};
#else
  const int64_t sizes[] = {64, 300};
#endif
  const int64_t bucket_counts[] = {4, 16, 64};
  const double deltas[] = {0.01, 0.1, 0.5, 1.0};
  for (const std::string& shape : shapes) {
    for (const int64_t n : sizes) {
      const std::vector<double> data = MakeInput(shape, n, /*seed=*/7 + n);
      for (const int64_t buckets : bucket_counts) {
        const double exact = OptimalSse(data, buckets);
        for (const double delta : deltas) {
          SCOPED_TRACE(shape + " n=" + std::to_string(n) +
                       " B=" + std::to_string(buckets) +
                       " delta=" + std::to_string(delta));
          const ApproxHistogramResult approx =
              BuildApproxVOptimalHistogram(data, buckets, delta);
          const double bound =
              ApproxDpBoundFactor(std::min(buckets, n), delta);
          EXPECT_EQ(approx.bound_factor, bound);
          // Lower half of the sandwich: never better than optimal.
          EXPECT_GE(approx.sse, exact * (1.0 - kRelTol));
          // Upper half: the certified factor (plus float slack; the 1e-6
          // absolute term covers exact == 0, where the bound forces the
          // approximate SSE to zero as well).
          EXPECT_LE(approx.sse, bound * exact * (1.0 + kRelTol) + 1e-6);
          // The realized SSE never exceeds the DP's internal objective.
          EXPECT_LE(approx.sse, approx.dp_error * (1.0 + kRelTol) + 1e-9);
          // The reported SSE is the histogram's actual error.
          EXPECT_NEAR(approx.histogram.SseAgainst(data), approx.sse,
                      kRelTol * (1.0 + approx.sse));
          // Structural sanity: a real histogram over the full domain.
          EXPECT_EQ(approx.histogram.domain_size(), n);
          EXPECT_LE(approx.histogram.num_buckets(), buckets);
          EXPECT_GT(approx.cost_evals, 0);
        }
      }
    }
  }
}

TEST(ApproxDpTest, DeltaZeroMatchesExactDp) {
  // delta == 0 collapses each cover interval to one run of equal HERROR
  // values, whose right endpoint dominates the run (same layer error,
  // smaller bucket cost) — so the DP value equals the exact optimum, and
  // with all-distinct inputs the boundaries match too.
  for (const std::string& shape : {std::string("random"), std::string("sorted")}) {
    for (const int64_t n : {32L, 257L, 900L}) {
      for (const int64_t buckets : {3L, 8L, 24L}) {
        SCOPED_TRACE(shape + " n=" + std::to_string(n) +
                     " B=" + std::to_string(buckets));
        const std::vector<double> data = MakeInput(shape, n, /*seed=*/n + 1);
        const OptimalHistogramResult exact =
            BuildVOptimalHistogram(data, buckets);
        const ApproxHistogramResult approx =
            BuildApproxVOptimalHistogram(data, buckets, 0.0);
        EXPECT_EQ(approx.bound_factor, 1.0);
        EXPECT_NEAR(approx.sse, exact.error, kRelTol * (1.0 + exact.error));
        EXPECT_EQ(Boundaries(approx.histogram), Boundaries(exact.histogram));
      }
    }
  }
}

TEST(ApproxDpTest, TighterDeltaConvergesAndLooserDeltaPrunesMore) {
  const std::vector<double> data = MakeInput("random", 1200, /*seed=*/99);
  const int64_t buckets = 24;
  const double exact = OptimalSse(data, buckets);
  ASSERT_GT(exact, 0.0);
  const ApproxHistogramResult tight =
      BuildApproxVOptimalHistogram(data, buckets, 0.01);
  const ApproxHistogramResult loose =
      BuildApproxVOptimalHistogram(data, buckets, 1.0);
  // Small delta is nearly exact in realized terms (far inside its bound).
  EXPECT_LE(tight.sse / exact, 1.05);
  // Looser delta inspects strictly fewer candidates — the point of pruning.
  EXPECT_LT(loose.cost_evals, tight.cost_evals);
  EXPECT_LE(loose.max_cover_size, tight.max_cover_size);
}

TEST(ApproxDpTest, GenericVirtualCostPathHonorsTheBound) {
  // The virtual-dispatch entry point with non-SSE cost families: the bound
  // argument only needs cost monotonicity under bucket shrinking, which
  // max-abs and SAE both satisfy.
  const std::vector<double> data = MakeInput("zipf", 220, /*seed=*/3);
  const int64_t buckets = 8;
  const double delta = 0.2;
  const double bound = ApproxDpBoundFactor(buckets, delta);

  const MaxAbsBucketCost max_abs(data);
  const double exact_max = BuildOptimalHistogram(max_abs, buckets).error;
  const ApproxHistogramResult approx_max =
      BuildApproxHistogram(max_abs, buckets, delta);
  EXPECT_GE(approx_max.sse, exact_max * (1.0 - kRelTol));
  EXPECT_LE(approx_max.sse, bound * exact_max * (1.0 + kRelTol) + 1e-6);

  const SaeBucketCost sae(data);
  const double exact_sae = BuildOptimalHistogram(sae, buckets).error;
  const ApproxHistogramResult approx_sae =
      BuildApproxHistogram(sae, buckets, delta);
  EXPECT_GE(approx_sae.sse, exact_sae * (1.0 - kRelTol));
  EXPECT_LE(approx_sae.sse, bound * exact_sae * (1.0 + kRelTol) + 1e-6);
}

TEST(ApproxDpTest, SseVirtualEntryPointMatchesFlatWrapper) {
  // BuildApproxHistogram(SseBucketCost) routes to the same devirtualized
  // inner loop as BuildApproxVOptimalHistogram — identical output bits.
  const std::vector<double> data = MakeInput("random", 700, /*seed=*/17);
  const SseBucketCost cost(data);
  const ApproxHistogramResult via_virtual =
      BuildApproxHistogram(cost, 16, 0.1);
  const ApproxHistogramResult via_span =
      BuildApproxVOptimalHistogram(data, 16, 0.1);
  EXPECT_EQ(Boundaries(via_virtual.histogram),
            Boundaries(via_span.histogram));
  EXPECT_EQ(via_virtual.sse, via_span.sse);
  EXPECT_EQ(via_virtual.dp_error, via_span.dp_error);
  EXPECT_EQ(via_virtual.cost_evals, via_span.cost_evals);
}

TEST(ApproxDpTest, EdgeCases) {
  // Empty input.
  const ApproxHistogramResult empty =
      BuildApproxVOptimalHistogram({}, 4, 0.1);
  EXPECT_EQ(empty.histogram.num_buckets(), 0);
  EXPECT_EQ(empty.sse, 0.0);
  EXPECT_EQ(empty.bound_factor, 1.0);

  // Single point.
  const std::vector<double> one{42.0};
  const ApproxHistogramResult single =
      BuildApproxVOptimalHistogram(one, 4, 0.1);
  EXPECT_EQ(single.histogram.num_buckets(), 1);
  EXPECT_EQ(single.sse, 0.0);

  // Fewer points than buckets: singletons, zero error.
  const std::vector<double> few{5.0, -1.0, 9.0};
  const ApproxHistogramResult singletons =
      BuildApproxVOptimalHistogram(few, 16, 0.5);
  EXPECT_EQ(singletons.histogram.num_buckets(), 3);
  EXPECT_EQ(singletons.sse, 0.0);

  // One bucket: no approximation possible, factor (1+delta)^0 == 1.
  const std::vector<double> data = MakeInput("random", 300, /*seed=*/5);
  const ApproxHistogramResult single_bucket =
      BuildApproxVOptimalHistogram(data, 1, 0.5);
  EXPECT_EQ(single_bucket.bound_factor, 1.0);
  EXPECT_NEAR(single_bucket.sse, OptimalSse(data, 1),
              kRelTol * (1.0 + single_bucket.sse));
}

}  // namespace
}  // namespace streamhist
